package rhvpp

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"sync"
	"testing"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/physics"
)

// collectProgress is a concurrency-safe ProgressFunc recording every event.
type collectProgress struct {
	mu     sync.Mutex
	events []ProgressEvent
}

func (c *collectProgress) fn(ev ProgressEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

func (c *collectProgress) snapshot() []ProgressEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ProgressEvent(nil), c.events...)
}

// TestProgressHookObservesWithoutChangingOutput drives one study with and
// without a progress hook: the rendered bytes must be identical, and the
// hook must see the study announcement plus every unit exactly once, with
// the done counter reaching the total.
func TestProgressHookObservesWithoutChangingOutput(t *testing.T) {
	o := campaignOptions("B3", "C0")
	plain, err := NewCampaign(o)
	if err != nil {
		t.Fatal(err)
	}
	var col collectProgress
	observed, err := NewCampaign(o)
	if err != nil {
		t.Fatal(err)
	}
	observed.WithProgress(col.fn)

	render := func(c *Campaign) []byte {
		var buf bytes.Buffer
		enc, err := NewEncoder(FormatJSON, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(context.Background(), "table3", enc); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render(plain)
	got := render(observed)
	if !bytes.Equal(want, got) {
		t.Error("progress hook changed the rendered bytes")
	}

	events := col.snapshot()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 (announcement + 2 modules): %+v", len(events), events)
	}
	if events[0].Key != "" || events[0].Total != 2 || events[0].Done != 0 {
		t.Errorf("announcement event %+v", events[0])
	}
	seen := map[string]bool{}
	maxDone := 0
	for _, ev := range events[1:] {
		if ev.Study != string(StudyRowHammer) || ev.Total != 2 {
			t.Errorf("unit event %+v", ev)
		}
		seen[ev.Key] = true
		if ev.Done > maxDone {
			maxDone = ev.Done
		}
	}
	if !seen["B3"] || !seen["C0"] || maxDone != 2 {
		t.Errorf("unit events incomplete: %+v", events[1:])
	}
}

// TestOptionsFingerprintContract pins the fingerprint to the canonical
// options encoding: result-shaping knobs move it, execution-shape knobs
// (Jobs, SpiceBatchWidth) do not, and its value is the SHA-256 of the same
// canonical bytes shard artifacts embed.
func TestOptionsFingerprintContract(t *testing.T) {
	o := campaignOptions("B3")
	fp, err := OptionsFingerprint(o)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := canonicalOptions(o)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	if fp != hex.EncodeToString(sum[:]) {
		t.Error("fingerprint is not the SHA-256 of the canonical options")
	}

	shaped := o
	shaped.Jobs = 7
	shaped.SpiceBatchWidth = 4
	if fp2, _ := OptionsFingerprint(shaped); fp2 != fp {
		t.Error("execution-shape knobs moved the fingerprint")
	}
	different := o
	different.Seed++
	if fp3, _ := OptionsFingerprint(different); fp3 == fp {
		t.Error("a different campaign shares the fingerprint")
	}
}

// TestCachedCampaignStoreRoundTrip computes through an artifact store and
// replays from it: the second call must decode from disk (no recomputation)
// and render byte-identically.
func TestCachedCampaignStoreRoundTrip(t *testing.T) {
	st, err := OpenArtifactStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := campaignOptions("B3")
	c1, fromStore, err := CachedCampaign(context.Background(), o, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fromStore {
		t.Fatal("empty store reported a hit")
	}
	fp, err := OptionsFingerprint(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(fp); err != nil {
		t.Fatalf("computed campaign not persisted: %v", err)
	}

	var units int
	c2, fromStore, err := CachedCampaign(context.Background(), o, st, func(WorkUnit) { units++ })
	if err != nil {
		t.Fatal(err)
	}
	if !fromStore {
		t.Error("warm store missed")
	}
	if units != 0 {
		t.Errorf("store hit still executed %d units", units)
	}
	render := func(c *Campaign) []byte {
		var buf bytes.Buffer
		enc, err := NewEncoder(FormatJSON, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(context.Background(), "table3", enc); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(c1), render(c2)) {
		t.Error("store-decoded campaign renders different bytes")
	}
}

// TestCachedCampaignHealsCorruptEntry damages a store entry and checks the
// next request treats it as a miss, recomputes, and overwrites the damage.
func TestCachedCampaignHealsCorruptEntry(t *testing.T) {
	st, err := OpenArtifactStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := campaignOptions("B3")
	if _, _, err := CachedCampaign(context.Background(), o, st, nil); err != nil {
		t.Fatal(err)
	}
	fp, err := OptionsFingerprint(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.Path(fp), []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(fp); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("damaged entry reads as %v, want ErrArtifactCorrupt", err)
	}
	_, fromStore, err := CachedCampaign(context.Background(), o, st, nil)
	if err != nil {
		t.Fatalf("corrupt entry wedged the fingerprint: %v", err)
	}
	if fromStore {
		t.Error("corrupt entry served as a hit")
	}
	if _, err := st.Get(fp); err != nil {
		t.Errorf("recomputation did not heal the entry: %v", err)
	}
}

// TestCachedCampaignFindsPreGrowthEntries pins the omitempty contract at the
// store: an entry written before the post-v1 options fields existed lives at
// the same fingerprint today's options produce (at default knob values), so
// it is still found and still decodes.
func TestCachedCampaignFindsPreGrowthEntries(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := campaignOptions("B3")
	if _, _, err := CachedCampaign(context.Background(), o, st, nil); err != nil {
		t.Fatal(err)
	}
	fp, err := OptionsFingerprint(o)
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite the stored artifact's embedded options to the pre-growth (v1)
	// encoding, as a server from before the omitempty fields would have
	// written it. optionsV1 mirrors the frozen field set — see
	// TestShardArtifactsMergeAcrossOptionsGrowth for the encoding pin.
	type optionsV1 struct {
		Seed                 uint64
		Geometry             physics.Geometry
		Config               core.Config
		Chunks, RowsPerChunk int
		ModuleNames          []string
		VPPStride            int
		SpiceMCRuns          int
		RetentionVPPLevels   []float64
		Jobs                 int
	}
	old, err := json.Marshal(optionsV1{
		Seed: o.Seed, Geometry: o.Geometry, Config: o.Config,
		Chunks: o.Chunks, RowsPerChunk: o.RowsPerChunk, ModuleNames: o.ModuleNames,
		VPPStride: o.VPPStride, SpiceMCRuns: o.SpiceMCRuns,
		RetentionVPPLevels: o.RetentionVPPLevels,
	})
	if err != nil {
		t.Fatal(err)
	}
	art, err := st.Get(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art.Options, old) {
		t.Fatalf("canonical options drifted from the v1 freeze:\n v1: %s\nnow: %s", old, art.Options)
	}
	art.Options = old
	if err := st.Put(fp, art); err != nil {
		t.Fatal(err)
	}

	// A fresh store handle (a restarted server) finds and decodes it.
	st2, err := OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var units int
	_, fromStore, err := CachedCampaign(context.Background(), o, st2, func(WorkUnit) { units++ })
	if err != nil {
		t.Fatalf("pre-growth entry does not decode: %v", err)
	}
	if !fromStore || units != 0 {
		t.Errorf("pre-growth entry missed (fromStore=%v, %d units recomputed)", fromStore, units)
	}
}

// TestCachedCampaignNilStoreComputes checks the storeless path (serve
// without -store): every call computes, none persists.
func TestCachedCampaignNilStoreComputes(t *testing.T) {
	o := campaignOptions("B3")
	var units int
	_, fromStore, err := CachedCampaign(context.Background(), o, nil, func(WorkUnit) { units++ })
	if err != nil {
		t.Fatal(err)
	}
	if fromStore {
		t.Error("nil store reported a hit")
	}
	if units == 0 {
		t.Error("no unit completions observed")
	}
}
