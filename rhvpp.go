// Package rhvpp is a full-system reproduction of "Understanding RowHammer
// Under Reduced Wordline Voltage: An Experimental Study Using Real DRAM
// Devices" (DSN 2022) as a Go library.
//
// The physical study cannot run without 272 DDR4 chips, an FPGA, and a lab
// power supply; this package substitutes a behavioral DDR4 device simulator
// calibrated against every number the paper publishes (see DESIGN.md), a
// SoftMC-class memory controller, the bench instruments around them, and a
// SPICE-class circuit simulator for the paper's Figs. 8-9 — and then runs
// the paper's own characterization algorithms on top.
//
// Two entry points cover most uses:
//
//   - Lab gives interactive access to a single simulated module: sweep VPP,
//     hammer rows, measure HCfirst / BER / tRCDmin / retention, exactly as
//     the paper's Algorithms 1-3 do.
//   - RunExperiment regenerates any table or figure from the paper's
//     evaluation by name ("table3", "fig5", "fig10a", ...), writing the
//     rows/series to the supplied writer.
package rhvpp

import (
	"fmt"
	"io"
	"sort"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/experiments"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/mitigation"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
)

// Re-exported types forming the public API surface. The implementations
// live in internal packages; these aliases are the supported names.
type (
	// ModuleProfile identifies one of the 30 tested DIMMs and its published
	// characteristics (paper Table 3).
	ModuleProfile = physics.ModuleProfile
	// Geometry is the simulated DRAM array organization.
	Geometry = physics.Geometry
	// Manufacturer is the anonymized DRAM vendor (A, B, C).
	Manufacturer = physics.Manufacturer
	// Config carries the methodology parameters of the paper's §4.
	Config = core.Config
	// Options scales a full experiment campaign.
	Options = experiments.Options
	// RowHammerResult is a per-row Alg. 1 outcome.
	RowHammerResult = core.RowHammerResult
	// RetentionResult is a per-row Alg. 3 outcome.
	RetentionResult = core.RetentionResult
	// Pattern is a canonical DRAM test data pattern.
	Pattern = pattern.Kind
)

// Re-exported constants.
const (
	VPPNominal    = physics.VPPNominal
	VDDNominal    = physics.VDDNominal
	TRCDNominalNS = physics.TRCDNominalNS
	ReferenceHC   = physics.ReferenceHammerCount
)

// Modules returns the profiles of all 30 tested DIMMs.
func Modules() []ModuleProfile { return physics.Profiles() }

// ModuleByName looks a profile up by its Table 3 label (e.g. "B3").
func ModuleByName(name string) (ModuleProfile, bool) { return physics.ProfileByName(name) }

// DefaultConfig returns the paper's methodology parameters; QuickConfig a
// reduced-effort variant for interactive use.
func DefaultConfig() Config { return core.Default() }

// QuickConfig returns the reduced-effort methodology parameters.
func QuickConfig() Config { return core.Quick() }

// DefaultOptions returns a laptop-scale campaign; PaperOptions the paper's
// full parameters.
func DefaultOptions() Options { return experiments.Default() }

// PaperOptions returns the full-scale campaign parameters.
func PaperOptions() Options { return experiments.Paper() }

// Lab is an assembled testbed for one simulated module: the DIMM on the
// interposer, the SoftMC controller, the external VPP supply, and the
// thermal loop — everything Fig. 2 of the paper shows, in software.
type Lab struct {
	tb     *infra.Testbed
	tester *core.Tester
}

// LabOption customizes lab construction.
type LabOption func(*labConfig)

type labConfig struct {
	seed     uint64
	geometry Geometry
	config   Config
	modOpts  []dram.Option
}

// WithSeed selects the simulated device instance.
func WithSeed(seed uint64) LabOption { return func(c *labConfig) { c.seed = seed } }

// WithGeometry overrides the simulated array organization.
func WithGeometry(g Geometry) LabOption { return func(c *labConfig) { c.geometry = g } }

// WithConfig overrides the methodology parameters.
func WithConfig(cfg Config) LabOption { return func(c *labConfig) { c.config = cfg } }

// WithTRR equips the module with an in-DRAM target-row-refresh engine.
func WithTRR(trackers int) LabOption {
	return func(c *labConfig) { c.modOpts = append(c.modOpts, dram.WithTRR(trackers)) }
}

// NewLab assembles a lab around the given module profile.
func NewLab(prof ModuleProfile, opts ...LabOption) *Lab {
	cfg := labConfig{
		seed:     2022,
		geometry: physics.Geometry{Banks: 1, RowsPerBank: 8192, RowBytes: 1024, SubarrayRows: 512},
		config:   core.Quick(),
	}
	for _, o := range opts {
		o(&cfg)
	}
	tb := infra.NewTestbed(prof, cfg.geometry, cfg.seed, cfg.modOpts...)
	return &Lab{tb: tb, tester: core.NewTester(tb.Controller, cfg.config)}
}

// Profile returns the module's identity and published characteristics.
func (l *Lab) Profile() ModuleProfile { return l.tb.Module.Profile() }

// SetVPP programs the external supply (±1 mV precision).
func (l *Lab) SetVPP(v float64) error { return l.tb.SetVPP(v) }

// VPP returns the current wordline voltage.
func (l *Lab) VPP() float64 { return l.tb.Module.VPP() }

// SetTemperature retargets and settles the PID thermal loop.
func (l *Lab) SetTemperature(c float64) error { return l.tb.SetTemperature(c) }

// DiscoverVPPmin lowers VPP until the module stops responding and returns
// the lowest working voltage (§4.1).
func (l *Lab) DiscoverVPPmin() (float64, error) { return l.tb.DiscoverVPPmin() }

// Responds reports whether the module communicates at the current VPP.
func (l *Lab) Responds() bool { return l.tb.Module.Responds() }

// CharacterizeRow runs the full Alg. 1 flow (WCDP selection, worst-case BER
// at the reference hammer count, HCfirst search) for one victim row.
func (l *Lab) CharacterizeRow(row int) (RowHammerResult, error) {
	return l.tester.CharacterizeRow(row, 0)
}

// MeasureBER performs one double-sided hammering measurement at the given
// per-aggressor count using the row's worst-case pattern.
func (l *Lab) MeasureBER(row, hammerCount int) (float64, error) {
	wcdp, err := l.tester.SelectWCDP(row)
	if err != nil {
		return 0, err
	}
	return l.tester.MeasureBER(row, wcdp, hammerCount)
}

// TRCDMin measures the row's minimum reliable activation latency (Alg. 2).
func (l *Lab) TRCDMin(row int) (float64, error) {
	res, err := l.tester.CharacterizeRowTRCD(row, 0)
	if err != nil {
		return 0, err
	}
	return res.MinReliableNS, nil
}

// RetentionSweep measures the row's retention BER across the ladder of
// refresh windows (Alg. 3). Call SetTemperature(80) first for the paper's
// conditions.
func (l *Lab) RetentionSweep(row int) (RetentionResult, error) {
	return l.tester.RetentionSweep(row, 0)
}

// Aggressors returns the two logical rows physically adjacent to a victim.
func (l *Lab) Aggressors(victim int) (lo, hi int, err error) {
	return l.tester.AggressorsFor(victim)
}

// ReverseEngineerAdjacency probes physical adjacency for a window of rows
// by escalating single-sided hammering (§4.2), and installs the result so
// subsequent characterization uses probed neighbors.
func (l *Lab) ReverseEngineerAdjacency(window []int, maxCount int) error {
	adj, err := mapping.ReverseEngineer(l.tb.Controller, window, maxCount)
	if err != nil {
		return err
	}
	l.tester.UseAdjacency(adj)
	return nil
}

// RecommendVPP sweeps the module across its VPP range and returns the
// operating point the Table 3 policy recommends (argmax HCfirst).
func (l *Lab) RecommendVPP(rows []int) (float64, error) {
	var vpps, hcs, bers []float64
	for _, vpp := range l.Profile().VPPLevels() {
		if err := l.SetVPP(vpp); err != nil {
			return 0, err
		}
		minHC, sumBER := 0.0, 0.0
		n := 0
		for _, row := range rows {
			res, err := l.tester.CharacterizeRow(row, 0)
			if err != nil {
				continue
			}
			if minHC == 0 || float64(res.HCFirst) < minHC {
				minHC = float64(res.HCFirst)
			}
			sumBER += res.BER
			n++
		}
		if n == 0 {
			continue
		}
		vpps = append(vpps, vpp)
		hcs = append(hcs, minHC)
		bers = append(bers, sumBER/float64(n))
	}
	rec, _, err := mitigation.RecommendVPP(vpps, hcs, bers)
	return rec, err
}

// experimentRunners maps experiment ids to their drivers.
var experimentRunners = map[string]func(Options, io.Writer) error{
	"table1": func(o Options, w io.Writer) error { return experiments.Table1(w) },
	"table2": func(o Options, w io.Writer) error { return experiments.Table2(w) },
	"table3": func(o Options, w io.Writer) error {
		st, err := experiments.RunRowHammerStudy(o)
		if err != nil {
			return err
		}
		return st.Table3().Render(w)
	},
	"fig3": func(o Options, w io.Writer) error {
		st, err := experiments.RunRowHammerStudy(o)
		if err != nil {
			return err
		}
		return st.RenderFig3(w)
	},
	"fig4": func(o Options, w io.Writer) error {
		st, err := experiments.RunRowHammerStudy(o)
		if err != nil {
			return err
		}
		return st.RenderFig4(w)
	},
	"fig5": func(o Options, w io.Writer) error {
		st, err := experiments.RunRowHammerStudy(o)
		if err != nil {
			return err
		}
		return st.RenderFig5(w)
	},
	"fig6": func(o Options, w io.Writer) error {
		st, err := experiments.RunRowHammerStudy(o)
		if err != nil {
			return err
		}
		return st.RenderFig6(w)
	},
	"summary": func(o Options, w io.Writer) error {
		st, err := experiments.RunRowHammerStudy(o)
		if err != nil {
			return err
		}
		return st.Section5Aggregates().Render(w)
	},
	"fig7": func(o Options, w io.Writer) error {
		st, err := experiments.RunTRCDStudy(o)
		if err != nil {
			return err
		}
		return st.RenderFig7(w)
	},
	"guardband": func(o Options, w io.Writer) error {
		st, err := experiments.RunTRCDStudy(o)
		if err != nil {
			return err
		}
		return st.Summary().Render(w)
	},
	"fig8a": func(o Options, w io.Writer) error {
		wf, err := experiments.RunWaveforms()
		if err != nil {
			return err
		}
		return wf.RenderFig8a(w)
	},
	"fig8b": func(o Options, w io.Writer) error {
		st, err := experiments.RunMCStudy(o)
		if err != nil {
			return err
		}
		return st.RenderFig8b(w)
	},
	"fig9a": func(o Options, w io.Writer) error {
		wf, err := experiments.RunWaveforms()
		if err != nil {
			return err
		}
		return wf.RenderFig9a(w)
	},
	"fig9b": func(o Options, w io.Writer) error {
		st, err := experiments.RunMCStudy(o)
		if err != nil {
			return err
		}
		return st.RenderFig9b(w)
	},
	"fig10a": func(o Options, w io.Writer) error {
		st, err := experiments.RunRetentionStudy(o)
		if err != nil {
			return err
		}
		return st.RenderFig10a(w)
	},
	"fig10b": func(o Options, w io.Writer) error {
		st, err := experiments.RunRetentionStudy(o)
		if err != nil {
			return err
		}
		return st.RenderFig10b(w)
	},
	"fig11": func(o Options, w io.Writer) error {
		wa, err := experiments.RunWordAnalysis(o)
		if err != nil {
			return err
		}
		return wa.RenderFig11(w)
	},
	"cv": func(o Options, w io.Writer) error {
		st, err := experiments.RunCVStudy(o)
		if err != nil {
			return err
		}
		return st.Render(w)
	},
	"abl-attacks": func(o Options, w io.Writer) error {
		cmp, err := experiments.RunAttackComparison(o, firstModule(o, "B0"), 60000)
		if err != nil {
			return err
		}
		return cmp.Render(w)
	},
	"abl-wcdp": func(o Options, w io.Writer) error {
		st, err := experiments.RunWCDPStability(o, firstModule(o, "C0"))
		if err != nil {
			return err
		}
		return st.Render(w)
	},
	"abl-trr": func(o Options, w io.Writer) error {
		ab, err := experiments.RunTRRAblation(o, firstModule(o, "B0"), 64000)
		if err != nil {
			return err
		}
		return ab.Render(w)
	},
	"abl-defense": func(o Options, w io.Writer) error {
		name := firstModule(o, "B3")
		prof, ok := physics.ProfileByName(name)
		if !ok {
			return fmt.Errorf("rhvpp: unknown module %s", name)
		}
		sw, err := experiments.RunModuleSweep(o, prof)
		if err != nil {
			return err
		}
		dc, err := experiments.RunDefenseCost(sw)
		if err != nil {
			return err
		}
		return dc.Render(w)
	},
	"abl-secded": func(o Options, w io.Writer) error {
		cov, err := experiments.RunSECDEDCoverage(o, firstModule(o, "B6"))
		if err != nil {
			return err
		}
		return cov.Render(w)
	},
	"ext-temp": func(o Options, w io.Writer) error {
		ti, err := experiments.RunTempInteraction(o, firstModule(o, "B3"), nil)
		if err != nil {
			return err
		}
		return ti.Render(w)
	},
	"ext-attacks": func(o Options, w io.Writer) error {
		sd, err := experiments.RunDefenseShowdown(o, firstModule(o, "B0"), 400_000, 4000)
		if err != nil {
			return err
		}
		return sd.Render(w)
	},
	"ext-retfine": func(o Options, w io.Writer) error {
		st, err := experiments.RunFineRefreshStudy(o, firstModule(o, "B6"))
		if err != nil {
			return err
		}
		return st.Render(w)
	},
	"ext-power": func(o Options, w io.Writer) error {
		ps, err := experiments.RunPowerStudy(o, firstModule(o, "B3"))
		if err != nil {
			return err
		}
		return ps.Render(w)
	},
}

// firstModule returns the first selected module name or the fallback.
func firstModule(o Options, fallback string) string {
	if len(o.ModuleNames) > 0 {
		return o.ModuleNames[0]
	}
	return fallback
}

// ExperimentNames lists the runnable experiment ids in stable order.
func ExperimentNames() []string {
	names := make([]string, 0, len(experimentRunners))
	for n := range experimentRunners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunExperiment regenerates one of the paper's tables or figures (or an
// ablation) by id, writing the result to w.
func RunExperiment(name string, o Options, w io.Writer) error {
	run, ok := experimentRunners[name]
	if !ok {
		return fmt.Errorf("rhvpp: unknown experiment %q (known: %v)", name, ExperimentNames())
	}
	return run(o, w)
}
