package rhvpp

import (
	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/experiments"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/mitigation"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
)

// Re-exported types forming the public API surface. The implementations
// live in internal packages; these aliases are the supported names.
type (
	// ModuleProfile identifies one of the 30 tested DIMMs and its published
	// characteristics (paper Table 3).
	ModuleProfile = physics.ModuleProfile
	// Geometry is the simulated DRAM array organization.
	Geometry = physics.Geometry
	// Manufacturer is the anonymized DRAM vendor (A, B, C).
	Manufacturer = physics.Manufacturer
	// Config carries the methodology parameters of the paper's §4.
	Config = core.Config
	// Options scales a full experiment campaign.
	Options = experiments.Options
	// RowHammerResult is a per-row Alg. 1 outcome.
	RowHammerResult = core.RowHammerResult
	// RetentionResult is a per-row Alg. 3 outcome.
	RetentionResult = core.RetentionResult
	// Pattern is a canonical DRAM test data pattern.
	Pattern = pattern.Kind

	// RowHammerStudy is the shared Fig. 3-6 / Table 3 campaign result.
	RowHammerStudy = experiments.RowHammerStudy
	// ModuleSweep is one module's RowHammer-vs-VPP characterization.
	ModuleSweep = experiments.ModuleSweep
	// TRCDStudy is the shared Fig. 7 / §6.1 campaign result.
	TRCDStudy = experiments.TRCDStudy
	// RetentionStudy is the shared Fig. 10 campaign result.
	RetentionStudy = experiments.RetentionStudy
	// WordAnalysis is the shared Fig. 11 campaign result.
	WordAnalysis = experiments.WordAnalysis
	// Waveforms holds the shared Fig. 8a / 9a SPICE transient traces.
	Waveforms = experiments.Waveforms
	// MCStudy is the shared Fig. 8b / 9b SPICE Monte-Carlo result.
	MCStudy = experiments.MCStudy
	// CVStudy is the §4.6 measurement-variation analysis result.
	CVStudy = experiments.CVStudy
)

// Re-exported constants.
const (
	VPPNominal    = physics.VPPNominal
	VDDNominal    = physics.VDDNominal
	TRCDNominalNS = physics.TRCDNominalNS
	ReferenceHC   = physics.ReferenceHammerCount
)

// Modules returns the profiles of all 30 tested DIMMs.
func Modules() []ModuleProfile { return physics.Profiles() }

// ModuleByName looks a profile up by its Table 3 label (e.g. "B3").
func ModuleByName(name string) (ModuleProfile, bool) { return physics.ProfileByName(name) }

// DefaultConfig returns the paper's methodology parameters; QuickConfig a
// reduced-effort variant for interactive use.
func DefaultConfig() Config { return core.Default() }

// QuickConfig returns the reduced-effort methodology parameters.
func QuickConfig() Config { return core.Quick() }

// DefaultOptions returns a laptop-scale campaign; PaperOptions the paper's
// full parameters.
func DefaultOptions() Options { return experiments.Default() }

// PaperOptions returns the full-scale campaign parameters.
func PaperOptions() Options { return experiments.Paper() }

// GoldenOptions returns the pinned regression-campaign scope: the exact
// parameters behind testdata/golden/all.{txt,json,csv}. It spans two modules
// per manufacturer (so per-module partials merge in catalog order), a
// tRCD-failing module (A0), a retention-failing module (B6), and a
// Monte-Carlo sweep large enough to populate the Fig. 8b/9b distribution
// columns — the scope the golden test and CI's sharded-equivalence job both
// replay. Change it only together with the committed goldens.
func GoldenOptions() Options {
	o := experiments.Default()
	o.Geometry = physics.Geometry{Banks: 1, RowsPerBank: 4096, RowBytes: 512, SubarrayRows: 512}
	cfg := core.Quick()
	cfg.MinHCStep = 4000
	o.Config = cfg
	o.Chunks = 2
	o.RowsPerChunk = 3
	o.VPPStride = 4
	o.SpiceMCRuns = 24
	o.RetentionVPPLevels = []float64{2.5, 1.9, 1.5}
	o.ModuleNames = []string{"A0", "A3", "B0", "B3", "B6", "C0"}
	return o
}

// Lab is an assembled testbed for one simulated module: the DIMM on the
// interposer, the SoftMC controller, the external VPP supply, and the
// thermal loop — everything Fig. 2 of the paper shows, in software.
type Lab struct {
	tb     *infra.Testbed
	tester *core.Tester
}

// LabOption customizes lab construction.
type LabOption func(*labConfig)

type labConfig struct {
	seed     uint64
	geometry Geometry
	config   Config
	modOpts  []dram.Option
}

// WithSeed selects the simulated device instance.
func WithSeed(seed uint64) LabOption { return func(c *labConfig) { c.seed = seed } }

// WithGeometry overrides the simulated array organization.
func WithGeometry(g Geometry) LabOption { return func(c *labConfig) { c.geometry = g } }

// WithConfig overrides the methodology parameters.
func WithConfig(cfg Config) LabOption { return func(c *labConfig) { c.config = cfg } }

// WithTRR equips the module with an in-DRAM target-row-refresh engine.
func WithTRR(trackers int) LabOption {
	return func(c *labConfig) { c.modOpts = append(c.modOpts, dram.WithTRR(trackers)) }
}

// NewLab assembles a lab around the given module profile.
func NewLab(prof ModuleProfile, opts ...LabOption) *Lab {
	cfg := labConfig{
		seed:     2022,
		geometry: physics.Geometry{Banks: 1, RowsPerBank: 8192, RowBytes: 1024, SubarrayRows: 512},
		config:   core.Quick(),
	}
	for _, o := range opts {
		o(&cfg)
	}
	tb := infra.NewTestbed(prof, cfg.geometry, cfg.seed, cfg.modOpts...)
	return &Lab{tb: tb, tester: core.NewTester(tb.Controller, cfg.config)}
}

// Profile returns the module's identity and published characteristics.
func (l *Lab) Profile() ModuleProfile { return l.tb.Module.Profile() }

// SetVPP programs the external supply (±1 mV precision).
func (l *Lab) SetVPP(v float64) error { return l.tb.SetVPP(v) }

// VPP returns the current wordline voltage.
func (l *Lab) VPP() float64 { return l.tb.Module.VPP() }

// SetTemperature retargets and settles the PID thermal loop.
func (l *Lab) SetTemperature(c float64) error { return l.tb.SetTemperature(c) }

// DiscoverVPPmin lowers VPP until the module stops responding and returns
// the lowest working voltage (§4.1).
func (l *Lab) DiscoverVPPmin() (float64, error) { return l.tb.DiscoverVPPmin() }

// Responds reports whether the module communicates at the current VPP.
func (l *Lab) Responds() bool { return l.tb.Module.Responds() }

// CharacterizeRow runs the full Alg. 1 flow (WCDP selection, worst-case BER
// at the reference hammer count, HCfirst search) for one victim row.
func (l *Lab) CharacterizeRow(row int) (RowHammerResult, error) {
	return l.tester.CharacterizeRow(row, 0)
}

// MeasureBER performs one double-sided hammering measurement at the given
// per-aggressor count using the row's worst-case pattern.
func (l *Lab) MeasureBER(row, hammerCount int) (float64, error) {
	wcdp, err := l.tester.SelectWCDP(row)
	if err != nil {
		return 0, err
	}
	return l.tester.MeasureBER(row, wcdp, hammerCount)
}

// TRCDMin measures the row's minimum reliable activation latency (Alg. 2).
func (l *Lab) TRCDMin(row int) (float64, error) {
	res, err := l.tester.CharacterizeRowTRCD(row, 0)
	if err != nil {
		return 0, err
	}
	return res.MinReliableNS, nil
}

// RetentionSweep measures the row's retention BER across the ladder of
// refresh windows (Alg. 3). Call SetTemperature(80) first for the paper's
// conditions.
func (l *Lab) RetentionSweep(row int) (RetentionResult, error) {
	return l.tester.RetentionSweep(row, 0)
}

// Aggressors returns the two logical rows physically adjacent to a victim.
func (l *Lab) Aggressors(victim int) (lo, hi int, err error) {
	return l.tester.AggressorsFor(victim)
}

// ReverseEngineerAdjacency probes physical adjacency for a window of rows
// by escalating single-sided hammering (§4.2), and installs the result so
// subsequent characterization uses probed neighbors.
func (l *Lab) ReverseEngineerAdjacency(window []int, maxCount int) error {
	adj, err := mapping.ReverseEngineer(l.tb.Controller, window, maxCount)
	if err != nil {
		return err
	}
	l.tester.UseAdjacency(adj)
	return nil
}

// RecommendVPP sweeps the module across its VPP range and returns the
// operating point the Table 3 policy recommends (argmax HCfirst).
func (l *Lab) RecommendVPP(rows []int) (float64, error) {
	var vpps, hcs, bers []float64
	for _, vpp := range l.Profile().VPPLevels() {
		if err := l.SetVPP(vpp); err != nil {
			return 0, err
		}
		minHC, sumBER := 0.0, 0.0
		n := 0
		for _, row := range rows {
			res, err := l.tester.CharacterizeRow(row, 0)
			if err != nil {
				continue
			}
			if minHC == 0 || float64(res.HCFirst) < minHC {
				minHC = float64(res.HCFirst)
			}
			sumBER += res.BER
			n++
		}
		if n == 0 {
			continue
		}
		vpps = append(vpps, vpp)
		hcs = append(hcs, minHC)
		bers = append(bers, sumBER/float64(n))
	}
	rec, _, err := mitigation.RecommendVPP(vpps, hcs, bers)
	return rec, err
}
