// Safe operation at reduced VPP: module B6 fails retention at the nominal
// 64 ms refresh window when operated at its VPPmin (paper Obsv. 13). This
// example shows both remedies the paper proposes making the module reliable
// again:
//
//  1. SECDED ECC — every failing 64-bit word carries at most one flip at the
//     smallest failing window (Obsv. 14), so a (72,64) code corrects them
//     all;
//  2. selective refresh — profiling finds the small fraction of weak rows
//     (Obsv. 15) and refreshes only those twice as often.
package main

import (
	"fmt"
	"log"

	"github.com/dramstudy/rhvpp"
)

func main() {
	prof, ok := rhvpp.ModuleByName("B6")
	if !ok {
		log.Fatal("module B6 not in the catalog")
	}
	lab := rhvpp.NewLab(prof)

	// Retention testing happens at 80C (paper §4.1), at the module's VPPmin.
	if err := lab.SetTemperature(80); err != nil {
		log.Fatal(err)
	}
	if err := lab.SetVPP(prof.VPPMin); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at VPP=%.1fV, 80C, nominal refresh window 64ms\n\n", prof.Name, prof.VPPMin)

	rows := make([]int, 0, 300)
	for r := 100; r < 400; r++ {
		rows = append(rows, r)
	}

	// Remedy 1: SECDED ECC over the unmodified 64ms refresh.
	stats, clean, err := lab.ECCRetentionCheck(rows, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SECDED path:  %d words corrected, %d uncorrectable, delivered data clean: %v\n",
		stats.Corrected, stats.Uncorrectable, clean)

	// Remedy 2: profile retention and double the refresh rate only for the
	// weak rows.
	plan, err := lab.BuildRefreshPlan(rows, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refresh plan: %.1f%% of rows need the doubled rate (paper: ~16%% for Mfr B)\n",
		plan.Fraction()*100)
	failed, err := lab.VerifyRefreshPlan(plan, rows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: %d rows still flip under the plan (want 0)\n", failed)
}
