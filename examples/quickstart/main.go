// Quickstart: open a simulated module from the paper's tested population,
// characterize one row at nominal wordline voltage, lower VPP to the
// module's minimum, and observe the RowHammer vulnerability shrink — the
// paper's headline result in ~40 lines.
package main

import (
	"fmt"
	"log"

	"github.com/dramstudy/rhvpp"
)

func main() {
	// B3 is the module with the strongest response in the paper: +27%
	// HCfirst and -60% BER at its VPPmin of 1.6 V (Table 3).
	prof, ok := rhvpp.ModuleByName("B3")
	if !ok {
		log.Fatal("module B3 not in the catalog")
	}
	lab := rhvpp.NewLab(prof)

	const victim = 100

	fmt.Printf("== %s (%s %dGb %s) ==\n", prof.Name, prof.Mfr.FullName(), prof.DensityGb, prof.Org)

	// Characterize at the nominal VPP of 2.5 V.
	nominal, err := lab.CharacterizeRow(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at 2.5V:  HCfirst = %6d   BER@300K = %.3e   (WCDP %v)\n",
		nominal.HCFirst, nominal.BER, nominal.WCDP)

	// Find the lowest voltage the module still responds at, then
	// re-characterize.
	vppMin, err := lab.DiscoverVPPmin()
	if err != nil {
		log.Fatal(err)
	}
	reduced, err := lab.CharacterizeRow(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at %.1fV:  HCfirst = %6d   BER@300K = %.3e\n", vppMin, reduced.HCFirst, reduced.BER)

	fmt.Printf("\nreducing VPP made this row %.1f%% harder to hammer and cut its BER by %.1f%%\n",
		(float64(reduced.HCFirst)/float64(nominal.HCFirst)-1)*100,
		(1-reduced.BER/nominal.BER)*100)
}
