// Attack study: compare RowHammer attack shapes against one module and show
// how reduced wordline voltage cheapens deployed defenses.
//
// Part 1 mounts single- and double-sided attacks at the same per-aggressor
// budget (the paper uses double-sided attacks because they are the most
// effective against undefended DRAM, §4.2).
//
// Part 2 sizes two reference defenses — PARA's refresh probability and a
// Graphene-style counter table — at nominal VPP and at VPPmin, quantifying
// the complementary benefit of Takeaway 1.
package main

import (
	"fmt"
	"log"

	"github.com/dramstudy/rhvpp"
)

func main() {
	prof, ok := rhvpp.ModuleByName("B3")
	if !ok {
		log.Fatal("module B3 not in the catalog")
	}
	lab := rhvpp.NewLab(prof)

	// --- Part 1: attack shapes ------------------------------------------
	// Rows vary widely in strength; find this device's weakest row among a
	// few candidates, as an attacker profiling a module would.
	victim, weakest := 0, 1<<62
	for _, cand := range []int{100, 120, 140, 160, 180} {
		res, err := lab.CharacterizeRow(cand)
		if err != nil {
			log.Fatal(err)
		}
		if res.HCFirst < weakest {
			victim, weakest = cand, res.HCFirst
		}
	}
	lo, hi, err := lab.Aggressors(victim)
	if err != nil {
		log.Fatal(err)
	}
	budget := weakest * 2
	fmt.Printf("weakest profiled victim: row %d (HCfirst %d), aggressors %d/%d\n",
		victim, weakest, lo, hi)

	ber, err := lab.MeasureBER(victim, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  double-sided at %d hammers/side: BER %.3e\n", budget, ber)
	fmt.Printf("  (a single-sided attacker needs roughly 3x more activations per flip)\n\n")

	// --- Part 2: defense provisioning vs VPP ----------------------------
	type point struct {
		vpp     float64
		hcFirst int
	}
	var points []point
	for _, vpp := range []float64{rhvpp.VPPNominal, prof.VPPMin} {
		if err := lab.SetVPP(vpp); err != nil {
			log.Fatal(err)
		}
		r, err := lab.CharacterizeRow(victim)
		if err != nil {
			log.Fatal(err)
		}
		points = append(points, point{vpp, r.HCFirst})
	}

	const activationsPerWindow = 1_360_000 // 64ms / ~47ns
	fmt.Println("defense provisioning (PARA target failure 1e-9, Graphene threshold HCfirst/4):")
	for _, pt := range points {
		p, err := rhvpp.PARARequiredP(float64(pt.hcFirst), 1e-9)
		if err != nil {
			log.Fatal(err)
		}
		counters := rhvpp.GrapheneCounters(activationsPerWindow, float64(pt.hcFirst), 4)
		fmt.Printf("  VPP %.1fV: HCfirst %6d -> PARA p = %.2e, Graphene counters = %d\n",
			pt.vpp, pt.hcFirst, p, counters)
	}
	fmt.Println("\nlower VPP -> higher HCfirst -> cheaper defenses (complementary mitigation).")
}
