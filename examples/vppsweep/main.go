// VPP sweep: reproduce the paper's Observations 1 and 4 for a handful of
// rows of one module — HCfirst rises and BER falls as the wordline voltage
// scales down from 2.5 V to VPPmin, with per-row variation (Obsvs. 3/6).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/dramstudy/rhvpp"
)

func main() {
	module := "C0"
	if len(os.Args) > 1 {
		module = os.Args[1]
	}
	prof, ok := rhvpp.ModuleByName(module)
	if !ok {
		log.Fatalf("unknown module %q", module)
	}
	lab := rhvpp.NewLab(prof)

	victims := []int{100, 150, 200, 250}
	fmt.Printf("VPP sweep of %s (%s): %d victims, double-sided attacks\n\n",
		prof.Name, prof.Mfr.FullName(), len(victims))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "VPP\t")
	for _, v := range victims {
		fmt.Fprintf(w, "row %d HCfirst\tBER\t", v)
	}
	fmt.Fprintln(w)

	for _, vpp := range prof.VPPLevels() {
		if err := lab.SetVPP(vpp); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%.1f\t", vpp)
		for _, victim := range victims {
			res, err := lab.CharacterizeRow(victim)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%d\t%.2e\t", res.HCFirst, res.BER)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nexpect: HCfirst mostly rising and BER mostly falling toward VPPmin,")
	fmt.Println("with occasional opposite-trend rows (paper Obsvs. 2 and 5).")
}
