// Campaign session: regenerate a slice of the paper's evaluation the way the
// study actually ran — one shared characterization campaign, not one sweep
// per figure. Table 3, Figs. 3-6, and the §5 summary below all render from a
// single RowHammer study; the module sweeps inside it run concurrently, and
// ctrl-C cancels cleanly mid-measurement.
//
//	go run ./examples/campaign            # text to stdout
//	go run ./examples/campaign -json      # machine-readable NDJSON
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"

	"github.com/dramstudy/rhvpp"
)

func main() {
	asJSON := flag.Bool("json", false, "emit NDJSON instead of text")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A laptop-scale session over three strongly responding modules, one
	// worker per CPU.
	o := rhvpp.DefaultOptions()
	o.ModuleNames = []string{"B3", "C0", "A8"}
	o.Jobs = runtime.NumCPU()
	c, err := rhvpp.NewCampaign(o)
	if err != nil {
		log.Fatal(err) // e.g. a typo in ModuleNames, rejected up front
	}

	format := rhvpp.FormatText
	if *asJSON {
		format = rhvpp.FormatJSON
	}
	enc, err := rhvpp.NewEncoder(format, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}

	// Every id below depends on the same underlying study; the hardware is
	// characterized exactly once, on the first Run.
	for _, id := range []string{"table3", "fig3", "fig5", "summary"} {
		e, _ := rhvpp.ExperimentByID(id)
		fmt.Fprintf(os.Stderr, "-- %s: %s (%s)\n", e.ID, e.Title, e.Section)
		if err := c.Run(ctx, id, enc); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "study executions: %v\n", c.StudyRuns())
}
