package rhvpp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/dramstudy/rhvpp/internal/experiments"
	"github.com/dramstudy/rhvpp/internal/report"
)

// Study identifies one of the shared measurement campaigns a Campaign
// memoizes. Several experiments render from the same study; declaring the
// dependency on the descriptor lets callers see (and tests assert) what a
// given experiment will actually execute.
type Study string

// The memoized studies. The string values are the canonical study names
// shared with the shard-artifact encoding (internal/experiments).
const (
	// StudyRowHammer is the Alg. 1 sweep across modules (Table 3, Figs.
	// 3-6, the §5 aggregates, and the defense-cost ablation).
	StudyRowHammer Study = experiments.StudyNameRowHammer
	// StudyTRCD is the Alg. 2 activation-latency sweep (Fig. 7, §6.1).
	StudyTRCD Study = experiments.StudyNameTRCD
	// StudyRetention is the Alg. 3 refresh-window ladder (Fig. 10).
	StudyRetention Study = experiments.StudyNameRetention
	// StudyWaveforms is the SPICE transient simulation (Figs. 8a, 9a).
	StudyWaveforms Study = experiments.StudyNameWaveforms
	// StudySpiceMC is the SPICE Monte-Carlo campaign (Figs. 8b, 9b).
	StudySpiceMC Study = experiments.StudyNameSpiceMC
	// StudyWordAnalysis is the word-granularity retention study (Fig. 11).
	StudyWordAnalysis Study = experiments.StudyNameWordAnalysis
	// StudyCV is the §4.6 coefficient-of-variation analysis.
	StudyCV Study = experiments.StudyNameCV
)

// Encoding aliases, so callers don't need to import the report package.
type (
	// Encoder serializes experiment output; see NewEncoder.
	Encoder = report.Encoder
	// Format selects an output encoding (FormatText, FormatJSON, FormatCSV).
	Format = report.Format
)

// Re-exported output formats.
const (
	FormatText = report.FormatText
	FormatJSON = report.FormatJSON
	FormatCSV  = report.FormatCSV
)

// NewEncoder returns an encoder writing the given format to w.
func NewEncoder(f Format, w io.Writer) (Encoder, error) { return report.NewEncoder(f, w) }

// Formats lists the supported output encodings.
func Formats() []Format { return report.Formats() }

// NewTextEncoder returns the terminal encoder (aligned tables, ASCII plots).
func NewTextEncoder(w io.Writer) Encoder { return report.NewText(w) }

// Experiment describes one runnable table, figure, ablation, or extension of
// the evaluation.
type Experiment struct {
	// ID is the stable identifier ("table3", "fig5", "abl-trr", ...).
	ID string
	// Title is a human-readable one-liner for listings.
	Title string
	// Section locates the result in the paper.
	Section string
	// Studies lists the shared campaigns this experiment renders from; an
	// empty list means the experiment is self-contained (static tables,
	// module-scoped ablations).
	Studies []Study

	run func(ctx context.Context, c *Campaign, enc Encoder) error
}

// Run executes the experiment within campaign c, emitting to enc. Studies it
// depends on are computed on first use and reused afterwards.
func (e Experiment) Run(ctx context.Context, c *Campaign, enc Encoder) error {
	if e.run == nil {
		return fmt.Errorf("rhvpp: experiment %q has no driver", e.ID)
	}
	return e.run(ctx, c, enc)
}

// cell memoizes one study result. The first caller computes while holding
// the lock; concurrent callers block until the computation finishes and then
// share the value. A computation aborted by context cancellation is NOT
// memoized — the cancellation was the caller's, not the study's, so a later
// Run with a live context measures again instead of replaying the stale
// error. Genuine measurement failures are memoized like results.
type cell[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
	err  error
}

func (c *cell[T]) get(fn func() (T, error)) (T, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return c.val, c.err
	}
	val, err := fn()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return val, err // don't poison the session with a canceled attempt
	}
	c.val, c.err = val, err
	c.done = true
	return c.val, c.err
}

// set preloads the cell with an already-computed value (a study assembled
// from merged shard artifacts); later get calls return it without running.
func (c *cell[T]) set(v T) {
	c.mu.Lock()
	c.val, c.err, c.done = v, nil, true
	c.mu.Unlock()
}

// Campaign is one characterization session at a fixed Options: the shared
// studies behind the paper's tables and figures run at most once per session
// and every experiment renders from the memoized results, so regenerating
// the whole evaluation costs one RowHammer sweep, one tRCD sweep, one
// retention ladder, one SPICE campaign — not one per figure.
//
// A Campaign is safe for concurrent use: parallel Run calls that need the
// same study share a single execution (later callers block until the first
// finishes, under the first caller's context). A run aborted by context
// cancellation is not cached; the next Run with a live context measures
// again. Module sweeps inside each study run Options.Jobs modules at a time
// and merge in catalog order, so output is byte-identical at any worker
// count.
//
// Study aggregation is streaming: distribution columns render from
// internal/stats accumulators that fold each measurement as it is produced
// (the SPICE Monte-Carlo levels additionally share one global run queue), so
// a session's memory is bounded by the catalog, the measurement grids, and
// the configured row selection — never by SpiceMCRuns. Scaling Options
// toward the paper's 10K-runs-per-level (and beyond) grows campaign time,
// not campaign memory.
//
// Study execution goes through a pluggable Runner backend: each study plans
// into deterministic work units (per-module testbeds; per-VPP-level
// Monte-Carlo run ranges), the Runner executes them, and the results fold
// back in catalog/(level, run) order. The default LocalRunner runs units
// in-process; WithRunner swaps in ProcRunner (shard subprocesses) or a
// custom backend without changing a byte of output. The same seam powers
// multi-host sharding: PlanUnits + ShardUnits + RunShard emit per-shard
// artifacts, and MergeArtifacts folds them back into a preloaded Campaign.
type Campaign struct {
	opts     Options
	runner   Runner
	progress ProgressFunc

	rowhammer cell[experiments.RowHammerStudy]
	trcd      cell[experiments.TRCDStudy]
	retention cell[experiments.RetentionStudy]
	waveforms cell[experiments.Waveforms]
	spiceMC   cell[experiments.MCStudy]
	words     cell[experiments.WordAnalysis]
	cv        cell[experiments.CVStudy]

	mu   sync.Mutex
	runs map[Study]int
}

// NewCampaign validates the options and opens a session on the default
// LocalRunner backend. Unknown or duplicated ModuleNames (and a negative
// Jobs) are rejected here, before any testbed is built.
func NewCampaign(o Options) (*Campaign, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &Campaign{opts: o, runner: LocalRunner{}, runs: make(map[Study]int)}, nil
}

// WithRunner selects the execution backend for studies that have not run
// yet and returns c for chaining. Call it before the first Run; studies
// already memoized keep their results. Any Runner must satisfy the
// byte-identical contract (see Runner), so swapping backends never changes
// what a campaign reports — only where the work executes.
func (c *Campaign) WithRunner(r Runner) *Campaign {
	if r != nil {
		c.runner = r
	}
	return c
}

// Options returns the campaign's (immutable) parameters.
func (c *Campaign) Options() Options { return c.opts }

// StudyRuns reports how many times each study driver actually executed in
// this session. After rendering every experiment id, each entry is still 1 —
// the property the memoization exists for.
func (c *Campaign) StudyRuns() map[Study]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Study]int, len(c.runs))
	for k, v := range c.runs {
		out[k] = v
	}
	return out
}

func (c *Campaign) countRun(s Study) {
	c.mu.Lock()
	c.runs[s]++
	c.mu.Unlock()
}

// runStudy executes one shardable study through the campaign's Runner: plan
// the units, hand them to the backend, and index the serialized partials by
// unit key for assembly. The assemble step verifies completeness against the
// same plan, so a backend that drops or invents units fails loudly.
func (c *Campaign) runStudy(ctx context.Context, s Study) (map[string]json.RawMessage, error) {
	units, err := c.Plan(s)
	if err != nil {
		return nil, err
	}
	results, err := c.execUnits(ctx, s, units)
	if err != nil {
		return nil, err
	}
	data := make(map[string]json.RawMessage, len(results))
	for _, r := range results {
		if r.Unit.Study != string(s) {
			return nil, fmt.Errorf("rhvpp: runner returned unit %s/%q for the %s study", r.Unit.Study, r.Unit.Key, s)
		}
		if _, dup := data[r.Unit.Key]; dup {
			return nil, fmt.Errorf("rhvpp: runner returned unit %s/%q twice", s, r.Unit.Key)
		}
		data[r.Unit.Key] = r.Data
	}
	return data, nil
}

// RowHammer returns the session's Alg. 1 study, computing it on first use.
func (c *Campaign) RowHammer(ctx context.Context) (RowHammerStudy, error) {
	return c.rowhammer.get(func() (experiments.RowHammerStudy, error) {
		c.countRun(StudyRowHammer)
		data, err := c.runStudy(ctx, StudyRowHammer)
		if err != nil {
			return experiments.RowHammerStudy{}, err
		}
		return experiments.AssembleRowHammerStudy(c.opts, data)
	})
}

// TRCD returns the session's Alg. 2 study, computing it on first use.
func (c *Campaign) TRCD(ctx context.Context) (TRCDStudy, error) {
	return c.trcd.get(func() (experiments.TRCDStudy, error) {
		c.countRun(StudyTRCD)
		data, err := c.runStudy(ctx, StudyTRCD)
		if err != nil {
			return experiments.TRCDStudy{}, err
		}
		return experiments.AssembleTRCDStudy(c.opts, data)
	})
}

// Retention returns the session's Alg. 3 study, computing it on first use.
func (c *Campaign) Retention(ctx context.Context) (RetentionStudy, error) {
	return c.retention.get(func() (experiments.RetentionStudy, error) {
		c.countRun(StudyRetention)
		data, err := c.runStudy(ctx, StudyRetention)
		if err != nil {
			return experiments.RetentionStudy{}, err
		}
		return experiments.AssembleRetentionStudy(c.opts, data)
	})
}

// SpiceWaveforms returns the session's transient traces, computing them on
// first use. The waveform study is not sharded: it is one cheap
// deterministic simulation, so every process (including a merge renderer)
// computes it locally.
func (c *Campaign) SpiceWaveforms(ctx context.Context) (Waveforms, error) {
	return c.waveforms.get(func() (experiments.Waveforms, error) {
		c.countRun(StudyWaveforms)
		return experiments.RunWaveforms(ctx)
	})
}

// SpiceMC returns the session's Monte-Carlo study, computing it on first use.
func (c *Campaign) SpiceMC(ctx context.Context) (MCStudy, error) {
	return c.spiceMC.get(func() (experiments.MCStudy, error) {
		c.countRun(StudySpiceMC)
		data, err := c.runStudy(ctx, StudySpiceMC)
		if err != nil {
			return experiments.MCStudy{}, err
		}
		return experiments.AssembleMCStudy(c.opts, data)
	})
}

// WordAnalysis returns the session's Fig. 11 study, computing it on first
// use.
func (c *Campaign) WordAnalysis(ctx context.Context) (WordAnalysis, error) {
	return c.words.get(func() (experiments.WordAnalysis, error) {
		c.countRun(StudyWordAnalysis)
		data, err := c.runStudy(ctx, StudyWordAnalysis)
		if err != nil {
			return experiments.WordAnalysis{}, err
		}
		return experiments.AssembleWordAnalysis(c.opts, data)
	})
}

// CV returns the session's §4.6 variation study, computing it on first use.
func (c *Campaign) CV(ctx context.Context) (CVStudy, error) {
	return c.cv.get(func() (experiments.CVStudy, error) {
		c.countRun(StudyCV)
		data, err := c.runStudy(ctx, StudyCV)
		if err != nil {
			return experiments.CVStudy{}, err
		}
		return experiments.AssembleCVStudy(c.opts, data)
	})
}

// Run renders one experiment by id into enc, reusing every study already
// computed in this session.
func (c *Campaign) Run(ctx context.Context, id string, enc Encoder) error {
	e, err := LookupExperiment(id)
	if err != nil {
		return err
	}
	return e.Run(ctx, c, enc)
}

// moduleSweepFor returns the Alg. 1 sweep of one module out of the session's
// shared RowHammer study. The target is always covered: with ModuleNames
// empty the study spans the full catalog, and otherwise FirstModule comes
// from the validated selection.
func (c *Campaign) moduleSweepFor(ctx context.Context, name string) (ModuleSweep, error) {
	st, err := c.RowHammer(ctx)
	if err != nil {
		return ModuleSweep{}, err
	}
	for _, sw := range st.Sweeps {
		if sw.Profile.Name == name {
			return sw, nil
		}
	}
	return ModuleSweep{}, fmt.Errorf("rhvpp: module %s not covered by the campaign's RowHammer study", name)
}

// registry lists every experiment in the paper's presentation order.
var registry = []Experiment{
	{ID: "table1", Title: "Summary of the tested DDR4 DRAM chips", Section: "§4.1, Table 1",
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			return experiments.Table1(enc)
		}},
	{ID: "table2", Title: "Key parameters used in SPICE simulations", Section: "§4.5, Table 2",
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			return experiments.Table2(enc)
		}},
	{ID: "cv", Title: "Coefficient of variation across repeated measurements", Section: "§4.6",
		Studies: []Study{StudyCV},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.CV(ctx)
			if err != nil {
				return err
			}
			return st.Render(enc)
		}},
	{ID: "table3", Title: "Module RowHammer characteristics under VPP scaling", Section: "§5, Table 3",
		Studies: []Study{StudyRowHammer},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.RowHammer(ctx)
			if err != nil {
				return err
			}
			return enc.Table(st.Table3())
		}},
	{ID: "fig3", Title: "Normalized RowHammer BER vs wordline voltage", Section: "§5.1, Fig. 3",
		Studies: []Study{StudyRowHammer},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.RowHammer(ctx)
			if err != nil {
				return err
			}
			return st.RenderFig3(enc)
		}},
	{ID: "fig4", Title: "Normalized RowHammer BER distribution at VPPmin", Section: "§5.1, Fig. 4",
		Studies: []Study{StudyRowHammer},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.RowHammer(ctx)
			if err != nil {
				return err
			}
			return st.RenderFig4(enc)
		}},
	{ID: "fig5", Title: "Normalized HCfirst vs wordline voltage", Section: "§5.2, Fig. 5",
		Studies: []Study{StudyRowHammer},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.RowHammer(ctx)
			if err != nil {
				return err
			}
			return st.RenderFig5(enc)
		}},
	{ID: "fig6", Title: "Normalized HCfirst distribution at VPPmin", Section: "§5.2, Fig. 6",
		Studies: []Study{StudyRowHammer},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.RowHammer(ctx)
			if err != nil {
				return err
			}
			return st.RenderFig6(enc)
		}},
	{ID: "summary", Title: "Row-level RowHammer aggregates at VPPmin", Section: "§5",
		Studies: []Study{StudyRowHammer},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.RowHammer(ctx)
			if err != nil {
				return err
			}
			return st.Section5Aggregates().Render(enc)
		}},
	{ID: "fig7", Title: "Minimum reliable tRCD vs wordline voltage", Section: "§6.1, Fig. 7",
		Studies: []Study{StudyTRCD},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.TRCD(ctx)
			if err != nil {
				return err
			}
			return st.RenderFig7(enc)
		}},
	{ID: "guardband", Title: "Activation-latency guardband summary", Section: "§6.1",
		Studies: []Study{StudyTRCD},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.TRCD(ctx)
			if err != nil {
				return err
			}
			return st.Summary().Render(enc)
		}},
	{ID: "fig8a", Title: "Bitline voltage during row activation (SPICE)", Section: "§6.2, Fig. 8a",
		Studies: []Study{StudyWaveforms},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			wf, err := c.SpiceWaveforms(ctx)
			if err != nil {
				return err
			}
			return wf.RenderFig8a(enc)
		}},
	{ID: "fig8b", Title: "tRCDmin distribution under process variation (SPICE MC)", Section: "§6.2, Fig. 8b",
		Studies: []Study{StudySpiceMC},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.SpiceMC(ctx)
			if err != nil {
				return err
			}
			return st.RenderFig8b(enc)
		}},
	{ID: "fig9a", Title: "Cell voltage during charge restoration (SPICE)", Section: "§6.2, Fig. 9a",
		Studies: []Study{StudyWaveforms},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			wf, err := c.SpiceWaveforms(ctx)
			if err != nil {
				return err
			}
			return wf.RenderFig9a(enc)
		}},
	{ID: "fig9b", Title: "tRASmin distribution under process variation (SPICE MC)", Section: "§6.2, Fig. 9b",
		Studies: []Study{StudySpiceMC},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.SpiceMC(ctx)
			if err != nil {
				return err
			}
			return st.RenderFig9b(enc)
		}},
	{ID: "fig10a", Title: "Retention BER vs refresh window and voltage", Section: "§6.3, Fig. 10a",
		Studies: []Study{StudyRetention},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.Retention(ctx)
			if err != nil {
				return err
			}
			return st.RenderFig10a(enc)
		}},
	{ID: "fig10b", Title: "Retention BER at tREFW = 4 s", Section: "§6.3, Fig. 10b",
		Studies: []Study{StudyRetention},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := c.Retention(ctx)
			if err != nil {
				return err
			}
			return st.RenderFig10b(enc)
		}},
	{ID: "fig11", Title: "Erroneous words per row at VPPmin", Section: "§6.3, Fig. 11",
		Studies: []Study{StudyWordAnalysis},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			wa, err := c.WordAnalysis(ctx)
			if err != nil {
				return err
			}
			return wa.RenderFig11(enc)
		}},
	{ID: "abl-attacks", Title: "Ablation: single- vs double- vs many-sided attacks", Section: "§4.2",
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			cmp, err := experiments.RunAttackComparison(ctx, c.opts, c.opts.FirstModule("B0"), 60000)
			if err != nil {
				return err
			}
			return cmp.Render(enc)
		}},
	{ID: "abl-wcdp", Title: "Ablation: worst-case data pattern stability across VPP", Section: "§4.2, footnote 9",
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := experiments.RunWCDPStability(ctx, c.opts, c.opts.FirstModule("C0"))
			if err != nil {
				return err
			}
			return st.Render(enc)
		}},
	{ID: "abl-trr", Title: "Ablation: TRR interaction with refresh starvation", Section: "§4.2",
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			ab, err := experiments.RunTRRAblation(ctx, c.opts, c.opts.FirstModule("B0"), 64000)
			if err != nil {
				return err
			}
			return ab.Render(enc)
		}},
	{ID: "abl-defense", Title: "Ablation: RowHammer defense cost vs VPP", Section: "§8",
		Studies: []Study{StudyRowHammer},
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			sw, err := c.moduleSweepFor(ctx, c.opts.FirstModule("B3"))
			if err != nil {
				return err
			}
			dc, err := experiments.RunDefenseCost(sw)
			if err != nil {
				return err
			}
			return dc.Render(enc)
		}},
	{ID: "abl-secded", Title: "Ablation: SECDED coverage of retention failures", Section: "§6.3, Obsv. 14",
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			cov, err := experiments.RunSECDEDCoverage(ctx, c.opts, c.opts.FirstModule("B6"))
			if err != nil {
				return err
			}
			return cov.Render(enc)
		}},
	{ID: "ext-temp", Title: "Extension: VPP x temperature x RowHammer interaction", Section: "§7, future work",
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			ti, err := experiments.RunTempInteraction(ctx, c.opts, c.opts.FirstModule("B3"), nil)
			if err != nil {
				return err
			}
			return ti.Render(enc)
		}},
	{ID: "ext-attacks", Title: "Extension: attack shapes vs in-DRAM defenses", Section: "§8",
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			sd, err := experiments.RunDefenseShowdown(ctx, c.opts, c.opts.FirstModule("B0"), 400_000, 4000)
			if err != nil {
				return err
			}
			return sd.Render(enc)
		}},
	{ID: "ext-retfine", Title: "Extension: fine-grained per-row refresh windows", Section: "§6.3, footnote 14",
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			st, err := experiments.RunFineRefreshStudy(ctx, c.opts, c.opts.FirstModule("B6"))
			if err != nil {
				return err
			}
			return st.Render(enc)
		}},
	{ID: "ext-power", Title: "Extension: VPP rail electrical cost vs security benefit", Section: "§8",
		run: func(ctx context.Context, c *Campaign, enc Encoder) error {
			ps, err := experiments.RunPowerStudy(ctx, c.opts, c.opts.FirstModule("B3"))
			if err != nil {
				return err
			}
			return ps.Render(enc)
		}},
}

// registryIndex maps ids to registry positions.
var registryIndex = func() map[string]int {
	idx := make(map[string]int, len(registry))
	for i, e := range registry {
		idx[e.ID] = i
	}
	return idx
}()

// Experiments returns every experiment descriptor in the paper's
// presentation order. The returned slice is a copy.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ExperimentByID looks a descriptor up by id.
func ExperimentByID(id string) (Experiment, bool) {
	i, ok := registryIndex[id]
	if !ok {
		return Experiment{}, false
	}
	return registry[i], true
}

// ExperimentNames lists the runnable experiment ids in sorted order.
func ExperimentNames() []string {
	names := make([]string, 0, len(registry))
	for _, e := range registry {
		names = append(names, e.ID)
	}
	sort.Strings(names)
	return names
}

// RunExperiment regenerates one of the paper's tables or figures (or an
// ablation) by id, writing text output to w.
//
// It is a back-compat convenience over a throwaway Campaign; callers
// rendering more than one experiment should hold a Campaign so the shared
// studies run once.
func RunExperiment(name string, o Options, w io.Writer) error {
	c, err := NewCampaign(o)
	if err != nil {
		return err
	}
	return c.Run(context.Background(), name, NewTextEncoder(w))
}
