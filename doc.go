// Package rhvpp is a full-system reproduction of "Understanding RowHammer
// Under Reduced Wordline Voltage: An Experimental Study Using Real DRAM
// Devices" (DSN 2022) as a Go library.
//
// The physical study cannot run without 272 DDR4 chips, an FPGA, and a lab
// power supply; this package substitutes a behavioral DDR4 device simulator
// calibrated against every number the paper publishes (see DESIGN.md), a
// SoftMC-class memory controller, the bench instruments around them, and a
// SPICE-class circuit simulator for the paper's Figs. 8-9 — and then runs
// the paper's own characterization algorithms on top.
//
// Two entry points cover most uses:
//
//   - Lab gives interactive access to a single simulated module: sweep VPP,
//     hammer rows, measure HCfirst / BER / tRCDmin / retention, exactly as
//     the paper's Algorithms 1-3 do.
//   - Campaign is one characterization session over the tested population,
//     mirroring how the paper's evaluation works: a handful of underlying
//     studies (the RowHammer sweep, the tRCD sweep, the retention ladder,
//     the SPICE waveform and Monte-Carlo campaigns, the word-granularity
//     analysis) each run once — concurrently across modules, cancellable
//     via context — and every table and figure renders from those shared
//     results through a pluggable text/JSON/CSV encoder.
//
// A minimal session:
//
//	c, err := rhvpp.NewCampaign(rhvpp.DefaultOptions())   // validates Options
//	enc, err := rhvpp.NewEncoder(rhvpp.FormatJSON, os.Stdout)
//	for _, e := range rhvpp.Experiments() {
//		if err := c.Run(ctx, e.ID, enc); err != nil { ... }
//	}
//
// RunExperiment remains as a one-shot convenience wrapper over a throwaway
// Campaign for callers that only need a single table or figure.
//
// # Determinism and accuracy contracts
//
// Two invariants hold across every execution shape and are pinned by the
// golden tests (see docs/ARCHITECTURE.md for the full paper-to-code map):
//
//   - Byte-identical rendering at any scale-out: the same Options render
//     the same bytes at any Options.Jobs worker count, under the
//     subprocess ProcRunner backend, and across any -shard i/n split
//     merged with MergeArtifacts — work units are deterministic, every
//     parallel unit draws from its own index-derived RNG stream, and
//     partials fold in catalog/(level, run) order.
//   - Dense-reference accuracy: the SPICE engines are pinned to the dense
//     finite-difference reference — 1e-9 V for the incremental engine on
//     the fixed grid, spice.AccuracyTolV for the default adaptive engine,
//     whose grid-quantized threshold crossings are bit-identical to
//     fixed-grid integration on the golden population.
//
// Campaigns can be split across processes or hosts with Plan / ShardUnits /
// RunShard / MergeArtifacts (the Runner seam); see README.md for the CLI
// workflow.
//
// The coding invariants behind the byte-identical guarantee are catalogued
// in docs/DETERMINISM.md and enforced statically by the internal/analysis
// suite: `go run ./cmd/detlint ./...`. The shard protocol itself is under
// the same suite (docs/CONTRACTS.md): the canonical options fingerprint in
// this package's canonicalOptions is pinned to the Options struct's
// //detlint:fingerprint freeze, its exclusions carry //detlint:execshape
// justifications, and the study-dispatch switches here must cover the
// whole catalog exported by internal/experiments.
package rhvpp
