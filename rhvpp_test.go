package rhvpp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func quickLab(t *testing.T, name string) *Lab {
	t.Helper()
	prof, ok := ModuleByName(name)
	if !ok {
		t.Fatalf("no module %s", name)
	}
	return NewLab(prof,
		WithSeed(7),
		WithGeometry(Geometry{Banks: 1, RowsPerBank: 4096, RowBytes: 512, SubarrayRows: 512}),
		WithConfig(QuickConfig()),
	)
}

func TestModulesCatalog(t *testing.T) {
	ms := Modules()
	if len(ms) != 30 {
		t.Fatalf("modules = %d", len(ms))
	}
	if _, ok := ModuleByName("B3"); !ok {
		t.Error("B3 missing")
	}
	if _, ok := ModuleByName("nope"); ok {
		t.Error("bogus module found")
	}
}

func TestLabVoltageControl(t *testing.T) {
	lab := quickLab(t, "B3")
	if lab.VPP() != VPPNominal {
		t.Errorf("initial VPP = %v", lab.VPP())
	}
	if err := lab.SetVPP(1.8); err != nil {
		t.Fatal(err)
	}
	if lab.VPP() != 1.8 {
		t.Errorf("VPP after set = %v", lab.VPP())
	}
	min, err := lab.DiscoverVPPmin()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(min-lab.Profile().VPPMin) > 0.051 {
		t.Errorf("discovered VPPmin %v, profile says %v", min, lab.Profile().VPPMin)
	}
	if !lab.Responds() {
		t.Error("lab unresponsive after discovery")
	}
}

func TestLabCharacterizeRow(t *testing.T) {
	lab := quickLab(t, "B0")
	res, err := lab.CharacterizeRow(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.HCFirst <= 0 || res.BER <= 0 {
		t.Errorf("result = %+v", res)
	}
	ber, err := lab.MeasureBER(100, 2*res.HCFirst)
	if err != nil {
		t.Fatal(err)
	}
	if ber <= 0 {
		t.Error("no flips at 2x measured HCfirst")
	}
}

func TestLabTRCDAndRetention(t *testing.T) {
	lab := quickLab(t, "C0")
	trcd, err := lab.TRCDMin(60)
	if err != nil {
		t.Fatal(err)
	}
	if trcd <= 0 || trcd >= TRCDNominalNS {
		t.Errorf("tRCDmin = %v, want inside (0, 13.5) for a passing module", trcd)
	}
	if err := lab.SetTemperature(80); err != nil {
		t.Fatal(err)
	}
	ret, err := lab.RetentionSweep(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret.Points) == 0 {
		t.Error("empty retention sweep")
	}
}

func TestLabAggressorsAndRE(t *testing.T) {
	lab := quickLab(t, "C0") // direct mapping
	lo, hi, err := lab.Aggressors(100)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 99 || hi != 101 {
		t.Errorf("aggressors = %d, %d", lo, hi)
	}
	window := make([]int, 12)
	for i := range window {
		window[i] = 200 + i
	}
	if err := lab.ReverseEngineerAdjacency(window, 1_000_000); err != nil {
		t.Fatal(err)
	}
	lo, hi, err = lab.Aggressors(206)
	if err != nil {
		t.Fatal(err)
	}
	if lo+hi != 206*2 { // {205, 207} in either order
		t.Errorf("probed aggressors = %d, %d", lo, hi)
	}
}

func TestLabRecommendVPP(t *testing.T) {
	lab := quickLab(t, "B3")
	rec, err := lab.RecommendVPP([]int{100, 150, 200})
	if err != nil {
		t.Fatal(err)
	}
	// B3's HCfirst rises monotonically toward VPPmin; the policy should
	// recommend a reduced voltage.
	if rec >= VPPNominal {
		t.Errorf("recommended VPP = %v, want < nominal for B3", rec)
	}
}

func TestExperimentNamesComplete(t *testing.T) {
	names := ExperimentNames()
	want := []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b", "fig11",
		"cv", "summary", "guardband",
		"abl-attacks", "abl-wcdp", "abl-trr", "abl-defense", "abl-secded",
		"ext-temp", "ext-attacks", "ext-retfine", "ext-power"}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q missing", w)
		}
	}
	if len(names) != len(want) {
		t.Errorf("experiment count = %d, want %d", len(names), len(want))
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("nope", DefaultOptions(), &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	// Light experiments run end to end through the public API.
	o := DefaultOptions()
	o.ModuleNames = []string{"B3"}
	o.RowsPerChunk = 3
	o.Chunks = 2
	o.VPPStride = 4
	o.SpiceMCRuns = 20
	o.Geometry = Geometry{Banks: 1, RowsPerBank: 4096, RowBytes: 512, SubarrayRows: 512}
	cfg := QuickConfig()
	cfg.MinHCStep = 4000
	o.Config = cfg

	for _, name := range []string{"table1", "table2", "table3", "fig5", "fig8b"} {
		var buf bytes.Buffer
		if err := RunExperiment(name, o, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestRunExperimentTable1Content(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table1", DefaultOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "272") {
		t.Error("table1 missing chip count")
	}
}
