package rhvpp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"

	"github.com/dramstudy/rhvpp/internal/artifact"
	"github.com/dramstudy/rhvpp/internal/experiments"
	"github.com/dramstudy/rhvpp/internal/pool"
)

// WorkUnit names one independently-executable slice of a study: a per-module
// testbed for the RowHammer / tRCD / retention / word-analysis / CV sweeps,
// a per-VPP-level Monte-Carlo run range for the SPICE study. Units are
// deterministic — the same Options always plan the same units in the same
// catalog/level order — which is what lets a campaign split across processes
// and merge back byte-identically.
type WorkUnit = experiments.UnitRef

// UnitResult carries one executed unit's serialized partial result. The
// payload schema belongs to the study; callers treat it as opaque and feed
// it back through MergeArtifacts (or Campaign, which assembles internally).
type UnitResult struct {
	Unit WorkUnit        `json:"unit"`
	Data json.RawMessage `json:"data"`
}

// Runner executes the work units of one study. It is the campaign's
// execution backend seam: LocalRunner (the default) runs units in-process on
// the bounded worker pool, ProcRunner fans them out to shard subprocesses,
// and future backends (SSH fleets, containers) implement the same contract.
//
// Contract: RunStudy returns one UnitResult per requested unit (any order);
// results must be exactly what experiments.RunUnits produces for the unit,
// so the merge step can fold them in catalog/(level, run) order and
// reproduce single-process output byte for byte. On context cancellation it
// returns an error satisfying errors.Is(err, ctx.Err()).
type Runner interface {
	RunStudy(ctx context.Context, o Options, study Study, units []WorkUnit) ([]UnitResult, error)
}

// LocalRunner executes units in-process: module units Options.Jobs at a time
// through the shared bounded pool, SPICE Monte-Carlo units as one sweep over
// a single global run queue. It is the default backend and reproduces the
// pre-Runner Campaign behavior exactly.
type LocalRunner struct{}

// RunStudy implements Runner.
func (LocalRunner) RunStudy(ctx context.Context, o Options, study Study, units []WorkUnit) ([]UnitResult, error) {
	payloads, err := experiments.RunUnits(ctx, o, string(study), units)
	if err != nil {
		return nil, err
	}
	out := make([]UnitResult, len(units))
	for i, u := range units {
		out[i] = UnitResult{Unit: u, Data: payloads[i]}
	}
	return out, nil
}

// ShardRequest is the subprocess protocol of ProcRunner and `rhvpp
// -shard-exec`: the spawned process reads one request (a JSON file whose
// path is appended to the command line), executes the units under the given
// options, and writes the resulting shard artifact JSON to stdout.
type ShardRequest struct {
	Shard   int        `json:"shard"`
	Of      int        `json:"of"`
	Options Options    `json:"options"`
	Units   []WorkUnit `json:"units"`
}

// DecodeShardRequest reads one ShardRequest — the `-shard-exec` protocol
// input a shard subprocess consumes.
func DecodeShardRequest(r io.Reader) (*ShardRequest, error) {
	var req ShardRequest
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return nil, fmt.Errorf("rhvpp: decoding shard request: %w", err)
	}
	return &req, nil
}

// ProcRunner fans work units out to shard subprocesses, each executing a
// `rhvpp -shard-exec`-style protocol: the runner splits a study's units
// round-robin into Shards groups, spawns Command+[requestPath] per group,
// and collects each group's shard artifact from the subprocess's stdout.
//
// It exists both as a working multi-process backend on one machine and as
// the reference implementation of the artifact plumbing a multi-host backend
// needs; the manual equivalent is `rhvpp -shard i/n` per host plus `rhvpp
// merge`.
type ProcRunner struct {
	// Command is the argv prefix of one shard subprocess, e.g.
	// []string{"/usr/local/bin/rhvpp", "-shard-exec"}. The request file path
	// is appended as the final argument. Required.
	Command []string
	// Shards is the number of subprocesses to split units across (1 if
	// unset or smaller).
	Shards int
}

// RunStudy implements Runner.
func (r ProcRunner) RunStudy(ctx context.Context, o Options, study Study, units []WorkUnit) ([]UnitResult, error) {
	if len(r.Command) == 0 {
		return nil, fmt.Errorf("rhvpp: ProcRunner needs a Command to spawn shard subprocesses")
	}
	shards := r.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > len(units) {
		shards = len(units)
	}
	groups := make([][]WorkUnit, shards)
	for g := range groups {
		var err error
		if groups[g], err = ShardUnits(units, g, shards); err != nil {
			return nil, err
		}
	}
	// Split the worker budget across subprocesses: each shard inheriting the
	// full Jobs setting would oversubscribe the machine shards-fold. The
	// remainder spreads one extra worker over the first shards so the whole
	// budget stays in use. Jobs never changes what a shard measures, only
	// how fast.
	effective := o.Jobs
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	jobsFor := func(g int) int {
		j := effective / shards
		if g < effective%shards {
			j++
		}
		if j < 1 {
			j = 1
		}
		return j
	}

	// Fail fast via the pool: the first shard error cancels the siblings
	// instead of letting hours of doomed work run to completion, and each
	// shard's results land in the pool's own slot for that index — no
	// goroutine writes memory it shares with a sibling.
	idx := make([]int, shards)
	for g := range idx {
		idx[g] = g
	}
	results, err := pool.Run(ctx, shards, idx, func(ctx context.Context, g int) ([]UnitResult, error) {
		so := o
		so.Jobs = jobsFor(g)
		rs, err := r.runShardProc(ctx, so, g, shards, groups[g])
		if err != nil {
			return nil, fmt.Errorf("rhvpp: shard %d/%d: %w", g, shards, err)
		}
		return rs, nil
	})
	if err != nil {
		// The caller's cancellation wins (pool.Run returns it bare);
		// otherwise the pool already preferred the genuine shard failure
		// over cancellation fallout from its own fail-fast cancel.
		if perr := ctx.Err(); perr != nil {
			return nil, fmt.Errorf("rhvpp: shard fan-out: %w", perr)
		}
		return nil, err
	}
	out := make([]UnitResult, 0, len(units))
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out, nil
}

// runShardProc executes one subprocess for one unit group and decodes its
// artifact.
func (r ProcRunner) runShardProc(ctx context.Context, o Options, shard, of int, units []WorkUnit) ([]UnitResult, error) {
	req, err := os.CreateTemp("", "rhvpp-shard-*.json")
	if err != nil {
		return nil, err
	}
	defer os.Remove(req.Name()) //detlint:ignore sinkerr best-effort temp cleanup of the request file
	enc := json.NewEncoder(req)
	if err := enc.Encode(ShardRequest{Shard: shard, Of: of, Options: o, Units: units}); err != nil {
		req.Close() //detlint:ignore sinkerr already failing, the encode error is the one to surface
		return nil, err
	}
	if err := req.Close(); err != nil {
		return nil, err
	}

	var stdout, stderr bytes.Buffer
	args := append(append([]string(nil), r.Command[1:]...), req.Name())
	cmd := exec.CommandContext(ctx, r.Command[0], args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err() // killed by cancellation, not a shard fault
		}
		return nil, fmt.Errorf("%s: %w (stderr: %s)", r.Command[0], err, bytes.TrimSpace(stderr.Bytes()))
	}
	art, err := artifact.Decode(&stdout)
	if err != nil {
		return nil, err
	}
	return unitResultsFromArtifact(art, units)
}

// unitResultsFromArtifact checks that the artifact covers exactly the
// requested units — nothing missing, nothing invented — and converts them.
func unitResultsFromArtifact(art *artifact.Artifact, units []WorkUnit) ([]UnitResult, error) {
	type id struct{ study, key string }
	want := make(map[id]bool, len(units))
	for _, u := range units {
		want[id{u.Study, u.Key}] = true
	}
	got := make(map[id]artifact.Unit, len(art.Units))
	for _, u := range art.Units {
		if !want[id{u.Study, u.Key}] {
			return nil, fmt.Errorf("rhvpp: shard artifact carries unrequested unit %s/%q", u.Study, u.Key)
		}
		got[id{u.Study, u.Key}] = u
	}
	out := make([]UnitResult, len(units))
	for i, w := range units {
		u, ok := got[id{w.Study, w.Key}]
		if !ok {
			return nil, fmt.Errorf("rhvpp: shard artifact is missing unit %s/%q", w.Study, w.Key)
		}
		out[i] = UnitResult{Unit: WorkUnit{Study: u.Study, Key: u.Key, Index: u.Index}, Data: u.Data}
	}
	return out, nil
}

// ShardArtifact is the versioned on-disk encoding of one shard's study
// results; see internal/artifact for the format and compatibility contract.
type ShardArtifact = artifact.Artifact

// EncodeArtifact writes a shard artifact as JSON with deterministic unit
// order.
func EncodeArtifact(w io.Writer, a *ShardArtifact) error { return artifact.Encode(w, a) }

// DecodeArtifact reads one shard artifact, rejecting unknown schemas and
// format versions this build does not speak.
func DecodeArtifact(r io.Reader) (*ShardArtifact, error) { return artifact.Decode(r) }

// ShardableStudies lists the studies that partition into work units, in plan
// order. The waveform study is absent by design: it is a single cheap
// deterministic simulation, recomputed locally by whichever process renders.
func ShardableStudies() []Study {
	names := experiments.ShardableStudies()
	out := make([]Study, len(names))
	for i, n := range names {
		out[i] = Study(n)
	}
	return out
}

// PlanUnits returns the deterministic work units of the given studies
// (default: every shardable study) under o, concatenated in plan order.
// Slicing this list with ShardUnits and executing each slice anywhere — any
// process, any host, any worker count — yields artifacts MergeArtifacts can
// fold back into the exact single-process campaign.
func PlanUnits(o Options, studies ...Study) ([]WorkUnit, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(studies) == 0 {
		studies = ShardableStudies()
	}
	seen := make(map[Study]bool, len(studies))
	var units []WorkUnit
	for _, s := range studies {
		if seen[s] {
			return nil, fmt.Errorf("rhvpp: study %q listed twice", s)
		}
		seen[s] = true
		su, err := experiments.PlanStudy(o, string(s))
		if err != nil {
			return nil, err
		}
		units = append(units, su...)
	}
	return units, nil
}

// Plan returns the campaign's work units for the given studies (default:
// every shardable study).
func (c *Campaign) Plan(studies ...Study) ([]WorkUnit, error) {
	return PlanUnits(c.opts, studies...)
}

// ShardUnits returns the units assigned to shard `shard` of `of`: every
// of-th unit starting at shard, so load spreads across studies and the
// module catalog. The assignment is deterministic and the union over all
// shards is exactly `units`.
func ShardUnits(units []WorkUnit, shard, of int) ([]WorkUnit, error) {
	if of < 1 {
		return nil, fmt.Errorf("rhvpp: shard set size %d < 1", of)
	}
	if shard < 0 || shard >= of {
		return nil, fmt.Errorf("rhvpp: shard index %d outside [0,%d)", shard, of)
	}
	var out []WorkUnit
	for i, u := range units {
		if i%of == shard {
			out = append(out, u)
		}
	}
	return out, nil
}

// canonicalOptions is the options fingerprint embedded in artifacts.
// Execution-irrelevant knobs are excluded: Jobs changes only how fast a
// shard runs, never what it measures, so shards produced at different
// worker counts merge freely. SpiceBatchWidth is the same kind of knob —
// every lane of the batched engine replicates the scalar float-op sequence
// bit-for-bit (see internal/spice/batch.go), so shards produced at
// different widths are byte-identical and merge freely too.
func canonicalOptions(o Options) (json.RawMessage, error) {
	//detlint:execshape Jobs only splits the worker budget; every unit computes the same bytes at any count
	o.Jobs = 0
	//detlint:execshape SpiceBatchWidth only picks the lane count; each lane replicates the scalar float-op order bit-for-bit
	o.SpiceBatchWidth = 0
	raw, err := json.Marshal(o)
	if err != nil {
		return nil, fmt.Errorf("rhvpp: encoding options: %w", err)
	}
	return raw, nil
}

// RunShard executes the given units in-process and packages their results as
// shard `shard` of `of`. It is the library form of `rhvpp -shard i/n`.
func RunShard(ctx context.Context, o Options, shard, of int, units []WorkUnit) (*ShardArtifact, error) {
	return RunShardObserved(ctx, o, shard, of, units, nil)
}

// MergeArtifacts validates a complete shard set and opens a Campaign whose
// covered studies are preloaded from the artifacts, folded in catalog/(level,
// run) order — rendering any experiment from it reproduces the
// single-process campaign byte for byte. Studies absent from the artifacts
// (and the deliberately-local waveform study) compute on first use, so the
// merged campaign can still render every experiment id.
//
// The campaign options come from the artifacts themselves; all shards must
// carry the identical canonical options.
func MergeArtifacts(arts ...*ShardArtifact) (*Campaign, error) {
	merged, err := artifact.Merge(arts)
	if err != nil {
		return nil, err
	}
	var o Options
	if err := json.Unmarshal(merged.Options, &o); err != nil {
		return nil, fmt.Errorf("rhvpp: decoding artifact options: %w", err)
	}
	c, err := NewCampaign(o)
	if err != nil {
		return nil, err
	}
	byStudy := make(map[string]map[string]json.RawMessage)
	for _, u := range merged.Units {
		m := byStudy[u.Study]
		if m == nil {
			m = make(map[string]json.RawMessage)
			byStudy[u.Study] = m
		}
		m[u.Key] = u.Data
	}
	for study, data := range byStudy {
		switch Study(study) {
		case StudyRowHammer:
			st, err := experiments.AssembleRowHammerStudy(o, data)
			if err != nil {
				return nil, err
			}
			c.rowhammer.set(st)
		case StudyTRCD:
			st, err := experiments.AssembleTRCDStudy(o, data)
			if err != nil {
				return nil, err
			}
			c.trcd.set(st)
		case StudyRetention:
			st, err := experiments.AssembleRetentionStudy(o, data)
			if err != nil {
				return nil, err
			}
			c.retention.set(st)
		case StudyWordAnalysis:
			st, err := experiments.AssembleWordAnalysis(o, data)
			if err != nil {
				return nil, err
			}
			c.words.set(st)
		case StudyCV:
			st, err := experiments.AssembleCVStudy(o, data)
			if err != nil {
				return nil, err
			}
			c.cv.set(st)
		case StudySpiceMC:
			st, err := experiments.AssembleMCStudy(o, data)
			if err != nil {
				return nil, err
			}
			c.spiceMC.set(st)
		default:
			return nil, fmt.Errorf("rhvpp: artifact carries units of unknown study %q", study)
		}
	}
	return c, nil
}
