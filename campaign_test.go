package rhvpp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// campaignOptions is a tightly scoped campaign for fast Campaign tests.
func campaignOptions(modules ...string) Options {
	o := DefaultOptions()
	o.Geometry = Geometry{Banks: 1, RowsPerBank: 4096, RowBytes: 512, SubarrayRows: 512}
	cfg := QuickConfig()
	cfg.MinHCStep = 4000
	o.Config = cfg
	o.Chunks = 2
	o.RowsPerChunk = 3
	o.VPPStride = 4
	o.SpiceMCRuns = 20
	o.RetentionVPPLevels = []float64{2.5, 1.9, 1.5}
	o.ModuleNames = modules
	return o
}

func TestNewCampaignValidatesModuleNames(t *testing.T) {
	o := campaignOptions("B3", "ZZ")
	if _, err := NewCampaign(o); err == nil {
		t.Fatal("unknown module accepted")
	} else if !strings.Contains(err.Error(), "ZZ") || !strings.Contains(err.Error(), "A0") {
		t.Errorf("error should name the offender and the known labels: %v", err)
	}
	if _, err := NewCampaign(campaignOptions("B3")); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}

// TestCampaignCachesStudies is the acceptance property of the redesign:
// running every experiment id that shares a study through one Campaign
// executes each underlying study driver exactly once.
func TestCampaignCachesStudies(t *testing.T) {
	c, err := NewCampaign(campaignOptions("B3"))
	if err != nil {
		t.Fatal(err)
	}
	groups := map[Study][]string{
		StudyRowHammer:    {"table3", "fig3", "fig4", "fig5", "fig6", "summary", "abl-defense"},
		StudyTRCD:         {"fig7", "guardband"},
		StudyWaveforms:    {"fig8a", "fig9a"},
		StudySpiceMC:      {"fig8b", "fig9b"},
		StudyRetention:    {"fig10a", "fig10b"},
		StudyWordAnalysis: {"fig11"},
	}
	for study, ids := range groups {
		for _, id := range ids {
			var buf bytes.Buffer
			if err := c.Run(t.Context(), id, NewTextEncoder(&buf)); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", id)
			}
		}
		if got := c.StudyRuns()[study]; got != 1 {
			t.Errorf("study %s executed %d times across %v, want exactly 1", study, got, ids)
		}
	}
}

// TestCampaignConcurrentRunsShareOneExecution drives the same study from
// many goroutines at once; the memoization must serialize to a single run.
func TestCampaignConcurrentRunsShareOneExecution(t *testing.T) {
	c, err := NewCampaign(campaignOptions("B3"))
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"table3", "fig3", "fig5", "summary", "fig4", "fig6"}
	var wg sync.WaitGroup
	errs := make([]error, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			errs[i] = c.Run(t.Context(), id, NewTextEncoder(&buf))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", ids[i], err)
		}
	}
	if got := c.StudyRuns()[StudyRowHammer]; got != 1 {
		t.Errorf("concurrent renders executed the RowHammer study %d times, want 1", got)
	}
}

// TestCampaignWorkerCountDeterminism checks the other acceptance property:
// per-study output is byte-identical at jobs=1 and jobs=8.
func TestCampaignWorkerCountDeterminism(t *testing.T) {
	render := func(jobs int) string {
		o := campaignOptions("B3", "C0", "A3")
		o.Jobs = jobs
		c, err := NewCampaign(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		enc := NewTextEncoder(&buf)
		for _, id := range []string{"table3", "fig5", "fig10b", "summary"} {
			if err := c.Run(t.Context(), id, enc); err != nil {
				t.Fatalf("jobs=%d %s: %v", jobs, id, err)
			}
		}
		return buf.String()
	}
	if serial, parallel := render(1), render(8); serial != parallel {
		t.Errorf("output differs between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
			serial, parallel)
	}
}

func TestCampaignHonorsCancellation(t *testing.T) {
	c, err := NewCampaign(campaignOptions("B3"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	var buf bytes.Buffer
	if err := c.Run(ctx, "table3", NewTextEncoder(&buf)); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run returned %v, want context.Canceled", err)
	}
	// A canceled attempt must not poison the session: the same campaign
	// with a live context measures and succeeds.
	buf.Reset()
	if err := c.Run(t.Context(), "table3", NewTextEncoder(&buf)); err != nil {
		t.Fatalf("run after cancellation failed: %v", err)
	}
	if !strings.Contains(buf.String(), "B3") {
		t.Errorf("post-cancellation output wrong:\n%s", buf.String())
	}
}

// TestCellCanceledComputationDoesNotPoisonUnderConcurrency pins the memo
// cell's cancellation semantics with two racing callers: the first caller's
// computation aborts with context.Canceled and must NOT be memoized; the
// second caller — already blocked on the cell while the first computes —
// must then re-measure under its own live context and succeed; a third
// caller gets the memoized success without running anything.
func TestCellCanceledComputationDoesNotPoisonUnderConcurrency(t *testing.T) {
	var c cell[int]
	firstEntered := make(chan struct{})
	firstRelease := make(chan struct{})
	var runs atomic.Int32

	firstDone := make(chan error, 1)
	go func() {
		_, err := c.get(func() (int, error) {
			runs.Add(1)
			close(firstEntered)
			<-firstRelease
			return 0, fmt.Errorf("sweep aborted: %w", context.Canceled)
		})
		firstDone <- err
	}()

	<-firstEntered // the first caller is now computing inside the cell
	secondDone := make(chan struct{})
	var secondVal int
	var secondErr error
	go func() {
		defer close(secondDone)
		// Blocks on the cell's lock until the first computation finishes.
		secondVal, secondErr = c.get(func() (int, error) {
			runs.Add(1)
			return 42, nil
		})
	}()

	close(firstRelease)
	if err := <-firstDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("first caller returned %v, want context.Canceled", err)
	}
	<-secondDone
	if secondErr != nil || secondVal != 42 {
		t.Fatalf("second caller got (%d, %v), want (42, nil): the canceled attempt poisoned the cell", secondVal, secondErr)
	}

	// The success IS memoized: a third caller must not run its function.
	third, err := c.get(func() (int, error) {
		runs.Add(1)
		return -1, nil
	})
	if err != nil || third != 42 {
		t.Fatalf("third caller got (%d, %v), want memoized (42, nil)", third, err)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("computation ran %d times, want 2 (canceled attempt + live re-measure)", got)
	}
}

// TestCellMemoizesGenuineFailures: non-cancellation errors are results, not
// transient conditions — they memoize like values.
func TestCellMemoizesGenuineFailures(t *testing.T) {
	var c cell[int]
	var runs atomic.Int32
	boom := errors.New("testbed fault")
	for i := 0; i < 3; i++ {
		if _, err := c.get(func() (int, error) {
			runs.Add(1)
			return 0, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("call %d returned %v, want the memoized fault", i, err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("failing computation ran %d times, want 1", got)
	}
}

// TestCampaignStandaloneAblationUsesSharedStudy pins the descriptor
// contract: abl-defense declares StudyRowHammer, so running it alone must
// execute that study (once), not a private side sweep.
func TestCampaignStandaloneAblationUsesSharedStudy(t *testing.T) {
	c, err := NewCampaign(campaignOptions("B3"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Run(t.Context(), "abl-defense", NewTextEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	if got := c.StudyRuns()[StudyRowHammer]; got != 1 {
		t.Errorf("abl-defense executed the RowHammer study %d times, want 1", got)
	}
}

func TestExperimentDescriptors(t *testing.T) {
	exps := Experiments()
	if len(exps) != len(ExperimentNames()) {
		t.Fatalf("Experiments() has %d entries, ExperimentNames() %d", len(exps), len(ExperimentNames()))
	}
	for _, e := range exps {
		if e.Title == "" || e.Section == "" {
			t.Errorf("experiment %q lacks a title or section: %+v", e.ID, e)
		}
		got, ok := ExperimentByID(e.ID)
		if !ok || got.Title != e.Title {
			t.Errorf("ExperimentByID(%q) = %+v, %v", e.ID, got, ok)
		}
	}
	for _, id := range []string{"table3", "fig3", "fig4", "fig5", "fig6", "summary"} {
		e, _ := ExperimentByID(id)
		if len(e.Studies) != 1 || e.Studies[0] != StudyRowHammer {
			t.Errorf("%s should declare the RowHammer study dependency, got %v", id, e.Studies)
		}
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("bogus experiment id resolved")
	}
}

func TestCampaignEncodersProduceDistinctFormats(t *testing.T) {
	c, err := NewCampaign(campaignOptions("B3"))
	if err != nil {
		t.Fatal(err)
	}
	outputs := map[Format]string{}
	for _, f := range []Format{FormatText, FormatJSON, FormatCSV} {
		var buf bytes.Buffer
		enc, err := NewEncoder(f, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(t.Context(), "table1", enc); err != nil {
			t.Fatal(err)
		}
		outputs[f] = buf.String()
	}
	if !strings.Contains(outputs[FormatJSON], `"kind":"table"`) {
		t.Errorf("JSON output missing kind tag:\n%s", outputs[FormatJSON])
	}
	if !strings.HasPrefix(outputs[FormatCSV], "# Table 1") {
		t.Errorf("CSV output missing title comment:\n%s", outputs[FormatCSV])
	}
	if !strings.Contains(outputs[FormatText], "Mfr") || strings.Contains(outputs[FormatText], `"kind"`) {
		t.Errorf("text output wrong:\n%s", outputs[FormatText])
	}
}
