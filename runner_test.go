package rhvpp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/physics"
)

// shardTestOptions is a minimal campaign touching two studies' units fast.
func shardTestOptions() Options {
	o := campaignOptions("B3", "C0")
	o.SpiceMCRuns = 10
	return o
}

func TestPlanUnitsCoversEveryShardableStudyDeterministically(t *testing.T) {
	o := shardTestOptions()
	units, err := PlanUnits(o)
	if err != nil {
		t.Fatal(err)
	}
	perStudy := map[Study]int{}
	for _, u := range units {
		perStudy[Study(u.Study)]++
	}
	for _, s := range ShardableStudies() {
		if perStudy[s] == 0 {
			t.Errorf("plan has no units for study %s", s)
		}
	}
	if perStudy[StudyWaveforms] != 0 {
		t.Error("waveforms must not appear in the plan")
	}
	again, _ := PlanUnits(o)
	if len(again) != len(units) {
		t.Fatalf("plan is not deterministic: %d vs %d units", len(again), len(units))
	}
	for i := range units {
		if units[i] != again[i] {
			t.Fatalf("plan unit %d differs between calls: %+v vs %+v", i, units[i], again[i])
		}
	}
	// Scoped plans carry only the requested studies.
	rh, err := PlanUnits(o, StudyRowHammer)
	if err != nil {
		t.Fatal(err)
	}
	if len(rh) != 2 || rh[0].Key != "B3" || rh[1].Key != "C0" {
		t.Errorf("scoped plan = %+v", rh)
	}
	if _, err := PlanUnits(o, StudyRowHammer, StudyRowHammer); err == nil {
		t.Error("duplicate study accepted")
	}
	if _, err := PlanUnits(o, StudyWaveforms); err == nil {
		t.Error("non-shardable study accepted")
	}
}

func TestShardUnitsPartitionsExactly(t *testing.T) {
	o := shardTestOptions()
	units, err := PlanUnits(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 5} {
		seen := map[WorkUnit]int{}
		total := 0
		for i := 0; i < n; i++ {
			part, err := ShardUnits(units, i, n)
			if err != nil {
				t.Fatal(err)
			}
			total += len(part)
			for _, u := range part {
				seen[u]++
			}
		}
		if total != len(units) || len(seen) != len(units) {
			t.Errorf("n=%d: shards cover %d units (%d distinct), want %d", n, total, len(seen), len(units))
		}
	}
	if _, err := ShardUnits(units, 2, 2); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := ShardUnits(units, 0, 0); err == nil {
		t.Error("zero shard count accepted")
	}
}

// renderCampaign renders the given experiment ids through one campaign into
// a single buffer.
func renderCampaign(t *testing.T, c *Campaign, ids ...string) string {
	t.Helper()
	var buf bytes.Buffer
	enc := NewTextEncoder(&buf)
	for _, id := range ids {
		if err := c.Run(t.Context(), id, enc); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	return buf.String()
}

// TestShardMergeReproducesLocalCampaign is the library-level acceptance
// property: shard artifacts produced by RunShard (any way count), merged by
// MergeArtifacts, render byte-identically to a plain local campaign — and
// without re-running any study.
func TestShardMergeReproducesLocalCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign equivalence in -short mode")
	}
	o := shardTestOptions()
	ids := []string{"table3", "fig5", "fig8b", "cv", "guardband", "fig10b", "fig11", "summary"}
	local, err := NewCampaign(o)
	if err != nil {
		t.Fatal(err)
	}
	want := renderCampaign(t, local, ids...)

	units, err := PlanUnits(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3} {
		arts := make([]*ShardArtifact, n)
		for i := 0; i < n; i++ {
			part, err := ShardUnits(units, i, n)
			if err != nil {
				t.Fatal(err)
			}
			if arts[i], err = RunShard(t.Context(), o, i, n, part); err != nil {
				t.Fatal(err)
			}
		}
		merged, err := MergeArtifacts(arts...)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := renderCampaign(t, merged, ids...); got != want {
			t.Errorf("n=%d: merged rendering differs from local campaign", n)
		}
		// Every sharded study was preloaded: rendering must not have
		// executed any of them again in the merged session.
		for s, runs := range merged.StudyRuns() {
			if s != StudyWaveforms && runs != 0 {
				t.Errorf("n=%d: merged campaign re-ran study %s %d time(s)", n, s, runs)
			}
		}
	}
}

// TestShardArtifactEncodingRoundTrip: artifacts survive their file encoding,
// and the merged campaign still renders identically.
func TestShardArtifactEncodingRoundTrip(t *testing.T) {
	o := shardTestOptions()
	units, err := PlanUnits(o, StudyCV)
	if err != nil {
		t.Fatal(err)
	}
	art, err := RunShard(t.Context(), o, 0, 1, units)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := MergeArtifacts(art)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := MergeArtifacts(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderCampaign(t, c1, "cv"), renderCampaign(t, c2, "cv"); a != b {
		t.Errorf("decoded artifact renders differently:\n%s\nvs\n%s", a, b)
	}
}

func TestMergeArtifactsValidation(t *testing.T) {
	o := shardTestOptions()
	units, err := PlanUnits(o, StudyCV)
	if err != nil {
		t.Fatal(err)
	}
	half0, _ := ShardUnits(units, 0, 2)
	half1, _ := ShardUnits(units, 1, 2)
	a0, err := RunShard(t.Context(), o, 0, 2, half0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := RunShard(t.Context(), o, 1, 2, half1)
	if err != nil {
		t.Fatal(err)
	}

	// Incomplete set.
	if _, err := MergeArtifacts(a0); err == nil {
		t.Error("incomplete shard set merged")
	}
	// Duplicate shard.
	if _, err := MergeArtifacts(a0, a0); err == nil {
		t.Error("duplicate shard merged")
	}
	// Options drift: same shapes, different seed.
	o2 := shardTestOptions()
	o2.Seed = o.Seed + 1
	b1, err := RunShard(t.Context(), o2, 1, 2, half1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeArtifacts(a0, b1); err == nil {
		t.Error("mixed-options shard set merged")
	}
	// Jobs is execution-irrelevant and excluded from the fingerprint.
	o3 := shardTestOptions()
	o3.Jobs = 7
	c1, err := RunShard(t.Context(), o3, 1, 2, half1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeArtifacts(a0, c1); err != nil {
		t.Errorf("differing Jobs must merge (fingerprint excludes it): %v", err)
	}
	// The valid set merges.
	if _, err := MergeArtifacts(a1, a0); err != nil {
		t.Errorf("valid shard set rejected: %v", err)
	}
}

// staticRunner returns canned results; used to test Campaign's runner-output
// validation.
type staticRunner struct{ results []UnitResult }

func (r staticRunner) RunStudy(context.Context, Options, Study, []WorkUnit) ([]UnitResult, error) {
	return r.results, nil
}

func TestCampaignRejectsMisbehavingRunner(t *testing.T) {
	o := shardTestOptions()
	raw := json.RawMessage(`{}`)
	foreign := UnitResult{Unit: WorkUnit{Study: string(StudyTRCD), Key: "B3", Index: 0}, Data: raw}
	c, err := NewCampaign(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WithRunner(staticRunner{[]UnitResult{foreign}}).CV(t.Context()); err == nil {
		t.Error("foreign-study unit accepted")
	}
	dup := UnitResult{Unit: WorkUnit{Study: string(StudyCV), Key: "B3", Index: 0}, Data: raw}
	c2, _ := NewCampaign(o)
	if _, err := c2.WithRunner(staticRunner{[]UnitResult{dup, dup}}).CV(t.Context()); err == nil {
		t.Error("duplicate unit accepted")
	}
	// Missing units surface as an incomplete-assembly error naming the unit.
	c3, _ := NewCampaign(o)
	_, err = c3.WithRunner(staticRunner{nil}).CV(t.Context())
	if err == nil || !strings.Contains(err.Error(), "B3") {
		t.Errorf("missing units should fail naming the first missing unit, got: %v", err)
	}
}

// TestProcRunnerNeedsCommand pins the explicit-configuration contract.
func TestProcRunnerNeedsCommand(t *testing.T) {
	c, err := NewCampaign(shardTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WithRunner(ProcRunner{Shards: 2}).CV(t.Context()); err == nil {
		t.Error("ProcRunner without Command must error")
	}
}

// TestProcRunnerReportsSubprocessFailure: a failing shard subprocess surfaces
// as a genuine error (with the shard named), not a hang or a cancellation.
func TestProcRunnerReportsSubprocessFailure(t *testing.T) {
	c, err := NewCampaign(shardTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.WithRunner(ProcRunner{Command: []string{"false"}, Shards: 2}).CV(t.Context())
	if err == nil {
		t.Fatal("failing subprocess reported success")
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("subprocess failure mis-reported as cancellation: %v", err)
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Errorf("error should locate the failing shard: %v", err)
	}
}

// TestRunShardHonorsCancellation: a canceled shard run returns the context
// error so callers do not write a partial artifact.
func TestRunShardHonorsCancellation(t *testing.T) {
	o := shardTestOptions()
	units, err := PlanUnits(o, StudyRowHammer)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if _, err := RunShard(ctx, o, 0, 1, units); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled RunShard returned %v, want context.Canceled", err)
	}
}

// TestShardArtifactsMergeAcrossOptionsGrowth pins the omitempty contract
// behind the //detlint:fingerprint v1 freeze: an artifact encoded by a
// binary predating the post-v1 knobs (SpiceFixedGrid, SpiceLTETolV,
// SpiceBatchWidth) must still merge with one encoded today, because those
// fields vanish from the canonical encoding at their zero values. A
// non-default post-v1 knob that changes the measurement is a genuine
// fingerprint difference and must refuse to merge.
func TestShardArtifactsMergeAcrossOptionsGrowth(t *testing.T) {
	// optionsV1 mirrors Options as of the v1 fingerprint freeze, before
	// any omitempty field existed. If canonicalOptions ever stops encoding
	// byte-identically to this shape at default knob values, artifacts
	// from older campaign runs stop merging — that is the regression this
	// test exists to catch.
	type optionsV1 struct {
		Seed                 uint64
		Geometry             physics.Geometry
		Config               core.Config
		Chunks, RowsPerChunk int
		ModuleNames          []string
		VPPStride            int
		SpiceMCRuns          int
		RetentionVPPLevels   []float64
		Jobs                 int
	}
	o := shardTestOptions()
	now, err := canonicalOptions(o)
	if err != nil {
		t.Fatal(err)
	}
	old, err := json.Marshal(optionsV1{
		Seed:               o.Seed,
		Geometry:           o.Geometry,
		Config:             o.Config,
		Chunks:             o.Chunks,
		RowsPerChunk:       o.RowsPerChunk,
		ModuleNames:        o.ModuleNames,
		VPPStride:          o.VPPStride,
		SpiceMCRuns:        o.SpiceMCRuns,
		RetentionVPPLevels: o.RetentionVPPLevels,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(now, old) {
		t.Fatalf("canonical options drifted from the v1 freeze:\n v1: %s\nnow: %s", old, now)
	}

	units, err := PlanUnits(o, StudyCV)
	if err != nil {
		t.Fatal(err)
	}
	half0, _ := ShardUnits(units, 0, 2)
	half1, _ := ShardUnits(units, 1, 2)
	a0, err := RunShard(t.Context(), o, 0, 2, half0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := RunShard(t.Context(), o, 1, 2, half1)
	if err != nil {
		t.Fatal(err)
	}
	// Rewind a1 to the pre-growth encoding, as if decoded from an artifact
	// written before the omitempty fields existed.
	a1.Options = old
	if _, err := MergeArtifacts(a0, a1); err != nil {
		t.Errorf("pre-growth artifact refused to merge with a current one: %v", err)
	}

	// A non-default post-v1 knob must surface in the fingerprint.
	o2 := o
	o2.SpiceFixedGrid = true
	b1, err := RunShard(t.Context(), o2, 1, 2, half1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeArtifacts(a0, b1); err == nil {
		t.Error("shards run under different SpiceFixedGrid settings merged; the knob is silently absent from the fingerprint")
	}
}
