package rhvpp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test -run TestGoldenCampaignOutput -update .
//
// The committed goldens were captured before the streaming-statistics
// refactor, so they pin the aggregation pipeline's output byte-for-byte
// across the batch-to-streaming migration.
var update = flag.Bool("update", false, "rewrite testdata golden files")

// goldenOptions is a scoped campaign exercising every merge path the
// streaming refactor touches: two modules per manufacturer (so per-module
// accumulators merge in catalog order), a tRCD-failing module (A0), a
// retention-failing module (B6), and a Monte-Carlo sweep large enough to
// populate the Fig. 8b/9b distribution columns.
func goldenOptions() Options {
	o := DefaultOptions()
	o.Geometry = Geometry{Banks: 1, RowsPerBank: 4096, RowBytes: 512, SubarrayRows: 512}
	cfg := QuickConfig()
	cfg.MinHCStep = 4000
	o.Config = cfg
	o.Chunks = 2
	o.RowsPerChunk = 3
	o.VPPStride = 4
	o.SpiceMCRuns = 24
	o.RetentionVPPLevels = []float64{2.5, 1.9, 1.5}
	o.ModuleNames = []string{"A0", "A3", "B0", "B3", "B6", "C0"}
	return o
}

// renderAll renders every experiment id through one Campaign, like
// `rhvpp -exp all`, into a single buffer.
func renderAll(t *testing.T, o Options, format Format) []byte {
	t.Helper()
	c, err := NewCampaign(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, e := range Experiments() {
		buf.WriteString("== " + e.ID + " ==\n")
		enc, err := NewEncoder(format, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(t.Context(), e.ID, enc); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
	}
	return buf.Bytes()
}

// TestGoldenCampaignOutput pins the full `-exp all` rendering in every
// encoder format to the committed goldens: the streaming-statistics pipeline
// must not change a byte of what the campaign reports, and a parallel run
// (jobs=8, which also drives the global Monte-Carlo run queue with many
// workers) must match the serial rendering exactly.
func TestGoldenCampaignOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign render in -short mode")
	}
	exts := map[Format]string{FormatText: "txt", FormatJSON: "json", FormatCSV: "csv"}
	for _, format := range []Format{FormatText, FormatJSON, FormatCSV} {
		format := format
		t.Run(string(format), func(t *testing.T) {
			o := goldenOptions()
			o.Jobs = 1
			got := renderAll(t, o, format)

			path := filepath.Join("testdata", "golden", "all."+exts[format])
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestGoldenCampaignOutput -update .`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s output diverged from the pre-refactor golden %s (len %d vs %d)\n%s",
					format, path, len(got), len(want), firstDiff(got, want))
			}

			op := goldenOptions()
			op.Jobs = 8
			if parallel := renderAll(t, op, format); !bytes.Equal(parallel, got) {
				t.Errorf("%s output differs between jobs=1 and jobs=8\n%s",
					format, firstDiff(parallel, got))
			}
		})
	}
}

// firstDiff locates the first byte where two renderings diverge and quotes
// the surrounding lines, so a golden failure points at the offending table.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	clip := func(b []byte) string {
		hi := i + 120
		if hi > len(b) {
			hi = len(b)
		}
		if lo >= len(b) {
			return ""
		}
		return string(b[lo:hi])
	}
	return "first divergence at byte " + itoa(i) + ":\n--- got ---\n" + clip(got) + "\n--- want ---\n" + clip(want)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
