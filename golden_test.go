package rhvpp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test -run TestGoldenCampaignOutput -update .
//
// The committed goldens were captured before the streaming-statistics
// refactor, so they pin the aggregation pipeline's output byte-for-byte
// across the batch-to-streaming migration.
var update = flag.Bool("update", false, "rewrite testdata golden files")

// goldenOptions is the pinned regression-campaign scope, exported as
// GoldenOptions so the CLI's `-preset golden` (and CI's sharded-equivalence
// job) replay exactly the campaign behind the committed goldens.
func goldenOptions() Options { return GoldenOptions() }

// renderAll renders every experiment id through one Campaign, like
// `rhvpp -exp all`, into a single buffer.
func renderAll(t *testing.T, o Options, format Format) []byte {
	t.Helper()
	c, err := NewCampaign(o)
	if err != nil {
		t.Fatal(err)
	}
	return renderAllWith(t, c, format)
}

// renderAllWith renders every experiment id through the given campaign.
func renderAllWith(t *testing.T, c *Campaign, format Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range Experiments() {
		buf.WriteString("== " + e.ID + " ==\n")
		enc, err := NewEncoder(format, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(t.Context(), e.ID, enc); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
	}
	return buf.Bytes()
}

// TestGoldenCampaignOutput pins the full `-exp all` rendering in every
// encoder format to the committed goldens: the streaming-statistics pipeline
// must not change a byte of what the campaign reports, and a parallel run
// (jobs=8, which also drives the global Monte-Carlo run queue with many
// workers) must match the serial rendering exactly.
func TestGoldenCampaignOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign render in -short mode")
	}
	exts := map[Format]string{FormatText: "txt", FormatJSON: "json", FormatCSV: "csv"}
	for _, format := range []Format{FormatText, FormatJSON, FormatCSV} {
		format := format
		t.Run(string(format), func(t *testing.T) {
			o := goldenOptions()
			o.Jobs = 1
			got := renderAll(t, o, format)

			path := filepath.Join("testdata", "golden", "all."+exts[format])
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestGoldenCampaignOutput -update .`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s output diverged from the pre-refactor golden %s (len %d vs %d)\n%s",
					format, path, len(got), len(want), firstDiff(got, want))
			}

			op := goldenOptions()
			op.Jobs = 8
			if parallel := renderAll(t, op, format); !bytes.Equal(parallel, got) {
				t.Errorf("%s output differs between jobs=1 and jobs=8\n%s",
					format, firstDiff(parallel, got))
			}

			// The batched lockstep Monte-Carlo engine must not change a
			// byte either: the scalar path (width 1) and the full-width
			// lockstep path must both reproduce the golden, which the
			// default width (0 = auto) already rendered above.
			for _, width := range []int{1, 8} {
				ob := goldenOptions()
				ob.Jobs = 1
				ob.SpiceBatchWidth = width
				if batched := renderAll(t, ob, format); !bytes.Equal(batched, got) {
					t.Errorf("%s output differs at SpiceBatchWidth=%d\n%s",
						format, width, firstDiff(batched, got))
				}
			}
		})
	}
}

// TestGoldenShardMergeOutput is the sharding acceptance gate: the campaign
// split into 1-, 2-, and 3-way shard artifacts — each shard executed as its
// own RunShard with its slice of the plan, then folded back by
// MergeArtifacts — must reproduce testdata/golden/all.{txt,json,csv} BYTE
// FOR BYTE in every encoder format. The artifacts additionally make a full
// file-encoding round trip, so the test pins the wire format, not just the
// in-memory merge.
func TestGoldenShardMergeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded campaign renders in -short mode")
	}
	exts := map[Format]string{FormatText: "txt", FormatJSON: "json", FormatCSV: "csv"}
	goldens := map[Format][]byte{}
	for format, ext := range exts {
		want, err := os.ReadFile(filepath.Join("testdata", "golden", "all."+ext))
		if err != nil {
			t.Fatalf("missing golden (run `go test -run TestGoldenCampaignOutput -update .`): %v", err)
		}
		goldens[format] = want
	}

	o := goldenOptions()
	units, err := PlanUnits(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3} {
		arts := make([]*ShardArtifact, n)
		for i := 0; i < n; i++ {
			part, err := ShardUnits(units, i, n)
			if err != nil {
				t.Fatal(err)
			}
			art, err := RunShard(t.Context(), o, i, n, part)
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, n, err)
			}
			// Round-trip through the file encoding, like real shard files.
			var buf bytes.Buffer
			if err := EncodeArtifact(&buf, art); err != nil {
				t.Fatal(err)
			}
			if arts[i], err = DecodeArtifact(&buf); err != nil {
				t.Fatal(err)
			}
		}
		// One merged campaign renders all three formats from the same
		// artifacts — the render side is backend-independent.
		merged, err := MergeArtifacts(arts...)
		if err != nil {
			t.Fatalf("merge %d-way: %v", n, err)
		}
		for _, format := range []Format{FormatText, FormatJSON, FormatCSV} {
			got := renderAllWith(t, merged, format)
			if !bytes.Equal(got, goldens[format]) {
				t.Errorf("%d-way shard merge diverged from golden all.%s\n%s",
					n, exts[format], firstDiff(got, goldens[format]))
			}
		}
	}
}

// firstDiff locates the first byte where two renderings diverge and quotes
// the surrounding lines, so a golden failure points at the offending table.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	clip := func(b []byte) string {
		hi := i + 120
		if hi > len(b) {
			hi = len(b)
		}
		if lo >= len(b) {
			return ""
		}
		return string(b[lo:hi])
	}
	return "first divergence at byte " + itoa(i) + ":\n--- got ---\n" + clip(got) + "\n--- want ---\n" + clip(want)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
