module github.com/dramstudy/rhvpp

go 1.24
