package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Format identifies an output encoding for experiment results.
type Format string

// Supported encodings.
const (
	// FormatText renders aligned tables and ASCII plots (the default).
	FormatText Format = "text"
	// FormatJSON streams one JSON object per element (NDJSON), so results
	// are machine-readable without a terminal-output parser.
	FormatJSON Format = "json"
	// FormatCSV flattens tables and plot series into comma-separated rows;
	// titles and notes become '#' comment lines.
	FormatCSV Format = "csv"
)

// Formats lists the supported encodings.
func Formats() []Format { return []Format{FormatText, FormatJSON, FormatCSV} }

// Encoder serializes the elements experiment renderers emit. Implementations
// must tolerate any mix of elements in any order; one encoder instance
// corresponds to one output stream.
type Encoder interface {
	// Table emits a titled grid of cells.
	Table(t *Table) error
	// Plot emits a named multi-series line plot.
	Plot(p *LinePlot) error
	// Bars emits a labeled bar chart.
	Bars(c *BarChart) error
	// Note emits a free-form annotation line (Printf-style).
	Note(format string, args ...any) error
}

// NewEncoder returns an encoder for the requested format writing to w.
func NewEncoder(f Format, w io.Writer) (Encoder, error) {
	switch f {
	case FormatText, "":
		return NewText(w), nil
	case FormatJSON:
		return NewJSON(w), nil
	case FormatCSV:
		return NewCSV(w), nil
	}
	return nil, fmt.Errorf("report: unknown format %q (known: %v)", f, Formats())
}

// NewText returns the terminal encoder: tables and plots render exactly as
// their Render methods do.
func NewText(w io.Writer) Encoder { return textEncoder{w} }

type textEncoder struct{ w io.Writer }

func (e textEncoder) Table(t *Table) error   { return t.Render(e.w) }
func (e textEncoder) Plot(p *LinePlot) error { return p.Render(e.w) }
func (e textEncoder) Bars(c *BarChart) error { return c.Render(e.w) }
func (e textEncoder) Note(format string, args ...any) error {
	_, err := fmt.Fprintf(e.w, format+"\n", args...)
	return err
}

// NewJSON returns an encoder that writes newline-delimited JSON, one object
// per element, each tagged with a "kind" field.
func NewJSON(w io.Writer) Encoder { return jsonEncoder{json.NewEncoder(w)} }

type jsonEncoder struct{ enc *json.Encoder }

type jsonTable struct {
	Kind    string     `json:"kind"`
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonSeries struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

type jsonPlot struct {
	Kind   string       `json:"kind"`
	Title  string       `json:"title,omitempty"`
	XLabel string       `json:"xlabel,omitempty"`
	YLabel string       `json:"ylabel,omitempty"`
	Series []jsonSeries `json:"series"`
}

type jsonBars struct {
	Kind   string    `json:"kind"`
	Title  string    `json:"title,omitempty"`
	Labels []string  `json:"labels"`
	Values []float64 `json:"values"`
}

type jsonNote struct {
	Kind string `json:"kind"`
	Text string `json:"text"`
}

func (e jsonEncoder) Table(t *Table) error {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return e.enc.Encode(jsonTable{Kind: "table", Title: t.Title, Headers: t.Headers, Rows: rows})
}

func (e jsonEncoder) Plot(p *LinePlot) error {
	out := jsonPlot{Kind: "plot", Title: p.Title, XLabel: p.XLabel, YLabel: p.YLabel,
		Series: make([]jsonSeries, 0, len(p.Series))}
	for _, s := range p.Series {
		out.Series = append(out.Series, jsonSeries{Name: s.Name, X: s.X, Y: s.Y})
	}
	return e.enc.Encode(out)
}

func (e jsonEncoder) Bars(c *BarChart) error {
	return e.enc.Encode(jsonBars{Kind: "bars", Title: c.Title, Labels: c.Labels, Values: c.Values})
}

func (e jsonEncoder) Note(format string, args ...any) error {
	return e.enc.Encode(jsonNote{Kind: "note", Text: fmt.Sprintf(format, args...)})
}

// NewCSV returns an encoder that flattens every element into RFC 4180 CSV
// records. Tables keep their headers; plots become (series, x, y) triples;
// bar charts become (label, value) pairs. Titles and notes are '#' comments
// (every line of a multi-line note is prefixed), so the stream stays
// loadable by tools that skip comment lines.
func NewCSV(w io.Writer) Encoder { return csvEncoder{w} }

type csvEncoder struct{ w io.Writer }

func (e csvEncoder) comment(s string) error {
	if s == "" {
		return nil
	}
	for _, line := range strings.Split(s, "\n") {
		if _, err := fmt.Fprintf(e.w, "# %s\n", line); err != nil {
			return err
		}
	}
	return nil
}

// records writes rows through encoding/csv so quoting matches the table
// path.
func (e csvEncoder) records(rows [][]string) error {
	cw := csv.NewWriter(e.w)
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func (e csvEncoder) Table(t *Table) error {
	if err := e.comment(t.Title); err != nil {
		return err
	}
	return t.WriteCSV(e.w)
}

func (e csvEncoder) Plot(p *LinePlot) error {
	if err := e.comment(p.Title); err != nil {
		return err
	}
	rows := [][]string{{"series", "x", "y"}}
	for _, s := range p.Series {
		for i := range s.X {
			rows = append(rows, []string{s.Name, formatFloat(s.X[i]), formatFloat(s.Y[i])})
		}
	}
	return e.records(rows)
}

func (e csvEncoder) Bars(c *BarChart) error {
	if err := e.comment(c.Title); err != nil {
		return err
	}
	rows := [][]string{{"label", "value"}}
	for i := range c.Labels {
		rows = append(rows, []string{c.Labels[i], formatFloat(c.Values[i])})
	}
	return e.records(rows)
}

func (e csvEncoder) Note(format string, args ...any) error {
	return e.comment(fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
