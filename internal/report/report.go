// Package report renders experiment results as aligned text tables, CSV
// files, and compact ASCII plots (line series and histograms), so every
// table and figure of the paper can be regenerated on a terminal or exported
// for external plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/dramstudy/rhvpp/internal/stats"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row, stringifying each cell with %v (floats get %.4g).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV exports the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SummaryHeaders are the distribution columns AddSummary emits, in order.
// Renderers that report a measured distribution attach these instead of
// hand-rolling per-figure column sets, so every distribution the campaign
// emits reads the same way — and is produced from a streaming Summary, never
// from a retained sample slice.
var SummaryHeaders = []string{"series", "n", "mean", "stddev", "cv", "min", "P50", "P90", "P95", "P99", "max"}

// NewSummaryTable returns a table with the standard distribution columns.
func NewSummaryTable(title string) *Table {
	return &Table{Title: title, Headers: SummaryHeaders}
}

// AddSummary appends one distribution row rendered from a stats.Summary.
func (t *Table) AddSummary(name string, s stats.Summary) {
	t.Add(name, s.N,
		fmt.Sprintf("%.4g", s.Mean), fmt.Sprintf("%.3g", s.StdDev), fmt.Sprintf("%.3g", s.CV),
		fmt.Sprintf("%.4g", s.Min), fmt.Sprintf("%.4g", s.P50), fmt.Sprintf("%.4g", s.P90),
		fmt.Sprintf("%.4g", s.P95), fmt.Sprintf("%.4g", s.P99), fmt.Sprintf("%.4g", s.Max))
}

// Series is one named line of (x, y) points for a line plot.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LinePlot renders one or more series on a shared ASCII grid. Each series
// is drawn with its own glyph; the legend maps glyphs to names.
type LinePlot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []Series
}

var plotGlyphs = []byte("*o+x#@%&$~^=")

// Render draws the plot.
func (p *LinePlot) Render(w io.Writer) error {
	width, height := p.Width, p.Height
	if width < 16 {
		width = 64
	}
	if height < 4 {
		height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("report: plot %q has no data", p.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = glyph
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	fmt.Fprintf(&b, "%s max=%.4g\n", p.YLabel, maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "| %s\n", row)
	}
	fmt.Fprintf(&b, "%s min=%.4g   %s: %.4g .. %.4g\n", p.YLabel, minY, p.XLabel, minX, maxX)
	for si, s := range p.Series {
		fmt.Fprintf(&b, "  %c = %s\n", plotGlyphs[si%len(plotGlyphs)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart renders labeled values as horizontal ASCII bars.
type BarChart struct {
	Title  string
	Labels []string
	Values []float64
	Width  int
}

// Render draws the chart.
func (c *BarChart) Render(w io.Writer) error {
	if len(c.Labels) != len(c.Values) {
		return fmt.Errorf("report: bar chart %q has %d labels but %d values",
			c.Title, len(c.Labels), len(c.Values))
	}
	width := c.Width
	if width < 10 {
		width = 50
	}
	max := 0.0
	lw := 0
	for i, v := range c.Values {
		if v > max {
			max = v
		}
		if len(c.Labels[i]) > lw {
			lw = len(c.Labels[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, v := range c.Values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s | %-*s %.4g\n", lw, c.Labels[i], width, strings.Repeat("#", n), v)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
