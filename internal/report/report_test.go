package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{Title: "demo", Headers: []string{"name", "value"}}
	tab.Add("alpha", 1)
	tab.Add("beta", 2.5)
	tab.Add("gamma-long-label", "x")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "name", "alpha", "2.5", "gamma-long-label"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Errorf("line count = %d, want 6:\n%s", len(lines), out)
	}
	// Columns aligned: every data line at least as wide as the longest label.
	if len(lines[3]) < len("gamma-long-label") {
		t.Error("column alignment broken")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := Table{Headers: []string{"v"}}
	tab.Add(0.000123456)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.0001235") {
		t.Errorf("float not formatted with %%.4g: %s", buf.String())
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Headers: []string{"a", "b"}}
	tab.Add("x", 1)
	tab.Add("y,z", 2) // comma requires quoting
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"y,z"`) {
		t.Errorf("CSV quoting missing: %q", out)
	}
}

func TestLinePlotRender(t *testing.T) {
	p := LinePlot{
		Title: "tplot", XLabel: "x", YLabel: "y", Width: 20, Height: 5,
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
			{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
		},
	}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tplot", "up", "down", "max=2", "min=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("plot glyphs missing")
	}
}

func TestLinePlotEmpty(t *testing.T) {
	p := LinePlot{Title: "empty"}
	var buf bytes.Buffer
	if err := p.Render(&buf); err == nil {
		t.Error("empty plot rendered without error")
	}
}

func TestLinePlotDegenerateRange(t *testing.T) {
	p := LinePlot{
		Series: []Series{{Name: "flat", X: []float64{1, 1}, Y: []float64{3, 3}}},
	}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatalf("flat series failed: %v", err)
	}
}

func TestBarChartRender(t *testing.T) {
	c := BarChart{
		Title:  "bars",
		Labels: []string{"a", "bb"},
		Values: []float64{1, 2},
		Width:  10,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "##########") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Error("half bar missing")
	}
}

func TestBarChartMismatch(t *testing.T) {
	c := BarChart{Labels: []string{"a"}, Values: []float64{1, 2}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Error("mismatched chart rendered without error")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := BarChart{Labels: []string{"a"}, Values: []float64{0}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatalf("zero-value chart failed: %v", err)
	}
}
