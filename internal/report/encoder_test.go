package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{Title: "T", Headers: []string{"a", "b"}}
	t.Add("x", 1.5)
	t.Add("y,z", 2)
	return t
}

func samplePlot() *LinePlot {
	return &LinePlot{
		Title: "P", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s1", X: []float64{1, 2}, Y: []float64{3, 4.25}}},
	}
}

func TestNewEncoderFormats(t *testing.T) {
	var buf bytes.Buffer
	for _, f := range Formats() {
		if _, err := NewEncoder(f, &buf); err != nil {
			t.Errorf("format %q rejected: %v", f, err)
		}
	}
	if _, err := NewEncoder("yaml", &buf); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewEncoder("", &buf); err != nil {
		t.Errorf("empty format should default to text: %v", err)
	}
}

func TestTextEncoderMatchesRender(t *testing.T) {
	var direct, encoded bytes.Buffer
	if err := sampleTable().Render(&direct); err != nil {
		t.Fatal(err)
	}
	if err := NewText(&encoded).Table(sampleTable()); err != nil {
		t.Fatal(err)
	}
	if direct.String() != encoded.String() {
		t.Errorf("text encoder diverges from Render:\n%q\n%q", direct.String(), encoded.String())
	}
}

func TestJSONEncoderStreamsTaggedObjects(t *testing.T) {
	var buf bytes.Buffer
	enc := NewJSON(&buf)
	if err := enc.Table(sampleTable()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Plot(samplePlot()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Bars(&BarChart{Title: "B", Labels: []string{"l"}, Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Note("n = %d", 7); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 NDJSON lines, got %d:\n%s", len(lines), buf.String())
	}
	kinds := []string{"table", "plot", "bars", "note"}
	for i, line := range lines {
		var el map[string]any
		if err := json.Unmarshal([]byte(line), &el); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if el["kind"] != kinds[i] {
			t.Errorf("line %d kind = %v, want %s", i, el["kind"], kinds[i])
		}
	}
	if !strings.Contains(lines[3], "n = 7") {
		t.Errorf("note text lost: %s", lines[3])
	}
}

func TestCSVEncoderFlattens(t *testing.T) {
	var buf bytes.Buffer
	enc := NewCSV(&buf)
	if err := enc.Table(sampleTable()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Plot(samplePlot()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Note("hello"); err != nil {
		t.Fatal(err)
	}
	if err := enc.Note("line one\nline two"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# T", "a,b", `"y,z",2`, "# P", "series,x,y", "s1,2,4.25", "# hello", "# line two"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV output missing %q:\n%s", want, out)
		}
	}
	// Every line is either a comment or a CSV record; multi-line notes must
	// not leak bare text into the record stream.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if line == "line two" {
			t.Errorf("multi-line note leaked an uncommented line: %q", line)
		}
	}
}

func TestCSVEncoderQuotesRFC4180(t *testing.T) {
	var buf bytes.Buffer
	enc := NewCSV(&buf)
	p := &LinePlot{Series: []Series{{Name: `he said "hi", bye`, X: []float64{1}, Y: []float64{2}}}}
	if err := enc.Plot(p); err != nil {
		t.Fatal(err)
	}
	// encoding/csv doubles quotes; Go-style backslash escaping would garble
	// the row for compliant CSV parsers.
	if want := `"he said ""hi"", bye",1,2`; !strings.Contains(buf.String(), want) {
		t.Errorf("plot row not RFC 4180 quoted, want %s in:\n%s", want, buf.String())
	}
}
