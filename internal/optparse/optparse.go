// Package optparse is the single parser for campaign-shaping knobs, shared
// by the rhvpp CLI's flags and the serve API's query parameters. Both
// surfaces accept the same knob names with the same semantics — a value is
// applied only when the caller set it, exactly the CLI's historical
// only-when-set behavior — so `rhvpp -exp fig5 -modules B3 -mc 50` and
// `GET /v1/experiments/fig5?modules=B3&mc=50` describe the identical
// campaign, and an invalid value is rejected with the same words everywhere.
//
// Overrides never validates the resulting campaign; it only parses and
// applies. Semantic rejection (negative jobs, unknown module names) stays
// with Options.Validate so every surface reports those errors identically.
package optparse

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"github.com/dramstudy/rhvpp/internal/experiments"
)

// Overrides holds parsed campaign knobs plus enough set-tracking to apply
// them with only-when-set semantics. The zero value overrides nothing.
type Overrides struct {
	// Modules is the comma-separated module subset ("" = preset's set).
	Modules string
	// Rows overrides RowsPerChunk when > 0.
	Rows int
	// Chunks overrides Options.Chunks when > 0.
	Chunks int
	// Seed overrides the simulation seed when != 0.
	Seed uint64
	// Stride overrides VPPStride when > 0.
	Stride int
	// MCRuns overrides SpiceMCRuns when > 0.
	MCRuns int
	// LTETolV overrides SpiceLTETolV when != 0 (negative values pass
	// through for Validate to reject with its canonical message).
	LTETolV float64
	// BatchWidth overrides SpiceBatchWidth when != 0.
	BatchWidth int
	// FixedGrid switches the SPICE Monte-Carlo to the fixed grid when true.
	FixedGrid bool
	// Jobs overrides Options.Jobs when JobsSet is true. Jobs is the one
	// knob whose meaningful values include 0 (one worker per CPU) and
	// whose invalid values (negative) must still reach Validate, so
	// presence is tracked explicitly instead of inferred from the value.
	Jobs    int
	JobsSet bool
}

// knobNames lists every Set-addressable knob in presentation order — the
// same names the CLI registers as flags.
var knobNames = []string{
	"modules", "rows", "chunks", "seed", "stride", "mc",
	"ltetol", "batch", "fixed-grid", "jobs",
}

// Known returns the knob names Set accepts, in presentation order.
func Known() []string { return append([]string(nil), knobNames...) }

// Set parses one named knob from its string form — a query parameter or any
// other stringly surface. Unknown names and unparseable values are errors;
// semantically invalid values (negative jobs, unknown modules) parse fine
// here and are rejected later by Options.Validate.
func (ov *Overrides) Set(name, value string) error {
	badValue := func(err error) error {
		return fmt.Errorf("option %s: invalid value %q (%v)", name, value, err)
	}
	switch name {
	case "modules":
		ov.Modules = value
		return nil
	case "rows":
		return setInt(&ov.Rows, value, badValue)
	case "chunks":
		return setInt(&ov.Chunks, value, badValue)
	case "seed":
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return badValue(err)
		}
		ov.Seed = n
		return nil
	case "stride":
		return setInt(&ov.Stride, value, badValue)
	case "mc":
		return setInt(&ov.MCRuns, value, badValue)
	case "ltetol":
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return badValue(err)
		}
		ov.LTETolV = f
		return nil
	case "batch":
		return setInt(&ov.BatchWidth, value, badValue)
	case "fixed-grid":
		b, err := strconv.ParseBool(value)
		if err != nil {
			return badValue(err)
		}
		ov.FixedGrid = b
		return nil
	case "jobs":
		if err := setInt(&ov.Jobs, value, badValue); err != nil {
			return err
		}
		ov.JobsSet = true
		return nil
	}
	return fmt.Errorf("unknown option %q (known: %s)", name, strings.Join(knobNames, ", "))
}

func setInt(dst *int, value string, badValue func(error) error) error {
	n, err := strconv.Atoi(value)
	if err != nil {
		return badValue(err)
	}
	*dst = n
	return nil
}

// Apply lays the set knobs over a preset's options. Unset knobs (zero
// values, except Jobs which tracks presence) leave the preset untouched.
func (ov Overrides) Apply(o *experiments.Options) {
	if ov.Modules != "" {
		o.ModuleNames = strings.Split(ov.Modules, ",")
	}
	if ov.Rows > 0 {
		o.RowsPerChunk = ov.Rows
	}
	if ov.Chunks > 0 {
		o.Chunks = ov.Chunks
	}
	if ov.Seed != 0 {
		o.Seed = ov.Seed
	}
	if ov.Stride > 0 {
		o.VPPStride = ov.Stride
	}
	if ov.MCRuns > 0 {
		o.SpiceMCRuns = ov.MCRuns
	}
	if ov.LTETolV != 0 {
		o.SpiceLTETolV = ov.LTETolV // negative rejected by Options.Validate
	}
	if ov.BatchWidth != 0 {
		o.SpiceBatchWidth = ov.BatchWidth // out-of-range rejected by Options.Validate
	}
	if ov.FixedGrid {
		o.SpiceFixedGrid = true
	}
	if ov.JobsSet {
		o.Jobs = ov.Jobs
	}
}

// Flags registers the knobs as flags on fs, bound to ov. The CLI treats its
// -jobs flag as always present (its default 0 means one worker per CPU, the
// same as every preset), so Parse marks JobsSet via the flag.Value rather
// than fs.Visit bookkeeping.
func (ov *Overrides) Flags(fs *flag.FlagSet) {
	fs.StringVar(&ov.Modules, "modules", "", "comma-separated module subset (e.g. B3,C0); empty = all 30")
	fs.IntVar(&ov.Rows, "rows", 0, "rows per chunk (0 = default)")
	fs.IntVar(&ov.Chunks, "chunks", 0, "row chunks per module (0 = default)")
	fs.Uint64Var(&ov.Seed, "seed", 0, "simulation seed (0 = default)")
	fs.IntVar(&ov.Stride, "stride", 0, "VPP sweep stride (1 = every 0.1V level)")
	fs.IntVar(&ov.MCRuns, "mc", 0, "SPICE Monte-Carlo runs per voltage (0 = default)")
	fs.Float64Var(&ov.LTETolV, "ltetol", 0, "adaptive SPICE step-doubling error tolerance in volts (0 = engine default; beyond the default the fixed-grid crossing equivalence is best-effort)")
	fs.IntVar(&ov.BatchWidth, "batch", 0, "SPICE Monte-Carlo lockstep lanes per worker (0 = engine default, 1 = scalar; output is byte-identical at every width)")
	fs.BoolVar(&ov.FixedGrid, "fixed-grid", false, "integrate the SPICE Monte-Carlo on the historical fixed 25 ps grid (disables adaptive stepping)")
	fs.Var(jobsFlag{ov}, "jobs", "concurrent module sweeps (0 = one per CPU)")
}

// jobsFlag adapts the Jobs knob to flag.Value so a -jobs occurrence flips
// JobsSet exactly like a jobs= query parameter does.
type jobsFlag struct{ ov *Overrides }

func (j jobsFlag) String() string {
	if j.ov == nil {
		return "0"
	}
	return strconv.Itoa(j.ov.Jobs)
}

func (j jobsFlag) Set(value string) error { return j.ov.Set("jobs", value) }
