package optparse

import (
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/dramstudy/rhvpp/internal/experiments"
)

func TestSetAppliesOnlyWhatWasSet(t *testing.T) {
	var ov Overrides
	for _, kv := range [][2]string{
		{"modules", "B3,C0"}, {"rows", "8"}, {"seed", "77"},
		{"mc", "50"}, {"fixed-grid", "true"},
	} {
		if err := ov.Set(kv[0], kv[1]); err != nil {
			t.Fatalf("Set(%s, %s): %v", kv[0], kv[1], err)
		}
	}
	base := experiments.Default()
	o := base
	ov.Apply(&o)
	if !reflect.DeepEqual(o.ModuleNames, []string{"B3", "C0"}) {
		t.Errorf("ModuleNames = %v", o.ModuleNames)
	}
	if o.RowsPerChunk != 8 || o.Seed != 77 || o.SpiceMCRuns != 50 || !o.SpiceFixedGrid {
		t.Errorf("set knobs not applied: %+v", o)
	}
	// Everything unset keeps the preset's value.
	if o.Chunks != base.Chunks || o.VPPStride != base.VPPStride ||
		o.SpiceLTETolV != base.SpiceLTETolV || o.SpiceBatchWidth != base.SpiceBatchWidth ||
		o.Jobs != base.Jobs {
		t.Errorf("unset knobs drifted from preset: %+v", o)
	}
}

func TestJobsTracksPresenceNotValue(t *testing.T) {
	// jobs=0 is a meaningful override (one worker per CPU) even though 0 is
	// the int zero value, and jobs=-1 must flow through to Validate rather
	// than be rejected (or dropped) at parse time.
	for _, tc := range []struct {
		value string
		want  int
	}{{"0", 0}, {"3", 3}, {"-1", -1}} {
		var ov Overrides
		if err := ov.Set("jobs", tc.value); err != nil {
			t.Fatalf("Set(jobs, %s): %v", tc.value, err)
		}
		if !ov.JobsSet || ov.Jobs != tc.want {
			t.Errorf("jobs=%s: JobsSet=%v Jobs=%d", tc.value, ov.JobsSet, ov.Jobs)
		}
		o := experiments.Default()
		o.Jobs = 99 // sentinel: Apply must overwrite it
		ov.Apply(&o)
		if o.Jobs != tc.want {
			t.Errorf("jobs=%s: applied Jobs=%d, want %d", tc.value, o.Jobs, tc.want)
		}
	}
	var ov Overrides
	o := experiments.Default()
	o.Jobs = 99
	ov.Apply(&o)
	if o.Jobs != 99 {
		t.Error("unset jobs knob overwrote the options")
	}
}

func TestSetRejectsUnknownAndUnparseable(t *testing.T) {
	var ov Overrides
	err := ov.Set("bogus", "1")
	if err == nil {
		t.Fatal("unknown knob accepted")
	}
	for _, name := range Known() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-knob error should list %q: %v", name, err)
		}
	}
	for _, kv := range [][2]string{
		{"rows", "eight"}, {"seed", "-1"}, {"seed", "xyz"},
		{"ltetol", "tiny"}, {"fixed-grid", "maybe"}, {"jobs", "many"},
	} {
		if err := ov.Set(kv[0], kv[1]); err == nil {
			t.Errorf("Set(%s, %s) accepted", kv[0], kv[1])
		} else if !strings.Contains(err.Error(), kv[0]) || !strings.Contains(err.Error(), kv[1]) {
			t.Errorf("Set(%s, %s) error should name knob and value: %v", kv[0], kv[1], err)
		}
	}
}

func TestFlagsMatchSetSemantics(t *testing.T) {
	// The CLI binds flags through Flags; a flag invocation and a Set call
	// must produce the same Overrides, or the two surfaces drift.
	var fromFlags Overrides
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fromFlags.Flags(fs)
	if err := fs.Parse([]string{
		"-modules", "B3", "-rows", "4", "-chunks", "1", "-seed", "9",
		"-stride", "2", "-mc", "10", "-ltetol", "0.002", "-batch", "4",
		"-fixed-grid", "-jobs", "2",
	}); err != nil {
		t.Fatal(err)
	}
	var fromSet Overrides
	for _, kv := range [][2]string{
		{"modules", "B3"}, {"rows", "4"}, {"chunks", "1"}, {"seed", "9"},
		{"stride", "2"}, {"mc", "10"}, {"ltetol", "0.002"}, {"batch", "4"},
		{"fixed-grid", "true"}, {"jobs", "2"},
	} {
		if err := fromSet.Set(kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(fromFlags, fromSet) {
		t.Errorf("flag parse and Set disagree:\nflags: %+v\n  set: %+v", fromFlags, fromSet)
	}
	// Every Set-addressable knob is registered as a flag under the same name.
	for _, name := range Known() {
		if fs.Lookup(name) == nil {
			t.Errorf("knob %q has no flag", name)
		}
	}
}
