package physics

import (
	"math"

	"github.com/dramstudy/rhvpp/internal/rng"
)

// tRCD-model constants.
const (
	// trcdGuardbandRetention is the average fraction of the nominal-tRCD
	// guardband that survives at VPPmin for modules that keep working with
	// nominal timings (the paper measures a 21.9 % average guardband
	// reduction, §6.1).
	trcdGuardbandRetention = 1 - 0.219
	// trcdVoltageExponent shapes how activation latency grows as VPP
	// drops; a slightly super-linear response matches both the real-device
	// curves (Fig. 7) and the SPICE distributions (Fig. 8b).
	trcdVoltageExponent = 1.3
	// trcdColumnJitterNS is the scale of per-column variation below the
	// row's worst-case column.
	trcdColumnJitterNS = 0.35
	// trcdIterNoiseNS is the per-measurement latency noise (§4.3 runs each
	// test ten times and keeps the worst case).
	trcdIterNoiseNS = 0.06
)

// trcdModel holds the module-level activation-latency calibration: the
// worst-row tRCD at nominal VPP and the voltage-response coefficient fit so
// the value at VPPmin hits the module's target (either the guardband-
// retention rule for passing modules or the published fix thresholds for the
// five failing ones).
type trcdModel struct {
	baseNS float64 // worst-row minimum reliable tRCD at VPP = 2.5 V
	coeff  float64 // voltage response: t(v) = base * (1 + coeff*(2.5-v)^exp)
	capNS  float64 // hard ceiling (fix threshold + margin headroom)
}

// calibrateTRCD samples the per-module activation-latency model.
func calibrateTRCD(prof ModuleProfile, s *rng.Stream) trcdModel {
	var base, target, capNS float64
	if prof.TRCDFailsNominal {
		// The five failing modules start inside the guardband at nominal
		// VPP and blow past 13.5 ns as VPP drops; the fix thresholds are
		// 24 ns (Mfr A) and 15 ns (Mfr B).
		base = s.Uniform(12.0, 12.9)
		switch prof.Mfr {
		case MfrA:
			target = s.Uniform(20.5, 23.4)
		default:
			target = s.Uniform(14.0, 14.6)
		}
		capNS = prof.TRCDFixNS - 0.15
	} else {
		base = s.Uniform(10.0, 11.8)
		gb := TRCDNominalNS - base
		target = TRCDNominalNS - trcdGuardbandRetention*gb + s.Normal(0, 0.12)
		if target > TRCDNominalNS-0.1 {
			target = TRCDNominalNS - 0.1
		}
		capNS = TRCDNominalNS - 0.05
	}
	dv := VPPNominal - prof.VPPMin
	coeff := 0.0
	if dv > 0.01 && target > base {
		coeff = (target/base - 1) / math.Pow(dv, trcdVoltageExponent)
	}
	return trcdModel{baseNS: base, coeff: coeff, capNS: capNS}
}

// rowBaseNS samples one row's worst-column tRCD at nominal VPP. Rows sit at
// or slightly below the module's worst row, so the maximum across tested
// rows reproduces the module-level curve of Fig. 7.
func (t trcdModel) rowBaseNS(s *rng.Stream) float64 {
	d := s.Exp(1 / 0.4)
	if d > 2.0 {
		d = 2.0
	}
	return t.baseNS - d
}

// rowReqNS evaluates a row's worst-column tRCD requirement at voltage v.
func (t trcdModel) rowReqNS(rowBase, rowScale, v float64) float64 {
	dv := VPPNominal - v
	if dv < 0 {
		dv = 0
	}
	req := rowBase * (1 + t.coeff*rowScale*math.Pow(dv, trcdVoltageExponent))
	// The cap mirrors the paper's finding that the published fix latencies
	// (24 ns / 15 ns) restore reliable operation for every failing module.
	capNS := t.capNS + (rowBase - t.baseNS) // weaker rows stay under the cap
	if req > capNS {
		req = capNS
	}
	return req
}

// ColumnTRCDReqNS returns the minimum reliable activation-to-read latency of
// one column burst (ns) at voltage vpp for measurement iteration iter.
func (m *DeviceModel) ColumnTRCDReqNS(bank, rowAddr, col int, vpp float64, iter int) float64 {
	rp := m.row(bank, rowAddr)
	req := m.trcd.rowReqNS(rp.trcdBase, rp.trcdScale, vpp)
	// Per-column offset: one hash-selected worst column defines the row's
	// requirement; others are faster by a deterministic jitter.
	colStream := m.root.Derive("trcdcol", bank, rowAddr, col)
	worst := m.root.Derive("trcdworst", bank, rowAddr).Intn(m.geom.Columns())
	if col != worst {
		req -= math.Abs(colStream.Normal(0, trcdColumnJitterNS))
	}
	req += m.root.Derive("trcditer", bank, rowAddr, col, iter).Normal(0, trcdIterNoiseNS)
	return req
}

// TRCDFlipPositions returns the bit positions (row-relative) corrupted when
// column col is read trcdNS after activation at voltage vpp. An activation
// that honors the column's requirement returns nil; a violation flips a
// handful of the column's weakest bits, growing with the timing shortfall.
func (m *DeviceModel) TRCDFlipPositions(bank, rowAddr, col int, trcdNS, vpp float64, iter int) []int32 {
	req := m.ColumnTRCDReqNS(bank, rowAddr, col, vpp, iter)
	if trcdNS >= req {
		return nil
	}
	shortfall := req - trcdNS
	nf := 1 + int(shortfall/0.4)
	colBits := 64 * 8
	if nf > colBits {
		nf = colBits
	}
	s := m.root.Derive("trcdbits", bank, rowAddr, col)
	base := int32(col * colBits)
	seen := make(map[int32]bool, nf)
	out := make([]int32, 0, nf)
	for len(out) < nf {
		pos := base + int32(s.Intn(colBits))
		if !seen[pos] {
			seen[pos] = true
			out = append(out, pos)
		}
	}
	return out
}

// GroundTruthRowTRCDNS returns the row's true worst-column tRCD requirement
// at voltage vpp without measurement noise (test hook).
func (m *DeviceModel) GroundTruthRowTRCDNS(bank, rowAddr int, vpp float64) float64 {
	rp := m.row(bank, rowAddr)
	return m.trcd.rowReqNS(rp.trcdBase, rp.trcdScale, vpp)
}
