// Package physics models the voltage-dependent behavior of the DDR4 DRAM
// devices the paper characterizes. It provides
//
//   - the catalog of all 30 tested DIMMs with their published RowHammer
//     characteristics at nominal VPP, at VPPmin, and at the recommended VPP
//     (paper Table 3 / Appendix A), plus the Table 1 chip summary;
//   - a per-module DeviceModel that samples deterministic per-row and
//     per-cell behavior (RowHammer thresholds, retention times, activation
//     latencies) calibrated so that running the paper's own algorithms
//     against the simulated devices lands on the published aggregates
//     (DESIGN.md §3 lists every calibration target).
//
// The model separates the two error mechanisms the paper identifies:
// electron injection / capacitive crosstalk, whose strength scales with the
// wordline voltage swing and therefore *weakens* as VPP is reduced, and the
// charge-restoration weakening at low VPP (the access transistor saturates
// the cell at Vsat = min(VDD, VPP - VTcut)), which *hurts* reliability and
// produces the minority opposite-trend rows of Obsvs. 2 and 5.
package physics

// Manufacturer identifies one of the three anonymized DRAM vendors.
type Manufacturer int

// Manufacturers as anonymized in the paper.
const (
	MfrA Manufacturer = iota + 1 // Micron
	MfrB                         // Samsung
	MfrC                         // SK Hynix
)

// String returns the paper's short name for the manufacturer.
func (m Manufacturer) String() string {
	switch m {
	case MfrA:
		return "A"
	case MfrB:
		return "B"
	case MfrC:
		return "C"
	default:
		return "?"
	}
}

// FullName returns the real vendor name disclosed in Table 1.
func (m Manufacturer) FullName() string {
	switch m {
	case MfrA:
		return "Micron"
	case MfrB:
		return "Samsung"
	case MfrC:
		return "SK Hynix"
	default:
		return "unknown"
	}
}

// Electrical and timing constants of the tested DDR4 devices (JESD79-4 and
// paper §2.2, §4).
const (
	// VDDNominal is the DDR4 core supply voltage in volts.
	VDDNominal = 1.2
	// VPPNominal is the nominal wordline (pump) voltage in volts.
	VPPNominal = 2.5
	// VPPSweepStep is the granularity of the paper's VPP sweep in volts.
	VPPSweepStep = 0.1
	// TRCDNominalNS is the nominal row activation latency in nanoseconds.
	TRCDNominalNS = 13.5
	// TRASNominalNS is the nominal charge restoration latency in nanoseconds.
	TRASNominalNS = 35.0
	// TRPNominalNS is the nominal precharge latency in nanoseconds.
	TRPNominalNS = 13.5
	// TREFWNominalMS is the nominal refresh window in milliseconds.
	TREFWNominalMS = 64.0
	// CommandQuantumNS is the FPGA command scheduling granularity (§4.3:
	// "Our version of SoftMC can send a DRAM command every 1.5 ns").
	CommandQuantumNS = 1.5
	// RowHammerTestTempC is the die temperature for RowHammer and tRCD
	// tests (§4.1).
	RowHammerTestTempC = 50.0
	// RetentionTestTempC is the die temperature for retention tests (§4.1).
	RetentionTestTempC = 80.0
	// ReferenceHammerCount is the fixed per-aggressor hammer count used for
	// all BER measurements (§4.2).
	ReferenceHammerCount = 300_000
)

// ChipOrg is the chip data-path width (x4 or x8).
type ChipOrg int

// Chip organizations present in the tested population.
const (
	OrgX4 ChipOrg = 4
	OrgX8 ChipOrg = 8
)

// String formats the organization the way datasheets do ("x4"/"x8").
func (o ChipOrg) String() string {
	switch o {
	case OrgX4:
		return "x4"
	case OrgX8:
		return "x8"
	default:
		return "x?"
	}
}

// ChipsPerDIMM returns the number of DRAM chips on a 64-bit-wide DIMM with
// this organization (ECC DIMMs in the tested set are operated without the
// ECC chips, so 64 data bits / width).
func (o ChipOrg) ChipsPerDIMM() int {
	if o == OrgX4 {
		return 16
	}
	return 8
}

// OperatingPoint is a (HCfirst, BER) pair measured at one VPP level — the
// module-level RowHammer vulnerability characterization of Table 3. HCfirst
// is the minimum aggressor-row activation count observed across tested rows;
// BER is the fraction of row bits flipped by a 300K double-sided hammer.
type OperatingPoint struct {
	HCFirst float64
	BER     float64
}

// ModuleProfile describes one tested DIMM: its identity columns from
// Table 3 plus the published measurement anchors the behavioral model is
// calibrated against.
type ModuleProfile struct {
	// Name is the paper's module label (A0..A9, B0..B9, C0..C9).
	Name string
	// Mfr is the DRAM chip manufacturer.
	Mfr Manufacturer
	// Model is the DIMM model string.
	Model string
	// DensityGb is the die density in gigabits.
	DensityGb int
	// FreqMTs is the data transfer rate in MT/s.
	FreqMTs int
	// Org is the chip organization.
	Org ChipOrg
	// DieRev is the die revision letter, or "-" if undocumented.
	DieRev string
	// MfgDate is the module manufacturing date as week-year, or "-".
	MfgDate string

	// Nominal is the RowHammer operating point at VPP = 2.5 V.
	Nominal OperatingPoint
	// VPPMin is the lowest VPP (volts) at which the module still
	// communicates with the FPGA.
	VPPMin float64
	// AtVPPMin is the operating point at VPPMin.
	AtVPPMin OperatingPoint
	// VPPRec is the recommended VPP from Table 3 (argmax HCfirst policy).
	VPPRec float64
	// AtVPPRec is the operating point at VPPRec.
	AtVPPRec OperatingPoint

	// TRCDFailsNominal marks the five modules (A0-A2, B2, B5) whose
	// minimum reliable tRCD exceeds the nominal 13.5 ns at reduced VPP.
	TRCDFailsNominal bool
	// TRCDFixNS is the increased tRCD that restores reliable operation for
	// modules with TRCDFailsNominal (24 ns for Mfr A, 15 ns for Mfr B).
	TRCDFixNS float64
	// RetentionFails64ms marks the seven modules (B6, B8, B9, C1, C3, C5,
	// C9) that exhibit retention bit flips at the nominal 64 ms refresh
	// window when operated at VPPmin.
	RetentionFails64ms bool
}

// Chips returns the number of DRAM chips on the module.
func (p ModuleProfile) Chips() int { return p.Org.ChipsPerDIMM() }

// profiles is the full Table 3 dataset. HCfirst values are in units of
// activations (the table's "K" values times 1000).
var profiles = []ModuleProfile{
	// ------------------------------ Mfr. A (Micron) ------------------------------
	{Name: "A0", Mfr: MfrA, Model: "MTA18ASF2G72PZ-2G3B1QK", DensityGb: 8, FreqMTs: 2400, Org: OrgX4, DieRev: "B", MfgDate: "11-19",
		Nominal: OperatingPoint{39_800, 1.24e-3}, VPPMin: 1.4, AtVPPMin: OperatingPoint{42_200, 1.00e-3},
		VPPRec: 1.4, AtVPPRec: OperatingPoint{42_200, 1.00e-3}, TRCDFailsNominal: true, TRCDFixNS: 24},
	{Name: "A1", Mfr: MfrA, Model: "MTA18ASF2G72PZ-2G3B1QK", DensityGb: 8, FreqMTs: 2400, Org: OrgX4, DieRev: "B", MfgDate: "11-19",
		Nominal: OperatingPoint{42_200, 9.90e-4}, VPPMin: 1.4, AtVPPMin: OperatingPoint{46_400, 7.83e-4},
		VPPRec: 1.4, AtVPPRec: OperatingPoint{46_400, 7.83e-4}, TRCDFailsNominal: true, TRCDFixNS: 24},
	{Name: "A2", Mfr: MfrA, Model: "MTA18ASF2G72PZ-2G3B1QK", DensityGb: 8, FreqMTs: 2400, Org: OrgX4, DieRev: "B", MfgDate: "11-19",
		Nominal: OperatingPoint{41_000, 1.24e-3}, VPPMin: 1.7, AtVPPMin: OperatingPoint{39_800, 1.35e-3},
		VPPRec: 2.1, AtVPPRec: OperatingPoint{42_100, 1.55e-3}, TRCDFailsNominal: true, TRCDFixNS: 24},
	{Name: "A3", Mfr: MfrA, Model: "CT4G4DFS8266.C8FF", DensityGb: 4, FreqMTs: 2666, Org: OrgX8, DieRev: "F", MfgDate: "07-21",
		Nominal: OperatingPoint{16_700, 3.33e-2}, VPPMin: 1.4, AtVPPMin: OperatingPoint{16_500, 3.52e-2},
		VPPRec: 1.7, AtVPPRec: OperatingPoint{17_000, 3.48e-2}},
	{Name: "A4", Mfr: MfrA, Model: "CT4G4DFS8266.C8FF", DensityGb: 4, FreqMTs: 2666, Org: OrgX8, DieRev: "F", MfgDate: "07-21",
		Nominal: OperatingPoint{14_400, 3.18e-2}, VPPMin: 1.5, AtVPPMin: OperatingPoint{14_400, 3.33e-2},
		VPPRec: 2.5, AtVPPRec: OperatingPoint{14_400, 3.18e-2}},
	{Name: "A5", Mfr: MfrA, Model: "CT4G4SFS8213.C8FBD1", DensityGb: 4, FreqMTs: 2400, Org: OrgX8, DieRev: "-", MfgDate: "48-16",
		Nominal: OperatingPoint{140_700, 1.39e-6}, VPPMin: 2.4, AtVPPMin: OperatingPoint{145_400, 3.39e-6},
		VPPRec: 2.4, AtVPPRec: OperatingPoint{145_400, 3.39e-6}},
	{Name: "A6", Mfr: MfrA, Model: "CT4G4DFS8266.C8FF", DensityGb: 4, FreqMTs: 2666, Org: OrgX8, DieRev: "F", MfgDate: "07-21",
		Nominal: OperatingPoint{16_500, 3.50e-2}, VPPMin: 1.5, AtVPPMin: OperatingPoint{16_500, 3.66e-2},
		VPPRec: 2.5, AtVPPRec: OperatingPoint{16_500, 3.50e-2}},
	{Name: "A7", Mfr: MfrA, Model: "CMV4GX4M1A2133C15", DensityGb: 4, FreqMTs: 2133, Org: OrgX8, DieRev: "-", MfgDate: "-",
		Nominal: OperatingPoint{16_500, 3.42e-2}, VPPMin: 1.8, AtVPPMin: OperatingPoint{16_500, 3.52e-2},
		VPPRec: 2.5, AtVPPRec: OperatingPoint{16_500, 3.42e-2}},
	{Name: "A8", Mfr: MfrA, Model: "MTA18ASF2G72PZ-2G3B1QG", DensityGb: 8, FreqMTs: 2400, Org: OrgX4, DieRev: "B", MfgDate: "11-19",
		Nominal: OperatingPoint{35_200, 2.38e-3}, VPPMin: 1.4, AtVPPMin: OperatingPoint{39_800, 2.07e-3},
		VPPRec: 1.4, AtVPPRec: OperatingPoint{39_800, 2.07e-3}},
	{Name: "A9", Mfr: MfrA, Model: "CMV4GX4M1A2133C15", DensityGb: 4, FreqMTs: 2133, Org: OrgX8, DieRev: "-", MfgDate: "-",
		Nominal: OperatingPoint{14_300, 3.33e-2}, VPPMin: 1.5, AtVPPMin: OperatingPoint{14_300, 3.48e-2},
		VPPRec: 1.6, AtVPPRec: OperatingPoint{14_600, 3.47e-2}},

	// ------------------------------ Mfr. B (Samsung) ------------------------------
	{Name: "B0", Mfr: MfrB, Model: "M378A1K43DB2-CTD", DensityGb: 8, FreqMTs: 2666, Org: OrgX8, DieRev: "D", MfgDate: "10-21",
		Nominal: OperatingPoint{7_900, 1.18e-1}, VPPMin: 2.0, AtVPPMin: OperatingPoint{7_600, 1.22e-1},
		VPPRec: 2.5, AtVPPRec: OperatingPoint{7_900, 1.18e-1}},
	{Name: "B1", Mfr: MfrB, Model: "M378A1K43DB2-CTD", DensityGb: 8, FreqMTs: 2666, Org: OrgX8, DieRev: "D", MfgDate: "10-21",
		Nominal: OperatingPoint{7_300, 1.26e-1}, VPPMin: 2.0, AtVPPMin: OperatingPoint{7_600, 1.28e-1},
		VPPRec: 2.0, AtVPPRec: OperatingPoint{7_600, 1.28e-1}},
	{Name: "B2", Mfr: MfrB, Model: "F4-2400C17S-8GNT", DensityGb: 4, FreqMTs: 2400, Org: OrgX8, DieRev: "F", MfgDate: "02-21",
		Nominal: OperatingPoint{11_200, 2.52e-2}, VPPMin: 1.6, AtVPPMin: OperatingPoint{12_000, 2.22e-2},
		VPPRec: 1.6, AtVPPRec: OperatingPoint{12_000, 2.22e-2}, TRCDFailsNominal: true, TRCDFixNS: 15},
	{Name: "B3", Mfr: MfrB, Model: "M393A1K43BB1-CTD6Y", DensityGb: 8, FreqMTs: 2666, Org: OrgX8, DieRev: "B", MfgDate: "52-20",
		Nominal: OperatingPoint{16_600, 2.73e-3}, VPPMin: 1.6, AtVPPMin: OperatingPoint{21_100, 1.09e-3},
		VPPRec: 1.6, AtVPPRec: OperatingPoint{21_100, 1.09e-3}},
	{Name: "B4", Mfr: MfrB, Model: "M393A1K43BB1-CTD6Y", DensityGb: 8, FreqMTs: 2666, Org: OrgX8, DieRev: "B", MfgDate: "52-20",
		Nominal: OperatingPoint{21_000, 2.95e-3}, VPPMin: 1.8, AtVPPMin: OperatingPoint{19_900, 2.52e-3},
		VPPRec: 2.0, AtVPPRec: OperatingPoint{21_100, 2.68e-3}},
	{Name: "B5", Mfr: MfrB, Model: "M471A5143EB0-CPB", DensityGb: 4, FreqMTs: 2133, Org: OrgX8, DieRev: "E", MfgDate: "08-17",
		Nominal: OperatingPoint{21_000, 7.78e-3}, VPPMin: 1.8, AtVPPMin: OperatingPoint{21_000, 6.02e-3},
		VPPRec: 2.0, AtVPPRec: OperatingPoint{21_100, 8.67e-3}, TRCDFailsNominal: true, TRCDFixNS: 15},
	{Name: "B6", Mfr: MfrB, Model: "CMK16GX4M2B3200C16", DensityGb: 8, FreqMTs: 3200, Org: OrgX8, DieRev: "-", MfgDate: "-",
		Nominal: OperatingPoint{10_300, 1.14e-2}, VPPMin: 1.7, AtVPPMin: OperatingPoint{10_500, 9.82e-3},
		VPPRec: 1.7, AtVPPRec: OperatingPoint{10_500, 9.82e-3}, RetentionFails64ms: true},
	{Name: "B7", Mfr: MfrB, Model: "M378A1K43DB2-CTD", DensityGb: 8, FreqMTs: 2666, Org: OrgX8, DieRev: "D", MfgDate: "10-21",
		Nominal: OperatingPoint{7_300, 1.32e-1}, VPPMin: 2.0, AtVPPMin: OperatingPoint{7_600, 1.33e-1},
		VPPRec: 2.0, AtVPPRec: OperatingPoint{7_600, 1.33e-1}},
	{Name: "B8", Mfr: MfrB, Model: "CMK16GX4M2B3200C16", DensityGb: 8, FreqMTs: 3200, Org: OrgX8, DieRev: "-", MfgDate: "-",
		Nominal: OperatingPoint{11_600, 2.88e-2}, VPPMin: 1.7, AtVPPMin: OperatingPoint{10_500, 2.37e-2},
		VPPRec: 1.8, AtVPPRec: OperatingPoint{11_700, 2.58e-2}, RetentionFails64ms: true},
	{Name: "B9", Mfr: MfrB, Model: "M471A5244CB0-CRC", DensityGb: 8, FreqMTs: 2133, Org: OrgX8, DieRev: "C", MfgDate: "19-19",
		Nominal: OperatingPoint{11_800, 2.68e-2}, VPPMin: 1.7, AtVPPMin: OperatingPoint{8_800, 2.39e-2},
		VPPRec: 1.8, AtVPPRec: OperatingPoint{12_300, 2.54e-2}, RetentionFails64ms: true},

	// ------------------------------ Mfr. C (SK Hynix) ------------------------------
	{Name: "C0", Mfr: MfrC, Model: "F4-2400C17S-8GNT", DensityGb: 4, FreqMTs: 2400, Org: OrgX8, DieRev: "B", MfgDate: "02-21",
		Nominal: OperatingPoint{19_300, 7.29e-3}, VPPMin: 1.7, AtVPPMin: OperatingPoint{23_400, 6.61e-3},
		VPPRec: 1.7, AtVPPRec: OperatingPoint{23_400, 6.61e-3}},
	{Name: "C1", Mfr: MfrC, Model: "F4-2400C17S-8GNT", DensityGb: 4, FreqMTs: 2400, Org: OrgX8, DieRev: "B", MfgDate: "02-21",
		Nominal: OperatingPoint{19_300, 6.31e-3}, VPPMin: 1.7, AtVPPMin: OperatingPoint{20_600, 5.90e-3},
		VPPRec: 1.7, AtVPPRec: OperatingPoint{20_600, 5.90e-3}, RetentionFails64ms: true},
	{Name: "C2", Mfr: MfrC, Model: "KSM32RD8/16HDR", DensityGb: 8, FreqMTs: 3200, Org: OrgX8, DieRev: "D", MfgDate: "48-20",
		Nominal: OperatingPoint{9_600, 2.82e-2}, VPPMin: 1.5, AtVPPMin: OperatingPoint{9_200, 2.34e-2},
		VPPRec: 2.3, AtVPPRec: OperatingPoint{10_000, 2.89e-2}},
	{Name: "C3", Mfr: MfrC, Model: "KSM32RD8/16HDR", DensityGb: 8, FreqMTs: 3200, Org: OrgX8, DieRev: "D", MfgDate: "48-20",
		Nominal: OperatingPoint{9_300, 2.57e-2}, VPPMin: 1.5, AtVPPMin: OperatingPoint{8_900, 2.21e-2},
		VPPRec: 2.3, AtVPPRec: OperatingPoint{9_700, 2.66e-2}, RetentionFails64ms: true},
	{Name: "C4", Mfr: MfrC, Model: "HMAA4GU6AJR8N-XN", DensityGb: 16, FreqMTs: 3200, Org: OrgX8, DieRev: "A", MfgDate: "51-20",
		Nominal: OperatingPoint{11_600, 3.22e-2}, VPPMin: 1.5, AtVPPMin: OperatingPoint{11_700, 2.88e-2},
		VPPRec: 1.5, AtVPPRec: OperatingPoint{11_700, 2.88e-2}},
	{Name: "C5", Mfr: MfrC, Model: "HMAA4GU6AJR8N-XN", DensityGb: 16, FreqMTs: 3200, Org: OrgX8, DieRev: "A", MfgDate: "51-20",
		Nominal: OperatingPoint{9_400, 3.28e-2}, VPPMin: 1.5, AtVPPMin: OperatingPoint{12_700, 2.85e-2},
		VPPRec: 1.5, AtVPPRec: OperatingPoint{12_700, 2.85e-2}, RetentionFails64ms: true},
	{Name: "C6", Mfr: MfrC, Model: "CMV4GX4M1A2133C15", DensityGb: 4, FreqMTs: 2133, Org: OrgX8, DieRev: "C", MfgDate: "-",
		Nominal: OperatingPoint{14_200, 3.08e-2}, VPPMin: 1.6, AtVPPMin: OperatingPoint{15_500, 2.25e-2},
		VPPRec: 1.6, AtVPPRec: OperatingPoint{15_500, 2.25e-2}},
	{Name: "C7", Mfr: MfrC, Model: "CMV4GX4M1A2133C15", DensityGb: 4, FreqMTs: 2133, Org: OrgX8, DieRev: "C", MfgDate: "-",
		Nominal: OperatingPoint{11_700, 3.24e-2}, VPPMin: 1.6, AtVPPMin: OperatingPoint{13_600, 2.60e-2},
		VPPRec: 1.6, AtVPPRec: OperatingPoint{13_600, 2.60e-2}},
	{Name: "C8", Mfr: MfrC, Model: "KSM32RD8/16HDR", DensityGb: 8, FreqMTs: 3200, Org: OrgX8, DieRev: "D", MfgDate: "48-20",
		Nominal: OperatingPoint{11_400, 2.69e-2}, VPPMin: 1.6, AtVPPMin: OperatingPoint{9_500, 2.57e-2},
		VPPRec: 2.5, AtVPPRec: OperatingPoint{11_400, 2.69e-2}},
	{Name: "C9", Mfr: MfrC, Model: "F4-2400C17S-8GNT", DensityGb: 4, FreqMTs: 2400, Org: OrgX8, DieRev: "B", MfgDate: "02-21",
		Nominal: OperatingPoint{12_600, 2.18e-2}, VPPMin: 1.7, AtVPPMin: OperatingPoint{15_200, 1.63e-2},
		VPPRec: 1.7, AtVPPRec: OperatingPoint{15_200, 1.63e-2}, RetentionFails64ms: true},
}

// Profiles returns the full set of 30 tested DIMM profiles (Table 3). The
// returned slice is a fresh copy; callers may reorder or mutate it freely.
func Profiles() []ModuleProfile {
	out := make([]ModuleProfile, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileByName returns the profile with the given Table 3 label (e.g. "B3")
// and whether it exists.
func ProfileByName(name string) (ModuleProfile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return ModuleProfile{}, false
}

// ProfilesByMfr returns the profiles belonging to one manufacturer, in
// Table 3 order.
func ProfilesByMfr(m Manufacturer) []ModuleProfile {
	var out []ModuleProfile
	for _, p := range profiles {
		if p.Mfr == m {
			out = append(out, p)
		}
	}
	return out
}

// TotalChips returns the total number of DRAM chips across all profiles
// (the paper's 272).
func TotalChips() int {
	n := 0
	for _, p := range profiles {
		n += p.Chips()
	}
	return n
}

// VPPLevels returns the descending sweep of VPP setpoints tested for a
// module: nominal 2.5 V down to the module's VPPmin in 0.1 V steps, matching
// the paper's experimental procedure (§4.1).
func (p ModuleProfile) VPPLevels() []float64 {
	var out []float64
	for v := VPPNominal; v > p.VPPMin-1e-9; v -= VPPSweepStep {
		// Re-round to the supply's millivolt precision to avoid float drift.
		out = append(out, roundMilli(v))
	}
	return out
}

func roundMilli(v float64) float64 {
	return float64(int(v*1000+0.5)) / 1000
}
