package physics

import (
	"math"
	"testing"
)

func TestRetentionNoFlipsBelow64ms(t *testing.T) {
	// The Fig. 10a x-axis starts at 64 ms: no flips at smaller windows at
	// any VPP level for any module.
	for _, name := range []string{"A0", "B6", "C5", "B3"} {
		m := newTestModel(t, name)
		p := m.Profile()
		for _, v := range []float64{2.5, (2.5 + p.VPPMin) / 2, p.VPPMin} {
			for _, win := range []float64{16, 32} {
				for row := 0; row < 200; row++ {
					if flips := m.RetentionFlipPositions(0, row, v, win, RetentionTestTempC, 0); len(flips) != 0 {
						t.Fatalf("%s row %d: %d flips at %vms, VPP=%v", name, row, len(flips), win, v)
					}
				}
			}
		}
	}
}

func TestRetentionCleanModulesPass64ms(t *testing.T) {
	// 23 of 30 modules have no retention flips at the nominal 64 ms window
	// even at VPPmin (Obsv. 13). Check a sample of clean modules.
	for _, name := range []string{"A0", "A5", "B3", "C0"} {
		m := newTestModel(t, name)
		p := m.Profile()
		for row := 0; row < 400; row++ {
			if flips := m.RetentionFlipPositions(0, row, p.VPPMin, 64, RetentionTestTempC, 0); len(flips) != 0 {
				t.Errorf("%s row %d: %d flips at 64ms/VPPmin; module should be clean", name, row, len(flips))
			}
		}
	}
}

func TestRetentionFailingModulesFlipAt64ms(t *testing.T) {
	// B6/B8/B9 and C1/C3/C5/C9 exhibit flips at 64 ms when at VPPmin.
	for _, name := range []string{"B6", "B8", "C5"} {
		m := newTestModel(t, name)
		p := m.Profile()
		total := 0
		for row := 0; row < 3000; row++ {
			total += len(m.RetentionFlipPositions(0, row, p.VPPMin, 64, RetentionTestTempC, 0))
		}
		if total == 0 {
			t.Errorf("%s: no retention flips at 64ms/VPPmin; module should fail", name)
		}
	}
}

func TestRetentionFailingModulesCleanAtNominalVPP(t *testing.T) {
	// Even failing modules are clean at the nominal window under nominal VPP.
	m := newTestModel(t, "B6")
	for row := 0; row < 2000; row++ {
		if flips := m.RetentionFlipPositions(0, row, 2.5, 64, RetentionTestTempC, 0); len(flips) != 0 {
			t.Fatalf("B6 row %d flips at 64ms under nominal VPP", row)
		}
	}
}

func TestRetentionBERGrowsWithWindow(t *testing.T) {
	m := newTestModel(t, "C0")
	prev := -1
	for _, win := range []float64{64, 256, 1024, 4096, 16384} {
		total := 0
		for row := 0; row < 100; row++ {
			total += len(m.RetentionFlipPositions(0, row, 2.5, win, RetentionTestTempC, 0))
		}
		if total < prev {
			t.Fatalf("retention flips decreased with window: %d after %d at %vms", total, prev, win)
		}
		prev = total
	}
	if prev == 0 {
		t.Error("no retention flips even at 16s")
	}
}

func TestRetentionBERGrowsAsVPPDrops(t *testing.T) {
	// Obsv. 12: more cells fail at reduced VPP. Compare the 4s BER at
	// nominal and VPPmin.
	m := newTestModel(t, "C0")
	p := m.Profile()
	count := func(v float64) int {
		total := 0
		for row := 0; row < 200; row++ {
			total += len(m.RetentionFlipPositions(0, row, v, 4000, RetentionTestTempC, 0))
		}
		return total
	}
	nom, low := count(2.5), count(p.VPPMin)
	if low <= nom {
		t.Errorf("4s retention flips: nominal %d, VPPmin %d; want increase", nom, low)
	}
}

func TestRetention4sAnchors(t *testing.T) {
	// Mean BER at tREFW=4s should approximate the Fig. 10b anchors:
	// 0.3%/0.2%/1.4% at 2.5V for Mfrs A/B/C.
	anchors := map[string]float64{"A3": 0.003, "B0": 0.002, "C0": 0.014}
	for name, want := range anchors {
		m := newTestModel(t, name)
		n := float64(m.Geometry().RowBits())
		var sum float64
		const rows = 300
		for row := 0; row < rows; row++ {
			sum += float64(len(m.RetentionFlipPositions(0, row, 2.5, 4000, RetentionTestTempC, 0))) / n
		}
		got := sum / rows
		if got < want/2.5 || got > want*2.5 {
			t.Errorf("%s: 4s retention BER = %v, want within 2.5x of %v", name, got, want)
		}
	}
}

func TestRetentionTemperatureAcceleration(t *testing.T) {
	m := newTestModel(t, "C0")
	count := func(temp float64) int {
		total := 0
		for row := 0; row < 150; row++ {
			total += len(m.RetentionFlipPositions(0, row, 2.5, 2000, temp, 0))
		}
		return total
	}
	cold, hot := count(50), count(85)
	if hot <= cold {
		t.Errorf("retention flips at 85C (%d) not above 50C (%d)", hot, cold)
	}
}

func TestRetentionPositionsUnique(t *testing.T) {
	m := newTestModel(t, "B6")
	p := m.Profile()
	for row := 0; row < 300; row++ {
		flips := m.RetentionFlipPositions(0, row, p.VPPMin, 8000, RetentionTestTempC, 0)
		seen := map[int32]bool{}
		for _, pos := range flips {
			if pos < 0 || int(pos) >= m.Geometry().RowBits() {
				t.Fatalf("row %d: position %d out of range", row, pos)
			}
			if seen[pos] {
				t.Fatalf("row %d: duplicate flip position %d", row, pos)
			}
			seen[pos] = true
		}
	}
}

func TestWeakCellsOnePerWord(t *testing.T) {
	// The engineered weak-cell tiers must place at most one cell per 64-bit
	// word so the smallest failing window stays SECDED-correctable.
	m := newTestModel(t, "B6")
	p := m.Profile()
	rowsWithWeak := 0
	for row := 0; row < 2000; row++ {
		flips := m.RetentionFlipPositions(0, row, p.VPPMin, 64, RetentionTestTempC, 0)
		if len(flips) == 0 {
			continue
		}
		rowsWithWeak++
		words := map[int32]int{}
		for _, pos := range flips {
			words[pos/64]++
		}
		for w, c := range words {
			if c > 1 {
				t.Fatalf("row %d word %d has %d flips at the smallest failing window", row, w, c)
			}
		}
	}
	if rowsWithWeak == 0 {
		t.Fatal("no weak rows found in B6")
	}
	// Mfr B: ~15.5% of rows carry the 4-word tier.
	frac := float64(rowsWithWeak) / 2000
	if frac < 0.10 || frac > 0.22 {
		t.Errorf("B6 weak-row fraction at 64ms = %v, want ~0.155", frac)
	}
}

func TestWeakRowFractionMfrC(t *testing.T) {
	m := newTestModel(t, "C5")
	p := m.Profile()
	rowsWithWeak := 0
	const rows = 6000
	for row := 0; row < rows; row++ {
		if len(m.RetentionFlipPositions(0, row, p.VPPMin, 64, RetentionTestTempC, 0)) > 0 {
			rowsWithWeak++
		}
	}
	frac := float64(rowsWithWeak) / rows
	if frac < 0.0003 || frac > 0.008 {
		t.Errorf("C5 weak-row fraction at 64ms = %v, want ~0.002", frac)
	}
}

func TestTier128RowsAppearAt128msOnly(t *testing.T) {
	// Mfr B: ~4.7% of rows gain 2 erroneous words at 128 ms (not at 64 ms).
	m := newTestModel(t, "B3") // clean at 64ms
	p := m.Profile()
	const rows = 1500
	at128 := 0
	for row := 0; row < rows; row++ {
		f64 := m.RetentionFlipPositions(0, row, p.VPPMin, 64, RetentionTestTempC, 0)
		if len(f64) != 0 {
			t.Fatalf("B3 row %d flips at 64ms; should be clean", row)
		}
		f128 := m.RetentionFlipPositions(0, row, p.VPPMin, 128, RetentionTestTempC, 0)
		if len(f128) > 0 {
			at128++
			// Weak-tier rows carry exactly 2 flips; an occasional extreme
			// bulk cell may add a third or appear alone.
			if len(f128) > 3 {
				t.Errorf("B3 row %d: %d flips at 128ms, want <= 3", row, len(f128))
			}
		}
	}
	frac := float64(at128) / rows
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("B3 128ms weak-row fraction = %v, want ~0.047", frac)
	}
}

func TestGroundTruthWeakCellsAccessor(t *testing.T) {
	m := newTestModel(t, "B6")
	any := false
	for row := 0; row < 200 && !any; row++ {
		if m.GroundTruthWeakCells(0, row) > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no weak cells sampled in 200 B6 rows")
	}
}

func TestRetentionZeroElapsed(t *testing.T) {
	m := newTestModel(t, "C0")
	if flips := m.RetentionFlipPositions(0, 0, 2.5, 0, 80, 0); len(flips) != 0 {
		t.Error("zero elapsed time produced flips")
	}
	if flips := m.RetentionFlipPositions(0, 0, 1.0, 1e6, 80, 0); len(flips) != 0 {
		t.Error("module below VPPmin should not report flips")
	}
}

func TestRetentionRhoMonotone(t *testing.T) {
	p, _ := ProfileByName("C0")
	m := NewDeviceModel(p, testGeometry(), 9)
	prev := math.Inf(1)
	for v := 2.5; v >= 1.4; v -= 0.1 {
		r := m.retention.rho(v)
		if r > prev+1e-12 {
			t.Fatalf("rho increased as VPP dropped at %v", v)
		}
		if r <= 0 || r > 1 {
			t.Fatalf("rho(%v) = %v out of (0,1]", v, r)
		}
		prev = r
	}
}
