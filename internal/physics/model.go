package physics

import (
	"math"
	"sync"

	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/rng"
)

// Geometry describes the simulated module's array organization at rank level
// (all chips operate in lock-step, so a "row" here is the rank-wide row the
// memory controller sees).
type Geometry struct {
	// Banks is the number of banks per rank.
	Banks int
	// RowsPerBank is the number of rows in each bank.
	RowsPerBank int
	// RowBytes is the rank-level row size in bytes. Real DDR4 modules have
	// 8 KiB rows; smaller values trade BER resolution (the floor is one bit
	// in RowBytes*8) for simulation speed.
	RowBytes int
	// SubarrayRows is the number of rows per subarray; rows at subarray
	// boundaries have only one physically adjacent neighbor.
	SubarrayRows int
}

// DefaultGeometry returns the geometry used by the experiment drivers: a
// deliberately reduced array (the paper tests 4K rows out of each bank) with
// 2 KiB rows for tractable simulation time.
func DefaultGeometry() Geometry {
	return Geometry{Banks: 4, RowsPerBank: 32768, RowBytes: 2048, SubarrayRows: 512}
}

// FullGeometry returns the realistic rank-level geometry of an 8-chip x8
// DDR4 module (8 KiB rows), used when BER resolution matters more than
// runtime.
func FullGeometry() Geometry {
	return Geometry{Banks: 16, RowsPerBank: 32768, RowBytes: 8192, SubarrayRows: 512}
}

// RowBits returns the number of bits in one row.
func (g Geometry) RowBits() int { return g.RowBytes * 8 }

// Columns returns the number of 64-byte column bursts per row.
func (g Geometry) Columns() int {
	c := g.RowBytes / 64
	if c < 1 {
		c = 1
	}
	return c
}

// Valid reports whether the geometry is usable.
func (g Geometry) Valid() bool {
	return g.Banks > 0 && g.RowsPerBank > 0 && g.RowBytes >= 64 && g.SubarrayRows > 1
}

// Model behavior constants. These encode the physical mechanisms of §2.3,
// §2.4 and §6.2 of the paper; per-module coefficients are calibrated from
// Table 3 on top of them.
const (
	// VTCutRestore is the effective access-transistor cutoff: a cell's
	// restored voltage saturates at Vsat = min(VDD, VPP - VTCutRestore).
	// Fit from Obsv. 10 (saturation of 1.151/1.068/0.983 V at VPP of
	// 1.9/1.8/1.7 V).
	VTCutRestore = 0.735
	// VSenseMin is the minimum cell voltage distinguishable by the sense
	// amplifier; the charge margin entering the retention model is
	// Vsat - VSenseMin.
	VSenseMin = 0.4
	// SingleSidedWeight is the effectiveness of unbalanced (single-sided)
	// hammering relative to balanced double-sided hammering; double-sided
	// attacks are the most effective (§4.2), with single-sided needing
	// roughly 1/SingleSidedWeight times more activations per flip.
	SingleSidedWeight = 0.35
	// DistanceTwoWeight is the disturbance weight of aggressor rows at
	// physical distance two (the "blast radius" beyond immediate
	// neighbors).
	DistanceTwoWeight = 0.08
	// measurementNoiseSigma is the log-domain sigma of per-iteration
	// measurement noise, tuned to land the paper's CV percentiles
	// (0.08/0.13/0.24 at P90/P95/P99, §4.6): near-threshold rows amplify
	// effective-exposure noise through the steep flip-count slope.
	measurementNoiseSigma = 0.025
)

// SaturationVoltage returns the voltage at which a cell's charge restoration
// saturates for the given VPP (Obsv. 10).
func SaturationVoltage(vpp float64) float64 {
	return math.Min(VDDNominal, vpp-VTCutRestore)
}

// RestoreMargin returns the sense margin (volts) available to a fully
// restored cell at the given VPP.
func RestoreMargin(vpp float64) float64 {
	m := SaturationVoltage(vpp) - VSenseMin
	if m < 0 {
		return 0
	}
	return m
}

// mfrSpread holds the per-manufacturer spread parameters of per-row
// normalized HCfirst and BER at VPPmin (calibrated to the ranges of
// Obsvs. 3 and 6).
type mfrSpread struct {
	hcUp, hcDown   float64
	berUp, berDown float64
}

func spreadFor(m Manufacturer) mfrSpread {
	switch m {
	case MfrA:
		return mfrSpread{hcUp: 0.130, hcDown: 0.035, berUp: 0.010, berDown: 0.270}
	case MfrB:
		return mfrSpread{hcUp: 0.170, hcDown: 0.060, berUp: 0.040, berDown: 0.090}
	default: // MfrC
		return mfrSpread{hcUp: 0.080, hcDown: 0.040, berUp: 0.020, berDown: 0.020}
	}
}

// DeviceModel is the ground-truth behavioral model of one DIMM. It is safe
// for concurrent use. The characterization code never touches it directly:
// it lives behind the dram.Module command interface, exactly as real silicon
// lives behind the DDR4 bus.
type DeviceModel struct {
	prof ModuleProfile
	geom Geometry
	root *rng.Stream

	// Module-level calibrated coefficients (computed once).
	sigmaU    float64 // half-normal sigma of per-row HCfirst multipliers
	fLow      float64 // fraction of rows flipping well below the reference HC
	ratioHC   float64 // module-level normalized HCfirst at VPPmin
	ratioBER  float64 // module-level normalized BER at VPPmin
	kHCMod    float64 // module-level log-slope of the HCfirst response
	kBERMod   float64 // module-level log-slope of the BER response
	bumpHC    float64 // mid-sweep hump amplitude of the HCfirst response
	bumpBER   float64 // mid-sweep hump amplitude of the BER response
	vPeak     float64 // voltage at which the hump peaks
	trcd      trcdModel
	retention retentionModel

	mu   sync.Mutex
	rows map[rowKey]*rowParams
}

type rowKey struct{ bank, row int }

// rowParams holds the per-row sampled ground truth.
type rowParams struct {
	u         float64 // HCfirst multiplier over the module minimum
	hcNom     float64 // HCfirst at nominal VPP with the row's WCDP
	berNom    float64 // BER anchor at the reference hammer count, nominal VPP
	kHC       float64 // per-row log-slope of normalized HCfirst
	kBER      float64 // per-row log-slope of normalized BER
	bumpHC    float64 // per-row hump amplitude (HCfirst)
	bumpBER   float64 // per-row hump amplitude (BER)
	flipFrac  float64 // deterministic sub-bit rounding offset in [0,1)
	patWorst  int     // index into pattern.All() of the worst-case pattern
	patDelta  [6]float64
	patVShift [6]float64
	tempCoeff float64 // relative disturbance change per 50C above the 50C reference
	trcdBase  float64 // worst-column tRCD at nominal VPP (ns)
	trcdScale float64 // per-row multiplier on the module tRCD response
	retLambda float64 // per-row retention-time multiplier
	weak      []weakCell

	permOnce sync.Once
	perm     []int32 // weakest-first cell ordering for hammer flips

	retPermOnce sync.Once
	retPerm     []int32 // weakest-first cell ordering for retention flips
}

// NewDeviceModel builds the behavioral model for one module profile. The
// seed determines every sampled quantity; models built with equal
// (profile, geometry, seed) behave identically.
func NewDeviceModel(prof ModuleProfile, geom Geometry, seed uint64) *DeviceModel {
	if !geom.Valid() {
		geom = DefaultGeometry()
	}
	m := &DeviceModel{
		prof: prof,
		geom: geom,
		root: rng.New(seed).Derive("module", prof.Name),
		rows: make(map[rowKey]*rowParams),
	}
	m.calibrate()
	return m
}

// Profile returns the module profile this model was built from.
func (m *DeviceModel) Profile() ModuleProfile { return m.prof }

// Geometry returns the array geometry.
func (m *DeviceModel) Geometry() Geometry { return m.geom }

// sOf is the disturbance-reduction coordinate: ln(VPPnominal / v), zero at
// nominal and growing as VPP is reduced.
func sOf(v float64) float64 { return math.Log(VPPNominal / v) }

// calibrate computes the module-level coefficients from the Table 3 anchors.
func (m *DeviceModel) calibrate() {
	p := m.prof
	n := float64(m.geom.RowBits())
	refHC := float64(ReferenceHammerCount)

	// Spread of per-row HCfirst multipliers: wide enough that the fraction
	// of rows flipping at the reference hammer count is consistent with the
	// module's published BER (tiny-BER modules like A5 have mostly
	// unflippable rows).
	pFlip := clamp(p.Nominal.BER*n/2.5, 0.05, 0.95)
	x := math.Log(0.9 * refHC / p.Nominal.HCFirst)
	if x < 0.05 {
		x = 0.05
	}
	m.sigmaU = x / PhiInv((1+pFlip)/2)
	m.fLow = clamp(2*Phi(math.Log(0.6*refHC/p.Nominal.HCFirst)/m.sigmaU)-1, 0.02, 1)

	m.ratioHC = p.AtVPPMin.HCFirst / p.Nominal.HCFirst
	m.ratioBER = clamp(p.AtVPPMin.BER/p.Nominal.BER, 0.05, 3)

	sMin := sOf(p.VPPMin)
	m.kHCMod = math.Log(m.ratioHC) / sMin
	m.kBERMod = math.Log(m.ratioBER) / sMin

	// Mid-sweep hump: calibrated from the recommended operating point when
	// it is interior to the sweep (argmax-HCfirst modules like A2, B4, B5).
	m.vPeak = (VPPNominal + p.VPPMin) / 2
	m.bumpHC, m.bumpBER = 0.015, 0.010
	interior := p.VPPRec < VPPNominal-1e-9 && p.VPPRec > p.VPPMin+1e-9
	if interior {
		m.vPeak = p.VPPRec
		sRec := sOf(p.VPPRec)
		if hcRec := p.AtVPPRec.HCFirst / p.Nominal.HCFirst; hcRec > 0 {
			m.bumpHC = math.Max(0, hcRec-math.Exp(m.kHCMod*sRec))
		}
		if berRec := p.AtVPPRec.BER / p.Nominal.BER; berRec > 0 {
			m.bumpBER = math.Max(0, berRec-math.Exp(m.kBERMod*sRec))
		}
	}

	m.trcd = calibrateTRCD(p, m.root.Derive("trcd"))
	m.retention = calibrateRetention(p, m.root.Derive("retention"))
}

// hump evaluates the mid-sweep hump shape: zero at both sweep endpoints,
// one at the peak voltage.
func (m *DeviceModel) hump(v float64) float64 {
	lo, hi, pk := m.prof.VPPMin, VPPNominal, m.vPeak
	if v <= lo || v >= hi {
		return 0
	}
	if v >= pk {
		d := (v - pk) / (hi - pk)
		return 1 - d*d
	}
	d := (pk - v) / (pk - lo)
	return 1 - d*d
}

// row returns (sampling on first use) the ground-truth parameters of a row.
func (m *DeviceModel) row(bank, rowAddr int) *rowParams {
	key := rowKey{bank, rowAddr}
	m.mu.Lock()
	rp, ok := m.rows[key]
	if !ok {
		rp = m.sampleRow(bank, rowAddr)
		m.rows[key] = rp
	}
	m.mu.Unlock()
	return rp
}

func (m *DeviceModel) sampleRow(bank, rowAddr int) *rowParams {
	s := m.root.Derive("row", bank, rowAddr)
	sp := spreadFor(m.prof.Mfr)
	n := float64(m.geom.RowBits())
	sMin := sOf(m.prof.VPPMin)

	rp := &rowParams{}
	rp.u = math.Exp(m.sigmaU * math.Abs(s.NormFloat64()))
	rp.hcNom = m.prof.Nominal.HCFirst * rp.u
	rp.flipFrac = s.Float64()

	// Per-row normalized-HCfirst target at VPPmin. The coupling weight
	// keeps the weakest rows (those that set the module-level minimum) on
	// the module's published ratio so the emergent module measurement
	// matches Table 3, while stronger rows spread per the Fig. 6 ranges.
	w := math.Min(1, math.Log(rp.u)/0.25)
	zHC := clamp(s.NormFloat64(), -2.2, 2.2)
	sigHC := sp.hcDown
	if zHC > 0 {
		sigHC = sp.hcUp
	}
	tHC := m.ratioHC * math.Exp(sigHC*zHC*w)
	rp.kHC = math.Log(tHC) / sMin

	// BER target, anti-correlated with the HCfirst deviation (rows whose
	// HCfirst rises more see their BER fall more).
	zBER := clamp(-0.75*zHC+0.66*s.NormFloat64(), -2.2, 2.2)
	sigBER := sp.berDown
	if zBER > 0 {
		sigBER = sp.berUp
	}
	tBER := m.ratioBER * math.Exp(sigBER*zBER*w)
	rp.kBER = math.Log(tBER) / sMin

	rp.bumpHC = m.bumpHC * math.Exp(0.35*s.NormFloat64()-0.06)
	rp.bumpBER = m.bumpBER * math.Exp(0.35*s.NormFloat64()-0.06)

	// BER anchor at the reference hammer count, scaled so the module-level
	// mean across rows (including never-flipping rows) lands on Table 3.
	rp.berNom = clamp(m.prof.Nominal.BER/m.fLow*math.Exp(0.6*s.NormFloat64()-0.18), 1.3/n, 0.45)

	// Worst-case data pattern: one of the six patterns dominates each row;
	// the others need patDelta more hammers. patVShift adds a small
	// VPP-dependent term that reorders the patterns for a few percent of
	// rows (§4.2 footnote 9: WCDP changes for 2.4% of rows).
	rp.patWorst = s.Intn(6)
	for i := 0; i < 6; i++ {
		if i == rp.patWorst {
			continue
		}
		rp.patDelta[i] = 0.02 + 0.10*s.Float64()
		rp.patVShift[i] = 0.012 * s.NormFloat64()
	}

	rp.trcdBase = m.trcd.rowBaseNS(s)
	rp.trcdScale = math.Exp(0.10 * s.NormFloat64())
	rp.retLambda = clamp(math.Exp(0.30*s.NormFloat64()), 0.6, 1.8)
	// Per-row temperature sensitivity of the hammer disturbance. Prior
	// characterization (Orosa et al., MICRO'21) finds temperature affects
	// RowHammer non-uniformly across cells: most rows get somewhat more
	// vulnerable as the die heats, a minority less. The paper leaves the
	// three-way VPP/temperature/RowHammer interaction to future work (§7);
	// this coefficient powers the ext-temp extension experiment.
	rp.tempCoeff = s.Normal(0.10, 0.12)
	rp.weak = m.retention.sampleWeakCells(s, m.geom, m.prof)
	return rp
}

// PatternFactor returns the disturbance-effectiveness multiplier of using
// data pattern k on the given row at voltage vpp. The worst-case pattern has
// factor 1; weaker patterns have smaller factors (more hammers needed).
func (m *DeviceModel) PatternFactor(bank, rowAddr int, k pattern.Kind, vpp float64) float64 {
	rp := m.row(bank, rowAddr)
	idx := patternIndex(k)
	if idx < 0 {
		return 0.5
	}
	if idx == rp.patWorst {
		return 1
	}
	f := 1/(1+rp.patDelta[idx]) + rp.patVShift[idx]*(VPPNominal-vpp)
	return clamp(f, 0.5, 1.1)
}

func patternIndex(k pattern.Kind) int {
	for i, p := range pattern.All() {
		if p == k {
			return i
		}
	}
	return -1
}

// normHC evaluates the row's normalized HCfirst response at voltage v.
func (m *DeviceModel) normHC(rp *rowParams, v float64) float64 {
	return math.Exp(rp.kHC*sOf(v)) * (1 + rp.bumpHC*m.hump(v))
}

// normBER evaluates the row's normalized BER response at voltage v.
func (m *DeviceModel) normBER(rp *rowParams, v float64) float64 {
	return math.Exp(rp.kBER*sOf(v)) * (1 + rp.bumpBER*m.hump(v))
}

// GroundTruthHCFirst returns the row's true minimum double-sided hammer
// count for its worst-case pattern at voltage v. Exposed for experiment
// validation and tests; characterization code must measure instead.
func (m *DeviceModel) GroundTruthHCFirst(bank, rowAddr int, v float64) float64 {
	rp := m.row(bank, rowAddr)
	return rp.hcNom * m.normHC(rp, v)
}

// HammerFlipCount returns the number of bit flips in the victim row after an
// effective double-sided hammer exposure of hcEq activations per aggressor,
// using data pattern pat at voltage vpp and die temperature tempC. iter
// selects the measurement-noise realization (the paper repeats every test
// ten times). The paper characterizes RowHammer at 50 C; at that temperature
// the temperature factor is exactly one, so the Table 3 calibration holds.
func (m *DeviceModel) HammerFlipCount(bank, rowAddr int, pat pattern.Kind, vpp, hcEq, tempC float64, iter int) int {
	if hcEq <= 0 || vpp < m.prof.VPPMin-1e-9 {
		return 0
	}
	rp := m.row(bank, rowAddr)
	n := float64(m.geom.RowBits())

	eff := hcEq * m.PatternFactor(bank, rowAddr, pat, vpp)
	eff *= clamp(1+rp.tempCoeff*(tempC-RowHammerTestTempC)/50, 0.5, 1.8)
	noise := m.root.Derive("hnoise", bank, rowAddr, iter).Normal(0, measurementNoiseSigma)
	eff *= math.Exp(noise)

	hcf := rp.hcNom * m.normHC(rp, vpp)
	if eff < hcf {
		// The first flip is a sharp threshold: below the row's HCfirst no
		// cell has accumulated enough disturbance to cross its margin.
		return 0
	}
	// The BER anchor cannot drop below the flip floor implied by the
	// HCfirst anchor itself (a row that flips at hcf has >= 1 flipped bit
	// at the reference count when hcf < refHC).
	ber := clamp(rp.berNom*m.normBER(rp, vpp), 1.5/n, 0.45)
	refHC := float64(ReferenceHammerCount)

	p1 := 1 / n
	sg := 1.0
	if hcf < refHC*0.98 {
		if _, s2, ok := SolveLogNormal(hcf, p1, refHC, ber); ok {
			sg = s2
		}
	}
	// Clamp the slope so near-degenerate anchors (hcf approaching refHC
	// with a floor-level BER) cannot produce an explosive flip curve, and
	// re-anchor at the HCfirst point, which must stay exact.
	sg = clamp(sg, 0.15, 4.0)
	mu := math.Log(hcf) - sg*PhiInv(p1)
	p := LogNormalCDF(eff, mu, sg)
	count := int(p*n + 0.5)
	if count < 1 {
		count = 1
	}
	if count > m.geom.RowBits() {
		count = m.geom.RowBits()
	}
	return count
}

// HammerFlipPositions returns the bit positions (within the row) of the
// first count hammer-induced flips. Flip ordering is stable: a larger
// exposure flips a superset of a smaller exposure's cells.
func (m *DeviceModel) HammerFlipPositions(bank, rowAddr, count int) []int32 {
	rp := m.row(bank, rowAddr)
	rp.permOnce.Do(func() {
		rp.perm = m.cellPermutation("hammerperm", bank, rowAddr)
	})
	if count > len(rp.perm) {
		count = len(rp.perm)
	}
	return rp.perm[:count]
}

// cellPermutation derives the weakest-first cell ordering for a row.
func (m *DeviceModel) cellPermutation(label string, bank, rowAddr int) []int32 {
	s := m.root.Derive(label, bank, rowAddr)
	n := m.geom.RowBits()
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ResetRowCache drops all sampled per-row state. Intended for tests that
// want to resample with a different geometry.
func (m *DeviceModel) ResetRowCache() {
	m.mu.Lock()
	m.rows = make(map[rowKey]*rowParams)
	m.mu.Unlock()
}
