package physics

import (
	"math"
	"testing"
)

func moduleTRCDAt(m *DeviceModel, v float64, rows int) float64 {
	worst := 0.0
	for row := 0; row < rows; row++ {
		if r := m.GroundTruthRowTRCDNS(0, row, v); r > worst {
			worst = r
		}
	}
	return worst
}

func TestTRCDPassingModulesStayUnderNominal(t *testing.T) {
	for _, name := range []string{"A3", "B0", "C0", "A5"} {
		m := newTestModel(t, name)
		p := m.Profile()
		for _, v := range p.VPPLevels() {
			if got := moduleTRCDAt(m, v, 200); got >= TRCDNominalNS {
				t.Errorf("%s at VPP=%v: tRCDmin %v >= nominal 13.5", name, v, got)
			}
		}
	}
}

func TestTRCDFailingModulesExceedNominal(t *testing.T) {
	for _, name := range []string{"A0", "A1", "A2", "B2", "B5"} {
		m := newTestModel(t, name)
		p := m.Profile()
		atMin := moduleTRCDAt(m, p.VPPMin, 200)
		if atMin <= TRCDNominalNS {
			t.Errorf("%s at VPPmin: tRCDmin %v, want > 13.5", name, atMin)
		}
		if atMin >= p.TRCDFixNS {
			t.Errorf("%s at VPPmin: tRCDmin %v, want < fix threshold %v", name, atMin, p.TRCDFixNS)
		}
		// At nominal VPP all modules operate within the guardband.
		if atNom := moduleTRCDAt(m, 2.5, 200); atNom >= TRCDNominalNS {
			t.Errorf("%s at nominal VPP: tRCDmin %v >= 13.5", name, atNom)
		}
	}
}

func TestTRCDMonotoneInVoltage(t *testing.T) {
	m := newTestModel(t, "A0")
	for row := 0; row < 50; row++ {
		prev := 0.0
		for v := 2.5; v >= m.Profile().VPPMin-1e-9; v -= 0.1 {
			r := m.GroundTruthRowTRCDNS(0, row, v)
			if r < prev-1e-9 {
				t.Fatalf("row %d: tRCD decreased as VPP dropped at %v", row, v)
			}
			prev = r
		}
	}
}

func TestTRCDGuardbandReduction(t *testing.T) {
	// Average guardband reduction across passing modules should be near the
	// paper's 21.9%.
	var sum float64
	var n int
	for _, p := range Profiles() {
		if p.TRCDFailsNominal {
			continue
		}
		m := NewDeviceModel(p, testGeometry(), 1234)
		gbNom := TRCDNominalNS - moduleTRCDAt(m, 2.5, 100)
		gbMin := TRCDNominalNS - moduleTRCDAt(m, p.VPPMin, 100)
		if gbNom <= 0 {
			t.Fatalf("%s: no guardband at nominal VPP", p.Name)
		}
		sum += 1 - gbMin/gbNom
		n++
	}
	mean := sum / float64(n)
	if mean < 0.14 || mean > 0.30 {
		t.Errorf("mean guardband reduction = %v, want ~0.219", mean)
	}
}

func TestColumnTRCDWorstColumnDominates(t *testing.T) {
	m := newTestModel(t, "A3")
	rowReq := m.GroundTruthRowTRCDNS(0, 9, 2.0)
	worst := 0.0
	for col := 0; col < m.Geometry().Columns(); col++ {
		req := m.ColumnTRCDReqNS(0, 9, col, 2.0, 0)
		if req > worst {
			worst = req
		}
	}
	if math.Abs(worst-rowReq) > 0.25 {
		t.Errorf("worst column req %v vs row req %v (noise margin 0.25)", worst, rowReq)
	}
}

func TestTRCDFlipsOnlyOnViolation(t *testing.T) {
	m := newTestModel(t, "A3")
	req := m.ColumnTRCDReqNS(0, 4, 2, 2.5, 0)
	if flips := m.TRCDFlipPositions(0, 4, 2, req+0.5, 2.5, 0); len(flips) != 0 {
		t.Errorf("flips despite meeting requirement: %d", len(flips))
	}
	flips := m.TRCDFlipPositions(0, 4, 2, req-1.0, 2.5, 0)
	if len(flips) == 0 {
		t.Error("no flips despite violating requirement by 1ns")
	}
	colBits := 64 * 8
	for _, pos := range flips {
		if int(pos) < 2*colBits || int(pos) >= 3*colBits {
			t.Errorf("flip position %d outside column 2's bit range", pos)
		}
	}
}

func TestTRCDFlipsGrowWithShortfall(t *testing.T) {
	m := newTestModel(t, "A3")
	req := m.ColumnTRCDReqNS(0, 4, 0, 2.5, 0)
	small := len(m.TRCDFlipPositions(0, 4, 0, req-0.5, 2.5, 0))
	big := len(m.TRCDFlipPositions(0, 4, 0, req-4.0, 2.5, 0))
	if big <= small {
		t.Errorf("flips at large shortfall (%d) not above small shortfall (%d)", big, small)
	}
}

func TestTRCDFixThresholdsHold(t *testing.T) {
	// At the published fix latencies (24ns Mfr A, 15ns Mfr B) no column of
	// any tested row violates timing even at VPPmin.
	for _, name := range []string{"A0", "B5"} {
		m := newTestModel(t, name)
		p := m.Profile()
		for row := 0; row < 60; row++ {
			for col := 0; col < m.Geometry().Columns(); col++ {
				for iter := 0; iter < 3; iter++ {
					if flips := m.TRCDFlipPositions(0, row, col, p.TRCDFixNS, p.VPPMin, iter); len(flips) != 0 {
						t.Fatalf("%s row %d col %d: flips at fix tRCD %vns", name, row, col, p.TRCDFixNS)
					}
				}
			}
		}
	}
}
