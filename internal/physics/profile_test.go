package physics

import (
	"math"
	"testing"
)

func TestProfilesCount(t *testing.T) {
	ps := Profiles()
	if len(ps) != 30 {
		t.Fatalf("got %d profiles, want 30 (Table 3)", len(ps))
	}
	counts := map[Manufacturer]int{}
	for _, p := range ps {
		counts[p.Mfr]++
	}
	for _, m := range []Manufacturer{MfrA, MfrB, MfrC} {
		if counts[m] != 10 {
			t.Errorf("Mfr %v has %d modules, want 10", m, counts[m])
		}
	}
}

func TestTotalChips272(t *testing.T) {
	if got := TotalChips(); got != 272 {
		t.Errorf("TotalChips = %d, want 272 (paper abstract)", got)
	}
}

func TestChipsPerDIMM(t *testing.T) {
	if OrgX4.ChipsPerDIMM() != 16 {
		t.Error("x4 DIMM should have 16 chips")
	}
	if OrgX8.ChipsPerDIMM() != 8 {
		t.Error("x8 DIMM should have 8 chips")
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("B3")
	if !ok {
		t.Fatal("B3 not found")
	}
	if p.Nominal.HCFirst != 16_600 || p.VPPMin != 1.6 {
		t.Errorf("B3 = %+v", p)
	}
	if _, ok := ProfileByName("Z9"); ok {
		t.Error("nonexistent module found")
	}
}

func TestProfilesReturnsCopy(t *testing.T) {
	a := Profiles()
	a[0].Name = "mutated"
	if b := Profiles(); b[0].Name == "mutated" {
		t.Error("Profiles() exposes internal slice")
	}
}

func TestProfilesByMfr(t *testing.T) {
	bs := ProfilesByMfr(MfrB)
	if len(bs) != 10 {
		t.Fatalf("got %d B modules", len(bs))
	}
	for _, p := range bs {
		if p.Mfr != MfrB {
			t.Errorf("module %s has Mfr %v", p.Name, p.Mfr)
		}
	}
}

func TestTRCDFailingModules(t *testing.T) {
	want := map[string]float64{"A0": 24, "A1": 24, "A2": 24, "B2": 15, "B5": 15}
	failChips := 0
	for _, p := range Profiles() {
		if fix, ok := want[p.Name]; ok {
			if !p.TRCDFailsNominal || p.TRCDFixNS != fix {
				t.Errorf("%s: TRCDFailsNominal=%v fix=%v, want true/%v",
					p.Name, p.TRCDFailsNominal, p.TRCDFixNS, fix)
			}
			failChips += p.Chips()
		} else if p.TRCDFailsNominal {
			t.Errorf("%s unexpectedly marked TRCD-failing", p.Name)
		}
	}
	// Paper: 64 chips fail nominal tRCD (208 of 272 pass).
	if failChips != 64 {
		t.Errorf("failing chips = %d, want 64", failChips)
	}
}

func TestRetentionFailingModules(t *testing.T) {
	want := map[string]bool{"B6": true, "B8": true, "B9": true,
		"C1": true, "C3": true, "C5": true, "C9": true}
	n := 0
	for _, p := range Profiles() {
		if p.RetentionFails64ms {
			n++
			if !want[p.Name] {
				t.Errorf("%s unexpectedly marked retention-failing", p.Name)
			}
		} else if want[p.Name] {
			t.Errorf("%s should be retention-failing", p.Name)
		}
	}
	if n != 7 {
		t.Errorf("retention-failing modules = %d, want 7 (23 of 30 pass)", n)
	}
}

func TestVPPLevels(t *testing.T) {
	p, _ := ProfileByName("B3") // VPPmin 1.6
	levels := p.VPPLevels()
	if len(levels) != 10 {
		t.Fatalf("B3 levels = %v, want 10 entries 2.5..1.6", levels)
	}
	if levels[0] != 2.5 || levels[len(levels)-1] != 1.6 {
		t.Errorf("levels endpoints = %v, %v", levels[0], levels[len(levels)-1])
	}
	for i := 1; i < len(levels); i++ {
		if d := levels[i-1] - levels[i]; math.Abs(d-0.1) > 1e-9 {
			t.Errorf("step %d = %v, want 0.1", i, d)
		}
	}
}

func TestVPPRecWithinSweep(t *testing.T) {
	for _, p := range Profiles() {
		if p.VPPRec < p.VPPMin-1e-9 || p.VPPRec > VPPNominal+1e-9 {
			t.Errorf("%s: VPPRec %v outside [%v, 2.5]", p.Name, p.VPPRec, p.VPPMin)
		}
		if p.VPPMin < 1.4-1e-9 || p.VPPMin > 2.4+1e-9 {
			t.Errorf("%s: VPPmin %v outside the observed 1.4..2.4 range", p.Name, p.VPPMin)
		}
	}
}

func TestAggregateHCFirstIncrease(t *testing.T) {
	// The module-level mean HCfirst change at VPPmin should be within a few
	// points of the paper's +7.4% average (module-level means differ
	// slightly from the row-level mean the paper reports).
	var sum float64
	maxRatio := 0.0
	for _, p := range Profiles() {
		r := p.AtVPPMin.HCFirst / p.Nominal.HCFirst
		sum += r
		if r > maxRatio {
			maxRatio = r
		}
	}
	mean := sum / 30
	if mean < 1.0 || mean > 1.12 {
		t.Errorf("mean HCfirst ratio = %v, expected ~1.04-1.07", mean)
	}
	// C5 has the largest module-level ratio (12.7/9.4); the paper's 85.8%
	// maximum (B3) is a row-level figure that exceeds every module-level one.
	if math.Abs(maxRatio-12.7/9.4) > 1e-9 {
		t.Errorf("max module HCfirst ratio = %v, want %v (C5)", maxRatio, 12.7/9.4)
	}
}

func TestAggregateBERReduction(t *testing.T) {
	minRatio := math.Inf(1)
	minName := ""
	for _, p := range Profiles() {
		r := p.AtVPPMin.BER / p.Nominal.BER
		if r < minRatio {
			minRatio, minName = r, p.Name
		}
	}
	if minName != "B3" {
		t.Errorf("largest BER reduction at %s, want B3", minName)
	}
	if math.Abs(minRatio-1.09e-3/2.73e-3) > 1e-9 {
		t.Errorf("B3 BER ratio = %v, want %v", minRatio, 1.09e-3/2.73e-3)
	}
}

func TestManufacturerStrings(t *testing.T) {
	if MfrA.String() != "A" || MfrB.String() != "B" || MfrC.String() != "C" {
		t.Error("manufacturer short names wrong")
	}
	if MfrA.FullName() != "Micron" || MfrB.FullName() != "Samsung" || MfrC.FullName() != "SK Hynix" {
		t.Error("manufacturer full names wrong")
	}
	if Manufacturer(0).String() != "?" {
		t.Error("zero manufacturer should stringify as ?")
	}
}

func TestOrgString(t *testing.T) {
	if OrgX4.String() != "x4" || OrgX8.String() != "x8" || ChipOrg(0).String() != "x?" {
		t.Error("ChipOrg String() wrong")
	}
}
