package physics

import "math"

// Phi is the standard normal cumulative distribution function.
func Phi(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// PhiInv is the standard normal quantile function (inverse CDF), computed
// with Acklam's rational approximation refined by one Halley step. The
// refined result is accurate to ~1e-15 over (0, 1); out-of-range inputs
// return ±Inf.
func PhiInv(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}

	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-
			2.400758277161838e+00)*q-2.549732539343734e+00)*q+
			4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+
				2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((-3.969683028665376e+01*r+2.209460984245205e+02)*r-
			2.759285104469687e+02)*r+1.383577518672690e+02)*r-
			3.066479806614716e+01)*r + 2.506628277459239e+00) * q /
			(((((-5.447609879822406e+01*r+1.615858368580409e+02)*r-
				1.556989798598866e+02)*r+6.680131188771972e+01)*r-
				1.328068155288572e+01)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-
			2.400758277161838e+00)*q-2.549732539343734e+00)*q+
			4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+
				2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	}

	// One Halley refinement using the exact CDF.
	e := Phi(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// LogNormalCDF evaluates Phi((ln x - mu)/sigma), the CDF of a log-normal
// distribution; it is 0 for x <= 0.
func LogNormalCDF(x, mu, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	return Phi((math.Log(x) - mu) / sigma)
}

// SolveLogNormal finds the (mu, sigma) of a log-normal distribution passing
// through two CDF anchor points: CDF(x1) = p1 and CDF(x2) = p2, with
// 0 < x1 < x2 and 0 < p1 < p2 < 1. This is how the model converts a row's
// (HCfirst, BER@300K) pair or a vendor's two retention anchors into a full
// threshold distribution. The second return is false when the anchors are
// degenerate (equal quantiles or non-increasing).
func SolveLogNormal(x1, p1, x2, p2 float64) (mu, sigma float64, ok bool) {
	if x1 <= 0 || x2 <= x1 || p1 <= 0 || p2 <= p1 || p2 >= 1 {
		return 0, 0, false
	}
	z1, z2 := PhiInv(p1), PhiInv(p2)
	if z2 <= z1 {
		return 0, 0, false
	}
	sigma = (math.Log(x2) - math.Log(x1)) / (z2 - z1)
	mu = math.Log(x1) - sigma*z1
	return mu, sigma, true
}

// clamp limits v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
