package physics

import (
	"math"

	"github.com/dramstudy/rhvpp/internal/rng"
)

// Retention-model constants.
const (
	// retentionFloorMS is the effective-time floor of the bulk retention
	// distribution: manufacturers screen and repair cells retaining less
	// than this at worst-case conditions, which is why no bulk flips occur
	// at or below the nominal 64 ms refresh window at any tested VPP (§4.4,
	// the Fig. 10a x-axis starts at 64 ms; the only 64/128 ms failures come
	// from the engineered weak-cell tiers of Fig. 11).
	retentionFloorMS = 350
	// retentionTempRefC is the die temperature the retention calibration
	// anchors are defined at (the paper tests retention at 80 °C).
	retentionTempRefC = 80.0
	// weakTier64MS and weakTier128MS are the failing refresh windows of the
	// engineered weak-cell tiers behind the Fig. 11 analysis.
	weakTier64MS  = 64
	weakTier128MS = 128
)

// retentionAnchor holds per-manufacturer calibration anchors read off
// Fig. 10: average retention BER at tREFW = 4 s and 16 s under nominal VPP,
// and at 4 s under VPP = 1.5 V (all at 80 °C).
type retentionAnchor struct {
	ber4sNom  float64
	ber16sNom float64
	ber4sLow  float64
}

func retentionAnchorFor(m Manufacturer) retentionAnchor {
	switch m {
	case MfrA:
		return retentionAnchor{ber4sNom: 0.003, ber16sNom: 0.050, ber4sLow: 0.008}
	case MfrB:
		return retentionAnchor{ber4sNom: 0.002, ber16sNom: 0.020, ber4sLow: 0.005}
	default: // MfrC
		return retentionAnchor{ber4sNom: 0.014, ber16sNom: 0.080, ber4sLow: 0.025}
	}
}

// retentionModel is the calibrated per-module retention behavior: a
// floor-truncated log-normal distribution of cell retention times whose
// scale shrinks as the restore margin shrinks with VPP.
type retentionModel struct {
	mu     float64 // log-time location of the cell retention distribution (ms)
	sigma  float64 // log-time spread
	kappa  float64 // margin-scaling exponent: tau scales with (margin ratio)^kappa
	floorF float64 // CDF mass below the screening floor (precomputed)
	vppMin float64
}

// weakCell is one engineered marginal cell behind the Fig. 11 word-level
// analysis: it fails at its tier's refresh window when operated at VPPmin
// (and proportionally at other voltages) but never below the preceding
// power-of-two window.
type weakCell struct {
	pos    int32   // bit position within the row
	tierMS float64 // retention time at VPPmin, in (tier/2, tier]
}

// calibrateRetention solves the per-module retention parameters from the
// manufacturer anchors plus a small module-to-module spread.
func calibrateRetention(prof ModuleProfile, s *rng.Stream) retentionModel {
	a := retentionAnchorFor(prof.Mfr)
	mu, sigma, ok := SolveLogNormal(4000, a.ber4sNom, 16000, a.ber16sNom)
	if !ok {
		mu, sigma = 12, 1.5
	}
	// Solve the margin-scaling exponent from the 1.5 V anchor:
	// F(4000 / rho(1.5V)) = ber4sLow.
	z3 := PhiInv(a.ber4sLow)
	lnRho := math.Log(4000) - mu - sigma*z3
	marginRatio := RestoreMargin(1.5) / RestoreMargin(VPPNominal)
	kappa := 0.6
	if marginRatio > 0 && marginRatio < 1 && lnRho < 0 {
		kappa = lnRho / math.Log(marginRatio)
	}
	// Module-to-module spread on the distribution location.
	mu += 0.08 * s.NormFloat64()
	m := retentionModel{mu: mu, sigma: sigma, kappa: kappa, vppMin: prof.VPPMin}
	m.floorF = Phi((math.Log(retentionFloorMS) - mu) / sigma)
	return m
}

// rho returns the retention-time scale factor at voltage v relative to
// nominal VPP (1 at nominal, <1 at reduced VPP as the restore margin
// shrinks). Below the restore cutoff the margin collapses; rho is clamped to
// a small positive value so the CDF stays defined.
func (r retentionModel) rho(v float64) float64 {
	ratio := RestoreMargin(v) / RestoreMargin(VPPNominal)
	if ratio <= 0.01 {
		ratio = 0.01
	}
	if ratio > 1 {
		ratio = 1
	}
	return math.Pow(ratio, r.kappa)
}

// bulkProb returns the probability that a bulk (non-weak) cell has failed
// after elapsedMS at voltage v, temperature tempC, with the row's retention
// multiplier lambda. Leakage doubles per 10 °C above the 80 °C reference.
func (r retentionModel) bulkProb(elapsedMS, v, tempC, lambda float64) float64 {
	if elapsedMS <= 0 {
		return 0
	}
	accel := math.Pow(2, (tempC-retentionTempRefC)/10)
	tEff := elapsedMS * accel / (r.rho(v) * lambda)
	f := Phi((math.Log(tEff) - r.mu) / r.sigma)
	if f <= r.floorF {
		return 0
	}
	return (f - r.floorF) / (1 - r.floorF)
}

// weakCellSpec describes a tier of engineered weak cells for one
// manufacturer: the fraction of rows carrying them and the number of
// distinct 64-bit words affected per such row.
type weakCellSpec struct {
	tierMS   float64
	rowFrac  float64
	words    int
	needFail bool // tier only present in modules flagged RetentionFails64ms
}

// weakSpecsFor returns the Fig. 11 weak-cell population for a manufacturer:
//
//	64 ms tier (only modules failing at the nominal window): Mfr B rows
//	carry four single-flip words in 15.5% of rows plus 116 words in 0.01%;
//	Mfr C rows carry one word in 0.2% of rows.
//	128 ms tier (all modules): 0.1% / 4.7% / 0.2% of rows with 1 / 2 / 1
//	erroneous words for Mfrs A / B / C.
func weakSpecsFor(m Manufacturer) []weakCellSpec {
	switch m {
	case MfrA:
		return []weakCellSpec{
			{tierMS: weakTier128MS, rowFrac: 0.001, words: 1},
		}
	case MfrB:
		return []weakCellSpec{
			{tierMS: weakTier64MS, rowFrac: 0.155, words: 4, needFail: true},
			{tierMS: weakTier64MS, rowFrac: 0.0001, words: 116, needFail: true},
			{tierMS: weakTier128MS, rowFrac: 0.047, words: 2},
		}
	default: // MfrC
		return []weakCellSpec{
			{tierMS: weakTier64MS, rowFrac: 0.002, words: 1, needFail: true},
			{tierMS: weakTier128MS, rowFrac: 0.002, words: 1},
		}
	}
}

// sampleWeakCells draws the weak cells of one row. At most one weak cell is
// placed per 64-bit word, which is what makes all retention errors at the
// smallest failing window SECDED-correctable (Obsv. 14).
func (r retentionModel) sampleWeakCells(s *rng.Stream, geom Geometry, prof ModuleProfile) []weakCell {
	var cells []weakCell
	words := geom.RowBytes / 8
	if words < 1 {
		return nil
	}
	usedWords := map[int]bool{}
	for _, spec := range weakSpecsFor(prof.Mfr) {
		if spec.needFail && !prof.RetentionFails64ms {
			continue
		}
		if !s.Bool(spec.rowFrac) {
			continue
		}
		n := spec.words
		if n > words-len(usedWords) {
			n = words - len(usedWords)
		}
		for i := 0; i < n; i++ {
			w := s.Intn(words)
			for usedWords[w] {
				w = (w + 1) % words
			}
			usedWords[w] = true
			bit := s.Intn(64)
			// Retention time at VPPmin in (tier/2, tier]: fails at the
			// tier's window but not at the preceding power of two.
			tier := spec.tierMS * (0.55 + 0.43*s.Float64())
			cells = append(cells, weakCell{pos: int32(w*64 + bit), tierMS: tier})
		}
	}
	return cells
}

// weakVoltageExponent sharpens the weak cells' voltage response: they are
// marginal precisely because of the restoration mechanism, so their retention
// time collapses much faster than the bulk population as VPP approaches
// VPPmin. This keeps modules clean at the nominal window under nominal VPP
// (Obsv. 13) while producing the Fig. 11 failures at VPPmin.
const weakVoltageExponent = 3

// weakFailed reports whether a weak cell has failed after elapsedMS at
// voltage v and temperature tempC. The cell's retention time is tierMS at
// the module's VPPmin and recovers steeply at higher voltages.
func (r retentionModel) weakFailed(c weakCell, elapsedMS, v, tempC float64) bool {
	accel := math.Pow(2, (tempC-retentionTempRefC)/10)
	tau := c.tierMS * math.Pow(r.rho(v)/r.rho(r.vppMin), weakVoltageExponent)
	return elapsedMS*accel >= tau
}

// RetentionFlipPositions returns the bit positions in a row that have
// suffered retention failures after elapsedMS of unrefreshed time at
// voltage vpp and die temperature tempC. iter selects the measurement-noise
// realization. Positions are unique and unordered.
func (m *DeviceModel) RetentionFlipPositions(bank, rowAddr int, vpp, elapsedMS, tempC float64, iter int) []int32 {
	if elapsedMS <= 0 || vpp < m.prof.VPPMin-1e-9 {
		return nil
	}
	rp := m.row(bank, rowAddr)
	n := m.geom.RowBits()

	noise := math.Exp(m.root.Derive("rnoise", bank, rowAddr, iter).Normal(0, 0.05))
	p := m.retention.bulkProb(elapsedMS*noise, vpp, tempC, rp.retLambda)
	count := int(p*float64(n) + rp.flipFrac)
	if count > n {
		count = n
	}

	var out []int32
	if count > 0 {
		rp.retPermOnce.Do(func() {
			rp.retPerm = m.cellPermutation("retperm", bank, rowAddr)
		})
		out = append(out, rp.retPerm[:count]...)
	}
	if len(rp.weak) > 0 {
		seen := make(map[int32]bool, len(out))
		for _, pos := range out {
			seen[pos] = true
		}
		for _, c := range rp.weak {
			if m.retention.weakFailed(c, elapsedMS, vpp, tempC) && !seen[c.pos] {
				out = append(out, c.pos)
				seen[c.pos] = true
			}
		}
	}
	return out
}

// GroundTruthWeakCells returns the number of engineered weak cells in a row
// (test hook; characterization code must measure via retention sweeps).
func (m *DeviceModel) GroundTruthWeakCells(bank, rowAddr int) int {
	return len(m.row(bank, rowAddr).weak)
}
