package physics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhiKnownValues(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.6448536269514722, 0.95},
		{-1.6448536269514722, 0.05},
		{2.3263478740408408, 0.99},
		{-2.3263478740408408, 0.01},
	}
	for _, tt := range tests {
		if got := Phi(tt.x); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Phi(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestPhiInvRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-6, 0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999, 1 - 1e-6} {
		x := PhiInv(p)
		if got := Phi(x); math.Abs(got-p) > 1e-9*math.Max(1, 1/p) {
			t.Errorf("Phi(PhiInv(%v)) = %v", p, got)
		}
	}
}

func TestPhiInvEdges(t *testing.T) {
	if !math.IsInf(PhiInv(0), -1) {
		t.Error("PhiInv(0) should be -Inf")
	}
	if !math.IsInf(PhiInv(1), 1) {
		t.Error("PhiInv(1) should be +Inf")
	}
	if PhiInv(0.5) != 0 && math.Abs(PhiInv(0.5)) > 1e-12 {
		t.Errorf("PhiInv(0.5) = %v", PhiInv(0.5))
	}
}

func TestPhiInvMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for p := 0.001; p < 1; p += 0.001 {
		x := PhiInv(p)
		if x <= prev {
			t.Fatalf("PhiInv not monotone at p=%v", p)
		}
		prev = x
	}
}

func TestLogNormalCDF(t *testing.T) {
	// Median of lognormal(mu, sigma) is exp(mu).
	if got := LogNormalCDF(math.Exp(3), 3, 0.7); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF at median = %v, want 0.5", got)
	}
	if LogNormalCDF(0, 0, 1) != 0 || LogNormalCDF(-5, 0, 1) != 0 {
		t.Error("CDF of non-positive x should be 0")
	}
}

func TestSolveLogNormal(t *testing.T) {
	mu, sigma, ok := SolveLogNormal(100, 0.01, 1000, 0.4)
	if !ok {
		t.Fatal("solve failed")
	}
	if got := LogNormalCDF(100, mu, sigma); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("anchor 1: CDF(100) = %v, want 0.01", got)
	}
	if got := LogNormalCDF(1000, mu, sigma); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("anchor 2: CDF(1000) = %v, want 0.4", got)
	}
}

func TestSolveLogNormalRejectsDegenerate(t *testing.T) {
	cases := [][4]float64{
		{100, 0.4, 1000, 0.4}, // equal probabilities
		{100, 0.5, 1000, 0.1}, // decreasing
		{1000, 0.1, 100, 0.5}, // x2 < x1
		{-1, 0.1, 100, 0.5},   // non-positive x
		{100, 0, 1000, 0.5},   // p1 = 0
		{100, 0.1, 1000, 1.0}, // p2 = 1
		{100, 0.1, 100, 0.5},  // x1 == x2
	}
	for _, c := range cases {
		if _, _, ok := SolveLogNormal(c[0], c[1], c[2], c[3]); ok {
			t.Errorf("SolveLogNormal(%v) accepted degenerate anchors", c)
		}
	}
}

func TestQuickSolveLogNormalHitsAnchors(t *testing.T) {
	f := func(x1r, p1r, x2r, p2r uint16) bool {
		x1 := 1 + float64(x1r)
		x2 := x1 * (2 + float64(x2r)/100)
		p1 := 0.001 + 0.4*float64(p1r)/65535
		p2 := p1 + 0.01 + 0.5*float64(p2r)/65535
		mu, sigma, ok := SolveLogNormal(x1, p1, x2, p2)
		if !ok {
			return false
		}
		return math.Abs(LogNormalCDF(x1, mu, sigma)-p1) < 1e-6 &&
			math.Abs(LogNormalCDF(x2, mu, sigma)-p2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 0, 1) != 1 || clamp(-5, 0, 1) != 0 || clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp misbehaves")
	}
}
