package physics

import (
	"math"
	"testing"

	"github.com/dramstudy/rhvpp/internal/pattern"
)

func testGeometry() Geometry {
	return Geometry{Banks: 2, RowsPerBank: 4096, RowBytes: 1024, SubarrayRows: 512}
}

func newTestModel(t *testing.T, name string) *DeviceModel {
	t.Helper()
	p, ok := ProfileByName(name)
	if !ok {
		t.Fatalf("profile %s not found", name)
	}
	return NewDeviceModel(p, testGeometry(), 1234)
}

func TestGeometry(t *testing.T) {
	g := testGeometry()
	if g.RowBits() != 8192 {
		t.Errorf("RowBits = %d", g.RowBits())
	}
	if g.Columns() != 16 {
		t.Errorf("Columns = %d", g.Columns())
	}
	if !g.Valid() {
		t.Error("test geometry invalid")
	}
	if (Geometry{}).Valid() {
		t.Error("zero geometry reported valid")
	}
	if !DefaultGeometry().Valid() || !FullGeometry().Valid() {
		t.Error("stock geometries invalid")
	}
}

func TestSaturationVoltage(t *testing.T) {
	// Obsv. 10: saturates at VDD for VPP >= 2.0; 4.1%/11.0%/18.1% lower at
	// 1.9/1.8/1.7 V.
	tests := []struct {
		vpp, wantLossPct float64
	}{
		{2.5, 0}, {2.1, 0}, {2.0, 0},
		{1.9, 4.1}, {1.8, 11.0}, {1.7, 18.1},
	}
	for _, tt := range tests {
		v := SaturationVoltage(tt.vpp)
		loss := (VDDNominal - v) / VDDNominal * 100
		if math.Abs(loss-tt.wantLossPct) > 1.7 {
			t.Errorf("VPP=%v: saturation loss = %.1f%%, want ~%.1f%%", tt.vpp, loss, tt.wantLossPct)
		}
	}
}

func TestRestoreMarginNonNegative(t *testing.T) {
	for v := 0.5; v <= 3.0; v += 0.05 {
		if RestoreMargin(v) < 0 {
			t.Fatalf("negative margin at VPP=%v", v)
		}
	}
	if math.Abs(RestoreMargin(2.5)-(VDDNominal-VSenseMin)) > 1e-12 {
		t.Errorf("nominal margin = %v", RestoreMargin(2.5))
	}
}

func TestModelDeterminism(t *testing.T) {
	p, _ := ProfileByName("A3")
	m1 := NewDeviceModel(p, testGeometry(), 77)
	m2 := NewDeviceModel(p, testGeometry(), 77)
	for row := 0; row < 20; row++ {
		c1 := m1.HammerFlipCount(0, row, pattern.RowStripeFF, 2.0, 300_000, 50, 3)
		c2 := m2.HammerFlipCount(0, row, pattern.RowStripeFF, 2.0, 300_000, 50, 3)
		if c1 != c2 {
			t.Fatalf("row %d: models with equal seeds disagree: %d != %d", row, c1, c2)
		}
	}
}

func TestModelSeedSensitivity(t *testing.T) {
	p, _ := ProfileByName("A3")
	m1 := NewDeviceModel(p, testGeometry(), 1)
	m2 := NewDeviceModel(p, testGeometry(), 2)
	diff := false
	for row := 0; row < 50 && !diff; row++ {
		if m1.GroundTruthHCFirst(0, row, 2.5) != m2.GroundTruthHCFirst(0, row, 2.5) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical ground truth")
	}
}

func TestHCFirstNominalAnchorsToTable(t *testing.T) {
	// The minimum ground-truth HCfirst across many rows should approach the
	// module's Table 3 value at nominal VPP.
	for _, name := range []string{"A0", "B3", "C5"} {
		m := newTestModel(t, name)
		minHC := math.Inf(1)
		for row := 0; row < 2000; row++ {
			if hc := m.GroundTruthHCFirst(0, row, 2.5); hc < minHC {
				minHC = hc
			}
		}
		want := m.Profile().Nominal.HCFirst
		if minHC < want*0.999 || minHC > want*1.15 {
			t.Errorf("%s: min HCfirst = %v, want within [%v, %v]", name, minHC, want, want*1.15)
		}
	}
}

func TestHCFirstRatioAtVPPMin(t *testing.T) {
	// The weakest rows must carry the module's published normalized HCfirst
	// at VPPmin (the coupling-weight construction guarantees this).
	for _, name := range []string{"B3", "B9", "C5", "A8"} {
		m := newTestModel(t, name)
		p := m.Profile()
		wantRatio := p.AtVPPMin.HCFirst / p.Nominal.HCFirst

		minNom, minMin := math.Inf(1), math.Inf(1)
		for row := 0; row < 2000; row++ {
			if hc := m.GroundTruthHCFirst(0, row, 2.5); hc < minNom {
				minNom = hc
			}
			if hc := m.GroundTruthHCFirst(0, row, p.VPPMin); hc < minMin {
				minMin = hc
			}
		}
		gotRatio := minMin / minNom
		if math.Abs(gotRatio-wantRatio) > 0.08*wantRatio {
			t.Errorf("%s: module HCfirst ratio at VPPmin = %.3f, want %.3f (±8%%)",
				name, gotRatio, wantRatio)
		}
	}
}

func TestHammerFlipCountMonotoneInHC(t *testing.T) {
	m := newTestModel(t, "B0")
	prev := -1
	for hc := 1000.0; hc <= 600_000; hc *= 1.3 {
		c := m.HammerFlipCount(0, 7, pattern.CheckerAA, 2.5, hc, 50, 0)
		if c < prev {
			t.Fatalf("flip count decreased: %d after %d at hc=%v", c, prev, hc)
		}
		prev = c
	}
}

func TestHammerNoFlipsBelowThreshold(t *testing.T) {
	m := newTestModel(t, "A5") // strongest module, HCfirst 140.7K
	for row := 0; row < 30; row++ {
		// Use the row's worst pattern implicitly via ground truth: at 20%
		// of HCfirst even noisy measurements must see zero flips.
		hc := m.GroundTruthHCFirst(0, row, 2.5) * 0.2
		for iter := 0; iter < 5; iter++ {
			for _, k := range pattern.All() {
				if c := m.HammerFlipCount(0, row, k, 2.5, hc, 50, iter); c != 0 {
					t.Fatalf("row %d iter %d pattern %v: %d flips at 0.2x HCfirst", row, iter, k, c)
				}
			}
		}
	}
}

func TestHammerFlipsAtGroundTruth(t *testing.T) {
	// Hammering well above the ground-truth HCfirst must flip bits.
	m := newTestModel(t, "B0")
	for row := 0; row < 20; row++ {
		hc := m.GroundTruthHCFirst(0, row, 2.5) * 2
		found := false
		for _, k := range pattern.All() {
			if m.HammerFlipCount(0, row, k, 2.5, hc, 50, 0) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("row %d: no flips at 2x ground-truth HCfirst", row)
		}
	}
}

func TestHammerZeroCases(t *testing.T) {
	m := newTestModel(t, "B0")
	if m.HammerFlipCount(0, 0, pattern.CheckerAA, 2.5, 0, 50, 0) != 0 {
		t.Error("zero hammers produced flips")
	}
	if m.HammerFlipCount(0, 0, pattern.CheckerAA, 1.0, 1e6, 50, 0) != 0 {
		t.Error("module below VPPmin should not respond (no flips reported)")
	}
}

func TestBERNearTableValue(t *testing.T) {
	// Mean flips/bits across rows at the reference hammer count should be
	// within a factor ~2 of the module's Table 3 BER (per-row spread and
	// pattern penalties make this a loose check; experiments use WCDP).
	m := newTestModel(t, "B7") // highest BER module: 1.32e-1
	n := float64(m.Geometry().RowBits())
	var sum float64
	const rows = 300
	for row := 0; row < rows; row++ {
		best := 0
		for _, k := range pattern.All() {
			if c := m.HammerFlipCount(0, row, k, 2.5, ReferenceHammerCount, 50, 0); c > best {
				best = c
			}
		}
		sum += float64(best) / n
	}
	got := sum / rows
	want := m.Profile().Nominal.BER
	if got < want/2 || got > want*2 {
		t.Errorf("mean BER = %v, want within 2x of %v", got, want)
	}
}

func TestFlipPositionsStablePrefix(t *testing.T) {
	m := newTestModel(t, "B0")
	p10 := m.HammerFlipPositions(0, 3, 10)
	p50 := m.HammerFlipPositions(0, 3, 50)
	if len(p10) != 10 || len(p50) != 50 {
		t.Fatalf("lengths: %d, %d", len(p10), len(p50))
	}
	for i := range p10 {
		if p10[i] != p50[i] {
			t.Fatalf("flip ordering not stable at %d", i)
		}
	}
	seen := map[int32]bool{}
	for _, pos := range p50 {
		if pos < 0 || int(pos) >= m.Geometry().RowBits() {
			t.Fatalf("position %d out of range", pos)
		}
		if seen[pos] {
			t.Fatalf("duplicate position %d", pos)
		}
		seen[pos] = true
	}
}

func TestFlipPositionsClampedToRowBits(t *testing.T) {
	m := newTestModel(t, "B0")
	all := m.HammerFlipPositions(0, 3, 1<<20)
	if len(all) != m.Geometry().RowBits() {
		t.Errorf("over-large count returned %d positions, want %d", len(all), m.Geometry().RowBits())
	}
}

func TestPatternFactorWorstIsOne(t *testing.T) {
	m := newTestModel(t, "C0")
	for row := 0; row < 50; row++ {
		best := 0.0
		for _, k := range pattern.All() {
			f := m.PatternFactor(0, row, k, 2.5)
			if f > best {
				best = f
			}
			if f <= 0 || f > 1.1 {
				t.Fatalf("row %d pattern %v: factor %v out of range", row, k, f)
			}
		}
		if math.Abs(best-1) > 1e-12 {
			t.Errorf("row %d: best pattern factor = %v, want 1", row, best)
		}
	}
}

func TestPatternFactorInvalidKind(t *testing.T) {
	m := newTestModel(t, "C0")
	if f := m.PatternFactor(0, 0, pattern.Kind(99), 2.5); f != 0.5 {
		t.Errorf("invalid pattern factor = %v, want 0.5", f)
	}
}

func TestWCDPDistribution(t *testing.T) {
	// Each of the six patterns should be worst for a nontrivial share of rows.
	m := newTestModel(t, "C0")
	counts := map[pattern.Kind]int{}
	const rows = 600
	for row := 0; row < rows; row++ {
		for _, k := range pattern.All() {
			if m.PatternFactor(0, row, k, 2.5) == 1 {
				counts[k]++
			}
		}
	}
	for _, k := range pattern.All() {
		if counts[k] < rows/20 {
			t.Errorf("pattern %v is WCDP for only %d/%d rows", k, counts[k], rows)
		}
	}
}

func TestOppositeTrendRowsExist(t *testing.T) {
	// Obsv. 5: some rows' HCfirst decreases at reduced VPP. B9's module-level
	// value decreases, so its weak rows must show ratios < 1.
	m := newTestModel(t, "B9")
	p := m.Profile()
	decreasing, total := 0, 800
	for row := 0; row < total; row++ {
		nom := m.GroundTruthHCFirst(0, row, 2.5)
		min := m.GroundTruthHCFirst(0, row, p.VPPMin)
		if min < nom {
			decreasing++
		}
	}
	if decreasing == 0 {
		t.Error("no opposite-trend rows in B9")
	}
	if decreasing == total {
		t.Error("all B9 rows decreasing; expected a mix")
	}
}

func TestMfrCRowsMostlyIncrease(t *testing.T) {
	// Obsv. 6: HCfirst increases for 83.5% of Mfr C rows. Check C0 (module
	// ratio 1.21) has a strong majority of increasing rows.
	m := newTestModel(t, "C0")
	p := m.Profile()
	inc, total := 0, 800
	for row := 0; row < total; row++ {
		if m.GroundTruthHCFirst(0, row, p.VPPMin) > m.GroundTruthHCFirst(0, row, 2.5) {
			inc++
		}
	}
	if frac := float64(inc) / float64(total); frac < 0.7 {
		t.Errorf("C0 increasing-row fraction = %v, want > 0.7", frac)
	}
}

func TestHumpShape(t *testing.T) {
	p, _ := ProfileByName("A2") // interior VPPRec = 2.1
	m := NewDeviceModel(p, testGeometry(), 5)
	if h := m.hump(2.5); h != 0 {
		t.Errorf("hump at nominal = %v, want 0", h)
	}
	if h := m.hump(p.VPPMin); h != 0 {
		t.Errorf("hump at VPPmin = %v, want 0", h)
	}
	if h := m.hump(2.1); math.Abs(h-1) > 1e-12 {
		t.Errorf("hump at peak = %v, want 1", h)
	}
	for v := p.VPPMin; v <= 2.5; v += 0.01 {
		if h := m.hump(v); h < 0 || h > 1 {
			t.Fatalf("hump(%v) = %v out of [0,1]", v, h)
		}
	}
}

func TestInteriorVPPRecModuleHCPeaks(t *testing.T) {
	// A2's recommended VPP (2.1 V) should show a higher module-level
	// ground-truth HCfirst than both endpoints, mirroring Table 3.
	m := newTestModel(t, "A2")
	p := m.Profile()
	minAt := func(v float64) float64 {
		min := math.Inf(1)
		for row := 0; row < 1500; row++ {
			if hc := m.GroundTruthHCFirst(0, row, v); hc < min {
				min = hc
			}
		}
		return min
	}
	nom, rec, low := minAt(2.5), minAt(2.1), minAt(p.VPPMin)
	if rec <= nom || rec <= low {
		t.Errorf("A2 HCfirst: nominal %v, rec %v, vppmin %v; want rec highest", nom, rec, low)
	}
}

func TestResetRowCache(t *testing.T) {
	m := newTestModel(t, "A3")
	before := m.GroundTruthHCFirst(0, 5, 2.5)
	m.ResetRowCache()
	after := m.GroundTruthHCFirst(0, 5, 2.5)
	if before != after {
		t.Error("row resampling after reset changed deterministic values")
	}
}

func TestTemperatureFactorNeutralAt50C(t *testing.T) {
	// The paper characterizes RowHammer at 50C; Table 3 calibration must be
	// untouched there, and flips must vary when the die heats or cools.
	m := newTestModel(t, "B0")
	varied := 0
	for row := 0; row < 40; row++ {
		at50 := m.HammerFlipCount(0, row, pattern.RowStripeFF, 2.5, 300_000, 50, 0)
		again := m.HammerFlipCount(0, row, pattern.RowStripeFF, 2.5, 300_000, 50, 0)
		if at50 != again {
			t.Fatalf("row %d: 50C measurement not reproducible", row)
		}
		at85 := m.HammerFlipCount(0, row, pattern.RowStripeFF, 2.5, 300_000, 85, 0)
		if at85 != at50 {
			varied++
		}
	}
	if varied == 0 {
		t.Error("temperature had no effect on any of 40 rows")
	}
}

func TestTemperatureEffectMostlyIncreases(t *testing.T) {
	// The mean temperature coefficient is positive: across many rows, more
	// flips at 85C than at 50C in aggregate.
	m := newTestModel(t, "B0")
	tot50, tot85 := 0, 0
	for row := 0; row < 150; row++ {
		tot50 += m.HammerFlipCount(0, row, pattern.RowStripeFF, 2.5, 300_000, 50, 0)
		tot85 += m.HammerFlipCount(0, row, pattern.RowStripeFF, 2.5, 300_000, 85, 0)
	}
	if tot85 <= tot50 {
		t.Errorf("aggregate flips at 85C (%d) not above 50C (%d)", tot85, tot50)
	}
}
