// Package mapping implements DRAM-internal address translation between the
// logical row addresses exposed on the DDR4 interface and the physical row
// locations inside the die, plus the hammer-probing reverse-engineering
// technique the paper uses to locate each victim's physically adjacent
// aggressor rows (§4.2 "Finding Physically Adjacent Rows").
//
// Manufacturers scramble row addresses for post-manufacturing repair and
// cost-optimized internal organization; the scheme varies across vendors and
// generations. The schemes here are representative bijections in the spirit
// of those documented by prior reverse-engineering work; the
// characterization flow never assumes a scheme — it probes.
package mapping

import (
	"errors"
	"fmt"

	"github.com/dramstudy/rhvpp/internal/physics"
)

// Scheme is a bijective translation between logical and physical row
// addresses within a bank. Implementations must be pure and total over
// [0, rows).
type Scheme interface {
	// Name identifies the scheme for reports.
	Name() string
	// LogicalToPhysical translates an interface row address to its
	// physical location.
	LogicalToPhysical(row int) int
	// PhysicalToLogical is the inverse translation.
	PhysicalToLogical(row int) int
}

// Direct is the identity mapping (no in-DRAM scrambling).
type Direct struct{}

// Name implements Scheme.
func (Direct) Name() string { return "direct" }

// LogicalToPhysical implements Scheme.
func (Direct) LogicalToPhysical(row int) int { return row }

// PhysicalToLogical implements Scheme.
func (Direct) PhysicalToLogical(row int) int { return row }

// PairSwap swaps the upper two rows of every naturally aligned group of
// four: logical offsets 0,1,2,3 map to physical 0,1,3,2. This mirrors the
// "±1 swap" style scrambling documented for some vendors. The mapping is an
// involution (its own inverse).
type PairSwap struct{}

// Name implements Scheme.
func (PairSwap) Name() string { return "pairswap" }

// LogicalToPhysical implements Scheme.
func (PairSwap) LogicalToPhysical(row int) int {
	switch row & 3 {
	case 2:
		return row + 1
	case 3:
		return row - 1
	default:
		return row
	}
}

// PhysicalToLogical implements Scheme.
func (p PairSwap) PhysicalToLogical(row int) int { return p.LogicalToPhysical(row) }

// HalfMirror reverses the order of the upper half of every naturally
// aligned block of Block rows, modeling the mirrored row decoders of
// twisted-layout subarrays. Block must be a positive even number; the
// mapping is an involution.
type HalfMirror struct {
	// Block is the mirroring block size in rows.
	Block int
}

// Name implements Scheme.
func (h HalfMirror) Name() string { return fmt.Sprintf("halfmirror-%d", h.Block) }

// LogicalToPhysical implements Scheme.
func (h HalfMirror) LogicalToPhysical(row int) int {
	b := h.Block
	if b < 2 {
		return row
	}
	base := row - row%b
	off := row % b
	if off < b/2 {
		return row
	}
	// Reverse the upper half: off in [b/2, b) maps to (3b/2 - 1) - off,
	// which stays inside [b/2, b).
	return base + (3*b/2 - 1) - off
}

// PhysicalToLogical implements Scheme.
func (h HalfMirror) PhysicalToLogical(row int) int { return h.LogicalToPhysical(row) }

// DefaultFor returns the representative scrambling scheme used for a
// manufacturer's modules in this simulation.
func DefaultFor(m physics.Manufacturer) Scheme {
	switch m {
	case physics.MfrA:
		return HalfMirror{Block: 8}
	case physics.MfrB:
		return PairSwap{}
	default:
		return Direct{}
	}
}

// ErrNoNeighbors is returned by Neighbors when probing found no aggressor
// rows for a victim (e.g. the victim sits at a subarray boundary and only
// one side exists, or probing used too low a hammer count).
var ErrNoNeighbors = errors.New("mapping: no aggressor rows found for victim")

// Prober is the probing capability reverse engineering needs: hammer one
// logical row and report which logical rows in the candidate set experienced
// bit flips. The softmc controller implements this against the simulated
// device; against real hardware it would be a SoftMC program.
type Prober interface {
	// HammerObserveVictims initializes the candidate rows, hammers the
	// given logical row count times (single-sided), and returns the logical
	// addresses among candidates that exhibited bit flips.
	HammerObserveVictims(aggressor int, count int, candidates []int) ([]int, error)
}

// AdjacencyMap records, for each probed victim row, the logical addresses of
// its physically adjacent rows (one or two).
type AdjacencyMap map[int][]int

// Neighbors returns the aggressor pair for a victim, failing if the victim
// was not resolved during probing.
func (a AdjacencyMap) Neighbors(victim int) ([]int, error) {
	ns, ok := a[victim]
	if !ok || len(ns) == 0 {
		return nil, ErrNoNeighbors
	}
	return ns, nil
}

// Probed reports whether the victim was resolved during probing at all.
// This is distinct from having a usable pair: a probed row with a single
// neighbor sits at a subarray boundary — the probe positively established
// that no double-sided pair exists, which callers must not paper over with
// a scheme-derived guess.
func (a AdjacencyMap) Probed(victim int) bool {
	_, ok := a[victim]
	return ok
}

// ReverseEngineer discovers physical adjacency for every row in a window of
// logical addresses, exactly as prior work does on real devices: each row is
// hammered single-sided with an escalating activation count, and every
// victim records the smallest count ("onset") at which each aggressor
// flipped it. Because immediate neighbors receive several times the
// disturbance of distance-two rows, an aggressor whose onset is more than
// twice a victim's minimum onset is classified as non-adjacent. maxCount
// bounds the escalation and must comfortably exceed the module's HCfirst
// divided by the single-sided effectiveness for the strongest tested row.
func ReverseEngineer(p Prober, window []int, maxCount int) (AdjacencyMap, error) {
	if maxCount < 64 {
		return nil, errors.New("mapping: maxCount too small to probe")
	}
	onset := make(map[int]map[int]int, len(window)) // victim -> aggressor -> count
	for count := maxCount / 64; count <= maxCount; count *= 2 {
		for _, agg := range window {
			victims, err := p.HammerObserveVictims(agg, count, window)
			if err != nil {
				return nil, fmt.Errorf("probing aggressor %d at %d: %w", agg, count, err)
			}
			for _, v := range victims {
				if v == agg {
					continue
				}
				if onset[v] == nil {
					onset[v] = make(map[int]int, 4)
				}
				if _, seen := onset[v][agg]; !seen {
					onset[v][agg] = count
				}
			}
		}
	}
	adj := make(AdjacencyMap, len(onset))
	for v, aggs := range onset {
		min := 0
		for _, c := range aggs {
			if min == 0 || c < min {
				min = c
			}
		}
		for agg, c := range aggs {
			if c <= 2*min {
				adj[v] = appendUnique(adj[v], agg)
			}
		}
	}
	return adj, nil
}

func appendUnique(xs []int, x int) []int {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// Verify checks that a scheme is a bijection over [0, rows) and that the
// two directions are mutually inverse. It returns an error naming the first
// violating address.
func Verify(s Scheme, rows int) error {
	seen := make([]bool, rows)
	for l := 0; l < rows; l++ {
		p := s.LogicalToPhysical(l)
		if p < 0 || p >= rows {
			return fmt.Errorf("mapping: %s maps row %d out of range (%d)", s.Name(), l, p)
		}
		if seen[p] {
			return fmt.Errorf("mapping: %s maps two rows to physical %d", s.Name(), p)
		}
		seen[p] = true
		if back := s.PhysicalToLogical(p); back != l {
			return fmt.Errorf("mapping: %s inverse broken at %d -> %d -> %d", s.Name(), l, p, back)
		}
	}
	return nil
}
