package mapping

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/dramstudy/rhvpp/internal/physics"
)

func TestSchemesAreBijections(t *testing.T) {
	schemes := []Scheme{
		Direct{},
		PairSwap{},
		HalfMirror{Block: 8},
		HalfMirror{Block: 16},
		HalfMirror{Block: 2},
	}
	for _, s := range schemes {
		if err := Verify(s, 4096); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestDirect(t *testing.T) {
	d := Direct{}
	for _, r := range []int{0, 1, 17, 4095} {
		if d.LogicalToPhysical(r) != r || d.PhysicalToLogical(r) != r {
			t.Errorf("Direct not identity at %d", r)
		}
	}
}

func TestPairSwap(t *testing.T) {
	p := PairSwap{}
	tests := []struct{ l, want int }{
		{0, 0}, {1, 1}, {2, 3}, {3, 2},
		{4, 4}, {5, 5}, {6, 7}, {7, 6},
	}
	for _, tt := range tests {
		if got := p.LogicalToPhysical(tt.l); got != tt.want {
			t.Errorf("PairSwap(%d) = %d, want %d", tt.l, got, tt.want)
		}
	}
}

func TestHalfMirror(t *testing.T) {
	h := HalfMirror{Block: 8}
	// Lower half identity, upper half reversed: 4,5,6,7 -> 7,6,5,4.
	tests := []struct{ l, want int }{
		{0, 0}, {3, 3}, {4, 7}, {5, 6}, {6, 5}, {7, 4},
		{8, 8}, {12, 15}, {15, 12},
	}
	for _, tt := range tests {
		if got := h.LogicalToPhysical(tt.l); got != tt.want {
			t.Errorf("HalfMirror(%d) = %d, want %d", tt.l, got, tt.want)
		}
	}
}

func TestHalfMirrorDegenerateBlock(t *testing.T) {
	h := HalfMirror{Block: 0}
	if h.LogicalToPhysical(5) != 5 {
		t.Error("degenerate block should behave as identity")
	}
}

func TestDefaultFor(t *testing.T) {
	if DefaultFor(physics.MfrA).Name() != "halfmirror-8" {
		t.Error("MfrA default wrong")
	}
	if DefaultFor(physics.MfrB).Name() != "pairswap" {
		t.Error("MfrB default wrong")
	}
	if DefaultFor(physics.MfrC).Name() != "direct" {
		t.Error("MfrC default wrong")
	}
}

func TestVerifyCatchesBrokenScheme(t *testing.T) {
	if err := Verify(constScheme{}, 8); err == nil {
		t.Error("Verify accepted a non-bijective scheme")
	}
}

type constScheme struct{}

func (constScheme) Name() string                { return "const" }
func (constScheme) LogicalToPhysical(int) int   { return 0 }
func (constScheme) PhysicalToLogical(r int) int { return r }

// fakeProber simulates probing against a known scheme: hammering logical
// aggressor a flips physically adjacent rows once count reaches the flip
// threshold, and distance-two rows at 4.4x that count (mirroring the real
// single-sided vs distance-two disturbance ratio).
type fakeProber struct {
	s         Scheme
	rows      int
	threshold int
}

func (f fakeProber) HammerObserveVictims(agg, count int, candidates []int) ([]int, error) {
	inCand := map[int]bool{}
	for _, c := range candidates {
		inCand[c] = true
	}
	phys := f.s.LogicalToPhysical(agg)
	var victims []int
	add := func(pn int, need int) {
		if pn < 0 || pn >= f.rows || count < need {
			return
		}
		l := f.s.PhysicalToLogical(pn)
		if inCand[l] {
			victims = append(victims, l)
		}
	}
	add(phys-1, f.threshold)
	add(phys+1, f.threshold)
	add(phys-2, f.threshold*44/10)
	add(phys+2, f.threshold*44/10)
	return victims, nil
}

func TestReverseEngineerRecoversAdjacency(t *testing.T) {
	for _, s := range []Scheme{Direct{}, PairSwap{}, HalfMirror{Block: 8}} {
		p := fakeProber{s: s, rows: 64, threshold: 1000}
		window := make([]int, 32)
		for i := range window {
			window[i] = i
		}
		adj, err := ReverseEngineer(p, window, 128000)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// Every victim's discovered aggressors must be physically adjacent,
		// and victims whose both physical neighbors map inside the window
		// must have exactly two.
		inWindow := map[int]bool{}
		for _, w := range window {
			inWindow[w] = true
		}
		for _, v := range window[2 : len(window)-2] {
			ns, err := adj.Neighbors(v)
			if err != nil {
				t.Fatalf("%s: victim %d: %v", s.Name(), v, err)
			}
			pv := s.LogicalToPhysical(v)
			for _, n := range ns {
				pn := s.LogicalToPhysical(n)
				if pn != pv-1 && pn != pv+1 {
					t.Errorf("%s: victim %d: aggressor %d not physically adjacent (%d vs %d)",
						s.Name(), v, n, pn, pv)
				}
			}
			wantTwo := inWindow[s.PhysicalToLogical(pv-1)] && inWindow[s.PhysicalToLogical(pv+1)]
			if wantTwo && len(ns) != 2 {
				t.Errorf("%s: victim %d has %d aggressors, want 2", s.Name(), v, len(ns))
			}
		}
	}
}

func TestReverseEngineerTooWeak(t *testing.T) {
	// A probing budget below every row's flip threshold resolves nothing.
	p := fakeProber{s: Direct{}, rows: 64, threshold: 1 << 30}
	adj, err := ReverseEngineer(p, []int{1, 2, 3}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adj.Neighbors(2); !errors.Is(err, ErrNoNeighbors) {
		t.Errorf("want ErrNoNeighbors, got %v", err)
	}
}

func TestReverseEngineerRejectsTinyBudget(t *testing.T) {
	p := fakeProber{s: Direct{}, rows: 64, threshold: 1}
	if _, err := ReverseEngineer(p, []int{1, 2}, 10); err == nil {
		t.Error("maxCount below the escalation floor accepted")
	}
}

func TestReverseEngineerExcludesDistanceTwo(t *testing.T) {
	p := fakeProber{s: Direct{}, rows: 64, threshold: 1000}
	window := make([]int, 16)
	for i := range window {
		window[i] = 8 + i
	}
	adj, err := ReverseEngineer(p, window, 128000)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := adj.Neighbors(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		if n != 15 && n != 17 {
			t.Errorf("victim 16: distance-two aggressor %d not filtered", n)
		}
	}
	if len(ns) != 2 {
		t.Errorf("victim 16 has %d aggressors, want 2", len(ns))
	}
}

func TestQuickInvolutionSchemes(t *testing.T) {
	f := func(r uint16) bool {
		row := int(r)
		ps := PairSwap{}
		hm := HalfMirror{Block: 16}
		return ps.LogicalToPhysical(ps.LogicalToPhysical(row)) == row &&
			hm.LogicalToPhysical(hm.LogicalToPhysical(row)) == row
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacencyProbedVsNeighbors(t *testing.T) {
	adj := AdjacencyMap{
		10: {9, 11}, // interior pair
		20: {19},    // subarray boundary: one neighbor
	}
	for victim, want := range map[int]bool{10: true, 20: true, 30: false} {
		if got := adj.Probed(victim); got != want {
			t.Errorf("Probed(%d) = %v, want %v", victim, got, want)
		}
	}
	// A probed boundary row keeps its (single) neighbor list; only unprobed
	// rows report ErrNoNeighbors.
	if ns, err := adj.Neighbors(20); err != nil || len(ns) != 1 {
		t.Errorf("Neighbors(20) = %v, %v; want the single probed neighbor", ns, err)
	}
	if _, err := adj.Neighbors(30); err == nil {
		t.Error("Neighbors(30) succeeded for an unprobed victim")
	}
}
