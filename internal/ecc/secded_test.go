package ecc

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, data := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0xAAAAAAAAAAAAAAAA, 0xDEADBEEFCAFEBABE} {
		cw := Encode(data)
		got, res, err := Decode(cw)
		if err != nil {
			t.Fatalf("Decode(Encode(%#x)) error: %v", data, err)
		}
		if res != OK {
			t.Errorf("clean decode result = %v, want OK", res)
		}
		if got != data {
			t.Errorf("round trip = %#x, want %#x", got, data)
		}
	}
}

func TestSingleBitDataErrorsCorrected(t *testing.T) {
	data := uint64(0x0123456789ABCDEF)
	cw := Encode(data)
	for bit := 0; bit < 64; bit++ {
		corrupted := cw
		corrupted.Data ^= 1 << uint(bit)
		got, res, err := Decode(corrupted)
		if err != nil {
			t.Fatalf("bit %d: decode error %v", bit, err)
		}
		if res != Corrected {
			t.Errorf("bit %d: result = %v, want Corrected", bit, res)
		}
		if got != data {
			t.Errorf("bit %d: corrected to %#x, want %#x", bit, got, data)
		}
	}
}

func TestSingleBitCheckErrorsCorrected(t *testing.T) {
	data := uint64(0xFEDCBA9876543210)
	cw := Encode(data)
	for bit := 0; bit < 8; bit++ {
		corrupted := cw
		corrupted.Check ^= 1 << uint(bit)
		got, res, err := Decode(corrupted)
		if err != nil {
			t.Fatalf("check bit %d: decode error %v", bit, err)
		}
		if res != Corrected {
			t.Errorf("check bit %d: result = %v, want Corrected", bit, res)
		}
		if got != data {
			t.Errorf("check bit %d: data changed to %#x", bit, got)
		}
	}
}

func TestDoubleBitErrorsDetected(t *testing.T) {
	data := uint64(0x5555AAAA3333CCCC)
	cw := Encode(data)
	pairs := [][2]int{{0, 1}, {0, 63}, {13, 47}, {31, 32}, {62, 63}}
	for _, p := range pairs {
		corrupted := cw
		corrupted.Data ^= 1<<uint(p[0]) | 1<<uint(p[1])
		_, res, err := Decode(corrupted)
		if err != ErrUncorrectable {
			t.Errorf("flips %v: err = %v, want ErrUncorrectable", p, err)
		}
		if res != Detected {
			t.Errorf("flips %v: result = %v, want Detected", p, res)
		}
	}
}

func TestDoubleBitDataPlusCheckDetected(t *testing.T) {
	data := uint64(0x0F0F0F0F0F0F0F0F)
	cw := Encode(data)
	for _, dataBit := range []int{0, 17, 63} {
		for _, checkBit := range []int{0, 3, 6} {
			corrupted := cw
			corrupted.Data ^= 1 << uint(dataBit)
			corrupted.Check ^= 1 << uint(checkBit)
			_, res, _ := Decode(corrupted)
			if res != Detected {
				t.Errorf("data bit %d + check bit %d: result = %v, want Detected",
					dataBit, checkBit, res)
			}
		}
	}
}

func TestResultString(t *testing.T) {
	tests := []struct {
		r    Result
		want string
	}{
		{OK, "ok"}, {Corrected, "corrected"}, {Detected, "detected-uncorrectable"},
		{Result(0), "ecc.Result(0)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.r), got, tt.want)
		}
	}
}

func TestCorrectWord(t *testing.T) {
	stored := uint64(0xCAFED00DCAFED00D)
	if got, res := CorrectWord(stored, 0); got != stored || res != OK {
		t.Errorf("no-error path = %#x,%v", got, res)
	}
	if got, res := CorrectWord(stored, 1<<42); got != stored || res != Corrected {
		t.Errorf("single-flip path = %#x,%v; want %#x,Corrected", got, res, stored)
	}
	if _, res := CorrectWord(stored, 3); res != Detected {
		t.Errorf("double-flip path result = %v, want Detected", res)
	}
}

func TestAnalyzeRow(t *testing.T) {
	row := make([]byte, 64) // 8 words
	for i := range row {
		row[i] = 0xAA
	}
	we := AnalyzeRow(row, 0xAA)
	if we.WordsWithOneFlip != 0 || we.WordsWithMultiFlips != 0 {
		t.Errorf("clean row analysis = %+v", we)
	}

	row[0] ^= 0x01 // word 0: one flip
	row[9] ^= 0x02 // word 1: one flip
	we = AnalyzeRow(row, 0xAA)
	if we.WordsWithOneFlip != 2 || we.WordsWithMultiFlips != 0 {
		t.Errorf("two single-flip words: %+v", we)
	}

	row[16] ^= 0x81 // word 2: two flips in one byte
	we = AnalyzeRow(row, 0xAA)
	if we.WordsWithOneFlip != 2 || we.WordsWithMultiFlips != 1 {
		t.Errorf("after multi-flip word: %+v", we)
	}
}

func TestAnalyzeRowShortTail(t *testing.T) {
	row := make([]byte, 12) // one full word + 4-byte tail
	row[8] ^= 0x10          // tail word: one flip relative to 0x00
	we := AnalyzeRow(row, 0x00)
	if we.WordsWithOneFlip != 1 || we.WordsWithMultiFlips != 0 {
		t.Errorf("tail analysis = %+v", we)
	}
}

func TestSECDEDCorrectable(t *testing.T) {
	row := make([]byte, 32)
	if !SECDEDCorrectable(row, 0x00) {
		t.Error("clean row reported uncorrectable")
	}
	row[0] = 0x01
	row[8] = 0x80
	if !SECDEDCorrectable(row, 0x00) {
		t.Error("one flip per word reported uncorrectable")
	}
	row[1] = 0x01 // second flip in word 0
	if SECDEDCorrectable(row, 0x00) {
		t.Error("double flip in a word reported correctable")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		got, res, err := Decode(Encode(data))
		return err == nil && res == OK && got == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSingleFlipAlwaysCorrected(t *testing.T) {
	f := func(data uint64, bit uint8) bool {
		cw := Encode(data)
		cw.Data ^= 1 << uint(bit%64)
		got, res, err := Decode(cw)
		return err == nil && res == Corrected && got == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDoubleFlipNeverMiscorrected(t *testing.T) {
	f := func(data uint64, b1, b2 uint8) bool {
		i, j := uint(b1%64), uint(b2%64)
		if i == j {
			return true
		}
		cw := Encode(data)
		cw.Data ^= 1<<i | 1<<j
		_, res, _ := Decode(cw)
		// A double error must never be silently "corrected" into wrong data.
		return res == Detected
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistinctDataDistinctCheck(t *testing.T) {
	// Encode must be deterministic.
	f := func(data uint64) bool {
		return Encode(data) == Encode(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Encode(uint64(i) * 0x9E3779B97F4A7C15)
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	cw := Encode(0xDEADBEEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = Decode(cw)
	}
}
