// Package ecc implements the Hamming single-error-correcting,
// double-error-detecting (SEC-DED) code over 64-bit data words that the paper
// evaluates as a mitigation for VPP-reduction-induced data retention bit
// flips (Obsv. 14: "simple single error correction double error detection
// (SECDED) ECC can correct all erroneous data words").
//
// The code is the standard (72,64) Hsiao-style construction: 7 Hamming check
// bits positioned at power-of-two indices of an extended codeword plus one
// overall parity bit, giving single-bit correction and double-bit detection.
package ecc

import (
	"errors"
	"fmt"
	"math/bits"
)

// Codeword is a 72-bit SEC-DED codeword: 64 data bits plus 8 check bits.
type Codeword struct {
	Data  uint64
	Check uint8
}

// Result classifies the outcome of decoding a codeword.
type Result int

const (
	// OK means the codeword was error-free.
	OK Result = iota + 1
	// Corrected means a single-bit error was detected and corrected.
	Corrected
	// Detected means an uncorrectable (double-bit) error was detected.
	Detected
)

// String returns a human-readable name for the decode result.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("ecc.Result(%d)", int(r))
	}
}

// ErrUncorrectable is returned by Decode when a double-bit error is detected.
var ErrUncorrectable = errors.New("ecc: uncorrectable (double-bit) error")

// hammingBits is the number of Hamming check bits for 64 data bits: the
// extended codeword has 64 + 7 = 71 positions (1-indexed, check bits at
// powers of two) plus one overall parity bit.
const hammingBits = 7

// codewordLen is the number of 1-indexed positions in the extended Hamming
// codeword (data + Hamming check bits, excluding overall parity).
const codewordLen = 64 + hammingBits

// isPowerOfTwo reports whether v is a power of two (v > 0).
func isPowerOfTwo(v int) bool { return v > 0 && v&(v-1) == 0 }

// Encode computes the SEC-DED codeword for a 64-bit data word.
func Encode(data uint64) Codeword {
	// Lay data bits into non-power-of-two positions 1..71.
	var word [codewordLen + 1]byte // 1-indexed
	bit := 0
	for pos := 1; pos <= codewordLen; pos++ {
		if isPowerOfTwo(pos) {
			continue
		}
		if data&(1<<uint(bit)) != 0 {
			word[pos] = 1
		}
		bit++
	}
	// Compute Hamming check bits.
	var check uint8
	for c := 0; c < hammingBits; c++ {
		mask := 1 << uint(c)
		parity := byte(0)
		for pos := 1; pos <= codewordLen; pos++ {
			if pos&mask != 0 && !isPowerOfTwo(pos) {
				parity ^= word[pos]
			}
		}
		if parity != 0 {
			check |= 1 << uint(c)
		}
	}
	// Overall parity across data and Hamming bits (for DED).
	overall := uint(bits.OnesCount64(data)) + uint(bits.OnesCount8(check))
	if overall%2 != 0 {
		check |= 1 << hammingBits
	}
	return Codeword{Data: data, Check: check}
}

// Decode validates cw, corrects a single-bit error in data or check bits if
// present, and reports what happened. For a double-bit error it returns the
// data unchanged along with Detected and ErrUncorrectable.
func Decode(cw Codeword) (data uint64, res Result, err error) {
	// Recompute the Hamming bits for the received data; the syndrome is the
	// XOR against the stored Hamming bits. The overall parity is evaluated
	// over the received codeword as stored (data + all 8 check bits): an odd
	// total weight means an odd number of bit flips occurred.
	expect := Encode(cw.Data)
	syndrome := (cw.Check ^ expect.Check) & (1<<hammingBits - 1)
	parityOdd := (bits.OnesCount64(cw.Data)+bits.OnesCount8(cw.Check))%2 != 0

	switch {
	case syndrome == 0 && !parityOdd:
		return cw.Data, OK, nil
	case syndrome == 0 && parityOdd:
		// The overall parity bit itself flipped; data is intact.
		return cw.Data, Corrected, nil
	case parityOdd:
		// Odd number of flips with a non-zero syndrome: a single-bit error.
		pos := int(syndrome)
		if pos > codewordLen {
			// Syndrome points outside the codeword: treat as uncorrectable.
			return cw.Data, Detected, ErrUncorrectable
		}
		if isPowerOfTwo(pos) {
			// A Hamming check bit flipped; data is intact.
			return cw.Data, Corrected, nil
		}
		// Map codeword position back to a data bit index.
		bit := 0
		for p := 1; p < pos; p++ {
			if !isPowerOfTwo(p) {
				bit++
			}
		}
		return cw.Data ^ (1 << uint(bit)), Corrected, nil
	default:
		// Non-zero syndrome with even parity: double-bit error.
		return cw.Data, Detected, ErrUncorrectable
	}
}

// CorrectWord is a convenience wrapper modelling the rank-level ECC data
// path: it encodes the stored word, applies the given error mask (bit i set
// means data bit i was flipped in memory), and decodes. It returns the word
// the memory controller would deliver and the decode classification.
func CorrectWord(stored uint64, errMask uint64) (delivered uint64, res Result) {
	cw := Encode(stored)
	cw.Data ^= errMask
	delivered, res, _ = Decode(cw)
	return delivered, res
}

// WordErrors summarizes a row's retention bit flips at 64-bit word
// granularity, the unit of the paper's Fig. 11 analysis.
type WordErrors struct {
	// WordsWithOneFlip is the number of 64-bit words with exactly one flip.
	WordsWithOneFlip int
	// WordsWithMultiFlips is the number of words with two or more flips.
	WordsWithMultiFlips int
}

// AnalyzeRow counts, for a row image and its expected fill byte, how many
// 64-bit words contain exactly one vs. more than one flipped bit. Rows whose
// length is not a multiple of 8 have their tail treated as a final short
// word.
func AnalyzeRow(got []byte, want byte) WordErrors {
	var we WordErrors
	for off := 0; off < len(got); off += 8 {
		end := off + 8
		if end > len(got) {
			end = len(got)
		}
		flips := 0
		for _, g := range got[off:end] {
			flips += bits.OnesCount8(g ^ want)
		}
		switch {
		case flips == 1:
			we.WordsWithOneFlip++
		case flips > 1:
			we.WordsWithMultiFlips++
		}
	}
	return we
}

// SECDEDCorrectable reports whether every erroneous word in the row is
// correctable by SEC-DED, i.e. no 64-bit word contains more than one flip
// (the condition Obsv. 14 verifies).
func SECDEDCorrectable(got []byte, want byte) bool {
	return AnalyzeRow(got, want).WordsWithMultiFlips == 0
}
