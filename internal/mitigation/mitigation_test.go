package mitigation

import (
	"math"
	"testing"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/softmc"
)

func TestRecommendVPPArgmaxHCFirst(t *testing.T) {
	vpps := []float64{2.5, 2.1, 1.7}
	hc := []float64{41000, 42100, 39800} // A2-like shape
	ber := []float64{1.24e-3, 1.55e-3, 1.35e-3}
	v, idx, err := RecommendVPP(vpps, hc, ber)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2.1 || idx != 1 {
		t.Errorf("recommended %v (idx %d), want 2.1", v, idx)
	}
}

func TestRecommendVPPTieBreaks(t *testing.T) {
	vpps := []float64{2.5, 2.0, 1.6}
	hc := []float64{10000, 10000, 10000}
	ber := []float64{0.02, 0.01, 0.01}
	// Tie on HCfirst -> lower BER wins; tie on both -> lower voltage.
	v, _, err := RecommendVPP(vpps, hc, ber)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1.6 {
		t.Errorf("recommended %v, want 1.6", v)
	}
}

func TestRecommendVPPErrors(t *testing.T) {
	if _, _, err := RecommendVPP(nil, nil, nil); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, _, err := RecommendVPP([]float64{1}, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched slices accepted")
	}
}

func TestRecommendVPPMatchesTable3(t *testing.T) {
	// Feeding each profile's three published operating points into the
	// policy must recover the published VPPRec.
	for _, p := range physics.Profiles() {
		vpps := []float64{physics.VPPNominal, p.VPPRec, p.VPPMin}
		hc := []float64{p.Nominal.HCFirst, p.AtVPPRec.HCFirst, p.AtVPPMin.HCFirst}
		ber := []float64{p.Nominal.BER, p.AtVPPRec.BER, p.AtVPPMin.BER}
		v, _, err := RecommendVPP(vpps, hc, ber)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-p.VPPRec) > 1e-9 {
			t.Errorf("%s: policy picked %v, Table 3 says %v", p.Name, v, p.VPPRec)
		}
	}
}

func TestPARAFailureProbability(t *testing.T) {
	p := PARA{P: 0.001}
	// (1-0.001)^10000 ~ 4.5e-5
	got := p.FailureProbability(10000)
	if math.Abs(got-4.52e-5) > 1e-5 {
		t.Errorf("failure probability = %v, want ~4.5e-5", got)
	}
	if (PARA{P: 0}).FailureProbability(1000) != 1 {
		t.Error("P=0 should never defend")
	}
	if (PARA{P: 1}).FailureProbability(1000) != 0 {
		t.Error("P=1 should always defend")
	}
}

func TestRequiredPShrinksWithHCFirst(t *testing.T) {
	p1, err := RequiredP(10000, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RequiredP(18600, 1e-6) // +86% HCfirst at reduced VPP (B3-like)
	if err != nil {
		t.Fatal(err)
	}
	if p2 >= p1 {
		t.Errorf("required P did not shrink: %v -> %v", p1, p2)
	}
	// Round trip: with the required P, failure probability hits the target.
	if got := (PARA{P: p1}).FailureProbability(10000); math.Abs(got-1e-6) > 1e-8 {
		t.Errorf("round trip failure probability = %v", got)
	}
	if _, err := RequiredP(0, 0.5); err == nil {
		t.Error("invalid inputs accepted")
	}
}

func TestGrapheneCountersRequired(t *testing.T) {
	// Window of 1.36M activations, threshold HCfirst/4.
	n1 := CountersRequired(1_360_000, 10_000, 4)
	n2 := CountersRequired(1_360_000, 18_600, 4)
	if n1 != 544 {
		t.Errorf("counters at HCfirst=10K: %d, want 544", n1)
	}
	if n2 >= n1 {
		t.Errorf("counter budget did not shrink with higher HCfirst: %d -> %d", n1, n2)
	}
	if CountersRequired(1000, 0, 4) != 0 {
		t.Error("invalid HCfirst should yield 0")
	}
}

func TestGrapheneTracker(t *testing.T) {
	g := NewGraphene(5)
	for i := 0; i < 4; i++ {
		if g.Observe(7) {
			t.Fatalf("triggered after %d observations", i+1)
		}
	}
	if !g.Observe(7) {
		t.Error("did not trigger at threshold")
	}
	g.Reset(7)
	if g.TableSize() != 0 {
		t.Errorf("table size after reset = %d", g.TableSize())
	}
	if g.Observe(7) {
		t.Error("triggered immediately after reset")
	}
}

func testGeometry() physics.Geometry {
	return physics.Geometry{Banks: 2, RowsPerBank: 2048, RowBytes: 512, SubarrayRows: 512}
}

func newECCSetup(t *testing.T, name string) (*ECCController, *dram.Module) {
	t.Helper()
	p, ok := physics.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	mod := dram.NewModule(p, testGeometry(), 21, dram.WithScheme(mapping.Direct{}))
	return NewECCController(softmc.New(mod), 0), mod
}

func TestECCCorrectsRetentionFlips(t *testing.T) {
	// B6 at VPPmin fails at 64ms with one flip per word (Obsv. 14): the
	// SECDED path must deliver clean data.
	e, mod := newECCSetup(t, "B6")
	mod.SetVPP(mod.Profile().VPPMin)
	mod.SetTemperature(physics.RetentionTestTempC)

	correctedTotal := 0
	for row := 100; row < 400; row++ {
		if err := e.InitializeRow(row, 0xAA); err != nil {
			t.Fatal(err)
		}
		if err := e.Controller().WaitMS(64); err != nil {
			t.Fatal(err)
		}
		data, st, err := e.ReadRow(row)
		if err != nil {
			t.Fatal(err)
		}
		if st.Uncorrectable != 0 {
			t.Fatalf("row %d: %d uncorrectable words at the smallest failing window", row, st.Uncorrectable)
		}
		correctedTotal += st.Corrected
		for i, b := range data {
			if b != 0xAA {
				t.Fatalf("row %d byte %d: ECC-delivered data still corrupt (%#x)", row, i, b)
			}
		}
	}
	if correctedTotal == 0 {
		t.Error("no corrections happened; B6 should flip at 64ms/VPPmin")
	}
}

func TestBuildRefreshPlan(t *testing.T) {
	results := []core.RetentionResult{
		{Row: 1, Points: []core.RetentionPoint{{WindowMS: 32, BER: 0}, {WindowMS: 64, BER: 0.001}}},
		{Row: 2, Points: []core.RetentionPoint{{WindowMS: 64, BER: 0}, {WindowMS: 128, BER: 0.001}}},
		{Row: 3, Points: []core.RetentionPoint{{WindowMS: 64, BER: 0}}},
	}
	plan := BuildRefreshPlan(results, 64)
	if !plan.FastRows[1] {
		t.Error("row failing at 64ms not in fast set")
	}
	if plan.FastRows[2] || plan.FastRows[3] {
		t.Error("rows failing only beyond 64ms (or never) put in fast set")
	}
	if math.Abs(plan.Fraction()-1.0/3) > 1e-12 {
		t.Errorf("fraction = %v", plan.Fraction())
	}
	if plan.WindowFor(1) != 32 || plan.WindowFor(3) != 64 {
		t.Error("planned windows wrong")
	}
}

func TestSelectiveRefreshEliminatesFlips(t *testing.T) {
	p, _ := physics.ProfileByName("B6")
	mod := dram.NewModule(p, testGeometry(), 21, dram.WithScheme(mapping.Direct{}))
	mod.SetVPP(p.VPPMin)
	mod.SetTemperature(physics.RetentionTestTempC)
	cfg := core.Quick()
	cfg.RetentionWindowsMS = []float64{16, 32, 64}
	tester := core.NewTester(softmc.New(mod), cfg)

	rows := make([]int, 0, 250)
	for r := 100; r < 350; r++ {
		rows = append(rows, r)
	}
	var results []core.RetentionResult
	for _, r := range rows {
		res, err := tester.RetentionSweep(r, 3) // pattern.CheckerAA
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	plan := BuildRefreshPlan(results, 64)
	if plan.Fraction() == 0 {
		t.Fatal("no fast rows found on B6 at VPPmin; plan would be empty")
	}
	failed, err := Verify(tester, plan, rows, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("%d rows still flip under the selective refresh plan", failed)
	}
	// Without the plan, the same rows at the nominal window do flip.
	noplan := RefreshPlan{NominalWindowMS: 64, TotalRows: len(rows), FastRows: map[int]bool{}}
	failedBaseline, err := Verify(tester, noplan, rows, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	if failedBaseline == 0 {
		t.Error("baseline (uniform 64ms) shows no failures; test lost its bite")
	}
}

func TestFineRefreshPlanBeatsBlanketDoubling(t *testing.T) {
	p, _ := physics.ProfileByName("B6")
	mod := dram.NewModule(p, testGeometry(), 21, dram.WithScheme(mapping.Direct{}))
	mod.SetVPP(p.VPPMin)
	mod.SetTemperature(physics.RetentionTestTempC)
	cfg := core.Quick()
	tester := core.NewTester(softmc.New(mod), cfg)

	rows := make([]int, 0, 200)
	for r := 100; r < 300; r++ {
		rows = append(rows, r)
	}
	plan, err := BuildFineRefreshPlan(tester, rows, 64, 1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.WindowMS) == 0 {
		t.Fatal("no weak rows found; plan is empty")
	}
	// Every assigned window must be meaningfully above the blanket 32ms.
	above32 := 0
	for row, w := range plan.WindowMS {
		if w <= 0 || w > 64 {
			t.Fatalf("row %d assigned window %vms", row, w)
		}
		if w > 32 {
			above32++
		}
	}
	if above32 == 0 {
		t.Error("no row could run slower than the blanket 2x rate")
	}
	// The fine plan must cost less refresh rate than blanket 2x on the
	// same weak rows.
	blanketCost := (float64(len(rows)-len(plan.WindowMS)) + 2*float64(len(plan.WindowMS))) / float64(len(rows))
	if got := plan.RefreshCostVsNominal(); got >= blanketCost {
		t.Errorf("fine plan cost %.4f not below blanket-2x cost %.4f", got, blanketCost)
	}
	failed, err := VerifyFine(tester, plan, rows, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("%d rows still flip under the fine plan", failed)
	}
}
