// Package mitigation implements the operating policies the paper's findings
// enable (§8 "Finding Optimal Wordline Voltage"): the recommended-VPP
// selection behind Table 3's right-most columns, rank-level SECDED ECC
// deployment over the simulated module, selective double-rate refresh for
// the small fraction of retention-weak rows (Obsv. 15), and two
// reference RowHammer defenses (PARA and a Graphene-style counter tracker)
// whose provisioning scales with HCfirst(VPP) for the defense-cost
// ablations.
package mitigation

import (
	"errors"
	"math"
)

// RecommendVPP implements the Table 3 operating-point policy: choose the
// VPP maximizing the module's HCfirst (hardest to hammer), breaking ties by
// the lower BER and then by the lower voltage. The three slices are
// parallel; it returns the chosen voltage and its index.
func RecommendVPP(vpps, hcFirst, ber []float64) (float64, int, error) {
	if len(vpps) == 0 || len(vpps) != len(hcFirst) || len(vpps) != len(ber) {
		return 0, 0, errors.New("mitigation: mismatched sweep slices")
	}
	best := 0
	for i := 1; i < len(vpps); i++ {
		switch {
		case hcFirst[i] > hcFirst[best]:
			best = i
		case hcFirst[i] == hcFirst[best] && ber[i] < ber[best]:
			best = i
		case hcFirst[i] == hcFirst[best] && ber[i] == ber[best] && vpps[i] < vpps[best]:
			best = i
		}
	}
	return vpps[best], best, nil
}

// PARA is the probabilistic adjacent-row-activation defense: each activation
// refreshes the aggressor's neighbors with probability P.
type PARA struct {
	// P is the per-activation refresh probability.
	P float64
}

// FailureProbability returns the probability that an attacker completes
// hcFirst activations of an aggressor without any neighbor refresh, i.e.
// (1-P)^hcFirst — the probability a RowHammer attack defeats PARA.
func (p PARA) FailureProbability(hcFirst float64) float64 {
	if p.P <= 0 {
		return 1
	}
	if p.P >= 1 {
		return 0
	}
	return math.Exp(hcFirst * math.Log(1-p.P))
}

// RequiredP returns the smallest refresh probability that bounds the attack
// success probability by target for a device with the given HCfirst. Larger
// HCfirst (e.g. from reduced VPP) lets PARA run with a smaller P and hence
// lower refresh overhead — the quantitative win of Takeaway 1.
func RequiredP(hcFirst, target float64) (float64, error) {
	if hcFirst <= 0 || target <= 0 || target >= 1 {
		return 0, errors.New("mitigation: invalid PARA sizing inputs")
	}
	return 1 - math.Exp(math.Log(target)/hcFirst), nil
}

// Graphene is a Misra-Gries heavy-hitter tracker sized to catch every row
// whose activation count within a refresh window could reach the hammer
// threshold.
type Graphene struct {
	threshold int
	counts    map[int]int
	spill     int
}

// NewGraphene builds a tracker that flags rows before they reach threshold
// activations.
func NewGraphene(threshold int) *Graphene {
	if threshold < 1 {
		threshold = 1
	}
	return &Graphene{threshold: threshold, counts: make(map[int]int)}
}

// CountersRequired returns the number of Misra-Gries counters needed to
// guarantee detection: activationsPerWindow / threshold (the Graphene sizing
// rule). Higher HCfirst at reduced VPP shrinks the table.
func CountersRequired(activationsPerWindow, hcFirst float64, safetyDiv float64) int {
	if hcFirst <= 0 || safetyDiv <= 0 {
		return 0
	}
	threshold := hcFirst / safetyDiv
	if threshold < 1 {
		threshold = 1
	}
	return int(math.Ceil(activationsPerWindow / threshold))
}

// Observe feeds one activation of a row; it returns true when the row
// crossed the threshold and must have its neighbors refreshed (the caller
// resets tracking for that row via Reset).
func (g *Graphene) Observe(row int) bool {
	g.counts[row]++
	return g.counts[row] >= g.threshold
}

// Reset clears a row's counter after its neighbors were refreshed.
func (g *Graphene) Reset(row int) { delete(g.counts, row) }

// TableSize returns the live counter count (spill-compressed tables would
// bound this; the reference implementation tracks exactly).
func (g *Graphene) TableSize() int { return len(g.counts) }
