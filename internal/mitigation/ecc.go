package mitigation

import (
	"fmt"

	"github.com/dramstudy/rhvpp/internal/ecc"
	"github.com/dramstudy/rhvpp/internal/softmc"
)

// ECCController layers rank-level SECDED ECC over a SoftMC controller: every
// 64-bit data word written through it gets check bits stored in simulated
// ECC devices, and reads decode-and-correct. This is the "employ existing
// SECDED ECC" mitigation of Obsv. 14 as a working data path, not a
// post-hoc analysis.
type ECCController struct {
	ctrl   *softmc.Controller
	bank   int
	checks map[wordAddr]uint8
}

type wordAddr struct {
	row  int
	word int
}

// NewECCController wraps a controller for one bank.
func NewECCController(ctrl *softmc.Controller, bank int) *ECCController {
	return &ECCController{ctrl: ctrl, bank: bank, checks: make(map[wordAddr]uint8)}
}

// InitializeRow fills a row and records check bits for every word.
func (e *ECCController) InitializeRow(row int, fill byte) error {
	if err := e.ctrl.InitializeRow(e.bank, row, fill); err != nil {
		return err
	}
	var w uint64
	for i := 0; i < 8; i++ {
		w = w<<8 | uint64(fill)
	}
	cw := ecc.Encode(w)
	words := e.ctrl.Module().Geometry().RowBytes / 8
	for i := 0; i < words; i++ {
		e.checks[wordAddr{row, i}] = cw.Check
	}
	return nil
}

// ReadStats summarizes one protected row read.
type ReadStats struct {
	Corrected     int // words with a single-bit error, fixed transparently
	Uncorrectable int // words with detected multi-bit errors
}

// ReadRow reads a row through the ECC data path, returning the corrected
// image and the correction statistics.
func (e *ECCController) ReadRow(row int) ([]byte, ReadStats, error) {
	data, err := e.ctrl.ReadRowSafe(e.bank, row)
	if err != nil {
		return nil, ReadStats{}, err
	}
	var st ReadStats
	for i := 0; i+8 <= len(data); i += 8 {
		check, ok := e.checks[wordAddr{row, i / 8}]
		if !ok {
			continue // word never written through the ECC path
		}
		var w uint64
		for b := 0; b < 8; b++ {
			w |= uint64(data[i+b]) << (8 * uint(b))
		}
		decoded, res, _ := ecc.Decode(ecc.Codeword{Data: w, Check: check})
		switch res {
		case ecc.Corrected:
			st.Corrected++
			for b := 0; b < 8; b++ {
				data[i+b] = byte(decoded >> (8 * uint(b)))
			}
		case ecc.Detected:
			st.Uncorrectable++
		}
	}
	return data, st, nil
}

// Controller exposes the underlying controller (for waits, hammering, etc.).
func (e *ECCController) Controller() *softmc.Controller { return e.ctrl }

// String describes the protection level.
func (e *ECCController) String() string {
	return fmt.Sprintf("SECDED(72,64) over bank %d", e.bank)
}
