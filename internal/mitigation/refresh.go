package mitigation

import (
	"sort"

	"github.com/dramstudy/rhvpp/internal/core"
)

// RefreshPlan records which rows need the doubled refresh rate (Obsv. 15:
// only 16.4% / 5.0% of rows contain erroneous words at the smallest failing
// window, so refreshing just those twice as often eliminates all retention
// bit flips at reduced VPP).
type RefreshPlan struct {
	// FastRows refresh every NominalWindowMS/2; all others at the nominal
	// rate.
	FastRows map[int]bool
	// NominalWindowMS is the baseline refresh window (64 ms).
	NominalWindowMS float64
	// TotalRows is the profiled row count (for Fraction).
	TotalRows int
}

// BuildRefreshPlan derives the plan from Alg. 3 retention profiling: any row
// that flips at the nominal window (but not below) gets the doubled rate.
func BuildRefreshPlan(results []core.RetentionResult, nominalWindowMS float64) RefreshPlan {
	plan := RefreshPlan{
		FastRows:        make(map[int]bool),
		NominalWindowMS: nominalWindowMS,
		TotalRows:       len(results),
	}
	for _, r := range results {
		first := r.FirstFailingWindowMS()
		if first > 0 && first <= nominalWindowMS {
			plan.FastRows[r.Row] = true
		}
	}
	return plan
}

// Fraction returns the share of profiled rows needing the doubled rate.
func (p RefreshPlan) Fraction() float64 {
	if p.TotalRows == 0 {
		return 0
	}
	return float64(len(p.FastRows)) / float64(p.TotalRows)
}

// WindowFor returns the refresh window a row must receive under the plan.
func (p RefreshPlan) WindowFor(row int) float64 {
	if p.FastRows[row] {
		return p.NominalWindowMS / 2
	}
	return p.NominalWindowMS
}

// Verify replays the plan against the device: every profiled row is
// initialized, left unrefreshed for exactly its planned window, and read
// back; it returns the number of rows that still flipped (0 means the plan
// eliminates all retention errors).
func Verify(t *core.Tester, plan RefreshPlan, rows []int, fill byte) (failed int, err error) {
	ctrl := t.Controller()
	bank := t.Config().Bank
	for _, row := range rows {
		if err := ctrl.InitializeRow(bank, row, fill); err != nil {
			return failed, err
		}
		if err := ctrl.WaitMS(plan.WindowFor(row)); err != nil {
			return failed, err
		}
		data, err := ctrl.ReadRowSafe(bank, row)
		if err != nil {
			return failed, err
		}
		for _, b := range data {
			if b != fill {
				failed++
				break
			}
		}
	}
	return failed, nil
}

// FineRefreshPlan assigns each retention-weak row an individual refresh
// window just below its measured first-failing window, instead of a blanket
// 2x rate — the finer granularity the paper's footnote 14 leaves to future
// work. Rows absent from the map use the nominal window.
type FineRefreshPlan struct {
	// WindowMS maps weak rows to their assigned refresh windows.
	WindowMS map[int]float64
	// NominalWindowMS is the baseline window for all other rows.
	NominalWindowMS float64
	// Safety derates the measured first-failing window (e.g. 0.8).
	Safety float64
	// TotalRows is the profiled row count.
	TotalRows int
}

// BuildFineRefreshPlan profiles each row's first failing window within
// (nominal/2, nominal] at the given resolution and assigns derated windows.
// Rows failing at or below nominal/2 are rejected with an error (they would
// need more than a 2x rate; none exist in the tested population).
func BuildFineRefreshPlan(t *core.Tester, rows []int, nominalMS, resMS, safety float64) (FineRefreshPlan, error) {
	plan := FineRefreshPlan{
		WindowMS:        make(map[int]float64),
		NominalWindowMS: nominalMS,
		Safety:          safety,
		TotalRows:       len(rows),
	}
	for _, row := range rows {
		first, err := t.RetentionFirstFailMS(row, 0, nominalMS/2, nominalMS, resMS)
		if err != nil {
			return plan, err
		}
		if first == 0 {
			continue // never fails at the nominal window
		}
		plan.WindowMS[row] = first * safety
	}
	return plan, nil
}

// WindowFor returns the refresh window assigned to a row.
func (p FineRefreshPlan) WindowFor(row int) float64 {
	if w, ok := p.WindowMS[row]; ok {
		return w
	}
	return p.NominalWindowMS
}

// RefreshCostVsNominal returns the plan's total refresh-rate cost relative
// to refreshing everything at the nominal window (1.0 = no overhead). Each
// row contributes rate nominal/window.
func (p FineRefreshPlan) RefreshCostVsNominal() float64 {
	if p.TotalRows == 0 {
		return 1
	}
	cost := float64(p.TotalRows - len(p.WindowMS)) // nominal-rate rows
	// Fold in sorted row order: float addition is not associative, so a
	// map-order walk would make the low bits of the cost depend on the run.
	rows := make([]int, 0, len(p.WindowMS))
	for r := range p.WindowMS {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	for _, r := range rows {
		cost += p.NominalWindowMS / p.WindowMS[r]
	}
	return cost / float64(p.TotalRows)
}

// VerifyFine replays the fine plan against the device, returning rows that
// still flipped.
func VerifyFine(t *core.Tester, plan FineRefreshPlan, rows []int, fill byte) (failed int, err error) {
	ctrl := t.Controller()
	bank := t.Config().Bank
	for _, row := range rows {
		if err := ctrl.InitializeRow(bank, row, fill); err != nil {
			return failed, err
		}
		if err := ctrl.WaitMS(plan.WindowFor(row)); err != nil {
			return failed, err
		}
		data, err := ctrl.ReadRowSafe(bank, row)
		if err != nil {
			return failed, err
		}
		for _, b := range data {
			if b != fill {
				failed++
				break
			}
		}
	}
	return failed, nil
}
