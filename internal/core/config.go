// Package core implements the paper's characterization methodology — the
// primary contribution being reproduced. It contains faithful
// implementations of:
//
//   - Alg. 1: the HCfirst / BER test (double-sided RowHammer with a
//     divide-and-conquer hammer-count search);
//   - Alg. 2: the minimum reliable row-activation-latency (tRCDmin) sweep in
//     FPGA command-quantum steps;
//   - Alg. 3: the data-retention sweep over power-of-two refresh windows;
//   - the worst-case data pattern (WCDP) selection procedures of §4.2-§4.4.
//
// The algorithms interact with the device exclusively through the SoftMC
// controller: they issue commands and compare read-back data, never touching
// the ground-truth physics.
package core

import (
	"errors"

	"github.com/dramstudy/rhvpp/internal/physics"
)

// Errors reported by the characterization algorithms.
var (
	// ErrNoAggressors means a victim row has no resolvable aggressor pair
	// (subarray-boundary rows cannot be attacked double-sided).
	ErrNoAggressors = errors.New("core: victim has no double-sided aggressor pair")
	// ErrSweepDiverged means a parameter sweep left its sane bounds.
	ErrSweepDiverged = errors.New("core: sweep diverged outside parameter bounds")
)

// Config holds the methodology parameters of §4. The defaults mirror the
// paper; Quick() shrinks the repetition counts for fast runs.
type Config struct {
	// Iterations is the number of repetitions per measurement; the paper
	// runs each test ten times and keeps the worst case.
	Iterations int
	// WCDPIterations is the repetition count used during worst-case data
	// pattern profiling (kept low: WCDP selection is a pre-pass).
	WCDPIterations int
	// RefHC is the fixed per-aggressor hammer count used for BER
	// measurements (300K, §4.2).
	RefHC int
	// InitialHCStep is the starting step of the HCfirst search (150K).
	InitialHCStep int
	// MinHCStep is the search's terminal granularity (100).
	MinHCStep int
	// TRCDStartNS is the Alg. 2 sweep's starting latency (nominal 13.5 ns).
	TRCDStartNS float64
	// TRCDStepNS is the sweep step (the 1.5 ns FPGA command quantum).
	TRCDStepNS float64
	// TRCDMaxNS bounds the upward sweep.
	TRCDMaxNS float64
	// RetentionWindowsMS is the ladder of refresh windows tested by Alg. 3
	// (16 ms to 16 s in powers of two, §4.4).
	RetentionWindowsMS []float64
	// Bank is the bank under test.
	Bank int
}

// Default returns the paper's parameters.
func Default() Config {
	return Config{
		Iterations:         10,
		WCDPIterations:     1,
		RefHC:              physics.ReferenceHammerCount,
		InitialHCStep:      150_000,
		MinHCStep:          100,
		TRCDStartNS:        physics.TRCDNominalNS,
		TRCDStepNS:         physics.CommandQuantumNS,
		TRCDMaxNS:          45,
		RetentionWindowsMS: []float64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384},
		Bank:               0,
	}
}

// Quick returns a reduced-effort configuration for tests and smoke runs:
// fewer repetitions and a coarser terminal HC granularity, with the same
// sweep structure.
func Quick() Config {
	c := Default()
	c.Iterations = 3
	c.MinHCStep = 2000
	return c
}

// SelectRows returns the tested victim rows: chunks of consecutive rows
// evenly distributed across the bank (the paper tests four chunks of 1K rows
// each, §4.2). Rows are logical addresses.
func SelectRows(geom physics.Geometry, chunks, rowsPerChunk int) []int {
	if chunks < 1 || rowsPerChunk < 1 {
		return nil
	}
	total := geom.RowsPerBank
	rows := make([]int, 0, chunks*rowsPerChunk)
	for c := 0; c < chunks; c++ {
		start := c * total / chunks
		for r := 0; r < rowsPerChunk && start+r < total; r++ {
			rows = append(rows, start+r)
		}
	}
	return rows
}
