package core

import (
	"context"
	"fmt"

	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/softmc"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// Tester runs the characterization algorithms against one module through
// its controller. A Tester is not safe for concurrent use (neither is a
// memory channel).
type Tester struct {
	ctrl *softmc.Controller
	cfg  Config
	adj  mapping.AdjacencyMap // optional: probed adjacency overrides the scheme
	ctx  context.Context      // cancels the characterization loops
}

// NewTester builds a tester for a controller.
func NewTester(ctrl *softmc.Controller, cfg Config) *Tester {
	return &Tester{ctrl: ctrl, cfg: cfg, ctx: context.Background()}
}

// WithContext returns a tester whose characterization loops (HCfirst search,
// tRCD sweep, retention ladder, WCDP profiling) stop with the context's
// error once ctx is canceled. The controller and probed adjacency are
// shared with the receiver; a canceled sweep leaves the device in whatever
// state the last issued command produced, exactly like pulling the plug on
// the FPGA mid-run.
func (t *Tester) WithContext(ctx context.Context) *Tester {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Tester{ctrl: t.ctrl, cfg: t.cfg, adj: t.adj, ctx: ctx}
}

// interrupted reports the context's error, if any. The characterization
// loops call it at iteration boundaries so cancellation never tears a
// single DRAM command apart.
func (t *Tester) interrupted() error { return t.ctx.Err() }

// Controller returns the underlying controller.
func (t *Tester) Controller() *softmc.Controller { return t.ctrl }

// Config returns the methodology parameters in use.
func (t *Tester) Config() Config { return t.cfg }

// UseAdjacency installs a probed adjacency map (from reverse engineering);
// victims it resolves take precedence over the vendor's documented scheme.
func (t *Tester) UseAdjacency(adj mapping.AdjacencyMap) { t.adj = adj }

// AggressorsFor returns the two logical row addresses physically adjacent to
// the victim. Probed adjacency is preferred; the vendor's documented
// scrambling scheme (published by prior reverse-engineering work) is
// consulted only for victims the probe never resolved. A probed victim with
// fewer than two neighbors sits at a subarray boundary: it has no usable
// double-sided pair, and falling back to the scheme there would hammer a
// fabricated pair across the boundary — so it is an ErrNoAggressors error
// instead.
func (t *Tester) AggressorsFor(victim int) (lo, hi int, err error) {
	if t.adj != nil && t.adj.Probed(victim) {
		ns, nerr := t.adj.Neighbors(victim)
		if nerr != nil || len(ns) != 2 {
			return 0, 0, fmt.Errorf("victim %d: probed with %d neighbor(s): %w",
				victim, len(ns), ErrNoAggressors)
		}
		return ns[0], ns[1], nil
	}
	geom := t.ctrl.Module().Geometry()
	sch := t.ctrl.Module().Scheme()
	pv := sch.LogicalToPhysical(victim)
	sub := geom.SubarrayRows
	plo, phi := pv-1, pv+1
	if plo < 0 || phi >= geom.RowsPerBank || plo/sub != pv/sub || phi/sub != pv/sub {
		return 0, 0, fmt.Errorf("victim %d: %w", victim, ErrNoAggressors)
	}
	return sch.PhysicalToLogical(plo), sch.PhysicalToLogical(phi), nil
}

// MeasureBER performs one measure_BER step of Alg. 1: initialize the victim
// with the data pattern and the aggressors with its bitwise inverse, hammer
// double-sided hc times per aggressor, and return the victim's bit error
// rate.
func (t *Tester) MeasureBER(victim int, pat pattern.Kind, hc int) (float64, error) {
	aggLo, aggHi, err := t.AggressorsFor(victim)
	if err != nil {
		return 0, err
	}
	b := t.cfg.Bank
	if err := t.ctrl.InitializeRow(b, victim, pat.Byte()); err != nil {
		return 0, err
	}
	inv := pat.Inverse().Byte()
	if err := t.ctrl.InitializeRow(b, aggLo, inv); err != nil {
		return 0, err
	}
	if err := t.ctrl.InitializeRow(b, aggHi, inv); err != nil {
		return 0, err
	}
	if err := t.ctrl.HammerDoubleSided(b, aggLo, aggHi, hc); err != nil {
		return 0, err
	}
	// Read with the conservative safe latency: on modules whose tRCDmin
	// exceeds the nominal value at reduced VPP, a nominal-timing read would
	// corrupt data and masquerade as RowHammer flips.
	data, err := t.ctrl.ReadRowSafe(b, victim)
	if err != nil {
		return 0, err
	}
	flips := pat.CountMismatch(data)
	return float64(flips) / float64(len(data)*8), nil
}

// measureBEREach repeats MeasureBER n times, handing each per-iteration
// value to f as it is measured — the one iteration/interrupt/error loop
// behind both the raw-series and the streaming-summary forms.
func (t *Tester) measureBEREach(victim int, pat pattern.Kind, hc, n int, f func(float64)) error {
	for i := 0; i < n; i++ {
		if err := t.interrupted(); err != nil {
			return err
		}
		ber, err := t.MeasureBER(victim, pat, hc)
		if err != nil {
			return err
		}
		f(ber)
	}
	return nil
}

// MeasureBERSeries repeats MeasureBER n times and returns every per-
// iteration value. Callers that only need summary statistics should use
// MeasureBERStats, which does not retain the samples.
func (t *Tester) MeasureBERSeries(victim int, pat pattern.Kind, hc, n int) ([]float64, error) {
	out := make([]float64, 0, n)
	if err := t.measureBEREach(victim, pat, hc, n, func(ber float64) {
		out = append(out, ber)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// MeasureBERStats repeats MeasureBER n times and folds every per-iteration
// value into a streaming distribution as it is measured — the §4.6
// coefficient-of-variation consumer's form of MeasureBERSeries, with no
// per-iteration sample retention.
func (t *Tester) MeasureBERStats(victim int, pat pattern.Kind, hc, n int) (stats.Dist, error) {
	var d stats.Dist
	err := t.measureBEREach(victim, pat, hc, n, d.Add)
	return d, err
}

// measureBERMax returns the maximum BER across iterations (the worst case
// the paper records).
func (t *Tester) measureBERMax(victim int, pat pattern.Kind, hc, iters int) (float64, error) {
	max := 0.0
	for i := 0; i < iters; i++ {
		if err := t.interrupted(); err != nil {
			return 0, err
		}
		ber, err := t.MeasureBER(victim, pat, hc)
		if err != nil {
			return 0, err
		}
		if ber > max {
			max = ber
		}
	}
	return max, nil
}

// HCFirstSearch runs the Alg. 1 divide-and-conquer search for the minimum
// hammer count at which the victim exhibits a bit flip, using the given data
// pattern and iteration count.
func (t *Tester) HCFirstSearch(victim int, pat pattern.Kind, iters int) (int, error) {
	return hcFirstSearch(t.ctx, t.cfg, func(hc int) (float64, error) {
		return t.measureBERMax(victim, pat, hc, iters)
	})
}

// verifyWalkSteps bounds the post-bisection repair walk. Under a monotone
// flip response the bisection's final candidate lies within twice the step
// floor of the true boundary (the sum of the steps it never applied), so
// two grains cover the systematic error and the rest absorb measurement
// noise.
const verifyWalkSteps = 4

// hcFirstSearch is the Alg. 1 search over an abstract measurement, so the
// algorithm can be regression-tested against synthetic flip thresholds
// without a simulated module behind it.
//
// The divide-and-conquer loop halves its step after every probe but never
// re-measures the candidate it finally lands on: the last adjustment is
// applied blindly, so the returned count could sit below every hammer count
// that ever flipped (or above every count that stayed clean) — reporting an
// HCfirst at which no flip was observed. The verification pass re-measures
// the candidate and walks it to the lowest flipping count on the MinHCStep
// grid.
func hcFirstSearch(ctx context.Context, cfg Config, measure func(hc int) (float64, error)) (int, error) {
	hc := cfg.RefHC
	step := cfg.InitialHCStep
	for step > cfg.MinHCStep {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		berMax, err := measure(hc)
		if err != nil {
			return 0, err
		}
		if berMax == 0 {
			hc += step
		} else {
			hc -= step
		}
		step /= 2
	}
	grain := cfg.MinHCStep
	if grain < 1 {
		grain = 1
	}
	if hc < 1 {
		hc = 1
	}

	// Verification pass: confirm the candidate actually flips, then refine
	// to the lowest flipping count reachable on the grain grid.
	berMax, err := measure(hc)
	if err != nil {
		return 0, err
	}
	if berMax == 0 {
		// Undershoot: step up to the first count that flips. If nothing in
		// reach flips, the row is stronger than the search resolution; the
		// ceiling estimate is all Alg. 1 can report.
		for i := 0; i < verifyWalkSteps; i++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			berMax, err = measure(hc + grain)
			if err != nil {
				return 0, err
			}
			hc += grain
			if berMax > 0 {
				break
			}
		}
		return hc, nil
	}
	// Overshoot: step down while the next lower grid point still flips.
	for i := 0; i < verifyWalkSteps && hc > grain; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		below, err := measure(hc - grain)
		if err != nil {
			return 0, err
		}
		if below == 0 {
			break
		}
		hc -= grain
	}
	return hc, nil
}

// RowHammerResult is the per-row outcome of the Alg. 1 characterization.
type RowHammerResult struct {
	Row     int
	WCDP    pattern.Kind
	HCFirst int
	// BER is the worst-case bit error rate at the reference hammer count.
	BER float64
}

// SelectWCDP implements the §4.2 worst-case data pattern choice: the pattern
// with the lowest HCfirst, ties broken by the largest BER at the reference
// hammer count.
func (t *Tester) SelectWCDP(victim int) (pattern.Kind, error) {
	best := pattern.RowStripeFF
	bestHC := 0
	bestBER := -1.0
	first := true
	for _, k := range pattern.All() {
		if err := t.interrupted(); err != nil {
			return best, err
		}
		hc, err := t.HCFirstSearch(victim, k, t.cfg.WCDPIterations)
		if err != nil {
			return best, err
		}
		switch {
		case first || hc < bestHC:
			first = false
			best, bestHC = k, hc
			bestBER = -1 // recomputed lazily on ties only
		case hc == bestHC:
			if bestBER < 0 {
				ber, err := t.measureBERMax(victim, best, t.cfg.RefHC, t.cfg.WCDPIterations)
				if err != nil {
					return best, err
				}
				bestBER = ber
			}
			ber, err := t.measureBERMax(victim, k, t.cfg.RefHC, t.cfg.WCDPIterations)
			if err != nil {
				return best, err
			}
			if ber > bestBER {
				best, bestBER = k, ber
			}
		}
	}
	return best, nil
}

// CharacterizeRow runs the full Alg. 1 flow for one victim: WCDP selection
// (if not supplied), worst-case BER at the reference hammer count, and the
// HCfirst search.
func (t *Tester) CharacterizeRow(victim int, wcdp pattern.Kind) (RowHammerResult, error) {
	var err error
	if !wcdp.Valid() {
		wcdp, err = t.SelectWCDP(victim)
		if err != nil {
			return RowHammerResult{}, err
		}
	}
	ber, err := t.measureBERMax(victim, wcdp, t.cfg.RefHC, t.cfg.Iterations)
	if err != nil {
		return RowHammerResult{}, err
	}
	hcf, err := t.HCFirstSearch(victim, wcdp, t.cfg.Iterations)
	if err != nil {
		return RowHammerResult{}, err
	}
	return RowHammerResult{Row: victim, WCDP: wcdp, HCFirst: hcf, BER: ber}, nil
}
