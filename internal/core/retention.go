package core

import (
	"github.com/dramstudy/rhvpp/internal/pattern"
)

// RetentionPoint is one (refresh window, BER) sample of Alg. 3.
type RetentionPoint struct {
	WindowMS float64
	// BER is the worst-case bit error rate across iterations.
	BER float64
}

// RetentionResult is the per-row outcome of the Alg. 3 sweep.
type RetentionResult struct {
	Row    int
	WCDP   pattern.Kind
	Points []RetentionPoint
}

// FirstFailingWindowMS returns the smallest tested refresh window with a
// non-zero BER, or 0 if the row never failed.
func (r RetentionResult) FirstFailingWindowMS() float64 {
	for _, p := range r.Points {
		if p.BER > 0 {
			return p.WindowMS
		}
	}
	return 0
}

// BERAt returns the measured BER at the given window (0 if not tested).
func (r RetentionResult) BERAt(windowMS float64) float64 {
	for _, p := range r.Points {
		if p.WindowMS == windowMS {
			return p.BER
		}
	}
	return 0
}

// measureRetentionBER initializes the row, waits one refresh window with
// refresh disabled, reads the row back, and returns its BER.
func (t *Tester) measureRetentionBER(row int, pat pattern.Kind, windowMS float64) (float64, error) {
	b := t.cfg.Bank
	if err := t.ctrl.InitializeRow(b, row, pat.Byte()); err != nil {
		return 0, err
	}
	if err := t.ctrl.WaitMS(windowMS); err != nil {
		return 0, err
	}
	data, err := t.ctrl.ReadRowSafe(b, row)
	if err != nil {
		return 0, err
	}
	return float64(pat.CountMismatch(data)) / float64(len(data)*8), nil
}

// RetentionSweep implements Alg. 3 for one row: BER across the ladder of
// refresh windows, recording the worst case across iterations at each
// window.
func (t *Tester) RetentionSweep(row int, wcdp pattern.Kind) (RetentionResult, error) {
	var err error
	if !wcdp.Valid() {
		wcdp, err = t.SelectRetentionWCDP(row)
		if err != nil {
			return RetentionResult{}, err
		}
	}
	res := RetentionResult{Row: row, WCDP: wcdp}
	for _, win := range t.cfg.RetentionWindowsMS {
		if err := t.interrupted(); err != nil {
			return RetentionResult{}, err
		}
		worst := 0.0
		for i := 0; i < t.cfg.Iterations; i++ {
			ber, err := t.measureRetentionBER(row, wcdp, win)
			if err != nil {
				return RetentionResult{}, err
			}
			if ber > worst {
				worst = ber
			}
		}
		res.Points = append(res.Points, RetentionPoint{WindowMS: win, BER: worst})
	}
	return res, nil
}

// SelectRetentionWCDP implements the §4.4 pattern choice: the pattern that
// causes a bit flip at the smallest refresh window, ties broken by the
// largest BER at the longest window.
func (t *Tester) SelectRetentionWCDP(row int) (pattern.Kind, error) {
	windows := t.cfg.RetentionWindowsMS
	if len(windows) == 0 {
		return pattern.RowStripeFF, nil
	}
	longest := windows[len(windows)-1]
	best := pattern.RowStripeFF
	bestFirst := 0.0 // 0 = never failed
	bestTieBER := -1.0
	for _, k := range pattern.All() {
		if err := t.interrupted(); err != nil {
			return best, err
		}
		first := 0.0
		for _, win := range windows {
			ber, err := t.measureRetentionBER(row, k, win)
			if err != nil {
				return best, err
			}
			if ber > 0 {
				first = win
				break
			}
		}
		better := false
		switch {
		case first == 0:
			// Never failed: only wins if nothing has failed yet and the
			// tie-break BER at the longest window is larger.
			if bestFirst == 0 {
				ber, err := t.measureRetentionBER(row, k, longest)
				if err != nil {
					return best, err
				}
				if ber > bestTieBER {
					bestTieBER = ber
					better = true
				}
			}
		case bestFirst == 0 || first < bestFirst:
			better = true
			bestTieBER = -1
		case first == bestFirst:
			ber, err := t.measureRetentionBER(row, k, longest)
			if err != nil {
				return best, err
			}
			if ber > bestTieBER {
				bestTieBER = ber
				better = true
			}
		}
		if better {
			best, bestFirst = k, first
		}
	}
	return best, nil
}

// RetentionFirstFailMS binary-searches the smallest refresh window (in
// milliseconds, within [loMS, hiMS]) at which the row exhibits a retention
// bit flip, to a resolution of resMS. The paper tests only power-of-two
// windows and leaves finer granularity to future work (footnote 14); this
// search enables refresh rates between 1x and 2x. It returns 0 if the row
// never fails even at hiMS.
func (t *Tester) RetentionFirstFailMS(row int, pat pattern.Kind, loMS, hiMS, resMS float64) (float64, error) {
	if !pat.Valid() {
		var err error
		pat, err = t.SelectRetentionWCDP(row)
		if err != nil {
			return 0, err
		}
	}
	failsAt := func(win float64) (bool, error) {
		if err := t.interrupted(); err != nil {
			return false, err
		}
		for i := 0; i < t.cfg.Iterations; i++ {
			ber, err := t.measureRetentionBER(row, pat, win)
			if err != nil {
				return false, err
			}
			if ber > 0 {
				return true, nil
			}
		}
		return false, nil
	}
	hiFails, err := failsAt(hiMS)
	if err != nil {
		return 0, err
	}
	if !hiFails {
		return 0, nil
	}
	if loFails, err := failsAt(loMS); err != nil {
		return 0, err
	} else if loFails {
		return loMS, nil
	}
	lo, hi := loMS, hiMS
	for hi-lo > resMS {
		mid := (lo + hi) / 2
		fails, err := failsAt(mid)
		if err != nil {
			return 0, err
		}
		if fails {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
