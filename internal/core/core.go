package core
