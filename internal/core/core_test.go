package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/softmc"
)

func testGeometry() physics.Geometry {
	return physics.Geometry{Banks: 2, RowsPerBank: 2048, RowBytes: 512, SubarrayRows: 512}
}

func newTester(t *testing.T, name string, cfg Config) *Tester {
	t.Helper()
	p, ok := physics.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	mod := dram.NewModule(p, testGeometry(), 11, dram.WithScheme(mapping.Direct{}))
	return NewTester(softmc.New(mod), cfg)
}

func TestSelectRows(t *testing.T) {
	rows := SelectRows(testGeometry(), 4, 8)
	if len(rows) != 32 {
		t.Fatalf("got %d rows, want 32", len(rows))
	}
	if rows[0] != 0 || rows[8] != 512 || rows[16] != 1024 || rows[24] != 1536 {
		t.Errorf("chunk starts wrong: %v", rows[:4])
	}
	if SelectRows(testGeometry(), 0, 8) != nil {
		t.Error("zero chunks should return nil")
	}
}

func TestAggressorsForInterior(t *testing.T) {
	tr := newTester(t, "B0", Quick())
	lo, hi, err := tr.AggressorsFor(100)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 99 || hi != 101 {
		t.Errorf("aggressors = %d,%d, want 99,101 (direct scheme)", lo, hi)
	}
}

func TestAggressorsForBoundary(t *testing.T) {
	tr := newTester(t, "B0", Quick())
	for _, victim := range []int{0, 511, 512, 2047} {
		if _, _, err := tr.AggressorsFor(victim); !errors.Is(err, ErrNoAggressors) {
			t.Errorf("victim %d: err = %v, want ErrNoAggressors", victim, err)
		}
	}
}

func TestAggressorsRespectScheme(t *testing.T) {
	p, _ := physics.ProfileByName("B0")
	mod := dram.NewModule(p, testGeometry(), 11, dram.WithScheme(mapping.PairSwap{}))
	tr := NewTester(softmc.New(mod), Quick())
	// Victim logical 101 -> physical 101; neighbors physical 100, 102 ->
	// logical 100, 103 under PairSwap.
	lo, hi, err := tr.AggressorsFor(101)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 100 || hi != 103 {
		t.Errorf("aggressors = %d,%d, want 100,103", lo, hi)
	}
}

func TestMeasureBERZeroAtLowHC(t *testing.T) {
	tr := newTester(t, "A5", Quick()) // strongest module
	ber, err := tr.MeasureBER(100, pattern.RowStripeFF, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ber != 0 {
		t.Errorf("BER at 1K hammers on A5 = %v, want 0", ber)
	}
}

func TestMeasureBERNonzeroAboveThreshold(t *testing.T) {
	tr := newTester(t, "B0", Quick())
	gt := tr.Controller().Module().Model().GroundTruthHCFirst(0, 100, 2.5)
	ber, err := tr.MeasureBER(100, pattern.RowStripeFF, int(3*gt))
	if err != nil {
		t.Fatal(err)
	}
	if ber == 0 {
		t.Error("BER at 3x ground-truth HCfirst = 0")
	}
}

func TestHCFirstSearchBracketsGroundTruth(t *testing.T) {
	cfg := Quick()
	cfg.MinHCStep = 200
	tr := newTester(t, "B3", cfg)
	mod := tr.Controller().Module().Model()
	for _, victim := range []int{100, 200, 300} {
		wcdp, err := tr.SelectWCDP(victim)
		if err != nil {
			t.Fatal(err)
		}
		hc, err := tr.HCFirstSearch(victim, wcdp, cfg.Iterations)
		if err != nil {
			t.Fatal(err)
		}
		gt := mod.GroundTruthHCFirst(0, victim, 2.5)
		if gt > float64(cfg.RefHC)*2 {
			continue // row too strong to measure in the search range
		}
		if math.Abs(float64(hc)-gt) > 0.2*gt {
			t.Errorf("victim %d: measured HCfirst %d vs ground truth %.0f (>20%% off)", victim, hc, gt)
		}
	}
}

func TestHCFirstIncreasesAtReducedVPPOnB3(t *testing.T) {
	cfg := Quick()
	cfg.MinHCStep = 500
	tr := newTester(t, "B3", cfg)
	mod := tr.Controller().Module()

	measureMin := func(vpp float64) int {
		mod.SetVPP(vpp)
		min := 1 << 30
		for _, victim := range []int{100, 150, 200, 250, 300} {
			hc, err := tr.HCFirstSearch(victim, pattern.RowStripeFF, cfg.Iterations)
			if err != nil {
				t.Fatal(err)
			}
			if hc < min {
				min = hc
			}
		}
		return min
	}
	nom := measureMin(2.5)
	low := measureMin(1.6)
	if low <= nom {
		t.Errorf("B3 min HCfirst at 1.6V (%d) not above nominal (%d)", low, nom)
	}
}

func TestCharacterizeRow(t *testing.T) {
	tr := newTester(t, "B0", Quick())
	res, err := tr.CharacterizeRow(120, 0) // auto-select WCDP
	if err != nil {
		t.Fatal(err)
	}
	if !res.WCDP.Valid() {
		t.Error("WCDP not selected")
	}
	if res.HCFirst <= 0 {
		t.Errorf("HCfirst = %d", res.HCFirst)
	}
	if res.BER <= 0 {
		t.Errorf("BER = %v (B0 flips readily at 300K)", res.BER)
	}
}

func TestWCDPSelectsNearWorstPattern(t *testing.T) {
	// Measurement noise (~4.5% per test) can shadow the smallest pattern
	// deltas (2%), exactly as on real hardware; the selection must still
	// land on a pattern whose effectiveness is close to the true worst.
	cfg := Quick()
	cfg.MinHCStep = 200
	tr := newTester(t, "B0", cfg)
	mod := tr.Controller().Module().Model()
	exact := 0
	victims := []int{100, 140, 180, 220, 260}
	for _, v := range victims {
		got, err := tr.SelectWCDP(v)
		if err != nil {
			t.Fatal(err)
		}
		f := mod.PatternFactor(0, v, got, 2.5)
		if f < 0.90 {
			t.Errorf("victim %d: selected %v with effectiveness %.3f, want >= 0.90", v, got, f)
		}
		if f == 1 {
			exact++
		}
	}
	if exact == 0 {
		t.Error("WCDP selection never found the exact worst pattern across 5 victims")
	}
}

func TestTRCDMinSearchMatchesGroundTruth(t *testing.T) {
	tr := newTester(t, "A3", Quick())
	mod := tr.Controller().Module().Model()
	for _, row := range []int{50, 90} {
		min, err := tr.TRCDMinSearch(row, pattern.CheckerAA, 3)
		if err != nil {
			t.Fatal(err)
		}
		gt := mod.GroundTruthRowTRCDNS(0, row, 2.5)
		// The measured minimum sits on the 1.5ns grid at or just above the
		// requirement.
		if min < gt-1.6 || min > gt+1.6 {
			t.Errorf("row %d: measured tRCDmin %.1f vs ground truth %.2f", row, min, gt)
		}
	}
}

func TestTRCDMinGrowsAtReducedVPP(t *testing.T) {
	tr := newTester(t, "A0", Quick()) // failing module, strong response
	mod := tr.Controller().Module()
	mod.SetVPP(2.5)
	nom, err := tr.TRCDMinSearch(60, pattern.CheckerAA, 3)
	if err != nil {
		t.Fatal(err)
	}
	mod.SetVPP(mod.Profile().VPPMin)
	low, err := tr.TRCDMinSearch(60, pattern.CheckerAA, 3)
	if err != nil {
		t.Fatal(err)
	}
	if low <= nom {
		t.Errorf("tRCDmin at VPPmin (%.1f) not above nominal (%.1f)", low, nom)
	}
	if low <= physics.TRCDNominalNS {
		t.Errorf("A0 at VPPmin should exceed nominal 13.5ns, got %.1f", low)
	}
	if low >= mod.Profile().TRCDFixNS {
		t.Errorf("A0 at VPPmin should stay under the 24ns fix, got %.1f", low)
	}
}

func TestCharacterizeRowTRCD(t *testing.T) {
	tr := newTester(t, "C0", Quick())
	res, err := tr.CharacterizeRowTRCD(70, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WCDP.Valid() || res.MinReliableNS <= 0 {
		t.Errorf("result = %+v", res)
	}
	if res.MinReliableNS >= physics.TRCDNominalNS {
		t.Errorf("C0 (passing module) tRCDmin = %.1f, want < 13.5", res.MinReliableNS)
	}
}

func TestRetentionSweepCleanAtShortWindows(t *testing.T) {
	cfg := Quick()
	tr := newTester(t, "A3", cfg)
	tr.Controller().Module().SetTemperature(physics.RetentionTestTempC)
	res, err := tr.RetentionSweep(80, pattern.CheckerAA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.RetentionWindowsMS) {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.WindowMS <= 32 && p.BER != 0 {
			t.Errorf("BER %v at %vms, want 0", p.BER, p.WindowMS)
		}
	}
}

func TestRetentionSweepFailsAtLongWindows(t *testing.T) {
	cfg := Quick()
	tr := newTester(t, "C0", cfg)
	tr.Controller().Module().SetTemperature(physics.RetentionTestTempC)
	// Aggregate across rows: per-row retention varies.
	totalAt16s := 0.0
	for _, row := range []int{80, 120, 160} {
		res, err := tr.RetentionSweep(row, pattern.CheckerAA)
		if err != nil {
			t.Fatal(err)
		}
		totalAt16s += res.BERAt(16384)
	}
	if totalAt16s == 0 {
		t.Error("no retention failures at 16s on Mfr C rows")
	}
}

func TestRetentionFirstFailingWindow(t *testing.T) {
	r := RetentionResult{Points: []RetentionPoint{
		{WindowMS: 64, BER: 0}, {WindowMS: 128, BER: 0}, {WindowMS: 256, BER: 0.001},
	}}
	if got := r.FirstFailingWindowMS(); got != 256 {
		t.Errorf("first failing window = %v", got)
	}
	clean := RetentionResult{Points: []RetentionPoint{{WindowMS: 64, BER: 0}}}
	if got := clean.FirstFailingWindowMS(); got != 0 {
		t.Errorf("clean row first failing window = %v, want 0", got)
	}
}

func TestSelectRetentionWCDPRuns(t *testing.T) {
	cfg := Quick()
	cfg.RetentionWindowsMS = []float64{64, 1024, 16384} // shorter ladder for the pre-pass
	tr := newTester(t, "C0", cfg)
	tr.Controller().Module().SetTemperature(physics.RetentionTestTempC)
	k, err := tr.SelectRetentionWCDP(90)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Valid() {
		t.Errorf("invalid retention WCDP %v", k)
	}
}

func TestMeasureBERSeriesCV(t *testing.T) {
	// The per-iteration noise should produce a small but nonzero CV on a
	// readily flipping module (§4.6).
	tr := newTester(t, "B0", Quick())
	series, err := tr.MeasureBERSeries(100, pattern.RowStripeFF, 300000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 10 {
		t.Fatalf("series length %d", len(series))
	}
	mean := 0.0
	for _, v := range series {
		mean += v
	}
	mean /= 10
	if mean == 0 {
		t.Fatal("B0 produced no flips at 300K")
	}
	varSum := 0.0
	for _, v := range series {
		varSum += (v - mean) * (v - mean)
	}
	cv := math.Sqrt(varSum/10) / mean
	if cv < 0 || cv > 0.5 {
		t.Errorf("CV = %v, want within (0, 0.5)", cv)
	}
}

// hcSearchConfig returns a small search whose bisection probes are easy to
// trace: starting at RefHC=10000 with steps 8000, 4000, 2000 and a 1000
// grain.
func hcSearchConfig() Config {
	cfg := Quick()
	cfg.RefHC = 10_000
	cfg.InitialHCStep = 8_000
	cfg.MinHCStep = 1_000
	return cfg
}

// thresholdMeasure mocks the controller measurement with a deterministic
// flip threshold: any hammer count at or above the threshold flips.
func thresholdMeasure(threshold int, probes *[]int) func(hc int) (float64, error) {
	return func(hc int) (float64, error) {
		if probes != nil {
			*probes = append(*probes, hc)
		}
		if hc >= threshold {
			return 0.01, nil
		}
		return 0, nil
	}
}

// TestHCFirstSearchVerifiesUndershoot is the regression test for the Alg. 1
// off-by-one: with a flip threshold of 12500 the bisection probes 10000
// (clean), 18000 (flip), 14000 (flip) and blindly lands on 12000 — a count
// at which no flip was ever measured, below every probe that flipped. The
// verification pass must detect the clean candidate and step up to 13000,
// the lowest flipping count on the grain grid.
func TestHCFirstSearchVerifiesUndershoot(t *testing.T) {
	var probes []int
	hc, err := hcFirstSearch(context.Background(), hcSearchConfig(),
		thresholdMeasure(12_500, &probes))
	if err != nil {
		t.Fatal(err)
	}
	if hc != 13_000 {
		t.Errorf("hc = %d, want 13000 (probes: %v)", hc, probes)
	}
	if ber, _ := thresholdMeasure(12_500, nil)(hc); ber == 0 {
		t.Errorf("returned hc %d does not flip", hc)
	}
}

// TestHCFirstSearchRefinesOvershoot: with a threshold of 10500 the bisection
// also lands on 12000, which flips — but 11000 flips too. The verification
// pass must walk down to the minimal flipping grid point.
func TestHCFirstSearchRefinesOvershoot(t *testing.T) {
	hc, err := hcFirstSearch(context.Background(), hcSearchConfig(),
		thresholdMeasure(10_500, nil))
	if err != nil {
		t.Fatal(err)
	}
	if hc != 11_000 {
		t.Errorf("hc = %d, want 11000", hc)
	}
}

// TestHCFirstSearchReturnsFlippingCount sweeps thresholds across the whole
// search range: wherever the bisection lands, the returned count must flip
// whenever the threshold is within the search's reach.
func TestHCFirstSearchReturnsFlippingCount(t *testing.T) {
	cfg := hcSearchConfig()
	for threshold := 3_000; threshold <= 23_000; threshold += 500 {
		measure := thresholdMeasure(threshold, nil)
		hc, err := hcFirstSearch(context.Background(), cfg, measure)
		if err != nil {
			t.Fatal(err)
		}
		ber, _ := measure(hc)
		if ber == 0 {
			t.Errorf("threshold %d: returned hc %d never flips", threshold, hc)
		}
		if hc < threshold-cfg.MinHCStep && ber > 0 {
			t.Errorf("threshold %d: hc %d flips below the threshold?", threshold, hc)
		}
	}
}

// TestHCFirstSearchStrongRowKeepsCeiling: a threshold beyond the search
// range can never be verified; the search reports its ceiling estimate
// rather than looping forever.
func TestHCFirstSearchStrongRowKeepsCeiling(t *testing.T) {
	var probes []int
	hc, err := hcFirstSearch(context.Background(), hcSearchConfig(),
		thresholdMeasure(1_000_000, &probes))
	if err != nil {
		t.Fatal(err)
	}
	if hc < 24_000 || hc > 28_000 {
		t.Errorf("hc = %d, want the search ceiling ~24000..28000 (probes: %v)", hc, probes)
	}
}

func TestHCFirstSearchHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := hcFirstSearch(ctx, hcSearchConfig(), thresholdMeasure(12_500, nil))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestAggressorsForProbedAdjacency pins the probed-map precedence rules: a
// probed pair overrides the scheme, a probed boundary row (fewer than two
// neighbors) is ErrNoAggressors rather than a fabricated scheme pair, and
// only unprobed victims fall back to the vendor scheme.
func TestAggressorsForProbedAdjacency(t *testing.T) {
	tr := newTester(t, "B0", Quick())
	tr.UseAdjacency(mapping.AdjacencyMap{
		100: {42, 77}, // probed interior pair, deliberately unlike ±1
		200: {199},    // probed subarray boundary: single neighbor
		250: {},       // probed but empty: nothing usable either
	})

	lo, hi, err := tr.AggressorsFor(100)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 42 || hi != 77 {
		t.Errorf("probed pair = %d,%d, want 42,77", lo, hi)
	}

	for _, victim := range []int{200, 250} {
		if _, _, err := tr.AggressorsFor(victim); !errors.Is(err, ErrNoAggressors) {
			t.Errorf("probed boundary victim %d: err = %v, want ErrNoAggressors", victim, err)
		}
	}

	// Unprobed victims still resolve through the scheme.
	lo, hi, err = tr.AggressorsFor(300)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 299 || hi != 301 {
		t.Errorf("unprobed fallback = %d,%d, want 299,301", lo, hi)
	}
}

func TestBoundaryVictimErrors(t *testing.T) {
	tr := newTester(t, "B0", Quick())
	if _, err := tr.MeasureBER(0, pattern.RowStripeFF, 1000); !errors.Is(err, ErrNoAggressors) {
		t.Errorf("boundary victim err = %v", err)
	}
	if _, err := tr.CharacterizeRow(512, 0); !errors.Is(err, ErrNoAggressors) {
		t.Errorf("subarray-boundary victim err = %v", err)
	}
}

func TestRetentionFirstFailBinarySearch(t *testing.T) {
	cfg := Quick()
	tr := newTester(t, "B6", cfg) // fails at 64ms at VPPmin
	mod := tr.Controller().Module()
	mod.SetVPP(mod.Profile().VPPMin)
	mod.SetTemperature(physics.RetentionTestTempC)

	// Find a row that fails at 64ms.
	weakRow := -1
	for row := 100; row < 400; row++ {
		ber, err := tr.measureRetentionBER(row, pattern.CheckerAA, 64)
		if err != nil {
			t.Fatal(err)
		}
		if ber > 0 {
			weakRow = row
			break
		}
	}
	if weakRow < 0 {
		t.Fatal("no weak row found on B6 at VPPmin")
	}
	first, err := tr.RetentionFirstFailMS(weakRow, pattern.CheckerAA, 32, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first <= 32 || first > 64 {
		t.Errorf("first failing window = %vms, want in (32, 64]", first)
	}
	// Verify the boundary: the row must hold at first-2ms and fail at first.
	berBelow, err := tr.measureRetentionBER(weakRow, pattern.CheckerAA, first-2)
	if err != nil {
		t.Fatal(err)
	}
	if berBelow > 0 {
		t.Errorf("row already fails %vms below the found boundary", 2.0)
	}
}

func TestRetentionFirstFailCleanRow(t *testing.T) {
	cfg := Quick()
	tr := newTester(t, "A3", cfg) // clean module
	mod := tr.Controller().Module()
	mod.SetTemperature(physics.RetentionTestTempC)
	first, err := tr.RetentionFirstFailMS(100, pattern.CheckerAA, 32, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Errorf("clean row reported first failure at %vms", first)
	}
}
