package core

import (
	"fmt"

	"github.com/dramstudy/rhvpp/internal/pattern"
)

// TRCDResult is the per-row outcome of the Alg. 2 latency sweep.
type TRCDResult struct {
	Row  int
	WCDP pattern.Kind
	// MinReliableNS is the smallest activation latency (on the 1.5 ns
	// command grid) at which no bit flips occur anywhere in the row.
	MinReliableNS float64
}

// rowFaultyAtTRCD checks every column of the row at the currently programmed
// tRCD, re-initializing the row before each column access as Alg. 2 does.
func (t *Tester) rowFaultyAtTRCD(row int, pat pattern.Kind, iters int) (bool, error) {
	b := t.cfg.Bank
	cols := t.ctrl.Module().Geometry().Columns()
	want := pat.Byte()
	for i := 0; i < iters; i++ {
		if err := t.interrupted(); err != nil {
			return false, err
		}
		for col := 0; col < cols; col++ {
			// initialize_row runs with safe nominal timing.
			trcd := t.ctrl.Timing().TRCD
			t.ctrl.ResetTiming()
			if err := t.ctrl.InitializeRow(b, row, want); err != nil {
				return false, err
			}
			if err := t.ctrl.SetTRCD(trcd); err != nil {
				return false, err
			}
			data, err := t.ctrl.ReadColumn(b, row, col)
			if err != nil {
				return false, err
			}
			for _, got := range data {
				if got != want {
					return true, nil
				}
			}
		}
	}
	return false, nil
}

// TRCDMinSearch implements the Alg. 2 sweep: starting from the nominal
// 13.5 ns, the latency moves down while reliable and up while faulty, in
// 1.5 ns steps, until both a faulty and a reliable point have been seen; the
// smallest reliable latency is reported.
func (t *Tester) TRCDMinSearch(row int, pat pattern.Kind, iters int) (float64, error) {
	defer t.ctrl.ResetTiming()
	trcd := t.cfg.TRCDStartNS
	foundFaulty, foundReliable := false, false
	minReliable := 0.0
	for !foundFaulty || !foundReliable {
		if err := t.interrupted(); err != nil {
			return 0, err
		}
		if trcd > t.cfg.TRCDMaxNS {
			return 0, fmt.Errorf("row %d: tRCD sweep exceeded %.1fns: %w", row, t.cfg.TRCDMaxNS, ErrSweepDiverged)
		}
		if trcd < t.cfg.TRCDStepNS {
			// The row is reliable even at the lowest programmable latency;
			// treat the floor as the faulty boundary.
			foundFaulty = true
			trcd = t.cfg.TRCDStepNS
			continue
		}
		if err := t.ctrl.SetTRCD(trcd); err != nil {
			return 0, err
		}
		faulty, err := t.rowFaultyAtTRCD(row, pat, iters)
		if err != nil {
			return 0, err
		}
		if faulty {
			trcd += t.cfg.TRCDStepNS
			foundFaulty = true
		} else {
			minReliable = trcd
			trcd -= t.cfg.TRCDStepNS
			foundReliable = true
		}
	}
	return minReliable, nil
}

// SelectTRCDWCDP implements the §4.3 pattern choice: the pattern with the
// largest observed tRCDmin.
func (t *Tester) SelectTRCDWCDP(row int) (pattern.Kind, error) {
	best := pattern.RowStripeFF
	worstLatency := -1.0
	for _, k := range pattern.All() {
		min, err := t.TRCDMinSearch(row, k, t.cfg.WCDPIterations)
		if err != nil {
			return best, err
		}
		if min > worstLatency {
			best, worstLatency = k, min
		}
	}
	return best, nil
}

// CharacterizeRowTRCD runs the full Alg. 2 flow for one row.
func (t *Tester) CharacterizeRowTRCD(row int, wcdp pattern.Kind) (TRCDResult, error) {
	var err error
	if !wcdp.Valid() {
		wcdp, err = t.SelectTRCDWCDP(row)
		if err != nil {
			return TRCDResult{}, err
		}
	}
	min, err := t.TRCDMinSearch(row, wcdp, t.cfg.Iterations)
	if err != nil {
		return TRCDResult{}, err
	}
	return TRCDResult{Row: row, WCDP: wcdp, MinReliableNS: min}, nil
}
