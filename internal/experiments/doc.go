// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the ablation studies listed in DESIGN.md. Each
// driver assembles a testbed per module, runs the core characterization
// algorithms across the VPP sweep, and returns structured results together
// with render helpers that emit the same rows/series the paper reports
// through a report.Encoder.
//
// # Execution model
//
// Study drivers accept a context.Context for cancellation and sweep the
// selected modules with a bounded worker pool (Options.Jobs). Per-module
// testbeds are fully independent and deterministically seeded, and results
// are merged in catalog order, so output is byte-identical at any worker
// count. The SPICE Monte-Carlo study runs all VPP levels through one
// global run queue with per-level accumulators folded in (level, run)
// order; by default it integrates adaptively with crossings quantized onto
// the fixed 25 ps grid (identical values to fixed-grid integration — see
// internal/spice), so Options.SpiceFixedGrid is an A/B knob, not a
// correctness switch.
//
// # Sharding
//
// Every shared study partitions into deterministic work units (PlanStudy):
// one per-module testbed for the RowHammer / tRCD / retention /
// word-analysis / CV sweeps, one per-VPP-level Monte-Carlo run range for
// the SPICE study. Unit partials serialize to JSON (RunUnits), travel as
// shard artifacts, and fold back in catalog/(level, run) order
// (Assemble*), reproducing the single-process output byte for byte. The
// waveform study is deliberately not sharded: it is one cheap
// deterministic simulation, recomputed locally by whichever process
// renders.
//
// # Aggregation invariants
//
// Aggregation is streaming end to end: per-row and per-run measurements
// fold into internal/stats accumulators (exact means, extremes, quantiles,
// fractions) as they are produced, and per-module partials merge in
// catalog order — never by concatenating retained sample slices. For
// grid-quantized series (SPICE latencies on the integration grid, k/N bit
// error rates) the exact-quantile state is bounded by the grid regardless
// of scale; for the continuous ratio populations (normalized HC/BER, CVs)
// it is bounded by the number of distinct samples — the configured row
// selection — with stats.P2Summary available as the strictly-O(1)
// estimator if those populations ever outgrow that.
//
// Drivers must observe the determinism contracts of docs/DETERMINISM.md
// (sorted map walks, total comparators, internal/rng only, cancellable
// loops); `go run ./cmd/detlint ./...` checks them statically. This
// package defines the shard-protocol catalog (ShardableStudies), so the
// gen-3 plancover analyzer proves here that every study has PlanStudy,
// RunUnits, and Assemble* legs agreeing on the partial type, and the
// optfinger analyzer holds Options to its //detlint:fingerprint v1
// freeze (docs/CONTRACTS.md).
package experiments
