package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/ecc"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// RetentionStudy is the Fig. 10 campaign: retention BER across refresh
// windows and VPP levels, aggregated per manufacturer.
type RetentionStudy struct {
	WindowsMS []float64
	VPP       []float64
	// MeanBER[mfr][vppIdx][winIdx] is the mean BER across the rows of that
	// manufacturer's modules (only modules whose VPPmin allows the level).
	MeanBER map[physics.Manufacturer][][]float64
	// RowBERAt4s[mfr][vppIdx] summarizes the per-row BER population at
	// tREFW = 4s (the Fig. 10b populations) as a streaming accumulator:
	// rows fold in as they are measured instead of being retained.
	RowBERAt4s map[physics.Manufacturer][]stats.Moments
}

// moduleRetention is one module's contribution, measured independently so
// modules can run concurrently and merge in catalog order. All aggregates
// are streaming: memory per module is O(levels x windows), independent of
// the number of tested rows.
type moduleRetention struct {
	mfr   physics.Manufacturer
	sum   [][]float64     // [vpp][window] BER sum across rows
	count [][]int         // [vpp][window] row count
	rows  []stats.Moments // [vpp] per-row BER population at tREFW = 4s
}

// RunRetentionStudy sweeps retention behavior per module at 80C.
func RunRetentionStudy(ctx context.Context, o Options) (RetentionStudy, error) {
	st := RetentionStudy{
		WindowsMS:  o.Config.RetentionWindowsMS,
		VPP:        o.RetentionVPPLevels,
		MeanBER:    make(map[physics.Manufacturer][][]float64),
		RowBERAt4s: make(map[physics.Manufacturer][]stats.Moments),
	}
	idx4s := -1
	for i, w := range st.WindowsMS {
		if w == 4096 {
			idx4s = i
		}
	}

	profs, err := o.profiles()
	if err != nil {
		return st, err
	}
	perModule, err := runPool(ctx, o.jobs(), profs,
		func(ctx context.Context, prof physics.ModuleProfile) (moduleRetention, error) {
			return runModuleRetention(ctx, o, prof, st.VPP, st.WindowsMS, idx4s)
		})
	if err != nil {
		return st, err
	}

	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		a := moduleRetention{mfr: mfr}
		a.sum = make([][]float64, len(st.VPP))
		a.count = make([][]int, len(st.VPP))
		a.rows = make([]stats.Moments, len(st.VPP))
		for i := range a.sum {
			a.sum[i] = make([]float64, len(st.WindowsMS))
			a.count[i] = make([]int, len(st.WindowsMS))
		}
		// Merge in catalog order so Fig. 10b's row populations accumulate
		// identically at any worker count.
		for _, m := range perModule {
			if m.mfr != mfr {
				continue
			}
			for vi := range m.sum {
				for wi := range m.sum[vi] {
					a.sum[vi][wi] += m.sum[vi][wi]
					a.count[vi][wi] += m.count[vi][wi]
				}
				a.rows[vi].Merge(m.rows[vi])
			}
		}
		mean := make([][]float64, len(st.VPP))
		for vi := range a.sum {
			mean[vi] = make([]float64, len(st.WindowsMS))
			for wi := range a.sum[vi] {
				if a.count[vi][wi] > 0 {
					mean[vi][wi] = a.sum[vi][wi] / float64(a.count[vi][wi])
				}
			}
		}
		st.MeanBER[mfr] = mean
		st.RowBERAt4s[mfr] = a.rows
	}
	return st, nil
}

// runModuleRetention measures one module across the allowed VPP levels.
func runModuleRetention(ctx context.Context, o Options, prof physics.ModuleProfile,
	vppLevels, windows []float64, idx4s int) (moduleRetention, error) {
	m := moduleRetention{mfr: prof.Mfr}
	m.sum = make([][]float64, len(vppLevels))
	m.count = make([][]int, len(vppLevels))
	m.rows = make([]stats.Moments, len(vppLevels))
	for i := range m.sum {
		m.sum[i] = make([]float64, len(windows))
		m.count[i] = make([]int, len(windows))
	}

	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	if err := tb.SetTemperature(physics.RetentionTestTempC); err != nil {
		return m, err
	}
	tester := core.NewTester(tb.Controller, o.Config).WithContext(ctx)
	rows := core.SelectRows(o.Geometry, o.Chunks, o.RowsPerChunk)
	for vi, vpp := range vppLevels {
		if vpp < prof.VPPMin-1e-9 {
			continue // module cannot operate here
		}
		if err := tb.SetVPP(vpp); err != nil {
			return m, err
		}
		for _, row := range rows {
			res, err := tester.RetentionSweep(row, pattern.CheckerAA)
			if err != nil {
				return m, fmt.Errorf("module %s row %d at %.1fV: %w", prof.Name, row, vpp, err)
			}
			for wi := range windows {
				m.sum[vi][wi] += res.Points[wi].BER
				m.count[vi][wi]++
			}
			if idx4s >= 0 {
				m.rows[vi].Add(res.Points[idx4s].BER)
			}
		}
	}
	return m, nil
}

// RenderFig10a plots retention BER vs refresh window per manufacturer.
func (st RetentionStudy) RenderFig10a(enc report.Encoder) error {
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		plot := report.LinePlot{
			Title:  fmt.Sprintf("Fig. 10a: retention BER vs refresh window - Mfr. %s", mfr),
			XLabel: "log2(window ms)", YLabel: "BER", Width: 64, Height: 12,
		}
		mean, ok := st.MeanBER[mfr]
		if !ok {
			continue
		}
		for vi, vpp := range st.VPP {
			s := report.Series{Name: fmt.Sprintf("%.1fV", vpp)}
			for wi, win := range st.WindowsMS {
				s.X = append(s.X, log2(win))
				s.Y = append(s.Y, mean[vi][wi])
			}
			plot.Series = append(plot.Series, s)
		}
		if err := enc.Plot(&plot); err != nil {
			return err
		}
	}
	return nil
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}

// RenderFig10b emits the mean per-row BER at tREFW = 4s per VPP level.
func (st RetentionStudy) RenderFig10b(enc report.Encoder) error {
	t := &report.Table{
		Title:   "Fig. 10b: retention BER at tREFW = 4s (mean across rows)",
		Headers: []string{"VPP", "Mfr A", "Mfr B", "Mfr C"},
	}
	for vi, vpp := range st.VPP {
		row := []any{fmt.Sprintf("%.1f", vpp)}
		for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
			rows := st.RowBERAt4s[mfr]
			if vi < len(rows) && rows[vi].N() > 0 {
				row = append(row, fmt.Sprintf("%.3f%%", rows[vi].Mean()*100))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return enc.Table(t)
}

// WordAnalysis is the Fig. 11 study: the word-granularity structure of
// retention failures at VPPmin for the smallest failing windows.
type WordAnalysis struct {
	// Distribution64 and Distribution128 map "number of single-flip words
	// in a row" to the fraction of rows exhibiting it, per manufacturer,
	// at the 64 ms and 128 ms windows (failures new at that window).
	Distribution64  map[physics.Manufacturer]map[int]float64
	Distribution128 map[physics.Manufacturer]map[int]float64
	// SECDEDSafe reports that no word anywhere had more than one flip at
	// its row's smallest failing window (Obsv. 14).
	SECDEDSafe bool
	// FracNeedingFastRefresh64/128 are the row fractions that would need
	// the doubled refresh rate (paper: 16.4% and 5.0%).
	FracNeedingFastRefresh64  float64
	FracNeedingFastRefresh128 float64
	// CleanModules64 counts modules with no failures at 64 ms (paper: 23).
	CleanModules64 int
	TotalModules   int
}

// moduleWords is one module's word-granularity measurement.
type moduleWords struct {
	mfr        physics.Manufacturer
	rowCount   int
	clean64    bool
	clean128   bool
	at64       map[int]int
	at128      map[int]int
	multiFlips bool
}

// RunWordAnalysis performs the Fig. 11 measurement through the controller,
// one pooled worker per module.
func RunWordAnalysis(ctx context.Context, o Options) (WordAnalysis, error) {
	wa := WordAnalysis{
		Distribution64:  map[physics.Manufacturer]map[int]float64{},
		Distribution128: map[physics.Manufacturer]map[int]float64{},
		SECDEDSafe:      true,
	}
	profs, err := o.profiles()
	if err != nil {
		return wa, err
	}
	perModule, err := runPool(ctx, o.jobs(), profs,
		func(ctx context.Context, prof physics.ModuleProfile) (moduleWords, error) {
			return runModuleWords(ctx, o, prof)
		})
	if err != nil {
		return wa, err
	}

	type mfrCount struct {
		rows       int // rows in modules exhibiting 64ms failures
		rows128    int // rows in modules exhibiting (new) 128ms failures
		at64       map[int]int
		at128      map[int]int
		fail64     int
		fail128New int
	}
	counts := map[physics.Manufacturer]*mfrCount{}
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		counts[mfr] = &mfrCount{at64: map[int]int{}, at128: map[int]int{}}
	}
	for _, m := range perModule {
		wa.TotalModules++
		if m.multiFlips {
			wa.SECDEDSafe = false
		}
		if m.clean64 {
			wa.CleanModules64++
		}
		mc := counts[m.mfr]
		// The Fig. 11 population is "rows in modules exhibiting flips at
		// that window": only failing modules enter the denominators.
		if !m.clean64 {
			mc.rows += m.rowCount
			for k, n := range m.at64 {
				mc.at64[k] += n
				mc.fail64 += n
			}
		}
		if !m.clean128 {
			mc.rows128 += m.rowCount
			for k, n := range m.at128 {
				mc.at128[k] += n
				mc.fail128New += n
			}
		}
	}

	rows64, rows128, totalFail64, totalFail128 := 0, 0, 0, 0
	for mfr, mc := range counts {
		wa.Distribution64[mfr] = map[int]float64{}
		wa.Distribution128[mfr] = map[int]float64{}
		for k, n := range mc.at64 {
			wa.Distribution64[mfr][k] = float64(n) / float64(mc.rows)
		}
		for k, n := range mc.at128 {
			wa.Distribution128[mfr][k] = float64(n) / float64(mc.rows128)
		}
		rows64 += mc.rows
		rows128 += mc.rows128
		totalFail64 += mc.fail64
		totalFail128 += mc.fail128New
	}
	if rows64 > 0 {
		wa.FracNeedingFastRefresh64 = float64(totalFail64) / float64(rows64)
	}
	if rows128 > 0 {
		wa.FracNeedingFastRefresh128 = float64(totalFail128) / float64(rows128)
	}
	return wa, nil
}

// runModuleWords measures one module's word-error structure at VPPmin.
func runModuleWords(ctx context.Context, o Options, prof physics.ModuleProfile) (moduleWords, error) {
	m := moduleWords{
		mfr: prof.Mfr, clean64: true, clean128: true,
		at64: map[int]int{}, at128: map[int]int{},
	}
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	if err := tb.SetTemperature(physics.RetentionTestTempC); err != nil {
		return m, err
	}
	if err := tb.SetVPP(prof.VPPMin); err != nil {
		return m, err
	}
	ctrl := tb.Controller
	rows := core.SelectRows(o.Geometry, o.Chunks, o.RowsPerChunk)
	m.rowCount = len(rows)

	const fill = 0xAA
	measure := func(row int, windowMS float64) (ecc.WordErrors, error) {
		if err := ctrl.InitializeRow(0, row, fill); err != nil {
			return ecc.WordErrors{}, err
		}
		if err := ctrl.WaitMS(windowMS); err != nil {
			return ecc.WordErrors{}, err
		}
		data, err := ctrl.ReadRowSafe(0, row)
		if err != nil {
			return ecc.WordErrors{}, err
		}
		return ecc.AnalyzeRow(data, fill), nil
	}

	for _, row := range rows {
		if err := ctx.Err(); err != nil {
			return m, err
		}
		we64, err := measure(row, 64)
		if err != nil {
			return m, err
		}
		if we64.WordsWithMultiFlips > 0 {
			m.multiFlips = true
		}
		if we64.WordsWithOneFlip > 0 {
			m.at64[we64.WordsWithOneFlip]++
			m.clean64 = false
			continue // 128 ms tier counts only rows clean at 64 ms
		}
		we128, err := measure(row, 128)
		if err != nil {
			return m, err
		}
		if we128.WordsWithMultiFlips > 0 {
			m.multiFlips = true
		}
		if we128.WordsWithOneFlip > 0 {
			m.at128[we128.WordsWithOneFlip]++
			m.clean128 = false
		}
	}
	return m, nil
}

// RenderFig11 emits the word-error distributions.
func (wa WordAnalysis) RenderFig11(enc report.Encoder) error {
	render := func(title string, dist map[physics.Manufacturer]map[int]float64) error {
		t := &report.Table{
			Title:   title,
			Headers: []string{"Mfr", "words with one flip", "fraction of rows"},
		}
		for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
			keys := make([]int, 0, len(dist[mfr]))
			for k := range dist[mfr] {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			if len(keys) == 0 {
				t.Add(mfr.String(), "-", "0")
				continue
			}
			for _, k := range keys {
				t.Add(mfr.String(), k, fmt.Sprintf("%.4f", dist[mfr][k]))
			}
		}
		return enc.Table(t)
	}
	if err := render("Fig. 11a: erroneous 64-bit words per row at tREFW = 64ms (VPPmin)", wa.Distribution64); err != nil {
		return err
	}
	if err := render("Fig. 11b: erroneous 64-bit words per row at tREFW = 128ms (VPPmin, rows clean at 64ms)", wa.Distribution128); err != nil {
		return err
	}
	t := &report.Table{Title: "Obsv. 13-15 summary", Headers: []string{"metric", "measured", "paper"}}
	t.Add("modules clean at 64ms", fmt.Sprintf("%d of %d", wa.CleanModules64, wa.TotalModules), "23 of 30")
	t.Add("all failing words SECDED-correctable", wa.SECDEDSafe, "yes")
	t.Add("rows needing 2x refresh @64ms", fmt.Sprintf("%.1f%%", wa.FracNeedingFastRefresh64*100), "16.4%")
	t.Add("rows needing 2x refresh @128ms", fmt.Sprintf("%.1f%%", wa.FracNeedingFastRefresh128*100), "5.0%")
	return enc.Table(t)
}
