package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/ecc"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// RetentionStudy is the Fig. 10 campaign: retention BER across refresh
// windows and VPP levels, aggregated per manufacturer.
type RetentionStudy struct {
	WindowsMS []float64
	VPP       []float64
	// MeanBER[mfr][vppIdx][winIdx] is the mean BER across the rows of that
	// manufacturer's modules (only modules whose VPPmin allows the level).
	MeanBER map[physics.Manufacturer][][]float64
	// RowBERAt4s[mfr][vppIdx] summarizes the per-row BER population at
	// tREFW = 4s (the Fig. 10b populations) as a streaming accumulator:
	// rows fold in as they are measured instead of being retained.
	RowBERAt4s map[physics.Manufacturer][]stats.Moments
}

// ModuleRetention is one module's serializable retention partial, measured
// independently so modules can run concurrently (or on different shards) and
// merge in catalog order. All aggregates are streaming: memory per module is
// O(levels x windows), independent of the number of tested rows.
type ModuleRetention struct {
	// Module is the Table 3 label; Mfr its manufacturer.
	Module string               `json:"module"`
	Mfr    physics.Manufacturer `json:"mfr"`
	// Sum and Count hold the [vpp][window] BER sum / row count across rows.
	Sum   [][]float64 `json:"sum"`
	Count [][]int     `json:"count"`
	// Rows is the [vpp] per-row BER population at tREFW = 4s.
	Rows []stats.Moments `json:"rows"`
}

// retentionGrid derives the study's measurement grid from the options: the
// swept VPP levels, the refresh-window ladder, and the index of the 4 s
// window Fig. 10b reports (-1 when the ladder omits it).
func retentionGrid(o Options) (vpps, windows []float64, idx4s int) {
	idx4s = -1
	for i, w := range o.Config.RetentionWindowsMS {
		if w == 4096 {
			idx4s = i
		}
	}
	return o.RetentionVPPLevels, o.Config.RetentionWindowsMS, idx4s
}

// RunRetentionStudy sweeps retention behavior per module at 80C.
func RunRetentionStudy(ctx context.Context, o Options) (RetentionStudy, error) {
	profs, err := o.profiles()
	if err != nil {
		return RetentionStudy{}, err
	}
	perModule, err := runPool(ctx, o.jobs(), profs,
		func(ctx context.Context, prof physics.ModuleProfile) (ModuleRetention, error) {
			return RunModuleRetention(ctx, o, prof)
		})
	if err != nil {
		return RetentionStudy{}, err
	}
	return assembleRetention(o, perModule)
}

// assembleRetention folds per-module partials — already in catalog order —
// into the per-manufacturer study aggregates. It is the single merge path
// shared by the in-process driver and the shard-artifact assembly, so a
// merged multi-shard campaign reproduces the single-process bytes.
func assembleRetention(o Options, perModule []ModuleRetention) (RetentionStudy, error) {
	st := RetentionStudy{
		WindowsMS:  o.Config.RetentionWindowsMS,
		VPP:        o.RetentionVPPLevels,
		MeanBER:    make(map[physics.Manufacturer][][]float64),
		RowBERAt4s: make(map[physics.Manufacturer][]stats.Moments),
	}
	for _, m := range perModule {
		if len(m.Sum) != len(st.VPP) || len(m.Count) != len(st.VPP) || len(m.Rows) != len(st.VPP) {
			return st, fmt.Errorf("experiments: module %s retention partial has %d levels, campaign has %d",
				m.Module, len(m.Sum), len(st.VPP))
		}
		for vi := range m.Sum {
			if len(m.Sum[vi]) != len(st.WindowsMS) || len(m.Count[vi]) != len(st.WindowsMS) {
				return st, fmt.Errorf("experiments: module %s retention partial has %d windows at level %d, campaign has %d",
					m.Module, len(m.Sum[vi]), vi, len(st.WindowsMS))
			}
		}
	}
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		a := ModuleRetention{Mfr: mfr}
		a.Sum = make([][]float64, len(st.VPP))
		a.Count = make([][]int, len(st.VPP))
		a.Rows = make([]stats.Moments, len(st.VPP))
		for i := range a.Sum {
			a.Sum[i] = make([]float64, len(st.WindowsMS))
			a.Count[i] = make([]int, len(st.WindowsMS))
		}
		// Merge in catalog order so Fig. 10b's row populations accumulate
		// identically at any worker count.
		for _, m := range perModule {
			if m.Mfr != mfr {
				continue
			}
			for vi := range m.Sum {
				for wi := range m.Sum[vi] {
					a.Sum[vi][wi] += m.Sum[vi][wi]
					a.Count[vi][wi] += m.Count[vi][wi]
				}
				a.Rows[vi].Merge(m.Rows[vi])
			}
		}
		mean := make([][]float64, len(st.VPP))
		for vi := range a.Sum {
			mean[vi] = make([]float64, len(st.WindowsMS))
			for wi := range a.Sum[vi] {
				if a.Count[vi][wi] > 0 {
					mean[vi][wi] = a.Sum[vi][wi] / float64(a.Count[vi][wi])
				}
			}
		}
		st.MeanBER[mfr] = mean
		st.RowBERAt4s[mfr] = a.Rows
	}
	return st, nil
}

// RunModuleRetention measures one module across the allowed VPP levels — one
// work unit of the sharded retention study.
func RunModuleRetention(ctx context.Context, o Options, prof physics.ModuleProfile) (ModuleRetention, error) {
	vppLevels, windows, idx4s := retentionGrid(o)
	m := ModuleRetention{Module: prof.Name, Mfr: prof.Mfr}
	m.Sum = make([][]float64, len(vppLevels))
	m.Count = make([][]int, len(vppLevels))
	m.Rows = make([]stats.Moments, len(vppLevels))
	for i := range m.Sum {
		m.Sum[i] = make([]float64, len(windows))
		m.Count[i] = make([]int, len(windows))
	}

	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	if err := tb.SetTemperature(physics.RetentionTestTempC); err != nil {
		return m, err
	}
	tester := core.NewTester(tb.Controller, o.Config).WithContext(ctx)
	rows := core.SelectRows(o.Geometry, o.Chunks, o.RowsPerChunk)
	for vi, vpp := range vppLevels {
		if vpp < prof.VPPMin-1e-9 {
			continue // module cannot operate here
		}
		if err := tb.SetVPP(vpp); err != nil {
			return m, err
		}
		for _, row := range rows {
			res, err := tester.RetentionSweep(row, pattern.CheckerAA)
			if err != nil {
				return m, fmt.Errorf("module %s row %d at %.1fV: %w", prof.Name, row, vpp, err)
			}
			for wi := range windows {
				m.Sum[vi][wi] += res.Points[wi].BER
				m.Count[vi][wi]++
			}
			if idx4s >= 0 {
				m.Rows[vi].Add(res.Points[idx4s].BER)
			}
		}
	}
	return m, nil
}

// RenderFig10a plots retention BER vs refresh window per manufacturer.
func (st RetentionStudy) RenderFig10a(enc report.Encoder) error {
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		plot := report.LinePlot{
			Title:  fmt.Sprintf("Fig. 10a: retention BER vs refresh window - Mfr. %s", mfr),
			XLabel: "log2(window ms)", YLabel: "BER", Width: 64, Height: 12,
		}
		mean, ok := st.MeanBER[mfr]
		if !ok {
			continue
		}
		for vi, vpp := range st.VPP {
			s := report.Series{Name: fmt.Sprintf("%.1fV", vpp)}
			for wi, win := range st.WindowsMS {
				s.X = append(s.X, log2(win))
				s.Y = append(s.Y, mean[vi][wi])
			}
			plot.Series = append(plot.Series, s)
		}
		if err := enc.Plot(&plot); err != nil {
			return err
		}
	}
	return nil
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}

// RenderFig10b emits the mean per-row BER at tREFW = 4s per VPP level.
func (st RetentionStudy) RenderFig10b(enc report.Encoder) error {
	t := &report.Table{
		Title:   "Fig. 10b: retention BER at tREFW = 4s (mean across rows)",
		Headers: []string{"VPP", "Mfr A", "Mfr B", "Mfr C"},
	}
	for vi, vpp := range st.VPP {
		row := []any{fmt.Sprintf("%.1f", vpp)}
		for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
			rows := st.RowBERAt4s[mfr]
			if vi < len(rows) && rows[vi].N() > 0 {
				row = append(row, fmt.Sprintf("%.3f%%", rows[vi].Mean()*100))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return enc.Table(t)
}

// WordAnalysis is the Fig. 11 study: the word-granularity structure of
// retention failures at VPPmin for the smallest failing windows.
type WordAnalysis struct {
	// Distribution64 and Distribution128 map "number of single-flip words
	// in a row" to the fraction of rows exhibiting it, per manufacturer,
	// at the 64 ms and 128 ms windows (failures new at that window).
	Distribution64  map[physics.Manufacturer]map[int]float64
	Distribution128 map[physics.Manufacturer]map[int]float64
	// SECDEDSafe reports that no word anywhere had more than one flip at
	// its row's smallest failing window (Obsv. 14).
	SECDEDSafe bool
	// FracNeedingFastRefresh64/128 are the row fractions that would need
	// the doubled refresh rate (paper: 16.4% and 5.0%).
	FracNeedingFastRefresh64  float64
	FracNeedingFastRefresh128 float64
	// CleanModules64 counts modules with no failures at 64 ms (paper: 23).
	CleanModules64 int
	TotalModules   int
}

// ModuleWords is one module's serializable word-granularity partial — one
// work unit of the sharded Fig. 11 study.
type ModuleWords struct {
	Module     string               `json:"module"`
	Mfr        physics.Manufacturer `json:"mfr"`
	RowCount   int                  `json:"row_count"`
	Clean64    bool                 `json:"clean64"`
	Clean128   bool                 `json:"clean128"`
	At64       map[int]int          `json:"at64"`
	At128      map[int]int          `json:"at128"`
	MultiFlips bool                 `json:"multi_flips"`
}

// RunWordAnalysis performs the Fig. 11 measurement through the controller,
// one pooled worker per module.
func RunWordAnalysis(ctx context.Context, o Options) (WordAnalysis, error) {
	profs, err := o.profiles()
	if err != nil {
		return WordAnalysis{}, err
	}
	perModule, err := runPool(ctx, o.jobs(), profs,
		func(ctx context.Context, prof physics.ModuleProfile) (ModuleWords, error) {
			return RunModuleWords(ctx, o, prof)
		})
	if err != nil {
		return WordAnalysis{}, err
	}
	return assembleWordAnalysis(perModule), nil
}

// assembleWordAnalysis folds per-module partials (in catalog order) into the
// Fig. 11 aggregates — the merge path shared by the in-process driver and the
// shard-artifact assembly.
func assembleWordAnalysis(perModule []ModuleWords) WordAnalysis {
	wa := WordAnalysis{
		Distribution64:  map[physics.Manufacturer]map[int]float64{},
		Distribution128: map[physics.Manufacturer]map[int]float64{},
		SECDEDSafe:      true,
	}

	type mfrCount struct {
		rows       int // rows in modules exhibiting 64ms failures
		rows128    int // rows in modules exhibiting (new) 128ms failures
		at64       map[int]int
		at128      map[int]int
		fail64     int
		fail128New int
	}
	counts := map[physics.Manufacturer]*mfrCount{}
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		counts[mfr] = &mfrCount{at64: map[int]int{}, at128: map[int]int{}}
	}
	for _, m := range perModule {
		wa.TotalModules++
		if m.MultiFlips {
			wa.SECDEDSafe = false
		}
		if m.Clean64 {
			wa.CleanModules64++
		}
		mc := counts[m.Mfr]
		// The Fig. 11 population is "rows in modules exhibiting flips at
		// that window": only failing modules enter the denominators.
		if !m.Clean64 {
			mc.rows += m.RowCount
			for k, n := range m.At64 {
				mc.at64[k] += n
				mc.fail64 += n
			}
		}
		if !m.Clean128 {
			mc.rows128 += m.RowCount
			for k, n := range m.At128 {
				mc.at128[k] += n
				mc.fail128New += n
			}
		}
	}

	rows64, rows128, totalFail64, totalFail128 := 0, 0, 0, 0
	for mfr, mc := range counts {
		wa.Distribution64[mfr] = map[int]float64{}
		wa.Distribution128[mfr] = map[int]float64{}
		for k, n := range mc.at64 {
			wa.Distribution64[mfr][k] = float64(n) / float64(mc.rows)
		}
		for k, n := range mc.at128 {
			wa.Distribution128[mfr][k] = float64(n) / float64(mc.rows128)
		}
		rows64 += mc.rows
		rows128 += mc.rows128
		totalFail64 += mc.fail64
		totalFail128 += mc.fail128New
	}
	if rows64 > 0 {
		wa.FracNeedingFastRefresh64 = float64(totalFail64) / float64(rows64)
	}
	if rows128 > 0 {
		wa.FracNeedingFastRefresh128 = float64(totalFail128) / float64(rows128)
	}
	return wa
}

// RunModuleWords measures one module's word-error structure at VPPmin.
func RunModuleWords(ctx context.Context, o Options, prof physics.ModuleProfile) (ModuleWords, error) {
	m := ModuleWords{
		Module: prof.Name, Mfr: prof.Mfr, Clean64: true, Clean128: true,
		At64: map[int]int{}, At128: map[int]int{},
	}
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	if err := tb.SetTemperature(physics.RetentionTestTempC); err != nil {
		return m, err
	}
	if err := tb.SetVPP(prof.VPPMin); err != nil {
		return m, err
	}
	ctrl := tb.Controller
	rows := core.SelectRows(o.Geometry, o.Chunks, o.RowsPerChunk)
	m.RowCount = len(rows)

	const fill = 0xAA
	measure := func(row int, windowMS float64) (ecc.WordErrors, error) {
		if err := ctrl.InitializeRow(0, row, fill); err != nil {
			return ecc.WordErrors{}, err
		}
		if err := ctrl.WaitMS(windowMS); err != nil {
			return ecc.WordErrors{}, err
		}
		data, err := ctrl.ReadRowSafe(0, row)
		if err != nil {
			return ecc.WordErrors{}, err
		}
		return ecc.AnalyzeRow(data, fill), nil
	}

	for _, row := range rows {
		if err := ctx.Err(); err != nil {
			return m, err
		}
		we64, err := measure(row, 64)
		if err != nil {
			return m, err
		}
		if we64.WordsWithMultiFlips > 0 {
			m.MultiFlips = true
		}
		if we64.WordsWithOneFlip > 0 {
			m.At64[we64.WordsWithOneFlip]++
			m.Clean64 = false
			continue // 128 ms tier counts only rows clean at 64 ms
		}
		we128, err := measure(row, 128)
		if err != nil {
			return m, err
		}
		if we128.WordsWithMultiFlips > 0 {
			m.MultiFlips = true
		}
		if we128.WordsWithOneFlip > 0 {
			m.At128[we128.WordsWithOneFlip]++
			m.Clean128 = false
		}
	}
	return m, nil
}

// RenderFig11 emits the word-error distributions.
func (wa WordAnalysis) RenderFig11(enc report.Encoder) error {
	render := func(title string, dist map[physics.Manufacturer]map[int]float64) error {
		t := &report.Table{
			Title:   title,
			Headers: []string{"Mfr", "words with one flip", "fraction of rows"},
		}
		for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
			keys := make([]int, 0, len(dist[mfr]))
			for k := range dist[mfr] {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			if len(keys) == 0 {
				t.Add(mfr.String(), "-", "0")
				continue
			}
			for _, k := range keys {
				t.Add(mfr.String(), k, fmt.Sprintf("%.4f", dist[mfr][k]))
			}
		}
		return enc.Table(t)
	}
	if err := render("Fig. 11a: erroneous 64-bit words per row at tREFW = 64ms (VPPmin)", wa.Distribution64); err != nil {
		return err
	}
	if err := render("Fig. 11b: erroneous 64-bit words per row at tREFW = 128ms (VPPmin, rows clean at 64ms)", wa.Distribution128); err != nil {
		return err
	}
	t := &report.Table{Title: "Obsv. 13-15 summary", Headers: []string{"metric", "measured", "paper"}}
	t.Add("modules clean at 64ms", fmt.Sprintf("%d of %d", wa.CleanModules64, wa.TotalModules), "23 of 30")
	t.Add("all failing words SECDED-correctable", wa.SECDEDSafe, "yes")
	t.Add("rows needing 2x refresh @64ms", fmt.Sprintf("%.1f%%", wa.FracNeedingFastRefresh64*100), "16.4%")
	t.Add("rows needing 2x refresh @128ms", fmt.Sprintf("%.1f%%", wa.FracNeedingFastRefresh128*100), "5.0%")
	return enc.Table(t)
}
