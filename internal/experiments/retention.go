package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/ecc"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// RetentionStudy is the Fig. 10 campaign: retention BER across refresh
// windows and VPP levels, aggregated per manufacturer.
type RetentionStudy struct {
	WindowsMS []float64
	VPP       []float64
	// MeanBER[mfr][vppIdx][winIdx] is the mean BER across the rows of that
	// manufacturer's modules (only modules whose VPPmin allows the level).
	MeanBER map[physics.Manufacturer][][]float64
	// RowBERAt4s[mfr][vppIdx] holds the per-row BER values at tREFW = 4s
	// (the Fig. 10b populations).
	RowBERAt4s map[physics.Manufacturer][][]float64
}

// RunRetentionStudy sweeps retention behavior per module at 80C.
func RunRetentionStudy(o Options) (RetentionStudy, error) {
	st := RetentionStudy{
		WindowsMS:  o.Config.RetentionWindowsMS,
		VPP:        o.RetentionVPPLevels,
		MeanBER:    make(map[physics.Manufacturer][][]float64),
		RowBERAt4s: make(map[physics.Manufacturer][][]float64),
	}
	idx4s := -1
	for i, w := range st.WindowsMS {
		if w == 4096 {
			idx4s = i
		}
	}

	type accum struct {
		sum   [][]float64
		count [][]int
		rows  [][]float64
	}
	accums := make(map[physics.Manufacturer]*accum)
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		a := &accum{}
		a.sum = make([][]float64, len(st.VPP))
		a.count = make([][]int, len(st.VPP))
		a.rows = make([][]float64, len(st.VPP))
		for i := range a.sum {
			a.sum[i] = make([]float64, len(st.WindowsMS))
			a.count[i] = make([]int, len(st.WindowsMS))
		}
		accums[mfr] = a
	}

	for _, prof := range o.profiles() {
		tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
		if err := tb.SetTemperature(physics.RetentionTestTempC); err != nil {
			return st, err
		}
		tester := core.NewTester(tb.Controller, o.Config)
		rows := core.SelectRows(o.Geometry, o.Chunks, o.RowsPerChunk)
		a := accums[prof.Mfr]
		for vi, vpp := range st.VPP {
			if vpp < prof.VPPMin-1e-9 {
				continue // module cannot operate here
			}
			if err := tb.SetVPP(vpp); err != nil {
				return st, err
			}
			for _, row := range rows {
				res, err := tester.RetentionSweep(row, pattern.CheckerAA)
				if err != nil {
					return st, fmt.Errorf("module %s row %d at %.1fV: %w", prof.Name, row, vpp, err)
				}
				for wi := range st.WindowsMS {
					a.sum[vi][wi] += res.Points[wi].BER
					a.count[vi][wi]++
				}
				if idx4s >= 0 {
					a.rows[vi] = append(a.rows[vi], res.Points[idx4s].BER)
				}
			}
		}
	}

	for mfr, a := range accums {
		mean := make([][]float64, len(st.VPP))
		for vi := range a.sum {
			mean[vi] = make([]float64, len(st.WindowsMS))
			for wi := range a.sum[vi] {
				if a.count[vi][wi] > 0 {
					mean[vi][wi] = a.sum[vi][wi] / float64(a.count[vi][wi])
				}
			}
		}
		st.MeanBER[mfr] = mean
		st.RowBERAt4s[mfr] = a.rows
	}
	return st, nil
}

// RenderFig10a plots retention BER vs refresh window per manufacturer.
func (st RetentionStudy) RenderFig10a(w io.Writer) error {
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		plot := report.LinePlot{
			Title:  fmt.Sprintf("Fig. 10a: retention BER vs refresh window - Mfr. %s", mfr),
			XLabel: "log2(window ms)", YLabel: "BER", Width: 64, Height: 12,
		}
		mean, ok := st.MeanBER[mfr]
		if !ok {
			continue
		}
		for vi, vpp := range st.VPP {
			s := report.Series{Name: fmt.Sprintf("%.1fV", vpp)}
			for wi, win := range st.WindowsMS {
				s.X = append(s.X, log2(win))
				s.Y = append(s.Y, mean[vi][wi])
			}
			plot.Series = append(plot.Series, s)
		}
		if err := plot.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}

// RenderFig10b prints the mean per-row BER at tREFW = 4s per VPP level.
func (st RetentionStudy) RenderFig10b(w io.Writer) error {
	t := &report.Table{
		Title:   "Fig. 10b: retention BER at tREFW = 4s (mean across rows)",
		Headers: []string{"VPP", "Mfr A", "Mfr B", "Mfr C"},
	}
	for vi, vpp := range st.VPP {
		row := []any{fmt.Sprintf("%.1f", vpp)}
		for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
			rows := st.RowBERAt4s[mfr]
			if vi < len(rows) && len(rows[vi]) > 0 {
				row = append(row, fmt.Sprintf("%.3f%%", stats.Mean(rows[vi])*100))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t.Render(w)
}

// WordAnalysis is the Fig. 11 study: the word-granularity structure of
// retention failures at VPPmin for the smallest failing windows.
type WordAnalysis struct {
	// Distribution64 and Distribution128 map "number of single-flip words
	// in a row" to the fraction of rows exhibiting it, per manufacturer,
	// at the 64 ms and 128 ms windows (failures new at that window).
	Distribution64  map[physics.Manufacturer]map[int]float64
	Distribution128 map[physics.Manufacturer]map[int]float64
	// SECDEDSafe reports that no word anywhere had more than one flip at
	// its row's smallest failing window (Obsv. 14).
	SECDEDSafe bool
	// FracNeedingFastRefresh64/128 are the row fractions that would need
	// the doubled refresh rate (paper: 16.4% and 5.0%).
	FracNeedingFastRefresh64  float64
	FracNeedingFastRefresh128 float64
	// CleanModules64 counts modules with no failures at 64 ms (paper: 23).
	CleanModules64 int
	TotalModules   int
}

// RunWordAnalysis performs the Fig. 11 measurement through the controller.
func RunWordAnalysis(o Options) (WordAnalysis, error) {
	wa := WordAnalysis{
		Distribution64:  map[physics.Manufacturer]map[int]float64{},
		Distribution128: map[physics.Manufacturer]map[int]float64{},
		SECDEDSafe:      true,
	}
	type mfrCount struct {
		rows       int // rows in modules exhibiting 64ms failures
		rows128    int // rows in modules exhibiting (new) 128ms failures
		at64       map[int]int
		at128      map[int]int
		fail64     int
		fail128New int
	}
	counts := map[physics.Manufacturer]*mfrCount{}
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		counts[mfr] = &mfrCount{at64: map[int]int{}, at128: map[int]int{}}
	}

	const fill = 0xAA
	for _, prof := range o.profiles() {
		wa.TotalModules++
		tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
		if err := tb.SetTemperature(physics.RetentionTestTempC); err != nil {
			return wa, err
		}
		if err := tb.SetVPP(prof.VPPMin); err != nil {
			return wa, err
		}
		ctrl := tb.Controller
		rows := core.SelectRows(o.Geometry, o.Chunks, o.RowsPerChunk)
		mc := counts[prof.Mfr]
		moduleClean64 := true

		measure := func(row int, windowMS float64) (ecc.WordErrors, error) {
			if err := ctrl.InitializeRow(0, row, fill); err != nil {
				return ecc.WordErrors{}, err
			}
			if err := ctrl.WaitMS(windowMS); err != nil {
				return ecc.WordErrors{}, err
			}
			data, err := ctrl.ReadRowSafe(0, row)
			if err != nil {
				return ecc.WordErrors{}, err
			}
			return ecc.AnalyzeRow(data, fill), nil
		}

		modClean128 := true
		modAt64 := map[int]int{}
		modAt128 := map[int]int{}
		for _, row := range rows {
			we64, err := measure(row, 64)
			if err != nil {
				return wa, err
			}
			if we64.WordsWithMultiFlips > 0 {
				wa.SECDEDSafe = false
			}
			if we64.WordsWithOneFlip > 0 {
				modAt64[we64.WordsWithOneFlip]++
				moduleClean64 = false
				continue // 128 ms tier counts only rows clean at 64 ms
			}
			we128, err := measure(row, 128)
			if err != nil {
				return wa, err
			}
			if we128.WordsWithMultiFlips > 0 {
				wa.SECDEDSafe = false
			}
			if we128.WordsWithOneFlip > 0 {
				modAt128[we128.WordsWithOneFlip]++
				modClean128 = false
			}
		}
		if moduleClean64 {
			wa.CleanModules64++
		}
		// The Fig. 11 population is "rows in modules exhibiting flips at
		// that window": only failing modules enter the denominators.
		if !moduleClean64 {
			mc.rows += len(rows)
			for k, n := range modAt64 {
				mc.at64[k] += n
				mc.fail64 += n
			}
		}
		if !modClean128 {
			mc.rows128 += len(rows)
			for k, n := range modAt128 {
				mc.at128[k] += n
				mc.fail128New += n
			}
		}
	}

	rows64, rows128, totalFail64, totalFail128 := 0, 0, 0, 0
	for mfr, mc := range counts {
		wa.Distribution64[mfr] = map[int]float64{}
		wa.Distribution128[mfr] = map[int]float64{}
		for k, n := range mc.at64 {
			wa.Distribution64[mfr][k] = float64(n) / float64(mc.rows)
		}
		for k, n := range mc.at128 {
			wa.Distribution128[mfr][k] = float64(n) / float64(mc.rows128)
		}
		rows64 += mc.rows
		rows128 += mc.rows128
		totalFail64 += mc.fail64
		totalFail128 += mc.fail128New
	}
	if rows64 > 0 {
		wa.FracNeedingFastRefresh64 = float64(totalFail64) / float64(rows64)
	}
	if rows128 > 0 {
		wa.FracNeedingFastRefresh128 = float64(totalFail128) / float64(rows128)
	}
	return wa, nil
}

// RenderFig11 prints the word-error distributions.
func (wa WordAnalysis) RenderFig11(w io.Writer) error {
	render := func(title string, dist map[physics.Manufacturer]map[int]float64) error {
		t := &report.Table{
			Title:   title,
			Headers: []string{"Mfr", "words with one flip", "fraction of rows"},
		}
		for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
			keys := make([]int, 0, len(dist[mfr]))
			for k := range dist[mfr] {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			if len(keys) == 0 {
				t.Add(mfr.String(), "-", "0")
				continue
			}
			for _, k := range keys {
				t.Add(mfr.String(), k, fmt.Sprintf("%.4f", dist[mfr][k]))
			}
		}
		return t.Render(w)
	}
	if err := render("Fig. 11a: erroneous 64-bit words per row at tREFW = 64ms (VPPmin)", wa.Distribution64); err != nil {
		return err
	}
	if err := render("Fig. 11b: erroneous 64-bit words per row at tREFW = 128ms (VPPmin, rows clean at 64ms)", wa.Distribution128); err != nil {
		return err
	}
	t := &report.Table{Title: "Obsv. 13-15 summary", Headers: []string{"metric", "measured", "paper"}}
	t.Add("modules clean at 64ms", fmt.Sprintf("%d of %d", wa.CleanModules64, wa.TotalModules), "23 of 30")
	t.Add("all failing words SECDED-correctable", wa.SECDEDSafe, "yes")
	t.Add("rows needing 2x refresh @64ms", fmt.Sprintf("%.1f%%", wa.FracNeedingFastRefresh64*100), "16.4%")
	t.Add("rows needing 2x refresh @128ms", fmt.Sprintf("%.1f%%", wa.FracNeedingFastRefresh128*100), "5.0%")
	return t.Render(w)
}
