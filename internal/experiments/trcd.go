package experiments

import (
	"context"
	"fmt"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// TRCDSweep is one module's minimum-reliable-activation-latency study
// (Fig. 7).
type TRCDSweep struct {
	Profile physics.ModuleProfile
	Rows    []int
	VPP     []float64
	// ModuleTRCDMinNS is, per VPP level, the largest per-row tRCDmin (the
	// latency the whole module needs to be reliable).
	ModuleTRCDMinNS []float64
	// FixVerified reports, for modules exceeding the nominal latency,
	// whether the published fix latency (24/15 ns) ran without faults at
	// VPPmin.
	FixVerified bool
}

// ExceedsNominal reports whether the module's tRCDmin surpasses the nominal
// 13.5 ns anywhere in the sweep.
func (s TRCDSweep) ExceedsNominal() bool {
	for _, v := range s.ModuleTRCDMinNS {
		if v > physics.TRCDNominalNS {
			return true
		}
	}
	return false
}

// GuardbandReduction returns 1 - guardband(VPPmin)/guardband(nominal); only
// meaningful for modules that stay under the nominal latency. Because the
// FPGA measures on a 1.5 ns command grid, modules whose latency shift stays
// within one grid step legitimately report zero.
func (s TRCDSweep) GuardbandReduction() float64 {
	if len(s.ModuleTRCDMinNS) == 0 {
		return 0
	}
	gbNom := physics.TRCDNominalNS - s.ModuleTRCDMinNS[0]
	gbMin := physics.TRCDNominalNS - s.ModuleTRCDMinNS[len(s.ModuleTRCDMinNS)-1]
	if gbNom <= 0 {
		return 0
	}
	return 1 - gbMin/gbNom
}

// RunTRCDSweep measures a module's tRCDmin across VPP levels via Alg. 2.
// Rows are a reduced set (latency tests are per-column and costly).
func RunTRCDSweep(ctx context.Context, o Options, prof physics.ModuleProfile) (TRCDSweep, error) {
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	tester := core.NewTester(tb.Controller, o.Config).WithContext(ctx)
	sweep := TRCDSweep{Profile: prof}

	rows := core.SelectRows(o.Geometry, o.Chunks, 2)
	sweep.Rows = rows
	if len(rows) == 0 {
		return sweep, fmt.Errorf("module %s: no rows", prof.Name)
	}

	// tRCD WCDP per row at nominal voltage (§4.3).
	if err := tb.SetVPP(physics.VPPNominal); err != nil {
		return sweep, err
	}
	wcdp := make(map[int]pattern.Kind, len(rows))
	for _, row := range rows {
		k, err := tester.SelectTRCDWCDP(row)
		if err != nil {
			return sweep, fmt.Errorf("module %s row %d tRCD WCDP: %w", prof.Name, row, err)
		}
		wcdp[row] = k
	}

	for _, vpp := range o.vppLevels(prof) {
		if err := ctx.Err(); err != nil {
			return sweep, err
		}
		if err := tb.SetVPP(vpp); err != nil {
			return sweep, err
		}
		worst := 0.0
		for _, row := range rows {
			res, err := tester.CharacterizeRowTRCD(row, wcdp[row])
			if err != nil {
				return sweep, fmt.Errorf("module %s row %d at %.1fV: %w", prof.Name, row, vpp, err)
			}
			if res.MinReliableNS > worst {
				worst = res.MinReliableNS
			}
		}
		sweep.VPP = append(sweep.VPP, vpp)
		sweep.ModuleTRCDMinNS = append(sweep.ModuleTRCDMinNS, worst)
	}

	// Verify the published fix for failing modules: at VPPmin with tRCD set
	// to the fix latency, no row may fault.
	if prof.TRCDFailsNominal {
		if err := tb.SetVPP(prof.VPPMin); err != nil {
			return sweep, err
		}
		if err := tb.Controller.SetTRCD(prof.TRCDFixNS); err != nil {
			return sweep, err
		}
		sweep.FixVerified = true
		for _, row := range rows {
			data, err := readRowAtCurrentTiming(tb, row, wcdp[row].Byte())
			if err != nil {
				return sweep, err
			}
			for _, b := range data {
				if b != wcdp[row].Byte() {
					sweep.FixVerified = false
				}
			}
		}
		tb.Controller.ResetTiming()
	}
	return sweep, nil
}

func readRowAtCurrentTiming(tb *infra.Testbed, row int, fill byte) ([]byte, error) {
	// Initialize with nominal-safe timing, then read with the programmed
	// (possibly overridden) tRCD.
	trcd := tb.Controller.Timing().TRCD
	tb.Controller.ResetTiming()
	if err := tb.Controller.InitializeRow(0, row, fill); err != nil {
		return nil, err
	}
	if err := tb.Controller.SetTRCD(trcd); err != nil {
		return nil, err
	}
	return tb.Controller.ReadRow(0, row)
}

// TRCDStudy is the Fig. 7 / §6.1 campaign.
type TRCDStudy struct {
	Sweeps []TRCDSweep
}

// RunTRCDStudy sweeps every selected module through the bounded worker pool,
// merging sweeps in catalog order.
func RunTRCDStudy(ctx context.Context, o Options) (TRCDStudy, error) {
	profs, err := o.profiles()
	if err != nil {
		return TRCDStudy{}, err
	}
	sweeps, err := runPool(ctx, o.jobs(), profs,
		func(ctx context.Context, prof physics.ModuleProfile) (TRCDSweep, error) {
			return RunTRCDSweep(ctx, o, prof)
		})
	if err != nil {
		return TRCDStudy{}, err
	}
	return TRCDStudy{Sweeps: sweeps}, nil
}

// RenderFig7 emits the per-module tRCDmin curves by manufacturer panel.
func (st TRCDStudy) RenderFig7(enc report.Encoder) error {
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		plot := report.LinePlot{
			Title:  fmt.Sprintf("Fig. 7: minimum reliable tRCD vs VPP - Mfr. %s (nominal = 13.5ns)", mfr),
			XLabel: "VPP (V)", YLabel: "tRCDmin (ns)",
			Width: 64, Height: 12,
		}
		for _, sw := range st.Sweeps {
			if sw.Profile.Mfr != mfr {
				continue
			}
			plot.Series = append(plot.Series, report.Series{
				Name: sw.Profile.Name, X: sw.VPP, Y: sw.ModuleTRCDMinNS,
			})
		}
		if len(plot.Series) == 0 {
			continue
		}
		if err := enc.Plot(&plot); err != nil {
			return err
		}
	}
	return nil
}

// GuardbandSummary is the §6.1 outcome.
type GuardbandSummary struct {
	// PassingModules stayed under nominal tRCD across the sweep.
	PassingModules int
	// FailingModules exceeded nominal tRCD (paper: 5 modules, 64 chips).
	FailingModules int
	FailingChips   int
	// MeanGuardbandReduction across passing modules (paper: 21.9%).
	MeanGuardbandReduction float64
	// AllFixesVerified reports whether every failing module ran cleanly at
	// its published fix latency.
	AllFixesVerified bool
}

// Summary computes the §6.1 aggregates, streaming the passing modules'
// guardband reductions instead of collecting them.
func (st TRCDStudy) Summary() GuardbandSummary {
	var s GuardbandSummary
	s.AllFixesVerified = true
	var reductions stats.Moments
	for _, sw := range st.Sweeps {
		if sw.ExceedsNominal() {
			s.FailingModules++
			s.FailingChips += sw.Profile.Chips()
			if !sw.FixVerified {
				s.AllFixesVerified = false
			}
		} else {
			s.PassingModules++
			reductions.Add(sw.GuardbandReduction())
		}
	}
	s.MeanGuardbandReduction = reductions.Mean()
	return s
}

// Render emits the summary against the paper's numbers.
func (s GuardbandSummary) Render(enc report.Encoder) error {
	t := &report.Table{
		Title:   "Section 6.1: activation latency under reduced VPP (measured vs paper)",
		Headers: []string{"metric", "measured", "paper"},
	}
	t.Add("modules within nominal tRCD", s.PassingModules, "25 of 30")
	t.Add("modules exceeding nominal tRCD", s.FailingModules, "5 (A0-A2, B2, B5)")
	t.Add("chips exceeding nominal tRCD", s.FailingChips, "64")
	t.Add("mean guardband reduction", fmt.Sprintf("%.1f%%", s.MeanGuardbandReduction*100), "21.9%")
	t.Add("24ns/15ns fixes verified", s.AllFixesVerified, "yes")
	return enc.Table(t)
}
