// Sharded campaign execution: every shared study partitions into
// deterministic, independently-executable work units — one per-module testbed
// for the RowHammer / tRCD / retention / word-analysis / CV sweeps, one
// per-VPP-level Monte-Carlo run range for the SPICE study — and each unit's
// partial result serializes to JSON, travels as a shard artifact, and folds
// back in catalog/(level, run) order. Because the single-process drivers
// already compute exactly these partials and merge them in the same order,
// a sharded campaign reproduces the single-process output byte for byte.

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/spice"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// Canonical study names, shared with the root package's Study constants and
// the shard-artifact encoding.
const (
	StudyNameRowHammer    = "rowhammer"
	StudyNameTRCD         = "trcd"
	StudyNameRetention    = "retention"
	StudyNameWaveforms    = "spice-waveforms"
	StudyNameSpiceMC      = "spice-mc"
	StudyNameWordAnalysis = "word-analysis"
	StudyNameCV           = "cv"
)

// ShardableStudies lists the studies that partition into work units, in the
// fixed order sharding plans enumerate them. The SPICE waveform study is
// deliberately absent: it is a single cheap deterministic simulation with no
// per-module or per-run structure, so every process (including the merge
// renderer) computes it locally.
func ShardableStudies() []string {
	return []string{
		StudyNameRowHammer,
		StudyNameTRCD,
		StudyNameRetention,
		StudyNameWordAnalysis,
		StudyNameCV,
		StudyNameSpiceMC,
	}
}

// UnitRef names one work unit of one study.
type UnitRef struct {
	// Study is the canonical study name.
	Study string `json:"study"`
	// Key identifies the unit: the module label for per-module studies, the
	// formatted VPP level ("2.5") for the SPICE Monte-Carlo.
	Key string `json:"key"`
	// Index is the unit's position in the study's catalog/level order.
	Index int `json:"index"`
}

// PlanStudy returns the study's work units in deterministic catalog/level
// order for the given (validated) options.
func PlanStudy(o Options, study string) ([]UnitRef, error) {
	switch study {
	case StudyNameRowHammer, StudyNameTRCD, StudyNameRetention, StudyNameWordAnalysis, StudyNameCV:
		profs, err := o.profiles()
		if err != nil {
			return nil, err
		}
		units := make([]UnitRef, len(profs))
		for i, p := range profs {
			units[i] = UnitRef{Study: study, Key: p.Name, Index: i}
		}
		return units, nil
	case StudyNameSpiceMC:
		units := make([]UnitRef, len(spiceSweepVPPs))
		for i, vpp := range spiceSweepVPPs {
			units[i] = UnitRef{Study: study, Key: mcLevelKey(vpp), Index: i}
		}
		return units, nil
	}
	return nil, fmt.Errorf("experiments: study %q is not shardable (shardable: %s)",
		study, strings.Join(ShardableStudies(), " "))
}

// mcLevelKey formats a Monte-Carlo VPP level as a unit key.
func mcLevelKey(vpp float64) string { return fmt.Sprintf("%.1f", vpp) }

// mcConfig is the Monte-Carlo configuration the campaign uses for the
// Fig. 8b/9b study (±5% component variation, §4.5).
func mcConfig(o Options) spice.MCConfig {
	return spice.MCConfig{
		Runs:       o.SpiceMCRuns,
		Seed:       o.Seed,
		Variation:  0.05,
		Jobs:       o.jobs(),
		FixedGrid:  o.SpiceFixedGrid,
		LTETolV:    o.SpiceLTETolV,
		BatchWidth: o.SpiceBatchWidth,
	}
}

// moduleSweepWire is the serialized form of ModuleSweep. The profile travels
// by name and is re-resolved from the static catalog on decode.
type moduleSweepWire struct {
	Module          string               `json:"module"`
	Rows            []int                `json:"rows"`
	WCDP            map[int]pattern.Kind `json:"wcdp"`
	Points          []VPPPoint           `json:"points"`
	RowNormHCAtMin  stats.Dist           `json:"row_norm_hc_at_min"`
	RowNormBERAtMin stats.Dist           `json:"row_norm_ber_at_min"`
}

func sweepToWire(s ModuleSweep) moduleSweepWire {
	return moduleSweepWire{
		Module: s.Profile.Name, Rows: s.Rows, WCDP: s.WCDP, Points: s.Points,
		RowNormHCAtMin: s.RowNormHCAtMin, RowNormBERAtMin: s.RowNormBERAtMin,
	}
}

func sweepFromWire(w moduleSweepWire) (ModuleSweep, error) {
	prof, ok := physics.ProfileByName(w.Module)
	if !ok {
		return ModuleSweep{}, fmt.Errorf("experiments: sweep partial names unknown module %q", w.Module)
	}
	return ModuleSweep{
		Profile: prof, Rows: w.Rows, WCDP: w.WCDP, Points: w.Points,
		RowNormHCAtMin: w.RowNormHCAtMin, RowNormBERAtMin: w.RowNormBERAtMin,
	}, nil
}

// trcdSweepWire is the serialized form of TRCDSweep.
type trcdSweepWire struct {
	Module          string    `json:"module"`
	Rows            []int     `json:"rows"`
	VPP             []float64 `json:"vpp"`
	ModuleTRCDMinNS []float64 `json:"module_trcd_min_ns"`
	FixVerified     bool      `json:"fix_verified"`
}

func trcdToWire(s TRCDSweep) trcdSweepWire {
	return trcdSweepWire{
		Module: s.Profile.Name, Rows: s.Rows, VPP: s.VPP,
		ModuleTRCDMinNS: s.ModuleTRCDMinNS, FixVerified: s.FixVerified,
	}
}

func trcdFromWire(w trcdSweepWire) (TRCDSweep, error) {
	prof, ok := physics.ProfileByName(w.Module)
	if !ok {
		return TRCDSweep{}, fmt.Errorf("experiments: tRCD partial names unknown module %q", w.Module)
	}
	return TRCDSweep{
		Profile: prof, Rows: w.Rows, VPP: w.VPP,
		ModuleTRCDMinNS: w.ModuleTRCDMinNS, FixVerified: w.FixVerified,
	}, nil
}

// validateUnits checks that every requested unit belongs to the study's plan
// under these options, returning the plan for reuse.
func validateUnits(o Options, study string, units []UnitRef) ([]UnitRef, error) {
	plan, err := PlanStudy(o, study)
	if err != nil {
		return nil, err
	}
	byKey := make(map[string]int, len(plan))
	for _, u := range plan {
		byKey[u.Key] = u.Index
	}
	for _, u := range units {
		if u.Study != study {
			return nil, fmt.Errorf("experiments: unit %s/%q handed to the %s study", u.Study, u.Key, study)
		}
		idx, ok := byKey[u.Key]
		if !ok || idx != u.Index {
			return nil, fmt.Errorf("experiments: unit %s/%q (index %d) is not part of this campaign's plan",
				study, u.Key, u.Index)
		}
	}
	return plan, nil
}

// RunUnits executes the given work units of ONE study and returns each
// unit's serialized partial result, index-aligned with units.
//
// Module-sweep units run Options.Jobs at a time through the shared bounded
// pool, exactly like the in-process study drivers. SPICE Monte-Carlo units
// run as ONE RunMonteCarloSweep over the units' levels, so a shard keeps the
// global run queue (workers stay busy across level boundaries) and each
// level's runs fold in (level, run) order — per-level results are identical
// no matter how levels are grouped into shards, because every run draws from
// its own per-level, per-index RNG stream.
func RunUnits(ctx context.Context, o Options, study string, units []UnitRef) ([]json.RawMessage, error) {
	return RunUnitsObserved(ctx, o, study, units, nil)
}

// RunUnitsObserved is RunUnits with a completion hook: onUnit fires once per
// unit as its partial result becomes available. Module-study hooks fire from
// the pool's worker goroutines (concurrently, in completion order — the
// results themselves still fold in catalog order); SPICE Monte-Carlo hooks
// fire in level order after the sweep, because the global run queue
// interleaves levels and a level is not "done" until the sweep is. The hook
// observes execution only — a nil onUnit is exactly RunUnits, and the
// returned payloads are byte-identical either way.
func RunUnitsObserved(ctx context.Context, o Options, study string, units []UnitRef, onUnit func(UnitRef)) ([]json.RawMessage, error) {
	if len(units) == 0 {
		return nil, nil
	}
	if _, err := validateUnits(o, study, units); err != nil {
		return nil, err
	}
	if study == StudyNameSpiceMC {
		vpps := make([]float64, len(units))
		for i, u := range units {
			vpps[i] = spiceSweepVPPs[u.Index]
		}
		results, err := spice.RunMonteCarloSweep(ctx, vpps, mcConfig(o))
		if err != nil {
			return nil, fmt.Errorf("Monte Carlo sweep: %w", err)
		}
		out := make([]json.RawMessage, len(results))
		for i, r := range results {
			if out[i], err = json.Marshal(r); err != nil {
				return nil, fmt.Errorf("experiments: encoding MC level %s: %w", units[i].Key, err)
			}
			if onUnit != nil {
				onUnit(units[i])
			}
		}
		return out, nil
	}
	return runPool(ctx, o.jobs(), units,
		func(ctx context.Context, u UnitRef) (json.RawMessage, error) {
			prof, _ := physics.ProfileByName(u.Key) // validated above
			part, err := runModuleUnit(ctx, o, study, prof)
			if err != nil {
				return nil, err
			}
			raw, err := json.Marshal(part)
			if err != nil {
				return nil, fmt.Errorf("experiments: encoding %s unit %s: %w", study, u.Key, err)
			}
			if onUnit != nil {
				onUnit(u)
			}
			return raw, nil
		})
}

// runModuleUnit executes one per-module work unit and returns its
// serializable partial.
func runModuleUnit(ctx context.Context, o Options, study string, prof physics.ModuleProfile) (any, error) {
	switch study {
	case StudyNameRowHammer:
		sweep, err := RunModuleSweep(ctx, o, prof)
		if err != nil {
			return nil, err
		}
		return sweepToWire(sweep), nil
	case StudyNameTRCD:
		sweep, err := RunTRCDSweep(ctx, o, prof)
		if err != nil {
			return nil, err
		}
		return trcdToWire(sweep), nil
	case StudyNameRetention:
		return RunModuleRetention(ctx, o, prof)
	case StudyNameWordAnalysis:
		return RunModuleWords(ctx, o, prof)
	case StudyNameCV:
		return runModuleCV(ctx, o, prof)
	}
	return nil, fmt.Errorf("experiments: study %q has no per-module units", study)
}

// orderedPartials resolves the study's complete unit payload set in plan
// order, erroring on missing or surplus units — the completeness check that
// makes a partial shard set fail loudly at assembly.
func orderedPartials(o Options, study string, data map[string]json.RawMessage) ([]json.RawMessage, error) {
	plan, err := PlanStudy(o, study)
	if err != nil {
		return nil, err
	}
	if len(data) > len(plan) {
		known := make(map[string]bool, len(plan))
		for _, u := range plan {
			known[u.Key] = true
		}
		for k := range data {
			if !known[k] {
				return nil, fmt.Errorf("experiments: %s unit %q is not part of this campaign's plan", study, k)
			}
		}
	}
	out := make([]json.RawMessage, len(plan))
	for i, u := range plan {
		raw, ok := data[u.Key]
		if !ok {
			return nil, fmt.Errorf("experiments: shard set incomplete: %s unit %q missing (have %d of %d units)",
				study, u.Key, len(data), len(plan))
		}
		out[i] = raw
	}
	return out, nil
}

// decodePartials unmarshals every payload into fresh T values, plan-ordered.
func decodePartials[T any](o Options, study string, data map[string]json.RawMessage) ([]T, error) {
	ordered, err := orderedPartials(o, study, data)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(ordered))
	for i, raw := range ordered {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("experiments: decoding %s unit %d: %w", study, i, err)
		}
	}
	return out, nil
}

// AssembleRowHammerStudy rebuilds the Fig. 3-6 / Table 3 study from unit
// payloads keyed by module name, folding sweeps in catalog order.
func AssembleRowHammerStudy(o Options, data map[string]json.RawMessage) (RowHammerStudy, error) {
	wires, err := decodePartials[moduleSweepWire](o, StudyNameRowHammer, data)
	if err != nil {
		return RowHammerStudy{}, err
	}
	st := RowHammerStudy{Sweeps: make([]ModuleSweep, len(wires))}
	for i, w := range wires {
		if st.Sweeps[i], err = sweepFromWire(w); err != nil {
			return RowHammerStudy{}, err
		}
	}
	return st, nil
}

// AssembleTRCDStudy rebuilds the Fig. 7 study from unit payloads.
func AssembleTRCDStudy(o Options, data map[string]json.RawMessage) (TRCDStudy, error) {
	wires, err := decodePartials[trcdSweepWire](o, StudyNameTRCD, data)
	if err != nil {
		return TRCDStudy{}, err
	}
	st := TRCDStudy{Sweeps: make([]TRCDSweep, len(wires))}
	for i, w := range wires {
		if st.Sweeps[i], err = trcdFromWire(w); err != nil {
			return TRCDStudy{}, err
		}
	}
	return st, nil
}

// AssembleRetentionStudy rebuilds the Fig. 10 study from unit payloads.
func AssembleRetentionStudy(o Options, data map[string]json.RawMessage) (RetentionStudy, error) {
	parts, err := decodePartials[ModuleRetention](o, StudyNameRetention, data)
	if err != nil {
		return RetentionStudy{}, err
	}
	return assembleRetention(o, parts)
}

// AssembleWordAnalysis rebuilds the Fig. 11 study from unit payloads.
func AssembleWordAnalysis(o Options, data map[string]json.RawMessage) (WordAnalysis, error) {
	parts, err := decodePartials[ModuleWords](o, StudyNameWordAnalysis, data)
	if err != nil {
		return WordAnalysis{}, err
	}
	return assembleWordAnalysis(parts), nil
}

// AssembleCVStudy rebuilds the §4.6 study from unit payloads.
func AssembleCVStudy(o Options, data map[string]json.RawMessage) (CVStudy, error) {
	parts, err := decodePartials[stats.Dist](o, StudyNameCV, data)
	if err != nil {
		return CVStudy{}, err
	}
	return assembleCV(parts), nil
}

// AssembleMCStudy rebuilds the Fig. 8b/9b study from per-level payloads keyed
// by formatted VPP, in sweep-level order.
func AssembleMCStudy(o Options, data map[string]json.RawMessage) (MCStudy, error) {
	results, err := decodePartials[spice.MCResult](o, StudyNameSpiceMC, data)
	if err != nil {
		return MCStudy{}, err
	}
	for i, r := range results {
		if mcLevelKey(r.VPP) != mcLevelKey(spiceSweepVPPs[i]) {
			return MCStudy{}, fmt.Errorf("experiments: MC partial at level %s carries VPP %.2f",
				mcLevelKey(spiceSweepVPPs[i]), r.VPP)
		}
	}
	return MCStudy{Results: results}, nil
}
