package experiments

import (
	"context"
	"fmt"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// TempInteraction is the paper's §7 future-work study: the three-way
// interaction between VPP, temperature, and RowHammer. For each (VPP,
// temperature) cell it records the module-level HCfirst and mean BER, plus
// the per-row normalized HCfirst spread across temperature at fixed VPP.
type TempInteraction struct {
	Module string
	Temps  []float64
	VPPs   []float64
	// HCFirst[t][v] and BER[t][v] are module-level values per grid cell.
	HCFirst [][]float64
	BER     [][]float64
	// RowTempSpread summarizes the per-row normalized HCfirst at the
	// hottest temperature relative to 50C (at nominal VPP) — the row-level
	// temperature response population — as a streaming distribution.
	RowTempSpread stats.Dist
}

// RunTempInteraction measures the VPP x temperature grid on one module.
// RowHammer tests normally run at 50C (the paper's §4.1 condition); this
// experiment extends them across the DDR4 operating range.
func RunTempInteraction(ctx context.Context, o Options, moduleName string, temps []float64) (TempInteraction, error) {
	prof, ok := physics.ProfileByName(moduleName)
	if !ok {
		return TempInteraction{}, fmt.Errorf("unknown module %s", moduleName)
	}
	if len(temps) == 0 {
		temps = []float64{50, 65, 80}
	}
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	tester := core.NewTester(tb.Controller, o.Config).WithContext(ctx)
	rows := selectVictims(tester, o)
	ti := TempInteraction{
		Module: moduleName,
		Temps:  temps,
		VPPs:   []float64{physics.VPPNominal, prof.VPPMin},
	}

	rowHCAt := make(map[float64][]float64) // temp -> per-row HCfirst at nominal VPP
	for _, temp := range temps {
		if err := tb.SetTemperature(temp); err != nil {
			return ti, err
		}
		var hcRow []float64
		var gridHC, gridBER []float64
		for _, vpp := range ti.VPPs {
			if err := tb.SetVPP(vpp); err != nil {
				return ti, err
			}
			hcRow = hcRow[:0]
			var hcMin stats.MinMax
			var berMean stats.Moments
			for _, row := range rows {
				res, err := tester.CharacterizeRow(row, 0)
				if err != nil {
					return ti, err
				}
				hcRow = append(hcRow, float64(res.HCFirst))
				hcMin.Add(float64(res.HCFirst))
				berMean.Add(res.BER)
			}
			min, _ := hcMin.Min()
			gridHC = append(gridHC, min)
			gridBER = append(gridBER, berMean.Mean())
			// Only the endpoint temperatures are ever paired for the
			// spread population; intermediate grid rows need no copy.
			if vpp == physics.VPPNominal && (temp == temps[0] || temp == temps[len(temps)-1]) {
				rowHCAt[temp] = append([]float64(nil), hcRow...)
			}
		}
		ti.HCFirst = append(ti.HCFirst, gridHC)
		ti.BER = append(ti.BER, gridBER)
	}

	// The pairing of per-row HCfirst across the two endpoint temperatures is
	// the only place raw values are needed; the ratio population itself
	// streams into the distribution.
	base := rowHCAt[temps[0]]
	hot := rowHCAt[temps[len(temps)-1]]
	for i := range base {
		if i < len(hot) && base[i] > 0 {
			ti.RowTempSpread.Add(hot[i] / base[i])
		}
	}
	return ti, nil
}

// Render emits the interaction grid.
func (ti TempInteraction) Render(enc report.Encoder) error {
	t := &report.Table{
		Title: fmt.Sprintf("Extension: VPP x temperature x RowHammer on %s (paper §7 future work)",
			ti.Module),
		Headers: []string{"temp (C)", "VPP (V)", "module HCfirst", "mean BER"},
	}
	for tiIdx, temp := range ti.Temps {
		for vi, vpp := range ti.VPPs {
			t.Add(temp, vpp, ti.HCFirst[tiIdx][vi], fmt.Sprintf("%.2e", ti.BER[tiIdx][vi]))
		}
	}
	if err := enc.Table(t); err != nil {
		return err
	}
	if ti.RowTempSpread.N() > 0 {
		if err := enc.Note("per-row HCfirst at %.0fC normalized to %.0fC (nominal VPP): mean %.3f, min %.3f, max %.3f",
			ti.Temps[len(ti.Temps)-1], ti.Temps[0],
			ti.RowTempSpread.Mean(), ti.RowTempSpread.Min(), ti.RowTempSpread.Max()); err != nil {
			return err
		}
		return enc.Note("(temperature moves individual rows in both directions, like VPP does)")
	}
	return nil
}
