package experiments

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
)

// testOptions is a tightly scoped campaign for fast tests.
func testOptions(modules ...string) Options {
	o := Default()
	o.Geometry = physics.Geometry{Banks: 1, RowsPerBank: 4096, RowBytes: 512, SubarrayRows: 512}
	o.Config = core.Quick()
	o.Config.MinHCStep = 2000
	o.Chunks = 2
	o.RowsPerChunk = 4
	o.VPPStride = 3
	o.SpiceMCRuns = 30
	o.RetentionVPPLevels = []float64{2.5, 1.9, 1.5}
	o.ModuleNames = modules
	return o
}

func TestModuleSweepB3ShowsHCFirstIncrease(t *testing.T) {
	prof, _ := physics.ProfileByName("B3")
	sw, err := RunModuleSweep(t.Context(), testOptions("B3"), prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) < 2 {
		t.Fatalf("only %d sweep points", len(sw.Points))
	}
	nom, min := sw.Nominal(), sw.AtVPPMin()
	if nom.VPP != 2.5 || math.Abs(min.VPP-1.6) > 1e-9 {
		t.Fatalf("sweep endpoints %v, %v", nom.VPP, min.VPP)
	}
	// B3: HCfirst up ~27%, BER down ~60% at VPPmin (Table 3).
	hcRatio := min.ModuleHCFirst / nom.ModuleHCFirst
	if hcRatio < 1.05 || hcRatio > 1.6 {
		t.Errorf("B3 module HCfirst ratio = %.3f, want ~1.27", hcRatio)
	}
	berRatio := min.ModuleBER / nom.ModuleBER
	if berRatio > 0.8 {
		t.Errorf("B3 module BER ratio = %.3f, want ~0.4", berRatio)
	}
	// Normalized row means move the same directions.
	if min.NormHC.Mean <= 1 {
		t.Errorf("mean normalized HCfirst at VPPmin = %.3f, want > 1", min.NormHC.Mean)
	}
	if min.NormBER.Mean >= 1 {
		t.Errorf("mean normalized BER at VPPmin = %.3f, want < 1", min.NormBER.Mean)
	}
}

func TestModuleSweepNominalMatchesTable3(t *testing.T) {
	for _, name := range []string{"B0", "A3"} {
		prof, _ := physics.ProfileByName(name)
		sw, err := RunModuleSweep(t.Context(), testOptions(name), prof)
		if err != nil {
			t.Fatal(err)
		}
		nom := sw.Nominal()
		// The module-level minimum over a small row sample sits at or above
		// the Table 3 value (which is the minimum over 4K rows).
		if nom.ModuleHCFirst < prof.Nominal.HCFirst*0.9 {
			t.Errorf("%s: measured module HCfirst %.0f below Table 3 %.0f",
				name, nom.ModuleHCFirst, prof.Nominal.HCFirst)
		}
		if nom.ModuleHCFirst > prof.Nominal.HCFirst*4 {
			t.Errorf("%s: measured module HCfirst %.0f implausibly above Table 3 %.0f",
				name, nom.ModuleHCFirst, prof.Nominal.HCFirst)
		}
		// Mean BER within a factor of ~3 of the table value.
		if nom.ModuleBER < prof.Nominal.BER/3 || nom.ModuleBER > prof.Nominal.BER*3 {
			t.Errorf("%s: measured BER %.2e vs Table 3 %.2e", name, nom.ModuleBER, prof.Nominal.BER)
		}
	}
}

func TestRowHammerStudyRenders(t *testing.T) {
	st, err := RunRowHammerStudy(t.Context(), testOptions("B3", "C0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sweeps) != 2 {
		t.Fatalf("sweeps = %d", len(st.Sweeps))
	}
	var buf bytes.Buffer
	for _, render := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return st.RenderFig3(report.NewText(b)) },
		func(b *bytes.Buffer) error { return st.RenderFig4(report.NewText(b)) },
		func(b *bytes.Buffer) error { return st.RenderFig5(report.NewText(b)) },
		func(b *bytes.Buffer) error { return st.RenderFig6(report.NewText(b)) },
		func(b *bytes.Buffer) error { return st.Table3().Render(b) },
		func(b *bytes.Buffer) error { return st.Section5Aggregates().Render(report.NewText(b)) },
	} {
		buf.Reset()
		if err := render(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Error("renderer produced no output")
		}
	}
}

func TestSection5AggregatesDirections(t *testing.T) {
	st, err := RunRowHammerStudy(t.Context(), testOptions("B3", "C0", "C6"))
	if err != nil {
		t.Fatal(err)
	}
	a := st.Section5Aggregates()
	// These three modules all show the dominant trend; aggregates must
	// point the right way even on a small sample.
	if a.MeanHCIncreasePct <= 0 {
		t.Errorf("mean HCfirst change = %.1f%%, want positive", a.MeanHCIncreasePct)
	}
	if a.MeanBERChangePct >= 0 {
		t.Errorf("mean BER change = %.1f%%, want negative", a.MeanBERChangePct)
	}
	if a.FracRowsHCUp <= 0.5 {
		t.Errorf("HCfirst-increasing row fraction = %.2f, want majority", a.FracRowsHCUp)
	}
	if a.FracRowsBERDown <= 0.5 {
		t.Errorf("BER-decreasing row fraction = %.2f, want majority", a.FracRowsBERDown)
	}
}

func TestTRCDSweepPassingAndFailing(t *testing.T) {
	o := testOptions()
	passProf, _ := physics.ProfileByName("C0")
	pass, err := RunTRCDSweep(t.Context(), o, passProf)
	if err != nil {
		t.Fatal(err)
	}
	if pass.ExceedsNominal() {
		t.Error("C0 should stay within nominal tRCD")
	}
	// The 1.5ns measurement grid may quantize a small latency shift to
	// zero for an individual module; it must never be negative or huge.
	gb := pass.GuardbandReduction()
	if gb < 0 || gb > 0.7 {
		t.Errorf("C0 guardband reduction = %.2f, want within [0, 0.7]", gb)
	}

	failProf, _ := physics.ProfileByName("B2")
	fail, err := RunTRCDSweep(t.Context(), o, failProf)
	if err != nil {
		t.Fatal(err)
	}
	if !fail.ExceedsNominal() {
		t.Error("B2 should exceed nominal tRCD at reduced VPP")
	}
	if !fail.FixVerified {
		t.Error("B2's 15ns fix did not verify")
	}
}

func TestTRCDStudySummary(t *testing.T) {
	o := testOptions("C0", "B2", "A3", "B0", "C2")
	st, err := RunTRCDStudy(t.Context(), o)
	if err != nil {
		t.Fatal(err)
	}
	s := st.Summary()
	if s.FailingModules != 1 || s.PassingModules != 4 {
		t.Errorf("summary = %+v", s)
	}
	if s.MeanGuardbandReduction < 0 || s.MeanGuardbandReduction > 0.6 {
		t.Errorf("mean guardband reduction = %.2f across passing modules", s.MeanGuardbandReduction)
	}
	if !s.AllFixesVerified {
		t.Error("fixes not verified")
	}
	var buf bytes.Buffer
	if err := st.RenderFig7(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
	if err := s.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "guardband") {
		t.Error("summary text missing guardband line")
	}
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "272 chips") {
		t.Errorf("Table 1 missing chip total:\n%s", out)
	}
}

func TestTable2Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"16.8 fF", "100.5 fF", "55 nm"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestWaveformsShapes(t *testing.T) {
	wf, err := RunWaveforms(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(wf.VPP) != len(spiceSweepVPPs) {
		t.Fatalf("waveform levels = %d", len(wf.VPP))
	}
	// The nominal-VPP bitline must end near VDD; the 1.7V cell must end
	// near its saturation level.
	last := func(xs []float64) float64 { return xs[len(xs)-1] }
	if v := last(wf.Bitline[0]); v < 1.1 {
		t.Errorf("nominal bitline ends at %.3f", v)
	}
	for i, vpp := range wf.VPP {
		if vpp == 1.7 {
			if v := last(wf.Cell[i]); math.Abs(v-0.93) > 0.05 {
				t.Errorf("1.7V cell ends at %.3f, want ~0.93 (saturation)", v)
			}
		}
	}
	var buf bytes.Buffer
	if err := wf.RenderFig8a(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
	if err := wf.RenderFig9a(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestMCStudyShapes(t *testing.T) {
	o := testOptions()
	st, err := RunMCStudy(t.Context(), o)
	if err != nil {
		t.Fatal(err)
	}
	// Mean tRCDmin grows monotonically (within noise) as VPP drops, and
	// every level above 1.7V is fully reliable.
	first := st.Results[0]
	last := st.Results[len(st.Results)-1]
	if last.MeanTRCDminNS() <= first.MeanTRCDminNS() {
		t.Errorf("tRCDmin did not grow: %.2f -> %.2f", first.MeanTRCDminNS(), last.MeanTRCDminNS())
	}
	if first.ReliableFraction() != 1 {
		t.Errorf("2.5V reliability = %v", first.ReliableFraction())
	}
	var buf bytes.Buffer
	if err := st.RenderFig8b(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
	if err := st.RenderFig9b(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestRetentionStudyShapes(t *testing.T) {
	o := testOptions("A3", "B0", "C0")
	o.RowsPerChunk = 3
	st, err := RunRetentionStudy(t.Context(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		mean := st.MeanBER[mfr]
		if len(mean) == 0 {
			t.Fatalf("no data for mfr %v", mfr)
		}
		// BER grows with the window at every VPP with data.
		for vi := range mean {
			for wi := 1; wi < len(mean[vi]); wi++ {
				if mean[vi][wi] < mean[vi][wi-1]-1e-9 {
					t.Errorf("mfr %v vpp idx %d: BER fell from %.2e to %.2e",
						mfr, vi, mean[vi][wi-1], mean[vi][wi])
				}
			}
		}
		// No flips at or below 32 ms anywhere.
		for vi := range mean {
			for wi, win := range st.WindowsMS {
				if win <= 32 && mean[vi][wi] != 0 {
					t.Errorf("mfr %v: BER %.2e at %vms", mfr, mean[vi][wi], win)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := st.RenderFig10a(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
	if err := st.RenderFig10b(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestWordAnalysisFig11(t *testing.T) {
	// One failing B module, one failing C module, one clean A module.
	o := testOptions("B6", "C5", "A3")
	o.RowsPerChunk = 120
	o.Chunks = 2
	wa, err := RunWordAnalysis(t.Context(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !wa.SECDEDSafe {
		t.Error("multi-flip words found at smallest failing windows (Obsv. 14 violated)")
	}
	// A3 must be clean and B6 must fail; C5's weak-row fraction (0.2%) may
	// legitimately produce zero failing rows in a small sample.
	if wa.CleanModules64 < 1 || wa.CleanModules64 > 2 {
		t.Errorf("clean modules at 64ms = %d of %d, want 1 or 2", wa.CleanModules64, wa.TotalModules)
	}
	// B rows fail with four single-flip words.
	if frac, ok := wa.Distribution64[physics.MfrB][4]; !ok || frac < 0.05 {
		t.Errorf("MfrB 4-word fraction = %v, want ~0.155", frac)
	}
	if len(wa.Distribution64[physics.MfrA]) != 0 {
		t.Errorf("MfrA shows 64ms failures: %v", wa.Distribution64[physics.MfrA])
	}
	var buf bytes.Buffer
	if err := wa.RenderFig11(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestCVStudyPercentiles(t *testing.T) {
	o := testOptions("B0", "B7")
	st, err := RunCVStudy(t.Context(), o)
	if err != nil {
		t.Fatal(err)
	}
	if st.CVs.N() == 0 {
		t.Fatal("no CV series measured")
	}
	// CV percentiles should be small and ordered (paper: 0.08/0.13/0.24).
	if st.P90 <= 0 || st.P90 > 0.4 {
		t.Errorf("P90 CV = %v", st.P90)
	}
	if st.P95 < st.P90 || st.P99 < st.P95 {
		t.Errorf("percentiles not ordered: %v %v %v", st.P90, st.P95, st.P99)
	}
	var buf bytes.Buffer
	if err := st.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestAttackComparison(t *testing.T) {
	o := testOptions()
	cmp, err := RunAttackComparison(t.Context(), o, "B0", 60000)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DoubleFlips == 0 {
		t.Fatal("double-sided attack flipped nothing")
	}
	if cmp.SingleFlips >= cmp.DoubleFlips {
		t.Errorf("single (%d) >= double (%d)", cmp.SingleFlips, cmp.DoubleFlips)
	}
	if cmp.ManySidedFlips >= cmp.DoubleFlips {
		t.Errorf("many-sided (%d) >= double (%d)", cmp.ManySidedFlips, cmp.DoubleFlips)
	}
	var buf bytes.Buffer
	if err := cmp.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestWCDPStability(t *testing.T) {
	o := testOptions()
	st, err := RunWCDPStability(t.Context(), o, "C0")
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsTested == 0 {
		t.Fatal("no rows tested")
	}
	// Most rows keep their WCDP (paper: 97.6% stable); measurement noise
	// makes the simulated fraction higher but it must remain a minority.
	if frac := float64(st.RowsChanged) / float64(st.RowsTested); frac > 0.5 {
		t.Errorf("WCDP changed for %.0f%% of rows", frac*100)
	}
	var buf bytes.Buffer
	if err := st.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestTRRAblation(t *testing.T) {
	o := testOptions()
	ab, err := RunTRRAblation(t.Context(), o, "B0", 64000)
	if err != nil {
		t.Fatal(err)
	}
	if ab.FlipsStarved == 0 {
		t.Fatal("starved attack flipped nothing; raise the hammer count")
	}
	if ab.FlipsWithREF >= ab.FlipsStarved {
		t.Errorf("TRR did not reduce flips: %d with REF vs %d starved",
			ab.FlipsWithREF, ab.FlipsStarved)
	}
	var buf bytes.Buffer
	if err := ab.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestDefenseCost(t *testing.T) {
	prof, _ := physics.ProfileByName("B3")
	sw, err := RunModuleSweep(t.Context(), testOptions("B3"), prof)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := RunDefenseCost(sw)
	if err != nil {
		t.Fatal(err)
	}
	// B3's HCfirst rises at VPPmin, so both defenses get cheaper.
	first, last := 0, len(dc.VPP)-1
	if dc.PARAProb[last] >= dc.PARAProb[first] {
		t.Errorf("PARA probability did not shrink: %.2e -> %.2e", dc.PARAProb[first], dc.PARAProb[last])
	}
	if dc.Graphene[last] >= dc.Graphene[first] {
		t.Errorf("Graphene counters did not shrink: %d -> %d", dc.Graphene[first], dc.Graphene[last])
	}
	var buf bytes.Buffer
	if err := dc.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestSECDEDCoverage(t *testing.T) {
	o := testOptions()
	o.RowsPerChunk = 60
	cov, err := RunSECDEDCoverage(t.Context(), o, "B6")
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.FailingRows) != len(cov.WindowsMS) {
		t.Fatalf("rows per window = %d", len(cov.FailingRows))
	}
	if cov.FailingRows[0] == 0 {
		t.Error("B6 shows no failing rows at 64ms/VPPmin")
	}
	if cov.CorrectableRows[0] != cov.FailingRows[0] {
		t.Errorf("64ms coverage %d/%d, want full (Obsv. 14)",
			cov.CorrectableRows[0], cov.FailingRows[0])
	}
	var buf bytes.Buffer
	if err := cov.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsHelpers(t *testing.T) {
	o := Default()
	profs, err := o.profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 30 {
		t.Errorf("default profiles = %d", len(profs))
	}
	o.ModuleNames = []string{"B3", "C0"}
	profs, err = o.profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 2 || profs[0].Name != "B3" || profs[1].Name != "C0" {
		t.Errorf("filtered profiles = %v", profs)
	}
	prof, _ := physics.ProfileByName("B3")
	o.VPPStride = 3
	levels := o.vppLevels(prof)
	if levels[0] != 2.5 || levels[len(levels)-1] != 1.6 {
		t.Errorf("strided levels endpoints: %v", levels)
	}
	if p := Paper(); p.RowsPerChunk != 1000 || p.Config.Iterations != 10 {
		t.Error("Paper() options lost full-scale parameters")
	}
}

func TestOptionsValidateRejectsUnknownModules(t *testing.T) {
	o := Default()
	o.ModuleNames = []string{"B3", "XX", "C0"}
	err := o.Validate()
	if err == nil {
		t.Fatal("unknown module name accepted")
	}
	// The error must name the offender and teach the valid labels.
	for _, want := range []string{"XX", "A0", "C9"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("validation error missing %q: %v", want, err)
		}
	}
	o.ModuleNames = []string{"B3", "B3"}
	if err := o.Validate(); err == nil {
		t.Fatal("duplicate module name accepted")
	}
	o.ModuleNames = nil
	if err := o.Validate(); err != nil {
		t.Fatalf("empty module list rejected: %v", err)
	}
}

func TestStudiesStopOnCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	o := testOptions("B3")
	if _, err := RunRowHammerStudy(ctx, o); !errors.Is(err, context.Canceled) {
		t.Errorf("RunRowHammerStudy error = %v, want context.Canceled", err)
	}
	if _, err := RunTRCDStudy(ctx, o); !errors.Is(err, context.Canceled) {
		t.Errorf("RunTRCDStudy error = %v, want context.Canceled", err)
	}
	if _, err := RunRetentionStudy(ctx, o); !errors.Is(err, context.Canceled) {
		t.Errorf("RunRetentionStudy error = %v, want context.Canceled", err)
	}
	if _, err := RunWaveforms(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("RunWaveforms error = %v, want context.Canceled", err)
	}
}

func TestRowHammerStudyDeterministicAcrossWorkerCounts(t *testing.T) {
	base := testOptions("B3", "C0", "A3")
	render := func(jobs int) string {
		o := base
		o.Jobs = jobs
		st, err := RunRowHammerStudy(t.Context(), o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		enc := report.NewText(&buf)
		if err := enc.Table(st.Table3()); err != nil {
			t.Fatal(err)
		}
		if err := st.RenderFig5(enc); err != nil {
			t.Fatal(err)
		}
		if err := st.Section5Aggregates().Render(enc); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("output differs between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
			serial, parallel)
	}
}

func TestTempInteraction(t *testing.T) {
	o := testOptions()
	ti, err := RunTempInteraction(t.Context(), o, "B3", []float64{50, 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(ti.HCFirst) != 2 || len(ti.HCFirst[0]) != 2 {
		t.Fatalf("grid shape: %v", ti.HCFirst)
	}
	// At both temperatures, reducing VPP raises B3's module HCfirst.
	for tiIdx := range ti.Temps {
		if ti.HCFirst[tiIdx][1] <= ti.HCFirst[tiIdx][0] {
			t.Errorf("temp %v: HCfirst at VPPmin (%v) not above nominal (%v)",
				ti.Temps[tiIdx], ti.HCFirst[tiIdx][1], ti.HCFirst[tiIdx][0])
		}
	}
	if ti.RowTempSpread.N() == 0 {
		t.Error("no per-row temperature responses collected")
	}
	var buf bytes.Buffer
	if err := ti.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "future work") {
		t.Error("render missing future-work framing")
	}
}

func TestDefenseShowdown(t *testing.T) {
	o := testOptions()
	sd, err := RunDefenseShowdown(t.Context(), o, "B0", 400_000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sd.Attacks) != 4 || len(sd.Defenses) != 3 {
		t.Fatalf("grid: %v x %v", sd.Attacks, sd.Defenses)
	}
	idx := func(names []string, want string) int {
		for i, n := range names {
			if n == want {
				return i
			}
		}
		t.Fatalf("missing %q in %v", want, names)
		return -1
	}
	ds := idx(sd.Attacks, "double-sided")
	decoy := idx(sd.Attacks, "decoy-flood")
	undef := idx(sd.Defenses, "undefended")
	mg := idx(sd.Defenses, "MG-TRR(16)")
	sampler := idx(sd.Defenses, "sampler-TRR(1/64)")

	if sd.Flips[ds][undef] == 0 {
		t.Fatal("double-sided vs undefended flipped nothing")
	}
	if sd.Flips[ds][mg] >= sd.Flips[ds][undef] {
		t.Errorf("MG TRR did not reduce double-sided flips: %d vs %d",
			sd.Flips[ds][mg], sd.Flips[ds][undef])
	}
	if sd.Flips[decoy][sampler] <= sd.Flips[decoy][mg] {
		t.Errorf("decoy flood should hurt the sampler (%d flips) more than MG (%d)",
			sd.Flips[decoy][sampler], sd.Flips[decoy][mg])
	}
	var buf bytes.Buffer
	if err := sd.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestFineRefreshStudy(t *testing.T) {
	o := testOptions()
	o.RowsPerChunk = 12 // x10 inside the driver = 120 rows/chunk
	st, err := RunFineRefreshStudy(t.Context(), o, "B6")
	if err != nil {
		t.Fatal(err)
	}
	if st.WeakRows == 0 {
		t.Fatal("no weak rows found on B6")
	}
	if !st.Verified {
		t.Error("fine plan left retention flips")
	}
	if st.FineCost >= st.BlanketCost {
		t.Errorf("fine cost %.4f not below blanket cost %.4f", st.FineCost, st.BlanketCost)
	}
	if st.FineCost <= 1 {
		t.Errorf("fine cost %.4f should exceed the nominal baseline", st.FineCost)
	}
	var buf bytes.Buffer
	if err := st.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestPowerStudy(t *testing.T) {
	o := testOptions()
	ps, err := RunPowerStudy(t.Context(), o, "B3")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.VPP) < 2 {
		t.Fatalf("levels = %d", len(ps.VPP))
	}
	last := len(ps.VPP) - 1
	if ps.Power[last] >= ps.Power[0] {
		t.Errorf("rail power did not drop with VPP: %.2f -> %.2f", ps.Power[0], ps.Power[last])
	}
	// Security side: with only four sampled victims the module minimum may
	// quantize flat, but it must not collapse.
	if ps.HCFirst[last] < ps.HCFirst[0]*0.85 {
		t.Errorf("B3 HCfirst collapsed at reduced VPP: %.0f -> %.0f", ps.HCFirst[0], ps.HCFirst[last])
	}
	var buf bytes.Buffer
	if err := ps.Render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
}
