package experiments

import (
	"context"
	"fmt"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/mitigation"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/softmc"
)

// AttackComparison quantifies why the paper uses double-sided attacks
// (§4.2): flips per victim for single-, double-, and many-sided attacks at
// the same per-aggressor activation budget.
type AttackComparison struct {
	HC          int
	SingleFlips int
	DoubleFlips int
	// ManySidedFlips uses TRRespass-style N aggressor pairs sharing the
	// same total activation budget, measured on the same victims.
	ManySidedFlips int
	Pairs          int
}

// RunAttackComparison hammers sample victims with the three attack shapes.
func RunAttackComparison(ctx context.Context, o Options, moduleName string, hc int) (AttackComparison, error) {
	prof, ok := physics.ProfileByName(moduleName)
	if !ok {
		return AttackComparison{}, fmt.Errorf("unknown module %s", moduleName)
	}
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	ctrl := tb.Controller
	cmp := AttackComparison{HC: hc, Pairs: 4}
	sch := tb.Module.Scheme()

	countVictimFlips := func(victimPhys int, attack func(victim, lo, hi int) error) (int, error) {
		victim := sch.PhysicalToLogical(victimPhys)
		lo := sch.PhysicalToLogical(victimPhys - 1)
		hi := sch.PhysicalToLogical(victimPhys + 1)
		if err := ctrl.InitializeRow(0, victim, 0xFF); err != nil {
			return 0, err
		}
		if err := ctrl.InitializeRow(0, lo, 0x00); err != nil {
			return 0, err
		}
		if err := ctrl.InitializeRow(0, hi, 0x00); err != nil {
			return 0, err
		}
		if err := attack(victim, lo, hi); err != nil {
			return 0, err
		}
		data, err := ctrl.ReadRowSafe(0, victim)
		if err != nil {
			return 0, err
		}
		return pattern.RowStripeFF.CountMismatch(data), nil
	}

	victims := []int{100, 140, 180, 220, 260, 300}
	for i, v := range victims {
		if err := ctx.Err(); err != nil {
			return cmp, err
		}
		base := v + i // avoid reusing rows across shapes
		n, err := countVictimFlips(base, func(_, lo, _ int) error {
			return ctrl.Hammer(0, lo, hc)
		})
		if err != nil {
			return cmp, err
		}
		cmp.SingleFlips += n

		n, err = countVictimFlips(base+60, func(_, lo, hi int) error {
			return ctrl.HammerDoubleSided(0, lo, hi, hc)
		})
		if err != nil {
			return cmp, err
		}
		cmp.DoubleFlips += n

		// Many-sided: the per-aggressor budget is split across extra pairs
		// elsewhere in the bank (as TRRespass does to defeat TRR trackers),
		// so each victim sees only a fraction of the activations.
		n, err = countVictimFlips(base+120, func(_, lo, hi int) error {
			per := hc / cmp.Pairs
			if err := ctrl.HammerDoubleSided(0, lo, hi, per); err != nil {
				return err
			}
			for p := 1; p < cmp.Pairs; p++ {
				decoyPhys := sch.LogicalToPhysical(lo) + 40*p
				dLo := sch.PhysicalToLogical(decoyPhys)
				dHi := sch.PhysicalToLogical(decoyPhys + 2)
				if err := ctrl.HammerDoubleSided(0, dLo, dHi, per); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return cmp, err
		}
		cmp.ManySidedFlips += n
	}
	return cmp, nil
}

// Render emits the comparison.
func (c AttackComparison) Render(enc report.Encoder) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: attack shapes at %d activations per aggressor", c.HC),
		Headers: []string{"attack", "total victim flips"},
	}
	t.Add("single-sided", c.SingleFlips)
	t.Add("double-sided", c.DoubleFlips)
	t.Add(fmt.Sprintf("many-sided (%d pairs, split budget)", c.Pairs), c.ManySidedFlips)
	return enc.Table(t)
}

// WCDPStability is the §4.2 footnote-9 ablation: how often the worst-case
// data pattern changes between nominal VPP and VPPmin, and how much HCfirst
// deviates when the nominal WCDP is reused at VPPmin.
type WCDPStability struct {
	RowsTested   int
	RowsChanged  int
	MaxDeviation float64 // |HCfirst(nominal WCDP) / HCfirst(re-profiled) - 1|
}

// RunWCDPStability re-profiles WCDP at VPPmin on a sample module.
func RunWCDPStability(ctx context.Context, o Options, moduleName string) (WCDPStability, error) {
	prof, ok := physics.ProfileByName(moduleName)
	if !ok {
		return WCDPStability{}, fmt.Errorf("unknown module %s", moduleName)
	}
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	// Pattern deltas can sit below single-measurement noise; profile WCDP
	// with extra repetitions so flapping reflects genuine VPP sensitivity
	// rather than measurement noise.
	cfg := o.Config
	if cfg.WCDPIterations < 4 {
		cfg.WCDPIterations = 4
	}
	tester := core.NewTester(tb.Controller, cfg).WithContext(ctx)
	rows := selectVictims(tester, o)
	var st WCDPStability
	for _, row := range rows {
		if err := tb.SetVPP(physics.VPPNominal); err != nil {
			return st, err
		}
		nomWCDP, err := tester.SelectWCDP(row)
		if err != nil {
			return st, err
		}
		if err := tb.SetVPP(prof.VPPMin); err != nil {
			return st, err
		}
		minWCDP, err := tester.SelectWCDP(row)
		if err != nil {
			return st, err
		}
		st.RowsTested++
		if nomWCDP != minWCDP {
			st.RowsChanged++
			hcNom, err := tester.HCFirstSearch(row, nomWCDP, o.Config.WCDPIterations)
			if err != nil {
				return st, err
			}
			hcRe, err := tester.HCFirstSearch(row, minWCDP, o.Config.WCDPIterations)
			if err != nil {
				return st, err
			}
			if hcRe > 0 {
				dev := float64(hcNom)/float64(hcRe) - 1
				if dev < 0 {
					dev = -dev
				}
				if dev > st.MaxDeviation {
					st.MaxDeviation = dev
				}
			}
		}
	}
	return st, nil
}

// Render emits the stability ablation.
func (s WCDPStability) Render(enc report.Encoder) error {
	t := &report.Table{
		Title:   "Ablation: WCDP stability across VPP (paper: 2.4% of rows change, <9% HCfirst deviation)",
		Headers: []string{"metric", "value"},
	}
	t.Add("rows tested", s.RowsTested)
	frac := 0.0
	if s.RowsTested > 0 {
		frac = float64(s.RowsChanged) / float64(s.RowsTested)
	}
	t.Add("rows whose WCDP changed", fmt.Sprintf("%d (%.1f%%)", s.RowsChanged, frac*100))
	t.Add("max HCfirst deviation from reusing nominal WCDP", fmt.Sprintf("%.1f%%", s.MaxDeviation*100))
	return enc.Table(t)
}

// TRRAblation shows why the methodology starves TRR: the same double-sided
// attack with and without interleaved REF commands on a TRR-equipped module.
type TRRAblation struct {
	FlipsStarved    int // no REF issued (the paper's method)
	FlipsWithREF    int // REF interleaved: TRR absorbs the attack
	HCPerSide       int
	VictimsAttacked int
}

// RunTRRAblation attacks a TRR-equipped clone of a module both ways.
func RunTRRAblation(ctx context.Context, o Options, moduleName string, hc int) (TRRAblation, error) {
	prof, ok := physics.ProfileByName(moduleName)
	if !ok {
		return TRRAblation{}, fmt.Errorf("unknown module %s", moduleName)
	}
	ab := TRRAblation{HCPerSide: hc}

	run := func(withREF bool) (int, error) {
		mod := dram.NewModule(prof, o.Geometry, o.Seed, dram.WithTRR(16))
		ctrl := softmc.New(mod)
		sch := mod.Scheme()
		total := 0
		for _, victimPhys := range []int{100, 160, 220} {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			victim := sch.PhysicalToLogical(victimPhys)
			lo := sch.PhysicalToLogical(victimPhys - 1)
			hi := sch.PhysicalToLogical(victimPhys + 1)
			for _, init := range []struct {
				row  int
				fill byte
			}{{victim, 0xFF}, {lo, 0x00}, {hi, 0x00}} {
				if err := ctrl.InitializeRow(0, init.row, init.fill); err != nil {
					return 0, err
				}
			}
			const rounds = 64
			per := hc / rounds
			for r := 0; r < rounds; r++ {
				if err := ctrl.HammerDoubleSided(0, lo, hi, per); err != nil {
					return 0, err
				}
				if withREF {
					if err := ctrl.Refresh(); err != nil {
						return 0, err
					}
				}
			}
			data, err := ctrl.ReadRow(0, victim)
			if err != nil {
				return 0, err
			}
			total += pattern.RowStripeFF.CountMismatch(data)
		}
		return total, nil
	}

	var err error
	ab.VictimsAttacked = 3
	if ab.FlipsStarved, err = run(false); err != nil {
		return ab, err
	}
	if ab.FlipsWithREF, err = run(true); err != nil {
		return ab, err
	}
	return ab, nil
}

// Render emits the TRR ablation.
func (a TRRAblation) Render(enc report.Encoder) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: TRR interaction (%d hammers/side, %d victims)", a.HCPerSide, a.VictimsAttacked),
		Headers: []string{"refresh commands", "victim flips"},
	}
	t.Add("starved (paper's method)", a.FlipsStarved)
	t.Add("interleaved (TRR active)", a.FlipsWithREF)
	return enc.Table(t)
}

// DefenseCost quantifies how reduced VPP cheapens deployed defenses: PARA's
// required refresh probability and Graphene's counter budget at each
// measured HCfirst(VPP).
type DefenseCost struct {
	Module    string
	VPP       []float64
	HCFirst   []float64
	PARAProb  []float64
	Graphene  []int
	TargetWin float64
}

// RunDefenseCost derives defense provisioning from a module sweep.
func RunDefenseCost(sweep ModuleSweep) (DefenseCost, error) {
	// A 64 ms refresh window at ~47ns per activation allows ~1.36M
	// activations.
	const activationsPerWindow = 1_360_000
	dc := DefenseCost{Module: sweep.Profile.Name, TargetWin: 1e-9}
	for _, p := range sweep.Points {
		dc.VPP = append(dc.VPP, p.VPP)
		dc.HCFirst = append(dc.HCFirst, p.ModuleHCFirst)
		prob, err := mitigation.RequiredP(p.ModuleHCFirst, dc.TargetWin)
		if err != nil {
			return dc, err
		}
		dc.PARAProb = append(dc.PARAProb, prob)
		dc.Graphene = append(dc.Graphene, mitigation.CountersRequired(activationsPerWindow, p.ModuleHCFirst, 4))
	}
	return dc, nil
}

// Render emits the defense-cost table.
func (d DefenseCost) Render(enc report.Encoder) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: defense cost vs VPP on %s (PARA target %.0e)", d.Module, d.TargetWin),
		Headers: []string{"VPP", "HCfirst", "PARA refresh prob", "Graphene counters"},
	}
	for i := range d.VPP {
		t.Add(fmt.Sprintf("%.1f", d.VPP[i]), d.HCFirst[i],
			fmt.Sprintf("%.2e", d.PARAProb[i]), d.Graphene[i])
	}
	return enc.Table(t)
}

// SECDEDCoverage extends Obsv. 14: the fraction of retention-failing rows
// fully correctable by SECDED as the refresh window stretches past the first
// failing window.
type SECDEDCoverage struct {
	Module    string
	WindowsMS []float64
	// FailingRows and CorrectableRows per window.
	FailingRows     []int
	CorrectableRows []int
}

// RunSECDEDCoverage measures word-level correctability per window at VPPmin.
func RunSECDEDCoverage(ctx context.Context, o Options, moduleName string) (SECDEDCoverage, error) {
	prof, ok := physics.ProfileByName(moduleName)
	if !ok {
		return SECDEDCoverage{}, fmt.Errorf("unknown module %s", moduleName)
	}
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	if err := tb.SetTemperature(physics.RetentionTestTempC); err != nil {
		return SECDEDCoverage{}, err
	}
	if err := tb.SetVPP(prof.VPPMin); err != nil {
		return SECDEDCoverage{}, err
	}
	ctrl := tb.Controller
	rows := core.SelectRows(o.Geometry, o.Chunks, o.RowsPerChunk)
	cov := SECDEDCoverage{Module: moduleName, WindowsMS: []float64{64, 128, 256, 512, 1024, 2048}}
	const fill = 0xAA
	for _, win := range cov.WindowsMS {
		if err := ctx.Err(); err != nil {
			return cov, err
		}
		failing, correctable := 0, 0
		for _, row := range rows {
			if err := ctrl.InitializeRow(0, row, fill); err != nil {
				return cov, err
			}
			if err := ctrl.WaitMS(win); err != nil {
				return cov, err
			}
			data, err := ctrl.ReadRowSafe(0, row)
			if err != nil {
				return cov, err
			}
			if pattern.CheckerAA.CountMismatch(data) == 0 {
				continue
			}
			failing++
			if countSECDEDSafe(data, fill) {
				correctable++
			}
		}
		cov.FailingRows = append(cov.FailingRows, failing)
		cov.CorrectableRows = append(cov.CorrectableRows, correctable)
	}
	return cov, nil
}

func countSECDEDSafe(data []byte, fill byte) bool {
	for off := 0; off+8 <= len(data); off += 8 {
		flips := 0
		for _, b := range data[off : off+8] {
			x := b ^ fill
			for x != 0 {
				x &= x - 1
				flips++
			}
		}
		if flips > 1 {
			return false
		}
	}
	return true
}

// Render emits SECDED coverage per window.
func (c SECDEDCoverage) Render(enc report.Encoder) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: SECDED coverage of retention failures on %s at VPPmin", c.Module),
		Headers: []string{"window (ms)", "failing rows", "fully correctable", "coverage"},
	}
	for i := range c.WindowsMS {
		covPct := 100.0
		if c.FailingRows[i] > 0 {
			covPct = float64(c.CorrectableRows[i]) / float64(c.FailingRows[i]) * 100
		}
		t.Add(c.WindowsMS[i], c.FailingRows[i], c.CorrectableRows[i], fmt.Sprintf("%.0f%%", covPct))
	}
	return enc.Table(t)
}
