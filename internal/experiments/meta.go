package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// Table1 groups the tested modules the way the paper's chip summary does.
func Table1(enc report.Encoder) error {
	type key struct {
		mfr     physics.Manufacturer
		density int
		rev     string
		org     physics.ChipOrg
		date    string
	}
	groups := map[key]int{}
	for _, p := range physics.Profiles() {
		groups[key{p.Mfr, p.DensityGb, p.DieRev, p.Org, p.MfgDate}]++
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	// The comparator must be total: the keys come out of a map, and two
	// groups tie on (mfr, density, rev), so anything short of a full key
	// comparison made the row order depend on map iteration order.
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.mfr != b.mfr {
			return a.mfr < b.mfr
		}
		if a.density != b.density {
			return a.density < b.density
		}
		if a.rev != b.rev {
			return a.rev < b.rev
		}
		if a.org != b.org {
			return a.org < b.org
		}
		return a.date < b.date
	})
	t := &report.Table{
		Title:   fmt.Sprintf("Table 1: summary of the tested DDR4 DRAM chips (%d chips total)", physics.TotalChips()),
		Headers: []string{"Mfr", "#DIMMs", "#Chips", "Density", "Die Rev.", "Org.", "Date"},
	}
	for _, k := range keys {
		dimms := groups[k]
		t.Add(k.mfr.String(), dimms, dimms*k.org.ChipsPerDIMM(),
			fmt.Sprintf("%dGb", k.density), k.rev, k.org.String(), k.date)
	}
	return enc.Table(t)
}

// CVStudy is the §4.6 statistical-significance analysis: the coefficient of
// variation across repeated measurements.
type CVStudy struct {
	// CVs summarizes the coefficient-of-variation population, one sample
	// per (module, row, VPP) measurement series, as a streaming exact
	// distribution: the percentiles below are bit-identical to sorting the
	// raw population, without retaining it.
	CVs stats.Dist
	P90 float64
	P95 float64
	P99 float64
}

// RunCVStudy measures BER ten times per row on a sample of modules and
// voltages and summarizes the CV distribution (paper: 0.08 / 0.13 / 0.24 at
// the 90th / 95th / 99th percentiles). Modules run through the worker pool;
// their populations merge in catalog order.
func RunCVStudy(ctx context.Context, o Options) (CVStudy, error) {
	profs, err := o.profiles()
	if err != nil {
		return CVStudy{}, err
	}
	perModule, err := runPool(ctx, o.jobs(), profs,
		func(ctx context.Context, prof physics.ModuleProfile) (stats.Dist, error) {
			return runModuleCV(ctx, o, prof)
		})
	if err != nil {
		return CVStudy{}, err
	}
	return assembleCV(perModule), nil
}

// assembleCV merges per-module CV populations — already in catalog order —
// into the study summary; shared by the in-process driver and the
// shard-artifact assembly.
func assembleCV(perModule []stats.Dist) CVStudy {
	var st CVStudy
	for _, cvs := range perModule {
		st.CVs.Merge(cvs)
	}
	if st.CVs.N() > 0 {
		st.P90, _ = st.CVs.Percentile(90)
		st.P95, _ = st.CVs.Percentile(95)
		st.P99, _ = st.CVs.Percentile(99)
	}
	return st
}

// runModuleCV folds one module's CV population at nominal VPP and VPPmin
// into a streaming distribution, summarizing each series as it is measured.
func runModuleCV(ctx context.Context, o Options, prof physics.ModuleProfile) (stats.Dist, error) {
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	tester := core.NewTester(tb.Controller, o.Config).WithContext(ctx)
	rows := selectVictims(tester, o)
	if len(rows) > 6 {
		rows = rows[:6]
	}
	var cvs stats.Dist
	for _, vpp := range []float64{physics.VPPNominal, prof.VPPMin} {
		if err := tb.SetVPP(vpp); err != nil {
			return cvs, err
		}
		for _, row := range rows {
			series, err := tester.MeasureBERStats(row, pattern.RowStripeFF, o.Config.RefHC, 10)
			if err != nil {
				return cvs, err
			}
			// Require a handful of flipped bits per measurement: series
			// dominated by 1-2 flips measure integer-count discreteness,
			// not methodology noise (the paper's BERs involve thousands
			// of bits per row).
			minBER := 5.0 / float64(o.Geometry.RowBits())
			if series.Mean() < minBER {
				continue
			}
			cv, err := series.CV()
			if err != nil {
				continue // degenerate series (zero mean): no meaningful CV
			}
			cvs.Add(cv)
		}
	}
	return cvs, nil
}

// Render emits the CV percentiles against the paper's.
func (st CVStudy) Render(enc report.Encoder) error {
	t := &report.Table{
		Title:   "Section 4.6: coefficient of variation across 10 iterations",
		Headers: []string{"percentile", "measured", "paper"},
	}
	t.Add("P90", fmt.Sprintf("%.3f", st.P90), "0.08")
	t.Add("P95", fmt.Sprintf("%.3f", st.P95), "0.13")
	t.Add("P99", fmt.Sprintf("%.3f", st.P99), "0.24")
	t.Add("series measured", st.CVs.N(), "-")
	return enc.Table(t)
}
