package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/mitigation"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
)

// FineRefreshStudy is the footnote-14 extension: per-row refresh windows at
// finer than power-of-two granularity, compared against the blanket 2x rate
// of Obsv. 15.
type FineRefreshStudy struct {
	Module string
	// WeakRows is the number of rows failing at the nominal window.
	WeakRows  int
	TotalRows int
	// BlanketCost and FineCost are total refresh rates relative to uniform
	// nominal refresh (1.0 = baseline).
	BlanketCost float64
	FineCost    float64
	// WindowsMS are the per-weak-row assigned windows.
	WindowsMS []float64
	// Verified reports that the fine plan eliminated all retention flips.
	Verified bool
}

// RunFineRefreshStudy profiles one failing module at VPPmin and builds both
// plans.
func RunFineRefreshStudy(ctx context.Context, o Options, moduleName string) (FineRefreshStudy, error) {
	prof, ok := physics.ProfileByName(moduleName)
	if !ok {
		return FineRefreshStudy{}, fmt.Errorf("unknown module %s", moduleName)
	}
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	if err := tb.SetTemperature(physics.RetentionTestTempC); err != nil {
		return FineRefreshStudy{}, err
	}
	if err := tb.SetVPP(prof.VPPMin); err != nil {
		return FineRefreshStudy{}, err
	}
	tester := core.NewTester(tb.Controller, o.Config).WithContext(ctx)
	rows := core.SelectRows(o.Geometry, o.Chunks, o.RowsPerChunk*10)

	plan, err := mitigation.BuildFineRefreshPlan(tester, rows, physics.TREFWNominalMS, 1, 0.85)
	if err != nil {
		return FineRefreshStudy{}, err
	}
	st := FineRefreshStudy{
		Module:    moduleName,
		WeakRows:  len(plan.WindowMS),
		TotalRows: len(rows),
		FineCost:  plan.RefreshCostVsNominal(),
	}
	st.BlanketCost = (float64(len(rows)-st.WeakRows) + 2*float64(st.WeakRows)) / float64(len(rows))
	// plan.WindowMS is a map keyed by row; walk it in sorted row order so
	// WindowsMS (and anything rendered from it) is reproducible.
	weakRows := make([]int, 0, len(plan.WindowMS))
	for r := range plan.WindowMS {
		weakRows = append(weakRows, r)
	}
	sort.Ints(weakRows)
	for _, r := range weakRows {
		st.WindowsMS = append(st.WindowsMS, plan.WindowMS[r])
	}
	failed, err := mitigation.VerifyFine(tester, plan, rows, 0xAA)
	if err != nil {
		return st, err
	}
	st.Verified = failed == 0
	return st, nil
}

// Render emits the comparison.
func (st FineRefreshStudy) Render(enc report.Encoder) error {
	t := &report.Table{
		Title: fmt.Sprintf("Extension: fine-grained refresh windows on %s at VPPmin (paper footnote 14)",
			st.Module),
		Headers: []string{"metric", "value"},
	}
	t.Add("profiled rows", st.TotalRows)
	t.Add("weak rows (fail at 64ms)", st.WeakRows)
	t.Add("refresh cost, blanket 2x plan", fmt.Sprintf("%.4fx nominal", st.BlanketCost))
	t.Add("refresh cost, fine-grained plan", fmt.Sprintf("%.4fx nominal", st.FineCost))
	save := 0.0
	if st.BlanketCost > 1 {
		save = (st.BlanketCost - st.FineCost) / (st.BlanketCost - 1) * 100
	}
	t.Add("overhead saved vs blanket 2x", fmt.Sprintf("%.0f%%", save))
	t.Add("plan verified flip-free", st.Verified)
	return enc.Table(t)
}

// PowerStudy tabulates the VPP rail's electrical cost across the sweep: the
// supply current the interposer's shunt position would measure, the rail
// power, and the energy per activation, next to the security benefit
// (module HCfirst). Energy per activation is modeled as wordline charge
// C_wl * VPP^2 plus the pump overhead captured by the supply current model.
type PowerStudy struct {
	Module  string
	VPP     []float64
	Current []float64 // mA at the supply
	Power   []float64 // mW on the rail
	HCFirst []float64
}

// RunPowerStudy measures current/power across the sweep of one module while
// the characterization workload runs.
func RunPowerStudy(ctx context.Context, o Options, moduleName string) (PowerStudy, error) {
	prof, ok := physics.ProfileByName(moduleName)
	if !ok {
		return PowerStudy{}, fmt.Errorf("unknown module %s", moduleName)
	}
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	tester := core.NewTester(tb.Controller, o.Config).WithContext(ctx)
	rows := selectVictims(tester, o)
	if len(rows) > 4 {
		rows = rows[:4]
	}
	ps := PowerStudy{Module: moduleName}
	for _, vpp := range o.vppLevels(prof) {
		if err := tb.SetVPP(vpp); err != nil {
			return ps, err
		}
		minHC := 0.0
		for _, row := range rows {
			res, err := tester.CharacterizeRow(row, 0)
			if err != nil {
				return ps, err
			}
			if minHC == 0 || float64(res.HCFirst) < minHC {
				minHC = float64(res.HCFirst)
			}
		}
		ma := tb.Supply.ReadCurrentMA()
		ps.VPP = append(ps.VPP, vpp)
		ps.Current = append(ps.Current, ma)
		ps.Power = append(ps.Power, ma*vpp)
		ps.HCFirst = append(ps.HCFirst, minHC)
	}
	return ps, nil
}

// Render emits the power table.
func (ps PowerStudy) Render(enc report.Encoder) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Extension: VPP rail electrical cost vs RowHammer benefit on %s", ps.Module),
		Headers: []string{"VPP (V)", "rail current (mA)", "rail power (mW)", "module HCfirst"},
	}
	for i := range ps.VPP {
		t.Add(fmt.Sprintf("%.1f", ps.VPP[i]), fmt.Sprintf("%.2f", ps.Current[i]),
			fmt.Sprintf("%.2f", ps.Power[i]), ps.HCFirst[i])
	}
	if err := enc.Table(t); err != nil {
		return err
	}
	if n := len(ps.VPP); n > 1 && ps.Power[0] > 0 {
		return enc.Note("rail power at VPPmin is %.0f%% of nominal while HCfirst changes %+.0f%%",
			ps.Power[n-1]/ps.Power[0]*100, (ps.HCFirst[n-1]/ps.HCFirst[0]-1)*100)
	}
	return nil
}
