package experiments

import (
	"context"
	"fmt"

	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/spice"
)

// spiceSweepVPPs are the voltage levels of the paper's SPICE study
// (1.7-2.5 V in 0.1 V steps for the distributions; waveforms show the same
// range).
var spiceSweepVPPs = []float64{2.5, 2.4, 2.3, 2.2, 2.1, 2.0, 1.9, 1.8, 1.7}

// Table2 emits the SPICE netlist parameters.
func Table2(enc report.Encoder) error {
	p := spice.DefaultCellParams(2.5)
	t := &report.Table{
		Title:   "Table 2: key parameters used in SPICE simulations",
		Headers: []string{"component", "parameters"},
	}
	t.Add("DRAM Cell", fmt.Sprintf("C: %.1f fF, R: %.0f Ohm", p.CellC*1e15, p.CellR))
	t.Add("Bitline", fmt.Sprintf("C: %.1f fF, R: %.0f Ohm", p.BLC*1e15, p.BLR))
	t.Add("Cell Access NMOS", fmt.Sprintf("W: %.0f nm, L: %.0f nm", p.Access.W*1e9, p.Access.L*1e9))
	t.Add("Sense Amp. NMOS", fmt.Sprintf("W: %.1f um, L: %.1f um", p.SAN1.W*1e6, p.SAN1.L*1e6))
	t.Add("Sense Amp. PMOS", fmt.Sprintf("W: %.1f um, L: %.1f um", p.SAP1.W*1e6, p.SAP1.L*1e6))
	return enc.Table(t)
}

// Waveforms holds the Fig. 8a / 9a transient traces per VPP level.
type Waveforms struct {
	VPP []float64
	// Bitline[i] and Cell[i] are the traces for VPP[i]; Times is shared.
	Times   [][]float64
	Bitline [][]float64
	Cell    [][]float64
}

// RunWaveforms simulates the activation waveform at each VPP level.
func RunWaveforms(ctx context.Context) (Waveforms, error) {
	var wf Waveforms
	for _, vpp := range spiceSweepVPPs {
		if err := ctx.Err(); err != nil {
			return wf, err
		}
		var ts, bl, cell []float64
		p := spice.DefaultCellParams(vpp)
		p.MaxNS = 100
		// The rendered figures sample every cell of the fixed 25 ps grid;
		// they are also the accuracy oracle the adaptive engine is pinned
		// against, so this study always integrates densely (it is one cheap
		// deterministic simulation per level).
		p.Adaptive = spice.AdaptiveConfig{}
		if _, err := spice.SimulateActivation(p, func(tNS, vbl, vcell float64) {
			ts = append(ts, tNS)
			bl = append(bl, vbl)
			cell = append(cell, vcell)
		}); err != nil {
			return wf, fmt.Errorf("waveform at %.1fV: %w", vpp, err)
		}
		wf.VPP = append(wf.VPP, vpp)
		wf.Times = append(wf.Times, ts)
		wf.Bitline = append(wf.Bitline, bl)
		wf.Cell = append(wf.Cell, cell)
	}
	return wf, nil
}

// RenderFig8a plots the bitline voltage during activation.
func (wf Waveforms) RenderFig8a(enc report.Encoder) error {
	return wf.render(enc, "Fig. 8a: bitline voltage during row activation (VTH = 1.08V)", wf.Bitline, 40)
}

// RenderFig9a plots the cell capacitor voltage during restoration.
func (wf Waveforms) RenderFig9a(enc report.Encoder) error {
	return wf.render(enc, "Fig. 9a: cell capacitor voltage during charge restoration", wf.Cell, 100)
}

func (wf Waveforms) render(enc report.Encoder, title string, traces [][]float64, maxNS float64) error {
	plot := report.LinePlot{Title: title, XLabel: "time (ns)", YLabel: "V", Width: 70, Height: 14}
	for i, vpp := range wf.VPP {
		if i%2 == 1 {
			continue // subsample the legend for readability
		}
		s := report.Series{Name: fmt.Sprintf("VPP=%.1fV", vpp)}
		for j, t := range wf.Times[i] {
			if t > maxNS {
				break
			}
			if j%8 == 0 {
				s.X = append(s.X, t)
				s.Y = append(s.Y, traces[i][j])
			}
		}
		plot.Series = append(plot.Series, s)
	}
	return enc.Plot(&plot)
}

// MCStudy is the Fig. 8b / 9b Monte-Carlo campaign.
type MCStudy struct {
	Results []spice.MCResult
}

// RunMCStudy executes the Monte-Carlo sweep (runs per level from Options)
// over a single global run queue: all levels' runs feed one worker pool
// (Options.Jobs), so workers stay busy across level boundaries even when a
// slowly-converging low-VPP level would otherwise drain a per-level pool.
// Every run draws from its own index-derived generator and folds into the
// per-level streaming accumulators in (level, run) order, so results are
// byte-identical at any worker count while aggregation memory stays
// independent of the run count.
func RunMCStudy(ctx context.Context, o Options) (MCStudy, error) {
	results, err := spice.RunMonteCarloSweep(ctx, spiceSweepVPPs, mcConfig(o))
	if err != nil {
		return MCStudy{}, fmt.Errorf("Monte Carlo sweep: %w", err)
	}
	return MCStudy{Results: results}, nil
}

// RenderFig8b emits the tRCDmin distribution per VPP level, straight from
// the per-level streaming summaries.
func (st MCStudy) RenderFig8b(enc report.Encoder) error {
	t := &report.Table{
		Title:   "Fig. 8b: minimum reliable activation latency distribution (Monte Carlo)",
		Headers: []string{"VPP", "mean tRCDmin (ns)", "P95", "worst", "reliable runs", "no-converge"},
	}
	for _, r := range st.Results {
		p95, _ := r.TRCDmin.Percentile(95)
		t.Add(fmt.Sprintf("%.1f", r.VPP), fmt.Sprintf("%.2f", r.MeanTRCDminNS()),
			fmt.Sprintf("%.2f", p95), fmt.Sprintf("%.2f", r.WorstTRCDminNS()),
			fmt.Sprintf("%.1f%%", r.ReliableFraction()*100),
			fmt.Sprintf("%d", r.NoConverge))
	}
	return enc.Table(t)
}

// RenderFig9b emits the tRASmin distribution per VPP level.
func (st MCStudy) RenderFig9b(enc report.Encoder) error {
	t := &report.Table{
		Title:   "Fig. 9b: minimum reliable charge restoration latency distribution (Monte Carlo, nominal tRAS = 35ns)",
		Headers: []string{"VPP", "mean tRASmin (ns)", "P95", "worst", "restored runs", "no-converge"},
	}
	for _, r := range st.Results {
		p95, _ := r.TRASmin.Percentile(95)
		restored := float64(r.TRASmin.N()) / float64(r.Runs) * 100
		t.Add(fmt.Sprintf("%.1f", r.VPP), fmt.Sprintf("%.2f", r.TRASmin.Mean()),
			fmt.Sprintf("%.2f", p95), fmt.Sprintf("%.2f", r.TRASmin.Max()),
			fmt.Sprintf("%.1f%%", restored),
			fmt.Sprintf("%d", r.NoConverge))
	}
	return enc.Table(t)
}
