package experiments

import (
	"context"
	"fmt"

	"github.com/dramstudy/rhvpp/internal/attack"
	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/softmc"
)

// DefenseShowdown is the attack/defense extension study: every attack shape
// in the library against an undefended module, a Misra-Gries TRR engine, and
// a sampling TRR engine, at the same total activation budget.
type DefenseShowdown struct {
	Module   string
	Budget   int
	RefEvery int
	// Flips[attack][defense] holds total victim flips across the sampled
	// victims.
	Attacks  []string
	Defenses []string
	Flips    [][]int
}

// RunDefenseShowdown executes the grid on one module.
func RunDefenseShowdown(ctx context.Context, o Options, moduleName string, budget, refEvery int) (DefenseShowdown, error) {
	prof, ok := physics.ProfileByName(moduleName)
	if !ok {
		return DefenseShowdown{}, fmt.Errorf("unknown module %s", moduleName)
	}
	patterns := []attack.Pattern{
		attack.SingleSided{},
		attack.DoubleSided{},
		attack.ManySided{Pairs: 4},
		attack.DecoyFlood{},
	}
	defenses := []struct {
		name string
		opts []dram.Option
	}{
		{"undefended", nil},
		{"MG-TRR(16)", []dram.Option{dram.WithTRR(16)}},
		{"sampler-TRR(1/64)", []dram.Option{dram.WithSamplingTRR(1.0/64, o.Seed)}},
	}

	sd := DefenseShowdown{Module: moduleName, Budget: budget, RefEvery: refEvery}
	for _, d := range defenses {
		sd.Defenses = append(sd.Defenses, d.name)
	}
	victims := []int{100, 140, 180, 220, 260}
	for _, pat := range patterns {
		if err := ctx.Err(); err != nil {
			return sd, err
		}
		sd.Attacks = append(sd.Attacks, pat.Name())
		var row []int
		for _, d := range defenses {
			opts := append([]dram.Option{dram.WithScheme(mapping.Direct{})}, d.opts...)
			ctrl := softmc.New(dram.NewModule(prof, o.Geometry, o.Seed, opts...))
			total := 0
			for _, v := range victims {
				res, err := attack.Execute(ctrl, attack.Target{
					Bank: 0, Victim: v, AggLo: v - 1, AggHi: v + 1,
				}, pat, budget, refEvery)
				if err != nil {
					return sd, fmt.Errorf("%s vs %s: %w", pat.Name(), d.name, err)
				}
				total += res.Flips
			}
			row = append(row, total)
		}
		sd.Flips = append(sd.Flips, row)
	}
	return sd, nil
}

// Render emits the showdown grid.
func (sd DefenseShowdown) Render(enc report.Encoder) error {
	t := &report.Table{
		Title: fmt.Sprintf("Extension: attack shapes vs in-DRAM defenses on %s (budget %d, REF every %d ACTs)",
			sd.Module, sd.Budget, sd.RefEvery),
		Headers: append([]string{"attack"}, sd.Defenses...),
	}
	for i, a := range sd.Attacks {
		cells := []any{a}
		for _, f := range sd.Flips[i] {
			cells = append(cells, f)
		}
		t.Add(cells...)
	}
	if err := enc.Table(t); err != nil {
		return err
	}
	return enc.Note("expected shape: double-sided dominates undefended; the counter-based\n" +
		"tracker absorbs every shape; the sampler falls to the decoy flood.")
}
