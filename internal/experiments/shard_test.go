package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// shardOptions is a small campaign exercising every unit type quickly.
func shardOptions() Options {
	o := testOptions("B3", "C0")
	o.SpiceMCRuns = 12
	return o
}

func TestPlanStudyDeterministicCatalogOrder(t *testing.T) {
	o := shardOptions()
	for _, study := range ShardableStudies() {
		units, err := PlanStudy(o, study)
		if err != nil {
			t.Fatalf("%s: %v", study, err)
		}
		if len(units) == 0 {
			t.Fatalf("%s: empty plan", study)
		}
		for i, u := range units {
			if u.Index != i || u.Study != study || u.Key == "" {
				t.Errorf("%s unit %d malformed: %+v", study, i, u)
			}
		}
		again, _ := PlanStudy(o, study)
		if !reflect.DeepEqual(units, again) {
			t.Errorf("%s plan is not deterministic", study)
		}
	}
	// Module studies plan the selected modules in catalog order.
	units, _ := PlanStudy(o, StudyNameRowHammer)
	if len(units) != 2 || units[0].Key != "B3" || units[1].Key != "C0" {
		t.Errorf("rowhammer plan = %+v, want [B3 C0]", units)
	}
	// The MC study plans one unit per sweep level.
	units, _ = PlanStudy(o, StudyNameSpiceMC)
	if len(units) != len(spiceSweepVPPs) || units[0].Key != "2.5" {
		t.Errorf("spice-mc plan = %+v", units)
	}
	if _, err := PlanStudy(o, StudyNameWaveforms); err == nil {
		t.Error("waveforms must not be shardable")
	}
	if _, err := PlanStudy(o, "nope"); err == nil {
		t.Error("unknown study accepted")
	}
}

func TestRunUnitsRejectsForeignUnits(t *testing.T) {
	o := shardOptions()
	ctx := t.Context()
	if _, err := RunUnits(ctx, o, StudyNameCV, []UnitRef{{Study: StudyNameCV, Key: "A9", Index: 0}}); err == nil {
		t.Error("unit outside the module selection accepted")
	}
	if _, err := RunUnits(ctx, o, StudyNameCV, []UnitRef{{Study: StudyNameTRCD, Key: "B3", Index: 0}}); err == nil {
		t.Error("unit of a different study accepted")
	}
	if _, err := RunUnits(ctx, o, StudyNameCV, []UnitRef{{Study: StudyNameCV, Key: "B3", Index: 5}}); err == nil {
		t.Error("unit with wrong index accepted")
	}
}

// runStudyViaUnits executes the study's full plan through the serialized
// unit path — optionally split into k alternating "shards" run separately —
// and assembles the result, i.e. exactly what a sharded campaign does.
func runStudyViaUnits(t *testing.T, o Options, study string, k int) map[string]json.RawMessage {
	t.Helper()
	plan, err := PlanStudy(o, study)
	if err != nil {
		t.Fatal(err)
	}
	data := make(map[string]json.RawMessage, len(plan))
	for shard := 0; shard < k; shard++ {
		var units []UnitRef
		for i, u := range plan {
			if i%k == shard {
				units = append(units, u)
			}
		}
		payloads, err := RunUnits(t.Context(), o, study, units)
		if err != nil {
			t.Fatalf("%s shard %d/%d: %v", study, shard, k, err)
		}
		for i, raw := range payloads {
			data[units[i].Key] = raw
		}
	}
	return data
}

// renderStudy renders a study's experiments into one text buffer, the
// byte-level contract the equivalence tests compare on.
func renderStudy(t *testing.T, render func(enc report.Encoder) error) string {
	t.Helper()
	var buf bytes.Buffer
	if err := render(report.NewText(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestUnitPathMatchesDirectDrivers is the sharding acceptance property at
// the experiments layer: for every shardable study, running the plan's units
// through serialize->assemble (split 1-way and 2-way) reproduces the direct
// in-process driver's result exactly.
func TestUnitPathMatchesDirectDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("full study equivalence sweep in -short mode")
	}
	o := shardOptions()
	ctx := t.Context()

	t.Run(StudyNameRowHammer, func(t *testing.T) {
		direct, err := RunRowHammerStudy(ctx, o)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 2; k++ {
			st, err := AssembleRowHammerStudy(o, runStudyViaUnits(t, o, StudyNameRowHammer, k))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(st, direct) {
				t.Errorf("k=%d: assembled RowHammer study differs from direct driver", k)
			}
			want := renderStudy(t, func(enc report.Encoder) error { return enc.Table(direct.Table3()) })
			got := renderStudy(t, func(enc report.Encoder) error { return enc.Table(st.Table3()) })
			if got != want {
				t.Errorf("k=%d: Table 3 bytes diverge", k)
			}
		}
	})

	t.Run(StudyNameTRCD, func(t *testing.T) {
		direct, err := RunTRCDStudy(ctx, o)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 2; k++ {
			st, err := AssembleTRCDStudy(o, runStudyViaUnits(t, o, StudyNameTRCD, k))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(st, direct) {
				t.Errorf("k=%d: assembled tRCD study differs from direct driver", k)
			}
		}
	})

	t.Run(StudyNameRetention, func(t *testing.T) {
		direct, err := RunRetentionStudy(ctx, o)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 2; k++ {
			st, err := AssembleRetentionStudy(o, runStudyViaUnits(t, o, StudyNameRetention, k))
			if err != nil {
				t.Fatal(err)
			}
			want := renderStudy(t, direct.RenderFig10b)
			got := renderStudy(t, st.RenderFig10b)
			if got != want {
				t.Errorf("k=%d: Fig. 10b bytes diverge:\n--- direct ---\n%s\n--- units ---\n%s", k, want, got)
			}
			if !reflect.DeepEqual(st.MeanBER, direct.MeanBER) {
				t.Errorf("k=%d: MeanBER grids diverge", k)
			}
		}
	})

	t.Run(StudyNameWordAnalysis, func(t *testing.T) {
		direct, err := RunWordAnalysis(ctx, o)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 2; k++ {
			st, err := AssembleWordAnalysis(o, runStudyViaUnits(t, o, StudyNameWordAnalysis, k))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(st, direct) {
				t.Errorf("k=%d: assembled word analysis differs from direct driver", k)
			}
		}
	})

	t.Run(StudyNameCV, func(t *testing.T) {
		direct, err := RunCVStudy(ctx, o)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 2; k++ {
			st, err := AssembleCVStudy(o, runStudyViaUnits(t, o, StudyNameCV, k))
			if err != nil {
				t.Fatal(err)
			}
			if st.P90 != direct.P90 || st.P95 != direct.P95 || st.P99 != direct.P99 || st.CVs.N() != direct.CVs.N() {
				t.Errorf("k=%d: assembled CV study differs: %+v vs %+v", k, st, direct)
			}
		}
	})

	t.Run(StudyNameSpiceMC, func(t *testing.T) {
		direct, err := RunMCStudy(ctx, o)
		if err != nil {
			t.Fatal(err)
		}
		// k=2 splits the levels across two separate sweeps: per-level results
		// must match the all-levels-in-one-queue run exactly.
		for k := 1; k <= 2; k++ {
			st, err := AssembleMCStudy(o, runStudyViaUnits(t, o, StudyNameSpiceMC, k))
			if err != nil {
				t.Fatal(err)
			}
			want := renderStudy(t, direct.RenderFig8b) + renderStudy(t, direct.RenderFig9b)
			got := renderStudy(t, st.RenderFig8b) + renderStudy(t, st.RenderFig9b)
			if got != want {
				t.Errorf("k=%d: Fig. 8b/9b bytes diverge:\n--- direct ---\n%s\n--- units ---\n%s", k, want, got)
			}
		}
	})
}

// TestAssembleRejectsIncompleteOrForeignData: missing or surplus units fail
// loudly with the unit named.
func TestAssembleRejectsIncompleteOrForeignData(t *testing.T) {
	o := shardOptions()
	if _, err := AssembleCVStudy(o, map[string]json.RawMessage{}); err == nil {
		t.Error("empty data assembled")
	} else if !strings.Contains(err.Error(), "B3") {
		t.Errorf("error should name the missing unit: %v", err)
	}
	var d stats.Dist
	raw, _ := json.Marshal(d) //detlint:ignore sinkerr marshal of a zero-value fixture cannot fail
	data := map[string]json.RawMessage{"B3": raw, "C0": raw, "A9": raw}
	if _, err := AssembleCVStudy(o, data); err == nil {
		t.Error("surplus unit assembled")
	}
	bad := map[string]json.RawMessage{"B3": json.RawMessage(`{"moments":`), "C0": raw}
	if _, err := AssembleCVStudy(o, bad); err == nil {
		t.Error("corrupt payload assembled")
	}
	// Wire partials naming modules outside the catalog are rejected.
	w, _ := json.Marshal(moduleSweepWire{Module: "ZZ"}) //detlint:ignore sinkerr marshal of a literal fixture cannot fail
	rhData := map[string]json.RawMessage{"B3": w, "C0": w}
	if _, err := AssembleRowHammerStudy(o, rhData); err == nil {
		t.Error("unknown module in sweep partial accepted")
	}
}

func TestValidateRejectsNegativeJobs(t *testing.T) {
	o := shardOptions()
	o.Jobs = -1
	err := o.Validate()
	if err == nil {
		t.Fatal("negative Jobs accepted")
	}
	if !strings.Contains(err.Error(), "-1") {
		t.Errorf("error should name the offending value: %v", err)
	}
	o.Jobs = 0
	if err := o.Validate(); err != nil {
		t.Errorf("Jobs=0 rejected: %v", err)
	}
}

// TestMCLevelKeysUnique guards the unit-key encoding: every sweep level must
// format to a distinct key, or artifact units would collide.
func TestMCLevelKeysUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, vpp := range spiceSweepVPPs {
		k := mcLevelKey(vpp)
		if seen[k] {
			t.Fatalf("duplicate MC level key %q", k)
		}
		seen[k] = true
	}
	if !seen[fmt.Sprintf("%.1f", 2.5)] {
		t.Error("nominal level missing")
	}
}

// TestAssembleRetentionRejectsMalformedGrid: a corrupt artifact whose window
// dimension disagrees with the campaign grid must error, not panic.
func TestAssembleRetentionRejectsMalformedGrid(t *testing.T) {
	o := shardOptions()
	vpps, windows, _ := retentionGrid(o)
	mk := func(winCols int) json.RawMessage {
		m := ModuleRetention{Module: "B3", Sum: make([][]float64, len(vpps)),
			Count: make([][]int, len(vpps)), Rows: make([]stats.Moments, len(vpps))}
		for i := range m.Sum {
			m.Sum[i] = make([]float64, winCols)
			m.Count[i] = make([]int, winCols)
		}
		raw, _ := json.Marshal(m) //detlint:ignore sinkerr marshal of an all-numeric fixture cannot fail
		return raw
	}
	good := mk(len(windows))
	data := map[string]json.RawMessage{"B3": mk(len(windows) + 2), "C0": good}
	if _, err := AssembleRetentionStudy(o, data); err == nil {
		t.Error("extra window column accepted")
	} else if !strings.Contains(err.Error(), "window") {
		t.Errorf("error should name the window mismatch: %v", err)
	}
	if _, err := AssembleRetentionStudy(o, map[string]json.RawMessage{"B3": good, "C0": good}); err != nil {
		t.Errorf("well-formed partials rejected: %v", err)
	}
}
