package experiments

import (
	"context"

	"github.com/dramstudy/rhvpp/internal/pool"
)

// runPool maps fn over items with a bounded worker pool; see pool.Run for
// the ordering and cancellation contract. The implementation lives in
// internal/pool so the SPICE Monte-Carlo campaign shares the same pool.
func runPool[In, Out any](ctx context.Context, jobs int, items []In,
	fn func(ctx context.Context, item In) (Out, error)) ([]Out, error) {
	return pool.Run(ctx, jobs, items, fn)
}
