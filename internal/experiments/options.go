package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/spice"
)

// Options scales the experiment campaign. The paper's full scale (272 chips,
// 4K rows each, 10 iterations) runs for weeks on an FPGA; Default keeps the
// same structure at a size a laptop simulates in seconds, and Paper restores
// the full parameters.
//
// The directive below freezes the v1 canonical-fingerprint field set
// (docs/CONTRACTS.md, "Fingerprint completeness"): fields added later must
// carry `json:",omitempty"` so shard artifacts produced before the addition
// still merge with ones produced after.
//
//detlint:fingerprint v1=Seed,Geometry,Config,Chunks,RowsPerChunk,ModuleNames,VPPStride,SpiceMCRuns,RetentionVPPLevels,Jobs
type Options struct {
	// Seed selects the simulated device population.
	Seed uint64
	// Geometry is the simulated array organization.
	Geometry physics.Geometry
	// Config is the methodology parameter set (iterations, search steps).
	Config core.Config
	// Chunks and RowsPerChunk select the tested victim rows per module
	// (the paper uses 4 chunks of 1K rows).
	Chunks, RowsPerChunk int
	// ModuleNames restricts the campaign to a subset of Table 3 modules;
	// empty means all 30. Unknown names are an error (see Validate).
	ModuleNames []string
	// VPPStride subsamples the 0.1 V sweep (1 = every level, 2 = every
	// other level, ...). The nominal level and VPPmin are always included.
	VPPStride int
	// SpiceMCRuns is the Monte-Carlo campaign size per VPP level for the
	// Fig. 8b / 9b distributions (the paper runs 10K).
	SpiceMCRuns int
	// RetentionVPPLevels are the voltages swept by the Fig. 10 retention
	// study (clamped per module to its VPPmin).
	RetentionVPPLevels []float64
	// Jobs bounds how many module testbeds are characterized concurrently
	// (0 = one worker per CPU). Results are merged in catalog order, so
	// any value produces byte-identical output.
	Jobs int
	// SpiceFixedGrid forces the SPICE Monte-Carlo onto the historical fixed
	// 25 ps integration grid instead of adaptive error-controlled stepping.
	// The default adaptive configuration reports crossings quantized onto
	// the same grid with identical values, so this knob exists for A/B
	// benchmarking, not correctness. Omitted from the canonical options
	// encoding when default, so existing shard artifacts stay mergeable.
	SpiceFixedGrid bool `json:",omitempty"`
	// SpiceLTETolV overrides the adaptive engine's step-doubling error
	// tolerance in volts (0 = spice.DefaultLTETolV). Values beyond the
	// default loosen the fixed-grid-equivalence guarantee; see
	// docs/ARCHITECTURE.md for the accuracy contract.
	SpiceLTETolV float64 `json:",omitempty"`
	// SpiceBatchWidth sets how many Monte-Carlo runs the SPICE engine
	// advances in lockstep per worker (0 = the engine default, 1 = the
	// scalar path, up to spice.MaxBatchWidth). Every width produces
	// byte-identical campaign output — lanes replicate the scalar engine's
	// float-op sequence exactly — so this is a throughput knob, excluded
	// from the canonical options fingerprint like Jobs.
	SpiceBatchWidth int `json:",omitempty"`
}

// Default returns a laptop-scale campaign preserving the paper's structure.
func Default() Options {
	return Options{
		Seed:               2022,
		Geometry:           physics.Geometry{Banks: 1, RowsPerBank: 8192, RowBytes: 1024, SubarrayRows: 512},
		Config:             core.Quick(),
		Chunks:             4,
		RowsPerChunk:       6,
		VPPStride:          2,
		SpiceMCRuns:        200,
		RetentionVPPLevels: []float64{2.5, 2.1, 1.9, 1.7, 1.5},
	}
}

// Paper returns the full-scale parameters (very slow; provided for
// completeness and documented in EXPERIMENTS.md).
func Paper() Options {
	o := Default()
	o.Geometry = physics.FullGeometry()
	o.Config = core.Default()
	o.RowsPerChunk = 1000
	o.VPPStride = 1
	o.SpiceMCRuns = 10000
	o.RetentionVPPLevels = []float64{2.5, 2.4, 2.3, 2.2, 2.1, 2.0, 1.9, 1.8, 1.7, 1.6, 1.5}
	return o
}

// KnownModuleNames lists the Table 3 labels in catalog order.
func KnownModuleNames() []string {
	all := physics.Profiles()
	names := make([]string, 0, len(all))
	for _, p := range all {
		names = append(names, p.Name)
	}
	return names
}

// Validate rejects campaigns that would silently test the wrong population
// (every entry of ModuleNames must be a Table 3 label, with no duplicates)
// or misread their own knobs: a negative Jobs is an error — it is neither
// "serial" (that is 1) nor "one per CPU" (that is 0), so accepting it would
// quietly run a configuration the caller never asked for.
func (o Options) Validate() error {
	if o.Jobs < 0 {
		return fmt.Errorf("experiments: Jobs %d is negative (use 0 for one worker per CPU, or a positive worker count)", o.Jobs)
	}
	if o.SpiceLTETolV < 0 {
		return fmt.Errorf("experiments: SpiceLTETolV %g is negative (use 0 for the engine default, or a positive tolerance in volts)", o.SpiceLTETolV)
	}
	if o.SpiceBatchWidth < 0 || o.SpiceBatchWidth > spice.MaxBatchWidth {
		return fmt.Errorf("experiments: SpiceBatchWidth %d is outside [0, %d] (use 0 for the engine default, 1 for the scalar path)", o.SpiceBatchWidth, spice.MaxBatchWidth)
	}
	_, err := o.profiles()
	return err
}

// profiles resolves the module subset in catalog order, erroring on names
// outside the tested population (the old behavior of quietly dropping them
// made e.g. a typo in -modules shrink the campaign without a trace).
func (o Options) profiles() ([]physics.ModuleProfile, error) {
	all := physics.Profiles()
	if len(o.ModuleNames) == 0 {
		return all, nil
	}
	byName := make(map[string]physics.ModuleProfile, len(all))
	for _, p := range all {
		byName[p.Name] = p
	}
	var unknown []string
	seen := make(map[string]bool, len(o.ModuleNames))
	out := make([]physics.ModuleProfile, 0, len(o.ModuleNames))
	for _, name := range o.ModuleNames {
		p, ok := byName[name]
		switch {
		case !ok:
			unknown = append(unknown, name)
		case seen[name]:
			return nil, fmt.Errorf("experiments: module %q selected twice", name)
		default:
			seen[name] = true
			out = append(out, p)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("experiments: unknown module(s) %s (known Table 3 labels: %s)",
			strings.Join(unknown, ", "), strings.Join(KnownModuleNames(), " "))
	}
	return out, nil
}

// FirstModule returns the first selected module name, or the fallback when
// the campaign covers the full population. The fallback must itself be a
// Table 3 label; drivers resolve it with physics.ProfileByName and error
// otherwise.
func (o Options) FirstModule(fallback string) string {
	if len(o.ModuleNames) > 0 {
		return o.ModuleNames[0]
	}
	return fallback
}

// jobs resolves the worker-pool bound.
func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// vppLevels returns the swept voltages for a module, honoring the stride
// while always keeping the endpoints.
func (o Options) vppLevels(p physics.ModuleProfile) []float64 {
	full := p.VPPLevels()
	stride := o.VPPStride
	if stride < 1 {
		stride = 1
	}
	var out []float64
	for i, v := range full {
		if i%stride == 0 || i == len(full)-1 {
			out = append(out, v)
		}
	}
	return out
}

// selectVictims returns tested rows that have a usable aggressor pair.
func selectVictims(t *core.Tester, o Options) []int {
	var out []int
	for _, r := range core.SelectRows(o.Geometry, o.Chunks, o.RowsPerChunk) {
		if _, _, err := t.AggressorsFor(r); err == nil {
			out = append(out, r)
		}
	}
	return out
}
