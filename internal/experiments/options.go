// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the ablation studies listed in DESIGN.md. Each
// driver assembles a testbed per module, runs the core characterization
// algorithms across the VPP sweep, and returns structured results together
// with render helpers that print the same rows/series the paper reports.
package experiments

import (
	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/physics"
)

// Options scales the experiment campaign. The paper's full scale (272 chips,
// 4K rows each, 10 iterations) runs for weeks on an FPGA; Default keeps the
// same structure at a size a laptop simulates in seconds, and Paper restores
// the full parameters.
type Options struct {
	// Seed selects the simulated device population.
	Seed uint64
	// Geometry is the simulated array organization.
	Geometry physics.Geometry
	// Config is the methodology parameter set (iterations, search steps).
	Config core.Config
	// Chunks and RowsPerChunk select the tested victim rows per module
	// (the paper uses 4 chunks of 1K rows).
	Chunks, RowsPerChunk int
	// ModuleNames restricts the campaign to a subset of Table 3 modules;
	// empty means all 30.
	ModuleNames []string
	// VPPStride subsamples the 0.1 V sweep (1 = every level, 2 = every
	// other level, ...). The nominal level and VPPmin are always included.
	VPPStride int
	// SpiceMCRuns is the Monte-Carlo campaign size per VPP level for the
	// Fig. 8b / 9b distributions (the paper runs 10K).
	SpiceMCRuns int
	// RetentionVPPLevels are the voltages swept by the Fig. 10 retention
	// study (clamped per module to its VPPmin).
	RetentionVPPLevels []float64
}

// Default returns a laptop-scale campaign preserving the paper's structure.
func Default() Options {
	return Options{
		Seed:               2022,
		Geometry:           physics.Geometry{Banks: 1, RowsPerBank: 8192, RowBytes: 1024, SubarrayRows: 512},
		Config:             core.Quick(),
		Chunks:             4,
		RowsPerChunk:       6,
		VPPStride:          2,
		SpiceMCRuns:        200,
		RetentionVPPLevels: []float64{2.5, 2.1, 1.9, 1.7, 1.5},
	}
}

// Paper returns the full-scale parameters (very slow; provided for
// completeness and documented in EXPERIMENTS.md).
func Paper() Options {
	o := Default()
	o.Geometry = physics.FullGeometry()
	o.Config = core.Default()
	o.RowsPerChunk = 1000
	o.VPPStride = 1
	o.SpiceMCRuns = 10000
	o.RetentionVPPLevels = []float64{2.5, 2.4, 2.3, 2.2, 2.1, 2.0, 1.9, 1.8, 1.7, 1.6, 1.5}
	return o
}

// profiles resolves the module subset.
func (o Options) profiles() []physics.ModuleProfile {
	all := physics.Profiles()
	if len(o.ModuleNames) == 0 {
		return all
	}
	var out []physics.ModuleProfile
	for _, name := range o.ModuleNames {
		for _, p := range all {
			if p.Name == name {
				out = append(out, p)
			}
		}
	}
	return out
}

// vppLevels returns the swept voltages for a module, honoring the stride
// while always keeping the endpoints.
func (o Options) vppLevels(p physics.ModuleProfile) []float64 {
	full := p.VPPLevels()
	stride := o.VPPStride
	if stride < 1 {
		stride = 1
	}
	var out []float64
	for i, v := range full {
		if i%stride == 0 || i == len(full)-1 {
			out = append(out, v)
		}
	}
	return out
}

// selectVictims returns tested rows that have a usable aggressor pair.
func selectVictims(t *core.Tester, o Options) []int {
	var out []int
	for _, r := range core.SelectRows(o.Geometry, o.Chunks, o.RowsPerChunk) {
		if _, _, err := t.AggressorsFor(r); err == nil {
			out = append(out, r)
		}
	}
	return out
}
