package experiments

import (
	"context"
	"fmt"

	"github.com/dramstudy/rhvpp/internal/core"
	"github.com/dramstudy/rhvpp/internal/infra"
	"github.com/dramstudy/rhvpp/internal/mitigation"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// VPPPoint is one voltage step of a module's RowHammer sweep.
type VPPPoint struct {
	VPP float64
	// ModuleHCFirst is the minimum HCfirst across tested rows (the Table 3
	// module-level metric).
	ModuleHCFirst float64
	// ModuleBER is the mean BER across tested rows at the reference hammer
	// count.
	ModuleBER float64
	// NormHC / NormBER summarize the per-row values normalized to the same
	// row's nominal-VPP value (mean and the 90% band of Figs. 3 and 5).
	NormHC  stats.ConfidenceInterval
	NormBER stats.ConfidenceInterval
}

// ModuleSweep is the full RowHammer-vs-VPP characterization of one module.
type ModuleSweep struct {
	Profile physics.ModuleProfile
	Rows    []int
	WCDP    map[int]pattern.Kind
	Points  []VPPPoint // descending VPP; Points[0] is nominal
	// RowNormHCAtMin / RowNormBERAtMin summarize the per-row normalized
	// values at VPPmin (the populations of Figs. 4 and 6) as streaming
	// exact distributions: histograms, extremes, and fractions derived from
	// them are bit-identical to retaining the raw per-row values.
	RowNormHCAtMin  stats.Dist
	RowNormBERAtMin stats.Dist
}

// PointAt returns the sweep point measured at the given voltage.
func (s ModuleSweep) PointAt(vpp float64) (VPPPoint, bool) {
	for _, p := range s.Points {
		if p.VPP == vpp {
			return p, true
		}
	}
	return VPPPoint{}, false
}

// Nominal returns the 2.5 V point.
func (s ModuleSweep) Nominal() VPPPoint { return s.Points[0] }

// AtVPPMin returns the lowest-voltage point.
func (s ModuleSweep) AtVPPMin() VPPPoint { return s.Points[len(s.Points)-1] }

// RunModuleSweep characterizes one module across its VPP range: WCDP
// profiling at nominal voltage, then HCfirst and BER per row per level
// (Alg. 1 through the SoftMC controller on the assembled testbed).
func RunModuleSweep(ctx context.Context, o Options, prof physics.ModuleProfile) (ModuleSweep, error) {
	tb := infra.NewTestbed(prof, o.Geometry, o.Seed)
	tester := core.NewTester(tb.Controller, o.Config).WithContext(ctx)
	sweep := ModuleSweep{Profile: prof, WCDP: make(map[int]pattern.Kind)}
	sweep.Rows = selectVictims(tester, o)
	if len(sweep.Rows) == 0 {
		return sweep, fmt.Errorf("module %s: no testable victim rows", prof.Name)
	}

	// WCDP is profiled once at nominal VPP and reused at reduced levels
	// (§4.1 "Data Patterns").
	if err := tb.SetVPP(physics.VPPNominal); err != nil {
		return sweep, err
	}
	for _, row := range sweep.Rows {
		k, err := tester.SelectWCDP(row)
		if err != nil {
			return sweep, fmt.Errorf("module %s row %d WCDP: %w", prof.Name, row, err)
		}
		sweep.WCDP[row] = k
	}

	type rowSeries struct{ hc, ber []float64 }
	series := make(map[int]*rowSeries, len(sweep.Rows))
	for _, row := range sweep.Rows {
		series[row] = &rowSeries{}
	}

	levels := o.vppLevels(prof)
	for _, vpp := range levels {
		if err := ctx.Err(); err != nil {
			return sweep, err
		}
		if err := tb.SetVPP(vpp); err != nil {
			return sweep, err
		}
		pt := VPPPoint{VPP: vpp}
		var hcMin stats.MinMax
		var berMean stats.Moments
		for _, row := range sweep.Rows {
			res, err := tester.CharacterizeRow(row, sweep.WCDP[row])
			if err != nil {
				return sweep, fmt.Errorf("module %s row %d at %.1fV: %w", prof.Name, row, vpp, err)
			}
			s := series[row]
			s.hc = append(s.hc, float64(res.HCFirst))
			s.ber = append(s.ber, res.BER)
			hcMin.Add(float64(res.HCFirst))
			berMean.Add(res.BER)
		}
		pt.ModuleHCFirst, _ = hcMin.Min()
		pt.ModuleBER = berMean.Mean()
		sweep.Points = append(sweep.Points, pt)
	}

	// Normalized per-row populations relative to the nominal level, folded
	// into streaming distributions as they are derived.
	for li := range levels {
		var normHC, normBER stats.Dist
		for _, row := range sweep.Rows {
			s := series[row]
			if s.hc[0] > 0 {
				normHC.Add(s.hc[li] / s.hc[0])
			}
			if s.ber[0] > 0 {
				normBER.Add(s.ber[li] / s.ber[0])
			}
		}
		if ci, err := normHC.CI(0.90); err == nil {
			sweep.Points[li].NormHC = ci
		}
		if ci, err := normBER.CI(0.90); err == nil {
			sweep.Points[li].NormBER = ci
		}
		if li == len(levels)-1 {
			sweep.RowNormHCAtMin = normHC
			sweep.RowNormBERAtMin = normBER
		}
	}
	return sweep, nil
}

// RowHammerStudy is the full Fig. 3-6 / Table 3 campaign across modules.
type RowHammerStudy struct {
	Sweeps []ModuleSweep
}

// RunRowHammerStudy sweeps every selected module, Options.Jobs modules at a
// time. Each module owns an independent deterministic testbed and the sweeps
// are stored in catalog order, so the study is identical at any worker count.
func RunRowHammerStudy(ctx context.Context, o Options) (RowHammerStudy, error) {
	profs, err := o.profiles()
	if err != nil {
		return RowHammerStudy{}, err
	}
	sweeps, err := runPool(ctx, o.jobs(), profs,
		func(ctx context.Context, prof physics.ModuleProfile) (ModuleSweep, error) {
			return RunModuleSweep(ctx, o, prof)
		})
	if err != nil {
		return RowHammerStudy{}, err
	}
	return RowHammerStudy{Sweeps: sweeps}, nil
}

// RenderFig3 emits the normalized BER curves (one panel per manufacturer).
func (st RowHammerStudy) RenderFig3(enc report.Encoder) error {
	return st.renderNormPanels(enc, "Fig. 3: Normalized RowHammer BER vs VPP",
		func(p VPPPoint) float64 { return p.NormBER.Mean })
}

// RenderFig5 emits the normalized HCfirst curves.
func (st RowHammerStudy) RenderFig5(enc report.Encoder) error {
	return st.renderNormPanels(enc, "Fig. 5: Normalized HCfirst vs VPP",
		func(p VPPPoint) float64 { return p.NormHC.Mean })
}

func (st RowHammerStudy) renderNormPanels(enc report.Encoder, title string, pick func(VPPPoint) float64) error {
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		plot := report.LinePlot{
			Title:  fmt.Sprintf("%s - Mfr. %s", title, mfr),
			XLabel: "VPP (V)", YLabel: "normalized",
			Width: 64, Height: 12,
		}
		for _, sw := range st.Sweeps {
			if sw.Profile.Mfr != mfr {
				continue
			}
			s := report.Series{Name: sw.Profile.Name}
			for _, p := range sw.Points {
				s.X = append(s.X, p.VPP)
				s.Y = append(s.Y, pick(p))
			}
			plot.Series = append(plot.Series, s)
		}
		if len(plot.Series) == 0 {
			continue
		}
		if err := enc.Plot(&plot); err != nil {
			return err
		}
	}
	return nil
}

// PopulationHistogram bins the per-row normalized values at VPPmin for one
// manufacturer (Figs. 4 and 6) from the streamed per-module distributions,
// merged in catalog order — identical to binning the raw values.
func (st RowHammerStudy) PopulationHistogram(mfr physics.Manufacturer, hcFirst bool, bins int) (stats.Histogram, error) {
	var d stats.Dist
	for _, sw := range st.Sweeps {
		if sw.Profile.Mfr != mfr {
			continue
		}
		if hcFirst {
			d.Merge(sw.RowNormHCAtMin)
		} else {
			d.Merge(sw.RowNormBERAtMin)
		}
	}
	lo, hi, err := d.Counts.Range()
	if err != nil {
		return stats.Histogram{}, err
	}
	if hi <= lo {
		hi = lo + 0.01
	}
	return d.Histogram(lo, hi, bins)
}

// RenderFig4 and RenderFig6 emit the population distributions.
func (st RowHammerStudy) RenderFig4(enc report.Encoder) error { return st.renderPopulation(enc, false) }

// RenderFig6 emits the HCfirst population distribution at VPPmin.
func (st RowHammerStudy) RenderFig6(enc report.Encoder) error { return st.renderPopulation(enc, true) }

func (st RowHammerStudy) renderPopulation(enc report.Encoder, hcFirst bool) error {
	metric := "BER"
	fig := "Fig. 4"
	if hcFirst {
		metric = "HCfirst"
		fig = "Fig. 6"
	}
	for _, mfr := range []physics.Manufacturer{physics.MfrA, physics.MfrB, physics.MfrC} {
		h, err := st.PopulationHistogram(mfr, hcFirst, 12)
		if err != nil {
			continue
		}
		chart := report.BarChart{
			Title: fmt.Sprintf("%s: normalized %s at VPPmin - Mfr. %s (rows: %d)", fig, metric, mfr, h.Total),
			Width: 40,
		}
		for _, b := range h.Bins {
			chart.Labels = append(chart.Labels, fmt.Sprintf("%.2f-%.2f", b.Lo, b.Hi))
			chart.Values = append(chart.Values, b.Fraction)
		}
		if err := enc.Bars(&chart); err != nil {
			return err
		}
	}
	return nil
}

// Table3 builds the per-module characterization table: the operating points
// at nominal VPP, at VPPmin, and at the policy-recommended VPP.
func (st RowHammerStudy) Table3() *report.Table {
	t := &report.Table{
		Title: "Table 3: module RowHammer characteristics under VPP scaling",
		Headers: []string{"DIMM", "Mfr", "HCfirst@2.5V", "BER@2.5V",
			"VPPmin", "HCfirst@min", "BER@min", "VPPrec", "HCfirst@rec", "BER@rec"},
	}
	for _, sw := range st.Sweeps {
		var vpps, hcs, bers []float64
		for _, p := range sw.Points {
			vpps = append(vpps, p.VPP)
			hcs = append(hcs, p.ModuleHCFirst)
			bers = append(bers, p.ModuleBER)
		}
		rec, idx, err := mitigation.RecommendVPP(vpps, hcs, bers)
		if err != nil {
			continue
		}
		nom, min := sw.Nominal(), sw.AtVPPMin()
		t.Add(sw.Profile.Name, sw.Profile.Mfr.String(),
			nom.ModuleHCFirst, fmt.Sprintf("%.2e", nom.ModuleBER),
			min.VPP, min.ModuleHCFirst, fmt.Sprintf("%.2e", min.ModuleBER),
			rec, sw.Points[idx].ModuleHCFirst, fmt.Sprintf("%.2e", sw.Points[idx].ModuleBER))
	}
	return t
}

// Aggregates are the §5 summary statistics.
type Aggregates struct {
	MeanHCIncreasePct float64 // paper: +7.4%
	MaxHCIncreasePct  float64 // paper: +85.8%
	MeanBERChangePct  float64 // paper: -15.2%
	MaxBERDropPct     float64 // paper: -66.9%
	FracRowsHCUp      float64 // paper: 69.3%
	FracRowsHCDown    float64 // paper: 14.2%
	FracRowsBERDown   float64 // paper: 81.2%
	FracRowsBERUp     float64 // paper: 15.4%
}

// Section5Aggregates computes the row-level aggregates at VPPmin across all
// swept modules by merging the per-module streamed populations in catalog
// order.
func (st RowHammerStudy) Section5Aggregates() Aggregates {
	var normHC, normBER stats.Dist
	for _, sw := range st.Sweeps {
		normHC.Merge(sw.RowNormHCAtMin)
		normBER.Merge(sw.RowNormBERAtMin)
	}
	var a Aggregates
	if normHC.N() == 0 {
		return a
	}
	a.MeanHCIncreasePct = (normHC.Mean() - 1) * 100
	a.MaxHCIncreasePct = (normHC.Max() - 1) * 100
	a.MeanBERChangePct = (normBER.Mean() - 1) * 100
	a.MaxBERDropPct = (1 - normBER.Min()) * 100
	a.FracRowsHCUp = normHC.FractionAbove(1)
	a.FracRowsHCDown = normHC.FractionBelow(1)
	a.FracRowsBERDown = normBER.FractionBelow(1)
	a.FracRowsBERUp = normBER.FractionAbove(1)
	return a
}

// Render emits the aggregates next to the paper's published values.
func (a Aggregates) Render(enc report.Encoder) error {
	t := &report.Table{
		Title:   "Section 5 aggregates at VPPmin (measured vs paper)",
		Headers: []string{"metric", "measured", "paper"},
	}
	t.Add("mean HCfirst increase %", fmt.Sprintf("%.1f", a.MeanHCIncreasePct), "7.4")
	t.Add("max HCfirst increase %", fmt.Sprintf("%.1f", a.MaxHCIncreasePct), "85.8")
	t.Add("mean BER change %", fmt.Sprintf("%.1f", a.MeanBERChangePct), "-15.2")
	t.Add("max BER reduction %", fmt.Sprintf("%.1f", a.MaxBERDropPct), "66.9")
	t.Add("rows with HCfirst increase", fmt.Sprintf("%.3f", a.FracRowsHCUp), "0.693")
	t.Add("rows with HCfirst decrease", fmt.Sprintf("%.3f", a.FracRowsHCDown), "0.142")
	t.Add("rows with BER decrease", fmt.Sprintf("%.3f", a.FracRowsBERDown), "0.812")
	t.Add("rows with BER increase", fmt.Sprintf("%.3f", a.FracRowsBERUp), "0.154")
	return enc.Table(t)
}
