package dram

import "github.com/dramstudy/rhvpp/internal/rng"

// trrDefense is the in-DRAM target-row-refresh contract: observe
// activations between REF commands, and name victim rows to refresh when a
// REF arrives.
type trrDefense interface {
	observeActivations(phys, count int)
	victimsToRefresh(rowsPerBank int) []int
}

// trrEngine emulates an in-DRAM target-row-refresh defense in the style of
// the mechanisms reverse-engineered by TRRespass and U-TRR: a small table of
// frequency counters (Misra-Gries style) samples aggressor candidates during
// activations, and each REF command spends its slack refreshing the
// neighbors of the hottest tracked row.
//
// The paper's methodology deliberately starves TRR by never issuing REF
// commands during tests ("as all TRR defenses require refresh commands to
// work", §4.1); the engine exists so the ablation benches can demonstrate
// exactly that interaction.
type trrEngine struct {
	capacity int
	counts   map[int]int // physical row -> activation count since last REF
}

func newTRREngine(capacity int) *trrEngine {
	if capacity < 1 {
		capacity = 1
	}
	return &trrEngine{capacity: capacity, counts: make(map[int]int, capacity)}
}

// observeActivations feeds the tracker with count activations of a physical
// row, using Misra-Gries eviction when the table is full so heavy hitters
// survive.
func (e *trrEngine) observeActivations(phys, count int) {
	if c, ok := e.counts[phys]; ok {
		e.counts[phys] = c + count
		return
	}
	if len(e.counts) < e.capacity {
		e.counts[phys] = count
		return
	}
	// Misra-Gries: decrement all by the new arrival's weight; evict zeros.
	min := count
	for _, c := range e.counts {
		if c < min {
			min = c
		}
	}
	for r, c := range e.counts {
		if c-min <= 0 {
			delete(e.counts, r)
		} else {
			e.counts[r] = c - min
		}
	}
	if rem := count - min; rem > 0 && len(e.counts) < e.capacity {
		e.counts[phys] = rem
	}
}

// victimsToRefresh returns the physical neighbors of the hottest tracked
// aggressor and resets its counter. Called on each REF command.
func (e *trrEngine) victimsToRefresh(rowsPerBank int) []int {
	best, bestCount := -1, 0
	for r, c := range e.counts {
		if c > bestCount || (c == bestCount && r < best) {
			best, bestCount = r, c
		}
	}
	if best < 0 {
		return nil
	}
	delete(e.counts, best)
	var victims []int
	for _, v := range []int{best - 1, best + 1} {
		if v >= 0 && v < rowsPerBank {
			victims = append(victims, v)
		}
	}
	return victims
}

// samplingTRR emulates the sampling-based trackers found in several
// commodity DDR4 devices (as reverse-engineered by TRRespass/U-TRR): each
// activation has a fixed probability of being captured as the "suspect"
// aggressor, and the next REF refreshes the suspect's neighbors. Unlike the
// Misra-Gries engine, a sampler can be diluted by decoy activations — the
// weakness many-sided attacks exploit.
type samplingTRR struct {
	prob    float64
	stream  *rng.Stream
	suspect int
	armed   bool
}

func newSamplingTRR(prob float64, seed uint64) *samplingTRR {
	if prob <= 0 {
		prob = 1.0 / 512
	}
	return &samplingTRR{prob: prob, stream: rng.New(seed).Derive("samplingtrr")}
}

// observeActivations captures the row as the suspect with probability
// 1-(1-p)^count (at least one of the count activations sampled).
func (s *samplingTRR) observeActivations(phys, count int) {
	if count <= 0 {
		return
	}
	pAny := 1.0
	if s.prob < 1 {
		pAny = 1 - pow1m(s.prob, count)
	}
	if s.stream.Bool(pAny) {
		s.suspect = phys
		s.armed = true
	}
}

// pow1m computes (1-p)^n without math.Pow for small p stability.
func pow1m(p float64, n int) float64 {
	r := 1.0
	base := 1 - p
	for n > 0 {
		if n&1 == 1 {
			r *= base
		}
		base *= base
		n >>= 1
	}
	return r
}

// victimsToRefresh returns the suspect's neighbors and disarms the tracker.
func (s *samplingTRR) victimsToRefresh(rowsPerBank int) []int {
	if !s.armed {
		return nil
	}
	s.armed = false
	var victims []int
	for _, v := range []int{s.suspect - 1, s.suspect + 1} {
		if v >= 0 && v < rowsPerBank {
			victims = append(victims, v)
		}
	}
	return victims
}
