package dram

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/rng"
)

// TestQuickRandomCommandSequences drives the module with arbitrary command
// streams: every command must either succeed or fail with one of the typed
// protocol errors — never panic, never corrupt the device invariants.
func TestQuickRandomCommandSequences(t *testing.T) {
	p, _ := physics.ProfileByName("B0")
	f := func(seed uint64, ops []byte) bool {
		m := NewModule(p, testGeometry(), 3, WithScheme(mapping.Direct{}))
		s := rng.New(seed)
		at := PS(0)
		for _, op := range ops {
			at += PS(s.Intn(100_000) + 1)
			bank := s.Intn(3) - 1 // occasionally invalid
			row := s.Intn(m.Geometry().RowsPerBank+10) - 5
			col := s.Intn(m.Geometry().Columns()+2) - 1
			var err error
			switch op % 7 {
			case 0:
				err = m.Activate(at, bank, row)
			case 1:
				err = m.Precharge(at, bank)
			case 2:
				_, err = m.Read(at, bank, col)
			case 3:
				err = m.Write(at, bank, col, make([]byte, BurstBytes))
			case 4:
				err = m.ActivateMany(at, bank, row, s.Intn(5000))
				at = m.Now()
			case 5:
				err = m.Refresh(at)
			case 6:
				err = m.Wait(at)
			}
			if err != nil && !isProtocolError(err) {
				t.Logf("op %d: unexpected error type: %v", op, err)
				return false
			}
			if m.Now() > at {
				at = m.Now()
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func isProtocolError(err error) bool {
	for _, want := range []error{ErrNoComm, ErrBankOpen, ErrBankClosed, ErrBadAddress, ErrTimeRegression} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// TestQuickReadAfterWriteIntegrity verifies that within the retention-safe
// window and without hammering, every written row image reads back exactly.
func TestQuickReadAfterWriteIntegrity(t *testing.T) {
	p, _ := physics.ProfileByName("A3")
	f := func(seed uint64, fillRaw byte, rowRaw uint16) bool {
		m := NewModule(p, testGeometry(), 3, WithScheme(mapping.Direct{}))
		row := int(rowRaw) % m.Geometry().RowsPerBank
		image := make([]byte, m.Geometry().RowBytes)
		s := rng.New(seed)
		for i := range image {
			image[i] = byte(s.Intn(256))
		}
		at := PS(0)
		if err := m.Activate(at, 0, row); err != nil {
			return false
		}
		at += NSToPS(physics.TRCDNominalNS)
		if err := m.WriteRow(at, 0, row, image); err != nil {
			return false
		}
		at += NSToPS(physics.TRASNominalNS)
		if err := m.Precharge(at, 0); err != nil {
			return false
		}
		at += NSToPS(physics.TRPNominalNS)
		if err := m.Activate(at, 0, row); err != nil {
			return false
		}
		at += NSToPS(physics.TRCDNominalNS * 2) // generous timing
		for col := 0; col < m.Geometry().Columns(); col++ {
			d, err := m.Read(at, 0, col)
			if err != nil {
				return false
			}
			for i, b := range d {
				if b != image[col*BurstBytes+i] {
					return false
				}
			}
			at += NSToPS(5)
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickHammerMonotonicity: for any victim and hammer counts a < b, the
// observed flip count at b is at least the count at a (physical damage
// accumulates).
func TestQuickHammerMonotonicity(t *testing.T) {
	p, _ := physics.ProfileByName("B0")
	f := func(rowRaw uint16, aRaw, bRaw uint32) bool {
		row := 100 + int(rowRaw)%400
		a := int(aRaw % 300_000)
		b := a + int(bRaw%300_000)
		flipsAt := func(hc int) int {
			m := NewModule(p, testGeometry(), 9, WithScheme(mapping.Direct{}))
			at := PS(0)
			init := func(r int, fill byte) {
				_ = m.Activate(at, 0, r)
				at += NSToPS(14)
				img := make([]byte, m.Geometry().RowBytes)
				for i := range img {
					img[i] = fill
				}
				_ = m.WriteRow(at, 0, r, img)
				at += NSToPS(35)
				_ = m.Precharge(at, 0)
				at += NSToPS(14)
			}
			init(row, 0xFF)
			init(row-1, 0x00)
			init(row+1, 0x00)
			_ = m.ActivateMany(at, 0, row-1, hc)
			_ = m.ActivateMany(m.Now(), 0, row+1, hc)
			at = m.Now()
			_ = m.Activate(at, 0, row)
			at += NSToPS(30)
			flips := 0
			for col := 0; col < m.Geometry().Columns(); col++ {
				d, err := m.Read(at, 0, col)
				if err != nil {
					return -1
				}
				for _, v := range d {
					x := v ^ 0xFF
					for x != 0 {
						x &= x - 1
						flips++
					}
				}
				at += NSToPS(5)
			}
			return flips
		}
		fa, fb := flipsAt(a), flipsAt(b)
		return fa >= 0 && fb >= fa
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
