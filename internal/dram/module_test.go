package dram

import (
	"bytes"
	"errors"
	"testing"

	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/physics"
)

func testGeometry() physics.Geometry {
	return physics.Geometry{Banks: 2, RowsPerBank: 2048, RowBytes: 1024, SubarrayRows: 512}
}

func newTestModule(t *testing.T, name string, opts ...Option) *Module {
	t.Helper()
	p, ok := physics.ProfileByName(name)
	if !ok {
		t.Fatalf("profile %s missing", name)
	}
	return NewModule(p, testGeometry(), 42, opts...)
}

// initRow opens, fills, and closes a row with the given pattern byte.
func initRow(t *testing.T, m *Module, at PS, bank, row int, fill byte) PS {
	t.Helper()
	if err := m.Activate(at, bank, row); err != nil {
		t.Fatalf("activate row %d: %v", row, err)
	}
	at += NSToPS(physics.TRCDNominalNS)
	image := bytes.Repeat([]byte{fill}, m.Geometry().RowBytes)
	if err := m.WriteRow(at, bank, row, image); err != nil {
		t.Fatalf("write row %d: %v", row, err)
	}
	at += NSToPS(physics.TRASNominalNS)
	if err := m.Precharge(at, bank); err != nil {
		t.Fatalf("precharge: %v", err)
	}
	return at + NSToPS(physics.TRPNominalNS)
}

// readRow reads a full row with nominal timing and returns the data.
func readRow(t *testing.T, m *Module, at PS, bank, row int) ([]byte, PS) {
	t.Helper()
	if err := m.Activate(at, bank, row); err != nil {
		t.Fatalf("activate for read: %v", err)
	}
	at += NSToPS(physics.TRCDNominalNS)
	out := make([]byte, 0, m.Geometry().RowBytes)
	for col := 0; col < m.Geometry().Columns(); col++ {
		d, err := m.Read(at, bank, col)
		if err != nil {
			t.Fatalf("read col %d: %v", col, err)
		}
		out = append(out, d...)
		at += NSToPS(5)
	}
	if err := m.Precharge(at, bank); err != nil {
		t.Fatalf("precharge after read: %v", err)
	}
	return out, at + NSToPS(physics.TRPNominalNS)
}

func countFlips(data []byte, fill byte) int {
	n := 0
	for _, b := range data {
		x := b ^ fill
		for x != 0 {
			x &= x - 1
			n++
		}
	}
	return n
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := newTestModule(t, "A3")
	at := initRow(t, m, 0, 0, 100, 0xAA)
	data, _ := readRow(t, m, at, 0, 100)
	if flips := countFlips(data, 0xAA); flips != 0 {
		t.Errorf("clean round trip has %d flips", flips)
	}
}

func TestProtocolErrors(t *testing.T) {
	m := newTestModule(t, "A3")
	if err := m.Activate(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Activate(NSToPS(10), 0, 2); !errors.Is(err, ErrBankOpen) {
		t.Errorf("double activate err = %v, want ErrBankOpen", err)
	}
	if err := m.Precharge(NSToPS(50), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(NSToPS(60), 0, 0); !errors.Is(err, ErrBankClosed) {
		t.Errorf("read on closed bank err = %v, want ErrBankClosed", err)
	}
	if err := m.Write(NSToPS(70), 0, 0, make([]byte, BurstBytes)); !errors.Is(err, ErrBankClosed) {
		t.Errorf("write on closed bank err = %v, want ErrBankClosed", err)
	}
	if err := m.Activate(NSToPS(80), 9, 0); !errors.Is(err, ErrBadAddress) {
		t.Errorf("bad bank err = %v", err)
	}
	if err := m.Activate(NSToPS(90), 0, 1<<30); !errors.Is(err, ErrBadAddress) {
		t.Errorf("bad row err = %v", err)
	}
	if err := m.Activate(NSToPS(5), 0, 1); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("time regression err = %v", err)
	}
}

func TestNoCommBelowVPPMin(t *testing.T) {
	m := newTestModule(t, "A3") // VPPmin 1.4
	m.SetVPP(1.3)
	if m.Responds() {
		t.Error("module responds below VPPmin")
	}
	if err := m.Activate(NSToPS(1), 0, 0); !errors.Is(err, ErrNoComm) {
		t.Errorf("err = %v, want ErrNoComm", err)
	}
	m.SetVPP(1.4)
	if !m.Responds() {
		t.Error("module should respond at VPPmin")
	}
}

func TestSetVPPQuantizedToMillivolts(t *testing.T) {
	m := newTestModule(t, "A3")
	m.SetVPP(2.1234567)
	if got := m.VPP(); got != 2.123 {
		t.Errorf("VPP = %v, want 2.123", got)
	}
}

func TestDoubleSidedHammerCausesFlips(t *testing.T) {
	m := newTestModule(t, "B0") // HCfirst ~7.9K
	sch := m.Scheme()
	// Choose a victim away from boundaries; aggressors are the logical rows
	// physically adjacent to it.
	victimPhys := 100
	victim := sch.PhysicalToLogical(victimPhys)
	aggLo := sch.PhysicalToLogical(victimPhys - 1)
	aggHi := sch.PhysicalToLogical(victimPhys + 1)

	at := initRow(t, m, 0, 0, victim, 0xFF)
	at = initRow(t, m, at, 0, aggLo, 0x00)
	at = initRow(t, m, at, 0, aggHi, 0x00)

	const hc = 60000
	if err := m.ActivateMany(at, 0, aggLo, hc); err != nil {
		t.Fatal(err)
	}
	if err := m.ActivateMany(m.Now(), 0, aggHi, hc); err != nil {
		t.Fatal(err)
	}
	data, _ := readRow(t, m, m.Now(), 0, victim)
	if flips := countFlips(data, 0xFF); flips == 0 {
		t.Error("no flips after 60K double-sided hammers on B0")
	}
}

func TestHammerFlipsGrowWithCount(t *testing.T) {
	m := newTestModule(t, "B0")
	sch := m.Scheme()
	victim := sch.PhysicalToLogical(200)
	aggLo := sch.PhysicalToLogical(199)
	aggHi := sch.PhysicalToLogical(201)

	measure := func(hc int) int {
		at := initRow(t, m, m.Now(), 0, victim, 0xFF)
		at = initRow(t, m, at, 0, aggLo, 0x00)
		at = initRow(t, m, at, 0, aggHi, 0x00)
		if err := m.ActivateMany(at, 0, aggLo, hc); err != nil {
			t.Fatal(err)
		}
		if err := m.ActivateMany(m.Now(), 0, aggHi, hc); err != nil {
			t.Fatal(err)
		}
		data, _ := readRow(t, m, m.Now(), 0, victim)
		return countFlips(data, 0xFF)
	}
	low, high := measure(20000), measure(300000)
	if high <= low {
		t.Errorf("flips at 300K (%d) not above flips at 20K (%d)", high, low)
	}
}

func TestRewriteClearsHammerDamage(t *testing.T) {
	m := newTestModule(t, "B0")
	sch := m.Scheme()
	victim := sch.PhysicalToLogical(300)
	agg := sch.PhysicalToLogical(299)
	aggHi := sch.PhysicalToLogical(301)

	at := initRow(t, m, 0, 0, victim, 0xFF)
	at = initRow(t, m, at, 0, agg, 0x00)
	at = initRow(t, m, at, 0, aggHi, 0x00)
	if err := m.ActivateMany(at, 0, agg, 300000); err != nil {
		t.Fatal(err)
	}
	if err := m.ActivateMany(m.Now(), 0, aggHi, 300000); err != nil {
		t.Fatal(err)
	}
	// Re-initialize the victim: damage must be gone.
	at = initRow(t, m, m.Now(), 0, victim, 0xFF)
	data, _ := readRow(t, m, at, 0, victim)
	if flips := countFlips(data, 0xFF); flips != 0 {
		t.Errorf("%d flips survived a full-row rewrite", flips)
	}
}

func TestSingleSidedWeakerThanDoubleSided(t *testing.T) {
	m := newTestModule(t, "B0")
	sch := m.Scheme()

	run := func(victimPhys int, double bool, hc int) int {
		victim := sch.PhysicalToLogical(victimPhys)
		aggLo := sch.PhysicalToLogical(victimPhys - 1)
		aggHi := sch.PhysicalToLogical(victimPhys + 1)
		at := initRow(t, m, m.Now(), 0, victim, 0xFF)
		at = initRow(t, m, at, 0, aggLo, 0x00)
		at = initRow(t, m, at, 0, aggHi, 0x00)
		if err := m.ActivateMany(at, 0, aggLo, hc); err != nil {
			t.Fatal(err)
		}
		if double {
			if err := m.ActivateMany(m.Now(), 0, aggHi, hc); err != nil {
				t.Fatal(err)
			}
		}
		data, _ := readRow(t, m, m.Now(), 0, victim)
		return countFlips(data, 0xFF)
	}

	// Aggregate across several victims: per-row HCfirst varies widely, so a
	// single victim may be too strong to flip either way.
	const hc = 100000
	ds, ss := 0, 0
	for i := 0; i < 6; i++ {
		ds += run(400+20*i, true, hc)
		ss += run(410+20*i, false, hc)
	}
	if ds == 0 {
		t.Fatal("double-sided attack flipped nothing; raise the hammer count")
	}
	if ss >= ds {
		t.Errorf("single-sided flips (%d) not below double-sided (%d)", ss, ds)
	}
}

func TestReducedVPPReducesHammerFlips(t *testing.T) {
	// Obsv. 1 at device level: B3 (strong responder) flips fewer bits at
	// VPPmin than at nominal for the same hammer count.
	m := newTestModule(t, "B3")
	sch := m.Scheme()

	run := func(victimPhys int, vpp float64) int {
		m.SetVPP(vpp)
		victim := sch.PhysicalToLogical(victimPhys)
		aggLo := sch.PhysicalToLogical(victimPhys - 1)
		aggHi := sch.PhysicalToLogical(victimPhys + 1)
		at := initRow(t, m, m.Now(), 0, victim, 0xFF)
		at = initRow(t, m, at, 0, aggLo, 0x00)
		at = initRow(t, m, at, 0, aggHi, 0x00)
		if err := m.ActivateMany(at, 0, aggLo, 300000); err != nil {
			t.Fatal(err)
		}
		if err := m.ActivateMany(m.Now(), 0, aggHi, 300000); err != nil {
			t.Fatal(err)
		}
		data, _ := readRow(t, m, m.Now(), 0, victim)
		return countFlips(data, 0xFF)
	}

	var nomTotal, lowTotal int
	for _, phys := range []int{100, 110, 120, 130, 140} {
		nomTotal += run(phys, 2.5)
		lowTotal += run(phys+300, 1.6)
	}
	if lowTotal >= nomTotal {
		t.Errorf("flips at VPP=1.6 (%d) not below nominal (%d) on B3", lowTotal, nomTotal)
	}
}

func TestSubarrayBoundaryIsolation(t *testing.T) {
	m := newTestModule(t, "B0", WithScheme(mapping.Direct{}))
	// Physical row 512 is the first row of subarray 1; row 511 the last of
	// subarray 0. Hammering 512 must not disturb 511.
	at := initRow(t, m, 0, 0, 511, 0xFF)
	at = initRow(t, m, at, 0, 510, 0x00)
	if err := m.ActivateMany(at, 0, 512, 400000); err != nil {
		t.Fatal(err)
	}
	data, _ := readRow(t, m, m.Now(), 0, 511)
	if flips := countFlips(data, 0xFF); flips != 0 {
		t.Errorf("%d flips crossed a subarray boundary", flips)
	}
}

func TestRetentionFlipsAfterLongWait(t *testing.T) {
	m := newTestModule(t, "C0", WithScheme(mapping.Direct{}))
	m.SetTemperature(physics.RetentionTestTempC)
	total := 0
	at := PS(0)
	for row := 50; row < 80; row++ {
		at = initRow(t, m, at, 0, row, 0xAA)
	}
	if err := m.Wait(at + MSToPS(16000)); err != nil {
		t.Fatal(err)
	}
	for row := 50; row < 80; row++ {
		data, next := readRow(t, m, m.Now(), 0, row)
		at = next
		total += countFlips(data, 0xAA)
	}
	if total == 0 {
		t.Error("no retention flips after 16s at 80C")
	}
}

func TestNoRetentionFlipsWithin30ms(t *testing.T) {
	// The paper keeps each RowHammer test under 30 ms so retention cannot
	// interfere (§4.1); the device must honor that.
	m := newTestModule(t, "C0", WithScheme(mapping.Direct{}))
	m.SetTemperature(physics.RetentionTestTempC)
	at := initRow(t, m, 0, 0, 60, 0xAA)
	if err := m.Wait(at + MSToPS(30)); err != nil {
		t.Fatal(err)
	}
	data, _ := readRow(t, m, m.Now(), 0, 60)
	if flips := countFlips(data, 0xAA); flips != 0 {
		t.Errorf("%d retention flips within 30ms", flips)
	}
}

func TestRefreshRowLatchesFlipsAndResetsClock(t *testing.T) {
	m := newTestModule(t, "B0", WithScheme(mapping.Direct{}))
	at := initRow(t, m, 0, 0, 700, 0xFF)
	at = initRow(t, m, at, 0, 699, 0x00)
	at = initRow(t, m, at, 0, 701, 0x00)
	if err := m.ActivateMany(at, 0, 699, 300000); err != nil {
		t.Fatal(err)
	}
	if err := m.ActivateMany(m.Now(), 0, 701, 300000); err != nil {
		t.Fatal(err)
	}
	before, next := readRow(t, m, m.Now(), 0, 700)
	flipsBefore := countFlips(before, 0xFF)
	if flipsBefore == 0 {
		t.Fatal("expected hammer flips before refresh")
	}
	if err := m.RefreshRow(next, 0, 700); err != nil {
		t.Fatal(err)
	}
	after, _ := readRow(t, m, m.Now(), 0, 700)
	if !bytes.Equal(before, after) {
		t.Error("refresh changed observable data (flips must latch, not heal)")
	}
}

func TestReadDuringViolatedTRCDCorruptsData(t *testing.T) {
	m := newTestModule(t, "A0", WithScheme(mapping.Direct{})) // tRCD-failing module
	m.SetVPP(m.Profile().VPPMin)
	at := initRow(t, m, 0, 0, 20, 0x55)
	if err := m.Activate(at, 0, 20); err != nil {
		t.Fatal(err)
	}
	// Read immediately (tRCD ~ 3ns), far below the requirement at VPPmin.
	flips := 0
	rt := at + NSToPS(3)
	for col := 0; col < m.Geometry().Columns(); col++ {
		d, err := m.Read(rt, 0, col)
		if err != nil {
			t.Fatal(err)
		}
		flips += countFlips(d, 0x55)
		rt += NSToPS(5)
	}
	if flips == 0 {
		t.Error("no corruption reading far below the tRCD requirement at VPPmin")
	}
}

func TestReadAtNominalTRCDCleanOnPassingModule(t *testing.T) {
	m := newTestModule(t, "A3", WithScheme(mapping.Direct{}))
	m.SetVPP(m.Profile().VPPMin)
	at := initRow(t, m, 0, 0, 21, 0x55)
	data, _ := readRow(t, m, at, 0, 21)
	if flips := countFlips(data, 0x55); flips != 0 {
		t.Errorf("%d flips at nominal tRCD on a passing module", flips)
	}
}

func TestWriteRowValidation(t *testing.T) {
	m := newTestModule(t, "A3")
	if err := m.Activate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRow(NSToPS(20), 0, 5, make([]byte, 3)); !errors.Is(err, ErrBadAddress) {
		t.Errorf("short image err = %v, want ErrBadAddress", err)
	}
	if err := m.WriteRow(NSToPS(30), 0, 6, make([]byte, m.Geometry().RowBytes)); !errors.Is(err, ErrBankClosed) {
		t.Errorf("wrong-row write err = %v, want ErrBankClosed", err)
	}
}

func TestRefreshRequiresPrechargedBanks(t *testing.T) {
	m := newTestModule(t, "A3")
	if err := m.Activate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh(NSToPS(10)); !errors.Is(err, ErrBankOpen) {
		t.Errorf("refresh with open bank err = %v, want ErrBankOpen", err)
	}
}

func TestTRREngineProtectsVictims(t *testing.T) {
	// With TRR enabled and REF commands interleaved, a double-sided attack
	// at a hammer count just above HCfirst is absorbed; with REF starved
	// (the paper's method), the same attack flips bits.
	run := func(withREF bool) int {
		p, _ := physics.ProfileByName("B0")
		m := NewModule(p, testGeometry(), 42, WithTRR(16), WithScheme(mapping.Direct{}))
		at := initRow(t, m, 0, 0, 800, 0xFF)
		at = initRow(t, m, at, 0, 799, 0x00)
		at = initRow(t, m, at, 0, 801, 0x00)
		const rounds, perRound = 50, 400 // 20K per side in bursts
		for i := 0; i < rounds; i++ {
			if err := m.ActivateMany(m.nowOr(at), 0, 799, perRound); err != nil {
				t.Fatal(err)
			}
			if err := m.ActivateMany(m.Now(), 0, 801, perRound); err != nil {
				t.Fatal(err)
			}
			if withREF {
				if err := m.Refresh(m.Now()); err != nil {
					t.Fatal(err)
				}
			}
		}
		data, _ := readRow(t, m, m.Now(), 0, 800)
		return countFlips(data, 0xFF)
	}
	starved := run(false)
	protected := run(true)
	if starved == 0 {
		t.Fatal("REF-starved attack caused no flips; test needs a higher hammer count")
	}
	if protected >= starved {
		t.Errorf("TRR-protected flips (%d) not below starved flips (%d)", protected, starved)
	}
}

// nowOr returns the later of the module clock and t (helper for tests that
// interleave absolute and relative timing).
func (m *Module) nowOr(t PS) PS {
	if m.now > t {
		return m.now
	}
	return t
}

func TestDominantPatternInference(t *testing.T) {
	if patternFromByte(0xAA) != pattern.CheckerAA || patternFromByte(0x33) != pattern.Thick33 {
		t.Error("canonical fill bytes misclassified")
	}
	if patternFromByte(0x7E) != defaultPattern {
		t.Error("unknown fill should map to the default pattern")
	}
}

func TestActivateManyAdvancesTime(t *testing.T) {
	m := newTestModule(t, "A3")
	if err := m.ActivateMany(0, 0, 10, 1000); err != nil {
		t.Fatal(err)
	}
	want := PS(1000) * NSToPS(physics.TRASNominalNS+physics.TRPNominalNS)
	if m.Now() != want {
		t.Errorf("time after 1000 activations = %d, want %d", m.Now(), want)
	}
}

func TestActivateManyZeroCount(t *testing.T) {
	m := newTestModule(t, "A3")
	if err := m.ActivateMany(0, 0, 10, 0); err != nil {
		t.Errorf("zero-count hammer errored: %v", err)
	}
}
