// Package dram implements the simulated DDR4 module: the command-level
// device the SoftMC-style controller drives. It is the boundary between the
// characterization algorithms (which may only issue ACT/PRE/RD/WR/REF
// commands and observe returned data, exactly as against real silicon) and
// the ground-truth physics model behind it.
//
// The module tracks, per row, the disturbance exposure accumulated from
// neighbor activations since the last full-row write or refresh, the elapsed
// unrefreshed time, and the activation timing of reads, and materializes bit
// flips through the physics model when data is read. Bit flips therefore
// appear and persist exactly as they would on hardware: they survive until
// the row is rewritten or refreshed, grow monotonically with additional
// hammering, and depend on the wordline voltage at which the module is
// operated.
package dram

import (
	"errors"
	"fmt"

	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/physics"
)

// Command-protocol errors.
var (
	// ErrNoComm indicates the module cannot communicate because VPP is
	// below the module's VPPmin (§7: below VPPmin the access transistors
	// cannot connect cells to bitlines and the module stops responding).
	ErrNoComm = errors.New("dram: module not responding (VPP below VPPmin)")
	// ErrBankOpen is returned by ACT to an already-open bank.
	ErrBankOpen = errors.New("dram: bank already has an open row")
	// ErrBankClosed is returned by RD/WR to a precharged bank.
	ErrBankClosed = errors.New("dram: bank has no open row")
	// ErrBadAddress is returned for out-of-range bank/row/column addresses.
	ErrBadAddress = errors.New("dram: address out of range")
	// ErrTimeRegression is returned when a command is issued at a time
	// before the previous command.
	ErrTimeRegression = errors.New("dram: command time moved backwards")
)

// PS is a point in simulated time, in picoseconds.
type PS int64

// Common time conversions.
const (
	PSPerNS = PS(1_000)
	PSPerMS = PS(1_000_000_000)
)

// NSToPS converts nanoseconds to picoseconds.
func NSToPS(ns float64) PS { return PS(ns * float64(PSPerNS)) }

// MSToPS converts milliseconds to picoseconds.
func MSToPS(ms float64) PS { return PS(ms * float64(PSPerMS)) }

// BurstBytes is the number of bytes transferred by one RD/WR burst
// (64 bits x BL8 across the rank).
const BurstBytes = 64

// rowState is the mutable per-row device state.
type rowState struct {
	data       []byte // last written image; nil if never written
	writeEpoch int    // counts full-row writes; keys measurement noise
	lastWrite  PS     // time of last full-row write or refresh

	// Disturbance exposure accumulated since lastWrite, split by side so
	// double-sided attacks are distinguished from single-sided ones.
	hammerLo float64 // activations of the physical row below
	hammerHi float64 // activations of the physical row above
	hammerD2 float64 // activations at physical distance two
}

// bankState is the mutable per-bank device state.
type bankState struct {
	openRow   int // physical row address, or -1 when precharged
	openedAt  PS
	rows      map[int]*rowState // keyed by physical row address
	refCursor int               // rolling auto-refresh pointer
}

// Module is one simulated DIMM. It is NOT safe for concurrent use; the
// controller serializes commands exactly as a memory channel does.
type Module struct {
	model  *physics.DeviceModel
	scheme mapping.Scheme
	geom   physics.Geometry

	vpp   float64
	tempC float64
	now   PS

	banks []bankState
	trr   trrDefense
}

// Option configures a Module.
type Option func(*Module)

// WithTRR enables an in-DRAM target-row-refresh engine with the given
// tracker capacity. The paper disables TRR by never issuing refresh
// commands; the engine exists for the defense-interaction ablations.
func WithTRR(trackers int) Option {
	return func(m *Module) { m.trr = newTRREngine(trackers) }
}

// WithSamplingTRR enables a sampling-based target-row-refresh engine (the
// tracker family that many-sided attacks dilute) with the given per-
// activation sampling probability.
func WithSamplingTRR(prob float64, seed uint64) Option {
	return func(m *Module) { m.trr = newSamplingTRR(prob, seed) }
}

// WithScheme overrides the manufacturer-default internal address mapping.
func WithScheme(s mapping.Scheme) Option {
	return func(m *Module) { m.scheme = s }
}

// NewModule builds a simulated module for the given profile. The seed
// selects the device instance (two modules with the same profile and seed
// are indistinguishable).
func NewModule(prof physics.ModuleProfile, geom physics.Geometry, seed uint64, opts ...Option) *Module {
	m := &Module{
		model:  physics.NewDeviceModel(prof, geom, seed),
		scheme: mapping.DefaultFor(prof.Mfr),
		geom:   geom,
		vpp:    physics.VPPNominal,
		tempC:  physics.RowHammerTestTempC,
	}
	m.banks = make([]bankState, geom.Banks)
	for i := range m.banks {
		m.banks[i] = bankState{openRow: -1, rows: make(map[int]*rowState)}
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Profile returns the module's identity and published characteristics.
func (m *Module) Profile() physics.ModuleProfile { return m.model.Profile() }

// Geometry returns the array organization.
func (m *Module) Geometry() physics.Geometry { return m.geom }

// Scheme returns the internal address mapping in use.
func (m *Module) Scheme() mapping.Scheme { return m.scheme }

// Model exposes the ground-truth physics model for validation tooling and
// tests. Characterization code must not use it.
func (m *Module) Model() *physics.DeviceModel { return m.model }

// Now returns the module's notion of current time.
func (m *Module) Now() PS { return m.now }

// SetVPP drives the external wordline-voltage rail. The setpoint is
// quantized to the supply's 1 mV resolution.
func (m *Module) SetVPP(v float64) {
	m.vpp = float64(int(v*1000+0.5)) / 1000
}

// VPP returns the current wordline voltage.
func (m *Module) VPP() float64 { return m.vpp }

// SetTemperature sets the regulated die temperature in Celsius.
func (m *Module) SetTemperature(c float64) { m.tempC = c }

// Temperature returns the die temperature.
func (m *Module) Temperature() float64 { return m.tempC }

// Responds reports whether the module communicates at the current VPP
// (true iff VPP >= VPPmin).
func (m *Module) Responds() bool {
	return m.vpp >= m.Profile().VPPMin-1e-9
}

func (m *Module) checkTime(t PS) error {
	if t < m.now {
		return fmt.Errorf("%w: %d < %d", ErrTimeRegression, t, m.now)
	}
	if !m.Responds() {
		return ErrNoComm
	}
	m.now = t
	return nil
}

func (m *Module) bank(b int) (*bankState, error) {
	if b < 0 || b >= len(m.banks) {
		return nil, fmt.Errorf("%w: bank %d", ErrBadAddress, b)
	}
	return &m.banks[b], nil
}

func (m *Module) checkRow(r int) error {
	if r < 0 || r >= m.geom.RowsPerBank {
		return fmt.Errorf("%w: row %d", ErrBadAddress, r)
	}
	return nil
}

// row returns (creating if needed) the state of a physical row.
func (bk *bankState) row(phys int) *rowState {
	rs, ok := bk.rows[phys]
	if !ok {
		rs = &rowState{}
		bk.rows[phys] = rs
	}
	return rs
}

// Activate opens a row (logical address) in a bank at time t.
func (m *Module) Activate(t PS, bankIdx, logicalRow int) error {
	return m.activateN(t, bankIdx, logicalRow, 1)
}

// ActivateMany performs count back-to-back activate/precharge cycles of the
// same row, leaving the bank precharged. It is the bulk path the controller
// uses for hammer loops; its observable effect is identical to count
// Activate/Precharge pairs issued at the minimum legal cadence.
func (m *Module) ActivateMany(t PS, bankIdx, logicalRow, count int) error {
	if count <= 0 {
		return nil
	}
	if err := m.activateN(t, bankIdx, logicalRow, count); err != nil {
		return err
	}
	bk := &m.banks[bankIdx]
	bk.openRow = -1
	// Time advances by count activation cycles (tRAS + tRP each).
	m.now = t + PS(count)*NSToPS(physics.TRASNominalNS+physics.TRPNominalNS)
	return nil
}

// activateN opens the row and applies count activations' worth of
// disturbance to its physical neighbors.
func (m *Module) activateN(t PS, bankIdx, logicalRow, count int) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	bk, err := m.bank(bankIdx)
	if err != nil {
		return err
	}
	if err := m.checkRow(logicalRow); err != nil {
		return err
	}
	if bk.openRow != -1 {
		return fmt.Errorf("%w: bank %d row %d", ErrBankOpen, bankIdx, bk.openRow)
	}
	phys := m.scheme.LogicalToPhysical(logicalRow)
	bk.openRow = phys
	bk.openedAt = t

	c := float64(count)
	sub := m.geom.SubarrayRows
	// Distance-one neighbors accumulate full single-side exposure;
	// distance-two neighbors a small fraction. Disturbance does not cross
	// subarray boundaries (isolation sense amplifiers between subarrays).
	if lo := phys - 1; lo >= 0 && sameSubarray(phys, lo, sub) {
		bk.row(lo).hammerHi += c
	}
	if hi := phys + 1; hi < m.geom.RowsPerBank && sameSubarray(phys, hi, sub) {
		bk.row(hi).hammerLo += c
	}
	if lo2 := phys - 2; lo2 >= 0 && sameSubarray(phys, lo2, sub) {
		bk.row(lo2).hammerD2 += c
	}
	if hi2 := phys + 2; hi2 < m.geom.RowsPerBank && sameSubarray(phys, hi2, sub) {
		bk.row(hi2).hammerD2 += c
	}
	if m.trr != nil {
		m.trr.observeActivations(phys, count)
	}
	return nil
}

func sameSubarray(a, b, sub int) bool {
	if sub <= 0 {
		return true
	}
	return a/sub == b/sub
}

// Precharge closes the open row of a bank.
func (m *Module) Precharge(t PS, bankIdx int) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	bk, err := m.bank(bankIdx)
	if err != nil {
		return err
	}
	bk.openRow = -1
	return nil
}

// Read performs a RD burst from the open row of a bank: 64 bytes at column
// col. The returned data includes every bit flip the physics model holds for
// the row at this moment — RowHammer disturbance, retention loss, and
// activation-timing violations (if the read happens sooner after ACT than
// the row's tRCD requirement at the current VPP).
func (m *Module) Read(t PS, bankIdx, col int) ([]byte, error) {
	if err := m.checkTime(t); err != nil {
		return nil, err
	}
	bk, err := m.bank(bankIdx)
	if err != nil {
		return nil, err
	}
	if bk.openRow < 0 {
		return nil, ErrBankClosed
	}
	if col < 0 || col >= m.geom.Columns() {
		return nil, fmt.Errorf("%w: column %d", ErrBadAddress, col)
	}
	phys := bk.openRow
	rs := bk.row(phys)

	out := make([]byte, BurstBytes)
	if rs.data != nil {
		copy(out, rs.data[col*BurstBytes:(col+1)*BurstBytes])
	}

	base := int32(col * BurstBytes * 8)
	limit := base + int32(BurstBytes*8)
	applyFlips := func(positions []int32) {
		for _, pos := range positions {
			if pos >= base && pos < limit {
				rel := pos - base
				out[rel/8] ^= 1 << uint(rel%8)
			}
		}
	}

	// RowHammer flips from accumulated neighbor activations.
	if hcEq := rs.doubleSidedEquivalent(); hcEq > 0 {
		pat := m.dominantPattern(rs)
		n := m.model.HammerFlipCount(bankIdx, phys, pat, m.vpp, hcEq, m.tempC, rs.writeEpoch)
		if n > 0 {
			applyFlips(m.model.HammerFlipPositions(bankIdx, phys, n))
		}
	}

	// Retention flips from unrefreshed time.
	if rs.data != nil {
		elapsedMS := float64(t-rs.lastWrite) / float64(PSPerMS)
		if flips := m.model.RetentionFlipPositions(bankIdx, phys, m.vpp, elapsedMS, m.tempC, rs.writeEpoch); len(flips) > 0 {
			applyFlips(flips)
		}
	}

	// Activation-timing violations.
	trcdNS := float64(t-bk.openedAt) / float64(PSPerNS)
	if flips := m.model.TRCDFlipPositions(bankIdx, phys, col, trcdNS, m.vpp, rs.writeEpoch); len(flips) > 0 {
		applyFlips(flips)
	}
	return out, nil
}

// doubleSidedEquivalent folds the per-side exposure counters into the
// double-sided-equivalent hammer count the physics model is calibrated in:
// balanced two-sided activations count fully, the unbalanced remainder at
// the single-sided weight, and distance-two activations at a small weight.
func (rs *rowState) doubleSidedEquivalent() float64 {
	lo, hi := rs.hammerLo, rs.hammerHi
	minSide := lo
	if hi < lo {
		minSide = hi
	}
	diff := lo + hi - 2*minSide
	return minSide + physics.SingleSidedWeight*diff + physics.DistanceTwoWeight*rs.hammerD2
}

// dominantPattern infers the victim-row data pattern from the stored image
// so the physics model can apply its data-pattern dependence. Rows holding
// non-canonical data use the strongest pattern's behavior.
func (m *Module) dominantPattern(rs *rowState) patternKind {
	if rs.data == nil || len(rs.data) == 0 {
		return defaultPattern
	}
	return patternFromByte(rs.data[0])
}

// Write performs a WR burst into the open row of a bank.
func (m *Module) Write(t PS, bankIdx, col int, data []byte) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	bk, err := m.bank(bankIdx)
	if err != nil {
		return err
	}
	if bk.openRow < 0 {
		return ErrBankClosed
	}
	if col < 0 || col >= m.geom.Columns() {
		return fmt.Errorf("%w: column %d", ErrBadAddress, col)
	}
	if len(data) != BurstBytes {
		return fmt.Errorf("%w: burst must be %d bytes, got %d", ErrBadAddress, BurstBytes, len(data))
	}
	rs := bk.row(bk.openRow)
	if rs.data == nil {
		rs.data = make([]byte, m.geom.RowBytes)
	}
	copy(rs.data[col*BurstBytes:], data)
	return nil
}

// WriteRow writes a full row image in one call and resets the row's
// disturbance and retention state, modeling a complete re-initialization
// (the initialize_row step of the paper's algorithms). The bank must have
// the row open.
func (m *Module) WriteRow(t PS, bankIdx, logicalRow int, image []byte) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	bk, err := m.bank(bankIdx)
	if err != nil {
		return err
	}
	if err := m.checkRow(logicalRow); err != nil {
		return err
	}
	phys := m.scheme.LogicalToPhysical(logicalRow)
	if bk.openRow != phys {
		return fmt.Errorf("%w: row %d not open", ErrBankClosed, logicalRow)
	}
	if len(image) != m.geom.RowBytes {
		return fmt.Errorf("%w: row image must be %d bytes, got %d", ErrBadAddress, m.geom.RowBytes, len(image))
	}
	rs := bk.row(phys)
	if rs.data == nil {
		rs.data = make([]byte, m.geom.RowBytes)
	}
	copy(rs.data, image)
	rs.writeEpoch++
	rs.lastWrite = t
	rs.hammerLo, rs.hammerHi, rs.hammerD2 = 0, 0, 0
	return nil
}

// RefreshRow refreshes one row (logical address): the row's current content
// — including any accumulated bit flips — is restored to full charge, and
// disturbance/retention clocks reset. The bank must be precharged.
func (m *Module) RefreshRow(t PS, bankIdx, logicalRow int) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	bk, err := m.bank(bankIdx)
	if err != nil {
		return err
	}
	if bk.openRow != -1 {
		return fmt.Errorf("%w: bank %d", ErrBankOpen, bankIdx)
	}
	if err := m.checkRow(logicalRow); err != nil {
		return err
	}
	m.refreshPhys(t, bankIdx, bk, m.scheme.LogicalToPhysical(logicalRow))
	return nil
}

// refreshPhys latches the row's current observable content (flips become
// permanent) and resets its charge state.
func (m *Module) refreshPhys(t PS, bankIdx int, bk *bankState, phys int) {
	rs, ok := bk.rows[phys]
	if !ok || rs.data == nil {
		// Never-written rows have no defined content to preserve.
		if ok {
			rs.hammerLo, rs.hammerHi, rs.hammerD2 = 0, 0, 0
			rs.lastWrite = t
		}
		return
	}
	// Materialize hammer flips into the stored image.
	if hcEq := rs.doubleSidedEquivalent(); hcEq > 0 {
		pat := m.dominantPattern(rs)
		n := m.model.HammerFlipCount(bankIdx, phys, pat, m.vpp, hcEq, m.tempC, rs.writeEpoch)
		for _, pos := range m.model.HammerFlipPositions(bankIdx, phys, n) {
			rs.data[pos/8] ^= 1 << uint(pos%8)
		}
	}
	elapsedMS := float64(t-rs.lastWrite) / float64(PSPerMS)
	for _, pos := range m.model.RetentionFlipPositions(bankIdx, phys, m.vpp, elapsedMS, m.tempC, rs.writeEpoch) {
		rs.data[pos/8] ^= 1 << uint(pos%8)
	}
	rs.writeEpoch++
	rs.lastWrite = t
	rs.hammerLo, rs.hammerHi, rs.hammerD2 = 0, 0, 0
}

// Refresh issues one REF command: a slice of rows in every bank is
// refreshed (rolling pointer), and — if the module has a TRR engine — the
// engine may additionally refresh the neighbors of rows it suspects of
// being RowHammer aggressors. All banks must be precharged.
func (m *Module) Refresh(t PS) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	for b := range m.banks {
		if m.banks[b].openRow != -1 {
			return fmt.Errorf("%w: bank %d", ErrBankOpen, b)
		}
	}
	// JESD79-4: the full array is covered by 8192 REF commands per tREFW.
	slice := m.geom.RowsPerBank / 8192
	if slice < 1 {
		slice = 1
	}
	for b := range m.banks {
		bk := &m.banks[b]
		for i := 0; i < slice; i++ {
			m.refreshPhys(t, b, bk, bk.refCursor)
			bk.refCursor = (bk.refCursor + 1) % m.geom.RowsPerBank
		}
		if m.trr != nil {
			for _, victim := range m.trr.victimsToRefresh(m.geom.RowsPerBank) {
				m.refreshPhys(t, b, bk, victim)
			}
		}
	}
	return nil
}

// Wait advances device time without issuing a command (retention testing).
func (m *Module) Wait(t PS) error {
	return m.checkTime(t)
}
