package dram

import "github.com/dramstudy/rhvpp/internal/pattern"

// patternKind aliases the canonical data-pattern type for readability inside
// the device model.
type patternKind = pattern.Kind

// defaultPattern is the behavior assumed for rows holding non-canonical or
// undefined data.
const defaultPattern = pattern.RowStripeFF

// patternFromByte maps a row's fill byte back to the canonical pattern the
// physics model keys its data-pattern dependence on. Unknown fill bytes fall
// back to the default pattern.
func patternFromByte(b byte) patternKind {
	switch b {
	case 0xFF:
		return pattern.RowStripeFF
	case 0x00:
		return pattern.RowStripe00
	case 0xAA:
		return pattern.CheckerAA
	case 0x55:
		return pattern.Checker55
	case 0xCC:
		return pattern.ThickCC
	case 0x33:
		return pattern.Thick33
	default:
		return defaultPattern
	}
}
