// Package a exercises the maporder analyzer: ordered sinks fed from map
// iteration are flagged; the collect-then-sort idiom and order-independent
// uses are clean.
package a

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

type acc struct{ n int }

func (a *acc) Add(x float64)     { a.n++ }
func (a *acc) Merge(b acc)       { a.n += b.n }
func (a *acc) Len() int          { return a.n }
func (a *acc) Reset(scale int)   { a.n = 0 }
func (a *acc) Touch(name string) {}

// AppendNeverSorted is the PR 3 bug shape: keys collected from a map and
// used without sorting.
func AppendNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append of map iteration values to a slice that is never sorted afterwards`
	}
	return keys
}

// CollectThenSort is the sanctioned idiom.
func CollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectThenSortSlice is the comparator form of the sanctioned idiom.
func CollectThenSortSlice(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// FoldIntoAccumulator feeds iteration values straight into an accumulator.
func FoldIntoAccumulator(m map[string]float64) int {
	var d acc
	for _, v := range m {
		d.Add(v) // want `map iteration value flows into ordered sink Add`
	}
	return d.Len()
}

// MergePartials folds partial results in map order.
func MergePartials(m map[string]acc) int {
	var total acc
	for _, part := range m {
		total.Merge(part) // want `map iteration value flows into ordered sink Merge`
	}
	return total.Len()
}

// WriteDirectly streams map entries to a writer in iteration order.
func WriteDirectly(m map[string]int) {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v) // want `map iteration value flows into ordered sink Fprintf`
	}
	os.Stdout.WriteString(b.String())
}

// FloatFold accumulates floats in map order.
func FloatFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation over map iteration`
	}
	return sum
}

// IntFold is order-independent (exact integer addition) and stays clean.
func IntFold(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// MapRebuild writes into another map: no order dependence, clean.
func MapRebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// ReceiverNotValue: the sink's receiver touches loop state but its
// arguments do not involve the iteration variables; clean.
func ReceiverNotValue(m map[string]int, accs map[string]*acc) {
	for k := range m {
		_ = k
		accs["fixed"].Reset(3)
	}
}

// NestedClosure: a closure inside the range body feeding a sink is still
// order-dependent.
func NestedClosure(m map[string]float64) int {
	var d acc
	for _, v := range m {
		func() {
			d.Add(v) // want `map iteration value flows into ordered sink Add`
		}()
	}
	return d.Len()
}
