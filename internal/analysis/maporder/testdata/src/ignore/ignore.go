// Package ignore exercises the //detlint:ignore directive: a reasoned
// directive suppresses the diagnostic on its line or the next, and an
// unreasoned directive is itself a diagnostic (and suppresses nothing).
package ignore

type sink struct{ n int }

func (s *sink) Add(x float64) { s.n++ }

// SuppressedTrailing uses the trailing-comment form with a reason.
func SuppressedTrailing(m map[string]float64) int {
	var s sink
	for _, v := range m {
		s.Add(v) //detlint:ignore maporder the sink is a commutative counter in this test
	}
	return s.n
}

// SuppressedOwnLine uses the own-line form covering the next line.
func SuppressedOwnLine(m map[string]float64) int {
	var s sink
	for _, v := range m {
		//detlint:ignore maporder commutative counter, order cannot matter
		s.Add(v)
	}
	return s.n
}

// Unreasoned: the directive itself is reported and does not suppress.
func Unreasoned(m map[string]float64) int {
	var s sink
	for _, v := range m {
		s.Add(v) //detlint:ignore maporder // want `directive has no reason` `ordered sink Add`
	}
	return s.n
}

// WrongAnalyzer: a directive naming another analyzer does not suppress
// this one.
func WrongAnalyzer(m map[string]float64) int {
	var s sink
	for _, v := range m {
		s.Add(v) //detlint:ignore detsource wrong analyzer name // want `ordered sink Add`
	}
	return s.n
}
