// Package maporder defines an analyzer that flags order-dependent
// consumption of map iteration.
//
// Go randomizes map iteration order, so any value that flows from a
// `for k, v := range m` loop into an ordered sink — an append that is never
// sorted afterwards, an encoder or writer call, an accumulator fold, or a
// floating-point compound assignment — makes the result depend on the
// iteration order of that particular run. This is the bug class behind the
// seed's Table 1 nondeterminism (PR 3): map keys were appended to a slice
// whose sort comparator could not break all ties.
//
// The analyzer accepts the standard deterministic idiom: collecting keys
// into a slice that is subsequently sorted (sort.* or slices.Sort*) in the
// same function.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags map iteration whose per-element results flow into an ordered sink " +
		"(append without a later sort, encoder/writer calls, accumulator folds, float accumulation)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// sinkMethods are method or function names treated as ordered sinks: calls
// that observe their arguments in call order (accumulator folds, encoder
// and writer APIs, print functions).
var sinkMethods = map[string]bool{
	"Add": true, "Merge": true, "Observe": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Table": true, "AddSummary": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// sortFuncs are the sort.* / slices.Sort* entry points that launder a
// collected slice into a deterministic order.
var sortFuncs = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func run(pass *analysis.Pass) (any, error) {
	rep := detlint.NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	// Analyze function bodies; dedup nested-function revisits (a FuncLit's
	// body is walked both as its own unit and within its enclosing decl).
	reported := make(map[token.Pos]bool)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return
		}
		checkFunc(pass, rep, body, reported)
	})
	return nil, nil
}

func checkFunc(pass *analysis.Pass, rep *detlint.Reporter, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !detlint.IsMapType(pass.TypesInfo.TypeOf(rng.X)) {
			return true
		}
		checkMapRange(pass, rep, body, rng, reported)
		return true
	})
}

// checkMapRange inspects one `range m` loop over a map for ordered sinks
// fed by the iteration variables.
func checkMapRange(pass *analysis.Pass, rep *detlint.Reporter, fnBody *ast.BlockStmt, rng *ast.RangeStmt, reported map[token.Pos]bool) {
	info := pass.TypesInfo
	iterObjs := rangeVarObjects(info, rng)
	if len(iterObjs) == 0 {
		// `for range m {}` consumes nothing order-dependent directly, but
		// the body may still index the map; without iteration variables
		// there is no per-element flow to track.
		return
	}
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		rep.Reportf(pos, format, args...)
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if dst, ok := appendDest(info, n); ok {
				if !detlint.UsesObject(info, n, iterObjs...) {
					return true
				}
				if obj := exprObject(info, dst); obj != nil && sortedLater(pass, fnBody, rng, obj) {
					return true // collect-then-sort idiom
				}
				report(n.Pos(), "append of map iteration values to a slice that is never sorted afterwards; map order is nondeterministic — sort the slice (or collect and sort keys) before use")
				return true
			}
			if name, ok := sinkCallName(info, n); ok && detlint.UsesObject(info, argsOnly(n), iterObjs...) {
				report(n.Pos(), "map iteration value flows into ordered sink %s inside the range; iterate sorted keys instead (map order is nondeterministic)", name)
			}
		case *ast.AssignStmt:
			if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN || n.Tok == token.MUL_ASSIGN) &&
				len(n.Lhs) == 1 && isFloat(info.TypeOf(n.Lhs[0])) &&
				detlint.UsesObject(info, n.Rhs[0], iterObjs...) {
				report(n.Pos(), "floating-point accumulation over map iteration; float addition is not associative, so the fold depends on map order — accumulate over sorted keys")
			}
		}
		return true
	})
}

// rangeVarObjects returns the objects of the loop's key/value variables.
func rangeVarObjects(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var objs []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id == nil || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			objs = append(objs, obj)
		} else if obj := info.Uses[id]; obj != nil { // `k = range m` reusing an outer var
			objs = append(objs, obj)
		}
	}
	return objs
}

// appendDest reports whether call is append(dst, ...) and returns dst.
func appendDest(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) < 2 {
		return nil, false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	return call.Args[0], true
}

// sinkCallName classifies a call as an ordered sink and names it for the
// diagnostic: method calls like enc.Add / w.Write, or package functions
// like fmt.Fprintf.
func sinkCallName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !sinkMethods[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// argsOnly wraps the call's arguments (and, for method sinks, the
// receiver is deliberately excluded: `dist.Add(v)` is flagged because v is
// the iteration value, not because dist exists).
func argsOnly(call *ast.CallExpr) ast.Node {
	list := &ast.ExprStmt{X: &ast.CallExpr{Fun: &ast.Ident{Name: "args"}, Args: call.Args}}
	return list
}

// exprObject resolves a simple destination expression (identifier) to its
// object; selector and index destinations return nil and are treated as
// unsortable (conservatively flagged).
func exprObject(info *types.Info, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

// sortedLater reports whether obj (a slice) is passed to a sort function
// somewhere in the enclosing function after the range loop.
func sortedLater(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isPkg := info.Uses[pkgID].(*types.PkgName); !isPkg {
			return true
		}
		if !sortFuncs[pkgID.Name+"."+sel.Sel.Name] {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
