package maporder_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "a")
}

// TestSuppression pins the //detlint:ignore contract shared by the whole
// suite: reasoned directives suppress, unreasoned ones are diagnostics.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "ignore")
}
