// Package suite assembles the full detlint analyzer family. cmd/detlint
// runs exactly this list; docs/DETERMINISM.md maps each analyzer to the
// invariant it guards.
package suite

import (
	"golang.org/x/tools/go/analysis"

	"github.com/dramstudy/rhvpp/internal/analysis/ctxloop"
	"github.com/dramstudy/rhvpp/internal/analysis/detsource"
	"github.com/dramstudy/rhvpp/internal/analysis/maporder"
	"github.com/dramstudy/rhvpp/internal/analysis/shardsafe"
	"github.com/dramstudy/rhvpp/internal/analysis/totalcmp"
)

// All returns the suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxloop.Analyzer,
		detsource.Analyzer,
		maporder.Analyzer,
		shardsafe.Analyzer,
		totalcmp.Analyzer,
	}
}
