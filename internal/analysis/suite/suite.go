// Package suite assembles the full detlint analyzer family. cmd/detlint
// runs exactly this list; docs/DETERMINISM.md maps each gen-1 analyzer to
// the invariant it guards, and docs/CONTRACTS.md does the same for the
// gen-2 perf- and merge-contract analyzers (hotalloc, mergecontract,
// sinkerr) and the gen-3 shard-protocol analyzers (optfinger, goshared,
// plancover).
package suite

import (
	"golang.org/x/tools/go/analysis"

	"github.com/dramstudy/rhvpp/internal/analysis/ctxloop"
	"github.com/dramstudy/rhvpp/internal/analysis/detsource"
	"github.com/dramstudy/rhvpp/internal/analysis/goshared"
	"github.com/dramstudy/rhvpp/internal/analysis/hotalloc"
	"github.com/dramstudy/rhvpp/internal/analysis/maporder"
	"github.com/dramstudy/rhvpp/internal/analysis/mergecontract"
	"github.com/dramstudy/rhvpp/internal/analysis/optfinger"
	"github.com/dramstudy/rhvpp/internal/analysis/plancover"
	"github.com/dramstudy/rhvpp/internal/analysis/shardsafe"
	"github.com/dramstudy/rhvpp/internal/analysis/sinkerr"
	"github.com/dramstudy/rhvpp/internal/analysis/totalcmp"
)

// All returns the suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxloop.Analyzer,
		detsource.Analyzer,
		goshared.Analyzer,
		hotalloc.Analyzer,
		maporder.Analyzer,
		mergecontract.Analyzer,
		optfinger.Analyzer,
		plancover.Analyzer,
		shardsafe.Analyzer,
		sinkerr.Analyzer,
		totalcmp.Analyzer,
	}
}
