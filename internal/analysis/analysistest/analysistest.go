// Package analysistest runs an analyzer over GOPATH-style fixture packages
// and checks its diagnostics against // want comments, mirroring the
// upstream golang.org/x/tools/go/analysis/analysistest API.
//
// The upstream harness depends on go/packages; this one is self-contained
// so the repo builds offline: fixture packages under <dir>/src are parsed
// and type-checked directly, fixture-to-fixture imports resolve within the
// tree, and standard-library imports load from compiler export data
// obtained once per path via `go list -deps -export -json`.
//
// Expectations use the upstream syntax: a comment of the form
//
//	want "regexp" `another regexp`
//
// requires one diagnostic on its line matching each pattern. The
// expectation may also ride inside a //detlint:ignore directive comment
// after a `// want` separator, which the directive parser treats as the
// end of the reason; that is how fixtures pin diagnostics reported at the
// directive itself (e.g. the unreasoned-ignore check).
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

// TestData returns the absolute path of the calling test's testdata
// directory, the conventional fixture root.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run analyzes each fixture package (a path relative to dir/src) with a
// and reports mismatches between diagnostics and // want expectations as
// test errors.
//
// Fixture packages the target imports from the same tree are analyzed
// first (in load-completion order, i.e. dependencies before importers)
// under a shared fact store, so analyzers that summarize dependencies via
// facts — hotalloc's cross-package allocation summaries — see exactly the
// driver's scheduling. Only the target package's diagnostics are matched
// against // want comments; dependency fixtures contribute facts alone.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		l := newLoader(filepath.Join(dir, "src"))
		p, err := l.load(pkg)
		if err != nil {
			t.Errorf("loading fixture %q: %v", pkg, err)
			continue
		}
		store := detlint.NewFactStore()
		ok := true
		for _, dep := range l.order {
			if dep == p {
				continue
			}
			if _, err := detlint.RunAnalyzersFacts(&detlint.Package{
				Fset:  l.fset,
				Files: dep.files,
				Types: dep.types,
				Info:  dep.info,
			}, []*analysis.Analyzer{a}, store); err != nil {
				t.Errorf("running %s on dependency of %q: %v", a.Name, pkg, err)
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		findings, err := detlint.RunAnalyzersFacts(&detlint.Package{
			Fset:  l.fset,
			Files: p.files,
			Types: p.types,
			Info:  p.info,
		}, []*analysis.Analyzer{a}, store)
		if err != nil {
			t.Errorf("running %s on %q: %v", a.Name, pkg, err)
			continue
		}
		checkWants(t, l.fset, p.files, a.Name, findings)
	}
}

type key struct {
	file string
	line int
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkWants matches findings against the fixture's // want comments:
// every diagnostic needs an expectation on its line and vice versa.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, name string, findings []detlint.Finding) {
	t.Helper()
	wants := make(map[key][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pats, err := parseWant(c.Text)
				if err != nil {
					t.Errorf("%s: %v", fset.Position(c.Pos()), err)
					continue
				}
				p := fset.Position(c.Pos())
				k := key{p.Filename, p.Line}
				for _, re := range pats {
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}
	for _, fd := range findings {
		k := key{fd.Pos.Filename, fd.Pos.Line}
		ok := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(fd.Message) {
				exp.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic from %s: %s", fd.Pos, name, fd.Message)
		}
	}
	keys := make([]key, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	// Deterministic error order for the unmatched-expectation report.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, exp.re)
			}
		}
	}
}

// parseWant extracts expectation regexps from one comment's text. A want
// clause starts at the beginning of the comment body or after an embedded
// "//" marker, and is a space-separated sequence of Go string literals.
func parseWant(text string) ([]*regexp.Regexp, error) {
	body := strings.TrimPrefix(strings.TrimPrefix(text, "//"), "/*")
	clause := ""
	if rest := strings.TrimSpace(body); strings.HasPrefix(rest, "want ") {
		clause = strings.TrimPrefix(rest, "want ")
	} else if i := strings.LastIndex(body, "// want "); i >= 0 {
		clause = body[i+len("// want "):]
	} else {
		return nil, nil
	}
	var pats []*regexp.Regexp
	for clause = strings.TrimSpace(clause); clause != ""; clause = strings.TrimSpace(clause) {
		lit, err := strconv.QuotedPrefix(clause)
		if err != nil {
			return nil, fmt.Errorf("malformed want clause at %q: %v", clause, err)
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %q: %v", s, err)
		}
		pats = append(pats, re)
		clause = clause[len(lit):]
	}
	return pats, nil
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader resolves fixture packages under srcroot and standard-library
// packages via export data. It implements types.Importer.
type loader struct {
	srcroot string
	fset    *token.FileSet
	memo    map[string]*loadedPkg
	// order records fixture packages in load-completion order: every
	// package appears after the fixture packages it imports.
	order []*loadedPkg
	std   types.Importer
}

func newLoader(srcroot string) *loader {
	l := &loader{
		srcroot: srcroot,
		fset:    token.NewFileSet(),
		memo:    make(map[string]*loadedPkg),
	}
	l.std = importer.ForCompiler(l.fset, "gc", stdExportLookup)
	return l
}

// Import resolves an import path: fixture directories win, everything
// else is expected to be standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.srcroot, path)); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the fixture package at path (relative to
// srcroot), memoized.
func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.memo[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through fixture %q", path)
		}
		return p, nil
	}
	l.memo[path] = nil // cycle marker
	dir := filepath.Join(l.srcroot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %q has no Go files", path)
	}
	info := detlint.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %q: %w", path, err)
	}
	p := &loadedPkg{files: files, types: tpkg, info: info}
	l.memo[path] = p
	l.order = append(l.order, p)
	return p, nil
}

var (
	stdMu      sync.Mutex
	stdExports = make(map[string]string) // import path -> export data file
)

// stdExportLookup feeds the gc importer the export data file for a
// standard-library import path, shelling out to `go list` at most once per
// new root path (the -deps walk caches the whole dependency cone).
func stdExportLookup(path string) (io.ReadCloser, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	if file, ok := stdExports[path]; ok {
		return os.Open(file)
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", path)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %w", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			stdExports[p.ImportPath] = p.Export
		}
	}
	file, ok := stdExports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}
