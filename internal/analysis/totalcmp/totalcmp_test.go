package totalcmp_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/totalcmp"
)

func TestTotalCmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), totalcmp.Analyzer, "a")
}
