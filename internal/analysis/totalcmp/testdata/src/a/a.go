// Package a exercises the totalcmp analyzer. PR3Repro is the minimized
// reproduction of the seed's Table 1 nondeterminism: map-collected keys
// sorted by a comparator that cannot break all ties.
package a

import "sort"

type chipKey struct {
	mfr     int
	density int
	rev     string
	org     int
	date    string
}

// PR3Repro is the original bug: the comparator never compares org or
// date, so two groups tying on (mfr, density, rev) keep whatever order
// map iteration dealt this run.
func PR3Repro(groups map[chipKey]int) []chipKey {
	keys := make([]chipKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { // want `not total over the element key \(never compares date, org\) and the slice is collected from map iteration`
		if keys[i].mfr != keys[j].mfr {
			return keys[i].mfr < keys[j].mfr
		}
		if keys[i].density != keys[j].density {
			return keys[i].density < keys[j].density
		}
		return keys[i].rev < keys[j].rev
	})
	return keys
}

// PR3Fix is the shipped fix: a total comparator over the full key.
func PR3Fix(groups map[chipKey]int) []chipKey {
	keys := make([]chipKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.mfr != b.mfr {
			return a.mfr < b.mfr
		}
		if a.density != b.density {
			return a.density < b.density
		}
		if a.rev != b.rev {
			return a.rev < b.rev
		}
		if a.org != b.org {
			return a.org < b.org
		}
		return a.date < b.date
	})
	return keys
}

// StableStillBroken: sort.SliceStable does not rescue map-order input —
// stability preserves the nondeterministic arrival order of ties.
func StableStillBroken(groups map[chipKey]int) []chipKey {
	keys := make([]chipKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.SliceStable(keys, func(i, j int) bool { // want `never compares date, density, org`
		if keys[i].mfr != keys[j].mfr {
			return keys[i].mfr < keys[j].mfr
		}
		return keys[i].rev < keys[j].rev
	})
	return keys
}

type row struct {
	name  string
	score int
}

// UnstablePartial: deterministic input, but plain sort.Slice with a
// partial comparator leaves tie order unspecified.
func UnstablePartial(rows []row) {
	sort.Slice(rows, func(i, j int) bool { // want `sort.Slice comparator is not total over the element key \(never compares name\)`
		return rows[i].score > rows[j].score
	})
}

// StablePartial: deterministic input plus sort.SliceStable is fine — ties
// keep the (deterministic) input order.
func StablePartial(rows []row) {
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].score > rows[j].score
	})
}

// TotalOverComparable: the payload field is a slice (not comparable, so
// not demanded); comparing the full comparable key is total enough.
type entry struct {
	id      string
	samples []float64
}

func TotalOverComparable(entries []entry) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].id < entries[j].id
	})
}

// Delegating comparators are skipped: coverage cannot be established.
func Delegating(rows []row, less func(a, b row) bool) {
	sort.Slice(rows, func(i, j int) bool {
		return less(rows[i], rows[j])
	})
}
