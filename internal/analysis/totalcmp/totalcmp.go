// Package totalcmp defines an analyzer that flags sort comparators that
// are not total over the element key.
//
// A sort.Slice / sort.SliceStable comparator that compares only some
// fields of a struct element leaves ties between the remaining fields.
// If the slice was collected from map iteration, tied elements arrive in
// nondeterministic order and no amount of sorting stability can fix it —
// the comparator must compare the full key (the exact bug behind the
// seed's Table 1 nondeterminism, fixed in PR 3). If the input order is
// deterministic, plain sort.Slice still leaves the tie order unspecified
// (the algorithm is not stable), so the analyzer suggests either the full
// key or sort.SliceStable.
//
// The analyzer only reports comparators whose field coverage it can
// positively establish: a function literal directly comparing fields of
// the element struct. Delegating comparators are skipped. sort.Search
// predicates are out of scope (they select within an already-ordered
// slice; ordering bugs there are the slice's, which this analyzer covers
// at the sort site).
package totalcmp

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "totalcmp",
	Doc: "flags sort.Slice/sort.SliceStable comparators that compare only part of a struct key, " +
		"leaving tie order to chance (nondeterministic when the slice came from map iteration)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	rep := detlint.NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		stable, ok := sortSliceCall(pass.TypesInfo, call)
		if !ok || len(call.Args) != 2 {
			return true
		}
		cmp, ok := call.Args[1].(*ast.FuncLit)
		if !ok {
			return true
		}
		elem, ok := sliceElemStruct(pass.TypesInfo, call.Args[0])
		if !ok {
			return true
		}
		compared := comparedFields(pass.TypesInfo, cmp, elem)
		if len(compared) == 0 {
			return true // delegating comparator: coverage unknown, skip
		}
		missing := missingComparable(elem, compared)
		if len(missing) == 0 {
			return true
		}
		fromMap := collectedFromMap(pass.TypesInfo, stack, call.Args[0])
		switch {
		case fromMap:
			rep.Reportf(call.Pos(),
				"comparator is not total over the element key (never compares %s) and the slice is collected from map iteration, so ties keep nondeterministic map order; compare the full key",
				strings.Join(missing, ", "))
		case !stable:
			rep.Reportf(call.Pos(),
				"sort.Slice comparator is not total over the element key (never compares %s); tie order is unspecified — compare the full key or use sort.SliceStable",
				strings.Join(missing, ", "))
		}
		return true
	})
	return nil, nil
}

// sortSliceCall recognizes sort.Slice / sort.SliceStable; stable reports
// which one.
func sortSliceCall(info *types.Info, call *ast.CallExpr) (stable, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return false, false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sort" {
		return false, false
	}
	switch obj.Name() {
	case "Slice":
		return false, true
	case "SliceStable":
		return true, true
	}
	return false, false
}

// sliceElemStruct resolves the sorted expression to a slice of structs
// (possibly through named types and pointers) and returns the struct.
func sliceElemStruct(info *types.Info, e ast.Expr) (*types.Struct, bool) {
	t := info.TypeOf(e)
	if t == nil {
		return nil, false
	}
	sl, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return nil, false
	}
	elem := types.Unalias(sl.Elem())
	if p, ok := elem.Underlying().(*types.Pointer); ok {
		elem = types.Unalias(p.Elem())
	}
	st, ok := elem.Underlying().(*types.Struct)
	return st, ok
}

// comparedFields collects the names of elem's fields that appear in
// comparison expressions inside the comparator body.
func comparedFields(info *types.Info, cmp *ast.FuncLit, elem *types.Struct) map[string]bool {
	fieldOf := make(map[*types.Var]string, elem.NumFields())
	for i := 0; i < elem.NumFields(); i++ {
		fieldOf[elem.Field(i)] = elem.Field(i).Name()
	}
	compared := make(map[string]bool)
	ast.Inspect(cmp.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparison(be) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				sel, ok := m.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
					if name, ok := fieldOf[origin(v)]; ok {
						compared[name] = true
					}
				}
				return true
			})
		}
		return true
	})
	return compared
}

// origin maps a possibly-instantiated field var back to the generic
// declaration used in the struct's field list.
func origin(v *types.Var) *types.Var { return v.Origin() }

func isComparison(be *ast.BinaryExpr) bool {
	switch be.Op.String() {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// missingComparable lists elem's comparable fields absent from compared,
// in declaration order. Non-comparable fields (slices, maps, funcs)
// cannot tie-break and are not demanded.
func missingComparable(elem *types.Struct, compared map[string]bool) []string {
	var missing []string
	for i := 0; i < elem.NumFields(); i++ {
		f := elem.Field(i)
		if !types.Comparable(f.Type()) || compared[f.Name()] {
			continue
		}
		missing = append(missing, f.Name())
	}
	sort.Strings(missing) // field order carries no meaning in the message
	return missing
}

// collectedFromMap reports whether the sorted slice is appended to from a
// map-range loop anywhere in the enclosing function chain (the
// collect-keys idiom), which makes its pre-sort order nondeterministic.
func collectedFromMap(info *types.Info, stack []ast.Node, sliceExpr ast.Expr) bool {
	id, ok := sliceExpr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	// Innermost enclosing function-like node bounds the search.
	var scope ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			scope = stack[i]
		}
	}
	if scope == nil {
		scope = stack[0]
	}
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !detlint.IsMapType(info.TypeOf(rng.X)) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
				return true
			}
			if dst, ok := call.Args[0].(*ast.Ident); ok && info.Uses[dst] == obj {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}
