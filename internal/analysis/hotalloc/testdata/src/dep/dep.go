// Package dep models a same-module dependency of a hot path: its
// functions are summarized into AllocsFacts when the package is analyzed,
// and hot callers in importing packages are diagnosed from those facts.
package dep

// Alloc allocates; importers calling it from hot code are flagged.
func Alloc(n int) []int {
	return make([]int, n)
}

// Clean is allocation-free; hot callers are not flagged.
func Clean(x int) int {
	return x * 2
}

// Lazy allocates, but the site is suppressed with a reason, so the
// allocation vanishes from the exported summary and hot callers stay
// clean — the amortized-lazy-init protocol.
func Lazy(m map[int]int) map[int]int {
	if m == nil {
		m = make(map[int]int) //detlint:ignore hotalloc one-time lazy init, amortized to 0 allocs/run
	}
	return m
}
