// Package a exercises every allocation form hotalloc flags inside
// annotated hot functions, plus the annotation-hygiene diagnostics.
package a

import "dep"

type point struct{ X, Y int }

// Direct demonstrates the direct allocation sites.
//
//detlint:hotpath witness=BenchmarkDirect
func Direct(n int) {
	_ = make([]int, n)    // want "make in hotpath function Direct"
	_ = new(point)        // want "new in hotpath function Direct"
	_ = &point{1, 2}      // want "escaping composite literal"
	_ = []int{1, 2, n}    // want "slice literal"
	_ = map[int]int{1: n} // want "map literal"
}

// Grow demonstrates the append policy: only the self-append reuse idiom
// is allocation-clean.
//
//detlint:hotpath witness=BenchmarkGrow
func Grow(dst, src []int) []int {
	out := append(dst, src...) // want "append outside the dst = append"
	dst = append(dst, 1)
	dst = append(dst[:0], src...)
	_ = dst
	return out
}

// Box demonstrates interface boxing at returns, assignments, and call
// arguments; pointers and constants do not box.
//
//detlint:hotpath witness=BenchmarkBox
func Box(v int, p *point) any {
	var x any
	x = v // want "interface boxing of int value"
	sink(x)
	sink(v)       // want "interface boxing of int value"
	sink(42)      // constants are materialized statically
	sink(p)       // pointers fit the interface word
	var y any = v // want "interface boxing of int value"
	_ = y
	return v // want "interface boxing of int value"
}

func sink(any) {}

// Strings demonstrates string conversions and concatenation.
//
//detlint:hotpath witness=BenchmarkStrings
func Strings(b []byte, s string) string {
	x := string(b) // want "to-string conversion"
	y := []byte(s) // want "string-to-"
	_ = y
	return x + s // want "string concatenation"
}

// Capture demonstrates closure captures and goroutine spawns.
//
//detlint:hotpath witness=BenchmarkCapture
func Capture(n int) func() int {
	f := func() int { return n } // want "closure capturing n"
	go cold(1)                   // want "go statement"
	return f
}

// Chain is a hot root whose helper allocates: the helper is flagged as a
// transitive member of the cone.
//
//detlint:hotpath witness=BenchmarkChain
func Chain(n int) int {
	return helper(n)
}

func helper(n int) int {
	buf := make([]int, n) // want "make in helper \\(hot via Chain\\)"
	return len(buf)
}

// Remote demonstrates fact-based cross-package checking: dep.Alloc's
// summary travels through the fact store, dep.Clean has none, and
// dep.Lazy's suppressed site was removed before export.
//
//detlint:hotpath witness=BenchmarkRemote
func Remote(n int, m map[int]int) int {
	xs := dep.Alloc(n) // want "call to dep.Alloc may allocate"
	_ = dep.Lazy(m)
	return dep.Clean(len(xs))
}

// NoWitness is annotated without naming a runtime witness.
//
//detlint:hotpath // want "names no runtime witness"
func NoWitness(x int) int {
	return x + 1
}

// cold is reached from Capture's go statement, so it joins the hot cone;
// it stays allocation-free. notHot is never called from hot code, so its
// allocations are not diagnosed.
func cold(n int) int { return n * 2 }

func notHot(n int) []int {
	out := append([]int{}, n)
	return out
}

// CrossSuppress shows the suppression interplay: the ignore names sinkerr,
// so the per-analyzer, per-line protocol leaves the hotalloc finding alone.
//
//detlint:hotpath witness=BenchmarkCrossSuppress
func CrossSuppress(n int) []int {
	return make([]int, n) //detlint:ignore sinkerr not an error discard // want "make in hotpath function CrossSuppress"
}
