// Package iface checks hotness propagation through interface
// satisfaction: a hot function calling through an interface makes every
// same-package concrete implementation of that method hot, so hiding an
// allocation behind an interface does not drop it from the contract.
package iface

type adder interface {
	add(x float64)
}

// Accumulate dispatches through the adder interface; scratchAdder.add and
// cleanAdder.add are its package-local implementations.
//
//detlint:hotpath witness=BenchmarkAccumulate
func Accumulate(a adder, xs []float64) {
	for _, x := range xs {
		a.add(x)
	}
}

type scratchAdder struct {
	scratch []float64
}

func (s *scratchAdder) add(x float64) {
	s.scratch = append(s.scratch, x) // self-append reuse: clean
	tmp := make([]float64, 1)        // want "make in add \\(hot via Accumulate\\)"
	tmp[0] = x
}

type cleanAdder struct{ sum float64 }

func (c *cleanAdder) add(x float64) { c.sum += x }

// freeAdder also has an add method but takes an int, so it does not
// satisfy adder; its allocation stays undiagnosed.
type freeAdder struct{ vals []int }

func (f *freeAdder) add(x int) { f.vals = append([]int{}, x) }
