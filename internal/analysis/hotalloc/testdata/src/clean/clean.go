// Package clean holds hot functions written in the workspace-reuse style
// the analyzer demands: no diagnostics anywhere in this file.
package clean

// W is a reusable workspace in the style of spice.Workspace.
type W struct {
	buf   []float64
	names map[string]int
}

// Step reuses preallocated memory: indexed writes, self-append after a
// length reset, map reads, pointer arguments. Nothing here allocates per
// call.
//
//detlint:hotpath witness=BenchmarkStep
func (w *W) Step(xs []float64) float64 {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, xs...)
	var sum float64
	for i := range w.buf {
		w.buf[i] *= 2
		sum += w.buf[i]
	}
	return sum + float64(w.names["x"])
}

// Lazy amortizes a one-time allocation behind a reasoned suppression, the
// sanctioned escape hatch for lazy init.
//
//detlint:hotpath witness=BenchmarkLazy
func (w *W) Lazy() {
	if w.names == nil {
		w.names = make(map[string]int) //detlint:ignore hotalloc one-time lazy init, amortized to 0 allocs/run
	}
}

// useHelper calls an allocation-free same-package helper; the cone stays
// clean.
//
//detlint:hotpath witness=BenchmarkHelper
func useHelper(x int) int {
	return double(x)
}

func double(x int) int { return x * 2 }

// coldAlloc is never reached from a hot root: its allocations are fine
// (it still gets an exported fact for importers, but no local report).
func coldAlloc(n int) []int {
	return make([]int, n)
}
