package hotalloc_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/hotalloc"
)

// TestHotpathWitnesses is the repo-level half of the hotpath contract: every
// //detlint:hotpath annotation must name a witness= test or benchmark, and
// the named function must exist in a *_test.go file of the SAME package, so
// the static 0-alloc check never outlives the runtime AllocsPerRun assertion
// it stands in for. Fixture trees are exempt (they deliberately model the
// missing-witness diagnostic).
func TestHotpathWitnesses(t *testing.T) {
	root := moduleRoot(t)
	checked := 0
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			// Only actual annotation lines count: the whole (indented)
			// line is the directive. Mentions inside doc prose, example
			// blocks, and string literals are not annotations.
			trimmed := strings.TrimSpace(line)
			rest, found := strings.CutPrefix(trimmed, hotalloc.HotPrefix)
			if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			rel, lineNo := path[len(root)+1:], i+1
			witness := ""
			for _, f := range strings.Fields(rest) {
				if v, ok := strings.CutPrefix(f, "witness="); ok {
					witness = v
				}
			}
			if witness == "" {
				t.Errorf("%s:%d: hotpath annotation names no witness= test or benchmark", rel, lineNo)
				continue
			}
			checked++
			if !packageDeclares(t, filepath.Dir(path), witness) {
				t.Errorf("%s:%d: witness %s not found in any *_test.go of the same package", rel, lineNo, witness)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Error("no //detlint:hotpath annotations found outside testdata; the hot paths lost their contract")
	}
}

// packageDeclares reports whether any *_test.go in dir declares func name.
func packageDeclares(t *testing.T, dir, name string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(src), "func "+name+"(") {
			return true
		}
	}
	return false
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}
