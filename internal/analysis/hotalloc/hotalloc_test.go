package hotalloc_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "a", "clean", "iface")
}
