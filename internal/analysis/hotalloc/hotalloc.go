// Package hotalloc defines an analyzer that keeps annotated hot paths
// free of heap allocations — the static twin of the repo's
// testing.AllocsPerRun assertions and the BENCH_spice.json throughput
// contract (~190 B/run Monte-Carlo aggregation, 0-alloc workspace reuse).
//
// A function is a hot root when its doc comment carries
//
//	//detlint:hotpath witness=<TestOrBenchmarkName>
//
// naming the AllocsPerRun test or benchmark that asserts the same
// property at runtime (an annotation without a witness is itself a
// diagnostic, and the repo-level TestHotpathWitnesses guard checks the
// named witness exists). The hot set is the roots plus their transitive
// same-package static callees, plus — when hot code calls through an
// interface — the same-package concrete implementations of that method
// (interface satisfaction), so extracting a helper or hiding one behind
// an interface does not silently drop it from the contract.
//
// Inside hot functions the analyzer flags the allocation forms the
// runtime witnesses would surface as AllocsPerRun regressions: make/new,
// escaping composite literals (&T{...}, slice and map literals),
// interface boxing of concrete values at calls, assignments and returns,
// variable-capturing closures, append that is not the self-append reuse
// idiom (dst = append(dst, ...)), string<->[]byte conversions and
// non-constant string concatenation, and go statements.
//
// Calls that leave the package are checked through analyzer facts: every
// package analyzed earlier in dependency order exports a bounded
// may-allocate summary (AllocsFact) for each of its functions, so a hot
// function calling stats.(*Dist).Add is diagnosed exactly when Add (or
// anything it transitively calls) allocates. A reasoned
// //detlint:ignore hotalloc suppression removes a site from the local
// report and from the exported summary, which is how deliberate
// amortized allocations (lazy one-time map init in accumulators, O(jobs)
// worker-pool setup) are kept out of their callers' diagnostics.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

// HotPrefix starts a hot-path annotation in a function's doc comment.
const HotPrefix = "//detlint:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags heap allocations (make/new, escaping literals, interface boxing, capturing closures, " +
		"non-reuse append, string conversions) in //detlint:hotpath functions and their transitive callees",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*AllocsFact)(nil)},
	Run:       run,
}

// maxFactSites bounds the per-function summary so facts stay O(1).
const maxFactSites = 3

// AllocsFact is the exported may-allocate summary of one function:
// human-readable descriptions of up to maxFactSites representative
// (transitive) allocation sites. The absence of a fact means the function
// was not seen to allocate.
type AllocsFact struct {
	Sites []string
}

func (*AllocsFact) AFact() {}

func (f *AllocsFact) String() string { return "allocates: " + strings.Join(f.Sites, "; ") }

// site is one potential heap allocation.
type site struct {
	pos  token.Pos
	desc string
}

// funcInfo is the per-function analysis state.
type funcInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	sites   []site       // direct allocation sites in the body (suppressions applied)
	callees []callEdge   // static same-package calls
	ifaces  []ifaceCall  // interface-method calls (for satisfaction propagation)
	remote  []remoteCall // cross-package static calls
	// hot annotation state
	hot     bool
	witness string
	hotPos  token.Pos
}

type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

type ifaceCall struct {
	method *types.Func // interface method object
	pos    token.Pos
}

type remoteCall struct {
	callee *types.Func
	pos    token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	rep := detlint.NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	funcs := make(map[*types.Func]*funcInfo)
	var order []*funcInfo // declaration order, for deterministic fact export
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		obj, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if obj == nil || decl.Body == nil {
			return
		}
		fi := &funcInfo{decl: decl, obj: obj}
		fi.hot, fi.witness, fi.hotPos = hotAnnotation(decl)
		collectBody(pass, rep, fi)
		funcs[obj] = fi
		order = append(order, fi)
	})

	// Transitive may-allocate summaries for every function: direct sites,
	// same-package callees (cycle-safe), imported facts and the known
	// allocating stdlib entry points for calls that leave the package.
	summaries := make(map[*types.Func][]string)
	state := make(map[*types.Func]int) // 0 unvisited, 1 in progress, 2 done
	var summarize func(fn *types.Func) []string
	summarize = func(fn *types.Func) []string {
		if state[fn] == 2 {
			return summaries[fn]
		}
		if state[fn] == 1 {
			return nil // recursion: the cycle's sites are collected at entry
		}
		state[fn] = 1
		fi := funcs[fn]
		var sites []string
		add := func(s string) {
			if len(sites) < maxFactSites {
				sites = append(sites, s)
			}
		}
		for _, s := range fi.sites {
			add(fmt.Sprintf("%s at %s", s.desc, relPos(pass, s.pos)))
		}
		for _, c := range fi.callees {
			if _, ok := funcs[c.callee]; !ok {
				continue
			}
			for _, s := range summarize(c.callee) {
				add(s)
			}
		}
		for _, rc := range fi.remote {
			if desc, ok := remoteAllocates(pass, rc.callee); ok {
				add(desc)
			}
		}
		state[fn] = 2
		summaries[fn] = sites
		return sites
	}
	for _, fi := range order {
		summarize(fi.obj)
	}
	for _, fi := range order {
		if s := summaries[fi.obj]; len(s) > 0 {
			pass.ExportObjectFact(fi.obj, &AllocsFact{Sites: s})
		}
	}

	// Hot cone: annotated roots plus transitive same-package callees,
	// widened through interface satisfaction at interface call sites.
	type hotEntry struct {
		fi   *funcInfo
		root string
	}
	rootOf := make(map[*types.Func]string)
	var queue []hotEntry
	for _, fi := range order {
		if !fi.hot {
			continue
		}
		if fi.witness == "" {
			rep.Reportf(fi.hotPos,
				"detlint:hotpath annotation on %s names no runtime witness; write //detlint:hotpath witness=<AllocsPerRun test or benchmark> so the static contract stays tied to a runtime assertion",
				fi.obj.Name())
		}
		queue = append(queue, hotEntry{fi, fi.obj.Name()})
	}
	implCache := newImplCache(pass)
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if _, seen := rootOf[e.fi.obj]; seen {
			continue
		}
		rootOf[e.fi.obj] = e.root
		for _, c := range e.fi.callees {
			if cfi, ok := funcs[c.callee]; ok {
				queue = append(queue, hotEntry{cfi, e.root})
			}
		}
		for _, ic := range e.fi.ifaces {
			for _, impl := range implCache.implementations(ic.method) {
				if cfi, ok := funcs[impl]; ok {
					queue = append(queue, hotEntry{cfi, e.root})
				}
			}
		}
	}

	// Report: direct sites inside hot functions, and hot calls into other
	// packages whose fact says the callee may allocate.
	for _, fi := range order {
		root, hot := rootOf[fi.obj]
		if !hot {
			continue
		}
		where := fmt.Sprintf("hotpath function %s", fi.obj.Name())
		if root != fi.obj.Name() {
			where = fmt.Sprintf("%s (hot via %s)", fi.obj.Name(), root)
		}
		for _, s := range fi.sites {
			rep.Reportf(s.pos, "%s in %s; hot paths must reuse workspace memory (witness: AllocsPerRun)", s.desc, where)
		}
		for _, rc := range fi.remote {
			if desc, ok := remoteAllocates(pass, rc.callee); ok {
				rep.Reportf(rc.pos, "call to %s may allocate (%s) in %s", qualifiedName(rc.callee), desc, where)
			}
		}
	}
	return nil, nil
}

// remoteAllocates reports whether a cross-package callee may allocate:
// either its exporting package recorded an AllocsFact, or it is one of the
// known allocating stdlib entry points (fmt, errors.New, the allocating
// strings/strconv/sort helpers). Unknown callees are trusted — the runtime
// witness is the backstop — so alloc-free stdlib like math never trips the
// contract.
func remoteAllocates(pass *analysis.Pass, callee *types.Func) (string, bool) {
	var fact AllocsFact
	if pass.ImportObjectFact(callee, &fact) {
		return strings.Join(fact.Sites, "; "), true
	}
	if pkg := callee.Pkg(); pkg != nil && stdAllocating(pkg.Path(), callee.Name()) {
		return "allocates by design", true
	}
	return "", false
}

// stdAllocating lists stdlib calls that always allocate their result.
func stdAllocating(pkgPath, name string) bool {
	switch pkgPath {
	case "fmt":
		return true
	case "errors":
		return name == "New"
	case "strings":
		switch name {
		case "Join", "Repeat", "Replace", "ReplaceAll", "Split", "SplitN", "Fields", "ToUpper", "ToLower", "Map", "Clone":
			return true
		}
	case "strconv":
		switch name {
		case "FormatFloat", "FormatInt", "FormatUint", "Itoa", "Quote", "AppendFloat":
			return true
		}
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable":
			return true // interface boxing / lessSwap closure
		}
	}
	return false
}

// hotAnnotation parses a //detlint:hotpath directive from the doc comment.
func hotAnnotation(decl *ast.FuncDecl) (hot bool, witness string, pos token.Pos) {
	if decl.Doc == nil {
		return false, "", token.NoPos
	}
	for _, c := range decl.Doc.List {
		rest, found := strings.CutPrefix(c.Text, HotPrefix)
		if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		w := ""
		for _, f := range strings.Fields(rest) {
			if v, ok := strings.CutPrefix(f, "witness="); ok {
				w = v
			}
		}
		return true, w, c.Pos()
	}
	return false, "", token.NoPos
}

// collectBody walks one function body (including nested function
// literals, whose allocations execute on behalf of the enclosing
// function) and records allocation sites and outgoing call edges.
// Suppressed sites are dropped here, so they reach neither the report nor
// the exported fact.
func collectBody(pass *analysis.Pass, rep *detlint.Reporter, fi *funcInfo) {
	info := pass.TypesInfo
	addSite := func(pos token.Pos, desc string) {
		if rep.Suppressed(pos) {
			return
		}
		fi.sites = append(fi.sites, site{pos, desc})
	}

	// Self-append reuse idiom: dst = append(dst, ...) and
	// dst = append(dst[:0], ...) are the workspace-reuse forms; collect
	// the append calls they bless before the generic walk.
	allowedAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(stripSlice(call.Args[0])) {
			allowedAppend[call] = true
		}
		return true
	})

	// flaggedLit suppresses nested reports inside an already-flagged
	// composite literal: []T{{...}} is one allocation.
	flaggedLit := make(map[ast.Node]bool)

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			addSite(n.Pos(), "go statement (allocates a goroutine)")

		case *ast.FuncLit:
			if capt := captured(info, n); capt != "" {
				addSite(n.Pos(), fmt.Sprintf("closure capturing %s", capt))
			}
			return true // walk the body: its allocations run on our behalf

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := n.X.(*ast.CompositeLit); ok {
					addSite(n.Pos(), "escaping composite literal (&-literal)")
					flaggedLit[lit] = true
				}
			}

		case *ast.CompositeLit:
			if flaggedLit[n] {
				return true
			}
			switch types.Unalias(info.TypeOf(n)).Underlying().(type) {
			case *types.Slice:
				addSite(n.Pos(), "slice literal (allocates a backing array)")
			case *types.Map:
				addSite(n.Pos(), "map literal")
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) && info.Types[n].Value == nil {
				addSite(n.Pos(), "string concatenation")
			}

		case *ast.CallExpr:
			collectCall(pass, fi, addSite, allowedAppend, n)
		}
		return true
	})

	// Boxing at assignments, returns, and declarations.
	collectBoxing(pass, fi, addSite)
}

// collectCall classifies one call expression: builtin allocators, type
// conversions, static same-package calls, interface dispatch, and
// cross-package calls.
func collectCall(pass *analysis.Pass, fi *funcInfo, addSite func(token.Pos, string), allowedAppend map[*ast.CallExpr]bool, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Conversions: T(x). String<->byte/rune conversions allocate; so does
	// converting a concrete value to an interface type.
	if tv, ok := info.Types[deparen(call.Fun)]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			switch {
			case isString(to) && isByteOrRuneSlice(from):
				addSite(call.Pos(), "[]byte/[]rune-to-string conversion")
			case isByteOrRuneSlice(to) && isString(from):
				addSite(call.Pos(), "string-to-[]byte/[]rune conversion")
			default:
				if desc, ok := boxes(info, call.Args[0], to); ok {
					addSite(call.Pos(), desc)
				}
			}
		}
		return
	}

	if isBuiltin(info, call, "make") {
		addSite(call.Pos(), "make")
		return
	}
	if isBuiltin(info, call, "new") {
		addSite(call.Pos(), "new")
		return
	}
	if isBuiltin(info, call, "append") {
		if !allowedAppend[call] {
			addSite(call.Pos(), "append outside the dst = append(dst, ...) reuse idiom (allocates a new backing array)")
		}
		// Boxing of variadic interface elements still applies below.
	}

	// Boxing of concrete arguments into interface parameters.
	if sig, ok := typeOfCallee(info, call); ok {
		params := sig.Params()
		np := params.Len()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= np-1:
				if call.Ellipsis.IsValid() {
					continue // forwarding an existing slice: no boxing here
				}
				pt = types.Unalias(params.At(np - 1).Type()).(*types.Slice).Elem()
			case i < np:
				pt = params.At(i).Type()
			default:
				continue
			}
			if desc, ok := boxes(info, arg, pt); ok {
				addSite(arg.Pos(), desc)
			}
		}
	}

	// Call edges.
	if callee := typeutil.StaticCallee(info, call); callee != nil {
		if callee.Pkg() == pass.Pkg {
			fi.callees = append(fi.callees, callEdge{callee, call.Pos()})
		} else if callee.Pkg() != nil {
			fi.remote = append(fi.remote, remoteCall{callee, call.Pos()})
		}
		return
	}
	// Interface dispatch: record for satisfaction propagation.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if m, ok := s.Obj().(*types.Func); ok {
				if _, isIface := types.Unalias(s.Recv()).Underlying().(*types.Interface); isIface {
					fi.ifaces = append(fi.ifaces, ifaceCall{m, call.Pos()})
				}
			}
		}
	}
}

// collectBoxing flags concrete-to-interface conversions at assignments,
// variable declarations, and returns.
func collectBoxing(pass *analysis.Pass, fi *funcInfo, addSite func(token.Pos, string)) {
	info := pass.TypesInfo
	results := fi.obj.Signature().Results()
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				lt := info.TypeOf(n.Lhs[i])
				if desc, ok := boxes(info, rhs, lt); ok {
					addSite(rhs.Pos(), desc)
				}
			}
		case *ast.ValueSpec:
			if n.Type == nil {
				return true
			}
			lt := info.TypeOf(n.Type)
			for _, v := range n.Values {
				if desc, ok := boxes(info, v, lt); ok {
					addSite(v.Pos(), desc)
				}
			}
		case *ast.ReturnStmt:
			if results == nil || len(n.Results) != results.Len() {
				return true
			}
			for i, res := range n.Results {
				if desc, ok := boxes(info, res, results.At(i).Type()); ok {
					addSite(res.Pos(), desc)
				}
			}
		case *ast.FuncLit:
			return false // its own returns have a different signature
		}
		return true
	})
}

// boxes reports whether storing expr into a location of type to performs
// an allocating interface conversion: to is an interface and expr has a
// concrete non-pointer type. Pointers fit in the interface data word and
// untyped constants are materialized in static data, so neither allocates.
func boxes(info *types.Info, expr ast.Expr, to types.Type) (string, bool) {
	if to == nil {
		return "", false
	}
	if _, ok := types.Unalias(to).Underlying().(*types.Interface); !ok {
		return "", false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return "", false
	}
	from := types.Unalias(tv.Type)
	switch from.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return "", false // single-word or already boxed
	case *types.Basic:
		if from.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return "", false
		}
	}
	return fmt.Sprintf("interface boxing of %s value", types.TypeString(tv.Type, pkgNameQualifier)), true
}

// pkgNameQualifier renders named types as pkgname.Type in diagnostics.
func pkgNameQualifier(p *types.Package) string { return p.Name() }

// captured returns the name of a variable the function literal captures
// from an enclosing scope ("" when it captures nothing): package-level
// objects and the literal's own locals/params do not count.
func captured(info *types.Info, lit *ast.FuncLit) string {
	declared := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || declared[obj] || v.IsField() {
			return true
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true // package-level
		}
		name = id.Name
		return false
	})
	return name
}

// implCache resolves interface methods to the same-package concrete
// methods satisfying them.
type implCache struct {
	pass  *analysis.Pass
	named []*types.Named
	memo  map[*types.Func][]*types.Func
	msets typeutil.MethodSetCache
}

func newImplCache(pass *analysis.Pass) *implCache {
	c := &implCache{pass: pass, memo: make(map[*types.Func][]*types.Func)}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted: deterministic
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if n, ok := tn.Type().(*types.Named); ok {
			if _, isIface := n.Underlying().(*types.Interface); !isIface {
				c.named = append(c.named, n)
			}
		}
	}
	return c
}

// implementations returns the concrete methods of package-local types
// that satisfy the interface declaring m, matched by method name.
func (c *implCache) implementations(m *types.Func) []*types.Func {
	if impls, ok := c.memo[m]; ok {
		return impls
	}
	iface, _ := m.Signature().Recv().Type().Underlying().(*types.Interface)
	var impls []*types.Func
	if iface != nil {
		for _, n := range c.named {
			ptr := types.NewPointer(n)
			if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
				continue
			}
			for _, t := range []types.Type{n, ptr} {
				if sel := c.msets.MethodSet(t).Lookup(m.Pkg(), m.Name()); sel != nil {
					if f, ok := sel.Obj().(*types.Func); ok && f.Pkg() == c.pass.Pkg {
						impls = append(impls, f)
						break
					}
				}
			}
		}
	}
	c.memo[m] = impls
	return impls
}

// typeOfCallee returns the signature of a call's callee when statically
// known (function, method, or func-typed value — not a type conversion or
// builtin).
func typeOfCallee(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := types.Unalias(t).Underlying().(*types.Signature)
	return sig, ok
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := deparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func deparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// stripSlice unwraps dst[:0]-style slice expressions to their base.
func stripSlice(e ast.Expr) ast.Expr {
	for {
		s, ok := e.(*ast.SliceExpr)
		if !ok {
			return e
		}
		e = s.X
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := types.Unalias(t).(*types.Named); ok {
			return fmt.Sprintf("%s.%s.%s", fn.Pkg().Name(), n.Obj().Name(), fn.Name())
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// relPos renders a short position (base filename:line) for fact text.
func relPos(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
