package plancover_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/plancover"
)

func TestPlanCover(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), plancover.Analyzer, "cat", "clean", "depcat", "dispatch", "ignore")
}
