// Package depcat defines a clean three-study catalog consumed by the
// dispatch fixture; it contributes the exported CatalogFact.
package depcat

const (
	X = "x"
	Y = "y"
	Z = "z"
)

func ShardableStudies() []string { return []string{X, Y, Z} }

func PlanStudy(study string) ([]string, error) {
	switch study {
	case X, Y, Z:
		return []string{study}, nil
	}
	return nil, nil
}

type Part struct{ N int }

func RunUnits(study string, keys []string) ([]Part, error) {
	switch study {
	case X, Y, Z:
		return []Part{{}}, nil
	}
	return nil, nil
}

func decode[T any](study string, raw []byte) ([]T, error) { return nil, nil }

func AssembleAll(raw []byte) ([]Part, error) {
	if _, err := decode[Part](X, raw); err != nil {
		return nil, err
	}
	if _, err := decode[Part](Y, raw); err != nil {
		return nil, err
	}
	return decode[Part](Z, raw)
}
