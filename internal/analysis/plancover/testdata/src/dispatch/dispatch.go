// Package dispatch imports a catalog and exercises the dispatch-switch
// completeness check: a switch handling two or more catalog studies must
// handle the whole catalog.
package dispatch

import "depcat"

// MergeAll forgets depcat.Z; planned units of "z" would fall through.
func MergeAll(study string) (string, error) {
	switch study { // want `dispatch switch handles 2 of 3 studies from the depcat catalog; missing: "z"`
	case depcat.X:
		return "x", nil
	case depcat.Y:
		return "y", nil
	}
	return "", nil
}

// Complete handles the whole catalog.
func Complete(study string) string {
	switch study {
	case depcat.X, depcat.Y, depcat.Z:
		return study
	default:
		return ""
	}
}

// SingleUse mentions one study for an unrelated purpose; below the
// two-study threshold it is not a dispatch switch.
func SingleUse(study string) bool {
	switch study {
	case depcat.X:
		return true
	}
	return false
}
