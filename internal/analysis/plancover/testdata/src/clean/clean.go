// Package clean models the real shard protocol shape with full coverage;
// any diagnostic here is a false positive. RunUnits handles one study
// inline behind an if-guard (the Monte-Carlo shape) and delegates the
// rest to a same-package callee's switch.
package clean

const (
	StudyX  = "x"
	StudyMC = "mc"
)

func ShardableStudies() []string {
	return []string{StudyX, StudyMC}
}

func PlanStudy(study string) ([]string, error) {
	switch study {
	case StudyX:
		return []string{"m0"}, nil
	case StudyMC:
		return []string{"2.5"}, nil
	}
	return nil, nil
}

type PartX struct{ V float64 }

type MCResult struct{ V float64 }

func RunUnits(study string, keys []string) ([][]byte, error) {
	if study == StudyMC {
		return encodeAll(runMC(len(keys)))
	}
	return runPer(study, keys)
}

// runPer is in RunUnits' same-package call cone, so its switch counts as
// dispatch.
func runPer(study string, keys []string) ([][]byte, error) {
	switch study {
	case StudyX:
		return encode(runX())
	}
	return nil, nil
}

func runMC(n int) []MCResult { return make([]MCResult, n) }
func runX() PartX            { return PartX{} }

func encode(v any) ([][]byte, error)           { return nil, nil }
func encodeAll(v []MCResult) ([][]byte, error) { return nil, nil }

func decode[T any](study string, raw [][]byte) ([]T, error) { return nil, nil }

func AssembleX(raw [][]byte) ([]PartX, error) { return decode[PartX](StudyX, raw) }

func AssembleMC(raw [][]byte) ([]MCResult, error) { return decode[MCResult](StudyMC, raw) }
