// Package cat exercises the flagged protocol cases in a catalog-defining
// package: a study missing its planner case, one never dispatched, one
// never assembled, and one whose consumer decodes the wrong partial type.
package cat

const (
	StudyA = "a"
	StudyB = "b"
	StudyC = "c"
	StudyD = "d"
	StudyE = "e"
)

// ShardableStudies is the catalog; missing-leg diagnostics anchor on the
// entries.
func ShardableStudies() []string {
	return []string{
		StudyA,
		StudyB, // want `catalog study "b" has no PlanStudy case`
		StudyC, // want `catalog study "c" is never dispatched by RunUnits`
		StudyD,
		StudyE, // want `catalog study "e" has no Assemble\* consumer`
	}
}

// PlanStudy forgets StudyB.
func PlanStudy(study string) ([]string, error) {
	switch study {
	case StudyA, StudyC, StudyD, StudyE:
		return []string{study + "/0"}, nil
	}
	return nil, nil
}

type PartA struct{ N int }

type PartD struct{ N int }

type PartWrong struct{ N int }

// RunUnits forgets StudyC; StudyE rides the if-guard form.
func RunUnits(study string, keys []string) ([][]byte, error) {
	switch study {
	case StudyA:
		return encode(runA())
	case StudyB:
		return encode(runB())
	case StudyD:
		return encode(runD())
	}
	if study == StudyE {
		return encode(runE())
	}
	return nil, nil
}

func runA() PartA { return PartA{} }
func runB() PartA { return PartA{} }
func runD() PartD { return PartD{} }
func runE() PartD { return PartD{} }

func encode(v any) ([][]byte, error) { return nil, nil }

func decode[T any](study string, raw [][]byte) ([]T, error) { return nil, nil }

func AssembleA(raw [][]byte) ([]PartA, error) { return decode[PartA](StudyA, raw) }
func AssembleB(raw [][]byte) ([]PartA, error) { return decode[PartA](StudyB, raw) }
func AssembleC(raw [][]byte) ([]PartA, error) { return decode[PartA](StudyC, raw) }

// AssembleD decodes a type the run path never produces.
func AssembleD(raw [][]byte) ([]PartWrong, error) { // want `AssembleD decodes cat\.PartWrong for study "d", but the run path`
	return decode[PartWrong](StudyD, raw)
}
