// Package ignore exercises //detlint:ignore interplay for plancover: a
// reasoned directive suppresses, an unreasoned one is itself reported and
// suppresses nothing, and directives naming other analyzers do not leak.
// Every study here is dispatched and assembled, so each flagged line
// carries exactly the missing-planner diagnostic.
package ignore

const (
	G1 = "g1"
	G2 = "g2"
	G3 = "g3"
	G4 = "g4"
)

func ShardableStudies() []string {
	return []string{
		G2, //detlint:ignore plancover // want `directive has no reason` `catalog study "g2" has no PlanStudy case`
		G3, //detlint:ignore maporder wrong analyzer name // want `catalog study "g3" has no PlanStudy case`
		G4,
		// The reasoned directive sits last: a directive also covers the
		// following line, which must not swallow another entry's report.
		G1, //detlint:ignore plancover planner case lands with the catalog growth in the next PR
	}
}

func PlanStudy(study string) ([]string, error) {
	switch study {
	case G4:
		return []string{study}, nil
	}
	return nil, nil
}

type Part struct{ N int }

func RunUnits(study string, keys []string) ([]Part, error) {
	switch study {
	case G1, G2, G3, G4:
		return []Part{{}}, nil
	}
	return nil, nil
}

func decode[T any](study string, raw []byte) ([]T, error) { return nil, nil }

func AssembleAll(raw []byte) ([]Part, error) {
	if _, err := decode[Part](G1, raw); err != nil {
		return nil, err
	}
	if _, err := decode[Part](G2, raw); err != nil {
		return nil, err
	}
	if _, err := decode[Part](G3, raw); err != nil {
		return nil, err
	}
	return decode[Part](G4, raw)
}
