// Package plancover defines an analyzer proving Plan/Run/Assemble parity
// across the study catalog (docs/CONTRACTS.md, "Plan parity").
//
// A sharded campaign works only if every study the catalog exports makes
// it through the whole protocol: ShardableStudies lists it, PlanStudy
// partitions it into work units, RunUnits (or a same-package callee)
// dispatches it, and an Assemble* function folds its partials back —
// decoding the same partial type the run path produced. A study missing
// any leg fails at campaign time, on a fleet, after the cheap studies
// already ran; a consumer decoding a different type than the runner
// encoded fails later still, at merge. The matrix and 2-D-sweep roadmap
// items multiply the catalog, so the protocol is machine-checked here.
//
// In the package defining the catalog (a ShardableStudies function
// returning a composite literal of named string constants), the analyzer
// checks each leg per study, and verifies that the type argument of a
// generic decode call in each Assemble* function (decodePartials[T])
// matches a partial type the study's run path can produce. The planner's
// own switch is excluded from the run-dispatch search: PlanStudy
// enumerating a study does not execute it.
//
// The catalog is exported as a package-level CatalogFact. In importing
// packages, any switch dispatching on two or more catalog study names
// must handle the entire catalog — the guard on merge/dispatch switches
// like the root package's MergeArtifacts, where a missing case silently
// drops a study (or lands in a default) when the catalog grows.
package plancover

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "plancover",
	Doc: "proves Plan/Run/Assemble coverage and partial-type parity for every catalog study, " +
		"and that importing packages' dispatch switches handle the whole catalog",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*CatalogFact)(nil)},
	Run:       run,
}

// CatalogFact carries a package's study catalog to its importers.
type CatalogFact struct {
	Studies []string // catalog order
}

func (*CatalogFact) AFact() {}

func (f *CatalogFact) String() string {
	return "catalog(" + strings.Join(f.Studies, ",") + ")"
}

// catalogEntry is one study with the position of its catalog listing,
// where missing-leg diagnostics anchor.
type catalogEntry struct {
	name string
	pos  ast.Expr
}

func run(pass *analysis.Pass) (any, error) {
	rep := detlint.NewReporter(pass)
	decls := packageFuncs(pass)
	entries := findCatalog(pass, decls["ShardableStudies"])
	if len(entries) > 0 {
		fact := &CatalogFact{Studies: make([]string, len(entries))}
		for i, e := range entries {
			fact.Studies[i] = e.name
		}
		pass.ExportPackageFact(fact)
		checkProtocol(pass, rep, decls, entries)
		return nil, nil
	}
	checkDispatch(pass, rep)
	return nil, nil
}

// packageFuncs indexes the package's function declarations by name
// (methods are not part of the shard protocol).
func packageFuncs(pass *analysis.Pass) map[string]*ast.FuncDecl {
	decls := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Body != nil {
				decls[fn.Name.Name] = fn
			}
		}
	}
	return decls
}

// findCatalog extracts the study catalog from ShardableStudies: the first
// returned composite literal whose elements are named string constants.
// Wrappers that re-slice another package's catalog (the root package's
// typed ShardableStudies) yield nothing and are not catalogs themselves.
func findCatalog(pass *analysis.Pass, fn *ast.FuncDecl) []catalogEntry {
	if fn == nil {
		return nil
	}
	var entries []catalogEntry
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if entries != nil {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		cl, ok := ret.Results[0].(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, e := range cl.Elts {
			if s, ok := constString(pass.TypesInfo, e); ok {
				entries = append(entries, catalogEntry{name: s, pos: e})
			}
		}
		return true
	})
	return entries
}

// constString returns e's compile-time string value.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkProtocol enforces the four legs in the catalog-defining package.
func checkProtocol(pass *analysis.Pass, rep *detlint.Reporter, decls map[string]*ast.FuncDecl, entries []catalogEntry) {
	catalog := make(map[string]bool, len(entries))
	for _, e := range entries {
		catalog[e.name] = true
	}

	planFn, runFn := decls["PlanStudy"], decls["RunUnits"]
	var planned map[string][]ast.Node
	if planFn != nil {
		planned = guardedScopes(pass, planFn, catalog)
	}
	produced := runProduced(pass, decls, runFn, catalog)
	assembled := assembleConsumers(pass, rep, decls, catalog, produced)

	for _, e := range entries {
		switch {
		case planFn == nil:
			rep.Reportf(e.pos.Pos(), "catalog study %q has no PlanStudy planner in this package; it cannot be planned into work units", e.name)
		case planned[e.name] == nil:
			rep.Reportf(e.pos.Pos(), "catalog study %q has no PlanStudy case; it cannot be planned into work units", e.name)
		}
		switch {
		case runFn == nil:
			rep.Reportf(e.pos.Pos(), "catalog study %q has no RunUnits executor in this package; planned units of this study cannot execute", e.name)
		case produced[e.name] == nil:
			rep.Reportf(e.pos.Pos(), "catalog study %q is never dispatched by RunUnits or its same-package callees; planned units of this study cannot execute", e.name)
		}
		if !assembled[e.name] {
			rep.Reportf(e.pos.Pos(), "catalog study %q has no Assemble* consumer; its shard partials cannot fold back into a campaign", e.name)
		}
	}
}

// guardedScopes returns, per catalog study, the statement scopes guarded
// by that study's name in fn: switch-case bodies whose case expressions
// carry the study's value, and if-bodies whose condition mentions it.
func guardedScopes(pass *analysis.Pass, fn *ast.FuncDecl, catalog map[string]bool) map[string][]ast.Node {
	scopes := make(map[string][]ast.Node)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SwitchStmt:
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if s, ok := constString(pass.TypesInfo, e); ok && catalog[s] {
						for _, body := range cc.Body {
							scopes[s] = append(scopes[s], body)
						}
					}
				}
			}
		case *ast.IfStmt:
			ast.Inspect(n.Cond, func(c ast.Node) bool {
				e, ok := c.(ast.Expr)
				if !ok {
					return true
				}
				if s, ok := constString(pass.TypesInfo, e); ok && catalog[s] {
					scopes[s] = append(scopes[s], n.Body)
					return false
				}
				return true
			})
		}
		return true
	})
	return scopes
}

// runProduced walks RunUnits plus its transitive same-package callees —
// excluding the PlanStudy planner, whose switch enumerates studies without
// executing them — and collects, per study, the types its guarded scopes
// can produce (call results, returned values, composite literals; slice
// element types included).
func runProduced(pass *analysis.Pass, decls map[string]*ast.FuncDecl, runFn *ast.FuncDecl, catalog map[string]bool) map[string][]types.Type {
	if runFn == nil {
		return nil
	}
	produced := make(map[string][]types.Type)
	visited := map[*ast.FuncDecl]bool{runFn: true}
	work := []*ast.FuncDecl{runFn}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		guarded := guardedScopes(pass, fn, catalog)
		studies := make([]string, 0, len(guarded))
		for s := range guarded {
			studies = append(studies, s)
		}
		sort.Strings(studies)
		for _, s := range studies {
			for _, scope := range guarded[s] {
				produced[s] = append(produced[s], scopeTypes(pass, scope)...)
			}
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || callee.Pkg() != pass.Pkg || callee.Name() == "PlanStudy" {
				return true
			}
			if next := decls[callee.Name()]; next != nil && !visited[next] {
				visited[next] = true
				work = append(work, next)
			}
			return true
		})
	}
	return produced
}

// scopeTypes collects the partial-result candidate types a guarded scope
// can produce.
func scopeTypes(pass *analysis.Pass, scope ast.Node) []types.Type {
	var out []types.Type
	add := func(t types.Type) {
		if t == nil {
			return
		}
		if tup, ok := t.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				out = appendCandidate(out, tup.At(i).Type())
			}
			return
		}
		out = appendCandidate(out, t)
	}
	ast.Inspect(scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			add(pass.TypesInfo.TypeOf(n))
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				add(pass.TypesInfo.TypeOf(e))
			}
		case *ast.CompositeLit:
			add(pass.TypesInfo.TypeOf(n))
		}
		return true
	})
	return out
}

var errorType = types.Universe.Lookup("error").Type()

// appendCandidate records t (and a slice's element type) unless it is
// error, untyped, or invalid.
func appendCandidate(out []types.Type, t types.Type) []types.Type {
	if t == nil || types.Identical(t, errorType) {
		return out
	}
	if b, ok := types.Unalias(t).(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return out
	}
	out = append(out, t)
	if sl, ok := types.Unalias(t).Underlying().(*types.Slice); ok {
		out = append(out, sl.Elem())
	}
	return out
}

// assembleConsumers finds Assemble* functions, marks the catalog studies
// they reference as assembled, and checks the generic decode call's type
// argument against the study's producible types.
func assembleConsumers(pass *analysis.Pass, rep *detlint.Reporter, decls map[string]*ast.FuncDecl, catalog map[string]bool, produced map[string][]types.Type) map[string]bool {
	assembled := make(map[string]bool)
	names := make([]string, 0, len(decls))
	for name := range decls {
		if strings.HasPrefix(name, "Assemble") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fn := decls[name]
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if s, ok := constString(pass.TypesInfo, e); ok && catalog[s] {
					assembled[s] = true
				}
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			study := ""
			for _, arg := range call.Args {
				if s, ok := constString(pass.TypesInfo, arg); ok && catalog[s] {
					study = s
					break
				}
			}
			if study == "" {
				return true
			}
			typeArg := instanceTypeArg(pass.TypesInfo, call)
			if typeArg == nil {
				return true
			}
			if cands := produced[study]; len(cands) > 0 && !containsIdentical(cands, typeArg) {
				rep.Reportf(fn.Name.Pos(), "%s decodes %s for study %q, but the run path for that study produces %s; the shard partial round-trip cannot line up",
					name, typeArg, study, typeList(cands))
			}
			return true
		})
	}
	return assembled
}

// instanceTypeArg returns the first type argument of a call to an
// instantiated generic function, or nil.
func instanceTypeArg(info *types.Info, call *ast.CallExpr) types.Type {
	fun := call.Fun
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ix.X
	}
	if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ix.X
	}
	id, ok := fun.(*ast.Ident)
	if !ok {
		if sel, okSel := fun.(*ast.SelectorExpr); okSel {
			id = sel.Sel
		} else {
			return nil
		}
	}
	inst, ok := info.Instances[id]
	if !ok || inst.TypeArgs == nil || inst.TypeArgs.Len() == 0 {
		return nil
	}
	return inst.TypeArgs.At(0)
}

func containsIdentical(ts []types.Type, t types.Type) bool {
	for _, c := range ts {
		if types.Identical(c, t) {
			return true
		}
	}
	return false
}

// typeList renders candidate types deduplicated, in stable order.
func typeList(ts []types.Type) string {
	seen := make(map[string]bool)
	var names []string
	for _, t := range ts {
		s := t.String()
		if !seen[s] {
			seen[s] = true
			names = append(names, s)
		}
	}
	sort.Strings(names)
	return strings.Join(names, " | ")
}

// checkDispatch enforces catalog completeness on dispatch switches in
// packages importing a catalog: a switch handling two or more studies of
// one imported catalog must handle them all.
func checkDispatch(pass *analysis.Pass, rep *detlint.Reporter) {
	type imported struct {
		path    string
		studies []string
	}
	var catalogs []imported
	imports := append([]*types.Package(nil), pass.Pkg.Imports()...)
	sort.Slice(imports, func(i, j int) bool { return imports[i].Path() < imports[j].Path() })
	for _, imp := range imports {
		var fact CatalogFact
		if pass.ImportPackageFact(imp, &fact) {
			catalogs = append(catalogs, imported{path: imp.Path(), studies: fact.Studies})
		}
	}
	if len(catalogs) == 0 {
		return
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		sw := n.(*ast.SwitchStmt)
		handled := make(map[string]bool)
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				if s, ok := constString(pass.TypesInfo, e); ok {
					handled[s] = true
				}
			}
		}
		for _, cat := range catalogs {
			matched, missing := 0, []string(nil)
			for _, s := range cat.studies {
				if handled[s] {
					matched++
				} else {
					missing = append(missing, fmt.Sprintf("%q", s))
				}
			}
			if matched >= 2 && len(missing) > 0 {
				rep.Reportf(sw.Pos(), "dispatch switch handles %d of %d studies from the %s catalog; missing: %s — planned units of a missing study are silently dropped at dispatch",
					matched, len(cat.studies), cat.path, strings.Join(missing, ", "))
			}
		}
	})
}
