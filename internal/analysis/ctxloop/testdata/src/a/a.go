// Package a exercises the ctxloop analyzer: loops that can never observe
// cancellation are flagged; consulting or forwarding ctx is clean.
package a

import "context"

func work(item int) int { return item * 2 }

func workCtx(ctx context.Context, item int) int { return item }

// SpinForever can never be cancelled.
func SpinForever(ctx context.Context, items []int) {
	total := 0
	for { // want `unbounded loop in a context-taking function never consults the context`
		total += work(total)
	}
}

// WhileStyle is the same hazard in while form. The ctx is consulted
// before the loop, which does not help once the loop is entered.
func WhileStyle(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	total := 0
	for total < n { // want `unbounded loop in a context-taking function never consults the context`
		total += work(total)
	}
	return total
}

// PollingLoop consults ctx every iteration: clean.
func PollingLoop(ctx context.Context, n int) int {
	total := 0
	for total < n {
		if ctx.Err() != nil {
			return total
		}
		total += work(total)
	}
	return total
}

// DroppedCtx receives a context and ignores it while sweeping items.
func DroppedCtx(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items { // want `function receives a context it never consults or forwards`
		total += work(it)
	}
	return total
}

// BlankCtx cannot consult its context at all; the work loop is flagged.
func BlankCtx(_ context.Context, items []int) int {
	total := 0
	for _, it := range items { // want `function receives a context it never consults or forwards`
		total += work(it)
	}
	return total
}

// ForwardsPerItem passes ctx to the per-item work: clean.
func ForwardsPerItem(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items {
		total += workCtx(ctx, it)
	}
	return total
}

// BindsBeforeLoop forwards ctx into a helper before the loop (the
// tester.WithContext idiom): clean.
func BindsBeforeLoop(ctx context.Context, items []int) int {
	stop := workCtx(ctx, 0)
	total := 0
	for _, it := range items {
		total += work(it + stop)
	}
	return total
}

// ChecksErrInLoop consults ctx.Err() each iteration: clean.
func ChecksErrInLoop(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items {
		if ctx.Err() != nil {
			break
		}
		total += work(it)
	}
	return total
}

// NoCtx takes no context: out of scope.
func NoCtx(items []int) int {
	total := 0
	for _, it := range items {
		total += work(it)
	}
	return total
}

// BoundedNoWork loops without calls (pure folds are cheap): clean.
func BoundedNoWork(ctx context.Context, items []int) int {
	_ = workCtx(ctx, 0)
	total := 0
	for _, it := range items {
		total += it
	}
	return total
}

// DrainChannel ranges over a channel: the producer owns termination.
func DrainChannel(ctx context.Context, ch <-chan int) int {
	_ = workCtx(ctx, 0)
	total := 0
	for it := range ch {
		total += work(it)
	}
	return total
}
