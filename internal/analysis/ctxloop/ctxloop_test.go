package ctxloop_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/ctxloop"
)

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxloop.Analyzer, "a")
}
