// Package ctxloop defines an analyzer enforcing the cancellation contract
// on experiment drivers: a function that accepts a context must give that
// context a way to stop its loops.
//
// Two shapes are flagged:
//
//   - an unbounded loop (`for {}` or `for cond {}`) whose body never
//     consults the context — cancellation can never interrupt it, and
//   - a function that receives a context it never consults or forwards at
//     all while running per-item loops that do real work — every caller's
//     cancel is silently ignored for the whole sweep.
//
// Passing ctx into a callee (tester.WithContext(ctx), runPool(ctx, ...))
// counts as consulting it: cancellation then propagates through the
// callee. This is the static side of the PR 1 contract that `rhvpp`
// shards exit promptly and artifact-free on SIGINT/SIGTERM.
package ctxloop

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "flags loops in context-taking functions that can never observe cancellation " +
		"(unbounded loops ignoring ctx; functions that drop their ctx while looping over work)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	rep := detlint.NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var ftype *ast.FuncType
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ftype, body = fn.Type, fn.Body
		case *ast.FuncLit:
			ftype, body = fn.Type, fn.Body
		}
		if body == nil {
			return
		}
		ctxObj, has := ctxParam(pass.TypesInfo, ftype)
		if !has {
			return
		}
		checkFunc(pass, rep, ctxObj, body)
	})
	return nil, nil
}

// ctxParam finds a context.Context parameter. ctxObj is nil when the
// parameter is unnamed or blank (it can never be consulted).
func ctxParam(info *types.Info, ftype *ast.FuncType) (ctxObj types.Object, has bool) {
	if ftype.Params == nil {
		return nil, false
	}
	for _, field := range ftype.Params.List {
		if !isContextType(info.TypeOf(field.Type)) {
			continue
		}
		has = true
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := info.Defs[name]; obj != nil {
				return obj, true
			}
		}
	}
	return nil, has
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// checkFunc inspects one function body (not descending into nested
// function literals' own loops, which are their own scopes).
func checkFunc(pass *analysis.Pass, rep *detlint.Reporter, ctxObj types.Object, body *ast.BlockStmt) {
	ctxUsed := ctxObj != nil && detlint.UsesObject(pass.TypesInfo, body, ctxObj)
	var firstWorkLoop ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its loops answer to its own (or captured) ctx scope
		case *ast.ForStmt:
			if unbounded(n) && !consultsCtx(pass.TypesInfo, n.Body, ctxObj) {
				rep.Reportf(n.Pos(), "unbounded loop in a context-taking function never consults the context; add a ctx.Err() check or a ctx.Done() select so cancellation can stop it")
				return true // already reported; don't double up as a dropped-ctx work loop
			}
			if firstWorkLoop == nil && loopDoesWork(n.Body) {
				firstWorkLoop = n
			}
		case *ast.RangeStmt:
			if isChan(pass.TypesInfo.TypeOf(n.X)) {
				return true // channel ranges end when the producer stops
			}
			if firstWorkLoop == nil && loopDoesWork(n.Body) {
				firstWorkLoop = n
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	if !ctxUsed && firstWorkLoop != nil {
		rep.Reportf(firstWorkLoop.Pos(), "function receives a context it never consults or forwards, so this per-item loop can never observe cancellation; check ctx.Err() per iteration or pass ctx to the per-item work")
	}
}

// unbounded recognizes `for {}` and while-style `for cond {}` loops: no
// iteration variable marches toward completion.
func unbounded(f *ast.ForStmt) bool {
	return f.Cond == nil || (f.Init == nil && f.Post == nil)
}

// consultsCtx reports whether the loop body references the context
// (ctx.Err(), ctx.Done(), or passing ctx onward all count).
func consultsCtx(info *types.Info, body *ast.BlockStmt, ctxObj types.Object) bool {
	return ctxObj != nil && detlint.UsesObject(info, body, ctxObj)
}

// loopDoesWork reports whether the loop body contains any call — the
// proxy for per-item work worth cancelling.
func loopDoesWork(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// isChan reports whether t is a channel type.
func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok
}
