// Package canon canonicalizes a struct fingerprinted in another package:
// the FingerprintFact must flow across the import for the diagnostic to
// name the fingerprint (rather than complaining about a missing
// annotation).
package canon

import (
	"encoding/json"

	"dep"
)

// Canonical zeroes an imported struct's field without justification.
func Canonical(o dep.Opts) []byte {
	o.Width = 0 // want `field Width is zeroed out of the canonical Opts fingerprint without a reasoned`
	b, _ := json.Marshal(o)
	return b
}

// Justified is the fixed form.
func Justified(o dep.Opts) []byte {
	o.Width = 0 //detlint:execshape batch width shapes lane packing, lanes replay the scalar op sequence
	b, _ := json.Marshal(o)
	return b
}
