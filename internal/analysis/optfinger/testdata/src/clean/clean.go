// Package clean holds fingerprint-contract code with no violations; any
// diagnostic here is a false positive.
package clean

import "encoding/json"

// Opts follows the contract: v1 fields keep plain tags, post-v1 fields are
// omitempty, and the derived cache justifies its exclusion.
//
//detlint:fingerprint v1=Seed,Rows
type Opts struct {
	Seed    int     `json:"seed"`
	Rows    int     `json:"rows"`
	Extra   float64 `json:"extra,omitempty"`
	Scratch []byte  `json:"-"` //detlint:execshape derived cache, rebuilt deterministically per shard
	Good    bool    `json:"good,omitempty"`
}

// Canon justifies every zeroing, in both directive forms.
func Canon(o Opts) []byte {
	o.Extra = 0 //detlint:execshape tolerance override shapes step count, results are pinned by the reference
	//detlint:execshape flag toggles a log line only, never the numbers
	o.Good = false
	b, _ := json.Marshal(o)
	return b
}

// Build assigns non-zero values and marshals; without a zeroing it is an
// ordinary constructor, not a canonicalizer.
func Build() []byte {
	var o Opts
	o.Seed = 42
	o.Rows = 8
	b, _ := json.Marshal(o)
	return b
}

// Encode marshals without touching fields at all.
func Encode(o Opts) []byte {
	b, _ := json.Marshal(o)
	return b
}

// ZeroNoMarshal zeroes a field but never marshals the value here.
func ZeroNoMarshal(o Opts) Opts {
	o.Extra = 0
	return o
}
