// Package ignore exercises //detlint:ignore interplay for optfinger: a
// reasoned directive suppresses, an unreasoned one is itself reported and
// suppresses nothing, and directives naming other analyzers do not leak.
package ignore

import "encoding/json"

// Opts is fingerprinted and clean at the declaration.
//
//detlint:fingerprint v1=Seed
type Opts struct {
	Seed int `json:"seed"`
	Jobs int `json:"jobs,omitempty"`
}

// SuppressedTrailing uses the trailing-comment form with a reason.
func SuppressedTrailing(o Opts) []byte {
	o.Jobs = 0 //detlint:ignore optfinger jobs zeroing is exercised by the execshape migration test
	b, _ := json.Marshal(o)
	return b
}

// SuppressedOwnLine uses the own-line form covering the next line.
func SuppressedOwnLine(o Opts) []byte {
	//detlint:ignore optfinger jobs zeroing is exercised by the execshape migration test
	o.Jobs = 0
	b, _ := json.Marshal(o)
	return b
}

// Unreasoned: the directive itself is reported and does not suppress.
func Unreasoned(o Opts) []byte {
	o.Jobs = 0 //detlint:ignore optfinger // want `directive has no reason` `field Jobs is zeroed out of the canonical`
	b, _ := json.Marshal(o)
	return b
}

// WrongAnalyzer: a directive naming another analyzer does not suppress
// this one.
func WrongAnalyzer(o Opts) []byte {
	o.Jobs = 0 //detlint:ignore maporder wrong analyzer name // want `field Jobs is zeroed out of the canonical`
	b, _ := json.Marshal(o)
	return b
}
