// Package dep declares a fingerprinted struct consumed by the canon
// fixture; it is itself clean and contributes only the exported fact.
package dep

// Opts is the shared options struct.
//
//detlint:fingerprint v1=Seed
type Opts struct {
	Seed  int `json:"seed"`
	Width int `json:"width,omitempty"`
}
