// Package a exercises the flagged cases of the fingerprint contract.
package a

import "encoding/json"

// Opts is the fingerprinted options struct with declaration-side bugs.
//
//detlint:fingerprint v1=Seed,Rows,Missing // want `v1 set names Missing, which is not a field of Opts`
type Opts struct {
	Seed    int     `json:"seed"`
	Rows    int     `json:"rows,omitempty"` // want `v1 field Rows of fingerprinted struct Opts must not carry omitempty`
	hidden  int     // want `unexported field hidden of fingerprinted struct Opts never reaches the canonical JSON encoding`
	Extra   float64 `json:"extra"` // want `post-v1 field Extra of fingerprinted struct Opts must carry json:",omitempty"`
	Scratch []byte  `json:"-"`     // want `field Scratch of fingerprinted struct Opts is excluded from the canonical encoding via json:"-" without a reasoned`
	Good    bool    `json:"good,omitempty"`
}

// Malformed lacks the v1= field set.
//
//detlint:fingerprint // want `directive must freeze the v1 field set`
type Malformed struct {
	N int `json:"n"`
}

// NotStruct cannot carry a fingerprint.
//
//detlint:fingerprint v1=X // want `annotates NotStruct, which is not a struct type`
type NotStruct int

// Canon zeroes a field before marshaling without justification.
func Canon(o Opts) []byte {
	o.Seed = 0 // want `field Seed is zeroed out of the canonical Opts fingerprint without a reasoned`
	b, _ := json.Marshal(o)
	return b
}

// CanonRewrite rewrites a field to a non-zero value inside a canonicalizer.
func CanonRewrite(o Opts) []byte {
	o.Seed = 0 //detlint:execshape seed is replayed per shard from the unit encoding
	o.Rows = 7 // want `canonicalizer rewrites field Rows of Opts to a non-zero value`
	b, _ := json.Marshal(&o)
	return b
}

// CanonUnreasoned carries an execshape directive with no reason: the
// directive is reported and the zeroing stays flagged.
func CanonUnreasoned(o Opts) []byte {
	o.Seed = 0 //detlint:execshape // want `execshape directive has no reason` `field Seed is zeroed out of the canonical`
	b, _ := json.Marshal(o)
	return b
}

// Plain is canonicalized but never annotated.
type Plain struct {
	N int `json:"n"`
}

// CanonPlain flags the missing annotation at the marshal site.
func CanonPlain(p Plain) []byte {
	p.N = 0
	b, _ := json.Marshal(p) // want `Plain is canonicalized here \(fields zeroed before json.Marshal\) but its type carries no`
	return b
}
