package optfinger_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/optfinger"
)

func TestOptFinger(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), optfinger.Analyzer, "a", "clean", "canon", "ignore")
}
