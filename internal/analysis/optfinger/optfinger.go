// Package optfinger defines an analyzer guarding the canonical options
// fingerprint that gates shard mergeability (docs/CONTRACTS.md,
// "Fingerprint completeness").
//
// Shard artifacts are mergeable only when their canonical Options encoding
// is byte-identical (internal/artifact.Merge compares the compacted JSON).
// Two mistakes fracture that contract from opposite sides:
//
//   - A semantics-changing knob excluded from the encoding (zeroed in the
//     canonicalizer, or hidden in an unexported field) lets incompatible
//     shards merge silently.
//   - A knob added without json:",omitempty" changes the canonical bytes of
//     every artifact encoded before the field existed, fracturing merges
//     across versions.
//
// The analyzer keys off two annotations. A struct whose canonical encoding
// matters declares its frozen v1 field set on its doc comment:
//
//	//detlint:fingerprint v1=Seed,Geometry,Config,...
//
// Fields outside the v1 set must carry json:",omitempty" (so pre-existing
// artifacts keep their bytes), and v1 fields must not (dropping a zero v1
// field would change them). The annotation is exported as a FingerprintFact
// on the type, so canonicalizers in other packages are checked too.
//
// A canonicalizer — a function that zeroes fields of a value and then
// json.Marshals it — must justify every zeroed field as a genuine
// exec-shape knob (one that changes how the result is computed, never what
// it is) with a reasoned directive covering the assignment's line:
//
//	o.Jobs = 0 //detlint:execshape worker count shapes scheduling, not results
//
// An unreasoned execshape directive is itself reported and justifies
// nothing, mirroring //detlint:ignore.
package optfinger

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "optfinger",
	Doc: "checks canonical-fingerprint completeness: every field of a //detlint:fingerprint struct " +
		"flows into the canonical JSON encoding or is zeroed under a reasoned //detlint:execshape, " +
		"and post-v1 fields carry json:\",omitempty\" so old shard artifacts stay decodable",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*FingerprintFact)(nil)},
	Run:       run,
}

// FingerprintFact marks a type as carrying a //detlint:fingerprint
// annotation; it is attached to the type name so canonicalizers in
// importing packages know the type is under contract.
type FingerprintFact struct {
	V1 []string // the frozen v1 field set, sorted
}

func (*FingerprintFact) AFact() {}

func (f *FingerprintFact) String() string {
	return "fingerprint(v1=" + strings.Join(f.V1, ",") + ")"
}

const (
	// FingerprintPrefix starts the struct annotation:
	//
	//	//detlint:fingerprint v1=<Field,Field,...>
	FingerprintPrefix = "//detlint:fingerprint"
	// ExecShapePrefix starts the zeroing justification:
	//
	//	//detlint:execshape <why this knob cannot change results>
	//
	// It covers its own line and the next, like //detlint:ignore.
	ExecShapePrefix = "//detlint:execshape"
)

// directiveBody returns the comment body after prefix with any embedded
// "//" (an ordinary trailing comment, used by fixtures for // want
// expectations) stripped. ok is false when c does not carry the prefix.
func directiveBody(c *ast.Comment, prefix string) (body string, ok bool) {
	rest, found := strings.CutPrefix(c.Text, prefix)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest), true
}

func run(pass *analysis.Pass) (any, error) {
	rep := detlint.NewReporter(pass)
	shape := collectExecShape(pass, rep)
	local := collectFingerprints(pass, rep, shape)
	checkCanonicalizers(pass, rep, shape, local)
	return nil, nil
}

// execShape maps filename -> line -> true for lines covered by a reasoned
// //detlint:execshape directive (its own line and the next).
type execShape map[string]map[int]bool

func (s execShape) covers(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return s[p.Filename][p.Line]
}

// collectExecShape scans every comment for execshape directives, reporting
// unreasoned ones (which justify nothing).
func collectExecShape(pass *analysis.Pass, rep *detlint.Reporter) execShape {
	shape := make(execShape)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := directiveBody(c, ExecShapePrefix)
				if !ok {
					continue
				}
				if body == "" {
					rep.Reportf(c.Pos(), "detlint:execshape directive has no reason; say why the knob shapes execution but never results (an unreasoned execshape justifies nothing)")
					continue
				}
				p := pass.Fset.Position(c.Pos())
				lines := shape[p.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					shape[p.Filename] = lines
				}
				lines[p.Line] = true
				lines[p.Line+1] = true
			}
		}
	}
	return shape
}

// collectFingerprints finds //detlint:fingerprint annotations on struct
// type declarations, checks the declaration-side contract, and exports a
// FingerprintFact per annotated type. It returns the annotated type names
// declared in this package.
func collectFingerprints(pass *analysis.Pass, rep *detlint.Reporter, shape execShape) map[*types.TypeName]bool {
	local := make(map[*types.TypeName]bool)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.GenDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.GenDecl)
		if decl.Tok != token.TYPE {
			return
		}
		for _, spec := range decl.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			dir, v1 := fingerprintDirective(decl.Doc, ts.Doc)
			if dir == nil {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				rep.Reportf(dir.Pos(), "detlint:fingerprint annotates %s, which is not a struct type", ts.Name.Name)
				continue
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				continue
			}
			if v1 == nil {
				rep.Reportf(dir.Pos(), "detlint:fingerprint directive must freeze the v1 field set: //detlint:fingerprint v1=Field,Field,...")
				continue
			}
			checkFingerprintedStruct(pass, rep, shape, dir, ts.Name.Name, st, v1)
			names := make([]string, 0, len(v1))
			for name := range v1 {
				names = append(names, name)
			}
			sort.Strings(names)
			pass.ExportObjectFact(tn, &FingerprintFact{V1: names})
			local[tn] = true
		}
	})
	return local
}

// fingerprintDirective finds a fingerprint annotation in the declaration's
// doc comments and parses its v1 set (nil when malformed).
func fingerprintDirective(docs ...*ast.CommentGroup) (*ast.Comment, map[string]bool) {
	for _, doc := range docs {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			body, ok := directiveBody(c, FingerprintPrefix)
			if !ok {
				continue
			}
			list, found := strings.CutPrefix(body, "v1=")
			if !found {
				return c, nil
			}
			v1 := make(map[string]bool)
			for _, name := range strings.Split(list, ",") {
				if name = strings.TrimSpace(name); name != "" {
					v1[name] = true
				}
			}
			if len(v1) == 0 {
				return c, nil
			}
			return c, v1
		}
	}
	return nil, nil
}

// checkFingerprintedStruct enforces the declaration-side contract on one
// annotated struct.
func checkFingerprintedStruct(pass *analysis.Pass, rep *detlint.Reporter, shape execShape, dir *ast.Comment, typeName string, st *ast.StructType, v1 map[string]bool) {
	fields := make(map[string]bool)
	for _, field := range st.Fields.List {
		tag := fieldTag(field)
		for _, name := range fieldNames(field) {
			fields[name.Name] = true
			switch {
			case !name.IsExported():
				rep.Reportf(name.Pos(), "unexported field %s of fingerprinted struct %s never reaches the canonical JSON encoding; a knob hidden here merges incompatible shards silently", name.Name, typeName)
			case jsonName(tag, name.Name) == "-":
				if !shape.covers(pass.Fset, name.Pos()) {
					rep.Reportf(name.Pos(), "field %s of fingerprinted struct %s is excluded from the canonical encoding via json:\"-\" without a reasoned //detlint:execshape directive", name.Name, typeName)
				}
			case v1[name.Name]:
				if hasOmitEmpty(tag) {
					rep.Reportf(name.Pos(), "v1 field %s of fingerprinted struct %s must not carry omitempty; dropping a zero v1 field would change the canonical bytes of existing artifacts", name.Name, typeName)
				}
			default:
				if !hasOmitEmpty(tag) {
					rep.Reportf(name.Pos(), "post-v1 field %s of fingerprinted struct %s must carry json:\",omitempty\" so artifacts encoded before the field existed keep their canonical bytes", name.Name, typeName)
				}
			}
		}
	}
	for _, name := range sortedKeys(v1) {
		if !fields[name] {
			rep.Reportf(dir.Pos(), "detlint:fingerprint v1 set names %s, which is not a field of %s", name, typeName)
		}
	}
}

// fieldNames returns the declared names of a struct field (the embedded
// type name for anonymous fields).
func fieldNames(field *ast.Field) []*ast.Ident {
	if len(field.Names) > 0 {
		return field.Names
	}
	// Embedded field: name is the (possibly qualified) type name.
	expr := field.Type
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	switch t := expr.(type) {
	case *ast.Ident:
		return []*ast.Ident{t}
	case *ast.SelectorExpr:
		return []*ast.Ident{t.Sel}
	}
	return nil
}

func fieldTag(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw := field.Tag.Value
	return reflect.StructTag(strings.Trim(raw, "`")).Get("json")
}

// jsonName returns the encoded name from a json tag ("" keeps the field
// name, "-" drops the field).
func jsonName(tag, fieldName string) string {
	name, _, _ := strings.Cut(tag, ",")
	if name == "" {
		return fieldName
	}
	return name
}

func hasOmitEmpty(tag string) bool {
	_, opts, _ := strings.Cut(tag, ",")
	for _, opt := range strings.Split(opts, ",") {
		if opt == "omitempty" {
			return true
		}
	}
	return false
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// canonTarget is one variable a function both field-assigns and marshals.
type canonTarget struct {
	obj      *types.Var
	tn       *types.TypeName
	marshal  token.Pos      // the json.Marshal call site
	zeros    []*fieldAssign // zero-literal field assignments
	rewrites []*fieldAssign // non-zero field assignments
}

type fieldAssign struct {
	pos   token.Pos
	field string
}

// checkCanonicalizers scans every function for the canonicalizer shape —
// zero a field, then json.Marshal the value — and enforces the execshape
// contract on it.
func checkCanonicalizers(pass *analysis.Pass, rep *detlint.Reporter, shape execShape, local map[*types.TypeName]bool) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil {
			return
		}
		targets := make(map[*types.Var]*canonTarget)
		ast.Inspect(fn.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if !isJSONMarshal(pass.TypesInfo, m) || len(m.Args) == 0 {
					return true
				}
				obj, tn := marshaledVar(pass.TypesInfo, m.Args[0])
				if obj == nil {
					return true
				}
				if t := targets[obj]; t != nil {
					if t.marshal == token.NoPos {
						t.marshal = m.Pos()
					}
				} else {
					targets[obj] = &canonTarget{obj: obj, tn: tn, marshal: m.Pos()}
				}
			case *ast.AssignStmt:
				if m.Tok != token.ASSIGN {
					return true
				}
				for i, lhs := range m.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					base, ok := sel.X.(*ast.Ident)
					if !ok {
						continue
					}
					obj, ok := pass.TypesInfo.Uses[base].(*types.Var)
					if !ok {
						continue
					}
					fa := &fieldAssign{pos: lhs.Pos(), field: sel.Sel.Name}
					t := targets[obj]
					if t == nil {
						tn := namedStructName(obj.Type())
						if tn == nil {
							continue
						}
						t = &canonTarget{obj: obj, tn: tn}
						targets[obj] = t
					}
					if i < len(m.Rhs) && isZeroExpr(pass.TypesInfo, m.Rhs[i]) {
						t.zeros = append(t.zeros, fa)
					} else if len(m.Lhs) == len(m.Rhs) {
						t.rewrites = append(t.rewrites, fa)
					}
				}
			}
			return true
		})
		for _, t := range targets {
			// The canonicalizer shape requires both a marshal of the value
			// and at least one zeroed field; anything less is ordinary code
			// building a value.
			if t.marshal == token.NoPos || len(t.zeros) == 0 {
				continue
			}
			var fact FingerprintFact
			fingerprinted := t.tn != nil && (local[t.tn] || pass.ImportObjectFact(t.tn, &fact))
			if !fingerprinted {
				name := "value"
				if t.tn != nil {
					name = t.tn.Name()
				}
				rep.Reportf(t.marshal, "%s is canonicalized here (fields zeroed before json.Marshal) but its type carries no //detlint:fingerprint annotation; annotate the struct so field additions stay checked", name)
				continue
			}
			for _, z := range t.zeros {
				if !shape.covers(pass.Fset, z.pos) {
					rep.Reportf(z.pos, "field %s is zeroed out of the canonical %s fingerprint without a reasoned //detlint:execshape directive; an unexplained exclusion either fractures shard merges or silently merges incompatible shards", z.field, t.tn.Name())
				}
			}
			for _, rw := range t.rewrites {
				rep.Reportf(rw.pos, "canonicalizer rewrites field %s of %s to a non-zero value; canonical fingerprints may only zero exec-shape knobs under //detlint:execshape", rw.field, t.tn.Name())
			}
		}
	})
}

// isJSONMarshal reports whether call is encoding/json.Marshal or
// MarshalIndent.
func isJSONMarshal(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "encoding/json" {
		return false
	}
	return sel.Sel.Name == "Marshal" || sel.Sel.Name == "MarshalIndent"
}

// marshaledVar resolves the marshaled expression (an identifier, possibly
// addressed or dereferenced) to a variable of named struct type.
func marshaledVar(info *types.Info, arg ast.Expr) (*types.Var, *types.TypeName) {
	switch a := arg.(type) {
	case *ast.UnaryExpr:
		if a.Op == token.AND {
			arg = a.X
		}
	case *ast.StarExpr:
		arg = a.X
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil, nil
	}
	tn := namedStructName(obj.Type())
	if tn == nil {
		return nil, nil
	}
	return obj, tn
}

// namedStructName unwraps pointers and aliases to the type name of a named
// struct type, or nil.
func namedStructName(t types.Type) *types.TypeName {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named.Obj()
}

// isZeroExpr reports whether e is a zero literal: 0, "", false, nil, or an
// empty composite literal.
func isZeroExpr(info *types.Info, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok {
		if _, isNil := info.Uses[id].(*types.Nil); isNil {
			return true
		}
	}
	if cl, ok := e.(*ast.CompositeLit); ok {
		return len(cl.Elts) == 0
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Bool:
		return !constant.BoolVal(tv.Value)
	case constant.String:
		return constant.StringVal(tv.Value) == ""
	case constant.Int, constant.Float, constant.Complex:
		v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		return v == 0
	}
	return false
}
