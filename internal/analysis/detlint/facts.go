package detlint

import (
	"fmt"
	"go/types"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/objectpath"
)

// FactStore carries analyzer facts across the packages of one driver run.
//
// The gen-2 analyzers (hotalloc in particular) summarize per-function
// properties — "may this function heap-allocate, and where" — and consult
// those summaries at cross-package call sites. Inside one in-process driver
// run there is no need for the gob serialization the upstream framework
// uses between separate processes; instead facts are stored under a stable
// (fact type, package path, object path) key, where the object path is the
// export-data-stable encoding from go/types/objectpath. That key is
// identical whether the object came from type-checking the package's own
// source or from the gc export data a downstream package imports it
// through, which is exactly the hand-off cmd/detlint performs when it
// analyzes packages in dependency order.
//
// The zero FactStore is not ready to use; call NewFactStore.
type FactStore struct {
	// objFacts holds facts attached to package-level objects (functions,
	// methods, types, vars), keyed path-wise so lookups work across the
	// source/export-data boundary.
	objFacts map[objFactKey]analysis.Fact
	// objIdent is the identity fallback for objects objectpath cannot
	// encode (e.g. locals); such facts resolve only within the same
	// type-checked universe.
	objIdent map[identKey]analysis.Fact
	// pkgFacts holds package-level facts.
	pkgFacts map[pkgFactKey]analysis.Fact
}

type objFactKey struct {
	fact reflect.Type
	pkg  string
	obj  objectpath.Path
}

type identKey struct {
	fact reflect.Type
	obj  types.Object
}

type pkgFactKey struct {
	fact reflect.Type
	pkg  string
}

// NewFactStore returns an empty store, shared across every package of a
// driver run.
func NewFactStore() *FactStore {
	return &FactStore{
		objFacts: make(map[objFactKey]analysis.Fact),
		objIdent: make(map[identKey]analysis.Fact),
		pkgFacts: make(map[pkgFactKey]analysis.Fact),
	}
}

// exportObjectFact records fact for obj. Facts may only be attached to
// objects of the package currently under analysis, per the upstream
// contract.
func (s *FactStore) exportObjectFact(current *types.Package, obj types.Object, fact analysis.Fact) {
	if obj == nil || obj.Pkg() != current {
		panic(fmt.Sprintf("detlint: exporting fact %T for object %v outside the current package", fact, obj))
	}
	t := reflect.TypeOf(fact)
	s.objIdent[identKey{t, obj}] = fact
	if path, err := objectpath.For(obj); err == nil {
		s.objFacts[objFactKey{t, obj.Pkg().Path(), path}] = fact
	}
}

// importObjectFact copies the fact previously exported for obj (possibly
// while analyzing another package) into ptr and reports whether one was
// found. ptr must be a pointer of the same concrete type the exporter used.
func (s *FactStore) importObjectFact(obj types.Object, ptr analysis.Fact) bool {
	if obj == nil {
		return false
	}
	t := reflect.TypeOf(ptr)
	if f, ok := s.objIdent[identKey{t, obj}]; ok {
		copyFact(f, ptr)
		return true
	}
	if obj.Pkg() == nil {
		return false
	}
	path, err := objectpath.For(obj)
	if err != nil {
		return false
	}
	f, ok := s.objFacts[objFactKey{t, obj.Pkg().Path(), path}]
	if !ok {
		return false
	}
	copyFact(f, ptr)
	return true
}

// exportPackageFact records a fact for the package under analysis.
func (s *FactStore) exportPackageFact(current *types.Package, fact analysis.Fact) {
	s.pkgFacts[pkgFactKey{reflect.TypeOf(fact), current.Path()}] = fact
}

// importPackageFact copies the fact exported for pkg into ptr.
func (s *FactStore) importPackageFact(pkg *types.Package, ptr analysis.Fact) bool {
	if pkg == nil {
		return false
	}
	f, ok := s.pkgFacts[pkgFactKey{reflect.TypeOf(ptr), pkg.Path()}]
	if !ok {
		return false
	}
	copyFact(f, ptr)
	return true
}

// copyFact copies the stored fact value into the caller's pointer. Facts
// are pointers to structs by convention; a shallow struct copy matches the
// upstream decode-into-pointer semantics.
func copyFact(from, to analysis.Fact) {
	dv := reflect.ValueOf(to)
	sv := reflect.ValueOf(from)
	if dv.Type() != sv.Type() || dv.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("detlint: fact type mismatch: stored %T, requested %T", from, to))
	}
	dv.Elem().Set(sv.Elem())
}

// bind installs the store's fact operations on a pass. Passes whose
// analyzer declares no FactTypes get no-op hooks (using facts without
// declaring them is an analyzer bug upstream, too).
func (s *FactStore) bind(pass *analysis.Pass) {
	if len(pass.Analyzer.FactTypes) == 0 {
		pass.ExportObjectFact = func(types.Object, analysis.Fact) {
			panic("detlint: " + pass.Analyzer.Name + " exports facts but declares no FactTypes")
		}
		pass.ImportObjectFact = func(types.Object, analysis.Fact) bool { return false }
		pass.ExportPackageFact = func(analysis.Fact) {
			panic("detlint: " + pass.Analyzer.Name + " exports facts but declares no FactTypes")
		}
		pass.ImportPackageFact = func(*types.Package, analysis.Fact) bool { return false }
		pass.AllObjectFacts = func() []analysis.ObjectFact { return nil }
		pass.AllPackageFacts = func() []analysis.PackageFact { return nil }
		return
	}
	current := pass.Pkg
	pass.ExportObjectFact = func(obj types.Object, fact analysis.Fact) {
		s.exportObjectFact(current, obj, fact)
	}
	pass.ImportObjectFact = s.importObjectFact
	pass.ExportPackageFact = func(fact analysis.Fact) {
		s.exportPackageFact(current, fact)
	}
	pass.ImportPackageFact = s.importPackageFact
	// The all-facts views are not used by this suite; returning the
	// current package's facts in a deterministic order would be the
	// extension point if an analyzer ever needs them.
	pass.AllObjectFacts = func() []analysis.ObjectFact { return nil }
	pass.AllPackageFacts = func() []analysis.PackageFact { return nil }
}
