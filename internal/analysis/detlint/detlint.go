// Package detlint is the shared plumbing for the rhvpp determinism and
// shard-safety analyzers (see docs/DETERMINISM.md for the invariants each
// analyzer guards).
//
// It provides the //detlint:ignore suppression directive, honored by every
// analyzer in the suite, and a small driver core (RunAnalyzers) shared by
// cmd/detlint and the analysistest harness so both execute analyzers the
// same way.
//
// # Suppression
//
// A diagnostic can be suppressed with a directive comment naming the
// analyzer and giving a reason:
//
//	elapsed := time.Since(start) //detlint:ignore detsource wall-clock benchmark timing
//
// The directive covers the line it appears on and the following line (so it
// can sit on its own line above the flagged statement). A directive without
// a reason does not suppress anything; instead the named analyzer reports
// the directive itself, so every suppression in the tree carries a
// justification.
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"golang.org/x/tools/go/analysis"
)

// IgnorePrefix starts a suppression directive comment. The full form is
//
//	//detlint:ignore <analyzer> <reason...>
const IgnorePrefix = "//detlint:ignore"

// parseDirective decodes a suppression directive from a single comment.
// ok is false when the comment is not a directive at all or names no
// analyzer.
func parseDirective(c *ast.Comment) (analyzer, reason string, ok bool) {
	rest, found := strings.CutPrefix(c.Text, IgnorePrefix)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", "", false
	}
	// An embedded "//" ends the directive; it introduces an ordinary
	// comment (fixtures use this for // want expectations).
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", false
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// Reporter wraps pass.Report with //detlint:ignore suppression for the
// pass's analyzer. Constructing it also reports any unreasoned directive
// naming this analyzer, so every analyzer gets that check for free.
type Reporter struct {
	pass *analysis.Pass
	// suppressed maps filename -> set of lines covered by a reasoned
	// directive naming this analyzer.
	suppressed map[string]map[int]bool
}

// NewReporter scans the pass's files for directives naming
// pass.Analyzer.Name and returns a Reporter enforcing them.
func NewReporter(pass *analysis.Pass) *Reporter {
	r := &Reporter{pass: pass, suppressed: make(map[string]map[int]bool)}
	name := pass.Analyzer.Name
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				an, reason, ok := parseDirective(c)
				if !ok || an != name {
					continue
				}
				if reason == "" {
					pass.Report(analysis.Diagnostic{
						Pos: c.Pos(),
						Message: fmt.Sprintf(
							"detlint:ignore %s directive has no reason; write //detlint:ignore %s <why> (an unreasoned ignore suppresses nothing)",
							name, name),
					})
					continue
				}
				p := pass.Fset.Position(c.Pos())
				lines := r.suppressed[p.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					r.suppressed[p.Filename] = lines
				}
				// The directive covers its own line (trailing-comment
				// form) and the next line (own-line form).
				lines[p.Line] = true
				lines[p.Line+1] = true
			}
		}
	}
	return r
}

// Reportf reports a diagnostic at pos unless a reasoned directive covers
// that line.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.pass.Fset.Position(pos)
	if r.suppressed[p.Filename][p.Line] {
		return
	}
	r.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Package bundles one type-checked package for RunAnalyzers.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Finding is one diagnostic tagged with the analyzer that produced it.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Both drivers must use it so analyzers see identical type
// information.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// RunAnalyzers executes the analyzers (and, transitively, their Requires)
// over one package and returns the diagnostics of the requested analyzers
// sorted by position. It is the single execution path shared by
// cmd/detlint and analysistest, so fixtures exercise exactly the driver
// semantics. Facts live in a store private to this call; drivers that
// analyze multiple packages and need cross-package facts (hotalloc's
// allocation summaries) use RunAnalyzersFacts with a shared store.
func RunAnalyzers(pkg *Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return RunAnalyzersFacts(pkg, analyzers, NewFactStore())
}

// RunAnalyzersFacts is RunAnalyzers with a caller-owned fact store. The
// driver must analyze packages in dependency order (imports first) for
// imported facts to be present, mirroring the upstream framework's
// scheduling contract.
func RunAnalyzersFacts(pkg *Package, analyzers []*analysis.Analyzer, store *FactStore) ([]Finding, error) {
	return RunAnalyzersObserved(pkg, analyzers, store, nil, nil)
}

// RunAnalyzersObserved is RunAnalyzersFacts with per-analyzer timing: when
// clock is non-nil, observe is called after each analyzer's Run on this
// package with the analyzer's name (helper passes like inspect and
// ctrlflow included, under their own names) and the wall time the run
// took. The clock is injected by the caller rather than read here, so the
// deterministic-source contract this suite enforces holds for the suite's
// own code; cmd/detlint -bench passes time.Now under its own reasoned
// detsource suppression.
func RunAnalyzersObserved(pkg *Package, analyzers []*analysis.Analyzer, store *FactStore, clock func() time.Time, observe func(analyzer string, elapsed time.Duration)) ([]Finding, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var findings []Finding
	results := make(map[*analysis.Analyzer]any)
	running := make(map[*analysis.Analyzer]bool)

	var run func(a *analysis.Analyzer) (any, error)
	run = func(a *analysis.Analyzer) (any, error) {
		if res, ok := results[a]; ok {
			return res, nil
		}
		if running[a] {
			return nil, fmt.Errorf("detlint: requirement cycle through %s", a.Name)
		}
		running[a] = true
		defer func() { running[a] = false }()
		resultOf := make(map[*analysis.Analyzer]any, len(a.Requires))
		for _, req := range a.Requires {
			res, err := run(req)
			if err != nil {
				return nil, err
			}
			resultOf[req] = res
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   resultOf,
			ReadFile:   os.ReadFile,
		}
		store.bind(pass)
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		var start time.Time
		if clock != nil {
			start = clock()
		}
		res, err := a.Run(pass)
		if clock != nil {
			observe(a.Name, clock().Sub(start))
		}
		if err != nil {
			return nil, fmt.Errorf("detlint: %s on %s: %w", a.Name, pkg.Types.Path(), err)
		}
		results[a] = res
		return res, nil
	}

	for _, a := range analyzers {
		if _, err := run(a); err != nil {
			return nil, err
		}
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by position, then analyzer, then message —
// a total order, so report order never depends on scheduling.
func SortFindings(findings []Finding) {
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// IsMapType reports whether t (after unaliasing) is a map.
func IsMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Map)
	return ok
}

// UsesObject reports whether any identifier under n resolves to one of the
// given objects.
func UsesObject(info *types.Info, n ast.Node, objs ...types.Object) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		for _, o := range objs {
			if o != nil && obj == o {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// Suppressed reports whether a reasoned directive naming this analyzer
// covers pos's line. hotalloc consults it while building its exported
// allocation summaries, so a suppressed site vanishes from downstream
// callers' diagnostics too, not only from the local report.
func (r *Reporter) Suppressed(pos token.Pos) bool {
	p := r.pass.Fset.Position(pos)
	return r.suppressed[p.Filename][p.Line]
}
