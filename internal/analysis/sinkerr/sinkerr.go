// Package sinkerr defines an analyzer that flags silently lost errors on
// the shard-protocol and artifact I/O paths.
//
// Sharded campaigns survive only if every serialization failure surfaces:
// a swallowed Encode, Write, Close, or Rename error turns a broken shard
// artifact into a silently truncated campaign when MergeArtifacts folds
// it. The analyzer tracks calls into error-critical packages — the
// artifact envelope codec and the I/O layers it rides on (encoding/json,
// encoding/csv, os, io, bufio by default; -paths extends the set) — and
// reports three ways their error results get lost:
//
//   - discarded outright: the call is an expression statement, so the
//     error is never bound (enc.Encode(v) on a line of its own);
//   - blanked: the error result is assigned to _ (including n, _ :=
//     w.Write(p));
//   - deferred: defer f.Close() discards whatever Close returns, which on
//     buffered write paths is where short writes finally report.
//
// It also detects shadowing in straight-line code via the control-flow
// graph: an error assigned from a critical call and then overwritten —
// with no read in between, within one basic block — loses the first
// failure even though the variable itself is "used" (the classic
// err := Encode(a); err = Encode(b) slip). Reads in later blocks keep a
// pending error alive, so the check never crosses a branch.
//
// Deliberate discards take a reasoned suppression, e.g.
//
//	defer fh.Close() //detlint:ignore sinkerr read-only descriptor, close error carries no data
package sinkerr

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "sinkerr",
	Doc: "flags discarded, blanked, deferred-away, and shadowed error results from shard-protocol " +
		"and artifact I/O calls (encoding/json, encoding/csv, os, io, bufio, internal artifact packages)",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

// paths lists the error-critical packages. An entry with a slash matches
// the import path exactly; a bare name matches any package whose path base
// is that name (so "artifact" covers the module's internal/artifact, and
// fixtures can model critical packages by directory name).
var paths = "encoding/json,encoding/csv,os,io,bufio,artifact"

func init() {
	Analyzer.Flags.StringVar(&paths, "paths", paths,
		"comma-separated error-critical packages (exact import path, or bare path base)")
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) (any, error) {
	exact := make(map[string]bool)
	base := make(map[string]bool)
	for _, e := range strings.Split(paths, ",") {
		if e = strings.TrimSpace(e); e == "" {
			continue
		}
		if strings.Contains(e, "/") {
			exact[e] = true
		} else {
			base[e] = true
		}
	}
	critical := func(path string) bool {
		if exact[path] || base[path] {
			return true
		}
		if i := strings.LastIndexByte(path, '/'); i >= 0 && base[path[i+1:]] {
			return true
		}
		return false
	}

	rep := detlint.NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	insp.Preorder([]ast.Node{
		(*ast.ExprStmt)(nil),
		(*ast.DeferStmt)(nil),
		(*ast.AssignStmt)(nil),
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
	}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return
			}
			if fn, ok := criticalErrCall(pass.TypesInfo, call, critical); ok {
				rep.Reportf(call.Pos(),
					"discarded error from %s; a lost %s failure silently corrupts the shard artifact path — check it, return it, or suppress with a reason",
					qualifiedName(fn), fn.Name())
			}
		case *ast.DeferStmt:
			if fn, ok := criticalErrCall(pass.TypesInfo, n.Call, critical); ok {
				rep.Reportf(n.Pos(),
					"deferred call to %s discards its error; on write paths this is where short writes surface — close/flush explicitly and check, or suppress with a reason",
					qualifiedName(fn))
			}
		case *ast.AssignStmt:
			checkBlanked(pass, rep, critical, n)
		case *ast.FuncDecl:
			if n.Body != nil {
				checkShadow(pass, rep, critical, cfgs.FuncDecl(n))
			}
		case *ast.FuncLit:
			checkShadow(pass, rep, critical, cfgs.FuncLit(n))
		}
	})
	return nil, nil
}

// checkBlanked flags error results of critical calls assigned to _.
func checkBlanked(pass *analysis.Pass, rep *detlint.Reporter, critical func(string) bool, as *ast.AssignStmt) {
	info := pass.TypesInfo
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, ok := criticalErrCall(info, call, critical)
	if !ok {
		return
	}
	sig := fn.Signature()
	results := sig.Results()
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		// Map the blanked position to the corresponding result. With one
		// LHS the call must have exactly one result (the error).
		if len(as.Lhs) != results.Len() && results.Len() != 1 {
			continue
		}
		ri := i
		if results.Len() == 1 {
			ri = 0
		}
		if types.Identical(results.At(ri).Type(), errorType) {
			rep.Reportf(id.Pos(),
				"error from %s assigned to _; a lost %s failure silently corrupts the shard artifact path — bind and check it, or suppress with a reason",
				qualifiedName(fn), fn.Name())
		}
	}
}

// pendingErr is an unread error from a critical call.
type pendingErr struct {
	pos  token.Pos
	from string
}

// checkShadow walks each basic block's nodes in execution order and flags
// an error variable holding a critical call's result that is overwritten
// before any read. State does not cross blocks: a read in a successor
// block (the usual `if err != nil` in the same block, or later) keeps the
// error alive, so branches never produce false positives.
func checkShadow(pass *analysis.Pass, rep *detlint.Reporter, critical func(string) bool, g *cfg.CFG) {
	if g == nil {
		return
	}
	info := pass.TypesInfo
	for _, b := range g.Blocks {
		pending := make(map[types.Object]pendingErr)
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				// Any other node only reads.
				clearReads(info, n, pending)
				continue
			}
			// Reads on the RHS (and inside non-ident LHS expressions like
			// m[k]) happen before the writes land.
			for _, rhs := range as.Rhs {
				clearReads(info, rhs, pending)
			}
			for _, lhs := range as.Lhs {
				if _, isIdent := lhs.(*ast.Ident); !isIdent {
					clearReads(info, lhs, pending)
				}
			}
			// Now the writes: overwriting a pending error loses it.
			fn, isCritical := (*types.Func)(nil), false
			if len(as.Rhs) == 1 {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
					fn, isCritical = criticalErrCall(info, call, critical)
				}
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := identObject(info, id)
				if obj == nil || !types.Identical(obj.Type(), errorType) {
					continue
				}
				if p, ok := pending[obj]; ok {
					rep.Reportf(p.pos,
						"error from %s stored in %s is overwritten before being read; the first failure is lost — check it before reusing the variable",
						p.from, id.Name)
				}
				delete(pending, obj)
				if isCritical {
					pending[obj] = pendingErr{pos: as.Pos(), from: qualifiedName(fn)}
				}
			}
		}
	}
}

// clearReads removes from pending every error variable read under n.
func clearReads(info *types.Info, n ast.Node, pending map[types.Object]pendingErr) {
	if n == nil || len(pending) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				delete(pending, obj)
			}
		}
		return true
	})
}

// identObject resolves an identifier to its object, covering both the
// defining occurrence in := and plain uses.
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// criticalErrCall reports whether call invokes a function from an
// error-critical package whose last result is an error, returning the
// callee. Interface methods count (io.Writer.Write is the archetype), so
// resolution goes through the selection rather than typeutil.StaticCallee.
//
// Method calls are classified by the package of the receiver's static
// type, not of the method's declaring type: writing to a hash.Hash64
// resolves to the embedded io.Writer.Write, but hash writes never fail,
// and it is the receiver type — what the call actually operates on — that
// decides whether the error matters for the artifact path.
func criticalErrCall(info *types.Info, call *ast.CallExpr, critical func(string) bool) (*types.Func, bool) {
	var fn *types.Func
	var classify *types.Package
	switch f := deparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[f.Sel].(*types.Func)
		if s := info.Selections[f]; s != nil && s.Kind() == types.MethodVal {
			classify = namedPkg(s.Recv())
		}
	}
	if fn == nil {
		return nil, false
	}
	if classify == nil {
		classify = fn.Pkg()
	}
	if classify == nil || !critical(classify.Path()) {
		return nil, false
	}
	results := fn.Signature().Results()
	if results.Len() == 0 {
		return nil, false
	}
	if !types.Identical(results.At(results.Len()-1).Type(), errorType) {
		return nil, false
	}
	return fn, true
}

// namedPkg resolves a (possibly pointer-to-)named type to its defining
// package; unnamed types return nil.
func namedPkg(t types.Type) *types.Package {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok && n.Obj() != nil {
		return n.Obj().Pkg()
	}
	return nil
}

func deparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// qualifiedName renders pkgname.Func or pkgname.Type.Method for diagnostics.
func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := types.Unalias(t).(*types.Named); ok {
			return fmt.Sprintf("%s.%s.%s", fn.Pkg().Name(), n.Obj().Name(), fn.Name())
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
