// Package a exercises every sinkerr diagnostic: discarded, blanked,
// deferred-away, and shadowed errors from error-critical calls.
package a

import (
	"encoding/json"
	"io"
	"os"
)

// Discard drops errors by using critical calls as statements.
func Discard(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v) // want "discarded error from json.Encoder.Encode"
	os.Remove("x")               // want "discarded error from os.Remove"
}

// Blank drops errors by assigning them to _.
func Blank(w io.Writer, p []byte) {
	_ = os.WriteFile("x", p, 0o644) // want "error from os.WriteFile assigned to _"
	n, _ := w.Write(p)              // want "error from io.Writer.Write assigned to _"
	_ = n
}

// Deferred loses whatever Close reports.
func Deferred(f *os.File) {
	defer f.Close() // want "deferred call to os.File.Close discards its error"
}

// Shadow overwrites an unread error in straight-line code: the first
// Encode failure is lost even though err itself is "used".
func Shadow(w io.Writer, a, b any) error {
	enc := json.NewEncoder(w)
	err := enc.Encode(a) // want "stored in err is overwritten before being read"
	err = enc.Encode(b)
	return err
}

// Checked is the correct shape everywhere: no diagnostics.
func Checked(w io.Writer, p []byte, a, b any) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(a); err != nil {
		return err
	}
	err := enc.Encode(b)
	if err != nil {
		return err
	}
	if _, err = w.Write(p); err != nil {
		return err
	}
	return os.Remove("x")
}

// Suppressed documents a deliberate discard with a reason.
func Suppressed(f *os.File) {
	defer f.Close() //detlint:ignore sinkerr read-only descriptor, close error carries no data loss
}

// NonCritical calls are never flagged, even when their errors vanish:
// only the shard-protocol and artifact I/O packages are in the set.
func NonCritical(s string) {
	parse(s)
	_ = parse(s)
}

func parse(s string) error { return nil }

// Unreasoned shows the suppression interplay: an ignore without a reason
// suppresses nothing — it is itself diagnosed AND the discard still fires.
func Unreasoned(w io.Writer, p []byte) {
	w.Write(p) //detlint:ignore sinkerr // want "directive has no reason" "discarded error from io.Writer.Write"
}

// CrossAnalyzer shows a reasoned ignore naming a DIFFERENT analyzer leaves
// sinkerr diagnostics alone: suppression is per-analyzer, per-line.
func CrossAnalyzer(w io.Writer, p []byte) {
	w.Write(p) //detlint:ignore hotalloc reused buffer, measured elsewhere // want "discarded error from io.Writer.Write"
}
