// Package clean handles every critical error properly: no diagnostics.
package clean

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// WriteAtomic is the repo's artifact-write shape: explicit Close with its
// error checked, deferred cleanup suppressed with a reason.
func WriteAtomic(path string, v any) error {
	tmp, err := os.CreateTemp("", "artifact-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //detlint:ignore sinkerr best-effort cleanup, a leftover temp file loses no data
	if err := json.NewEncoder(tmp).Encode(v); err != nil {
		tmp.Close() //detlint:ignore sinkerr already failing, the encode error is the one to surface
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Digest writes into a hash: the method resolves to the embedded
// io.Writer.Write, but the receiver's static type lives in package hash,
// whose writes never fail — classification follows the receiver, so no
// diagnostic.
func Digest(parts ...[]byte) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum64()
}

// Copy reads errors through the usual wrap-and-return chain.
func Copy(dst io.Writer, src io.Reader) error {
	if _, err := io.Copy(dst, src); err != nil {
		return fmt.Errorf("copying artifact: %w", err)
	}
	return nil
}
