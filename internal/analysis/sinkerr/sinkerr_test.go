package sinkerr_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/sinkerr"
)

func TestSinkerr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sinkerr.Analyzer, "a", "clean")
}
