// Package detsource defines an analyzer that flags unsanctioned sources
// of nondeterminism: the global math/rand generators, wall-clock reads,
// and process identity.
//
// Every stochastic quantity in this repo must come from internal/rng
// streams derived from stable label chains, so reruns reproduce identical
// numbers at any concurrency (see docs/DETERMINISM.md). Direct use of
// math/rand (v1 or v2), time.Now and friends, or os.Getpid breaks the
// byte-identical-output contract. internal/rng itself is allowlisted (it
// is the sanctioned source); genuinely wall-clock sites such as benchmark
// timing carry a //detlint:ignore detsource directive with the reason.
package detsource

import (
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc: "flags math/rand, wall-clock (time.Now etc.) and process-identity (os.Getpid) use; " +
		"internal/rng streams are the sanctioned randomness source",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// allowPattern exempts whole packages from the check; the default exempts
// the sanctioned RNG package itself.
var allowPattern = `(^|/)internal/rng$`

func init() {
	Analyzer.Flags.StringVar(&allowPattern, "allow", allowPattern,
		"regexp of package paths exempt from the deterministic-source contract")
}

// bannedImports are packages whose very import is a violation: nothing in
// them is deterministic-safe.
var bannedImports = map[string]string{
	"math/rand":    "global math/rand is seeded per-process; derive an internal/rng Stream instead",
	"math/rand/v2": "math/rand/v2 is seeded per-process; derive an internal/rng Stream instead",
}

// bannedFuncs are individual functions whose use is a violation even
// though their package is otherwise fine.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now": "wall clock", "Since": "wall clock", "Until": "wall clock",
		"Tick": "wall-clock timer", "After": "wall-clock timer",
		"NewTicker": "wall-clock timer", "NewTimer": "wall-clock timer", "AfterFunc": "wall-clock timer",
	},
	"os": {
		"Getpid":  "process identity",
		"Getppid": "process identity",
	},
}

func run(pass *analysis.Pass) (any, error) {
	allow, err := regexp.Compile(allowPattern)
	if err != nil {
		return nil, err
	}
	if allow.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := detlint.NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.ImportSpec)(nil), (*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ImportSpec:
			path := importPath(n)
			if why, bad := bannedImports[path]; bad {
				rep.Reportf(n.Pos(), "import of %s in a deterministic package: %s", path, why)
			}
		case *ast.SelectorExpr:
			pkg, name, ok := qualifiedUse(pass.TypesInfo, n)
			if !ok {
				return
			}
			if why, bad := bannedFuncs[pkg][name]; bad {
				rep.Reportf(n.Pos(), "%s.%s is %s and breaks byte-identical reruns; thread the value through parameters or derive it from internal/rng", pkg, name, why)
			}
		}
	})
	return nil, nil
}

func importPath(spec *ast.ImportSpec) string {
	if spec.Path == nil {
		return ""
	}
	// The literal includes quotes.
	return spec.Path.Value[1 : len(spec.Path.Value)-1]
}

// qualifiedUse resolves pkg.Name selector uses of package-level objects.
func qualifiedUse(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
