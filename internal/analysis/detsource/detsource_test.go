package detsource_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/detsource"
)

func TestDetSource(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detsource.Analyzer, "a", "internal/rng")
}
