// Package a exercises the detsource analyzer: banned imports and
// wall-clock/process-identity calls are flagged; deterministic time
// arithmetic is clean.
package a

import (
	"math/rand" // want `import of math/rand in a deterministic package`
	"os"
	"time"
)

// Roll uses the per-process global generator.
func Roll() float64 {
	return rand.Float64()
}

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want `time\.Now is wall clock and breaks byte-identical reruns`
}

// Elapsed measures wall-clock durations.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since is wall clock`
}

// Pid keys output on process identity.
func Pid() int {
	return os.Getpid() // want `os\.Getpid is process identity`
}

// DurationMath is deterministic time arithmetic: clean.
func DurationMath(d time.Duration) time.Duration {
	return 2*d + 5*time.Millisecond
}

// FileUse keeps the os import legitimate: clean.
func FileUse() string {
	return os.TempDir()
}

// Suppressed is a sanctioned wall-clock site with a reasoned directive.
func Suppressed() time.Duration {
	start := time.Now()      //detlint:ignore detsource wall-clock benchmark harness timing
	return time.Since(start) //detlint:ignore detsource wall-clock benchmark harness timing
}
