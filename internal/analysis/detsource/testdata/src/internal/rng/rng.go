// Package rng stands in for the sanctioned randomness source: its package
// path matches the analyzer's allowlist, so even wall-clock reads inside
// it are not reported.
package rng

import "time"

// Bootstrap may read the wall clock: the package is allowlisted.
func Bootstrap() int64 {
	return time.Now().UnixNano()
}
