// Package pool models the sanctioned worker-pool primitive: its
// exclusive-slot writes are exactly what goshared flags elsewhere, and the
// default -goshared.allow pattern exempts the package wholesale.
package pool

// Run fans work out and writes each worker's result into its own slot —
// the safe implementation the rest of the tree calls through.
func Run(n int, fn func(int) int) []int {
	out := make([]int, n)
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			out[i] = fn(i) // exempt: this package IS the sanctioned primitive
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return out
}
