// Package a exercises the flagged shared-state cases: goroutine closures
// writing captured variables, slices, maps, fields, and pointers.
package a

// Plain writes a captured variable from the goroutine.
func Plain() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total = 42 // want `goroutine closure writes captured variable total`
		close(done)
	}()
	<-done
	return total
}

// Looped writes captured state on every loop iteration.
func Looped(n int) int {
	sum := 0
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			sum += i // want `writes captured variable sum inside a loop \(racing every iteration\)`
		}
		close(done)
	}()
	<-done
	return sum
}

// SliceSlot writes an element of a captured slice — the raced version of
// what pool.Run provides safely.
func SliceSlot(xs []int) {
	done := make(chan struct{})
	go func() {
		xs[0] = 1 // want `writes element of captured slice xs`
		close(done)
	}()
	<-done
}

// MapWrite mutates and deletes from a captured map.
func MapWrite(m map[string]int) {
	done := make(chan struct{})
	go func() {
		m["k"] = 1     // want `mutates captured map m`
		delete(m, "k") // want `deletes from captured map m`
		close(done)
	}()
	<-done
}

type state struct{ n int }

// FieldWrite writes a field of a captured struct variable.
func FieldWrite() state {
	var s state
	done := make(chan struct{})
	go func() {
		s.n = 7 // want `writes field s.n of a captured variable`
		close(done)
	}()
	<-done
	return s
}

// PointerWrite writes through a captured pointer.
func PointerWrite(p *int) {
	done := make(chan struct{})
	go func() {
		*p = 3 // want `writes through captured pointer p`
		close(done)
	}()
	<-done
}

// Nested hides the write in a literal nested inside the goroutine; the
// nested body shares the goroutine's lifetime, so it is still flagged.
func Nested() int {
	n := 0
	done := make(chan struct{})
	go func() {
		inc := func() {
			n++ // want `writes captured variable n`
		}
		inc()
		close(done)
	}()
	<-done
	return n
}

// IncDec covers the ++/-- statement form.
func IncDec() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n++ // want `writes captured variable n`
		close(done)
	}()
	<-done
	return n
}
