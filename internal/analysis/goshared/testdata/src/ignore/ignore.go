// Package ignore exercises //detlint:ignore interplay for goshared: a
// reasoned directive suppresses, an unreasoned one is itself reported and
// suppresses nothing, and directives naming other analyzers do not leak.
package ignore

// SuppressedTrailing uses the trailing-comment form with a reason.
func SuppressedTrailing() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 1 //detlint:ignore goshared single goroutine joined on done before the read
		close(done)
	}()
	<-done
	return n
}

// SuppressedOwnLine uses the own-line form covering the next line.
func SuppressedOwnLine() int {
	n := 0
	done := make(chan struct{})
	go func() {
		//detlint:ignore goshared single goroutine joined on done before the read
		n = 1
		close(done)
	}()
	<-done
	return n
}

// Unreasoned: the directive itself is reported and does not suppress.
func Unreasoned() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 1 //detlint:ignore goshared // want `directive has no reason` `writes captured variable n`
		close(done)
	}()
	<-done
	return n
}

// WrongAnalyzer: a directive naming another analyzer does not suppress
// this one.
func WrongAnalyzer() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 1 //detlint:ignore maporder wrong analyzer name // want `writes captured variable n`
		close(done)
	}()
	<-done
	return n
}
