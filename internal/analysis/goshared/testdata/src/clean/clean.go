// Package clean holds goroutine code following the shared-state contract;
// any diagnostic here is a false positive.
package clean

// ChannelHandoff shares results through a channel, the sanctioned idiom.
func ChannelHandoff(xs []int) int {
	out := make(chan int, 1)
	go func() {
		sum := 0
		for _, x := range xs {
			sum += x // local accumulator, declared inside the goroutine
		}
		out <- sum // channel send is handoff, never flagged
	}()
	return <-out
}

// ByValue passes data as an argument; nothing is captured by a literal.
func ByValue(x int, f func(int)) {
	go f(x)
}

// ParamShadow declares the loop variable as a parameter of the literal,
// the classic capture-avoidance idiom.
func ParamShadow(n int) {
	done := make(chan struct{}, n)
	for g := 0; g < n; g++ {
		go func(g int) {
			local := g * 2
			_ = local
			done <- struct{}{}
		}(g)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// ReadOnly reads captured state without writing it.
func ReadOnly(xs []int) int {
	out := make(chan int, 1)
	go func() {
		out <- xs[0] + len(xs)
	}()
	return <-out
}

// DefineInside uses := inside the goroutine: fresh variables, not writes
// to captured ones.
func DefineInside(seed int) int {
	out := make(chan int, 1)
	go func() {
		v := seed + 1
		v *= 2
		out <- v
	}()
	return <-out
}

// DeadWrite sits after an unconditional return: unreachable code cannot
// race, and the CFG walk skips dead blocks.
func DeadWrite() int {
	n := 0
	done := make(chan struct{})
	go func() {
		close(done)
		return
		n = 1 // unreachable: never executes, never races
	}()
	<-done
	return n
}
