package goshared_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/goshared"
)

func TestGoShared(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), goshared.Analyzer, "a", "clean", "internal/pool", "ignore")
}
