// Package goshared defines an analyzer that flags goroutine closures
// writing captured state — the static complement to the race detector,
// which only sees the interleavings a test happens to execute.
//
// The repo's concurrency contract (docs/CONTRACTS.md, "Shared state")
// confines cross-goroutine writes to the sanctioned primitives: pool.Run /
// pool.RunOrdered hand each worker an exclusive result slot, and channels
// hand values off wholesale. Everything else — a `go func() { ... }`
// closure assigning a captured variable, mutating a captured map or slice
// element, or writing through a captured pointer — is a data race waiting
// for the scheduler to expose it, and worse, a nondeterminism source even
// when "benign": racing writes make output depend on interleaving order.
//
// The analyzer walks the control-flow graph of every `go` function
// literal (reachable blocks only) and reports writes whose root object is
// captured from an enclosing function or is package-level. Channel sends
// are never flagged (handoff is the sanctioned idiom), and reads are
// always fine. Writes inside a CFG cycle race on every iteration and say
// so. Calls through non-literal function values (`go worker(i)`) pass
// arguments by value and are not analyzed.
//
// The sanctioned-primitive packages themselves are exempted by path via
// -goshared.allow (default: the internal worker pool, whose slot writes
// are the safe implementation the rest of the tree must call through).
package goshared

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "goshared",
	Doc: "flags goroutine closures that write captured variables or mutate captured maps/slices " +
		"outside the sanctioned pool.Run/RunOrdered slots and channel handoff",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

// allowPattern exempts whole packages; the default exempts the sanctioned
// worker pool, whose exclusive-slot writes are the safe primitive.
var allowPattern = `(^|/)internal/pool$`

func init() {
	Analyzer.Flags.StringVar(&allowPattern, "allow", allowPattern,
		"regexp of package paths exempt from the shared-state contract (the sanctioned primitives)")
}

func run(pass *analysis.Pass) (any, error) {
	allow, err := regexp.Compile(allowPattern)
	if err != nil {
		return nil, err
	}
	if allow.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := detlint.NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	insp.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		lit, ok := n.(*ast.GoStmt).Call.Fun.(*ast.FuncLit)
		if !ok {
			return // go f(x): arguments pass by value, nothing is captured
		}
		captured := capturedVars(pass.TypesInfo, lit)
		// The goroutine body plus any literals nested inside it share the
		// goroutine's lifetime, so they are checked against the same
		// captured set.
		for _, l := range nestedLits(lit) {
			checkLit(pass, rep, cfgs.FuncLit(l), captured)
		}
	})
	return nil, nil
}

// capturedVars returns the variables used inside lit but declared outside
// it, including package-level variables (which are shared by definition).
// Fields are excluded; a field write is attributed to its base variable by
// the write classifier instead.
func capturedVars(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	declared := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	captured := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || declared[obj] || v.IsField() {
			return true
		}
		captured[obj] = true
		return true
	})
	return captured
}

// nestedLits returns lit plus every function literal nested inside it.
func nestedLits(lit *ast.FuncLit) []*ast.FuncLit {
	lits := []*ast.FuncLit{lit}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, l)
		}
		return true
	})
	return lits
}

// checkLit walks one literal's CFG (reachable blocks only; a write after
// an unconditional return cannot race) and reports writes to captured
// state.
func checkLit(pass *analysis.Pass, rep *detlint.Reporter, g *cfg.CFG, captured map[types.Object]bool) {
	if g == nil {
		return
	}
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		looped := inCycle(b)
		for _, node := range b.Nodes {
			classifyWrites(pass, rep, node, captured, looped)
		}
	}
}

// classifyWrites inspects one CFG node for write forms. Nested function
// literals are skipped: their bodies live in their own CFGs and are
// checked separately against the same captured set.
func classifyWrites(pass *analysis.Pass, rep *detlint.Reporter, node ast.Node, captured map[types.Object]bool, looped bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// := declares fresh variables in the goroutine's own scope;
			// captured outer variables can only be hit by plain assignment.
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				reportWrite(pass, rep, lhs, captured, looped)
			}
		case *ast.IncDecStmt:
			reportWrite(pass, rep, n.X, captured, looped)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) > 0 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					if obj := rootObject(pass.TypesInfo, n.Args[0]); obj != nil && captured[obj] {
						rep.Reportf(n.Pos(), "goroutine closure deletes from captured map %s%s; %s", objName(obj), loopNote(looped), fixHint)
					}
				}
			}
		}
		return true
	})
}

const fixHint = "share results through pool.Run/RunOrdered slots or a channel handoff, not raced memory"

// reportWrite classifies one assignment target and reports it when its
// root object is captured.
func reportWrite(pass *analysis.Pass, rep *detlint.Reporter, lhs ast.Expr, captured map[types.Object]bool, looped bool) {
	note := loopNote(looped)
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[lhs]; obj != nil && captured[obj] {
			rep.Reportf(lhs.Pos(), "goroutine closure writes captured variable %s%s; %s", lhs.Name, note, fixHint)
		}
	case *ast.IndexExpr:
		obj := rootObject(pass.TypesInfo, lhs.X)
		if obj == nil || !captured[obj] {
			return
		}
		if detlint.IsMapType(pass.TypesInfo.TypeOf(lhs.X)) {
			rep.Reportf(lhs.Pos(), "goroutine closure mutates captured map %s%s; %s", objName(obj), note, fixHint)
		} else {
			rep.Reportf(lhs.Pos(), "goroutine closure writes element of captured slice %s%s; %s", objName(obj), note, fixHint)
		}
	case *ast.SelectorExpr:
		if obj := rootObject(pass.TypesInfo, lhs.X); obj != nil && captured[obj] {
			rep.Reportf(lhs.Pos(), "goroutine closure writes field %s.%s of a captured variable%s; %s", objName(obj), lhs.Sel.Name, note, fixHint)
		}
	case *ast.StarExpr:
		if obj := rootObject(pass.TypesInfo, lhs.X); obj != nil && captured[obj] {
			rep.Reportf(lhs.Pos(), "goroutine closure writes through captured pointer %s%s; %s", objName(obj), note, fixHint)
		}
	}
}

func loopNote(looped bool) string {
	if looped {
		return " inside a loop (racing every iteration)"
	}
	return ""
}

// rootObject resolves an lvalue base expression to the variable it is
// rooted in: a[i], a.f, *p, and chains thereof all root in a / p.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func objName(obj types.Object) string {
	return obj.Name()
}

// inCycle reports whether b can reach itself through successor edges,
// i.e. sits inside a loop of its CFG.
func inCycle(b *cfg.Block) bool {
	seen := make(map[*cfg.Block]bool)
	var walk func(from *cfg.Block) bool
	walk = func(from *cfg.Block) bool {
		for _, s := range from.Succs {
			if s == b {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if walk(s) {
					return true
				}
			}
		}
		return false
	}
	return walk(b)
}
