// Package stats models the repo's internal/stats accumulators for the
// shardsafe fixtures: P2Quantile/P2Summary are the non-serializable
// estimators, Dist is the serializable alternative.
package stats

// P2Quantile models the non-mergeable, non-serializable P² estimator.
type P2Quantile struct {
	n int
	q [5]float64
}

// P2Summary composes P2Quantile estimators; equally non-serializable.
type P2Summary struct {
	quantiles [4]*P2Quantile
}

// Dist models the serializable, mergeable accumulator.
type Dist struct {
	N      int                `json:"n"`
	Counts map[float64]uint64 `json:"counts"`
}
