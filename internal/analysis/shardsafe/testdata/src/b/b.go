// Package b exercises the shardsafe analyzer against modeled stats types.
package b

import "stats"

// ModuleHammer is a shard partial by name: the exported P² field would
// marshal empty and merge as zeros.
type ModuleHammer struct {
	Rows int
	P95  *stats.P2Quantile // want `shard-partial struct ModuleHammer carries non-serializable accumulator stats\.P2Quantile`
}

// ModuleLatency hides the estimator in an unexported field: JSON drops it
// silently.
type ModuleLatency struct {
	Count   int
	summary stats.P2Summary // want `carries non-serializable accumulator stats\.P2Summary, which is silently dropped`
}

// Envelope is JSON-tagged (serialization intent) and nests the estimator
// inside a slice of wrappers.
type wrapper struct {
	Q *stats.P2Quantile
}

type Envelope struct {
	Name  string    `json:"name"`
	Parts []wrapper `json:"parts"` // want `carries non-serializable accumulator stats\.P2Quantile`
}

// ModuleClean uses the serializable accumulator: clean.
type ModuleClean struct {
	Rows int
	BERs stats.Dist
}

// Scratch is neither Module*-named nor JSON-tagged: in-process use of P²
// composites is sanctioned (that is exactly what P2Summary is for).
type Scratch struct {
	Live *stats.P2Quantile
}

func use() {
	_ = ModuleLatency{}.summary
	_ = Scratch{}
}
