package shardsafe_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/shardsafe"
)

func TestShardSafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), shardsafe.Analyzer, "b")
}
