// Package shardsafe defines an analyzer that keeps shard-artifact partial
// structs serializable and mergeable.
//
// Sharded campaigns serialize per-unit partial results (the Module*
// structs and anything JSON-tagged for the artifact envelope) and fold
// them back with MergeArtifacts. An accumulator that cannot survive a
// JSON round-trip — stats.P2Quantile and the P2Summary composite are
// deliberately non-serializable and non-mergeable (see
// internal/stats/marshal.go) — silently corrupts that path: exported
// fields marshal as empty objects, unexported ones are dropped entirely,
// and the merged campaign reports zeros instead of failing loudly. The
// analyzer flags any field of a shard-partial struct whose type contains
// such an accumulator; ValueCounts-backed stats.Dist is the sharded
// alternative.
package shardsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc: "flags non-serializable accumulators (stats.P2Quantile, stats.P2Summary) in shard-artifact " +
		"partial structs (Module* or JSON-tagged), which would silently break MergeArtifacts",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// banned lists the non-serializable accumulators as pkgname.TypeName; the
// package is matched by name so fixtures can model it.
var banned = "stats.P2Quantile,stats.P2Summary"

func init() {
	Analyzer.Flags.StringVar(&banned, "banned", banned,
		"comma-separated pkgname.TypeName list of non-serializable accumulator types")
}

func run(pass *analysis.Pass) (any, error) {
	bannedSet := make(map[string]bool)
	for _, s := range strings.Split(banned, ",") {
		if s = strings.TrimSpace(s); s != "" {
			bannedSet[s] = true
		}
	}
	rep := detlint.NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		spec := n.(*ast.TypeSpec)
		st, ok := spec.Type.(*ast.StructType)
		if !ok {
			return
		}
		if !isShardPartial(spec.Name.Name, st) {
			return
		}
		for _, field := range st.Fields.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if hit := containsBanned(t, bannedSet, make(map[types.Type]bool)); hit != "" {
				exported := false
				for _, name := range field.Names {
					if name.IsExported() {
						exported = true
					}
				}
				fate := "is silently dropped by the JSON round-trip (unexported)"
				if exported {
					fate = "does not serialize (marshals empty / fails to decode)"
				}
				rep.Reportf(field.Pos(),
					"shard-partial struct %s carries non-serializable accumulator %s, which %s and silently breaks MergeArtifacts; use the ValueCounts-backed stats.Dist (or another serializable accumulator) in shard partials",
					spec.Name.Name, hit, fate)
			}
		}
	})
	return nil, nil
}

// isShardPartial decides whether a struct participates in the shard
// artifact contract: Module*-named partials and structs with JSON-tagged
// fields (serialization intent).
func isShardPartial(name string, st *ast.StructType) bool {
	if strings.HasPrefix(name, "Module") {
		return true
	}
	for _, f := range st.Fields.List {
		if f.Tag != nil && strings.Contains(f.Tag.Value, `json:`) {
			return true
		}
	}
	return false
}

// containsBanned walks t's structure (pointers, slices, arrays, map
// values, struct fields, named underlyings) and returns the description
// of the first banned accumulator found, or "".
func containsBanned(t types.Type, bannedSet map[string]bool, seen map[types.Type]bool) string {
	t = types.Unalias(t)
	if seen[t] {
		return ""
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj != nil && obj.Pkg() != nil {
			qname := obj.Pkg().Name() + "." + obj.Name()
			if bannedSet[qname] {
				return qname
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return containsBanned(u.Elem(), bannedSet, seen)
	case *types.Slice:
		return containsBanned(u.Elem(), bannedSet, seen)
	case *types.Array:
		return containsBanned(u.Elem(), bannedSet, seen)
	case *types.Map:
		return containsBanned(u.Elem(), bannedSet, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hit := containsBanned(u.Field(i).Type(), bannedSet, seen); hit != "" {
				return hit
			}
		}
	}
	return ""
}
