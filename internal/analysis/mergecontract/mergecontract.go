// Package mergecontract defines an analyzer that checks the shard-merge
// protocol obligations of accumulator types.
//
// Sharded campaigns serialize per-shard partial accumulators to JSON
// artifacts and fold them back with Merge methods (internal/stats
// accumulators inside the artifact envelope; see docs/CONTRACTS.md). A
// type declaring Merge therefore carries three obligations the compiler
// cannot check, and each failure corrupts merged campaigns silently
// rather than loudly:
//
//  1. Coverage — Merge must read or write every field of the receiver
//     struct (or copy the whole value). A field left out of Merge keeps
//     its zero value in the merged result: the shard that computed it is
//     silently dropped.
//
//  2. Serializability — the type must survive the JSON round trip to the
//     shard artifact. Unless the type provides its own MarshalJSON and
//     UnmarshalJSON codec (the internal/stats pattern for unexported
//     accumulator state), every field must be exported and must not
//     contain funcs, channels, complex numbers, or float-keyed maps
//     (encoding/json cannot encode any of them).
//
//  3. Merge determinism — inside Merge, ranging over a map is allowed
//     only for order-insensitive folds (per-key updates such as
//     counts[k] += c, or integer totals). Floating-point accumulation
//     into a shared cell, appends, and ordered-sink calls fed by map
//     iteration make merged artifact bytes depend on Go's randomized map
//     order, breaking the byte-identical shard-equivalence contract.
//
// The obligations are deliberately checkable per package: Merge methods,
// their receiver fields, and their bodies all live with the type.
package mergecontract

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
)

var Analyzer = &analysis.Analyzer{
	Name: "mergecontract",
	Doc: "checks shard-merge accumulator types (those declaring Merge): every field covered by Merge, " +
		"JSON round-trip survivability, and no order-sensitive map iteration inside Merge",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// sinkMethods are calls that observe their arguments in call order; feeding
// them map iteration values inside Merge makes the fold order-dependent.
// The list mirrors maporder's, minus the print family (Merge bodies that
// print are already suspect for other reasons).
var sinkMethods = map[string]bool{
	"Add": true, "Merge": true, "Observe": true,
	"Write": true, "WriteString": true, "Encode": true,
}

// sortFuncs launder a collected slice into a deterministic order.
var sortFuncs = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func run(pass *analysis.Pass) (any, error) {
	rep := detlint.NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// checkedTypes dedups the per-type serializability check when a type
	// declares Merge more than once across instantiations (not expressible
	// today, but cheap to guard).
	checkedTypes := make(map[*types.TypeName]bool)

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Name.Name != "Merge" || decl.Recv == nil || len(decl.Recv.List) != 1 || decl.Body == nil {
			return
		}
		obj, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if obj == nil {
			return
		}
		named := receiverNamed(obj)
		if named == nil || named.Obj().Pkg() != pass.Pkg {
			return
		}

		checkMapRanges(pass, rep, decl)

		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		checkCoverage(pass, rep, decl, named, st)
		if tn := named.Obj(); !checkedTypes[tn] {
			checkedTypes[tn] = true
			checkSerializable(pass, rep, named, st)
		}
	})
	return nil, nil
}

// receiverNamed resolves a method's receiver base type to its named type.
func receiverNamed(fn *types.Func) *types.Named {
	recv := fn.Signature().Recv()
	if recv == nil {
		return nil
	}
	t := types.Unalias(recv.Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// checkCoverage verifies Merge references every field of the receiver
// struct (directly, through an embedded path, or via a whole-value copy).
func checkCoverage(pass *analysis.Pass, rep *detlint.Reporter, decl *ast.FuncDecl, named *types.Named, st *types.Struct) {
	info := pass.TypesInfo
	var recvObj types.Object
	if names := decl.Recv.List[0].Names; len(names) == 1 {
		recvObj = info.Defs[names[0]]
	}

	covered := make(map[*types.Var]bool)
	wholeCopy := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel := info.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
				if f, ok := sel.Obj().(*types.Var); ok {
					covered[f] = true
				}
			}
		case *ast.AssignStmt:
			// *m = o (or *m = T{...}) covers every field at once.
			for _, lhs := range n.Lhs {
				if star, ok := lhs.(*ast.StarExpr); ok {
					if id, ok := star.X.(*ast.Ident); ok && recvObj != nil && info.Uses[id] == recvObj {
						wholeCopy = true
					}
				}
			}
		}
		return true
	})
	if wholeCopy {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !covered[f] {
			rep.Reportf(decl.Name.Pos(),
				"Merge of %s never reads or writes field %s; the field's per-shard partial is silently dropped when shards fold (cover it, or copy the whole value)",
				named.Obj().Name(), f.Name())
		}
	}
}

// checkSerializable verifies the type survives the JSON round trip to the
// shard artifact. A type providing its own MarshalJSON/UnmarshalJSON codec
// is trusted wholesale — that is how internal/stats serializes unexported
// accumulator state.
func checkSerializable(pass *analysis.Pass, rep *detlint.Reporter, named *types.Named, st *types.Struct) {
	if hasCodec(named) {
		return
	}
	name := named.Obj().Name()
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			rep.Reportf(f.Pos(),
				"unexported field %s of merge type %s is dropped by the JSON shard round-trip; give %s a MarshalJSON/UnmarshalJSON codec (the internal/stats pattern) or export the field",
				f.Name(), name, name)
			continue
		}
		if bad := unserializable(f.Type(), make(map[types.Type]bool)); bad != "" {
			rep.Reportf(f.Pos(),
				"field %s of merge type %s contains %s, which encoding/json cannot round-trip; the shard artifact silently corrupts it",
				f.Name(), name, bad)
		}
	}
}

// hasCodec reports whether *T declares both halves of a custom JSON codec.
func hasCodec(named *types.Named) bool {
	mset := types.NewMethodSet(types.NewPointer(named))
	marshal, unmarshal := false, false
	for i := 0; i < mset.Len(); i++ {
		switch mset.At(i).Obj().Name() {
		case "MarshalJSON":
			marshal = true
		case "UnmarshalJSON":
			unmarshal = true
		}
	}
	return marshal && unmarshal
}

// unserializable walks t's structure and describes the first component
// encoding/json cannot round-trip ("" when the type is fine). Named types
// with their own codec are trusted without descending.
func unserializable(t types.Type, seen map[types.Type]bool) string {
	t = types.Unalias(t)
	if seen[t] {
		return ""
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok && hasCodec(n) {
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsComplex != 0 {
			return "a complex number"
		}
	case *types.Signature:
		return "a func value"
	case *types.Chan:
		return "a channel"
	case *types.Pointer:
		return unserializable(u.Elem(), seen)
	case *types.Slice:
		return unserializable(u.Elem(), seen)
	case *types.Array:
		return unserializable(u.Elem(), seen)
	case *types.Map:
		if k, ok := types.Unalias(u.Key()).Underlying().(*types.Basic); ok && k.Info()&types.IsFloat != 0 {
			return "a float-keyed map"
		}
		return unserializable(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if f := u.Field(i); f.Exported() {
				if bad := unserializable(f.Type(), seen); bad != "" {
					return bad
				}
			}
		}
	}
	return ""
}

// checkMapRanges flags order-sensitive consumption of map iteration inside
// a Merge body. Per-key updates (counts[k] += c) and integer totals are
// order-insensitive and allowed; float accumulation into a shared cell,
// unsorted appends, and ordered-sink calls are not.
func checkMapRanges(pass *analysis.Pass, rep *detlint.Reporter, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !detlint.IsMapType(info.TypeOf(rng.X)) {
			return true
		}
		iterObjs := rangeVarObjects(info, rng)
		if len(iterObjs) == 0 {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				if m.Tok != token.ADD_ASSIGN && m.Tok != token.SUB_ASSIGN && m.Tok != token.MUL_ASSIGN {
					return true
				}
				if len(m.Lhs) != 1 || !isFloat(info.TypeOf(m.Lhs[0])) {
					return true
				}
				if perKeySlot(info, m.Lhs[0], iterObjs) {
					return true // counts[k] += v: each key updated once, order-free
				}
				if detlint.UsesObject(info, m.Rhs[0], iterObjs...) {
					rep.Reportf(m.Pos(),
						"floating-point fold over map iteration in Merge; float addition is not associative, so merged artifact bytes depend on map order — fold over sorted keys or keep per-key slots")
				}
			case *ast.CallExpr:
				if dst, ok := appendDest(info, m); ok {
					if detlint.UsesObject(info, m, iterObjs...) && !sortedLater(pass, decl.Body, rng, dst) {
						rep.Reportf(m.Pos(),
							"append of map iteration values in Merge without a later sort; merged artifact bytes depend on map order — collect and sort before use")
					}
					return true
				}
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok && sinkMethods[sel.Sel.Name] {
					args := &ast.CallExpr{Fun: &ast.Ident{Name: "args"}, Args: m.Args}
					if detlint.UsesObject(info, args, iterObjs...) {
						rep.Reportf(m.Pos(),
							"map iteration value flows into ordered sink %s inside Merge; the fold depends on map order — iterate sorted keys",
							sel.Sel.Name)
					}
				}
			}
			return true
		})
		return true
	})
}

// perKeySlot reports whether lhs is an index expression whose index uses a
// loop variable — a per-key update that each iteration touches exactly once.
func perKeySlot(info *types.Info, lhs ast.Expr, iterObjs []types.Object) bool {
	idx, ok := lhs.(*ast.IndexExpr)
	return ok && detlint.UsesObject(info, idx.Index, iterObjs...)
}

// rangeVarObjects returns the objects of the loop's key/value variables.
func rangeVarObjects(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var objs []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id == nil || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			objs = append(objs, obj)
		} else if obj := info.Uses[id]; obj != nil {
			objs = append(objs, obj)
		}
	}
	return objs
}

// appendDest reports whether call is append(dst, ...) and returns dst.
func appendDest(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) < 2 {
		return nil, false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	return call.Args[0], true
}

// sortedLater reports whether dst (an identifier) is passed to a sort
// function after the range loop, the collect-then-sort idiom.
func sortedLater(pass *analysis.Pass, body ast.Node, rng *ast.RangeStmt, dst ast.Expr) bool {
	info := pass.TypesInfo
	id, ok := dst.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isPkg := info.Uses[pkgID].(*types.PkgName); !isPkg || !sortFuncs[pkgID.Name+"."+sel.Sel.Name] {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && info.Uses[arg] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
