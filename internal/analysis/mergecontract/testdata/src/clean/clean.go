// Package clean holds merge types satisfying all three obligations: no
// diagnostics anywhere in this file.
package clean

import "sort"

// Codec keeps unexported accumulator state behind a custom JSON codec,
// the internal/stats pattern; serializability is trusted wholesale.
type Codec struct {
	n   int
	sum float64
}

func (c *Codec) Merge(o Codec) {
	if o.n == 0 {
		return
	}
	if c.n == 0 {
		*c = o
		return
	}
	c.n += o.n
	c.sum += o.sum
}

func (c Codec) MarshalJSON() ([]byte, error)  { return []byte(`{}`), nil }
func (c *Codec) UnmarshalJSON(b []byte) error { return nil }

// Counts merges per-key integer slots: exact and order-free.
type Counts struct {
	N      int
	ByName map[string]int
}

func (v *Counts) Merge(o Counts) {
	v.N += o.N
	if v.ByName == nil {
		v.ByName = make(map[string]int, len(o.ByName))
	}
	for k, c := range o.ByName {
		v.ByName[k] += c
	}
}

// PerSlot updates float cells keyed by the iteration key: each key is
// written exactly once per merge, so order does not matter.
type PerSlot struct {
	Vals map[string]float64
}

func (p *PerSlot) Merge(o PerSlot) {
	if p.Vals == nil {
		p.Vals = make(map[string]float64, len(o.Vals))
	}
	for k, v := range o.Vals {
		p.Vals[k] += v
	}
}

// Copy covers every field with a whole-value assignment.
type Copy struct {
	A, B, C float64
}

func (c *Copy) Merge(o Copy) { *c = o }

// Sorted collects map keys and sorts them before appending: the
// deterministic collect-then-sort idiom.
type Sorted struct {
	Keys []string
	Seen map[string]bool
}

func (s *Sorted) Merge(o Sorted) {
	if s.Seen == nil {
		s.Seen = make(map[string]bool, len(o.Seen))
	}
	var ks []string
	for k := range o.Seen {
		s.Seen[k] = true
		ks = append(ks, k)
	}
	sort.Strings(ks)
	s.Keys = append(s.Keys, ks...)
}

// Set is a non-struct merge type: only the map-iteration rule applies,
// and per-key boolean writes are order-free.
type Set map[string]bool

func (s Set) Merge(o Set) {
	for k := range o {
		s[k] = true
	}
}
