// Package a exercises every mergecontract diagnostic: dropped fields,
// JSON-hostile state, and order-sensitive map iteration inside Merge.
package a

// Acc's Merge drops Peak: merged campaigns lose every shard's peak.
type Acc struct {
	Sum   float64
	Count int
	Peak  float64
}

func (a *Acc) Merge(o Acc) { // want "Merge of Acc never reads or writes field Peak"
	a.Sum += o.Sum
	a.Count += o.Count
}

// Hidden has unexported state and no custom codec: the JSON round trip
// through the shard artifact silently zeroes seen.
type Hidden struct {
	Total int
	seen  map[string]int // want "unexported field seen of merge type Hidden"
}

func (h *Hidden) Merge(o Hidden) {
	h.Total += o.Total
	if h.seen == nil {
		h.seen = make(map[string]int, len(o.seen))
	}
	for k, c := range o.seen {
		h.seen[k] += c
	}
}

// Bad carries exported state encoding/json cannot encode at all.
type Bad struct {
	Done  chan int        // want "field Done of merge type Bad contains a channel"
	Hook  func()          // want "field Hook of merge type Bad contains a func value"
	Keyed map[float64]int // want "field Keyed of merge type Bad contains a float-keyed map"
}

func (b *Bad) Merge(o Bad) {
	b.Done = o.Done
	b.Hook = o.Hook
	for k, c := range o.Keyed {
		b.Keyed[k] += c
	}
}

// Fold accumulates a float total across map iterations: the merged mean
// depends on Go's randomized map order.
type Fold struct {
	Total float64
	ByKey map[string]float64
}

func (f *Fold) Merge(o Fold) {
	for k, v := range o.ByKey {
		f.ByKey[k] += v
		f.Total += v // want "floating-point fold over map iteration in Merge"
	}
}

// Log appends map keys without sorting them afterwards.
type Log struct {
	Keys []string
	Seen map[string]bool
}

func (l *Log) Merge(o Log) {
	for k := range o.Seen {
		l.Seen[k] = true
		l.Keys = append(l.Keys, k) // want "append of map iteration values in Merge without a later sort"
	}
}

// counter is an ordered sink: Add observes its arguments in call order.
type counter struct{ total float64 }

func (c *counter) Add(x float64) { c.total += x }

// Routed feeds map iteration values into that sink.
type Routed struct {
	Agg   counter
	PerID map[string]float64
}

func (r *Routed) Merge(o Routed) {
	r.Agg = o.Agg
	for _, v := range o.PerID {
		r.Agg.Add(v) // want "ordered sink Add inside Merge"
	}
}
