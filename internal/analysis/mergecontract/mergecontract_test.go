package mergecontract_test

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/analysis/analysistest"
	"github.com/dramstudy/rhvpp/internal/analysis/mergecontract"
)

func TestMergecontract(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mergecontract.Analyzer, "a", "clean")
}
