package spice

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// patRand fills a 6x6 matrix with random entries on the cellPattern6
// structure: uniformly drawn magnitudes on pattern positions, exact zeros
// everywhere else. diagBoost > 1 makes the matrix diagonally dominant, which
// keeps solve6Cell on its fast path; diagBoost < 1 forces off-diagonal
// pivots that trip the mid-solve fallback.
func patRand(rng *rand.Rand, diagBoost float64) ([]float64, []float64) {
	a := make([]float64, 36)
	b := make([]float64, 6)
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			if cellPattern6[r]&(1<<uint(c)) != 0 {
				v := rng.Float64()*2 - 1
				if r == c {
					v = (rng.Float64() + 0.5) * diagBoost
				}
				a[r*6+c] = v
			}
		}
		b[r] = rng.Float64()*2 - 1
	}
	return a, b
}

// TestSolve6CellMatchesGeneric is the property test behind the cellPattern6
// contract: for matrices on the cell structure, solve6Cell (and therefore
// the stack-resident cell6Iter elimination, which repeats the identical
// operation sequence) returns bit-for-bit the generic partial-pivot
// solution — including when a pivot guard trips and the solve falls back
// mid-elimination.
func TestSolve6CellMatchesGeneric(t *testing.T) {
	// Structural properties the fast path is built on: exactly one
	// subdiagonal entry per column (except the last), and natural-order
	// elimination produces no fill-in outside the pattern.
	for c := 0; c < 5; c++ {
		subs := 0
		for r := c + 1; r < 6; r++ {
			if cellPattern6[r]&(1<<uint(c)) != 0 {
				subs++
			}
		}
		if subs != 1 {
			t.Fatalf("column %d has %d structural subdiagonal entries, want 1", c, subs)
		}
	}
	pat := cellPattern6
	for col := 0; col < 6; col++ {
		for r := col + 1; r < 6; r++ {
			if pat[r]&(1<<uint(col)) == 0 {
				continue
			}
			fill := (pat[col] &^ pat[r]) &^ (1<<uint(col) - 1)
			if fill != 0 {
				t.Fatalf("elimination of (%d,%d) fills columns %06b outside the pattern", r, col, fill)
			}
			pat[r] |= pat[col] &^ (1<<uint(col) - 1)
		}
	}

	rng := rand.New(rand.NewSource(2022))
	cases := []struct {
		name      string
		diagBoost float64
	}{
		{"dominant-fast-path", 50}, // pivot guards never trip
		{"balanced", 1},            // guards trip on some draws
		{"offdiag-dominant", 0.01}, // nearly every column falls back
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trips := 0
			for trial := 0; trial < 500; trial++ {
				a, b := patRand(rng, tc.diagBoost)
				ag := append([]float64(nil), a...)
				bg := append([]float64(nil), b...)
				if abs(a[6]) > abs(a[0]) {
					trips++
				}
				errC := solve6Cell(a, b)
				errG := solve6From((*[36]float64)(ag), (*[6]float64)(bg), 0)
				if (errC == nil) != (errG == nil) {
					t.Fatalf("trial %d: error mismatch: cell=%v generic=%v", trial, errC, errG)
				}
				if errC != nil {
					continue
				}
				for i := 0; i < 6; i++ {
					if math.Float64bits(b[i]) != math.Float64bits(bg[i]) {
						t.Fatalf("trial %d: x[%d] differs: cell=%x generic=%x",
							trial, i, math.Float64bits(b[i]), math.Float64bits(bg[i]))
					}
				}
			}
			if tc.diagBoost < 1 && trips == 0 {
				t.Fatalf("off-diagonal case never tripped a pivot guard; test is not exercising the fallback")
			}
		})
	}

	// Singular systems must error identically through both paths.
	a := make([]float64, 36)
	b := make([]float64, 6)
	if err := solve6Cell(a, b); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular system: got %v, want ErrSingular", err)
	}
}
