package spice

import (
	"errors"
	"fmt"
	"math"
)

// Ground is the reference node; its voltage is fixed at zero.
const Ground = 0

// Circuit is a netlist under construction. The zero value is unusable; use
// NewCircuit.
type Circuit struct {
	nodeCount int
	nodeNames map[string]int
	resistors []resistor
	caps      []capacitor
	sources   []vsource
	mosfets   []mosfet
	initial   map[int]float64
}

type resistor struct {
	a, b int
	ohms float64
}

type capacitor struct {
	a, b   int
	farads float64
}

type vsource struct {
	pos, neg int
	wave     Waveform
}

type mosfet struct {
	d, g, s int
	params  MOSParams
}

// Waveform is a time-dependent source value in volts.
type Waveform interface {
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// PWL is a piecewise-linear waveform defined by (time, value) breakpoints in
// ascending time order; values are held outside the breakpoint range.
type PWL struct {
	Times  []float64
	Values []float64
}

// At implements Waveform.
func (p PWL) At(t float64) float64 {
	n := len(p.Times)
	if n == 0 {
		return 0
	}
	if t <= p.Times[0] {
		return p.Values[0]
	}
	if t >= p.Times[n-1] {
		return p.Values[n-1]
	}
	for i := 1; i < n; i++ {
		if t <= p.Times[i] {
			f := (t - p.Times[i-1]) / (p.Times[i] - p.Times[i-1])
			return p.Values[i-1] + f*(p.Values[i]-p.Values[i-1])
		}
	}
	return p.Values[n-1]
}

// NewCircuit returns an empty netlist.
func NewCircuit() *Circuit {
	return &Circuit{
		nodeCount: 1, // ground
		nodeNames: map[string]int{"gnd": Ground, "0": Ground},
		initial:   map[int]float64{},
	}
}

// Node returns the node id for a name, allocating it on first use.
func (c *Circuit) Node(name string) int {
	if id, ok := c.nodeNames[name]; ok {
		return id
	}
	id := c.nodeCount
	c.nodeCount++
	c.nodeNames[name] = id
	return id
}

// NumNodes returns the number of nodes including ground.
func (c *Circuit) NumNodes() int { return c.nodeCount }

// R adds a resistor between nodes a and b.
func (c *Circuit) R(a, b int, ohms float64) {
	c.resistors = append(c.resistors, resistor{a, b, ohms})
}

// C adds a capacitor between nodes a and b.
func (c *Circuit) C(a, b int, farads float64) {
	c.caps = append(c.caps, capacitor{a, b, farads})
}

// V adds a voltage source from pos to neg with the given waveform and
// returns its source index.
func (c *Circuit) V(pos, neg int, w Waveform) int {
	c.sources = append(c.sources, vsource{pos, neg, w})
	return len(c.sources) - 1
}

// MOS adds a MOSFET with the given terminals and parameters.
func (c *Circuit) MOS(drain, gate, source int, p MOSParams) {
	c.mosfets = append(c.mosfets, mosfet{drain, gate, source, p})
}

// SetInitial sets a node's initial voltage for transient analysis.
func (c *Circuit) SetInitial(node int, volts float64) {
	if node != Ground {
		c.initial[node] = volts
	}
}

// ErrSingular is returned when the MNA system cannot be solved.
var ErrSingular = errors.New("spice: singular MNA matrix")

// ErrNoConverge is returned when Newton iteration fails to converge.
var ErrNoConverge = errors.New("spice: Newton iteration did not converge")

// solveDense performs Gaussian elimination with partial pivoting in place.
// a is an n x n matrix in row-major order; b the right-hand side.
func solveDense(a []float64, b []float64, n int) error {
	if n == 6 {
		return solve6(a, b)
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		max := abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := abs(a[r*n+col]); v > max {
				pivot, max = r, v
			}
		}
		if max < 1e-18 {
			return fmt.Errorf("%w (column %d)", ErrSingular, col) //detlint:ignore hotalloc error path, never taken by a solvable system
		}
		if pivot != col {
			for k := col; k < n; k++ {
				a[col*n+k], a[pivot*n+k] = a[pivot*n+k], a[col*n+k]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r*n+k] -= f * a[col*n+k]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r*n+k] * b[k]
		}
		b[r] = sum / a[r*n+r]
	}
	return nil
}

// solve6 is solveDense specialized to the reduced DRAM-cell system's n=6:
// the same partial-pivot elimination performing the identical sequence of
// float operations (so results are bit-for-bit equal to the generic path),
// but over fixed-size array views with constant loop bounds, which lets the
// compiler drop every bounds check and unroll the inner updates — this is
// the single hottest function of the Monte-Carlo campaign.
func solve6(as []float64, bs []float64) error {
	return solve6From((*[36]float64)(as), (*[6]float64)(bs), 0)
}

// solve6From runs the generic partial-pivot elimination starting at the
// given column, assuming columns before it are already eliminated. It is
// both the whole generic n=6 solve (col0 = 0) and the bit-exact
// continuation solve6Cell falls back to when a pivot search leaves the
// diagonal.
func solve6From(a *[36]float64, b *[6]float64, col0 int) error {
	const n = 6
	for col := col0; col < n; col++ {
		pivot := col
		max := abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := abs(a[r*n+col]); v > max {
				pivot, max = r, v
			}
		}
		if max < 1e-18 {
			return fmt.Errorf("%w (column %d)", ErrSingular, col) //detlint:ignore hotalloc error path, never taken by a solvable system
		}
		if pivot != col {
			for k := col; k < n; k++ {
				a[col*n+k], a[pivot*n+k] = a[pivot*n+k], a[col*n+k]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r*n+k] -= f * a[col*n+k]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r*n+k] * b[k]
		}
		b[r] = sum / a[r*n+r]
	}
	return nil
}

// cellPattern6 is the row-wise nonzero mask (bit c = column c) of the
// reduced DRAM-cell Newton matrix in reduced-index order cellC, cellN, blc,
// bls, blbc, blbs: a chain cellC–cellN–blc–bls plus the isolated half
// blbc–blbs, coupled only through the sense-amp gate terms bls↔blbs. The
// pattern has two load-bearing properties, both verified by
// TestSolve6CellMatchesGeneric: elimination in natural order produces no
// fill-in, and each column has exactly one structurally nonzero entry below
// the diagonal.
var cellPattern6 = [6]uint8{
	0b000011, // cellC: diag, cellN
	0b000111, // cellN: cellC, diag, blc
	0b001110, // blc:   cellN, diag, bls
	0b101100, // bls:   blc, diag, blbs (gate)
	0b110000, // blbc:  diag, blbs
	0b111000, // blbs:  bls (gate), blbc, diag
}

// solve6Cell is the structure-exploiting solve for matrices whose nonzero
// pattern is within cellPattern6 (the caller checks the stamps at build
// time; see reduced.cell6). It performs exactly the float operations the
// generic elimination performs on this pattern — the same pivot-search
// decisions, the same f==0 row skips, the same multiply-subtract per
// structurally nonzero entry — and omits only operations the generic path
// wastes on exact zeros: subtractions of f*0 inside skipped columns and
// dead writes to subdiagonal entries never read again. Results are
// bit-for-bit equal to solve6. Whenever a pivot search would leave the
// diagonal (never observed for the diagonally dominant cell system, but
// parameter sets are user data) or a diagonal underflows the singularity
// floor, it falls back mid-solve to the generic continuation, which is
// decision-identical because the elimination state up to that column is.
func solve6Cell(as []float64, bs []float64) error {
	a := (*[36]float64)(as)
	b := (*[6]float64)(bs)

	// Column 0: the only subdiagonal entry is (1,0).
	d := abs(a[0])
	if abs(a[6]) > d || d < 1e-18 {
		return solve6From(a, b, 0)
	}
	if f := a[6] * (1 / a[0]); f != 0 {
		a[7] -= f * a[1]
		b[1] -= f * b[0]
	}
	// Column 1: subdiagonal (2,1).
	d = abs(a[7])
	if abs(a[13]) > d || d < 1e-18 {
		return solve6From(a, b, 1)
	}
	if f := a[13] * (1 / a[7]); f != 0 {
		a[14] -= f * a[8]
		b[2] -= f * b[1]
	}
	// Column 2: subdiagonal (3,2).
	d = abs(a[14])
	if abs(a[20]) > d || d < 1e-18 {
		return solve6From(a, b, 2)
	}
	if f := a[20] * (1 / a[14]); f != 0 {
		a[21] -= f * a[15]
		b[3] -= f * b[2]
	}
	// Column 3: subdiagonal (5,3) — the sense-amp gate coupling.
	d = abs(a[21])
	if abs(a[33]) > d || d < 1e-18 {
		return solve6From(a, b, 3)
	}
	if f := a[33] * (1 / a[21]); f != 0 {
		a[35] -= f * a[23]
		b[5] -= f * b[3]
	}
	// Column 4: subdiagonal (5,4).
	d = abs(a[28])
	if abs(a[34]) > d || d < 1e-18 {
		return solve6From(a, b, 4)
	}
	if f := a[34] * (1 / a[28]); f != 0 {
		a[35] -= f * a[29]
		b[5] -= f * b[4]
	}
	// Column 5 has no subdiagonal; only the singularity floor remains.
	if abs(a[35]) < 1e-18 {
		return solve6From(a, b, 5)
	}

	// Back-substitution over the structural upper triangle.
	b[5] = b[5] / a[35]
	b[4] = (b[4] - a[29]*b[5]) / a[28]
	b[3] = (b[3] - a[23]*b[5]) / a[21]
	b[2] = (b[2] - a[15]*b[3]) / a[14]
	b[1] = (b[1] - a[8]*b[2]) / a[7]
	b[0] = (b[0] - a[1]*b[1]) / a[0]
	return nil
}

// abs is math.Abs: the intrinsified bit-clear compiles branchless, which
// matters in the pivot guards and convergence checks it saturates. (It maps
// -0 to +0 where the branching form would keep -0; every caller only
// compares the result, and -0 == +0, so behavior is identical.)
func abs(x float64) float64 {
	return math.Abs(x)
}

// cell6Iter performs one complete Newton iteration of the cell-pattern
// system entirely in stack arrays: statics load, MOSFET linearizations, the
// structural elimination of solve6Cell, back-substitution, and the damped
// iterate update, with no heap matrix between them. The float operations
// replicate, in order, exactly what the copy-stamp-solve-damp sequence of
// the generic path performs (see solve6Cell for the zero-operation
// accounting), so the updated iterate in newt and the returned convergence
// norm are bit-for-bit identical. When a pivot guard trips it reports ok =
// false WITHOUT writing anything: all partial work lived in the stack
// arrays, so the caller redoes the iteration through the generic path from
// the same pristine inputs, which reproduces the identical elimination
// prefix and then handles the pivot exactly as solveDense always has.
//
//detlint:hotpath witness=TestBatchStepAllocsFree
func cell6Iter(gStatic, zStep, newt, vdrv []float64, plans []mosPlan, mos []*MOSParams) (maxDelta float64, ok bool) {
	a := *(*[36]float64)(gStatic)
	z := *(*[6]float64)(zStep)
	nt := (*[6]float64)(newt)
	for mi, p := range mos {
		pl := plans[mi]
		var vd, vg, vs float64
		if pl.rd >= 0 {
			vd = nt[pl.rd]
		} else if pl.dd >= 0 {
			vd = vdrv[pl.dd]
		}
		if pl.rg >= 0 {
			vg = nt[pl.rg]
		} else if pl.dg >= 0 {
			vg = vdrv[pl.dg]
		}
		if pl.rs >= 0 {
			vs = nt[pl.rs]
		} else if pl.ds >= 0 {
			vs = vdrv[pl.ds]
		}
		// mosStamp's body, by hand: the compiler declines to inline it
		// (cost 235 vs budget 80) and the call runs five times per Newton
		// iteration of every run. Arithmetic identical, in order — keep in
		// sync with mosStamp.
		mvd, mvg, mvs := vd, vg, vs
		neg := 1.0
		if p.Type == PMOS {
			mvd, mvg, mvs = -mvd, -mvg, -mvs
			neg = -1
		}
		sign := 1.0
		if mvd < mvs {
			mvd, mvs = mvs, mvd
			sign = -1
		}
		vgs := mvg - mvs
		vds := mvd - mvs
		vov := vgs - p.VT0
		const gmin = 1e-12
		beta := p.KP * p.W / p.L
		var cur, gm, gd float64
		switch {
		case vov <= 0:
			cur = gmin * vds
			gd = gmin
			gm = 0
		case vds < vov:
			clm := 1 + p.Lambda*vds
			cur = beta * (vov*vds - vds*vds/2) * clm
			gm = beta * vds * clm
			gd = beta*(vov-vds)*clm + beta*(vov*vds-vds*vds/2)*p.Lambda + gmin
		default:
			clm := 1 + p.Lambda*vds
			cur = beta / 2 * vov * vov * clm
			gm = beta * vov * clm
			gd = beta/2*vov*vov*p.Lambda + gmin
		}
		cur *= sign
		var id, gdd, gdg, gds float64
		if sign > 0 {
			id, gdd, gdg, gds = neg*cur, gd, gm, -(gm + gd)
		} else {
			id, gdd, gdg, gds = neg*cur, gm+gd, -gm, -gd
		}
		ieq := id - gdd*vd - gdg*vg - gds*vs
		if rd := pl.rd; rd >= 0 {
			row := rd * 6
			a[row+rd] += gdd
			if pl.rg >= 0 {
				a[row+pl.rg] += gdg
			} else if pl.dg >= 0 {
				z[rd] -= gdg * vdrv[pl.dg]
			}
			if pl.rs >= 0 {
				a[row+pl.rs] += gds
			} else if pl.ds >= 0 {
				z[rd] -= gds * vdrv[pl.ds]
			}
			z[rd] -= ieq
		}
		if rs := pl.rs; rs >= 0 {
			row := rs * 6
			if pl.rd >= 0 {
				a[row+pl.rd] += -gdd
			} else if pl.dd >= 0 {
				z[rs] -= -gdd * vdrv[pl.dd]
			}
			if pl.rg >= 0 {
				a[row+pl.rg] += -gdg
			} else if pl.dg >= 0 {
				z[rs] -= -gdg * vdrv[pl.dg]
			}
			a[row+rs] += -gds
			z[rs] += ieq
		}
	}

	// The elimination and back-substitution of solve6Cell, on the stack
	// copies.
	d := abs(a[0])
	if abs(a[6]) > d || d < 1e-18 {
		return 0, false
	}
	if f := a[6] * (1 / a[0]); f != 0 {
		a[7] -= f * a[1]
		z[1] -= f * z[0]
	}
	d = abs(a[7])
	if abs(a[13]) > d || d < 1e-18 {
		return 0, false
	}
	if f := a[13] * (1 / a[7]); f != 0 {
		a[14] -= f * a[8]
		z[2] -= f * z[1]
	}
	d = abs(a[14])
	if abs(a[20]) > d || d < 1e-18 {
		return 0, false
	}
	if f := a[20] * (1 / a[14]); f != 0 {
		a[21] -= f * a[15]
		z[3] -= f * z[2]
	}
	d = abs(a[21])
	if abs(a[33]) > d || d < 1e-18 {
		return 0, false
	}
	if f := a[33] * (1 / a[21]); f != 0 {
		a[35] -= f * a[23]
		z[5] -= f * z[3]
	}
	d = abs(a[28])
	if abs(a[34]) > d || d < 1e-18 {
		return 0, false
	}
	if f := a[34] * (1 / a[28]); f != 0 {
		a[35] -= f * a[29]
		z[5] -= f * z[4]
	}
	if abs(a[35]) < 1e-18 {
		return 0, false
	}

	z[5] = z[5] / a[35]
	z[4] = (z[4] - a[29]*z[5]) / a[28]
	z[3] = (z[3] - a[23]*z[5]) / a[21]
	z[2] = (z[2] - a[15]*z[3]) / a[14]
	z[1] = (z[1] - a[8]*z[2]) / a[7]
	z[0] = (z[0] - a[1]*z[1]) / a[0]

	// Damped Newton update and convergence norm, fused so the solution
	// never round-trips through memory: the same arithmetic, in the same
	// unknown order, as the generic path's update loop in stepReduced.
	for i := 0; i < 6; i++ {
		d := z[i] - nt[i]
		if abs(d) > maxDelta {
			maxDelta = abs(d)
		}
		if abs(d) > newtonMaxDelta {
			if d > 0 {
				d = newtonMaxDelta
			} else {
				d = -newtonMaxDelta
			}
		}
		nt[i] += d
	}
	return maxDelta, true
}
