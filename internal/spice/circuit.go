package spice

import (
	"errors"
	"fmt"
)

// Ground is the reference node; its voltage is fixed at zero.
const Ground = 0

// Circuit is a netlist under construction. The zero value is unusable; use
// NewCircuit.
type Circuit struct {
	nodeCount int
	nodeNames map[string]int
	resistors []resistor
	caps      []capacitor
	sources   []vsource
	mosfets   []mosfet
	initial   map[int]float64
}

type resistor struct {
	a, b int
	ohms float64
}

type capacitor struct {
	a, b   int
	farads float64
}

type vsource struct {
	pos, neg int
	wave     Waveform
}

type mosfet struct {
	d, g, s int
	params  MOSParams
}

// Waveform is a time-dependent source value in volts.
type Waveform interface {
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// PWL is a piecewise-linear waveform defined by (time, value) breakpoints in
// ascending time order; values are held outside the breakpoint range.
type PWL struct {
	Times  []float64
	Values []float64
}

// At implements Waveform.
func (p PWL) At(t float64) float64 {
	n := len(p.Times)
	if n == 0 {
		return 0
	}
	if t <= p.Times[0] {
		return p.Values[0]
	}
	if t >= p.Times[n-1] {
		return p.Values[n-1]
	}
	for i := 1; i < n; i++ {
		if t <= p.Times[i] {
			f := (t - p.Times[i-1]) / (p.Times[i] - p.Times[i-1])
			return p.Values[i-1] + f*(p.Values[i]-p.Values[i-1])
		}
	}
	return p.Values[n-1]
}

// NewCircuit returns an empty netlist.
func NewCircuit() *Circuit {
	return &Circuit{
		nodeCount: 1, // ground
		nodeNames: map[string]int{"gnd": Ground, "0": Ground},
		initial:   map[int]float64{},
	}
}

// Node returns the node id for a name, allocating it on first use.
func (c *Circuit) Node(name string) int {
	if id, ok := c.nodeNames[name]; ok {
		return id
	}
	id := c.nodeCount
	c.nodeCount++
	c.nodeNames[name] = id
	return id
}

// NumNodes returns the number of nodes including ground.
func (c *Circuit) NumNodes() int { return c.nodeCount }

// R adds a resistor between nodes a and b.
func (c *Circuit) R(a, b int, ohms float64) {
	c.resistors = append(c.resistors, resistor{a, b, ohms})
}

// C adds a capacitor between nodes a and b.
func (c *Circuit) C(a, b int, farads float64) {
	c.caps = append(c.caps, capacitor{a, b, farads})
}

// V adds a voltage source from pos to neg with the given waveform and
// returns its source index.
func (c *Circuit) V(pos, neg int, w Waveform) int {
	c.sources = append(c.sources, vsource{pos, neg, w})
	return len(c.sources) - 1
}

// MOS adds a MOSFET with the given terminals and parameters.
func (c *Circuit) MOS(drain, gate, source int, p MOSParams) {
	c.mosfets = append(c.mosfets, mosfet{drain, gate, source, p})
}

// SetInitial sets a node's initial voltage for transient analysis.
func (c *Circuit) SetInitial(node int, volts float64) {
	if node != Ground {
		c.initial[node] = volts
	}
}

// ErrSingular is returned when the MNA system cannot be solved.
var ErrSingular = errors.New("spice: singular MNA matrix")

// ErrNoConverge is returned when Newton iteration fails to converge.
var ErrNoConverge = errors.New("spice: Newton iteration did not converge")

// solveDense performs Gaussian elimination with partial pivoting in place.
// a is an n x n matrix in row-major order; b the right-hand side.
func solveDense(a []float64, b []float64, n int) error {
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		max := abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := abs(a[r*n+col]); v > max {
				pivot, max = r, v
			}
		}
		if max < 1e-18 {
			return fmt.Errorf("%w (column %d)", ErrSingular, col) //detlint:ignore hotalloc error path, never taken by a solvable system
		}
		if pivot != col {
			for k := col; k < n; k++ {
				a[col*n+k], a[pivot*n+k] = a[pivot*n+k], a[col*n+k]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r*n+k] -= f * a[col*n+k]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r*n+k] * b[k]
		}
		b[r] = sum / a[r*n+r]
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
