package spice

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"github.com/dramstudy/rhvpp/internal/rng"
)

// fixedGrid returns p with adaptive stepping disabled.
func fixedGrid(p CellParams) CellParams {
	p.Adaptive = AdaptiveConfig{}
	return p
}

// TestAdaptiveCrossingsMatchFixedGrid is the crossing-quantization property
// test: every measurement the adaptive engine reports — the tRCDmin and
// tRASmin threshold crossings quantized onto the 25 ps grid, and the
// reliable/restored classifications — must be IDENTICAL (bit-for-bit, not
// approximately) to the fixed-grid measurement, both on the Fig. 8a/9a
// waveforms at every sweep VPP and on the golden campaign's Monte-Carlo
// population (seed 2022, ±5% variation). This is the property the campaign
// goldens' byte-identity rests on: identical crossing floats mean the exact
// streaming quantiles in internal/stats see the same multiset either way.
func TestAdaptiveCrossingsMatchFixedGrid(t *testing.T) {
	for _, vpp := range goldenSweepVPPs {
		p := DefaultCellParams(vpp)
		fast, err := SimulateActivation(p, nil)
		if err != nil {
			t.Fatalf("vpp=%v: adaptive: %v", vpp, err)
		}
		fixed, err := SimulateActivation(fixedGrid(p), nil)
		if err != nil {
			t.Fatalf("vpp=%v: fixed: %v", vpp, err)
		}
		assertSameMeasurement(t, fmt.Sprintf("vpp=%v", vpp), fast, fixed)
	}

	if testing.Short() {
		t.Skip("golden-population crossings in -short mode")
	}
	const runs = 24 // the golden campaign's per-level population
	for _, vpp := range goldenSweepVPPs {
		root := rng.New(2022).Derive("spice-mc", fmt.Sprintf("%.2f", vpp))
		for i := 0; i < runs; i++ {
			p := Vary(DefaultCellParams(vpp), root.Derive("run", i), 0.05)
			fast, errA := SimulateActivation(p, nil)
			fixed, errF := SimulateActivation(fixedGrid(p), nil)
			if (errA == nil) != (errF == nil) {
				t.Fatalf("vpp=%v run %d: error divergence: adaptive %v, fixed %v", vpp, i, errA, errF)
			}
			if errA != nil {
				continue // both diverged: same Unreliable/Unrestored classification
			}
			assertSameMeasurement(t, fmt.Sprintf("vpp=%v run %d", vpp, i), fast, fixed)
		}
	}
}

func assertSameMeasurement(t *testing.T, at string, a, b ActivationResult) {
	t.Helper()
	if a.TRCDminNS != b.TRCDminNS || a.TRASminNS != b.TRASminNS ||
		a.Reliable != b.Reliable || a.Restored != b.Restored {
		t.Errorf("%s: adaptive measurements diverge from fixed grid:\nadaptive %+v\nfixed    %+v", at, a, b)
	}
}

// TestAdaptiveMatchesReference pins the adaptive engine's accuracy contract
// against the dense finite-difference reference: every sample the adaptive
// run emits lands on a base-grid instant whose time is bit-identical to a
// reference sample time, with voltages within AccuracyTolV.
func TestAdaptiveMatchesReference(t *testing.T) {
	for _, vpp := range goldenSweepVPPs {
		p := DefaultCellParams(vpp)
		refBL := make(map[float64]float64)
		refCell := make(map[float64]float64)
		if _, err := SimulateActivationReference(p, func(tNS, vbl, vcell float64) {
			refBL[tNS] = vbl
			refCell[tNS] = vcell
		}); err != nil {
			t.Fatalf("vpp=%v: reference: %v", vpp, err)
		}
		samples, offGrid := 0, 0
		worst := 0.0
		if _, err := SimulateActivation(p, func(tNS, vbl, vcell float64) {
			samples++
			wb, ok := refBL[tNS]
			if !ok {
				offGrid++
				return
			}
			worst = math.Max(worst, math.Abs(wb-vbl))
			worst = math.Max(worst, math.Abs(refCell[tNS]-vcell))
		}); err != nil {
			t.Fatalf("vpp=%v: adaptive: %v", vpp, err)
		}
		if samples == 0 {
			t.Fatalf("vpp=%v: adaptive run emitted no samples", vpp)
		}
		if offGrid > 0 {
			t.Errorf("vpp=%v: %d of %d adaptive sample times missing from the reference grid — grid clock drift", vpp, offGrid, samples)
		}
		if worst > AccuracyTolV {
			t.Errorf("vpp=%v: adaptive deviates %.3g V from the dense reference, contract is %.3g", vpp, worst, AccuracyTolV)
		}
	}
}

// TestAdaptiveStepReduction is the speedup acceptance criterion: across the
// Fig. 8a/9a sweep, the quiescent stretches (the cells covered by accepted
// coarse steps) must take at least 3x fewer implicit solves than base cells
// covered, and the whole sweep must take fewer solves than the fixed grid.
func TestAdaptiveStepReduction(t *testing.T) {
	var coarseCells, coarseSolves, solves, fixedSolves int
	for _, vpp := range goldenSweepVPPs {
		p := DefaultCellParams(vpp)
		fast, err := SimulateActivation(p, nil)
		if err != nil {
			t.Fatalf("vpp=%v: adaptive: %v", vpp, err)
		}
		fixed, err := SimulateActivation(fixedGrid(p), nil)
		if err != nil {
			t.Fatalf("vpp=%v: fixed: %v", vpp, err)
		}
		coarseCells += fast.Steps.CoarseCells
		coarseSolves += fast.Steps.CoarseSolves
		solves += fast.Steps.Solves
		fixedSolves += fixed.Steps.Solves
		if fast.Steps.Cells != fixed.Steps.Cells {
			t.Errorf("vpp=%v: adaptive covered %d cells, fixed %d", vpp, fast.Steps.Cells, fixed.Steps.Cells)
		}
	}
	if coarseSolves == 0 {
		t.Fatal("no coarse steps accepted anywhere in the sweep")
	}
	if red := float64(coarseCells) / float64(coarseSolves); red < 3 {
		t.Errorf("quiescent step reduction %.2fx, acceptance floor is 3x", red)
	}
	if solves >= fixedSolves {
		t.Errorf("adaptive sweep used %d solves, fixed grid %d — no overall win", solves, fixedSolves)
	}
}

// TestAdaptiveDisabledByStepCap pins the documented MaxStepPS semantics: a
// cap below twice the base step leaves no legal coarse size, so the run
// must cover the grid cell-for-cell with one solve each, like the fixed
// loop.
func TestAdaptiveDisabledByStepCap(t *testing.T) {
	p := DefaultCellParams(2.0)
	p.Adaptive.MaxStepPS = p.StepPS // < 2*StepPS: coarsening impossible
	got, err := SimulateActivation(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps.CoarseCells != 0 || got.Steps.Solves != got.Steps.Cells {
		t.Errorf("capped run still coarsened: %+v", got.Steps)
	}
	fixed, err := SimulateActivation(fixedGrid(p), nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMeasurement(t, "capped", got, fixed)
}

// TestAdaptiveConfigValidation rejects malformed tolerances before they
// reach the engine.
func TestAdaptiveConfigValidation(t *testing.T) {
	for _, mutate := range []func(*CellParams){
		func(p *CellParams) { p.Adaptive.LTETolV = -1 },
		func(p *CellParams) { p.Adaptive.MaxStepPS = -1 },
		func(p *CellParams) { p.Adaptive.ActivityTolV = -1 },
	} {
		p := DefaultCellParams(2.5)
		mutate(&p)
		if _, err := SimulateActivation(p, nil); err == nil {
			t.Errorf("negative adaptive tolerance accepted: %+v", p.Adaptive)
		}
	}
}

// TestMonteCarloFixedGridEquivalence ties the engine-level property to the
// campaign aggregates: a Monte-Carlo campaign run adaptively must produce
// MCResults deep-equal to the FixedGrid campaign — same crossing multisets,
// same classifications — which is what keeps shard artifacts and campaign
// goldens byte-stable under the default config.
func TestMonteCarloFixedGridEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo is slow")
	}
	ctx := context.Background()
	for _, vpp := range []float64{2.3, 1.9} {
		base := MCConfig{VPP: vpp, Runs: 16, Seed: 2022, Variation: 0.05, Jobs: 4}
		adaptive, err := RunMonteCarlo(ctx, base)
		if err != nil {
			t.Fatalf("vpp=%v adaptive: %v", vpp, err)
		}
		cfg := base
		cfg.FixedGrid = true
		fixed, err := RunMonteCarlo(ctx, cfg)
		if err != nil {
			t.Fatalf("vpp=%v fixed: %v", vpp, err)
		}
		if !reflect.DeepEqual(adaptive, fixed) {
			t.Errorf("vpp=%v: adaptive and fixed-grid campaigns diverge:\n%+v\n%+v", vpp, adaptive, fixed)
		}
	}
}
