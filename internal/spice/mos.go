package spice

// MOSType distinguishes n-channel from p-channel devices.
type MOSType int

// MOSFET polarities.
const (
	NMOS MOSType = iota + 1
	PMOS
)

// MOSParams is a level-1 (Shichman-Hodges) MOSFET parameter set, adequate
// for the charge-sharing and latch dynamics this study needs.
type MOSParams struct {
	Type MOSType
	// W and L are channel width and length in meters.
	W, L float64
	// VT0 is the zero-bias threshold voltage (positive for NMOS; for PMOS
	// the magnitude is used).
	VT0 float64
	// KP is the transconductance parameter (A/V^2), i.e. u0*Cox.
	KP float64
	// Lambda is the channel-length modulation coefficient (1/V).
	Lambda float64
}

// eval computes the drain current and small-signal conductances of the
// device at terminal voltages (vd, vg, vs), all referred to ground. The
// returned current flows into the drain terminal. Source/drain are swapped
// internally when the applied polarity is reversed (symmetric device).
func (p MOSParams) eval(vd, vg, vs float64) (id, gm, gds float64) {
	if p.Type == PMOS {
		// Evaluate the dual NMOS with mirrored voltages.
		n := p
		n.Type = NMOS
		id, gm, gds = n.eval(-vd, -vg, -vs)
		return -id, gm, gds
	}

	sign := 1.0
	if vd < vs {
		vd, vs = vs, vd
		sign = -1
	}
	vgs := vg - vs
	vds := vd - vs
	vov := vgs - p.VT0

	const gmin = 1e-12 // leakage floor for Newton stability
	beta := p.KP * p.W / p.L
	switch {
	case vov <= 0:
		// Cutoff: only the stability floor conducts.
		id = gmin * vds
		gds = gmin
		gm = 0
	case vds < vov:
		// Triode region.
		clm := 1 + p.Lambda*vds
		id = beta * (vov*vds - vds*vds/2) * clm
		gm = beta * vds * clm
		gds = beta*(vov-vds)*clm + beta*(vov*vds-vds*vds/2)*p.Lambda + gmin
	default:
		// Saturation.
		clm := 1 + p.Lambda*vds
		id = beta / 2 * vov * vov * clm
		gm = beta * vov * clm
		gds = beta/2*vov*vov*p.Lambda + gmin
	}
	return sign * id, gm, gds
}

// stamp computes the drain current and its partial derivatives with respect
// to the three terminal voltages, ready for an MNA stamp:
//
//	Id ≈ id + gdd*(Vd-vd) + gdg*(Vg-vg) + gds*(Vs-vs)
//
// The partials are exact closed forms of the level-1 model (translation
// invariance holds: gdd+gdg+gds == 0 up to the gmin floor), so the Newton
// linearization needs one model evaluation per device instead of the four a
// finite-difference Jacobian costs.
//
// The body is eval flattened into a single call-free function — it runs
// five times per Newton iteration of every Monte-Carlo solve, and the
// nested eval call (plus the PMOS mirror recursion) cost more than the
// arithmetic. The float operations are identical to eval's, in the same
// order, so the results are bit-for-bit unchanged.
func (p MOSParams) stamp(vd, vg, vs float64) (id, gdd, gdg, gds float64) {
	return mosStamp(&p, vd, vg, vs)
}

// mosStamp is stamp without the value-receiver copy: the reduced and
// batched Newton loops call it directly with a pointer into the element
// slice, which saves copying the parameter struct five times per iteration.
// cell6Iter carries a hand-inlined copy of this body (the compiler's inline
// budget rejects it); any model change here must be mirrored there.
func mosStamp(p *MOSParams, vd, vg, vs float64) (id, gdd, gdg, gds float64) {
	neg := 1.0
	if p.Type == PMOS {
		// Id = -In(-vd,-vg,-vs): the two mirror signs cancel in every
		// partial, so the PMOS partials equal the dual NMOS partials at the
		// mirrored operating point.
		vd, vg, vs = -vd, -vg, -vs
		neg = -1
	}
	sign := 1.0
	if vd < vs {
		vd, vs = vs, vd
		sign = -1
	}
	vgs := vg - vs
	vds := vd - vs
	vov := vgs - p.VT0

	const gmin = 1e-12
	beta := p.KP * p.W / p.L
	var i, gm, gd float64
	switch {
	case vov <= 0:
		i = gmin * vds
		gd = gmin
		gm = 0
	case vds < vov:
		clm := 1 + p.Lambda*vds
		i = beta * (vov*vds - vds*vds/2) * clm
		gm = beta * vds * clm
		gd = beta*(vov-vds)*clm + beta*(vov*vds-vds*vds/2)*p.Lambda + gmin
	default:
		clm := 1 + p.Lambda*vds
		i = beta / 2 * vov * vov * clm
		gm = beta * vov * clm
		gd = beta/2*vov*vov*p.Lambda + gmin
	}
	i *= sign
	if sign > 0 {
		// Forward operation: gm = dId/dVgs and gds = dId/dVds give the
		// terminal partials directly.
		return neg * i, gd, gm, -(gm + gd)
	}
	// Reversed operation: drain and source swapped above and the current
	// negated; the chain rule maps the forward-oriented gm/gd back to the
	// external terminals.
	return neg * i, gm + gd, -gm, -gd
}
