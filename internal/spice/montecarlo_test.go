package spice

import (
	"encoding/json"
	"testing"
)

// TestMCResultMergeMatchesWholeStream folds one stream of run outcomes into
// a single result and, separately, into two run-order partials that are then
// merged — every aggregate must match the whole-stream result exactly.
func TestMCResultMergeMatchesWholeStream(t *testing.T) {
	outcomes := make([]ActivationResult, 0, 30)
	for i := 0; i < 30; i++ {
		out := ActivationResult{
			Reliable:  i%5 != 0,
			Restored:  i%7 != 0,
			TRCDminNS: 10 + float64(i%9)*0.25,
			TRASminNS: 30 + float64(i%6)*0.5,
		}
		outcomes = append(outcomes, out)
	}
	fold := func(res *MCResult, outs []ActivationResult) {
		for i, out := range outs {
			res.record(out, i%11 == 10)
			res.Runs++
		}
	}
	whole := MCResult{VPP: 2.0}
	fold(&whole, outcomes)

	lo, hi := MCResult{VPP: 2.0}, MCResult{VPP: 2.0}
	fold(&lo, outcomes[:13])
	// The later range must preserve its global run parity for the synthetic
	// no-converge pattern; simpler: re-fold with the original indices.
	for i := 13; i < len(outcomes); i++ {
		hi.record(outcomes[i], i%11 == 10)
		hi.Runs++
	}
	if err := lo.Merge(hi); err != nil {
		t.Fatal(err)
	}
	if lo.Runs != whole.Runs || lo.Unreliable != whole.Unreliable ||
		lo.Unrestored != whole.Unrestored || lo.NoConverge != whole.NoConverge {
		t.Errorf("merged counters %+v differ from whole-stream %+v", lo, whole)
	}
	if lo.TRCDmin.Mean() != whole.TRCDmin.Mean() || lo.TRASmin.Mean() != whole.TRASmin.Mean() {
		t.Errorf("merged means (%v,%v) differ from whole-stream (%v,%v)",
			lo.TRCDmin.Mean(), lo.TRASmin.Mean(), whole.TRCDmin.Mean(), whole.TRASmin.Mean())
	}
	gp, _ := lo.TRCDmin.Percentile(95)
	wp, _ := whole.TRCDmin.Percentile(95)
	if gp != wp {
		t.Errorf("merged P95 %v != whole-stream %v", gp, wp)
	}

	other := MCResult{VPP: 1.8}
	if err := lo.Merge(other); err == nil {
		t.Error("merging different VPP levels must error")
	}
}

// TestMCResultJSONRoundTrip: the per-level shard payload reproduces every
// aggregate after a trip through its artifact encoding.
func TestMCResultJSONRoundTrip(t *testing.T) {
	res, err := MonteCarlo(2.0, 8, 2022, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var got MCResult
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.VPP != res.VPP || got.Runs != res.Runs || got.NoConverge != res.NoConverge {
		t.Fatalf("round trip lost counters: %+v vs %+v", got, res)
	}
	if got.MeanTRCDminNS() != res.MeanTRCDminNS() || got.WorstTRCDminNS() != res.WorstTRCDminNS() {
		t.Errorf("round trip changed tRCD aggregates")
	}
	gp, err1 := got.TRCDmin.Percentile(95)
	wp, err2 := res.TRCDmin.Percentile(95)
	if err1 != nil || err2 != nil || gp != wp {
		t.Errorf("round trip changed P95: %v/%v (%v %v)", gp, wp, err1, err2)
	}
}
