package spice

// Workspace is a reusable activation simulator: the Table 2 netlist, the
// incremental Transient engine, and every solver allocation are built once
// and re-stamped with each run's varied parameters instead of being rebuilt
// per run. A Monte-Carlo worker that owns a Workspace performs no steady-
// state allocations per run (asserted by TestWorkspaceSimulateAllocs), which
// is where most of the per-run constant cost outside the Newton loop went.
//
// Simulate is bit-identical to SimulateActivation for the same parameters:
// the re-stamp path writes exactly the values the builder writes, and
// Transient.Reset replays the static assembly in construction order.
//
// A Workspace is not safe for concurrent use; give each worker its own
// (RunMonteCarloSweep hands them out through a sync.Pool).
type Workspace struct {
	built bool
	dt    float64 // engine time step the netlist was built at (seconds)

	ckt   *Circuit
	nodes cellNodes
	waves cellWaves
	tr    *Transient
}

// NewWorkspace returns an empty workspace; the netlist is built lazily on
// the first Simulate.
func NewWorkspace() *Workspace { return &Workspace{} }

// Simulate runs one activation with the given parameters, reusing the
// netlist and solver state from previous calls. The netlist topology is
// fixed; only a change of integration step forces a rebuild (the Monte-Carlo
// variation never touches StepPS).
func (ws *Workspace) Simulate(p CellParams, probe Probe) (ActivationResult, error) {
	if err := p.validate(); err != nil {
		return ActivationResult{}, err
	}
	dt := p.StepPS * 1e-12
	if !ws.built || dt != ws.dt {
		ws.ckt, ws.nodes, ws.waves = buildCellCircuit(p)
		ws.tr = NewTransient(ws.ckt, dt)
		ws.dt = dt
		ws.built = true
	} else {
		stampCellValues(ws.ckt, ws.nodes, ws.waves, p)
		ws.tr.Reset()
	}
	return measureActivation(ws.tr, ws.nodes, p, probe)
}
