// Package spice implements a compact SPICE-class transient circuit
// simulator: modified nodal analysis (MNA) with backward-Euler integration
// and Newton-Raphson iteration over level-1 MOSFET models. It exists to
// reproduce the paper's circuit-level study (§4.5, Figs. 8 and 9): the DRAM
// cell / bitline / sense-amplifier netlist of Table 2, simulated across VPP
// levels with Monte-Carlo parameter variation.
//
// The engine is general: circuits are built from resistors, capacitors,
// piecewise-linear voltage sources, and MOSFETs, then integrated on a fixed
// base time grid, with optional error-controlled adaptive coarsening
// through quiescent stretches. Only the features the paper's study needs
// are implemented — no AC analysis, no higher-order integration.
//
// # Engines and accuracy contracts
//
// Three integration modes back one API, in decreasing cost order:
//
//   - The dense reference engine (NewTransientReference,
//     SimulateActivationReference) re-stamps the full MNA system with
//     finite-difference Jacobians on every Newton iteration. It is the
//     historical behavior, kept as the golden oracle, and always integrates
//     every cell of the fixed grid.
//   - The incremental engine (NewTransient) eliminates grounded-source
//     nodes up front, assembles static stamps once, and adds only analytic
//     MOSFET linearizations per iteration. On the fixed grid it is pinned
//     to the reference within 1e-9 V on the Fig. 8a/9a waveforms at every
//     sweep VPP (TestGoldenIncrementalMatchesReference).
//   - Adaptive stepping (AdaptiveConfig, the DefaultCellParams default)
//     drives the incremental engine with step-doubling error control,
//     covering quiescent stretches with multi-cell coarse steps. Samples
//     stay within AccuracyTolV of the dense reference at shared grid times,
//     and reported threshold crossings (tRCDmin, tRASmin) are quantized
//     onto the base grid with values BIT-IDENTICAL to fixed-grid
//     integration across the sweep and the golden Monte-Carlo population
//     (TestAdaptiveCrossingsMatchFixedGrid) — the invariant that keeps the
//     campaign goldens and shard artifacts byte-stable.
//
// # Determinism and memory
//
// Monte-Carlo campaigns (RunMonteCarlo, RunMonteCarloSweep) draw every run
// from a per-level, per-index RNG stream and fold outcomes into streaming
// stats.Dist accumulators in strict (level, run) order through
// pool.RunOrdered, so results are byte-identical at any worker count and
// campaign memory is independent of the run count. Each worker reuses one
// Workspace (re-stamping values instead of rebuilding the netlist), which
// is bit-identical to a fresh simulation and allocation-free in steady
// state. MCResult.Merge folds same-level run-range partials in run order
// for sharded campaigns.
//
// The allocation-free property is a checked contract, not a convention:
// the stepping core (Transient.Step, Reset, setDt, stampCellValues) and
// the aggregation fold (MCResult.record) carry //detlint:hotpath
// annotations naming their runtime AllocsPerRun witnesses, and the
// hotalloc analyzer flags any heap allocation reachable from them (see
// docs/CONTRACTS.md). MCResult is likewise under the mergecontract
// analyzer's coverage/serializability checks.
package spice
