package spice

import (
	"errors"
	"math"
)

// CellParams collects every parameter of the paper's SPICE study netlist
// (Table 2): one DRAM cell on a bitline with a cross-coupled sense
// amplifier, activated by a wordline driven to VPP.
type CellParams struct {
	VDD float64 // core voltage (bitlines precharge to VDD/2)
	VPP float64 // wordline high level

	CellC float64 // storage capacitor (F)
	CellR float64 // cell series resistance (ohm)
	BLC   float64 // total bitline capacitance (F), split as a pi model
	BLR   float64 // total bitline resistance (ohm)

	Access MOSParams // cell access transistor
	SAN1   MOSParams // sense-amp pull-down pair
	SAN2   MOSParams
	SAP1   MOSParams // sense-amp pull-up pair
	SAP2   MOSParams

	WLRampNS      float64 // wordline 0->VPP ramp time
	SenseEnableNS float64 // time the sense amplifier is strobed
	SenseRampNS   float64 // SAN/SAP rail ramp time

	// VTHFrac is the fraction of VDD the bitline must reach for the
	// activation to count as reliably complete (the VTH line of Fig. 8a).
	VTHFrac float64
	// RestoreFrac is the fraction of VDD the cell must recover to for
	// charge restoration to count as complete (bounded by the saturation
	// level the access transistor permits).
	RestoreFrac float64

	StepPS float64 // base integration time step (the 25 ps measurement grid)
	MaxNS  float64 // simulation horizon

	// Adaptive configures error-controlled step coarsening through the
	// quiescent stretches of the activation (see AdaptiveConfig). The zero
	// value integrates every cell of the fixed StepPS grid, the historical
	// behavior; DefaultCellParams enables adaptive stepping with defaults.
	// Either way, measurements are reported on the StepPS grid: adaptive
	// runs quantize threshold crossings back onto it (bit-identical to the
	// fixed-grid crossing), so downstream exact-quantile statistics and
	// shard merges never see off-grid values.
	Adaptive AdaptiveConfig
}

// DefaultCellParams returns the Table 2 netlist at the given VPP, with
// transistor model constants calibrated so the nominal-VPP behavior matches
// the paper's SPICE observations (tRCDmin ~11.6 ns at 2.5 V, restoration
// saturating at VPP - VT).
func DefaultCellParams(vpp float64) CellParams {
	return CellParams{
		VDD:   1.2,
		VPP:   vpp,
		CellC: 16.8e-15,
		CellR: 698,
		BLC:   100.5e-15,
		BLR:   6980,
		Access: MOSParams{
			Type: NMOS, W: 55e-9, L: 85e-9, VT0: 0.72, KP: 12e-6, Lambda: 0.02,
		},
		SAN1: MOSParams{Type: NMOS, W: 1.3e-6, L: 0.1e-6, VT0: 0.45, KP: 22e-6, Lambda: 0.05},
		SAN2: MOSParams{Type: NMOS, W: 1.3e-6, L: 0.1e-6, VT0: 0.45, KP: 22e-6, Lambda: 0.05},
		SAP1: MOSParams{Type: PMOS, W: 0.9e-6, L: 0.1e-6, VT0: 0.45, KP: 11e-6, Lambda: 0.05},
		SAP2: MOSParams{Type: PMOS, W: 0.9e-6, L: 0.1e-6, VT0: 0.45, KP: 11e-6, Lambda: 0.05},

		WLRampNS:      1.0,
		SenseEnableNS: 5.25,
		SenseRampNS:   1.0,
		VTHFrac:       0.9,
		RestoreFrac:   0.95,
		StepPS:        25,
		MaxNS:         120,
		Adaptive:      DefaultAdaptive(),
	}
}

// SaturationV returns the cell voltage the access transistor can restore to
// at this parameter set's VPP: min(VDD, VPP - VT).
func (p CellParams) SaturationV() float64 {
	return math.Min(p.VDD, p.VPP-p.Access.VT0)
}

// ActivationResult reports the measurements of one activation + restoration
// simulation.
type ActivationResult struct {
	// TRCDminNS is when the bitline first crossed the read-reliability
	// threshold (VTHFrac * VDD); 0 and Reliable=false if it never did.
	TRCDminNS float64
	// TRASminNS is when the cell voltage, after its charge-sharing dip,
	// recovered to the restoration target; 0 and Restored=false if never.
	TRASminNS float64
	// Reliable reports whether the bitline reached the read threshold.
	Reliable bool
	// Restored reports whether charge restoration completed.
	Restored bool
	// FinalCellV is the cell voltage at the simulation horizon.
	FinalCellV float64
	// Steps reports the integration work the run performed (base cells
	// covered vs implicit solves spent — equal on the fixed grid, solves
	// several-fold fewer under adaptive stepping).
	Steps StepStats
}

// Probe receives waveform samples during simulation.
type Probe func(tNS, vBitline, vCell float64)

// SimulateActivation runs the full activation: wordline ramps to VPP at
// t=0, charge sharing perturbs the bitline, the sense amplifier is strobed,
// and the cell is restored through the access transistor. It returns the
// tRCDmin / tRASmin measurements.
func SimulateActivation(p CellParams, probe Probe) (ActivationResult, error) {
	return simulateActivation(p, probe, NewTransient)
}

// SimulateActivationReference runs the same activation on the dense
// finite-difference reference engine (see NewTransientReference). It exists
// so the golden-equivalence tests and benchmarks can compare the
// incremental solver against the historical behavior. The reference always
// integrates the full fixed StepPS grid — it is the accuracy oracle the
// adaptive engine is validated against, so it never steps adaptively.
func SimulateActivationReference(p CellParams, probe Probe) (ActivationResult, error) {
	return simulateActivation(p, probe, NewTransientReference)
}

// cellNodes names the netlist's node ids, shared by the one-shot simulation
// path and the reusable Workspace.
type cellNodes struct {
	wl, cellC, cellN, blc, bls, blbc, blbs, san, sap int
}

// cellWaves holds the mutable source waveforms of the netlist. They are
// installed as *PWL so a Workspace can re-stamp the VPP level and rail
// timings in place without rebuilding the circuit.
type cellWaves struct {
	wl, san, sap *PWL
}

// buildCellCircuit assembles the Table 2 netlist. Element order is fixed —
// the Workspace re-stamp path relies on it to update values by index.
func buildCellCircuit(p CellParams) (*Circuit, cellNodes, cellWaves) {
	ckt := NewCircuit()
	var n cellNodes
	n.wl = ckt.Node("wl")
	n.cellC = ckt.Node("cellc") // storage capacitor plate
	n.cellN = ckt.Node("celln") // transistor side of the cell series R
	n.blc = ckt.Node("blc")     // bitline, cell end
	n.bls = ckt.Node("bls")     // bitline, sense end
	n.blbc = ckt.Node("blbc")   // reference bitline, far end
	n.blbs = ckt.Node("blbs")   // reference bitline, sense end
	n.san = ckt.Node("san")
	n.sap = ckt.Node("sap")

	ckt.C(n.cellC, Ground, p.CellC)
	ckt.R(n.cellC, n.cellN, p.CellR)
	ckt.MOS(n.blc, n.wl, n.cellN, p.Access)

	half := p.BLC / 2
	ckt.C(n.blc, Ground, half)
	ckt.R(n.blc, n.bls, p.BLR)
	ckt.C(n.bls, Ground, half)
	ckt.C(n.blbc, Ground, half)
	ckt.R(n.blbc, n.blbs, p.BLR)
	ckt.C(n.blbs, Ground, half)

	ckt.MOS(n.bls, n.blbs, n.san, p.SAN1)
	ckt.MOS(n.blbs, n.bls, n.san, p.SAN2)
	ckt.MOS(n.bls, n.blbs, n.sap, p.SAP1)
	ckt.MOS(n.blbs, n.bls, n.sap, p.SAP2)

	w := cellWaves{
		wl:  &PWL{Times: make([]float64, 2), Values: make([]float64, 2)},
		san: &PWL{Times: make([]float64, 3), Values: make([]float64, 3)},
		sap: &PWL{Times: make([]float64, 3), Values: make([]float64, 3)},
	}
	ckt.V(n.wl, Ground, w.wl)
	ckt.V(n.san, Ground, w.san)
	ckt.V(n.sap, Ground, w.sap)
	stampCellValues(ckt, n, w, p)
	return ckt, n, w
}

// stampCellValues writes the parameter-dependent element values, source
// waveforms, and initial conditions of the netlist into an already-built
// circuit. It runs both at construction and on Workspace reuse, so both
// paths see exactly the same values.
//
//detlint:hotpath witness=TestWorkspaceSimulateAllocs
func stampCellValues(ckt *Circuit, n cellNodes, w cellWaves, p CellParams) {
	// Element order matches buildCellCircuit.
	ckt.caps[0].farads = p.CellC
	half := p.BLC / 2
	for i := 1; i <= 4; i++ {
		ckt.caps[i].farads = half
	}
	ckt.resistors[0].ohms = p.CellR
	ckt.resistors[1].ohms = p.BLR
	ckt.resistors[2].ohms = p.BLR
	ckt.mosfets[0].params = p.Access
	ckt.mosfets[1].params = p.SAN1
	ckt.mosfets[2].params = p.SAN2
	ckt.mosfets[3].params = p.SAP1
	ckt.mosfets[4].params = p.SAP2

	ns := 1e-9
	vpre := p.VDD / 2
	w.wl.Times[0], w.wl.Times[1] = 0, p.WLRampNS*ns
	w.wl.Values[0], w.wl.Values[1] = 0, p.VPP
	w.san.Times[0], w.san.Times[1], w.san.Times[2] = 0, p.SenseEnableNS*ns, (p.SenseEnableNS+p.SenseRampNS)*ns
	w.san.Values[0], w.san.Values[1], w.san.Values[2] = vpre, vpre, 0
	w.sap.Times[0], w.sap.Times[1], w.sap.Times[2] = 0, p.SenseEnableNS*ns, (p.SenseEnableNS+p.SenseRampNS)*ns
	w.sap.Values[0], w.sap.Values[1], w.sap.Values[2] = vpre, vpre, p.VDD

	// Initial conditions: bitlines precharged, cell holding a '1' at the
	// saturation level its access transistor allowed during the previous
	// restoration (this is the §6.1/§6.2 coupling: reduced VPP stores less
	// charge, shrinking the sensing perturbation).
	vcell0 := p.SaturationV()
	for _, node := range [...]int{n.blc, n.bls, n.blbc, n.blbs} {
		ckt.SetInitial(node, vpre)
	}
	ckt.SetInitial(n.cellC, vcell0)
	ckt.SetInitial(n.cellN, vcell0)
	ckt.SetInitial(n.san, vpre)
	ckt.SetInitial(n.sap, vpre)
}

// measureActivation steps the prepared engine through the activation and
// extracts the tRCDmin / tRASmin measurements. Both the one-shot paths and
// the reusable Workspace run exactly this loop; with adaptive stepping
// enabled (and the incremental engine backing the analysis — the dense
// reference always integrates the full fixed grid it is the oracle for),
// the same measurements are driven through the error-controlled stepper.
func measureActivation(tr *Transient, n cellNodes, p CellParams, probe Probe) (ActivationResult, error) {
	if p.Adaptive.Enabled && tr.red != nil {
		return measureActivationAdaptive(tr, n, p, probe)
	}
	var res ActivationResult
	ns := 1e-9
	vth := p.VTHFrac * p.VDD
	// Restoration completes when the cell recovers to the target fraction of
	// VDD, bounded by the saturation level the access transistor permits
	// (approached asymptotically, hence the 50 mV tail allowance).
	vcell0 := p.SaturationV()
	target := math.Min(p.RestoreFrac*p.VDD, vcell0-0.05)
	minCell := vcell0
	dipped := false

	for tr.Time() < p.MaxNS*ns {
		if err := tr.Step(); err != nil {
			res.Steps.NewtonIters = tr.newtIters
			return res, err
		}
		res.Steps.Cells++
		res.Steps.Solves++
		tNS := tr.Time() / ns
		vbl := tr.V(n.bls)
		vcell := tr.V(n.cellC)
		if probe != nil {
			probe(tNS, vbl, vcell)
		}
		if !res.Reliable && vbl >= vth {
			res.Reliable = true
			res.TRCDminNS = tNS
		}
		if vcell < minCell {
			minCell = vcell
			if vcell < vcell0-0.02 {
				dipped = true
			}
		}
		if dipped && !res.Restored && vcell >= target && vcell > minCell+0.01 {
			res.Restored = true
			res.TRASminNS = tNS
		}
		res.FinalCellV = vcell
		if res.Reliable && res.Restored {
			break
		}
	}
	res.Steps.NewtonIters = tr.newtIters
	return res, nil
}

// measureActivationAdaptive runs the same measurement over the
// error-controlled stepper. Samples land on accepted step endpoints (always
// base-grid cells, non-uniformly spaced); a threshold crossing observed at a
// coarse endpoint is rewound and re-integrated cell by cell, so the
// reported crossing times are the fixed grid's own — bit-identical floats,
// because the stepper's grid clock replays the fixed loop's repeated time
// addition.
func measureActivationAdaptive(tr *Transient, n cellNodes, p CellParams, probe Probe) (ActivationResult, error) {
	var res ActivationResult
	ns := 1e-9
	vth := p.VTHFrac * p.VDD
	vcell0 := p.SaturationV()
	target := math.Min(p.RestoreFrac*p.VDD, vcell0-0.05)
	minCell := vcell0
	dipped := false
	horizon := p.MaxNS * ns

	st := tr.newAdaptiveStepper(p.Adaptive, horizon)
	for st.tGrid < horizon {
		m, err := st.step()
		if err != nil {
			res.Steps = st.stats
			res.Steps.NewtonIters = tr.newtIters
			return res, err
		}
		tNS := st.tGrid / ns
		vbl := tr.V(n.bls)
		vcell := tr.V(n.cellC)
		if m > 1 {
			// Crossings must be localized on the base grid, not attributed
			// to a coarse endpoint: rewind and re-integrate the stretch.
			crossedRead := !res.Reliable && vbl >= vth
			crossedRestore := dipped && !res.Restored && vcell >= target && vcell > minCell+0.01
			if crossedRead || crossedRestore {
				st.rewind()
				continue
			}
		}
		if probe != nil {
			probe(tNS, vbl, vcell)
		}
		if !res.Reliable && vbl >= vth {
			res.Reliable = true
			res.TRCDminNS = tNS
		}
		if vcell < minCell {
			minCell = vcell
			if vcell < vcell0-0.02 {
				dipped = true
			}
		}
		if dipped && !res.Restored && vcell >= target && vcell > minCell+0.01 {
			res.Restored = true
			res.TRASminNS = tNS
		}
		res.FinalCellV = vcell
		if res.Reliable && res.Restored {
			break
		}
	}
	res.Steps = st.stats
	res.Steps.NewtonIters = tr.newtIters
	return res, nil
}

func simulateActivation(p CellParams, probe Probe, newEngine func(*Circuit, float64) *Transient) (ActivationResult, error) {
	if err := p.validate(); err != nil {
		return ActivationResult{}, err
	}
	ckt, nodes, _ := buildCellCircuit(p)
	tr := newEngine(ckt, p.StepPS*1e-12)
	return measureActivation(tr, nodes, p, probe)
}

// validate rejects parameter sets the engine cannot integrate.
func (p CellParams) validate() error {
	if p.VDD <= 0 || p.VPP <= 0 || p.StepPS <= 0 {
		return errors.New("spice: invalid cell parameters")
	}
	if p.Adaptive.LTETolV < 0 || p.Adaptive.MaxStepPS < 0 || p.Adaptive.ActivityTolV < 0 {
		return errors.New("spice: negative adaptive stepping tolerance")
	}
	return nil
}
