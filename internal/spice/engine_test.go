package spice

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// goldenSweepVPPs mirrors the experiment layer's Fig. 8/9 sweep.
var goldenSweepVPPs = []float64{2.5, 2.4, 2.3, 2.2, 2.1, 2.0, 1.9, 1.8, 1.7}

// TestGoldenIncrementalMatchesReference pins the incremental/analytic-
// Jacobian engine to the dense finite-difference reference on the Fig.
// 8a/9a waveforms at every sweep VPP: both integrate the same nonlinear
// system to the same Newton tolerance, so the traces must agree to 1e-9 V.
// Adaptive stepping is disabled — this test is the FIXED-grid contract
// between the two engines; adaptive_test.go pins the adaptive engine
// against the same reference.
func TestGoldenIncrementalMatchesReference(t *testing.T) {
	for _, vpp := range goldenSweepVPPs {
		p := DefaultCellParams(vpp)
		p.Adaptive = AdaptiveConfig{}
		var fastBL, fastCell, refBL, refCell []float64
		fast, err := SimulateActivation(p, func(_, vbl, vcell float64) {
			fastBL = append(fastBL, vbl)
			fastCell = append(fastCell, vcell)
		})
		if err != nil {
			t.Fatalf("vpp=%v: incremental: %v", vpp, err)
		}
		ref, err := SimulateActivationReference(p, func(_, vbl, vcell float64) {
			refBL = append(refBL, vbl)
			refCell = append(refCell, vcell)
		})
		if err != nil {
			t.Fatalf("vpp=%v: reference: %v", vpp, err)
		}
		if len(fastBL) != len(refBL) {
			t.Fatalf("vpp=%v: sample counts differ: %d vs %d", vpp, len(fastBL), len(refBL))
		}
		for i := range fastBL {
			if d := math.Abs(fastBL[i] - refBL[i]); d > 1e-9 {
				t.Fatalf("vpp=%v: bitline deviates by %.3g at sample %d", vpp, d, i)
			}
			if d := math.Abs(fastCell[i] - refCell[i]); d > 1e-9 {
				t.Fatalf("vpp=%v: cell deviates by %.3g at sample %d", vpp, d, i)
			}
		}
		// The measurements derive from threshold crossings on the shared
		// step grid; with waveforms this close they must land identically.
		if fast.TRCDminNS != ref.TRCDminNS || fast.TRASminNS != ref.TRASminNS ||
			fast.Reliable != ref.Reliable || fast.Restored != ref.Restored {
			t.Errorf("vpp=%v: measurements diverge: %+v vs %+v", vpp, fast, ref)
		}
	}
}

// TestReducedEngineSelection verifies the engine choice: the DRAM-cell
// netlist (grounded sources only) takes the incremental path, a floating
// source falls back to the dense reference, and both fallbacks still solve
// correctly.
func TestReducedEngineSelection(t *testing.T) {
	c := NewCircuit()
	a, b := c.Node("a"), c.Node("b")
	c.V(a, b, DC(1.0)) // floating source: cannot be reduced
	c.R(a, Ground, 1000)
	c.R(b, Ground, 1000)
	tr := NewTransient(c, 1e-12)
	if tr.red != nil {
		t.Fatal("floating source circuit took the reduced path")
	}
	if err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	if got := tr.V(a) - tr.V(b); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("floating source enforces %v, want 1.0", got)
	}

	c2 := NewCircuit()
	n := c2.Node("n")
	c2.V(n, Ground, DC(1.0))
	c2.V(n, Ground, DC(2.0)) // doubly driven: dense fallback decides
	if tr2 := NewTransient(c2, 1e-12); tr2.red != nil {
		t.Fatal("doubly driven node took the reduced path")
	}

	c3 := NewCircuit()
	m := c3.Node("m")
	c3.V(Ground, m, DC(1.0)) // grounded through the negative terminal
	c3.R(m, Ground, 1000)
	tr3 := NewTransient(c3, 1e-12)
	if tr3.red == nil {
		t.Fatal("negative-terminal grounded source should reduce")
	}
	if err := tr3.Step(); err != nil {
		t.Fatal(err)
	}
	if got := tr3.V(m); math.Abs(got+1.0) > 1e-9 {
		t.Errorf("V = %v, want -1.0", got)
	}
}

// TestMOSStampMatchesEval checks the analytic stamp partials against
// central finite differences of eval at operating points covering every
// region, polarity, and orientation.
func TestMOSStampMatchesEval(t *testing.T) {
	devices := []MOSParams{
		{Type: NMOS, W: 1e-6, L: 1e-6, VT0: 0.5, KP: 100e-6, Lambda: 0.03},
		{Type: PMOS, W: 0.9e-6, L: 0.1e-6, VT0: 0.45, KP: 11e-6, Lambda: 0.05},
	}
	points := []struct{ vd, vg, vs float64 }{
		{1.0, 0.3, 0},    // cutoff
		{0.5, 1.5, 0},    // triode
		{2.0, 1.5, 0},    // saturation
		{0.2, 2.0, 1.0},  // reversed triode
		{0.0, 2.0, 1.8},  // reversed saturation
		{-0.5, -1.5, 0},  // mirrored operating point
		{0.6, 0.6, 0.6},  // all terminals equal
		{1.3, 0.9, -0.4}, // shifted source
	}
	const h = 1e-7
	for _, p := range devices {
		for _, pt := range points {
			id, gdd, gdg, gds := p.stamp(pt.vd, pt.vg, pt.vs)
			id0, _, _ := p.eval(pt.vd, pt.vg, pt.vs)
			if math.Abs(id-id0) > 1e-15 {
				t.Fatalf("%+v at %+v: stamp id %v != eval id %v", p.Type, pt, id, id0)
			}
			fd := func(dvd, dvg, dvs float64) float64 {
				hi, _, _ := p.eval(pt.vd+dvd*h, pt.vg+dvg*h, pt.vs+dvs*h)
				lo, _, _ := p.eval(pt.vd-dvd*h, pt.vg-dvg*h, pt.vs-dvs*h)
				return (hi - lo) / (2 * h)
			}
			for _, chk := range []struct {
				name      string
				got, want float64
			}{
				{"gdd", gdd, fd(1, 0, 0)},
				{"gdg", gdg, fd(0, 1, 0)},
				{"gds", gds, fd(0, 0, 1)},
			} {
				tol := 1e-7 * (1 + math.Abs(chk.want))
				if math.Abs(chk.got-chk.want) > tol {
					t.Errorf("%v at %+v: %s = %v, finite difference %v",
						p.Type, pt, chk.name, chk.got, chk.want)
				}
			}
		}
	}
}

// TestMonteCarloDeterministicAcrossJobs asserts the worker count never
// changes the campaign result: every run draws from an index-derived stream
// and aggregation happens in index order.
func TestMonteCarloDeterministicAcrossJobs(t *testing.T) {
	ctx := context.Background()
	base := MCConfig{VPP: 2.0, Runs: 16, Seed: 99, Variation: 0.05}

	cfg1 := base
	cfg1.Jobs = 1
	serial, err := RunMonteCarlo(ctx, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := base
	cfg8.Jobs = 8
	parallel, err := RunMonteCarlo(ctx, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Jobs=1 and Jobs=8 diverge:\n%+v\n%+v", serial, parallel)
	}
}

// TestMonteCarloMatchesSerialConvenience pins the back-compat wrapper to
// the configurable API.
func TestMonteCarloMatchesSerialConvenience(t *testing.T) {
	viaWrapper, err := MonteCarlo(2.2, 8, 7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	viaConfig, err := RunMonteCarlo(context.Background(),
		MCConfig{VPP: 2.2, Runs: 8, Seed: 7, Variation: 0.05, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaWrapper, viaConfig) {
		t.Errorf("wrapper and config API diverge:\n%+v\n%+v", viaWrapper, viaConfig)
	}
}

// TestMCResultRecordsNoConverge pins the campaign bookkeeping: a diverging
// run is not a campaign abort but an unreliable, unrestored sample with its
// own counter (the Fig. 8b/9b low-VPP regime).
func TestMCResultRecordsNoConverge(t *testing.T) {
	var r MCResult
	r.Runs = 3
	r.record(ActivationResult{Reliable: true, TRCDminNS: 11.5, Restored: true, TRASminNS: 30}, false)
	r.record(ActivationResult{}, true) // Newton divergence
	r.record(ActivationResult{Reliable: true, TRCDminNS: 12.0}, false)
	if r.NoConverge != 1 {
		t.Errorf("NoConverge = %d, want 1", r.NoConverge)
	}
	if r.Unreliable != 1 || r.Unrestored != 2 {
		t.Errorf("Unreliable=%d Unrestored=%d, want 1 and 2", r.Unreliable, r.Unrestored)
	}
	if r.TRCDmin.N() != 2 || r.TRASmin.N() != 1 {
		t.Errorf("samples = %d/%d, want 2/1", r.TRCDmin.N(), r.TRASmin.N())
	}
	if r.Reliable() != 2 || r.Restored() != 1 {
		t.Errorf("Reliable/Restored = %d/%d, want 2/1", r.Reliable(), r.Restored())
	}
}

// TestRunMonteCarloCancellation verifies the campaign honors its context.
func TestRunMonteCarloCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunMonteCarlo(ctx, MCConfig{VPP: 2.5, Runs: 4, Seed: 1, Variation: 0.05, Jobs: 1})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
