package spice

import "fmt"

// Transient integrates a circuit through time with fixed-step backward
// Euler, solving the nonlinear MNA system by Newton-Raphson at each step.
//
// Two engines back the same API. The default incremental engine exploits
// the bordered MNA structure: every grounded voltage source contributes an
// identity border row that pins its node, so those nodes are eliminated
// from the system up front and only the remaining unknowns are solved —
// for the paper's DRAM-cell netlist this halves the system (12 -> 6
// unknowns, an ~8x smaller LU). Static stamps (resistors, capacitor
// conductances, the ground leak) are assembled once per simulation, the
// per-step right-hand side (capacitor companions, source levels) once per
// step, and each Newton iteration adds only the analytic MOSFET
// linearization from MOSParams.stamp before factoring the small core with
// partial-pivot LU in a reused workspace.
//
// Circuits the reduction cannot express — a floating voltage source, or a
// node driven by two sources — fall back to the reference dense engine,
// which re-stamps the full (nodes + sources) matrix with finite-difference
// Jacobians on every iteration. The reference engine is also exported
// through NewTransientReference as the golden cross-check the equivalence
// tests and benchmarks compare against.
type Transient struct {
	ckt    *Circuit
	dt     float64 // current integration step (adaptive stepping varies it)
	baseDt float64 // the step the analysis was constructed with
	t      float64

	nv  int       // voltage unknowns (nodes minus ground)
	dim int       // nv + number of voltage sources
	v   []float64 // current node voltages, index node-1

	// newtIters accumulates Newton iterations across every solve since the
	// last Reset, including failed and later-rewound ones: the total
	// iteration work a run performed, reported via StepStats.NewtonIters.
	newtIters int

	red *reduced // incremental engine; nil when running the dense reference

	// Dense reference workspace.
	x    []float64 // full solution vector (voltages + source currents)
	a    []float64 // scratch matrix
	z    []float64 // scratch RHS
	newt []float64 // scratch iterate

	// ad holds the adaptive stepper's reusable scratch (snapshots, trial
	// vectors). Allocated on first adaptive use and kept across Reset, so a
	// reused Workspace performs no steady-state allocations per run.
	ad *adaptiveScratch
}

// Newton-iteration controls.
const (
	newtonTol      = 1e-6
	newtonMaxIters = 80
	newtonMaxDelta = 0.4 // volts per iteration (damping)
)

// nodeLeak keeps floating nodes defined during elimination.
const nodeLeak = 1e-12

// NewTransient prepares a transient analysis with the given time step in
// seconds. Node initial conditions come from Circuit.SetInitial (default 0).
// The incremental engine is used whenever the circuit's voltage sources are
// all grounded and drive distinct nodes; otherwise the dense reference
// engine runs.
func NewTransient(c *Circuit, dt float64) *Transient {
	tr := newTransient(c, dt)
	tr.red = newReduced(c, tr.nv, dt, tr.v)
	return tr
}

// NewTransientReference prepares a transient analysis that always uses the
// pre-rework dense engine: full-matrix re-stamping and finite-difference
// MOSFET Jacobians on every Newton iteration. It exists as the golden
// baseline the incremental engine is validated (and benchmarked) against.
func NewTransientReference(c *Circuit, dt float64) *Transient {
	return newTransient(c, dt)
}

func newTransient(c *Circuit, dt float64) *Transient {
	nv := c.NumNodes() - 1
	dim := nv + len(c.sources)
	tr := &Transient{
		ckt: c, dt: dt, baseDt: dt,
		nv: nv, dim: dim,
		v:    make([]float64, nv),
		x:    make([]float64, dim),
		a:    make([]float64, dim*dim),
		z:    make([]float64, dim),
		newt: make([]float64, dim),
	}
	for node, volts := range c.initial {
		if node > 0 && node <= nv {
			tr.v[node-1] = volts
			tr.x[node-1] = volts
		}
	}
	return tr
}

// Time returns the current simulation time in seconds.
func (tr *Transient) Time() float64 { return tr.t }

// Reset rewinds the analysis to t=0 and re-reads the circuit's element
// values and initial conditions, reusing every workspace allocation. It is
// the re-stamp half of the Monte-Carlo workspace reuse: after mutating the
// circuit's R/C/MOS values and initial voltages in place (the topology must
// be unchanged), Reset makes the next Step sequence bit-identical to a
// freshly constructed Transient over the same circuit.
//
//detlint:hotpath witness=TestWorkspaceSimulateAllocs
func (tr *Transient) Reset() {
	tr.t = 0
	tr.dt = tr.baseDt
	tr.newtIters = 0
	for i := range tr.v {
		tr.v[i] = 0
	}
	for i := range tr.x {
		tr.x[i] = 0
	}
	for node, volts := range tr.ckt.initial {
		if node > 0 && node <= tr.nv {
			tr.v[node-1] = volts
			tr.x[node-1] = volts
		}
	}
	if tr.red != nil {
		tr.red.reset(tr.ckt, tr.dt, tr.v)
	}
}

// V returns the voltage of a node at the current time.
func (tr *Transient) V(node int) float64 {
	if node == Ground {
		return 0
	}
	return tr.v[node-1]
}

// vPrev reads a node voltage at the previous completed step.
func (tr *Transient) vPrev(node int) float64 {
	if node == Ground {
		return 0
	}
	return tr.v[node-1]
}

// setDt switches the integration step size. Capacitor companion
// conductances are C/dt, so the reduced engine's static stamps are rebuilt;
// the Newton history survives, only the extrapolating predictor resets.
//
//detlint:hotpath witness=TestWorkspaceSimulateAllocs
func (tr *Transient) setDt(dt float64) {
	if dt == tr.dt {
		return
	}
	tr.dt = dt
	if tr.red != nil {
		tr.red.setDt(tr.ckt, dt)
	}
}

// engineState is a rewindable snapshot of the integration state: everything
// a Step reads besides the circuit itself. save/load let the adaptive
// stepper attempt a trial step and retract it on an error-estimate or
// Newton failure.
type engineState struct {
	t, dt  float64
	steps  int
	dtLast float64   // reduced-engine predictor slope scale
	v      []float64 // node voltages
	// Reduced-engine Newton history (nil when running the dense reference).
	xPrev, xPrev2 []float64
	// Dense-engine solution vector (nil on the incremental path).
	x []float64
}

// newState allocates a snapshot sized for this analysis.
func (tr *Transient) newState() *engineState {
	s := &engineState{v: make([]float64, tr.nv)}
	if tr.red != nil {
		s.xPrev = make([]float64, tr.red.ku)
		s.xPrev2 = make([]float64, tr.red.ku)
	} else {
		s.x = make([]float64, tr.dim)
	}
	return s
}

// save captures the current integration state into s.
func (tr *Transient) save(s *engineState) {
	s.t, s.dt = tr.t, tr.dt
	copy(s.v, tr.v)
	if tr.red != nil {
		s.steps = tr.red.steps
		s.dtLast = tr.red.dtLast
		copy(s.xPrev, tr.red.xPrev)
		copy(s.xPrev2, tr.red.xPrev2)
	} else {
		copy(s.x, tr.x)
	}
}

// load restores a previously saved integration state, re-stamping if the
// step size differs.
func (tr *Transient) load(s *engineState) {
	tr.t = s.t
	tr.setDt(s.dt)
	copy(tr.v, s.v)
	if tr.red != nil {
		tr.red.steps = s.steps
		tr.red.dtLast = s.dtLast
		copy(tr.red.xPrev, s.xPrev)
		copy(tr.red.xPrev2, s.xPrev2)
	} else {
		copy(tr.x, s.x)
	}
}

// Step advances the simulation by one time step.
//
//detlint:hotpath witness=TestWorkspaceSimulateAllocs
func (tr *Transient) Step() error {
	if tr.red != nil {
		return tr.stepReduced()
	}
	return tr.stepDense()
}

// Run advances until the given time, invoking probe (if non-nil) after every
// step.
func (tr *Transient) Run(until float64, probe func(t float64, v func(node int) float64)) error {
	for tr.t < until-tr.dt/2 {
		if err := tr.Step(); err != nil {
			return err
		}
		if probe != nil {
			probe(tr.t, tr.V)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Incremental engine.

// drivenNode is a node pinned by a grounded voltage source: its voltage is
// sign*wave.At(t), no unknown needed.
type drivenNode struct {
	node int
	wave Waveform
	sign float64 // +1 when the source's positive terminal is the node
}

// gDrivenEntry records a static conductance between an unknown node and a
// driven node; per step it contributes g*Vdriven(t) to the RHS of row.
type gDrivenEntry struct {
	row  int // reduced row receiving the current
	node int // driven node
	g    float64
}

// mosPlan caches one MOSFET's terminal routing into the reduced system,
// resolved once at construction: per terminal the reduced index (rd/rg/rs,
// -1 when the terminal is driven or ground) and the node-1 index into vdrv
// for driven terminals (dd/dg/ds, -1 otherwise; a ground terminal has both
// at -1 and reads 0 V). The per-iteration stamp — five devices, every
// Newton iteration of every Monte-Carlo solve — then runs without node-id
// maps, method calls, or closures.
type mosPlan struct {
	rd, rg, rs int
	dd, dg, ds int
}

// capPlan caches a capacitor's reduced rows and node-1 history indices for
// the per-step companion-current pass.
type capPlan struct {
	ra, rb int // reduced rows, -1 when the plate is driven or ground
	na, nb int // node-1 for the vPrev read, -1 for ground
}

// reduced is the incremental-assembly engine state. Indices into the
// reduced system cover only undriven, non-ground nodes.
type reduced struct {
	ku     int   // unknown (undriven) node count
	idx    []int // node-1 -> reduced index, or -1 for driven nodes
	nodes  []int // reduced index -> node id
	driven []drivenNode
	isDrv  []bool // node-1 -> pinned by a source

	gStatic []float64 // ku*ku: resistors, capacitor conductances, leak
	gDriven []gDrivenEntry

	mosPlans []mosPlan    // per-MOSFET terminal routing, fixed by the topology
	mosPtr   []*MOSParams // stable pointers into the circuit's element values
	capPlans []capPlan    // per-capacitor routing for the companion currents
	cell6    bool         // Newton matrix fits cellPattern6: use cell6Iter

	vdrv   []float64 // node-1 -> driven voltage at the end of the step
	zStep  []float64 // per-step RHS (capacitor companions + driven terms)
	a      []float64 // Newton workspace: ku*ku matrix
	z      []float64 // Newton workspace: RHS / solution
	newt   []float64 // Newton iterate
	xPrev  []float64 // converged reduced solution of the previous step
	xPrev2 []float64 // solution two steps back (Newton predictor)
	steps  int       // completed steps (predictor needs two)
	dtLast float64   // step size that produced xPrev (predictor slope scaling)
}

// newReduced builds the incremental engine, or returns nil when the circuit
// needs the dense fallback (floating source, doubly driven node). v holds
// the initial node voltages.
func newReduced(c *Circuit, nv int, dt float64, v []float64) *reduced {
	r := &reduced{
		idx:   make([]int, nv),
		isDrv: make([]bool, nv),
		vdrv:  make([]float64, nv),
	}
	for _, s := range c.sources {
		var node int
		var sign float64
		switch {
		case s.pos != Ground && s.neg == Ground:
			node, sign = s.pos, 1
		case s.pos == Ground && s.neg != Ground:
			node, sign = s.neg, -1
		default:
			return nil // floating source: the border row cannot be eliminated
		}
		if node > nv || r.isDrv[node-1] {
			return nil // doubly driven node: leave conflict handling to the dense path
		}
		r.isDrv[node-1] = true
		r.driven = append(r.driven, drivenNode{node: node, wave: s.wave, sign: sign})
	}
	for n := 1; n <= nv; n++ {
		if r.isDrv[n-1] {
			r.idx[n-1] = -1
			continue
		}
		r.idx[n-1] = r.ku
		r.nodes = append(r.nodes, n)
		r.ku++
	}

	for _, m := range c.mosfets {
		r.mosPlans = append(r.mosPlans, mosPlan{
			rd: r.reducedOf(m.d), rg: r.reducedOf(m.g), rs: r.reducedOf(m.s),
			dd: r.drvIdx(m.d), dg: r.drvIdx(m.g), ds: r.drvIdx(m.s),
		})
	}
	for _, cp := range c.caps {
		r.capPlans = append(r.capPlans, capPlan{
			ra: r.reducedOf(cp.a), rb: r.reducedOf(cp.b),
			na: cp.a - 1, nb: cp.b - 1,
		})
	}
	for i := range c.mosfets {
		r.mosPtr = append(r.mosPtr, &c.mosfets[i].params)
	}
	r.cell6 = r.ku == 6 && r.fitsCellPattern(c)

	ku := r.ku
	r.gStatic = make([]float64, ku*ku)
	r.zStep = make([]float64, ku)
	r.a = make([]float64, ku*ku)
	r.z = make([]float64, ku)
	r.newt = make([]float64, ku)
	r.xPrev = make([]float64, ku)
	r.xPrev2 = make([]float64, ku)
	r.restamp(c, dt, v)
	return r
}

// restamp (re)builds every stamp that never changes across steps, reusing
// the workspace allocations, and primes the Newton state from the node
// voltages v. It runs once at construction and again on every Reset, with
// identical assembly order both times so a reused engine is bit-identical
// to a fresh one.
func (r *reduced) restamp(c *Circuit, dt float64, v []float64) {
	r.stampStatics(c, dt)
	r.steps = 0
	r.dtLast = dt
	for i, n := range r.nodes {
		r.xPrev[i] = v[n-1]
		r.xPrev2[i] = 0
	}
}

// stampStatics rebuilds the stamps that depend only on element values and
// the step size — not on the Newton history — in fixed assembly order.
func (r *reduced) stampStatics(c *Circuit, dt float64) {
	ku := r.ku
	for i := range r.gStatic {
		r.gStatic[i] = 0
	}
	r.gDriven = r.gDriven[:0]
	for i := 0; i < ku; i++ {
		r.gStatic[i*ku+i] += nodeLeak
	}
	for _, res := range c.resistors {
		r.stampStatic(res.a, res.b, 1/res.ohms)
	}
	// Capacitor backward-Euler companions: the conductance C/dt is static
	// for a fixed step; only the history current moves to the per-step RHS.
	for _, cap := range c.caps {
		r.stampStatic(cap.a, cap.b, cap.farads/dt)
	}
}

// setDt re-stamps the static system for a new step size. The Newton history
// survives intact: the extrapolating predictor rescales its slope by the
// dtNew/dtOld ratio at the next step (see stepReduced), so a step-size
// change no longer costs two copy-previous initial guesses — on the
// adaptive path, which changes dt on nearly every coarse transition, that
// is worth about one Newton iteration per solve.
func (r *reduced) setDt(c *Circuit, dt float64) {
	r.stampStatics(c, dt)
}

// reset rewinds the incremental engine for Transient.Reset.
func (r *reduced) reset(c *Circuit, dt float64, v []float64) {
	r.restamp(c, dt, v)
}

// stampStatic adds conductance g between nodes a and b into the static
// system, routing terms that touch a driven node to the per-step RHS list.
func (r *reduced) stampStatic(a, b int, g float64) {
	ra, rb := r.reducedOf(a), r.reducedOf(b)
	if ra >= 0 {
		r.gStatic[ra*r.ku+ra] += g
	}
	if rb >= 0 {
		r.gStatic[rb*r.ku+rb] += g
	}
	switch {
	case ra >= 0 && rb >= 0:
		r.gStatic[ra*r.ku+rb] -= g
		r.gStatic[rb*r.ku+ra] -= g
	case ra >= 0 && r.drivenNode(b):
		r.gDriven = append(r.gDriven, gDrivenEntry{ra, b, g})
	case rb >= 0 && r.drivenNode(a):
		r.gDriven = append(r.gDriven, gDrivenEntry{rb, a, g})
	}
}

// reducedOf maps a node id to its reduced index; ground and driven nodes
// return -1.
func (r *reduced) reducedOf(node int) int {
	if node == Ground {
		return -1
	}
	return r.idx[node-1]
}

// drivenNode reports whether the node is pinned by a grounded source.
func (r *reduced) drivenNode(node int) bool {
	return node != Ground && r.isDrv[node-1]
}

// drvIdx returns the node-1 index into vdrv for driven nodes, -1 otherwise.
func (r *reduced) drvIdx(node int) int {
	if r.drivenNode(node) {
		return node - 1
	}
	return -1
}

// fitsCellPattern reports whether every entry the stamps can touch lies
// within cellPattern6, the precondition for the structure-exploiting
// solve6Cell. It over-approximates: an entry is counted as touchable if any
// resistor, capacitor, leak term, or MOSFET linearization writes it,
// whether or not the written value is ever nonzero, so a true result
// guarantees the off-pattern entries stay exactly zero through every Newton
// iteration.
func (r *reduced) fitsCellPattern(c *Circuit) bool {
	var mask [6]uint8
	for i := range mask {
		mask[i] |= 1 << i // leak diagonal
	}
	pair := func(ra, rb int) {
		if ra >= 0 {
			mask[ra] |= 1 << ra
			if rb >= 0 {
				mask[ra] |= 1 << rb
				mask[rb] |= 1 << ra
			}
		}
		if rb >= 0 {
			mask[rb] |= 1 << rb
		}
	}
	for _, res := range c.resistors {
		pair(r.reducedOf(res.a), r.reducedOf(res.b))
	}
	for _, cp := range c.caps {
		pair(r.reducedOf(cp.a), r.reducedOf(cp.b))
	}
	for _, pl := range r.mosPlans {
		var cols uint8
		for _, rt := range [3]int{pl.rd, pl.rg, pl.rs} {
			if rt >= 0 {
				cols |= 1 << rt
			}
		}
		if pl.rd >= 0 {
			mask[pl.rd] |= cols
		}
		if pl.rs >= 0 {
			mask[pl.rs] |= cols
		}
	}
	for i := range mask {
		if mask[i]&^cellPattern6[i] != 0 {
			return false
		}
	}
	return true
}

// vIter reads a node voltage at the current Newton iterate.
func (r *reduced) vIter(node int) float64 {
	if node == Ground {
		return 0
	}
	if r.isDrv[node-1] {
		return r.vdrv[node-1]
	}
	return r.newt[r.idx[node-1]]
}

// stampMOSAnalytic adds one MOSFET's analytic linearization to the Newton
// system: only the handful of entries the device touches change per
// iteration. The plan resolves every terminal's routing up front, so the
// stamp is straight-line index arithmetic; the adds run in the same order
// (drain row: d, g, s; then source row: d, g, s) with the same float
// operations as the routing-at-stamp-time form it replaced.
func (r *reduced) stampMOSAnalytic(m *mosfet, pl mosPlan) {
	var vd, vg, vs float64
	if pl.rd >= 0 {
		vd = r.newt[pl.rd]
	} else if pl.dd >= 0 {
		vd = r.vdrv[pl.dd]
	}
	if pl.rg >= 0 {
		vg = r.newt[pl.rg]
	} else if pl.dg >= 0 {
		vg = r.vdrv[pl.dg]
	}
	if pl.rs >= 0 {
		vs = r.newt[pl.rs]
	} else if pl.ds >= 0 {
		vs = r.vdrv[pl.ds]
	}
	id, gdd, gdg, gds := mosStamp(&m.params, vd, vg, vs)
	ieq := id - gdd*vd - gdg*vg - gds*vs

	ku := r.ku
	if rd := pl.rd; rd >= 0 {
		row := rd * ku
		r.a[row+rd] += gdd
		if pl.rg >= 0 {
			r.a[row+pl.rg] += gdg
		} else if pl.dg >= 0 {
			r.z[rd] -= gdg * r.vdrv[pl.dg]
		}
		if pl.rs >= 0 {
			r.a[row+pl.rs] += gds
		} else if pl.ds >= 0 {
			r.z[rd] -= gds * r.vdrv[pl.ds]
		}
		r.z[rd] -= ieq
	}
	if rs := pl.rs; rs >= 0 {
		row := rs * ku
		if pl.rd >= 0 {
			r.a[row+pl.rd] += -gdd
		} else if pl.dd >= 0 {
			r.z[rs] -= -gdd * r.vdrv[pl.dd]
		}
		if pl.rg >= 0 {
			r.a[row+pl.rg] += -gdg
		} else if pl.dg >= 0 {
			r.z[rs] -= -gdg * r.vdrv[pl.dg]
		}
		r.a[row+rs] += -gds
		r.z[rs] += ieq
	}
}

// solveGeneric performs one copy-stamp-solve Newton iteration on the heap
// workspace: the full static restore, the per-device stamps, and the
// partial-pivot solve. It is the only iteration form for non-cell
// topologies, and the redo path when cell6Iter declines an iteration.
func (r *reduced) solveGeneric(c *Circuit) error {
	copy(r.a, r.gStatic)
	copy(r.z, r.zStep)
	for mi := range c.mosfets {
		r.stampMOSAnalytic(&c.mosfets[mi], r.mosPlans[mi])
	}
	return solveDense(r.a, r.z, r.ku)
}

// stepReduced advances one backward-Euler step on the incremental engine.
func (tr *Transient) stepReduced() error {
	r := tr.red
	tNext := tr.t + tr.dt

	// Per-step pass: source levels and capacitor history currents are fixed
	// for the whole Newton loop.
	for _, d := range r.driven {
		r.vdrv[d.node-1] = d.sign * d.wave.At(tNext)
	}
	for i := range r.zStep {
		r.zStep[i] = 0
	}
	for _, e := range r.gDriven {
		r.zStep[e.row] += e.g * r.vdrv[e.node-1]
	}
	for ci := range tr.ckt.caps {
		pl := r.capPlans[ci]
		geq := tr.ckt.caps[ci].farads / tr.dt
		var va, vb float64
		if pl.na >= 0 {
			va = tr.v[pl.na]
		}
		if pl.nb >= 0 {
			vb = tr.v[pl.nb]
		}
		ieq := geq * (va - vb)
		if pl.ra >= 0 {
			r.zStep[pl.ra] += ieq
		}
		if pl.rb >= 0 {
			r.zStep[pl.rb] -= ieq
		}
	}

	// Newton initial guess: linear extrapolation of the last two converged
	// solutions. The predictor only changes where the iteration starts, not
	// the fixed point it converges to, and typically saves an iteration on
	// smooth ramps. When the step size just changed, the slope is rescaled
	// by dtNew/dtOld so the extrapolation survives setDt; the equal-step
	// case keeps the literal 2*x-y form, which the fixed-grid goldens pin
	// (x+r*(x-y) at r=1 differs from 2*x-y by an ulp).
	if r.steps >= 2 {
		if tr.dt == r.dtLast {
			for i := range r.newt {
				r.newt[i] = 2*r.xPrev[i] - r.xPrev2[i]
			}
		} else {
			ratio := tr.dt / r.dtLast
			for i := range r.newt {
				r.newt[i] = r.xPrev[i] + ratio*(r.xPrev[i]-r.xPrev2[i])
			}
		}
	} else {
		copy(r.newt, r.xPrev)
	}
	for iter := 0; iter < newtonMaxIters; iter++ {
		// The cell fast path runs the whole iteration — assembly, solve,
		// damped update — in stack arrays; when a pivot guard trips it has
		// written nothing, so redoing the iteration through the generic
		// path reproduces the identical elimination prefix and resolves
		// the pivot as solveDense would.
		var maxDelta float64
		ok := false
		if r.cell6 {
			maxDelta, ok = cell6Iter(r.gStatic, r.zStep, r.newt, r.vdrv, r.mosPlans, r.mosPtr)
		}
		if !ok {
			if err := r.solveGeneric(tr.ckt); err != nil {
				return fmt.Errorf("t=%.3gs: %w", tNext, err) //detlint:ignore hotalloc error path, never taken by a converging run
			}
			// tr.red.z now holds the solution. Keep this update loop in
			// lockstep with the fused one at the end of cell6Iter.
			for i := 0; i < r.ku; i++ {
				d := r.z[i] - r.newt[i]
				if abs(d) > maxDelta {
					maxDelta = abs(d)
				}
				// Damp to keep the latch transition stable (every reduced
				// unknown is a node voltage).
				if abs(d) > newtonMaxDelta {
					if d > 0 {
						d = newtonMaxDelta
					} else {
						d = -newtonMaxDelta
					}
				}
				r.newt[i] += d
			}
		}
		if maxDelta < newtonTol {
			tr.newtIters += iter + 1
			r.xPrev, r.xPrev2 = r.xPrev2, r.xPrev
			copy(r.xPrev, r.newt)
			r.steps++
			r.dtLast = tr.dt
			for i, n := range r.nodes {
				tr.v[n-1] = r.newt[i]
			}
			for _, d := range r.driven {
				tr.v[d.node-1] = r.vdrv[d.node-1]
			}
			tr.t = tNext
			return nil
		}
	}
	tr.newtIters += newtonMaxIters
	return fmt.Errorf("t=%.3gs: %w", tNext, ErrNoConverge) //detlint:ignore hotalloc error path, never taken by a converging run
}

// ---------------------------------------------------------------------------
// Dense reference engine (pre-rework behavior, kept as the golden baseline).

// stepDense advances one step by re-stamping and solving the full MNA
// system on every Newton iteration.
func (tr *Transient) stepDense() error {
	tNext := tr.t + tr.dt
	copy(tr.newt, tr.x) // Newton initial guess: previous solution

	for iter := 0; iter < newtonMaxIters; iter++ {
		tr.assembleDense(tNext)
		if err := solveDense(tr.a, tr.z, tr.dim); err != nil {
			return fmt.Errorf("t=%.3gs: %w", tNext, err) //detlint:ignore hotalloc error path, never taken by a converging run
		}
		// tr.z now holds the solution.
		maxDelta := 0.0
		for i := 0; i < tr.dim; i++ {
			d := tr.z[i] - tr.newt[i]
			if abs(d) > maxDelta {
				maxDelta = abs(d)
			}
			// Damp voltage unknowns to keep the latch transition stable.
			if i < tr.nv && abs(d) > newtonMaxDelta {
				if d > 0 {
					d = newtonMaxDelta
				} else {
					d = -newtonMaxDelta
				}
			}
			tr.newt[i] += d
		}
		if maxDelta < newtonTol {
			tr.newtIters += iter + 1
			copy(tr.x, tr.newt)
			copy(tr.v, tr.newt[:tr.nv])
			tr.t = tNext
			return nil
		}
	}
	tr.newtIters += newtonMaxIters
	return fmt.Errorf("t=%.3gs: %w", tNext, ErrNoConverge) //detlint:ignore hotalloc error path, never taken by a converging run
}

// assembleDense builds the full MNA system linearized around the current
// Newton iterate for the backward-Euler step ending at time t.
func (tr *Transient) assembleDense(t float64) {
	for i := range tr.a {
		tr.a[i] = 0
	}
	for i := range tr.z {
		tr.z[i] = 0
	}
	dim := tr.dim

	stampG := func(a, b int, g float64) { //detlint:ignore hotalloc dense reference oracle; the 0-alloc contract covers the reduced engine
		if a > 0 {
			tr.a[(a-1)*dim+(a-1)] += g
		}
		if b > 0 {
			tr.a[(b-1)*dim+(b-1)] += g
		}
		if a > 0 && b > 0 {
			tr.a[(a-1)*dim+(b-1)] -= g
			tr.a[(b-1)*dim+(a-1)] -= g
		}
	}
	inject := func(node int, amps float64) { //detlint:ignore hotalloc dense reference oracle; the 0-alloc contract covers the reduced engine
		if node > 0 {
			tr.z[node-1] += amps
		}
	}
	vAt := func(node int) float64 { //detlint:ignore hotalloc dense reference oracle; the 0-alloc contract covers the reduced engine
		if node == Ground {
			return 0
		}
		return tr.newt[node-1]
	}

	// Small leak from every node to ground keeps floating nodes defined.
	for n := 1; n <= tr.nv; n++ {
		tr.a[(n-1)*dim+(n-1)] += nodeLeak
	}

	for _, r := range tr.ckt.resistors {
		stampG(r.a, r.b, 1/r.ohms)
	}
	for _, c := range tr.ckt.caps {
		geq := c.farads / tr.dt
		stampG(c.a, c.b, geq)
		ieq := geq * (tr.vPrev(c.a) - tr.vPrev(c.b))
		inject(c.a, ieq)
		inject(c.b, -ieq)
	}
	for k, src := range tr.ckt.sources {
		row := tr.nv + k
		if src.pos > 0 {
			tr.a[row*dim+(src.pos-1)] = 1
			tr.a[(src.pos-1)*dim+row] = 1
		}
		if src.neg > 0 {
			tr.a[row*dim+(src.neg-1)] = -1
			tr.a[(src.neg-1)*dim+row] = -1
		}
		tr.z[row] = src.wave.At(t)
	}
	for _, m := range tr.ckt.mosfets {
		tr.stampMOSFD(m, vAt, stampG, inject)
	}
}

// stampMOSFD linearizes one MOSFET around the Newton iterate using a
// finite-difference Jacobian (the reference engine's historical behavior).
func (tr *Transient) stampMOSFD(m mosfet, vAt func(int) float64,
	stampG func(a, b int, g float64), inject func(node int, amps float64)) {

	vd, vg, vs := vAt(m.d), vAt(m.g), vAt(m.s)
	id0, _, _ := m.params.eval(vd, vg, vs)

	const h = 1e-6
	idD, _, _ := m.params.eval(vd+h, vg, vs)
	idG, _, _ := m.params.eval(vd, vg+h, vs)
	idS, _, _ := m.params.eval(vd, vg, vs+h)
	gdd := (idD - id0) / h
	gdg := (idG - id0) / h
	gds := (idS - id0) / h

	dim := tr.dim
	addA := func(row, col int, v float64) { //detlint:ignore hotalloc dense reference oracle; the 0-alloc contract covers the reduced engine
		if row > 0 && col > 0 {
			tr.a[(row-1)*dim+(col-1)] += v
		}
	}
	// KCL row of the drain: Id = id0 + gdd*dVd + gdg*dVg + gds*dVs.
	addA(m.d, m.d, gdd)
	addA(m.d, m.g, gdg)
	addA(m.d, m.s, gds)
	// Source row carries the opposite current.
	addA(m.s, m.d, -gdd)
	addA(m.s, m.g, -gdg)
	addA(m.s, m.s, -gds)

	ieq := id0 - gdd*vd - gdg*vg - gds*vs
	inject(m.d, -ieq)
	inject(m.s, ieq)
}
