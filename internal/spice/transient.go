package spice

import "fmt"

// Transient integrates a circuit through time with fixed-step backward
// Euler, solving the nonlinear MNA system by Newton-Raphson at each step.
type Transient struct {
	ckt *Circuit
	dt  float64
	t   float64

	nv   int       // voltage unknowns (nodes minus ground)
	dim  int       // nv + number of voltage sources
	v    []float64 // current node voltages, index node-1
	x    []float64 // full solution vector (voltages + source currents)
	a    []float64 // scratch matrix
	z    []float64 // scratch RHS
	newt []float64 // scratch iterate
}

// Newton-iteration controls.
const (
	newtonTol      = 1e-6
	newtonMaxIters = 80
	newtonMaxDelta = 0.4 // volts per iteration (damping)
)

// NewTransient prepares a transient analysis with the given time step in
// seconds. Node initial conditions come from Circuit.SetInitial (default 0).
func NewTransient(c *Circuit, dt float64) *Transient {
	nv := c.NumNodes() - 1
	dim := nv + len(c.sources)
	tr := &Transient{
		ckt: c, dt: dt,
		nv: nv, dim: dim,
		v:    make([]float64, nv),
		x:    make([]float64, dim),
		a:    make([]float64, dim*dim),
		z:    make([]float64, dim),
		newt: make([]float64, dim),
	}
	for node, volts := range c.initial {
		if node > 0 && node <= nv {
			tr.v[node-1] = volts
			tr.x[node-1] = volts
		}
	}
	return tr
}

// Time returns the current simulation time in seconds.
func (tr *Transient) Time() float64 { return tr.t }

// V returns the voltage of a node at the current time.
func (tr *Transient) V(node int) float64 {
	if node == Ground {
		return 0
	}
	return tr.v[node-1]
}

// Step advances the simulation by one time step.
func (tr *Transient) Step() error {
	tNext := tr.t + tr.dt
	copy(tr.newt, tr.x) // Newton initial guess: previous solution

	for iter := 0; iter < newtonMaxIters; iter++ {
		tr.assemble(tNext)
		if err := solveDense(tr.a, tr.z, tr.dim); err != nil {
			return fmt.Errorf("t=%.3gs: %w", tNext, err)
		}
		// tr.z now holds the solution.
		maxDelta := 0.0
		for i := 0; i < tr.dim; i++ {
			d := tr.z[i] - tr.newt[i]
			if abs(d) > maxDelta {
				maxDelta = abs(d)
			}
			// Damp voltage unknowns to keep the latch transition stable.
			if i < tr.nv && abs(d) > newtonMaxDelta {
				if d > 0 {
					d = newtonMaxDelta
				} else {
					d = -newtonMaxDelta
				}
			}
			tr.newt[i] += d
		}
		if maxDelta < newtonTol {
			copy(tr.x, tr.newt)
			copy(tr.v, tr.newt[:tr.nv])
			tr.t = tNext
			return nil
		}
	}
	return fmt.Errorf("t=%.3gs: %w", tNext, ErrNoConverge)
}

// Run advances until the given time, invoking probe (if non-nil) after every
// step.
func (tr *Transient) Run(until float64, probe func(t float64, v func(node int) float64)) error {
	for tr.t < until-tr.dt/2 {
		if err := tr.Step(); err != nil {
			return err
		}
		if probe != nil {
			probe(tr.t, tr.V)
		}
	}
	return nil
}

// assemble builds the MNA system linearized around the current Newton
// iterate for the backward-Euler step ending at time t.
func (tr *Transient) assemble(t float64) {
	for i := range tr.a {
		tr.a[i] = 0
	}
	for i := range tr.z {
		tr.z[i] = 0
	}
	dim := tr.dim

	stampG := func(a, b int, g float64) {
		if a > 0 {
			tr.a[(a-1)*dim+(a-1)] += g
		}
		if b > 0 {
			tr.a[(b-1)*dim+(b-1)] += g
		}
		if a > 0 && b > 0 {
			tr.a[(a-1)*dim+(b-1)] -= g
			tr.a[(b-1)*dim+(a-1)] -= g
		}
	}
	inject := func(node int, amps float64) {
		if node > 0 {
			tr.z[node-1] += amps
		}
	}
	vAt := func(node int) float64 {
		if node == Ground {
			return 0
		}
		return tr.newt[node-1]
	}
	vPrev := func(node int) float64 {
		if node == Ground {
			return 0
		}
		return tr.v[node-1]
	}

	// Small leak from every node to ground keeps floating nodes defined.
	for n := 1; n <= tr.nv; n++ {
		tr.a[(n-1)*dim+(n-1)] += 1e-12
	}

	for _, r := range tr.ckt.resistors {
		stampG(r.a, r.b, 1/r.ohms)
	}
	for _, c := range tr.ckt.caps {
		geq := c.farads / tr.dt
		stampG(c.a, c.b, geq)
		ieq := geq * (vPrev(c.a) - vPrev(c.b))
		inject(c.a, ieq)
		inject(c.b, -ieq)
	}
	for k, src := range tr.ckt.sources {
		row := tr.nv + k
		if src.pos > 0 {
			tr.a[row*dim+(src.pos-1)] = 1
			tr.a[(src.pos-1)*dim+row] = 1
		}
		if src.neg > 0 {
			tr.a[row*dim+(src.neg-1)] = -1
			tr.a[(src.neg-1)*dim+row] = -1
		}
		tr.z[row] = src.wave.At(t)
	}
	for _, m := range tr.ckt.mosfets {
		tr.stampMOS(m, vAt, stampG, inject)
	}
}

// stampMOS linearizes one MOSFET around the Newton iterate using a
// finite-difference Jacobian (robust to the internal drain/source swap).
func (tr *Transient) stampMOS(m mosfet, vAt func(int) float64,
	stampG func(a, b int, g float64), inject func(node int, amps float64)) {

	vd, vg, vs := vAt(m.d), vAt(m.g), vAt(m.s)
	id0, _, _ := m.params.eval(vd, vg, vs)

	const h = 1e-6
	idD, _, _ := m.params.eval(vd+h, vg, vs)
	idG, _, _ := m.params.eval(vd, vg+h, vs)
	idS, _, _ := m.params.eval(vd, vg, vs+h)
	gdd := (idD - id0) / h
	gdg := (idG - id0) / h
	gds := (idS - id0) / h

	dim := tr.dim
	addA := func(row, col int, v float64) {
		if row > 0 && col > 0 {
			tr.a[(row-1)*dim+(col-1)] += v
		}
	}
	// KCL row of the drain: Id = id0 + gdd*dVd + gdg*dVg + gds*dVs.
	addA(m.d, m.d, gdd)
	addA(m.d, m.g, gdg)
	addA(m.d, m.s, gds)
	// Source row carries the opposite current.
	addA(m.s, m.d, -gdd)
	addA(m.s, m.g, -gdg)
	addA(m.s, m.s, -gds)

	ieq := id0 - gdd*vd - gdg*vg - gds*vs
	inject(m.d, -ieq)
	inject(m.s, ieq)
}
