package spice

import "fmt"

// Transient integrates a circuit through time with fixed-step backward
// Euler, solving the nonlinear MNA system by Newton-Raphson at each step.
//
// Two engines back the same API. The default incremental engine exploits
// the bordered MNA structure: every grounded voltage source contributes an
// identity border row that pins its node, so those nodes are eliminated
// from the system up front and only the remaining unknowns are solved —
// for the paper's DRAM-cell netlist this halves the system (12 -> 6
// unknowns, an ~8x smaller LU). Static stamps (resistors, capacitor
// conductances, the ground leak) are assembled once per simulation, the
// per-step right-hand side (capacitor companions, source levels) once per
// step, and each Newton iteration adds only the analytic MOSFET
// linearization from MOSParams.stamp before factoring the small core with
// partial-pivot LU in a reused workspace.
//
// Circuits the reduction cannot express — a floating voltage source, or a
// node driven by two sources — fall back to the reference dense engine,
// which re-stamps the full (nodes + sources) matrix with finite-difference
// Jacobians on every iteration. The reference engine is also exported
// through NewTransientReference as the golden cross-check the equivalence
// tests and benchmarks compare against.
type Transient struct {
	ckt    *Circuit
	dt     float64 // current integration step (adaptive stepping varies it)
	baseDt float64 // the step the analysis was constructed with
	t      float64

	nv  int       // voltage unknowns (nodes minus ground)
	dim int       // nv + number of voltage sources
	v   []float64 // current node voltages, index node-1

	red *reduced // incremental engine; nil when running the dense reference

	// Dense reference workspace.
	x    []float64 // full solution vector (voltages + source currents)
	a    []float64 // scratch matrix
	z    []float64 // scratch RHS
	newt []float64 // scratch iterate

	// ad holds the adaptive stepper's reusable scratch (snapshots, trial
	// vectors). Allocated on first adaptive use and kept across Reset, so a
	// reused Workspace performs no steady-state allocations per run.
	ad *adaptiveScratch
}

// Newton-iteration controls.
const (
	newtonTol      = 1e-6
	newtonMaxIters = 80
	newtonMaxDelta = 0.4 // volts per iteration (damping)
)

// nodeLeak keeps floating nodes defined during elimination.
const nodeLeak = 1e-12

// NewTransient prepares a transient analysis with the given time step in
// seconds. Node initial conditions come from Circuit.SetInitial (default 0).
// The incremental engine is used whenever the circuit's voltage sources are
// all grounded and drive distinct nodes; otherwise the dense reference
// engine runs.
func NewTransient(c *Circuit, dt float64) *Transient {
	tr := newTransient(c, dt)
	tr.red = newReduced(c, tr.nv, dt, tr.v)
	return tr
}

// NewTransientReference prepares a transient analysis that always uses the
// pre-rework dense engine: full-matrix re-stamping and finite-difference
// MOSFET Jacobians on every Newton iteration. It exists as the golden
// baseline the incremental engine is validated (and benchmarked) against.
func NewTransientReference(c *Circuit, dt float64) *Transient {
	return newTransient(c, dt)
}

func newTransient(c *Circuit, dt float64) *Transient {
	nv := c.NumNodes() - 1
	dim := nv + len(c.sources)
	tr := &Transient{
		ckt: c, dt: dt, baseDt: dt,
		nv: nv, dim: dim,
		v:    make([]float64, nv),
		x:    make([]float64, dim),
		a:    make([]float64, dim*dim),
		z:    make([]float64, dim),
		newt: make([]float64, dim),
	}
	for node, volts := range c.initial {
		if node > 0 && node <= nv {
			tr.v[node-1] = volts
			tr.x[node-1] = volts
		}
	}
	return tr
}

// Time returns the current simulation time in seconds.
func (tr *Transient) Time() float64 { return tr.t }

// Reset rewinds the analysis to t=0 and re-reads the circuit's element
// values and initial conditions, reusing every workspace allocation. It is
// the re-stamp half of the Monte-Carlo workspace reuse: after mutating the
// circuit's R/C/MOS values and initial voltages in place (the topology must
// be unchanged), Reset makes the next Step sequence bit-identical to a
// freshly constructed Transient over the same circuit.
//
//detlint:hotpath witness=TestWorkspaceSimulateAllocs
func (tr *Transient) Reset() {
	tr.t = 0
	tr.dt = tr.baseDt
	for i := range tr.v {
		tr.v[i] = 0
	}
	for i := range tr.x {
		tr.x[i] = 0
	}
	for node, volts := range tr.ckt.initial {
		if node > 0 && node <= tr.nv {
			tr.v[node-1] = volts
			tr.x[node-1] = volts
		}
	}
	if tr.red != nil {
		tr.red.reset(tr.ckt, tr.dt, tr.v)
	}
}

// V returns the voltage of a node at the current time.
func (tr *Transient) V(node int) float64 {
	if node == Ground {
		return 0
	}
	return tr.v[node-1]
}

// vPrev reads a node voltage at the previous completed step.
func (tr *Transient) vPrev(node int) float64 {
	if node == Ground {
		return 0
	}
	return tr.v[node-1]
}

// setDt switches the integration step size. Capacitor companion
// conductances are C/dt, so the reduced engine's static stamps are rebuilt;
// the Newton history survives, only the extrapolating predictor resets.
//
//detlint:hotpath witness=TestWorkspaceSimulateAllocs
func (tr *Transient) setDt(dt float64) {
	if dt == tr.dt {
		return
	}
	tr.dt = dt
	if tr.red != nil {
		tr.red.setDt(tr.ckt, dt)
	}
}

// engineState is a rewindable snapshot of the integration state: everything
// a Step reads besides the circuit itself. save/load let the adaptive
// stepper attempt a trial step and retract it on an error-estimate or
// Newton failure.
type engineState struct {
	t, dt float64
	steps int
	v     []float64 // node voltages
	// Reduced-engine Newton history (nil when running the dense reference).
	xPrev, xPrev2 []float64
	// Dense-engine solution vector (nil on the incremental path).
	x []float64
}

// newState allocates a snapshot sized for this analysis.
func (tr *Transient) newState() *engineState {
	s := &engineState{v: make([]float64, tr.nv)}
	if tr.red != nil {
		s.xPrev = make([]float64, tr.red.ku)
		s.xPrev2 = make([]float64, tr.red.ku)
	} else {
		s.x = make([]float64, tr.dim)
	}
	return s
}

// save captures the current integration state into s.
func (tr *Transient) save(s *engineState) {
	s.t, s.dt = tr.t, tr.dt
	copy(s.v, tr.v)
	if tr.red != nil {
		s.steps = tr.red.steps
		copy(s.xPrev, tr.red.xPrev)
		copy(s.xPrev2, tr.red.xPrev2)
	} else {
		copy(s.x, tr.x)
	}
}

// load restores a previously saved integration state, re-stamping if the
// step size differs.
func (tr *Transient) load(s *engineState) {
	tr.t = s.t
	tr.setDt(s.dt)
	copy(tr.v, s.v)
	if tr.red != nil {
		tr.red.steps = s.steps
		copy(tr.red.xPrev, s.xPrev)
		copy(tr.red.xPrev2, s.xPrev2)
	} else {
		copy(tr.x, s.x)
	}
}

// Step advances the simulation by one time step.
//
//detlint:hotpath witness=TestWorkspaceSimulateAllocs
func (tr *Transient) Step() error {
	if tr.red != nil {
		return tr.stepReduced()
	}
	return tr.stepDense()
}

// Run advances until the given time, invoking probe (if non-nil) after every
// step.
func (tr *Transient) Run(until float64, probe func(t float64, v func(node int) float64)) error {
	for tr.t < until-tr.dt/2 {
		if err := tr.Step(); err != nil {
			return err
		}
		if probe != nil {
			probe(tr.t, tr.V)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Incremental engine.

// drivenNode is a node pinned by a grounded voltage source: its voltage is
// sign*wave.At(t), no unknown needed.
type drivenNode struct {
	node int
	wave Waveform
	sign float64 // +1 when the source's positive terminal is the node
}

// gDrivenEntry records a static conductance between an unknown node and a
// driven node; per step it contributes g*Vdriven(t) to the RHS of row.
type gDrivenEntry struct {
	row  int // reduced row receiving the current
	node int // driven node
	g    float64
}

// reduced is the incremental-assembly engine state. Indices into the
// reduced system cover only undriven, non-ground nodes.
type reduced struct {
	ku     int   // unknown (undriven) node count
	idx    []int // node-1 -> reduced index, or -1 for driven nodes
	nodes  []int // reduced index -> node id
	driven []drivenNode
	isDrv  []bool // node-1 -> pinned by a source

	gStatic []float64 // ku*ku: resistors, capacitor conductances, leak
	gDriven []gDrivenEntry

	vdrv   []float64 // node-1 -> driven voltage at the end of the step
	zStep  []float64 // per-step RHS (capacitor companions + driven terms)
	a      []float64 // Newton workspace: ku*ku matrix
	z      []float64 // Newton workspace: RHS / solution
	newt   []float64 // Newton iterate
	xPrev  []float64 // converged reduced solution of the previous step
	xPrev2 []float64 // solution two steps back (Newton predictor)
	steps  int       // completed steps (predictor needs two)
}

// newReduced builds the incremental engine, or returns nil when the circuit
// needs the dense fallback (floating source, doubly driven node). v holds
// the initial node voltages.
func newReduced(c *Circuit, nv int, dt float64, v []float64) *reduced {
	r := &reduced{
		idx:   make([]int, nv),
		isDrv: make([]bool, nv),
		vdrv:  make([]float64, nv),
	}
	for _, s := range c.sources {
		var node int
		var sign float64
		switch {
		case s.pos != Ground && s.neg == Ground:
			node, sign = s.pos, 1
		case s.pos == Ground && s.neg != Ground:
			node, sign = s.neg, -1
		default:
			return nil // floating source: the border row cannot be eliminated
		}
		if node > nv || r.isDrv[node-1] {
			return nil // doubly driven node: leave conflict handling to the dense path
		}
		r.isDrv[node-1] = true
		r.driven = append(r.driven, drivenNode{node: node, wave: s.wave, sign: sign})
	}
	for n := 1; n <= nv; n++ {
		if r.isDrv[n-1] {
			r.idx[n-1] = -1
			continue
		}
		r.idx[n-1] = r.ku
		r.nodes = append(r.nodes, n)
		r.ku++
	}

	ku := r.ku
	r.gStatic = make([]float64, ku*ku)
	r.zStep = make([]float64, ku)
	r.a = make([]float64, ku*ku)
	r.z = make([]float64, ku)
	r.newt = make([]float64, ku)
	r.xPrev = make([]float64, ku)
	r.xPrev2 = make([]float64, ku)
	r.restamp(c, dt, v)
	return r
}

// restamp (re)builds every stamp that never changes across steps, reusing
// the workspace allocations, and primes the Newton state from the node
// voltages v. It runs once at construction and again on every Reset, with
// identical assembly order both times so a reused engine is bit-identical
// to a fresh one.
func (r *reduced) restamp(c *Circuit, dt float64, v []float64) {
	r.stampStatics(c, dt)
	r.steps = 0
	for i, n := range r.nodes {
		r.xPrev[i] = v[n-1]
		r.xPrev2[i] = 0
	}
}

// stampStatics rebuilds the stamps that depend only on element values and
// the step size — not on the Newton history — in fixed assembly order.
func (r *reduced) stampStatics(c *Circuit, dt float64) {
	ku := r.ku
	for i := range r.gStatic {
		r.gStatic[i] = 0
	}
	r.gDriven = r.gDriven[:0]
	for i := 0; i < ku; i++ {
		r.gStatic[i*ku+i] += nodeLeak
	}
	for _, res := range c.resistors {
		r.stampStatic(res.a, res.b, 1/res.ohms)
	}
	// Capacitor backward-Euler companions: the conductance C/dt is static
	// for a fixed step; only the history current moves to the per-step RHS.
	for _, cap := range c.caps {
		r.stampStatic(cap.a, cap.b, cap.farads/dt)
	}
}

// setDt re-stamps the static system for a new step size, preserving the
// Newton history. The linear predictor's slope assumes two equally-sized
// completed steps, so the step counter is capped to fall back to the
// previous-solution initial guess until two steps at the new size complete.
func (r *reduced) setDt(c *Circuit, dt float64) {
	r.stampStatics(c, dt)
	if r.steps > 1 {
		r.steps = 1
	}
}

// reset rewinds the incremental engine for Transient.Reset.
func (r *reduced) reset(c *Circuit, dt float64, v []float64) {
	r.restamp(c, dt, v)
}

// stampStatic adds conductance g between nodes a and b into the static
// system, routing terms that touch a driven node to the per-step RHS list.
func (r *reduced) stampStatic(a, b int, g float64) {
	ra, rb := r.reducedOf(a), r.reducedOf(b)
	if ra >= 0 {
		r.gStatic[ra*r.ku+ra] += g
	}
	if rb >= 0 {
		r.gStatic[rb*r.ku+rb] += g
	}
	switch {
	case ra >= 0 && rb >= 0:
		r.gStatic[ra*r.ku+rb] -= g
		r.gStatic[rb*r.ku+ra] -= g
	case ra >= 0 && r.drivenNode(b):
		r.gDriven = append(r.gDriven, gDrivenEntry{ra, b, g})
	case rb >= 0 && r.drivenNode(a):
		r.gDriven = append(r.gDriven, gDrivenEntry{rb, a, g})
	}
}

// reducedOf maps a node id to its reduced index; ground and driven nodes
// return -1.
func (r *reduced) reducedOf(node int) int {
	if node == Ground {
		return -1
	}
	return r.idx[node-1]
}

// drivenNode reports whether the node is pinned by a grounded source.
func (r *reduced) drivenNode(node int) bool {
	return node != Ground && r.isDrv[node-1]
}

// vIter reads a node voltage at the current Newton iterate.
func (r *reduced) vIter(node int) float64 {
	if node == Ground {
		return 0
	}
	if r.isDrv[node-1] {
		return r.vdrv[node-1]
	}
	return r.newt[r.idx[node-1]]
}

// stampMOSAnalytic adds one MOSFET's analytic linearization to the Newton
// system: only the handful of entries the device touches change per
// iteration.
func (r *reduced) stampMOSAnalytic(m mosfet) {
	vd, vg, vs := r.vIter(m.d), r.vIter(m.g), r.vIter(m.s)
	id, gdd, gdg, gds := m.params.stamp(vd, vg, vs)
	ieq := id - gdd*vd - gdg*vg - gds*vs

	ku := r.ku
	add := func(row, term int, coeff float64) { //detlint:ignore hotalloc non-escaping closure, called in place; the witness asserts 0 allocs/run
		if rt := r.reducedOf(term); rt >= 0 {
			r.a[row*ku+rt] += coeff
		} else if r.drivenNode(term) {
			r.z[row] -= coeff * r.vdrv[term-1]
		}
	}
	if rd := r.reducedOf(m.d); rd >= 0 {
		add(rd, m.d, gdd)
		add(rd, m.g, gdg)
		add(rd, m.s, gds)
		r.z[rd] -= ieq
	}
	if rs := r.reducedOf(m.s); rs >= 0 {
		add(rs, m.d, -gdd)
		add(rs, m.g, -gdg)
		add(rs, m.s, -gds)
		r.z[rs] += ieq
	}
}

// stepReduced advances one backward-Euler step on the incremental engine.
func (tr *Transient) stepReduced() error {
	r := tr.red
	tNext := tr.t + tr.dt

	// Per-step pass: source levels and capacitor history currents are fixed
	// for the whole Newton loop.
	for _, d := range r.driven {
		r.vdrv[d.node-1] = d.sign * d.wave.At(tNext)
	}
	for i := range r.zStep {
		r.zStep[i] = 0
	}
	for _, e := range r.gDriven {
		r.zStep[e.row] += e.g * r.vdrv[e.node-1]
	}
	for _, c := range tr.ckt.caps {
		geq := c.farads / tr.dt
		ieq := geq * (tr.vPrev(c.a) - tr.vPrev(c.b))
		if ra := r.reducedOf(c.a); ra >= 0 {
			r.zStep[ra] += ieq
		}
		if rb := r.reducedOf(c.b); rb >= 0 {
			r.zStep[rb] -= ieq
		}
	}

	// Newton initial guess: linear extrapolation of the last two converged
	// solutions (fixed step, so the slope needs no scaling). The predictor
	// only changes where the iteration starts, not the fixed point it
	// converges to, and typically saves an iteration on smooth ramps.
	if r.steps >= 2 {
		for i := range r.newt {
			r.newt[i] = 2*r.xPrev[i] - r.xPrev2[i]
		}
	} else {
		copy(r.newt, r.xPrev)
	}
	for iter := 0; iter < newtonMaxIters; iter++ {
		copy(r.a, r.gStatic)
		copy(r.z, r.zStep)
		for _, m := range tr.ckt.mosfets {
			r.stampMOSAnalytic(m)
		}
		if err := solveDense(r.a, r.z, r.ku); err != nil {
			return fmt.Errorf("t=%.3gs: %w", tNext, err) //detlint:ignore hotalloc error path, never taken by a converging run
		}
		// tr.red.z now holds the solution.
		maxDelta := 0.0
		for i := 0; i < r.ku; i++ {
			d := r.z[i] - r.newt[i]
			if abs(d) > maxDelta {
				maxDelta = abs(d)
			}
			// Damp to keep the latch transition stable (every reduced
			// unknown is a node voltage).
			if abs(d) > newtonMaxDelta {
				if d > 0 {
					d = newtonMaxDelta
				} else {
					d = -newtonMaxDelta
				}
			}
			r.newt[i] += d
		}
		if maxDelta < newtonTol {
			r.xPrev, r.xPrev2 = r.xPrev2, r.xPrev
			copy(r.xPrev, r.newt)
			r.steps++
			for i, n := range r.nodes {
				tr.v[n-1] = r.newt[i]
			}
			for _, d := range r.driven {
				tr.v[d.node-1] = r.vdrv[d.node-1]
			}
			tr.t = tNext
			return nil
		}
	}
	return fmt.Errorf("t=%.3gs: %w", tNext, ErrNoConverge) //detlint:ignore hotalloc error path, never taken by a converging run
}

// ---------------------------------------------------------------------------
// Dense reference engine (pre-rework behavior, kept as the golden baseline).

// stepDense advances one step by re-stamping and solving the full MNA
// system on every Newton iteration.
func (tr *Transient) stepDense() error {
	tNext := tr.t + tr.dt
	copy(tr.newt, tr.x) // Newton initial guess: previous solution

	for iter := 0; iter < newtonMaxIters; iter++ {
		tr.assembleDense(tNext)
		if err := solveDense(tr.a, tr.z, tr.dim); err != nil {
			return fmt.Errorf("t=%.3gs: %w", tNext, err) //detlint:ignore hotalloc error path, never taken by a converging run
		}
		// tr.z now holds the solution.
		maxDelta := 0.0
		for i := 0; i < tr.dim; i++ {
			d := tr.z[i] - tr.newt[i]
			if abs(d) > maxDelta {
				maxDelta = abs(d)
			}
			// Damp voltage unknowns to keep the latch transition stable.
			if i < tr.nv && abs(d) > newtonMaxDelta {
				if d > 0 {
					d = newtonMaxDelta
				} else {
					d = -newtonMaxDelta
				}
			}
			tr.newt[i] += d
		}
		if maxDelta < newtonTol {
			copy(tr.x, tr.newt)
			copy(tr.v, tr.newt[:tr.nv])
			tr.t = tNext
			return nil
		}
	}
	return fmt.Errorf("t=%.3gs: %w", tNext, ErrNoConverge) //detlint:ignore hotalloc error path, never taken by a converging run
}

// assembleDense builds the full MNA system linearized around the current
// Newton iterate for the backward-Euler step ending at time t.
func (tr *Transient) assembleDense(t float64) {
	for i := range tr.a {
		tr.a[i] = 0
	}
	for i := range tr.z {
		tr.z[i] = 0
	}
	dim := tr.dim

	stampG := func(a, b int, g float64) { //detlint:ignore hotalloc dense reference oracle; the 0-alloc contract covers the reduced engine
		if a > 0 {
			tr.a[(a-1)*dim+(a-1)] += g
		}
		if b > 0 {
			tr.a[(b-1)*dim+(b-1)] += g
		}
		if a > 0 && b > 0 {
			tr.a[(a-1)*dim+(b-1)] -= g
			tr.a[(b-1)*dim+(a-1)] -= g
		}
	}
	inject := func(node int, amps float64) { //detlint:ignore hotalloc dense reference oracle; the 0-alloc contract covers the reduced engine
		if node > 0 {
			tr.z[node-1] += amps
		}
	}
	vAt := func(node int) float64 { //detlint:ignore hotalloc dense reference oracle; the 0-alloc contract covers the reduced engine
		if node == Ground {
			return 0
		}
		return tr.newt[node-1]
	}

	// Small leak from every node to ground keeps floating nodes defined.
	for n := 1; n <= tr.nv; n++ {
		tr.a[(n-1)*dim+(n-1)] += nodeLeak
	}

	for _, r := range tr.ckt.resistors {
		stampG(r.a, r.b, 1/r.ohms)
	}
	for _, c := range tr.ckt.caps {
		geq := c.farads / tr.dt
		stampG(c.a, c.b, geq)
		ieq := geq * (tr.vPrev(c.a) - tr.vPrev(c.b))
		inject(c.a, ieq)
		inject(c.b, -ieq)
	}
	for k, src := range tr.ckt.sources {
		row := tr.nv + k
		if src.pos > 0 {
			tr.a[row*dim+(src.pos-1)] = 1
			tr.a[(src.pos-1)*dim+row] = 1
		}
		if src.neg > 0 {
			tr.a[row*dim+(src.neg-1)] = -1
			tr.a[(src.neg-1)*dim+row] = -1
		}
		tr.z[row] = src.wave.At(t)
	}
	for _, m := range tr.ckt.mosfets {
		tr.stampMOSFD(m, vAt, stampG, inject)
	}
}

// stampMOSFD linearizes one MOSFET around the Newton iterate using a
// finite-difference Jacobian (the reference engine's historical behavior).
func (tr *Transient) stampMOSFD(m mosfet, vAt func(int) float64,
	stampG func(a, b int, g float64), inject func(node int, amps float64)) {

	vd, vg, vs := vAt(m.d), vAt(m.g), vAt(m.s)
	id0, _, _ := m.params.eval(vd, vg, vs)

	const h = 1e-6
	idD, _, _ := m.params.eval(vd+h, vg, vs)
	idG, _, _ := m.params.eval(vd, vg+h, vs)
	idS, _, _ := m.params.eval(vd, vg, vs+h)
	gdd := (idD - id0) / h
	gdg := (idG - id0) / h
	gds := (idS - id0) / h

	dim := tr.dim
	addA := func(row, col int, v float64) { //detlint:ignore hotalloc dense reference oracle; the 0-alloc contract covers the reduced engine
		if row > 0 && col > 0 {
			tr.a[(row-1)*dim+(col-1)] += v
		}
	}
	// KCL row of the drain: Id = id0 + gdd*dVd + gdg*dVg + gds*dVs.
	addA(m.d, m.d, gdd)
	addA(m.d, m.g, gdg)
	addA(m.d, m.s, gds)
	// Source row carries the opposite current.
	addA(m.s, m.d, -gdd)
	addA(m.s, m.g, -gdg)
	addA(m.s, m.s, -gds)

	ieq := id0 - gdd*vd - gdg*vg - gds*vs
	inject(m.d, -ieq)
	inject(m.s, ieq)
}
