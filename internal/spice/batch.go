package spice

import (
	"errors"
	"fmt"
	"math"
)

// Batched lockstep Monte-Carlo engine.
//
// Every Monte-Carlo run solves the SAME reduced MNA structure — the Table 2
// netlist's topology, node reduction, driven-source schedule, and stamp
// lists never vary, only the element VALUES drawn by Vary do. BatchWorkspace
// exploits that: K runs ("lanes") advance in lockstep through one
// struct-of-arrays workspace, so the per-step structure walk (source
// waveform evaluation, capacitor companion schedule, MOSFET stamp list,
// Newton bookkeeping) is paid once per step for all lanes while the per-lane
// float arithmetic runs over contiguous per-lane slabs.
//
// Determinism is by construction, not by tolerance: each lane executes
// exactly the scalar engine's floating-point operation sequence — the same
// stamps in the same assembly order, the same solveDense elimination, the
// same Newton damping and convergence tests — on its own values. The only
// quantities shared between lanes are ones the scalar engine would compute
// identically for every lane anyway: the netlist topology and the source
// waveforms, which Vary never perturbs (the VPP level, rails, and timings
// are campaign constants). Consequently each lane's ActivationResult is
// bit-identical to Workspace.Simulate on the same parameters, which is what
// keeps campaign goldens byte-identical at any BatchWidth
// (TestBatchLanesMatchScalar pins every lane at K ∈ {1,2,4,8}).
//
// Lanes diverge: different parameter draws cross thresholds, reject coarse
// steps, or finish at different times. The scheduler below never forces
// agreement — it groups lanes by their exact (time, step-size) solve request
// and advances the largest aligned group per kernel call. A lane whose
// adaptive stepper departs from the pack (a rejected coarse trial, a
// crossing rewind, a Newton failure retry) peels off into smaller groups —
// down to a solo group, which IS the scalar engine's op sequence — and
// re-joins a lockstep group automatically at the next base cell where its
// grid clock and step intent coincide with the others, because both are
// exact multiples of the same base step replayed with the same float
// arithmetic. Lanes whose source waveforms differ from lane 0's (possible
// only through the public API, never in a Monte-Carlo tile) peel off
// entirely to a scalar Workspace.
//
// A BatchWorkspace is not safe for concurrent use; give each worker its own.

// Batch-width limits. DefaultBatchWidth is the auto width the Monte-Carlo
// path uses for MCConfig.BatchWidth == 0; MaxBatchWidth bounds configurable
// widths (and sizes the fixed-array tile results the sweep streams through
// its worker pool).
const (
	DefaultBatchWidth = 8
	MaxBatchWidth     = 16
)

// BatchProbe receives per-lane waveform samples during a batched simulation;
// lane indexes the corresponding entry of the Simulate parameter slice.
type BatchProbe func(lane int, tNS, vBitline, vCell float64)

// laneKind is the pending solve request of a lane.
type laneKind uint8

const (
	kBase laneKind = iota
	kCoarseFull
	kCoarseHalf1
	kCoarseHalf2
)

// Base-step post-processing variants, mirroring which adaptiveStepper.step
// dispatch path issued the base step.
const (
	vNormal      = iota // mult==1 path: quiescence/gate bookkeeping follows
	vForced             // forced re-integration of a rewound stretch
	vFallthrough        // every coarse size was rejected this episode
	vFixed              // non-adaptive lane: plain fixed-grid loop
)

// batchLane is one run's complete state: the reduced engine (the same
// fields as Transient+reduced, as slices into the workspace's shared
// slabs), the adaptive stepper (the same fields as adaptiveStepper), and
// the measurement accumulator of measureActivation.
type batchLane struct {
	// Engine state (scalar analogue: Transient + reduced).
	v         []float64 // node voltages, index node-1
	gStatic   []float64 // ku*ku static stamps at the lane's current dt
	gdG       []float64 // per-entry conductances of the shared gDriven list
	zStep     []float64 // per-step RHS
	a, z      []float64 // Newton workspace
	newt      []float64 // Newton iterate
	xPrev     []float64 // converged solution of the previous step
	xPrev2    []float64 // two steps back (predictor)
	steps     int
	dtLast    float64
	dt        float64
	t         float64
	newtIters int

	// Per-lane element values (the quantities Vary perturbs).
	resOhms []float64
	capF    []float64
	mos     []MOSParams
	mosPtr  []*MOSParams // stable pointers into mos for the solve kernel

	// Adaptive scratch (scalar analogue: adaptiveScratch).
	vFull, vOld, errC, end1, end2 []float64
	prevV, prevXPrev, prevXPrev2  []float64
	prevT, prevDt, prevDtLast     float64
	prevSteps                     int

	// Stepper state (scalar analogue: adaptiveStepper).
	base, horizon, tol, activity           float64
	maxMult, mult, cool, rejStreak, forced int
	rejPending                             bool
	rejLTE, rejGate                        float64
	rejGateAge                             int
	trustLeft, histM, histN                int
	pairLTE                                float64
	pairAge                                int
	decayRate, decayAccum, alpha           float64
	tGrid                                  float64
	prevValid                              bool
	prevCells                              int
	prevTGrid                              float64
	stats                                  StepStats

	// Measurement state (scalar analogue: measureActivation locals).
	res                 ActivationResult
	vth, target, vcell0 float64
	minCell             float64
	dipped              bool
	adaptive            bool

	// Scheduling.
	reqT, reqDt float64
	kind        laneKind
	variant     int
	m           int     // current coarse attempt size in base cells
	h           float64 // full size of the current coarse attempt (seconds)
	pending     bool    // a solve request is outstanding
	conv        bool    // kernel: this lane's Newton iteration converged
	solveErr    error   // kernel: this lane's solve failure, if any
	done        bool
	err         error
}

// BatchWorkspace is the reusable K-lane simulator. The shared netlist,
// reduction structure, and every per-lane slab are built once and re-stamped
// per tile, so a warm workspace performs no steady-state allocations per
// tile (asserted by TestBatchStepAllocsFree).
type BatchWorkspace struct {
	k     int
	built bool

	ckt   *Circuit
	nodes cellNodes
	waves cellWaves
	rs    *reduced // shared reduction STRUCTURE (its per-lane arrays are unused)
	nv    int

	vdrv  []float64 // shared driven-node voltages for the current solve group
	lanes []batchLane

	// refWaves snapshots lane 0's stamped waveform breakpoints; lanes whose
	// own stamp differs peel off to the scalar fallback below.
	refWaves, tmpWaves []float64
	fallback           []bool
	scalar             *Workspace

	results []ActivationResult
	errs    []error
	sel     []int // current solve group, reused
}

// NewBatchWorkspace returns an empty workspace with capacity for k lanes
// (clamped to [1, MaxBatchWidth]); slabs are built lazily on first Simulate.
func NewBatchWorkspace(k int) *BatchWorkspace {
	if k < 1 {
		k = 1
	}
	if k > MaxBatchWidth {
		k = MaxBatchWidth
	}
	return &BatchWorkspace{k: k}
}

// Width returns the workspace's lane capacity.
func (bw *BatchWorkspace) Width() int { return bw.k }

// build assembles the shared topology and reduction once and carves the
// per-lane slabs out of single struct-of-arrays backing allocations.
func (bw *BatchWorkspace) build(p CellParams) error {
	bw.ckt, bw.nodes, bw.waves = buildCellCircuit(p)
	nv := bw.ckt.NumNodes() - 1
	vtmp := make([]float64, nv)
	for node, volts := range bw.ckt.initial {
		if node > 0 && node <= nv {
			vtmp[node-1] = volts
		}
	}
	rs := newReduced(bw.ckt, nv, p.StepPS*1e-12, vtmp)
	if rs == nil {
		return errors.New("spice: cell netlist not reducible for batching")
	}
	bw.rs = rs
	bw.nv = nv
	bw.vdrv = make([]float64, nv)

	k, ku, nGD := bw.k, rs.ku, len(rs.gDriven)
	nRes, nCap, nMos := len(bw.ckt.resistors), len(bw.ckt.caps), len(bw.ckt.mosfets)
	// One slab per quantity; each lane's view is a contiguous sub-slice, so
	// per-lane inner loops stream over adjacent memory and solveDense runs
	// unchanged on the lane's own matrix.
	slab := func(n int) func() []float64 {
		backing := make([]float64, n*k)
		i := 0
		return func() []float64 {
			s := backing[i*n : (i+1)*n : (i+1)*n]
			i++
			return s
		}
	}
	vS, vFullS, vOldS, errCS := slab(nv), slab(nv), slab(nv), slab(nv)
	end1S, end2S, prevVS := slab(nv), slab(nv), slab(nv)
	gS, aS := slab(ku*ku), slab(ku*ku)
	zStepS, zS, newtS := slab(ku), slab(ku), slab(ku)
	xPrevS, xPrev2S, pxS, px2S := slab(ku), slab(ku), slab(ku), slab(ku)
	gdS := slab(nGD)
	resS, capS := slab(nRes), slab(nCap)
	mosSlab := make([]MOSParams, nMos*k)

	bw.lanes = make([]batchLane, k)
	for l := range bw.lanes {
		ln := &bw.lanes[l]
		ln.v, ln.vFull, ln.vOld, ln.errC = vS(), vFullS(), vOldS(), errCS()
		ln.end1, ln.end2, ln.prevV = end1S(), end2S(), prevVS()
		ln.gStatic, ln.a = gS(), aS()
		ln.zStep, ln.z, ln.newt = zStepS(), zS(), newtS()
		ln.xPrev, ln.xPrev2 = xPrevS(), xPrev2S()
		ln.prevXPrev, ln.prevXPrev2 = pxS(), px2S()
		ln.gdG = gdS()
		ln.resOhms, ln.capF = resS(), capS()
		ln.mos = mosSlab[l*nMos : (l+1)*nMos : (l+1)*nMos]
		ln.mosPtr = make([]*MOSParams, nMos)
		for i := range ln.mos {
			ln.mosPtr[i] = &ln.mos[i]
		}
	}
	nw := 0
	for _, w := range []*PWL{bw.waves.wl, bw.waves.san, bw.waves.sap} {
		nw += 2 * len(w.Times)
	}
	bw.refWaves = make([]float64, nw)
	bw.tmpWaves = make([]float64, nw)
	bw.fallback = make([]bool, k)
	bw.results = make([]ActivationResult, k)
	bw.errs = make([]error, k)
	bw.sel = make([]int, 0, k)
	bw.built = true
	return nil
}

// snapshotWaves copies the shared circuit's stamped waveform breakpoints
// into dst, for the lane-compatibility comparison.
func (bw *BatchWorkspace) snapshotWaves(dst []float64) {
	i := 0
	for _, w := range []*PWL{bw.waves.wl, bw.waves.san, bw.waves.sap} {
		i += copy(dst[i:], w.Times)
		i += copy(dst[i:], w.Values)
	}
}

// loadLane re-stamps lane l from p: element values, initial conditions, the
// engine's Newton state, the stepper, and the measurement accumulator —
// exactly the state a fresh scalar Workspace.Simulate would start from.
// The caller has already run stampCellValues(p) on the shared circuit.
func (bw *BatchWorkspace) loadLane(l int, p CellParams) {
	ln := &bw.lanes[l]
	for i, r := range bw.ckt.resistors {
		ln.resOhms[i] = r.ohms
	}
	for i, c := range bw.ckt.caps {
		ln.capF[i] = c.farads
	}
	for i, m := range bw.ckt.mosfets {
		ln.mos[i] = m.params
	}

	base := p.StepPS * 1e-12
	for i := range ln.v {
		ln.v[i] = 0
	}
	for node, volts := range bw.ckt.initial {
		if node > 0 && node <= bw.nv {
			ln.v[node-1] = volts
		}
	}
	ln.dt = base
	bw.stampStaticsLane(ln)
	ln.steps = 0
	ln.dtLast = base
	for i, n := range bw.rs.nodes {
		ln.xPrev[i] = ln.v[n-1]
		ln.xPrev2[i] = 0
	}
	ln.t = 0
	ln.newtIters = 0

	ns := 1e-9
	ln.base = base
	ln.horizon = p.MaxNS * ns
	ln.adaptive = p.Adaptive.Enabled
	ln.tol = p.Adaptive.tol()
	ln.activity = p.Adaptive.activity()
	// base/1e-12, not p.StepPS: the scalar stepper derives the cap from
	// tr.baseDt/1e-12, and the round trip can differ from StepPS by an ulp —
	// enough to flip maxMult's <= comparison at the default 25 ps / 1600 ps.
	ln.maxMult = p.Adaptive.maxMult(base / 1e-12)
	ln.mult = 1
	ln.cool, ln.rejStreak, ln.forced = 0, 0, 0
	ln.rejPending, ln.rejLTE, ln.rejGate, ln.rejGateAge = false, 0, 0, 0
	ln.trustLeft, ln.histM, ln.histN = 0, 0, 0
	ln.pairLTE, ln.pairAge = 0, 0
	ln.decayRate, ln.decayAccum, ln.alpha = 0, 0, 0
	ln.tGrid = 0
	ln.prevValid, ln.prevCells, ln.prevTGrid = false, 0, 0
	ln.stats = StepStats{}

	ln.res = ActivationResult{}
	ln.vth = p.VTHFrac * p.VDD
	ln.vcell0 = p.SaturationV()
	ln.target = math.Min(p.RestoreFrac*p.VDD, ln.vcell0-0.05)
	ln.minCell = ln.vcell0
	ln.dipped = false

	ln.pending, ln.done, ln.err, ln.solveErr = false, false, nil, nil
}

// stampStaticsLane rebuilds lane ln's static system for its current dt,
// replaying reduced.stampStatics element for element — the same assembly
// order, with the lane's own values — and filling the lane's slot of every
// shared gDriven entry.
func (bw *BatchWorkspace) stampStaticsLane(ln *batchLane) {
	r := bw.rs
	ku := r.ku
	for i := range ln.gStatic {
		ln.gStatic[i] = 0
	}
	for i := 0; i < ku; i++ {
		ln.gStatic[i*ku+i] += nodeLeak
	}
	slot := 0
	for i, res := range bw.ckt.resistors {
		slot = bw.stampStaticLane(ln, slot, res.a, res.b, 1/ln.resOhms[i])
	}
	for i, c := range bw.ckt.caps {
		slot = bw.stampStaticLane(ln, slot, c.a, c.b, ln.capF[i]/ln.dt)
	}
}

// stampStaticLane mirrors reduced.stampStatic for one lane, returning the
// next gDriven slot.
func (bw *BatchWorkspace) stampStaticLane(ln *batchLane, slot, a, b int, g float64) int {
	r := bw.rs
	ku := r.ku
	ra, rb := r.reducedOf(a), r.reducedOf(b)
	if ra >= 0 {
		ln.gStatic[ra*ku+ra] += g
	}
	if rb >= 0 {
		ln.gStatic[rb*ku+rb] += g
	}
	switch {
	case ra >= 0 && rb >= 0:
		ln.gStatic[ra*ku+rb] -= g
		ln.gStatic[rb*ku+ra] -= g
	case ra >= 0 && r.drivenNode(b), rb >= 0 && r.drivenNode(a):
		ln.gdG[slot] = g
		slot++
	}
	return slot
}

// setDtLane switches a lane's step size, re-stamping its static system.
func (bw *BatchWorkspace) setDtLane(ln *batchLane, dt float64) {
	if dt == ln.dt {
		return
	}
	ln.dt = dt
	bw.stampStaticsLane(ln)
}

// saveLane / loadState are the lane's engineState snapshot, used by the
// coarse-attempt retry and the crossing rewind.
func (bw *BatchWorkspace) saveLane(ln *batchLane) {
	ln.prevT, ln.prevDt = ln.t, ln.dt
	ln.prevSteps, ln.prevDtLast = ln.steps, ln.dtLast
	copy(ln.prevV, ln.v)
	copy(ln.prevXPrev, ln.xPrev)
	copy(ln.prevXPrev2, ln.xPrev2)
}

func (bw *BatchWorkspace) loadState(ln *batchLane) {
	ln.t = ln.prevT
	bw.setDtLane(ln, ln.prevDt)
	ln.steps, ln.dtLast = ln.prevSteps, ln.prevDtLast
	copy(ln.v, ln.prevV)
	copy(ln.xPrev, ln.prevXPrev)
	copy(ln.xPrev2, ln.prevXPrev2)
}

// Simulate runs one activation per entry of ps (len(ps) must not exceed the
// workspace width), reusing every allocation from previous tiles. It
// returns per-lane results and errors; both slices are owned by the
// workspace and valid until the next Simulate call. Lane i is bit-identical
// to Workspace.Simulate(ps[i], ...) — including lanes that peel off to the
// scalar fallback because their source waveforms differ from lane 0's.
func (bw *BatchWorkspace) Simulate(ps []CellParams, probe BatchProbe) ([]ActivationResult, []error) {
	n := len(ps)
	if n > bw.k {
		n = bw.k
	}
	if n == 0 {
		return nil, nil
	}
	if !bw.built {
		if err := bw.build(ps[0]); err != nil {
			if bw.errs == nil {
				bw.errs = make([]error, bw.k)
				bw.results = make([]ActivationResult, bw.k)
			}
			for l := 0; l < n; l++ {
				bw.errs[l] = err
			}
			return bw.results[:n], bw.errs[:n]
		}
	}
	for l := 0; l < n; l++ {
		bw.results[l] = ActivationResult{}
		bw.errs[l] = nil
		bw.fallback[l] = false
		bw.lanes[l].done = true // lanes not loaded below stay inert
		bw.lanes[l].pending = false
	}

	// Stamp each lane's values through the shared circuit (the same writer
	// the scalar path uses, so both paths see exactly the same values) and
	// snapshot its waveforms; the first valid lane defines the shared
	// waveform reference and is re-stamped last so the circuit the kernel
	// evaluates holds the reference breakpoints.
	loaded, ref := 0, -1
	for l := 0; l < n; l++ {
		if err := ps[l].validate(); err != nil {
			bw.errs[l] = err
			continue
		}
		stampCellValues(bw.ckt, bw.nodes, bw.waves, ps[l])
		bw.snapshotWaves(bw.tmpWaves)
		if ref < 0 {
			ref = l
			copy(bw.refWaves, bw.tmpWaves)
		} else {
			for i := range bw.tmpWaves {
				if bw.tmpWaves[i] != bw.refWaves[i] {
					// Waveforms differ from the pack's: this lane cannot
					// share the driven-source schedule — peel it off to the
					// scalar engine (unreachable from the Monte-Carlo path,
					// which never varies rails or timings).
					bw.fallback[l] = true
					break
				}
			}
		}
		if bw.fallback[l] {
			continue
		}
		bw.loadLane(l, ps[l])
		loaded++
	}
	// Restore the reference lane's waveforms as the shared schedule.
	if ref >= 0 {
		stampCellValues(bw.ckt, bw.nodes, bw.waves, ps[ref])
	}

	if loaded > 0 {
		bw.run(n, probe)
	}
	for l := 0; l < n; l++ {
		ln := &bw.lanes[l]
		if bw.errs[l] != nil || bw.fallback[l] {
			continue
		}
		bw.results[l] = ln.res
		bw.errs[l] = ln.err
	}

	// Peeled lanes: the scalar engine, lane by lane.
	for l := 0; l < n; l++ {
		if !bw.fallback[l] {
			continue
		}
		if bw.scalar == nil {
			bw.scalar = NewWorkspace()
		}
		var sp Probe
		if probe != nil {
			lane := l
			sp = func(tNS, vbl, vcell float64) { probe(lane, tNS, vbl, vcell) }
		}
		bw.results[l], bw.errs[l] = bw.scalar.Simulate(ps[l], sp)
	}
	return bw.results[:n], bw.errs[:n]
}

// run drives the first n lanes to completion: each iteration picks the
// earliest pending (t, dt) solve request, advances every lane that shares
// it through one batched kernel call, and lets each lane's state machine
// issue its next request. Lockstep is emergent — lanes with identical
// request keys form one group; diverged lanes run as smaller (ultimately
// solo) groups and re-join when their keys realign at a base cell.
func (bw *BatchWorkspace) run(n int, probe BatchProbe) {
	for l := 0; l < n; l++ {
		ln := &bw.lanes[l]
		if ln.done {
			continue
		}
		bw.prepare(l, probe)
	}
	for {
		// Earliest request first (exact float comparison: aligned lanes hold
		// bit-equal times by construction); dt breaks ties so a group is a
		// single solve operation.
		bw.sel = bw.sel[:0]
		var bt, bdt float64
		for l := 0; l < n; l++ {
			ln := &bw.lanes[l]
			if !ln.pending {
				continue
			}
			if len(bw.sel) == 0 || ln.reqT < bt || (ln.reqT == bt && ln.reqDt < bdt) {
				bw.sel = bw.sel[:1]
				bw.sel[0] = l
				bt, bdt = ln.reqT, ln.reqDt
			} else if ln.reqT == bt && ln.reqDt == bdt {
				bw.sel = append(bw.sel, l)
			}
		}
		if len(bw.sel) == 0 {
			return
		}
		bw.stepGroup(bw.sel, bt, bdt)
		for _, l := range bw.sel {
			bw.postSolve(l, probe)
		}
	}
}

// prepare issues lane l's next solve request, mirroring the adaptive
// measurement loop's horizon test and adaptiveStepper.step's dispatch.
func (bw *BatchWorkspace) prepare(l int, probe BatchProbe) {
	ln := &bw.lanes[l]
	if !ln.adaptive {
		if ln.t < ln.horizon {
			ln.kind, ln.variant = kBase, vFixed
			ln.reqT, ln.reqDt = ln.t, ln.base
			ln.pending = true
			return
		}
		bw.finish(ln)
		return
	}
	if ln.tGrid >= ln.horizon {
		bw.finish(ln)
		return
	}
	if ln.forced > 0 {
		ln.forced--
		bw.baseStepPrep(ln, vForced)
		return
	}
	if ln.mult > 1 {
		bw.startCoarse(ln)
		return
	}
	bw.baseStepPrep(ln, vNormal)
}

// baseStepPrep mirrors adaptiveStepper.baseStep's pre-solve half: base dt,
// engine clock onto the grid, quiescence snapshot, then the solve request.
func (bw *BatchWorkspace) baseStepPrep(ln *batchLane, variant int) {
	bw.setDtLane(ln, ln.base)
	ln.t = ln.tGrid
	copy(ln.vOld, ln.v)
	ln.kind, ln.variant = kBase, variant
	ln.reqT, ln.reqDt = ln.tGrid, ln.base
	ln.pending = true
}

// startCoarse mirrors coarseStep's entry: clamp the attempt size away from
// the horizon, reset the episode's measured LTE, and either begin the first
// attempt or fall through to a rejected-episode base step.
func (bw *BatchWorkspace) startCoarse(ln *batchLane) {
	m := ln.mult
	for m >= minCoarse && ln.tGrid+float64(m)*ln.base >= ln.horizon+ln.base/2 {
		m /= 2
	}
	ln.rejLTE = 0
	if m < minCoarse {
		bw.rejectAll(ln)
		return
	}
	bw.beginAttempt(ln, m)
}

// beginAttempt mirrors one iteration head of coarseStep's retry loop: save
// the rewind snapshot and issue the full-size solve.
func (bw *BatchWorkspace) beginAttempt(ln *batchLane, m int) {
	bw.saveLane(ln)
	ln.m = m
	ln.h = float64(m) * ln.base
	bw.setDtLane(ln, ln.h)
	ln.t = ln.tGrid
	ln.kind = kCoarseFull
	ln.reqT, ln.reqDt = ln.tGrid, ln.h
	ln.pending = true
}

// retryHalved mirrors the rejection arm of the retry loop: rewind, count the
// rejection, and halve — falling through to the base grid when the size
// drops below minCoarse.
func (bw *BatchWorkspace) retryHalved(ln *batchLane) {
	bw.loadState(ln)
	ln.stats.Rejected++
	m := ln.m / 2
	if m >= minCoarse {
		bw.beginAttempt(ln, m)
		return
	}
	bw.rejectAll(ln)
}

// rejectAll mirrors coarseStep's every-size-rejected fallthrough: back to
// base stepping under an exponentially growing cooldown.
func (bw *BatchWorkspace) rejectAll(ln *batchLane) {
	ln.mult = 1
	ln.cool = adaptiveCooldown << ln.rejStreak
	if ln.cool > 64*adaptiveCooldown {
		ln.cool = 64 * adaptiveCooldown
	}
	ln.rejStreak++
	ln.rejPending = true
	ln.histN, ln.trustLeft = 0, 0
	bw.baseStepPrep(ln, vFallthrough)
}

// finish seals a lane's result.
func (bw *BatchWorkspace) finish(ln *batchLane) {
	ln.res.Steps = ln.stats
	ln.res.Steps.NewtonIters = ln.newtIters
	ln.done = true
	ln.pending = false
}

// fail seals a lane with a simulation error.
func (bw *BatchWorkspace) fail(ln *batchLane, err error) {
	ln.err = err
	bw.finish(ln)
}

// postSolve advances lane l's state machine after a kernel call resolved its
// pending request (ln.conv / ln.solveErr), mirroring the corresponding
// scalar control flow step for step.
func (bw *BatchWorkspace) postSolve(l int, probe BatchProbe) {
	ln := &bw.lanes[l]
	ln.pending = false
	switch ln.kind {
	case kBase:
		if ln.solveErr != nil {
			bw.fail(ln, ln.solveErr)
			return
		}
		ln.stats.Cells++
		ln.stats.Solves++
		if ln.variant == vFixed {
			bw.sampleFixed(l, probe)
			return
		}
		ln.tGrid = ln.t // tGrid + base, in the fixed path's own float arithmetic
		ln.prevValid = false
		ln.histN, ln.trustLeft = 0, 0
		if ln.variant == vNormal {
			bw.afterNormalBase(ln)
		}
		bw.sample(l, 1, probe)

	case kCoarseFull:
		if ln.solveErr != nil {
			if !errors.Is(ln.solveErr, ErrNoConverge) {
				bw.fail(ln, ln.solveErr)
				return
			}
			bw.retryHalved(ln)
			return
		}
		ln.stats.Solves++
		copy(ln.vFull, ln.v)
		if bw.trustedAccept(ln, ln.m) {
			bw.accept(ln, ln.m, 1)
			bw.sample(l, ln.m, probe)
			return
		}
		// Half-step pair from the same starting state.
		bw.loadState(ln)
		bw.setDtLane(ln, ln.h/2)
		ln.t = ln.tGrid
		ln.kind = kCoarseHalf1
		ln.reqT, ln.reqDt = ln.tGrid, ln.h/2
		ln.pending = true

	case kCoarseHalf1:
		if ln.solveErr != nil {
			if !errors.Is(ln.solveErr, ErrNoConverge) {
				bw.fail(ln, ln.solveErr)
				return
			}
			bw.retryHalved(ln)
			return
		}
		ln.stats.Solves++
		ln.kind = kCoarseHalf2
		ln.reqT, ln.reqDt = ln.t, ln.h/2
		ln.pending = true

	case kCoarseHalf2:
		if ln.solveErr != nil {
			if !errors.Is(ln.solveErr, ErrNoConverge) {
				bw.fail(ln, ln.solveErr)
				return
			}
			bw.retryHalved(ln)
			return
		}
		ln.stats.Solves++
		bw.finishPair(l, probe)
	}
}

// afterNormalBase mirrors the post-baseStep half of adaptiveStepper.step's
// mult==1 path: quiescence delta, rejection-gate calibration and aging,
// cooldown, and the decision to attempt coarsening.
func (bw *BatchWorkspace) afterNormalBase(ln *batchLane) {
	delta := 0.0
	for i, v := range ln.v {
		if d := abs(v - ln.vOld[i]); d > delta {
			delta = d
		}
	}
	if ln.rejPending {
		ln.rejPending = false
		if ln.rejLTE > 0 {
			ln.rejGate = delta * ln.tol / ln.rejLTE * 0.8
			ln.rejGateAge = 8 * adaptiveCooldown
		}
	}
	if ln.rejGate > 0 {
		if ln.rejGateAge--; ln.rejGateAge <= 0 {
			ln.rejGate = 0
		}
	}
	if ln.cool > 0 {
		ln.cool--
		return
	}
	if delta < ln.activity && ln.maxMult >= minCoarse &&
		(ln.rejGate == 0 || delta < ln.rejGate) {
		ln.mult = minCoarse
	}
}

// finishPair mirrors coarseStep's pair-acceptance tail: the per-node RMS
// LTE test, the decay calibration, the base-grid blend, and escalation.
func (bw *BatchWorkspace) finishPair(l int, probe BatchProbe) {
	ln := &bw.lanes[l]
	m := ln.m
	sum := 0.0
	for i, v := range ln.v {
		d := v - ln.vFull[i]
		sum += d * d
	}
	lte := math.Sqrt(sum / float64(len(ln.v)))
	if lte > ln.tol {
		bw.loadState(ln)
		ln.stats.Rejected++
		if m == minCoarse {
			ln.rejLTE = lte
		}
		m /= 2
		if m >= minCoarse {
			bw.beginAttempt(ln, m)
			return
		}
		bw.rejectAll(ln)
		return
	}
	if ln.histM == m && ln.pairLTE > 0 && ln.pairAge > 0 && lte > 0 {
		ln.decayRate = math.Pow(lte/ln.pairLTE, 1/float64(ln.pairAge))
		if ln.decayRate > 1 {
			ln.decayRate = 1
		} else if ln.decayRate < 0.5 {
			ln.decayRate = 0.5
		}
	} else {
		ln.decayRate = 1
	}
	ln.pairLTE, ln.pairAge, ln.decayAccum = lte, 0, 1
	ln.alpha = blendAlpha(m, ln.decayRate)
	for i, n := range bw.rs.nodes {
		vh, vf := ln.v[n-1], ln.vFull[n-1]
		ln.errC[n-1] = vh - vf
		ext := vh + ln.alpha*(vh-vf)
		ln.v[n-1] = ext
		ln.xPrev[i] = ext
	}
	ln.trustLeft = trustedSteps
	ln.rejStreak = 0
	ln.rejGate = 0
	bw.accept(ln, m, 3)
	if lte <= ln.tol/4 && 2*m <= ln.maxMult {
		ln.mult = 2 * m
	}
	bw.sample(l, m, probe)
}

// trustedAccept mirrors adaptiveStepper.trustedAccept for one lane.
func (bw *BatchWorkspace) trustedAccept(ln *batchLane, m int) bool {
	if ln.trustLeft <= 0 || ln.histM != m || ln.histN < 2 {
		return false
	}
	ln.decayAccum *= ln.decayRate
	f := (1 + ln.alpha) * ln.decayAccum
	for _, n := range bw.rs.nodes {
		ext := ln.v[n-1] + f*ln.errC[n-1]
		if d := abs(ext - (2*ln.end1[n-1] - ln.end2[n-1])); d > 4*ln.tol {
			return false
		}
	}
	for i, n := range bw.rs.nodes {
		ext := ln.v[n-1] + f*ln.errC[n-1]
		ln.v[n-1] = ext
		ln.xPrev[i] = ext
	}
	ln.trustLeft--
	return true
}

// accept mirrors adaptiveStepper.accept: stats, the rewind snapshot, the
// endpoint history, and the replayed grid clock.
func (bw *BatchWorkspace) accept(ln *batchLane, m, solves int) {
	ln.stats.Cells += m
	ln.stats.CoarseCells += m
	ln.stats.CoarseSolves += solves
	ln.prevValid, ln.prevCells, ln.prevTGrid = true, m, ln.tGrid
	ln.pairAge++
	for i := 0; i < m; i++ {
		ln.tGrid += ln.base
	}
	ln.t = ln.tGrid
	ln.mult = m

	if ln.histM == m {
		ln.end1, ln.end2 = ln.end2, ln.end1
		ln.histN++
	} else {
		ln.histM, ln.histN = m, 1
	}
	copy(ln.end1, ln.v)
	if ln.histN > 2 {
		ln.histN = 2
	}
}

// rewind mirrors adaptiveStepper.rewind.
func (bw *BatchWorkspace) rewind(ln *batchLane) {
	if !ln.prevValid {
		return
	}
	bw.loadState(ln)
	ln.tGrid = ln.prevTGrid
	ln.t = ln.tGrid
	ln.forced = ln.prevCells
	ln.mult = 1
	ln.cool = adaptiveCooldown
	ln.prevValid = false
	ln.histN, ln.trustLeft = 0, 0
	ln.stats.Cells -= ln.prevCells
	ln.stats.CoarseCells -= ln.prevCells
	ln.stats.Rejected++
}

// sample mirrors the adaptive measurement block of
// measureActivationAdaptive for one accepted step of m cells, then issues
// the lane's next request (or finishes it).
func (bw *BatchWorkspace) sample(l, m int, probe BatchProbe) {
	ln := &bw.lanes[l]
	ns := 1e-9
	tNS := ln.tGrid / ns
	vbl := ln.v[bw.nodes.bls-1]
	vcell := ln.v[bw.nodes.cellC-1]
	if m > 1 {
		crossedRead := !ln.res.Reliable && vbl >= ln.vth
		crossedRestore := ln.dipped && !ln.res.Restored && vcell >= ln.target && vcell > ln.minCell+0.01
		if crossedRead || crossedRestore {
			bw.rewind(ln)
			bw.prepare(l, probe)
			return
		}
	}
	if probe != nil {
		probe(l, tNS, vbl, vcell)
	}
	if !ln.res.Reliable && vbl >= ln.vth {
		ln.res.Reliable = true
		ln.res.TRCDminNS = tNS
	}
	if vcell < ln.minCell {
		ln.minCell = vcell
		if vcell < ln.vcell0-0.02 {
			ln.dipped = true
		}
	}
	if ln.dipped && !ln.res.Restored && vcell >= ln.target && vcell > ln.minCell+0.01 {
		ln.res.Restored = true
		ln.res.TRASminNS = tNS
	}
	ln.res.FinalCellV = vcell
	if ln.res.Reliable && ln.res.Restored {
		bw.finish(ln)
		return
	}
	bw.prepare(l, probe)
}

// sampleFixed mirrors the fixed-grid measurement block of measureActivation.
func (bw *BatchWorkspace) sampleFixed(l int, probe BatchProbe) {
	ln := &bw.lanes[l]
	ns := 1e-9
	tNS := ln.t / ns
	vbl := ln.v[bw.nodes.bls-1]
	vcell := ln.v[bw.nodes.cellC-1]
	if probe != nil {
		probe(l, tNS, vbl, vcell)
	}
	if !ln.res.Reliable && vbl >= ln.vth {
		ln.res.Reliable = true
		ln.res.TRCDminNS = tNS
	}
	if vcell < ln.minCell {
		ln.minCell = vcell
		if vcell < ln.vcell0-0.02 {
			ln.dipped = true
		}
	}
	if ln.dipped && !ln.res.Restored && vcell >= ln.target && vcell > ln.minCell+0.01 {
		ln.res.Restored = true
		ln.res.TRASminNS = tNS
	}
	ln.res.FinalCellV = vcell
	if ln.res.Reliable && ln.res.Restored {
		bw.finish(ln)
		return
	}
	bw.prepare(l, probe)
}

// stepGroup is the batched kernel: one backward-Euler step from t to t+dt
// for every lane in sel. The driven-source schedule is evaluated once; the
// capacitor companion walk, predictor, Newton assembly, LU, and damped
// update run per lane over its contiguous slabs, in exactly the scalar
// stepReduced's operation order, so each lane's floats are bit-identical to
// the scalar engine. Lanes converge (or fail) independently; a lane that
// converges early drops out of later iterations while the rest continue.
//
//detlint:hotpath witness=TestBatchStepAllocsFree
func (bw *BatchWorkspace) stepGroup(sel []int, t, dt float64) {
	r := bw.rs
	ku := r.ku
	tNext := t + dt
	for _, d := range r.driven {
		bw.vdrv[d.node-1] = d.sign * d.wave.At(tNext)
	}

	// Per-step pass, per lane: driven-conductance RHS terms and capacitor
	// history currents.
	for _, l := range sel {
		ln := &bw.lanes[l]
		ln.conv, ln.solveErr = false, nil
		for i := range ln.zStep {
			ln.zStep[i] = 0
		}
		for s, e := range r.gDriven {
			ln.zStep[e.row] += ln.gdG[s] * bw.vdrv[e.node-1]
		}
		for ci := range ln.capF {
			pl := r.capPlans[ci]
			geq := ln.capF[ci] / dt
			var va, vb float64
			if pl.na >= 0 {
				va = ln.v[pl.na]
			}
			if pl.nb >= 0 {
				vb = ln.v[pl.nb]
			}
			ieq := geq * (va - vb)
			if pl.ra >= 0 {
				ln.zStep[pl.ra] += ieq
			}
			if pl.rb >= 0 {
				ln.zStep[pl.rb] -= ieq
			}
		}
		// Newton initial guess (see stepReduced): slope-scaled extrapolation,
		// with the equal-step case kept on the literal 2*x-y form.
		if ln.steps >= 2 {
			if dt == ln.dtLast {
				for i := range ln.newt {
					ln.newt[i] = 2*ln.xPrev[i] - ln.xPrev2[i]
				}
			} else {
				ratio := dt / ln.dtLast
				for i := range ln.newt {
					ln.newt[i] = ln.xPrev[i] + ratio*(ln.xPrev[i]-ln.xPrev2[i])
				}
			}
		} else {
			copy(ln.newt, ln.xPrev)
		}
	}

	remaining := len(sel)
	for iter := 0; iter < newtonMaxIters && remaining > 0; iter++ {
		for _, l := range sel {
			ln := &bw.lanes[l]
			if ln.conv || ln.solveErr != nil {
				continue
			}
			// The cell fast path runs the whole iteration — assembly,
			// solve, damped update — in stack arrays (see stepReduced); a
			// declined iteration is redone through the generic path,
			// bit-identically.
			var maxDelta float64
			ok := false
			if r.cell6 {
				maxDelta, ok = cell6Iter(ln.gStatic, ln.zStep, ln.newt, bw.vdrv, r.mosPlans, ln.mosPtr)
			}
			if !ok {
				if err := bw.solveGenericLane(ln, ku); err != nil {
					ln.solveErr = fmt.Errorf("t=%.3gs: %w", tNext, err) //detlint:ignore hotalloc error path, never taken by a converging run
					remaining--
					continue
				}
				// ln.z now holds the solution. Keep this update loop in
				// lockstep with the fused one at the end of cell6Iter.
				for i := 0; i < ku; i++ {
					d := ln.z[i] - ln.newt[i]
					if abs(d) > maxDelta {
						maxDelta = abs(d)
					}
					if abs(d) > newtonMaxDelta {
						if d > 0 {
							d = newtonMaxDelta
						} else {
							d = -newtonMaxDelta
						}
					}
					ln.newt[i] += d
				}
			}
			if maxDelta < newtonTol {
				ln.newtIters += iter + 1
				ln.xPrev, ln.xPrev2 = ln.xPrev2, ln.xPrev
				copy(ln.xPrev, ln.newt)
				ln.steps++
				ln.dtLast = dt
				for i, n := range r.nodes {
					ln.v[n-1] = ln.newt[i]
				}
				for _, d := range r.driven {
					ln.v[d.node-1] = bw.vdrv[d.node-1]
				}
				ln.t = tNext
				ln.conv = true
				remaining--
			}
		}
	}
	for _, l := range sel {
		ln := &bw.lanes[l]
		if !ln.conv && ln.solveErr == nil {
			ln.newtIters += newtonMaxIters
			ln.solveErr = fmt.Errorf("t=%.3gs: %w", tNext, ErrNoConverge) //detlint:ignore hotalloc error path, never taken by a converging run
		}
	}
}

// solveGenericLane performs one copy-stamp-solve Newton iteration for one
// lane on its heap workspace, mirroring reduced.solveGeneric: the redo path
// when cell6Iter declines an iteration, and the only form for non-cell
// topologies.
func (bw *BatchWorkspace) solveGenericLane(ln *batchLane, ku int) error {
	copy(ln.a, ln.gStatic)
	copy(ln.z, ln.zStep)
	for mi := range bw.ckt.mosfets {
		bw.stampMOSLane(ln, mi)
	}
	return solveDense(ln.a, ln.z, ku)
}

// stampMOSLane mirrors reduced.stampMOSAnalytic for one lane: the shared
// terminal-routing plan with the lane's own device parameters and iterate.
// The add order and float operations match the scalar stamp exactly.
func (bw *BatchWorkspace) stampMOSLane(ln *batchLane, mi int) {
	r := bw.rs
	pl := r.mosPlans[mi]
	var vd, vg, vs float64
	if pl.rd >= 0 {
		vd = ln.newt[pl.rd]
	} else if pl.dd >= 0 {
		vd = bw.vdrv[pl.dd]
	}
	if pl.rg >= 0 {
		vg = ln.newt[pl.rg]
	} else if pl.dg >= 0 {
		vg = bw.vdrv[pl.dg]
	}
	if pl.rs >= 0 {
		vs = ln.newt[pl.rs]
	} else if pl.ds >= 0 {
		vs = bw.vdrv[pl.ds]
	}
	id, gdd, gdg, gds := mosStamp(&ln.mos[mi], vd, vg, vs)
	ieq := id - gdd*vd - gdg*vg - gds*vs

	ku := r.ku
	if rd := pl.rd; rd >= 0 {
		row := rd * ku
		ln.a[row+rd] += gdd
		if pl.rg >= 0 {
			ln.a[row+pl.rg] += gdg
		} else if pl.dg >= 0 {
			ln.z[rd] -= gdg * bw.vdrv[pl.dg]
		}
		if pl.rs >= 0 {
			ln.a[row+pl.rs] += gds
		} else if pl.ds >= 0 {
			ln.z[rd] -= gds * bw.vdrv[pl.ds]
		}
		ln.z[rd] -= ieq
	}
	if rs := pl.rs; rs >= 0 {
		row := rs * ku
		if pl.rd >= 0 {
			ln.a[row+pl.rd] += -gdd
		} else if pl.dd >= 0 {
			ln.z[rs] -= -gdd * bw.vdrv[pl.dd]
		}
		if pl.rg >= 0 {
			ln.a[row+pl.rg] += -gdg
		} else if pl.dg >= 0 {
			ln.z[rs] -= -gdg * bw.vdrv[pl.dg]
		}
		ln.a[row+rs] += -gds
		ln.z[rs] += ieq
	}
}
