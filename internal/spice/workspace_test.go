package spice

import (
	"context"
	"reflect"
	"testing"

	"github.com/dramstudy/rhvpp/internal/rng"
)

// TestWorkspaceMatchesFreshSimulation pins the reuse path to the one-shot
// path: a Workspace re-stamped with each run's varied parameters must
// reproduce SimulateActivation bit for bit, including after prior runs have
// dirtied the solver state and across a VPP change mid-sequence.
func TestWorkspaceMatchesFreshSimulation(t *testing.T) {
	ws := NewWorkspace()
	root := rng.New(11).Derive("ws-test")
	vpps := []float64{2.5, 1.8, 2.2, 1.7, 2.5}
	for i, vpp := range vpps {
		p := Vary(DefaultCellParams(vpp), root.Derive("run", i), 0.05)

		var wsBL, wsCell, freshBL, freshCell []float64
		got, err := ws.Simulate(p, func(_, vbl, vcell float64) {
			wsBL = append(wsBL, vbl)
			wsCell = append(wsCell, vcell)
		})
		if err != nil {
			t.Fatalf("run %d (%.1fV): workspace: %v", i, vpp, err)
		}
		want, err := SimulateActivation(p, func(_, vbl, vcell float64) {
			freshBL = append(freshBL, vbl)
			freshCell = append(freshCell, vcell)
		})
		if err != nil {
			t.Fatalf("run %d (%.1fV): fresh: %v", i, vpp, err)
		}
		if got != want {
			t.Fatalf("run %d (%.1fV): results diverge:\nworkspace %+v\nfresh     %+v", i, vpp, got, want)
		}
		if len(wsBL) != len(freshBL) {
			t.Fatalf("run %d: trace lengths %d vs %d", i, len(wsBL), len(freshBL))
		}
		for j := range wsBL {
			if wsBL[j] != freshBL[j] || wsCell[j] != freshCell[j] {
				t.Fatalf("run %d: waveform deviates at sample %d: (%.17g, %.17g) vs (%.17g, %.17g)",
					i, j, wsBL[j], wsCell[j], freshBL[j], freshCell[j])
			}
		}
	}
}

// TestWorkspaceSimulateAllocs is the satellite acceptance check for
// workspace reuse: re-stamping varied parameters instead of rebuilding the
// MNA system per run must eliminate steady-state allocations, by orders of
// magnitude compared to the one-shot path.
func TestWorkspaceSimulateAllocs(t *testing.T) {
	ws := NewWorkspace()
	root := rng.New(3).Derive("ws-allocs")
	params := make([]CellParams, 8)
	for i := range params {
		params[i] = Vary(DefaultCellParams(2.1), root.Derive("run", i), 0.05)
	}
	if _, err := ws.Simulate(params[0], nil); err != nil { // build the netlist
		t.Fatal(err)
	}
	i := 0
	reused := testing.AllocsPerRun(6, func() {
		if _, err := ws.Simulate(params[i%len(params)], nil); err != nil {
			t.Fatal(err)
		}
		i++
	})
	fresh := testing.AllocsPerRun(6, func() {
		if _, err := SimulateActivation(params[0], nil); err != nil {
			t.Fatal(err)
		}
	})
	if reused > 4 {
		t.Errorf("reused workspace allocates %.0f objects per run, want ~0", reused)
	}
	if fresh < 20 {
		t.Fatalf("one-shot path allocates only %.0f objects — baseline assumption broken", fresh)
	}
	if reused >= fresh/10 {
		t.Errorf("workspace reuse dropped allocations to %.0f/run vs %.0f fresh: want >=10x reduction",
			reused, fresh)
	}
}

// TestRunMonteCarloSweepMatchesPerLevel pins the global run queue to the
// per-level campaigns it replaced: one sweep over all levels must equal
// running RunMonteCarlo level by level, at any worker count.
func TestRunMonteCarloSweepMatchesPerLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo is slow")
	}
	ctx := context.Background()
	vpps := []float64{2.5, 2.0, 1.7}
	cfg := MCConfig{Runs: 10, Seed: 77, Variation: 0.05}

	for _, jobs := range []int{1, 8} {
		c := cfg
		c.Jobs = jobs
		sweep, err := RunMonteCarloSweep(ctx, vpps, c)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(sweep) != len(vpps) {
			t.Fatalf("jobs=%d: %d results", jobs, len(sweep))
		}
		for li, vpp := range vpps {
			c1 := c
			c1.VPP = vpp
			single, err := RunMonteCarlo(ctx, c1)
			if err != nil {
				t.Fatalf("jobs=%d vpp=%v: %v", jobs, vpp, err)
			}
			if !reflect.DeepEqual(sweep[li], single) {
				t.Errorf("jobs=%d vpp=%v: sweep result diverges from per-level campaign:\n%+v\n%+v",
					jobs, vpp, sweep[li], single)
			}
		}
	}
}

// TestMCAggregationAllocsIndependentOfRuns is the memory-bound acceptance
// criterion at the campaign level: folding additional runs into an MCResult
// allocates nothing once the measurement grid is populated, so aggregate
// state is O(1) in the run count.
func TestMCAggregationAllocsIndependentOfRuns(t *testing.T) {
	// Synthesize outcomes on a fixed step grid, like the simulator produces.
	outs := make([]ActivationResult, 64)
	for i := range outs {
		outs[i] = ActivationResult{
			Reliable:  true,
			Restored:  i%3 != 0,
			TRCDminNS: 11.0 + float64(i%16)*0.025,
			TRASminNS: 30.0 + float64(i%16)*0.025,
		}
	}
	var r MCResult
	for _, out := range outs { // populate the distinct-value grid
		r.record(out, false)
	}
	i := 0
	if allocs := testing.AllocsPerRun(2000, func() {
		r.record(outs[i%len(outs)], false)
		i++
	}); allocs > 0 {
		t.Errorf("MCResult.record allocates %v per run on a populated grid, want 0", allocs)
	}
}
