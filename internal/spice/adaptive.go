package spice

import (
	"errors"
	"math"
)

// Adaptive stepping: error-controlled coarsening of the transient grid.
//
// The paper's waveforms (Figs. 8a/9a) are active for a few nanoseconds —
// wordline ramp, charge sharing, sense-amplifier latch — and then spend tens
// of nanoseconds in quiescent stretches (the post-latch settle, the
// restoration tail, and for unreliable runs the entire remaining horizon)
// where a 25 ps grid wildly oversamples the dynamics. The adaptive stepper
// integrates those stretches with coarse steps of 2^k base cells, validating
// every coarse step by step-doubling: the step is solved once at the full
// size h and again as two h/2 half-steps, and the difference between the two
// endpoints is the local-truncation-error estimate. A step whose estimate
// exceeds the tolerance (or whose Newton iteration fails to converge) is
// rewound and retried at half the size, down to the base grid.
//
// Three invariants make adaptive results interchangeable with fixed-grid
// results downstream:
//
//   - Every accepted step ends on the base 25 ps grid (coarse sizes are
//     whole multiples of the base step), and reported sample times come from
//     a grid clock that replays the fixed path's repeated dt addition — so a
//     crossing time reported at cell k is bit-identical to the fixed path's
//     time at cell k, and the exact-quantile multisets in internal/stats see
//     the same float keys either way.
//   - A threshold crossing detected at a coarse endpoint is never reported
//     from the coarse step: the measurement loop rewinds the step and
//     re-integrates the stretch cell by cell on the base grid, so crossings
//     are localized with full fixed-grid resolution.
//   - The accepted value of a coarse step is the pair blended onto the
//     base grid's own trajectory (see blendAlpha): the pair measures both
//     the local solution and the leading error term, and the blend keeps
//     the leading error equal to the fixed grid's own discretization bias
//     instead of zero. The golden tests pin the resulting waveforms to the
//     dense fixed-grid reference within AccuracyTolV and the quantized
//     crossings bit-for-bit.
type AdaptiveConfig struct {
	// Enabled turns on adaptive coarsening. The zero value keeps the
	// historical fixed-step integration, so hand-built CellParams are
	// unaffected; DefaultCellParams enables it with the defaults below.
	Enabled bool
	// LTETolV is the step-doubling error tolerance in volts: the maximum
	// node-voltage difference between a coarse step and its half-step pair
	// for the step to be accepted. 0 means DefaultLTETolV.
	LTETolV float64
	// MaxStepPS caps the coarse step size in picoseconds. 0 means
	// DefaultMaxStepPS. Values below four base steps (the smallest coarse
	// size that beats base stepping — see minCoarse) disable coarsening,
	// i.e. below 100 ps at the default 25 ps grid.
	MaxStepPS float64
	// ActivityTolV is the quiescence test: coarsening is attempted only
	// after a base step that moved no node by more than this. 0 means
	// DefaultActivityTolV.
	ActivityTolV float64
}

// Adaptive-stepping defaults. The tolerance keeps the accumulated deviation
// from the fixed grid within AccuracyTolV over the paper's horizons, which
// in turn keeps grid-quantized threshold crossings identical to fixed-grid
// crossings across the Fig. 8/9 sweep (pinned by tests).
const (
	// DefaultLTETolV is the per-step error tolerance (volts).
	DefaultLTETolV = 1e-6
	// DefaultMaxStepPS caps coarse steps at 64 base cells of the 25 ps grid.
	DefaultMaxStepPS = 1600
	// DefaultActivityTolV is the per-base-step quiescence threshold (volts).
	DefaultActivityTolV = 5e-4
	// AccuracyTolV is the documented accuracy contract of adaptive output:
	// every accepted sample lies within this of the dense fixed-grid
	// reference value at the same grid time (see TestAdaptiveMatchesReference;
	// the measured worst deviation across the sweep is ~1.2e-6 V at the
	// default tolerance, an ~8x margin).
	AccuracyTolV = 1e-5
	// adaptiveCooldown is how many base cells the stepper waits after a
	// fully rejected coarsening attempt before trying again.
	adaptiveCooldown = 16
	// trustedSteps is how many single-solve coarse steps may follow one
	// half-step-validated pair before the cache must be refreshed.
	trustedSteps = 6
	// minCoarse is the smallest coarse step in base cells: a validated pair
	// costs 3 solves, so 2-cell coarse steps would cost more than base
	// stepping.
	minCoarse = 4
)

// DefaultAdaptive returns the default error-controlled stepping
// configuration used by DefaultCellParams.
func DefaultAdaptive() AdaptiveConfig {
	return AdaptiveConfig{Enabled: true}
}

// tol resolves the LTE tolerance.
func (c AdaptiveConfig) tol() float64 {
	if c.LTETolV > 0 {
		return c.LTETolV
	}
	return DefaultLTETolV
}

// activity resolves the quiescence threshold.
func (c AdaptiveConfig) activity() float64 {
	if c.ActivityTolV > 0 {
		return c.ActivityTolV
	}
	return DefaultActivityTolV
}

// maxMult resolves the step-size cap to a power-of-two cell multiple.
func (c AdaptiveConfig) maxMult(basePS float64) int {
	limit := c.MaxStepPS
	if limit <= 0 {
		limit = DefaultMaxStepPS
	}
	m := 1
	for float64(2*m)*basePS <= limit {
		m *= 2
	}
	return m
}

// StepStats counts one activation's integration work, for the benchmark
// metrics and the step-reduction acceptance tests.
type StepStats struct {
	// Cells is how many base-grid cells the run covered.
	Cells int
	// Solves is how many implicit (Newton-converged) solves were performed,
	// including the half-step pairs and rejected trials. On the fixed grid
	// Solves == Cells.
	Solves int
	// CoarseCells / CoarseSolves cover only the accepted coarse steps: their
	// ratio is the step reduction achieved on the quiescent stretches.
	CoarseCells  int
	CoarseSolves int
	// Rejected counts coarse trials undone by the error estimate, a Newton
	// failure, or a measurement-loop rewind.
	Rejected int
	// NewtonIters is the total Newton iteration count across every solve of
	// the run, including rejected trials: the work the extrapolating
	// predictor is trying to shrink (see TestScaledPredictorIterations).
	NewtonIters int
}

// adaptiveScratch is the stepper's reusable allocation set, owned by the
// Transient so Workspace reuse stays allocation-free.
type adaptiveScratch struct {
	prev       *engineState
	vFull      []float64 // full-size trial endpoint, for the LTE comparison
	vOld       []float64 // pre-step voltages, for the quiescence test
	errC       []float64 // cached per-node (full - half) error term of the last pair
	end1, end2 []float64 // last two accepted coarse endpoints at the same size
}

// adaptiveStepper drives a Transient along the base grid with
// error-controlled coarse steps. It is constructed per measurement on the
// stack; all heap state lives in the Transient's adaptiveScratch.
type adaptiveStepper struct {
	tr       *Transient
	base     float64 // base step (seconds); every accepted step is a multiple
	horizon  float64 // integration end time (seconds)
	tol      float64 // accepted LTE bound (volts)
	activity float64 // quiescence threshold per base step (volts)
	maxMult  int     // coarse-step cap in base cells (power of two)

	mult      int // next coarse size to attempt (1 = base stepping)
	cool      int // base cells to wait before re-attempting coarsening
	rejStreak int // consecutive fully rejected attempts (backoff doubling)
	forced    int // cells left of a rewound stretch that must stay on base

	// Retry gate calibrated from the last fully rejected attempt: for the
	// relaxation modes that dominate quiescent stretches the step-doubling
	// error scales linearly with the per-cell delta, so the delta at which
	// the smallest coarse size will fit the tolerance is predictable from
	// the rejection's measured error.
	rejPending bool    // a rejection awaits the next base delta to calibrate
	rejLTE     float64 // error measured by the rejected minCoarse attempt
	rejGate    float64 // retry only once the base delta falls below this
	rejGateAge int     // cells the gate stays authoritative (regimes change)

	// Trusted-step state: after a half-step-validated pair, up to
	// trustedSteps coarse steps of the same size run on a single solve,
	// blending with the pair's cached error term under a predictor guard.
	// The cached term decays with the tail dynamics; the decay per step is
	// measured from consecutive pairs and applied geometrically.
	trustLeft  int
	histM      int     // size the endpoint history was recorded at
	histN      int     // valid endpoint-history entries (0..2)
	pairLTE    float64 // error estimate of the last accepted pair
	pairAge    int     // accepted steps since that pair
	decayRate  float64 // measured per-step decay of the error term
	decayAccum float64 // accumulated decay factor for the cached term
	alpha      float64 // blend coefficient of the last pair (see blendAlpha)

	// tGrid is the fixed-path clock: advanced by one repeated dt addition
	// per covered base cell, exactly as the fixed loop accumulates time.
	tGrid float64

	// Rewind state for the last accepted coarse step.
	prevValid bool
	prevCells int
	prevTGrid float64

	stats StepStats
}

// newAdaptiveStepper prepares the stepper (and the Transient's scratch) for
// one activation at the given parameters. The engine must be at t=0 on its
// base grid (freshly constructed or Reset).
func (tr *Transient) newAdaptiveStepper(cfg AdaptiveConfig, horizon float64) adaptiveStepper {
	if tr.ad == nil {
		tr.ad = &adaptiveScratch{
			prev:  tr.newState(),
			vFull: make([]float64, tr.nv),
			vOld:  make([]float64, tr.nv),
			errC:  make([]float64, tr.nv),
			end1:  make([]float64, tr.nv),
			end2:  make([]float64, tr.nv),
		}
	}
	return adaptiveStepper{
		tr:       tr,
		base:     tr.baseDt,
		horizon:  horizon,
		tol:      cfg.tol(),
		activity: cfg.activity(),
		maxMult:  cfg.maxMult(tr.baseDt / 1e-12),
		mult:     1,
	}
}

// step advances by one accepted step and returns how many base cells it
// covered. Errors are the engine's own (ErrNoConverge at base resolution,
// or a genuine solve failure).
func (st *adaptiveStepper) step() (int, error) {
	if st.forced > 0 {
		st.forced--
		return 1, st.baseStep()
	}
	if st.mult > 1 {
		return st.coarseStep()
	}
	if err := st.baseStep(); err != nil {
		return 0, err
	}
	// Attempt coarsening once the dynamics are quiescent: no node moved by
	// more than the activity threshold over the last base cell.
	delta := 0.0
	for i, v := range st.tr.v {
		if d := abs(v - st.tr.ad.vOld[i]); d > delta {
			delta = d
		}
	}
	if st.rejPending {
		st.rejPending = false
		if st.rejLTE > 0 {
			// The linear LTE-vs-delta relation only holds within one
			// dynamics regime, so the calibrated gate expires after a
			// while instead of suppressing retries forever.
			st.rejGate = delta * st.tol / st.rejLTE * 0.8
			st.rejGateAge = 8 * adaptiveCooldown
		}
	}
	if st.rejGate > 0 {
		if st.rejGateAge--; st.rejGateAge <= 0 {
			st.rejGate = 0
		}
	}
	if st.cool > 0 {
		st.cool--
		return 1, nil
	}
	if delta < st.activity && st.maxMult >= minCoarse &&
		(st.rejGate == 0 || delta < st.rejGate) {
		st.mult = minCoarse
	}
	return 1, nil
}

// baseStep advances one cell on the base grid, keeping the engine clock on
// the fixed path's repeated-addition times so source waveforms and reported
// crossings are evaluated at bit-identical instants.
func (st *adaptiveStepper) baseStep() error {
	tr := st.tr
	tr.setDt(st.base)
	tr.t = st.tGrid
	copy(tr.ad.vOld, tr.v)
	if err := tr.Step(); err != nil {
		return err
	}
	st.stats.Cells++
	st.stats.Solves++
	st.tGrid = tr.t // tGrid + base, in the fixed path's own float arithmetic
	st.prevValid = false
	// A base cell breaks the equal-spacing endpoint history the trusted
	// coarse steps predict from.
	st.histN, st.trustLeft = 0, 0
	return nil
}

// coarseStep attempts a step of st.mult base cells, halving on an error
// estimate over tolerance or a Newton failure, and falls back to a base
// step (with a cooldown) when every coarse size is rejected.
//
// Every attempt starts with one full-size solve. When the trusted-step
// window is open — a half-step-validated pair at this size happened
// recently and the endpoint history agrees with a linear prediction — that
// single solve is accepted directly, blended with the pair's cached error
// term: 1 solve per m cells. Otherwise the half-step pair runs too and the
// step is accepted only if the full-vs-half difference fits the tolerance:
// 3 solves per m cells, refreshing the cache.
func (st *adaptiveStepper) coarseStep() (int, error) {
	tr := st.tr
	m := st.mult
	// Never overshoot the horizon: coarsening past it would fabricate cells
	// the fixed loop does not integrate.
	for m >= minCoarse && st.tGrid+float64(m)*st.base >= st.horizon+st.base/2 {
		m /= 2
	}
	// The retry gate may only be calibrated from an LTE this episode
	// actually measured — not a stale value from an earlier regime (a
	// Newton-failure episode, or the near-horizon clamp, measures none).
	st.rejLTE = 0
	for m >= minCoarse {
		tr.save(tr.ad.prev)
		h := float64(m) * st.base

		// Full-size solve (both the trusted path's result and the pair
		// path's error-estimate operand).
		tr.setDt(h)
		tr.t = st.tGrid
		if err := tr.Step(); err != nil {
			if !errors.Is(err, ErrNoConverge) {
				return 0, err
			}
			tr.load(tr.ad.prev)
			st.stats.Rejected++
			m /= 2
			continue
		}
		st.stats.Solves++
		copy(tr.ad.vFull, tr.v)

		if st.trustedAccept(m) {
			st.accept(m, 1)
			return m, nil
		}

		// Half-step pair from the same starting state.
		tr.load(tr.ad.prev)
		tr.setDt(h / 2)
		tr.t = st.tGrid
		err := tr.Step()
		if err == nil {
			st.stats.Solves++
			if err = tr.Step(); err == nil {
				st.stats.Solves++
			}
		}
		if err != nil {
			if !errors.Is(err, ErrNoConverge) {
				return 0, err
			}
			tr.load(tr.ad.prev)
			st.stats.Rejected++
			m /= 2
			continue
		}

		// Local truncation error: full-step vs half-step endpoint, as an RMS
		// norm over the nodes. The historical max norm let one stiff node —
		// in this netlist the sense-amp internal node during rail ramps —
		// veto a coarse step whose error everywhere else was negligible; the
		// per-node RMS keeps single-node spikes from rejecting whole trials
		// while still bounding every node's error within sqrt(nv)*tol of the
		// blend's bias model (TestPerNodeLTEReducesRejections measures the
		// rejection drop, TestAdaptiveMatchesReference pins the accuracy).
		sum := 0.0
		for i, v := range tr.v {
			d := v - tr.ad.vFull[i]
			sum += d * d
		}
		lte := math.Sqrt(sum / float64(len(tr.v)))
		if lte > st.tol {
			tr.load(tr.ad.prev)
			st.stats.Rejected++
			if m == minCoarse {
				st.rejLTE = lte
			}
			m /= 2
			continue
		}

		// Accept the pair, extrapolated onto the BASE GRID's trajectory.
		// Backward Euler's error is first order: x(h) = x* + C*h. The pair
		// gives both x* (Richardson: 2*half - full) and the error constant
		// (C*h = 2*(full - half)) — but the accuracy oracle downstream is
		// the fixed 25 ps integration, which itself runs ahead of x* by its
		// own C*dt. Plain half-step acceptance lags that oracle by
		// C*(h/2 - dt) and full Richardson leads it by C*dt; either drift,
		// accumulated over a quiescent tail, is enough to shift a slow
		// restoration crossing by one grid cell. Blending the pair so the
		// leading error equals the base grid's own — x* + (C*h)/m — keeps
		// the adaptive trajectory on the fixed grid's discretization bias,
		// and grid-quantized crossings identical to fixed-grid integration
		// (pinned by TestAdaptiveCrossingsMatchFixedGrid). At m=2 the blend
		// reduces to the half-step pair, which IS base-grid stepping.
		// Calibrate the error term's decay from consecutive same-size
		// pairs: in a relaxing stretch the error constant shrinks
		// geometrically with the state's own relaxation, and the measured
		// per-span rate both ages the trusted-step cache and sharpens the
		// blend coefficient below.
		if st.histM == m && st.pairLTE > 0 && st.pairAge > 0 && lte > 0 {
			st.decayRate = math.Pow(lte/st.pairLTE, 1/float64(st.pairAge))
			if st.decayRate > 1 {
				st.decayRate = 1
			} else if st.decayRate < 0.5 {
				st.decayRate = 0.5
			}
		} else {
			st.decayRate = 1
		}
		st.pairLTE, st.pairAge, st.decayAccum = lte, 0, 1
		st.alpha = blendAlpha(m, st.decayRate)
		if r := tr.red; r != nil {
			for i, n := range r.nodes {
				vh, vf := tr.v[n-1], tr.ad.vFull[n-1]
				tr.ad.errC[n-1] = vh - vf // -C*h/2 per node, cached for trusted steps
				ext := vh + st.alpha*(vh-vf)
				tr.v[n-1] = ext
				r.xPrev[i] = ext
			}
		}
		st.trustLeft = trustedSteps
		st.rejStreak = 0
		st.rejGate = 0
		st.accept(m, 3)
		// Doubling the step quadruples the error, so escalate when the
		// observed error leaves the factor-4 margin.
		if lte <= st.tol/4 && 2*m <= st.maxMult {
			st.mult = 2 * m
		}
		return m, nil
	}
	// Every coarse size was rejected: integrate on the base grid and hold
	// off further attempts for a while — exponentially longer while the
	// dynamics keep rejecting, so active-but-smooth stretches (mid-sweep
	// latch settles) don't bleed wasted large-step solves.
	st.mult = 1
	st.cool = adaptiveCooldown << st.rejStreak
	if st.cool > 64*adaptiveCooldown {
		st.cool = 64 * adaptiveCooldown
	}
	st.rejStreak++
	st.rejPending = true
	st.histN, st.trustLeft = 0, 0
	if err := st.baseStep(); err != nil {
		return 0, err
	}
	return 1, nil
}

// trustedAccept decides whether the freshly solved full-size step can be
// accepted without its half-step validation, and if so applies the cached
// blend. It requires an open trust window at this size, two prior accepted
// endpoints at the same size (so a linear prediction exists), and the
// blended endpoint to agree with that prediction within the tolerance —
// the same smoothness the pair's error estimate would certify.
func (st *adaptiveStepper) trustedAccept(m int) bool {
	tr := st.tr
	r := tr.red
	if r == nil || st.trustLeft <= 0 || st.histM != m || st.histN < 2 {
		return false
	}
	// The pair path accepts half + alpha*(half-full); in terms of the
	// full-size endpoint this step solved, with the cached pair difference
	// D = half - full (aged by the measured per-span decay) standing in
	// for this step's own, that is full + (1+alpha)*D.
	st.decayAccum *= st.decayRate
	f := (1 + st.alpha) * st.decayAccum
	for _, n := range r.nodes {
		ext := tr.v[n-1] + f*tr.ad.errC[n-1]
		// The second difference of equally-spaced endpoints is ~4x the
		// pair's half-vs-full LTE estimate, so a pair-equivalent guard
		// compares it against 4*tol.
		if d := abs(ext - (2*tr.ad.end1[n-1] - tr.ad.end2[n-1])); d > 4*st.tol {
			return false
		}
	}
	for i, n := range r.nodes {
		ext := tr.v[n-1] + f*tr.ad.errC[n-1]
		tr.v[n-1] = ext
		r.xPrev[i] = ext
	}
	st.trustLeft--
	return true
}

// accept commits an accepted coarse step of m cells that consumed the given
// number of solves: stats, the rewind snapshot, the endpoint history for
// the trusted-step predictor, and the fixed-path grid clock (replayed as
// per-cell additions so later base steps and reported crossing times stay
// on bit-identical instants).
func (st *adaptiveStepper) accept(m, solves int) {
	st.stats.Cells += m
	st.stats.CoarseCells += m
	st.stats.CoarseSolves += solves
	st.prevValid, st.prevCells, st.prevTGrid = true, m, st.tGrid
	st.pairAge++
	for i := 0; i < m; i++ {
		st.tGrid += st.base
	}
	st.tr.t = st.tGrid
	st.mult = m

	if st.histM == m {
		st.ad().end1, st.ad().end2 = st.ad().end2, st.ad().end1
		st.histN++
	} else {
		st.histM, st.histN = m, 1
	}
	copy(st.ad().end1, st.tr.v)
	if st.histN > 2 {
		st.histN = 2
	}
}

// ad is shorthand for the Transient's adaptive scratch.
func (st *adaptiveStepper) ad() *adaptiveScratch { return st.tr.ad }

// blendAlpha returns the coefficient that maps an accepted pair onto the
// base grid's trajectory: ext = half + alpha*(half - full).
//
// Backward Euler applied to a relaxing mode y' = -y/tau multiplies y per
// step of size z*tau by B(z) = 1/(1+z). Over one span of m base cells the
// full step, the half-step pair, and the base grid reach B(x), B(x/2)^2 and
// B(x/m)^m respectively (x = span/tau), so the exact coefficient is
//
//	alpha = (B(x/m)^m - B(x/2)^2) / (B(x/2)^2 - B(x))
//
// whose x->0 limit is the curvature-only value 1-2/m. The mode's x is
// measured: rho, the per-span decay of the pair error term, equals the
// blended trajectory's own decay ~ B(x/m)^m, giving x = m*(rho^(-1/m)-1).
// Using the exact alpha instead of the limit removes the O(x) relative
// model error that otherwise accumulates ~3*tol of drift over a long tail
// — the margin that keeps grid-quantized crossings bit-identical.
func blendAlpha(m int, rho float64) float64 {
	limit := 1 - 2.0/float64(m)
	if rho >= 0.999999 || rho <= 0 {
		return limit
	}
	fm := float64(m)
	x := fm * (math.Pow(rho, -1/fm) - 1)
	bFull := 1 / (1 + x)
	bh := 1 / (1 + x/2)
	bHalf := bh * bh
	bBase := math.Pow(1+x/fm, -fm)
	den := bHalf - bFull
	if den == 0 {
		return limit
	}
	alpha := (bBase - bHalf) / den
	// The one-mode model can misbehave when rho is noisy; stay near the
	// analytic limit.
	if alpha < limit-0.5 || alpha > limit+0.5 {
		return limit
	}
	return alpha
}

// rewind retracts the last accepted coarse step and forces the stepper to
// re-integrate the same cells on the base grid. The measurement loop calls
// it when a threshold crossing lands inside a coarse step, so crossings are
// always localized with fixed-grid resolution.
func (st *adaptiveStepper) rewind() {
	if !st.prevValid {
		return
	}
	tr := st.tr
	tr.load(tr.ad.prev)
	st.tGrid = st.prevTGrid
	tr.t = st.tGrid
	st.forced = st.prevCells
	st.mult = 1
	st.cool = adaptiveCooldown
	st.prevValid = false
	st.histN, st.trustLeft = 0, 0
	// The retracted cells will be re-counted by the forced base steps; the
	// coarse solves stay counted as (wasted) work.
	st.stats.Cells -= st.prevCells
	st.stats.CoarseCells -= st.prevCells
	st.stats.Rejected++
}
