package spice

import (
	"context"
	"reflect"
	"testing"

	"github.com/dramstudy/rhvpp/internal/rng"
)

// batchTrace collects per-lane waveform samples for the bit-identity
// comparison against the scalar engine.
type batchTrace struct {
	t, bl, cell []float64
}

func (tr *batchTrace) scalarProbe() Probe {
	return func(tNS, vbl, vcell float64) {
		tr.t = append(tr.t, tNS)
		tr.bl = append(tr.bl, vbl)
		tr.cell = append(tr.cell, vcell)
	}
}

// TestBatchLanesMatchScalar is the tentpole's contract: every lane of a
// BatchWorkspace tile must reproduce the scalar Workspace bit for bit —
// the ActivationResult including the StepStats work counters, and every
// waveform sample — at K ∈ {1, 2, 4, 8}, across warm workspace reuse, for
// partial tiles, and for lanes that peel off (coarse-step rejections and
// crossing rewinds at low VPP diverge the lanes' schedules; mixed-VPP tiles
// additionally exercise the whole-lane scalar fallback, since the wordline
// waveform differs between lanes).
func TestBatchLanesMatchScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("full activation sweep is slow")
	}
	root := rng.New(41).Derive("batch-prop")
	// Tile specs: same-VPP tiles run in genuine lockstep (2.0 V rejects
	// coarse trials, 1.7 V adds long unreliable tails and rewinds); the
	// mixed tile forces the waveform-compatibility fallback for lanes 1+.
	tiles := [][]float64{
		{2.5, 2.5, 2.5, 2.5, 2.5, 2.5, 2.5, 2.5},
		{2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0},
		{1.7, 1.7, 1.7, 1.7, 1.7, 1.7, 1.7, 1.7},
		{2.2, 2.2, 2.2},           // partial tile
		{2.5, 1.7, 2.0, 2.5, 2.2}, // mixed: lanes 1+ fall back to scalar
	}
	for _, k := range []int{1, 2, 4, 8} {
		bw := NewBatchWorkspace(k)
		scalar := NewWorkspace()
		for ti, vpps := range tiles {
			ps := make([]CellParams, 0, k)
			for i, vpp := range vpps {
				if i == k {
					break
				}
				ps = append(ps, Vary(DefaultCellParams(vpp), root.Derive("tile", ti).Derive("run", i), 0.05))
			}
			got := make([]batchTrace, len(ps))
			outs, errs := bw.Simulate(ps, func(lane int, tNS, vbl, vcell float64) {
				got[lane].t = append(got[lane].t, tNS)
				got[lane].bl = append(got[lane].bl, vbl)
				got[lane].cell = append(got[lane].cell, vcell)
			})
			for l := range ps {
				var want batchTrace
				wout, werr := scalar.Simulate(ps[l], want.scalarProbe())
				if (errs[l] == nil) != (werr == nil) {
					t.Fatalf("K=%d tile %d lane %d: error mismatch: %v vs %v", k, ti, l, errs[l], werr)
				}
				if werr != nil {
					if errs[l].Error() != werr.Error() {
						t.Fatalf("K=%d tile %d lane %d: error text %q vs %q", k, ti, l, errs[l], werr)
					}
					continue
				}
				if outs[l] != wout {
					t.Fatalf("K=%d tile %d lane %d (%.1fV): result diverges:\nbatch  %+v\nscalar %+v",
						k, ti, l, ps[l].VPP, outs[l], wout)
				}
				if len(got[l].t) != len(want.t) {
					t.Fatalf("K=%d tile %d lane %d: %d samples vs %d", k, ti, l, len(got[l].t), len(want.t))
				}
				for j := range want.t {
					if got[l].t[j] != want.t[j] || got[l].bl[j] != want.bl[j] || got[l].cell[j] != want.cell[j] {
						t.Fatalf("K=%d tile %d lane %d: sample %d deviates: (%.17g, %.17g, %.17g) vs (%.17g, %.17g, %.17g)",
							k, ti, l, j,
							got[l].t[j], got[l].bl[j], got[l].cell[j],
							want.t[j], want.bl[j], want.cell[j])
					}
				}
			}
		}
	}
}

// TestBatchFixedGridMatchesScalar covers the non-adaptive lane path: with
// coarsening disabled every lane integrates the full 25 ps grid, and the
// batched results must still be bit-identical to the scalar engine.
func TestBatchFixedGridMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-grid activations are slow")
	}
	root := rng.New(42).Derive("batch-fixed")
	bw := NewBatchWorkspace(4)
	scalar := NewWorkspace()
	ps := make([]CellParams, 4)
	for i := range ps {
		ps[i] = Vary(DefaultCellParams(2.2), root.Derive("run", i), 0.05)
		ps[i].Adaptive = AdaptiveConfig{}
	}
	outs, errs := bw.Simulate(ps, nil)
	for l := range ps {
		wout, werr := scalar.Simulate(ps[l], nil)
		if errs[l] != nil || werr != nil {
			t.Fatalf("lane %d: errors %v / %v", l, errs[l], werr)
		}
		if outs[l] != wout {
			t.Fatalf("lane %d: fixed-grid result diverges:\nbatch  %+v\nscalar %+v", l, outs[l], wout)
		}
		if outs[l].Steps.Cells != outs[l].Steps.Solves {
			t.Fatalf("lane %d: fixed grid must solve every cell: %+v", l, outs[l].Steps)
		}
	}
}

// TestBatchStepAllocsFree is the hotpath witness for the batched kernel: a
// warm BatchWorkspace advancing a full lockstep tile — every solve group,
// Newton iteration, and lane state transition — must allocate nothing.
func TestBatchStepAllocsFree(t *testing.T) {
	root := rng.New(7).Derive("batch-allocs")
	const k = 8
	bw := NewBatchWorkspace(k)
	tiles := make([][]CellParams, 4)
	for ti := range tiles {
		tiles[ti] = make([]CellParams, k)
		for i := range tiles[ti] {
			tiles[ti][i] = Vary(DefaultCellParams(2.2), root.Derive("tile", ti).Derive("run", i), 0.05)
		}
	}
	if _, errs := bw.Simulate(tiles[0], nil); errs[0] != nil { // build the slabs
		t.Fatal(errs[0])
	}
	i := 0
	if allocs := testing.AllocsPerRun(4, func() {
		_, errs := bw.Simulate(tiles[i%len(tiles)], nil)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		i++
	}); allocs > 0 {
		t.Errorf("warm batched tile allocates %.0f objects, want 0", allocs)
	}
}

// TestMonteCarloBatchWidthInvariance pins the campaign-level determinism
// contract: RunMonteCarloSweep must produce identical aggregates at every
// BatchWidth (scalar, partial tiles, the default, the cap) and worker
// count, because each lane is bit-identical to the scalar engine and tiles
// unfold into the accumulators in (level, run) order.
func TestMonteCarloBatchWidthInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo is slow")
	}
	ctx := context.Background()
	vpps := []float64{2.5, 2.0}
	base := MCConfig{Runs: 10, Seed: 99, Variation: 0.05, Jobs: 1, BatchWidth: 1}
	want, err := RunMonteCarloSweep(ctx, vpps, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{0, 3, 8, MaxBatchWidth} {
		for _, jobs := range []int{1, 4} {
			cfg := base
			cfg.BatchWidth = width
			cfg.Jobs = jobs
			got, err := RunMonteCarloSweep(ctx, vpps, cfg)
			if err != nil {
				t.Fatalf("width=%d jobs=%d: %v", width, jobs, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("width=%d jobs=%d: campaign diverges from scalar path:\n%+v\n%+v",
					width, jobs, got, want)
			}
		}
	}
}
