package spice

import "testing"

// The five campaign VPP levels and the integration-work pins of the nominal
// (unvaried) Table 2 activation at each. These are exact-count regressions:
// the engines are deterministic, so any drift means the float-op sequence
// changed, which is the event the pins exist to catch.
var steppingPins = []struct {
	vpp         float64
	solves      int
	rejected    int
	newtonIters int
}{
	{1.7, 1339, 3, 2455},
	{2.0, 1291, 4, 2274},
	{2.2, 953, 2, 1814},
	{2.5, 752, 1, 1483},
	{2.8, 683, 2, 1347},
}

// TestScaledPredictorIterations pins the Newton iteration totals produced by
// the slope-scaled extrapolating predictor. Before the predictor scaled the
// extrapolation slope by dt/dtLast across setDt boundaries, the same runs
// took 2460/2277/1814/1483/1347 iterations (VPP 1.7..2.8): the scaled guess
// wins exactly where step sizes change (the low-VPP runs, which reject and
// resize most) and is bit-identical to 2*x-y elsewhere — equal step sizes
// keep the literal 2*xPrev-xPrev2 form, so fixed-grid histories are
// untouched.
func TestScaledPredictorIterations(t *testing.T) {
	oldIters := []int{2460, 2277, 1814, 1483, 1347}
	for i, pin := range steppingPins {
		res, err := SimulateActivation(DefaultCellParams(pin.vpp), nil)
		if err != nil {
			t.Fatalf("vpp=%.1f: %v", pin.vpp, err)
		}
		if got := res.Steps.NewtonIters; got != pin.newtonIters {
			t.Errorf("vpp=%.1f: NewtonIters = %d, want %d", pin.vpp, got, pin.newtonIters)
		}
		if got := res.Steps.NewtonIters; got > oldIters[i] {
			t.Errorf("vpp=%.1f: NewtonIters = %d exceeds the unscaled predictor's %d",
				pin.vpp, got, oldIters[i])
		}
	}
}

// TestPerNodeLTEReducesRejections pins the solve and rejection counts under
// the per-node RMS LTE norm. The previous max-norm estimate let a single
// fast-moving node veto an otherwise-accurate coarse step: across these five
// runs it rejected 14 coarse trials (per-VPP 3/6/2/1/2) and spent
// 1321/1495/953/752/683 solves. The RMS norm rejects 12 and never spends
// more solves at any level; the largest win is mid-transition VPP 2.0, where
// bitline ringing dominates the max norm but averages out across nodes.
func TestPerNodeLTEReducesRejections(t *testing.T) {
	const oldTotalRejected = 14
	total := 0
	for _, pin := range steppingPins {
		res, err := SimulateActivation(DefaultCellParams(pin.vpp), nil)
		if err != nil {
			t.Fatalf("vpp=%.1f: %v", pin.vpp, err)
		}
		if got := res.Steps.Solves; got != pin.solves {
			t.Errorf("vpp=%.1f: Solves = %d, want %d", pin.vpp, got, pin.solves)
		}
		if got := res.Steps.Rejected; got != pin.rejected {
			t.Errorf("vpp=%.1f: Rejected = %d, want %d", pin.vpp, got, pin.rejected)
		}
		total += res.Steps.Rejected
	}
	if total >= oldTotalRejected {
		t.Errorf("total rejected = %d, want fewer than the max-norm estimator's %d",
			total, oldTotalRejected)
	}
}
