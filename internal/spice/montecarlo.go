package spice

import (
	"fmt"

	"github.com/dramstudy/rhvpp/internal/rng"
)

// MCResult aggregates a Monte-Carlo campaign at one VPP level.
type MCResult struct {
	VPP float64
	// TRCDminNS and TRASminNS hold the per-run measurements of runs whose
	// activation completed reliably.
	TRCDminNS []float64
	TRASminNS []float64
	// Unreliable counts runs whose bitline never crossed the read
	// threshold (e.g. the sense amplifier latched the wrong way under
	// mismatch at very low VPP).
	Unreliable int
	// Unrestored counts runs whose charge restoration did not complete
	// within the horizon.
	Unrestored int
	Runs       int
}

// WorstTRCDminNS returns the largest observed reliable tRCDmin (the
// worst-case line of Fig. 8b), or 0 when no run was reliable.
func (r MCResult) WorstTRCDminNS() float64 {
	worst := 0.0
	for _, v := range r.TRCDminNS {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// MeanTRCDminNS returns the mean reliable tRCDmin, or 0 when none.
func (r MCResult) MeanTRCDminNS() float64 {
	if len(r.TRCDminNS) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.TRCDminNS {
		sum += v
	}
	return sum / float64(len(r.TRCDminNS))
}

// ReliableFraction is the fraction of runs with a reliable activation.
func (r MCResult) ReliableFraction() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(len(r.TRCDminNS)) / float64(r.Runs)
}

// Vary applies a uniform relative variation of up to ±frac to the
// process-dependent parameters of p, drawing from the stream. This is the
// paper's ±5% Monte-Carlo component variation (§4.5).
func Vary(p CellParams, s *rng.Stream, frac float64) CellParams {
	u := func(v float64) float64 { return v * (1 + s.Uniform(-frac, frac)) }
	p.CellC = u(p.CellC)
	p.CellR = u(p.CellR)
	p.BLC = u(p.BLC)
	p.BLR = u(p.BLR)
	p.Access.W = u(p.Access.W)
	p.Access.L = u(p.Access.L)
	p.Access.VT0 = u(p.Access.VT0)
	p.Access.KP = u(p.Access.KP)
	for _, m := range []*MOSParams{&p.SAN1, &p.SAN2, &p.SAP1, &p.SAP2} {
		m.W = u(m.W)
		m.L = u(m.L)
		m.VT0 = u(m.VT0)
		m.KP = u(m.KP)
	}
	return p
}

// MonteCarlo runs the activation simulation `runs` times at the given VPP
// with ±variation parameter spread, mirroring the paper's 10K-run campaign
// per voltage level.
func MonteCarlo(vpp float64, runs int, seed uint64, variation float64) (MCResult, error) {
	res := MCResult{VPP: vpp, Runs: runs}
	root := rng.New(seed).Derive("spice-mc", fmt.Sprintf("%.2f", vpp))
	for i := 0; i < runs; i++ {
		p := Vary(DefaultCellParams(vpp), root.Derive("run", i), variation)
		out, err := SimulateActivation(p, nil)
		if err != nil {
			return res, fmt.Errorf("run %d: %w", i, err)
		}
		if out.Reliable {
			res.TRCDminNS = append(res.TRCDminNS, out.TRCDminNS)
		} else {
			res.Unreliable++
		}
		if out.Restored {
			res.TRASminNS = append(res.TRASminNS, out.TRASminNS)
		} else {
			res.Unrestored++
		}
	}
	return res, nil
}
