package spice

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/dramstudy/rhvpp/internal/pool"
	"github.com/dramstudy/rhvpp/internal/rng"
	"github.com/dramstudy/rhvpp/internal/stats"
)

// MCResult aggregates a Monte-Carlo campaign at one VPP level. The
// distributions are streaming accumulators, not sample slices: each run
// folds into them as it completes, so campaign memory is independent of the
// run count (the measurements land on the fixed integration-step grid, so
// the exact-quantile multiset is bounded by the grid, not by Runs).
type MCResult struct {
	VPP float64
	// TRCDmin and TRASmin summarize the per-run measurements of runs whose
	// activation completed reliably / whose restoration completed: mean,
	// extremes, and exact percentiles of the tRCDmin / tRASmin populations
	// of Figs. 8b and 9b.
	TRCDmin stats.Dist
	TRASmin stats.Dist
	// Unreliable counts runs whose bitline never crossed the read
	// threshold (e.g. the sense amplifier latched the wrong way under
	// mismatch at very low VPP).
	Unreliable int
	// Unrestored counts runs whose charge restoration did not complete
	// within the horizon.
	Unrestored int
	// NoConverge counts runs whose Newton iteration failed to converge.
	// Such runs yield no trustworthy measurement, so they are also counted
	// as Unreliable and Unrestored — exactly the low-VPP regime the Fig.
	// 8b/9b distributions care about, which is why a diverging sample must
	// not abort the whole campaign.
	NoConverge int
	Runs       int
}

// record classifies one run's outcome into the campaign aggregates.
//
//detlint:hotpath witness=TestMCAggregationAllocsIndependentOfRuns
func (r *MCResult) record(out ActivationResult, noConverge bool) {
	if noConverge {
		r.NoConverge++
		r.Unreliable++
		r.Unrestored++
		return
	}
	if out.Reliable {
		r.TRCDmin.Add(out.TRCDminNS)
	} else {
		r.Unreliable++
	}
	if out.Restored {
		r.TRASmin.Add(out.TRASminNS)
	} else {
		r.Unrestored++
	}
}

// Merge folds another partial result at the SAME VPP level into r, in run
// order: r must hold the earlier run range and o the later one. It exists for
// sharded campaigns that split one level's runs across processes; because the
// distribution accumulators merge exactly (and the mean's float summation
// order is fixed by the merge order), merging per-range partials in run order
// reproduces the single-process level result. Levels are distinct populations
// by construction, so merging across different VPPs is an error.
func (r *MCResult) Merge(o MCResult) error {
	if r.VPP != o.VPP {
		return fmt.Errorf("spice: merging MC results at different VPP levels %.2f and %.2f", r.VPP, o.VPP)
	}
	r.TRCDmin.Merge(o.TRCDmin)
	r.TRASmin.Merge(o.TRASmin)
	r.Unreliable += o.Unreliable
	r.Unrestored += o.Unrestored
	r.NoConverge += o.NoConverge
	r.Runs += o.Runs
	return nil
}

// Reliable returns the number of runs with a reliable activation.
func (r MCResult) Reliable() int { return r.TRCDmin.N() }

// Restored returns the number of runs whose restoration completed.
func (r MCResult) Restored() int { return r.TRASmin.N() }

// WorstTRCDminNS returns the largest observed reliable tRCDmin (the
// worst-case line of Fig. 8b), or 0 when no run was reliable.
func (r MCResult) WorstTRCDminNS() float64 { return r.TRCDmin.Max() }

// MeanTRCDminNS returns the mean reliable tRCDmin, or 0 when none.
func (r MCResult) MeanTRCDminNS() float64 { return r.TRCDmin.Mean() }

// ReliableFraction is the fraction of runs with a reliable activation.
func (r MCResult) ReliableFraction() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.TRCDmin.N()) / float64(r.Runs)
}

// Vary applies a uniform relative variation of up to ±frac to the
// process-dependent parameters of p, drawing from the stream. This is the
// paper's ±5% Monte-Carlo component variation (§4.5).
func Vary(p CellParams, s *rng.Stream, frac float64) CellParams {
	u := func(v float64) float64 { return v * (1 + s.Uniform(-frac, frac)) }
	p.CellC = u(p.CellC)
	p.CellR = u(p.CellR)
	p.BLC = u(p.BLC)
	p.BLR = u(p.BLR)
	p.Access.W = u(p.Access.W)
	p.Access.L = u(p.Access.L)
	p.Access.VT0 = u(p.Access.VT0)
	p.Access.KP = u(p.Access.KP)
	for _, m := range []*MOSParams{&p.SAN1, &p.SAN2, &p.SAP1, &p.SAP2} {
		m.W = u(m.W)
		m.L = u(m.L)
		m.VT0 = u(m.VT0)
		m.KP = u(m.KP)
	}
	return p
}

// MCConfig parameterizes a Monte-Carlo campaign at one VPP level (or, via
// RunMonteCarloSweep, the same campaign repeated across a VPP sweep).
type MCConfig struct {
	// VPP is the wordline voltage under test.
	VPP float64
	// Runs is the campaign size per VPP level (the paper runs 10K).
	Runs int
	// Seed selects the sampled device population.
	Seed uint64
	// Variation is the relative component spread (the paper's ±5% is 0.05).
	Variation float64
	// Jobs bounds how many runs simulate concurrently (0 = one worker per
	// CPU). Every run draws from its own index-derived RNG stream and runs
	// fold into the aggregates in index order through a bounded reorder
	// window, so the result is byte-identical at any worker count.
	Jobs int
	// Reference routes every run through the dense finite-difference
	// reference engine instead of the incremental solver. It exists for the
	// equivalence tests and as the benchmarks' pre-rework baseline; it
	// implies FixedGrid (the reference is the fixed-grid oracle).
	Reference bool
	// FixedGrid disables adaptive step coarsening and integrates every cell
	// of the 25 ps grid, the pre-adaptive behavior.
	FixedGrid bool
	// LTETolV overrides the adaptive engine's step-doubling error tolerance
	// in volts (0 = spice.DefaultLTETolV). Ignored under FixedGrid.
	LTETolV float64
	// BatchWidth is how many runs advance in lockstep through one
	// struct-of-arrays BatchWorkspace (0 = DefaultBatchWidth, 1 = the scalar
	// per-run path, capped at MaxBatchWidth). Runs are fed to workers in
	// deterministic (level, run) tiles of this width and every lane is
	// bit-identical to the scalar engine, so the campaign output does not
	// depend on the width — only the throughput does. Ignored under
	// Reference, which the batch engine does not implement.
	BatchWidth int
}

// jobs resolves the worker bound.
func (c MCConfig) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// batchWidth resolves the lockstep tile width.
func (c MCConfig) batchWidth() int {
	w := c.BatchWidth
	if w <= 0 {
		w = DefaultBatchWidth
	}
	if w > MaxBatchWidth {
		w = MaxBatchWidth
	}
	if c.Reference {
		w = 1
	}
	return w
}

// MonteCarlo runs the activation simulation `runs` times at the given VPP
// with ±variation parameter spread, mirroring the paper's 10K-run campaign
// per voltage level. It is the serial convenience form of RunMonteCarlo.
func MonteCarlo(vpp float64, runs int, seed uint64, variation float64) (MCResult, error) {
	return RunMonteCarlo(context.Background(), MCConfig{
		VPP: vpp, Runs: runs, Seed: seed, Variation: variation, Jobs: 1,
	})
}

// mcRun is one sample's outcome, delivered to the aggregation fold in index
// order so the result never depends on worker scheduling.
type mcRun struct {
	out        ActivationResult
	noConverge bool
}

// RunMonteCarlo executes the Monte-Carlo campaign described by cfg at one
// VPP level. It is the single-level form of RunMonteCarloSweep and shares
// its worker pool, workspace reuse, and streaming aggregation.
func RunMonteCarlo(ctx context.Context, cfg MCConfig) (MCResult, error) {
	results, err := RunMonteCarloSweep(ctx, []float64{cfg.VPP}, cfg)
	if err != nil {
		return MCResult{VPP: cfg.VPP, Runs: cfg.Runs}, err
	}
	return results[0], nil
}

// RunMonteCarloSweep executes one Monte-Carlo campaign of cfg.Runs runs per
// entry of vpps (cfg.VPP is ignored) over a SINGLE global run queue: all
// levels' runs feed one bounded worker pool, so workers stay busy across
// level boundaries even when a slowly-converging low-VPP level would
// otherwise drain a per-level pool. Each worker reuses one simulation
// Workspace across runs (parameters are re-stamped instead of rebuilding the
// netlist and solver).
//
// Every run draws from the same per-level, per-index RNG stream as a
// standalone RunMonteCarlo, and runs fold into the per-level accumulators in
// strict (level, run) index order through pool.RunOrdered, so the sweep is
// byte-identical to running the levels one at a time — at any worker count —
// while aggregation memory stays independent of the total run count.
//
// Runs that fail to converge are recorded in MCResult.NoConverge (and
// counted unreliable/unrestored) rather than aborting the campaign; any
// other simulation failure — e.g. a singular system from degenerate
// parameters — is a genuine error.
func RunMonteCarloSweep(ctx context.Context, vpps []float64, cfg MCConfig) ([]MCResult, error) {
	results := make([]MCResult, len(vpps))
	roots := make([]*rng.Stream, len(vpps))
	for li, vpp := range vpps {
		results[li] = MCResult{VPP: vpp, Runs: cfg.Runs}
		roots[li] = rng.New(cfg.Seed).Derive("spice-mc", fmt.Sprintf("%.2f", vpp))
	}
	if cfg.Runs <= 0 {
		return results, ctx.Err()
	}

	// runParams reproduces the standalone campaign's parameter draw for run
	// ri of level li: the per-level, per-index RNG stream and the engine
	// overrides. Both the scalar and the batched path call exactly this.
	runParams := func(li, ri int) CellParams {
		p := Vary(DefaultCellParams(vpps[li]), roots[li].Derive("run", ri), cfg.Variation)
		switch {
		case cfg.Reference || cfg.FixedGrid:
			p.Adaptive = AdaptiveConfig{}
		case cfg.LTETolV > 0:
			p.Adaptive.LTETolV = cfg.LTETolV
		}
		return p
	}

	if w := cfg.batchWidth(); w > 1 {
		return runSweepBatched(ctx, vpps, cfg, results, runParams, w)
	}

	// One reusable Workspace per worker. sync.Pool keeps a workspace warm
	// per P; results cannot depend on which workspace serves which run
	// because Workspace.Simulate is bit-identical to a fresh simulation.
	var workspaces sync.Pool
	sim := func(p CellParams) (ActivationResult, error) {
		if cfg.Reference {
			return SimulateActivationReference(p, nil)
		}
		ws, _ := workspaces.Get().(*Workspace)
		if ws == nil {
			ws = NewWorkspace()
		}
		out, err := ws.Simulate(p, nil)
		workspaces.Put(ws)
		return out, err
	}

	n := len(vpps) * cfg.Runs
	err := pool.RunOrdered(ctx, cfg.jobs(), n,
		func(ctx context.Context, i int) (mcRun, error) {
			li, ri := i/cfg.Runs, i%cfg.Runs
			p := runParams(li, ri)
			out, err := sim(p)
			switch {
			case errors.Is(err, ErrNoConverge):
				return mcRun{noConverge: true}, nil
			case err != nil:
				return mcRun{}, fmt.Errorf("vpp %.2f run %d: %w", vpps[li], ri, err)
			}
			return mcRun{out: out}, nil
		},
		func(i int, ro mcRun) error {
			results[i/cfg.Runs].record(ro.out, ro.noConverge)
			return nil
		})
	return results, err
}

// mcTile is one lockstep tile's outcomes: up to MaxBatchWidth consecutive
// runs of one level. Fixed-size so tile results stream through the worker
// pool without per-tile allocations.
type mcTile struct {
	n    int
	runs [MaxBatchWidth]mcRun
}

// runSweepBatched executes the sweep's global run queue in deterministic
// (level, run) tiles of w lanes, each tile advanced in lockstep by a pooled
// BatchWorkspace. Every lane is bit-identical to the scalar engine
// (TestBatchLanesMatchScalar), tiles unfold into the per-level accumulators
// in strict (level, run) order through the same pool.RunOrdered seam as the
// scalar path, and a failing run surfaces the same wrapped error at the
// lowest failing (level, run) index — so campaign results are byte-identical
// to the scalar path at any width and any worker count.
func runSweepBatched(ctx context.Context, vpps []float64, cfg MCConfig,
	results []MCResult, runParams func(li, ri int) CellParams, w int) ([]MCResult, error) {

	tilesPerLevel := (cfg.Runs + w - 1) / w
	var workspaces sync.Pool
	ps := sync.Pool{New: func() any { return new([MaxBatchWidth]CellParams) }}

	n := len(vpps) * tilesPerLevel
	err := pool.RunOrdered(ctx, cfg.jobs(), n,
		func(ctx context.Context, i int) (mcTile, error) {
			// One tile is w runs; checking here gives cancellation the same
			// per-unit granularity the scalar path gets from RunOrdered.
			if err := ctx.Err(); err != nil {
				return mcTile{}, err
			}
			li, ti := i/tilesPerLevel, i%tilesPerLevel
			lo := ti * w
			hi := lo + w
			if hi > cfg.Runs {
				hi = cfg.Runs
			}
			pbuf := ps.Get().(*[MaxBatchWidth]CellParams)
			defer ps.Put(pbuf)
			for ri := lo; ri < hi; ri++ {
				pbuf[ri-lo] = runParams(li, ri)
			}
			bw, _ := workspaces.Get().(*BatchWorkspace)
			if bw == nil {
				bw = NewBatchWorkspace(w)
			}
			outs, errs := bw.Simulate(pbuf[:hi-lo], nil)
			var tile mcTile
			tile.n = hi - lo
			for j := 0; j < tile.n; j++ {
				switch {
				case errors.Is(errs[j], ErrNoConverge):
					tile.runs[j] = mcRun{noConverge: true}
				case errs[j] != nil:
					workspaces.Put(bw)
					return mcTile{}, fmt.Errorf("vpp %.2f run %d: %w", vpps[li], lo+j, errs[j])
				default:
					tile.runs[j] = mcRun{out: outs[j]}
				}
			}
			workspaces.Put(bw)
			return tile, nil
		},
		func(i int, tile mcTile) error {
			li := i / tilesPerLevel
			for j := 0; j < tile.n; j++ {
				results[li].record(tile.runs[j].out, tile.runs[j].noConverge)
			}
			return nil
		})
	return results, err
}
