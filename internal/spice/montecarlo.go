package spice

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"github.com/dramstudy/rhvpp/internal/pool"
	"github.com/dramstudy/rhvpp/internal/rng"
)

// MCResult aggregates a Monte-Carlo campaign at one VPP level.
type MCResult struct {
	VPP float64
	// TRCDminNS and TRASminNS hold the per-run measurements of runs whose
	// activation completed reliably.
	TRCDminNS []float64
	TRASminNS []float64
	// Unreliable counts runs whose bitline never crossed the read
	// threshold (e.g. the sense amplifier latched the wrong way under
	// mismatch at very low VPP).
	Unreliable int
	// Unrestored counts runs whose charge restoration did not complete
	// within the horizon.
	Unrestored int
	// NoConverge counts runs whose Newton iteration failed to converge.
	// Such runs yield no trustworthy measurement, so they are also counted
	// as Unreliable and Unrestored — exactly the low-VPP regime the Fig.
	// 8b/9b distributions care about, which is why a diverging sample must
	// not abort the whole campaign.
	NoConverge int
	Runs       int
}

// record classifies one run's outcome into the campaign aggregates.
func (r *MCResult) record(out ActivationResult, noConverge bool) {
	if noConverge {
		r.NoConverge++
		r.Unreliable++
		r.Unrestored++
		return
	}
	if out.Reliable {
		r.TRCDminNS = append(r.TRCDminNS, out.TRCDminNS)
	} else {
		r.Unreliable++
	}
	if out.Restored {
		r.TRASminNS = append(r.TRASminNS, out.TRASminNS)
	} else {
		r.Unrestored++
	}
}

// WorstTRCDminNS returns the largest observed reliable tRCDmin (the
// worst-case line of Fig. 8b), or 0 when no run was reliable.
func (r MCResult) WorstTRCDminNS() float64 {
	worst := 0.0
	for _, v := range r.TRCDminNS {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// MeanTRCDminNS returns the mean reliable tRCDmin, or 0 when none.
func (r MCResult) MeanTRCDminNS() float64 {
	if len(r.TRCDminNS) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.TRCDminNS {
		sum += v
	}
	return sum / float64(len(r.TRCDminNS))
}

// ReliableFraction is the fraction of runs with a reliable activation.
func (r MCResult) ReliableFraction() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(len(r.TRCDminNS)) / float64(r.Runs)
}

// Vary applies a uniform relative variation of up to ±frac to the
// process-dependent parameters of p, drawing from the stream. This is the
// paper's ±5% Monte-Carlo component variation (§4.5).
func Vary(p CellParams, s *rng.Stream, frac float64) CellParams {
	u := func(v float64) float64 { return v * (1 + s.Uniform(-frac, frac)) }
	p.CellC = u(p.CellC)
	p.CellR = u(p.CellR)
	p.BLC = u(p.BLC)
	p.BLR = u(p.BLR)
	p.Access.W = u(p.Access.W)
	p.Access.L = u(p.Access.L)
	p.Access.VT0 = u(p.Access.VT0)
	p.Access.KP = u(p.Access.KP)
	for _, m := range []*MOSParams{&p.SAN1, &p.SAN2, &p.SAP1, &p.SAP2} {
		m.W = u(m.W)
		m.L = u(m.L)
		m.VT0 = u(m.VT0)
		m.KP = u(m.KP)
	}
	return p
}

// MCConfig parameterizes a Monte-Carlo campaign at one VPP level.
type MCConfig struct {
	// VPP is the wordline voltage under test.
	VPP float64
	// Runs is the campaign size (the paper runs 10K per level).
	Runs int
	// Seed selects the sampled device population.
	Seed uint64
	// Variation is the relative component spread (the paper's ±5% is 0.05).
	Variation float64
	// Jobs bounds how many runs simulate concurrently (0 = one worker per
	// CPU). Every run draws from its own index-derived RNG stream and runs
	// aggregate in index order, so the result is byte-identical at any
	// worker count.
	Jobs int
	// Reference routes every run through the dense finite-difference
	// reference engine instead of the incremental solver. It exists for the
	// equivalence tests and as the benchmarks' pre-rework baseline.
	Reference bool
}

// jobs resolves the worker bound.
func (c MCConfig) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// MonteCarlo runs the activation simulation `runs` times at the given VPP
// with ±variation parameter spread, mirroring the paper's 10K-run campaign
// per voltage level. It is the serial convenience form of RunMonteCarlo.
func MonteCarlo(vpp float64, runs int, seed uint64, variation float64) (MCResult, error) {
	return RunMonteCarlo(context.Background(), MCConfig{
		VPP: vpp, Runs: runs, Seed: seed, Variation: variation, Jobs: 1,
	})
}

// mcRun is one sample's outcome, kept per-index so aggregation order never
// depends on worker scheduling.
type mcRun struct {
	out        ActivationResult
	noConverge bool
}

// RunMonteCarlo executes the Monte-Carlo campaign described by cfg across a
// bounded worker pool. Runs that fail to converge are recorded in
// MCResult.NoConverge (and counted unreliable/unrestored) rather than
// aborting the campaign; any other simulation failure — e.g. a singular
// system from degenerate parameters — is a genuine error.
func RunMonteCarlo(ctx context.Context, cfg MCConfig) (MCResult, error) {
	res := MCResult{VPP: cfg.VPP, Runs: cfg.Runs}
	root := rng.New(cfg.Seed).Derive("spice-mc", fmt.Sprintf("%.2f", cfg.VPP))
	sim := SimulateActivation
	if cfg.Reference {
		sim = SimulateActivationReference
	}
	idx := make([]int, cfg.Runs)
	for i := range idx {
		idx[i] = i
	}
	outs, err := pool.Run(ctx, cfg.jobs(), idx, func(ctx context.Context, i int) (mcRun, error) {
		p := Vary(DefaultCellParams(cfg.VPP), root.Derive("run", i), cfg.Variation)
		out, err := sim(p, nil)
		switch {
		case errors.Is(err, ErrNoConverge):
			return mcRun{noConverge: true}, nil
		case err != nil:
			return mcRun{}, fmt.Errorf("run %d: %w", i, err)
		}
		return mcRun{out: out}, nil
	})
	if err != nil {
		return res, err
	}
	for _, ro := range outs {
		res.record(ro.out, ro.noConverge)
	}
	return res, nil
}
