package spice

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/dramstudy/rhvpp/internal/rng"
)

func newStream(seed uint64) *rng.Stream { return rng.New(seed) }

func TestPWLWaveform(t *testing.T) {
	w := PWL{Times: []float64{0, 1, 3}, Values: []float64{0, 10, 10}}
	tests := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {2, 10}, {3, 10}, {99, 10},
	}
	for _, tt := range tests {
		if got := w.At(tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if (PWL{}).At(5) != 0 {
		t.Error("empty PWL should be 0")
	}
	if DC(3.3).At(42) != 3.3 {
		t.Error("DC waveform wrong")
	}
}

func TestNodeAllocation(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	b := c.Node("b")
	if a == b || a == Ground || b == Ground {
		t.Errorf("node ids: a=%d b=%d", a, b)
	}
	if c.Node("a") != a {
		t.Error("node lookup not stable")
	}
	if c.Node("gnd") != Ground || c.Node("0") != Ground {
		t.Error("ground aliases broken")
	}
}

func TestSolveDense(t *testing.T) {
	// 2x + y = 5; x - y = 1  => x=2, y=1
	a := []float64{2, 1, 1, -1}
	b := []float64{5, 1}
	if err := solveDense(a, b, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[0]-2) > 1e-12 || math.Abs(b[1]-1) > 1e-12 {
		t.Errorf("solution = %v, want [2 1]", b)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := []float64{1, 1, 1, 1}
	b := []float64{1, 2}
	if err := solveDense(a, b, 2); err == nil {
		t.Error("singular system solved")
	}
}

func TestQuickSolveDenseRandomSystems(t *testing.T) {
	f := func(m11, m12, m21, m22, x1, x2 int8) bool {
		a11, a12 := float64(m11)+0.5, float64(m12)
		a21, a22 := float64(m21), float64(m22)+17.5
		wx1, wx2 := float64(x1), float64(x2)
		det := a11*a22 - a12*a21
		if math.Abs(det) < 1e-6 {
			return true
		}
		b1 := a11*wx1 + a12*wx2
		b2 := a21*wx1 + a22*wx2
		a := []float64{a11, a12, a21, a22}
		b := []float64{b1, b2}
		if err := solveDense(a, b, 2); err != nil {
			return false
		}
		return math.Abs(b[0]-wx1) < 1e-6 && math.Abs(b[1]-wx2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRCDischarge(t *testing.T) {
	// A 1k/1pF RC discharging from 1V: V(t) = exp(-t/RC), tau = 1ns.
	c := NewCircuit()
	n := c.Node("cap")
	c.R(n, Ground, 1000)
	c.C(n, Ground, 1e-12)
	c.SetInitial(n, 1.0)
	tr := NewTransient(c, 5e-12)
	if err := tr.Run(1e-9, nil); err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-1)
	if got := tr.V(n); math.Abs(got-want) > 0.01 {
		t.Errorf("V(tau) = %v, want %v (backward Euler tolerance 1%%)", got, want)
	}
}

func TestVoltageSourceDrivesNode(t *testing.T) {
	c := NewCircuit()
	n := c.Node("out")
	c.V(n, Ground, DC(1.8))
	c.R(n, Ground, 100)
	tr := NewTransient(c, 1e-12)
	if err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	if got := tr.V(n); math.Abs(got-1.8) > 1e-9 {
		t.Errorf("V = %v, want 1.8", got)
	}
}

func TestRCChargeThroughSource(t *testing.T) {
	// Series R from source to cap: V_cap(t) = 1 - exp(-t/RC).
	c := NewCircuit()
	src := c.Node("src")
	cap := c.Node("cap")
	c.V(src, Ground, DC(1.0))
	c.R(src, cap, 1000)
	c.C(cap, Ground, 1e-12)
	tr := NewTransient(c, 5e-12)
	if err := tr.Run(3e-9, nil); err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-3)
	if got := tr.V(cap); math.Abs(got-want) > 0.01 {
		t.Errorf("V(3tau) = %v, want %v", got, want)
	}
}

func TestNMOSRegions(t *testing.T) {
	m := MOSParams{Type: NMOS, W: 1e-6, L: 1e-6, VT0: 0.5, KP: 100e-6}
	// Cutoff.
	id, _, _ := m.eval(1.0, 0.3, 0)
	if id > 1e-9 {
		t.Errorf("cutoff current = %v", id)
	}
	// Saturation: Vgs=1.5, Vds=2 > Vov=1: Id = KP/2*(W/L)*Vov^2 = 50u.
	id, _, _ = m.eval(2.0, 1.5, 0)
	if math.Abs(id-50e-6) > 1e-6 {
		t.Errorf("saturation current = %v, want ~50uA", id)
	}
	// Triode: Vgs=1.5, Vds=0.5: Id = 100u*(1*0.5 - 0.125) = 37.5u.
	id, _, _ = m.eval(0.5, 1.5, 0)
	if math.Abs(id-37.5e-6) > 1e-6 {
		t.Errorf("triode current = %v, want ~37.5uA", id)
	}
}

func TestNMOSSymmetry(t *testing.T) {
	// Swapping drain and source must negate the current.
	m := MOSParams{Type: NMOS, W: 1e-6, L: 1e-6, VT0: 0.5, KP: 100e-6}
	fwd, _, _ := m.eval(1.0, 2.0, 0.2)
	rev, _, _ := m.eval(0.2, 2.0, 1.0)
	if math.Abs(fwd+rev) > 1e-12 {
		t.Errorf("asymmetric device: %v vs %v", fwd, rev)
	}
}

func TestPMOSMirrorsNMOS(t *testing.T) {
	n := MOSParams{Type: NMOS, W: 1e-6, L: 1e-6, VT0: 0.5, KP: 100e-6}
	p := n
	p.Type = PMOS
	idN, _, _ := n.eval(1.0, 1.5, 0)
	idP, _, _ := p.eval(-1.0, -1.5, 0)
	if math.Abs(idN+idP) > 1e-12 {
		t.Errorf("PMOS current %v does not mirror NMOS %v", idP, idN)
	}
}

func TestMOSInverter(t *testing.T) {
	// NMOS with resistive pull-up: input high -> output low.
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.V(vdd, Ground, DC(1.2))
	c.V(in, Ground, DC(1.2))
	c.R(vdd, out, 100e3)
	c.MOS(out, in, Ground, MOSParams{Type: NMOS, W: 2e-6, L: 0.1e-6, VT0: 0.4, KP: 100e-6})
	c.C(out, Ground, 1e-15)
	tr := NewTransient(c, 1e-12)
	if err := tr.Run(2e-10, nil); err != nil {
		t.Fatal(err)
	}
	if got := tr.V(out); got > 0.1 {
		t.Errorf("inverter output = %v, want < 0.1 (strongly pulled down)", got)
	}
}

func TestActivationNominal(t *testing.T) {
	res, err := SimulateActivation(DefaultCellParams(2.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reliable || !res.Restored {
		t.Fatalf("nominal activation failed: %+v", res)
	}
	// Paper SPICE: tRCDmin ~11.6ns at nominal VPP.
	if res.TRCDminNS < 10 || res.TRCDminNS > 13 {
		t.Errorf("nominal tRCDmin = %.2f, want ~11.6", res.TRCDminNS)
	}
	// Cell restores to VDD at nominal VPP.
	if math.Abs(res.FinalCellV-1.14) > 0.05 {
		t.Errorf("final cell voltage = %.3f, want ~1.14 (0.95*VDD)", res.FinalCellV)
	}
}

func TestActivationTRCDGrowsAsVPPFalls(t *testing.T) {
	prev := 0.0
	for _, vpp := range []float64{2.5, 2.3, 2.1, 1.9, 1.7} {
		res, err := SimulateActivation(DefaultCellParams(vpp), nil)
		if err != nil {
			t.Fatalf("vpp=%v: %v", vpp, err)
		}
		if !res.Reliable {
			t.Fatalf("vpp=%v: unreliable at nominal parameters", vpp)
		}
		if res.TRCDminNS < prev {
			t.Errorf("tRCDmin decreased at vpp=%v: %.2f after %.2f", vpp, res.TRCDminNS, prev)
		}
		prev = res.TRCDminNS
	}
}

func TestSaturationMatchesObservation10(t *testing.T) {
	// Obsv. 10: cell saturates at VDD for VPP >= 2.0, and at ~4.1%, 11.0%,
	// 18.1% below VDD at 1.9, 1.8, 1.7 V.
	tests := []struct{ vpp, lossPct, tol float64 }{
		{2.5, 0, 1}, {2.0, 0, 1},
		{1.9, 4.1, 3}, {1.8, 11.0, 3}, {1.7, 18.1, 3},
	}
	for _, tt := range tests {
		res, err := SimulateActivation(DefaultCellParams(tt.vpp), nil)
		if err != nil {
			t.Fatal(err)
		}
		sat := DefaultCellParams(tt.vpp).SaturationV()
		// The final simulated voltage should approach the saturation level;
		// compare the saturation model against the paper's percentages.
		loss := (1.2 - sat) / 1.2 * 100
		if math.Abs(loss-tt.lossPct) > tt.tol {
			t.Errorf("vpp=%v: saturation loss %.1f%%, want ~%.1f%%", tt.vpp, loss, tt.lossPct)
		}
		if res.FinalCellV > sat+1e-6 {
			t.Errorf("vpp=%v: cell voltage %.3f exceeded saturation %.3f", tt.vpp, res.FinalCellV, sat)
		}
	}
}

func TestTRASExceedsNominalBelow2V(t *testing.T) {
	// Obsv. 11: tRAS exceeds the nominal value when VPP < 2.0V.
	at25, err := SimulateActivation(DefaultCellParams(2.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if at25.TRASminNS >= 35 {
		t.Errorf("tRAS at nominal VPP = %.1f, want < 35", at25.TRASminNS)
	}
	at18, err := SimulateActivation(DefaultCellParams(1.8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !at18.Restored || at18.TRASminNS <= 35 {
		t.Errorf("tRAS at 1.8V = %.1f (restored=%v), want > 35", at18.TRASminNS, at18.Restored)
	}
}

func TestWaveformProbeMonotoneBitline(t *testing.T) {
	// After sensing starts, the bitline should rise monotonically (within
	// numerical wiggle) toward VDD on the stored-one side.
	var times, volts []float64
	_, err := SimulateActivation(DefaultCellParams(2.5), func(tNS, vbl, _ float64) {
		times = append(times, tNS)
		volts = append(volts, vbl)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(volts) < 100 {
		t.Fatalf("probe saw only %d samples", len(volts))
	}
	last := volts[len(volts)-1]
	if last < 1.1 {
		t.Errorf("bitline ended at %.3f, want ~VDD", last)
	}
	for i := 1; i < len(volts); i++ {
		if times[i] > 8 && volts[i] < volts[i-1]-0.02 {
			t.Errorf("bitline dropped %.3f -> %.3f at t=%.2fns", volts[i-1], volts[i], times[i])
			break
		}
	}
}

func TestMonteCarloReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo is slow")
	}
	hi, err := MonteCarlo(2.5, 60, 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if hi.ReliableFraction() != 1 {
		t.Errorf("2.5V reliability = %v, want 1.0", hi.ReliableFraction())
	}
	lo, err := MonteCarlo(1.5, 60, 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lo.ReliableFraction() >= hi.ReliableFraction() {
		t.Errorf("1.5V reliability %v not below 2.5V %v (paper: unreliable <= 1.6V)",
			lo.ReliableFraction(), hi.ReliableFraction())
	}
	if lo.Unreliable == 0 {
		t.Error("no unreliable runs at 1.5V under 5% mismatch")
	}
}

func TestMonteCarloDistributionShifts(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo is slow")
	}
	hi, err := MonteCarlo(2.5, 40, 7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := MonteCarlo(1.8, 40, 7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lo.MeanTRCDminNS() <= hi.MeanTRCDminNS() {
		t.Errorf("mean tRCDmin: 1.8V %.2f not above 2.5V %.2f", lo.MeanTRCDminNS(), hi.MeanTRCDminNS())
	}
	if lo.WorstTRCDminNS() <= hi.WorstTRCDminNS() {
		t.Errorf("worst tRCDmin: 1.8V %.2f not above 2.5V %.2f", lo.WorstTRCDminNS(), hi.WorstTRCDminNS())
	}
}

func TestVaryDeterministic(t *testing.T) {
	s1 := newStream(42)
	s2 := newStream(42)
	p1 := Vary(DefaultCellParams(2.5), s1, 0.05)
	p2 := Vary(DefaultCellParams(2.5), s2, 0.05)
	if p1.CellC != p2.CellC || p1.Access.VT0 != p2.Access.VT0 {
		t.Error("Vary not deterministic for equal streams")
	}
	if p1.CellC == DefaultCellParams(2.5).CellC {
		t.Error("Vary did not perturb parameters")
	}
}

func TestVaryBounds(t *testing.T) {
	base := DefaultCellParams(2.5)
	for i := 0; i < 50; i++ {
		p := Vary(base, newStream(uint64(i)), 0.05)
		if math.Abs(p.CellC/base.CellC-1) > 0.05+1e-12 {
			t.Fatalf("CellC varied by more than 5%%: %v", p.CellC/base.CellC)
		}
		if math.Abs(p.Access.VT0/base.Access.VT0-1) > 0.05+1e-12 {
			t.Fatalf("VT0 varied by more than 5%%")
		}
	}
}

func TestInvalidCellParams(t *testing.T) {
	p := DefaultCellParams(2.5)
	p.StepPS = 0
	if _, err := SimulateActivation(p, nil); err == nil {
		t.Error("zero step accepted")
	}
}
