// Streaming accumulators: one-pass, bounded-memory counterparts of the batch
// helpers in stats.go. The campaign aggregation pipeline (SPICE Monte-Carlo,
// the physics studies, the §4.6 CV analysis) folds each measurement into
// these as it is produced, so aggregation memory is O(1) per estimator —
// independent of the number of runs — instead of growing linearly with every
// per-run sample the old []float64 aggregates hoarded.
//
// # Accuracy contract
//
// Relative to the batch helpers (which remain the accuracy oracles in the
// property tests):
//
//   - Moments.Mean is bit-identical to Mean for the same accumulation order:
//     both reduce to the same running float64 sum divided by n. Merging
//     partial accumulators adds their partial sums, which associates the
//     float additions differently than one flat left-to-right sum — a
//     Merge-based mean is deterministic for a fixed merge order (the
//     drivers merge in catalog order) but may differ from the concatenated
//     batch mean in the last ulp.
//   - Moments.Variance uses Welford's recurrence; it matches the two-pass
//     batch Variance to ~1e-12 relative error (not bit-identical).
//   - ValueCounts quantiles, fractions, and histograms are EXACT: the
//     accumulator is a lossless multiset, so Percentile replays the batch
//     sort-and-interpolate computation value for value. Memory is bounded by
//     the number of DISTINCT sample values — constant for the quantized
//     series the campaign measures (integration-step timing grids, k/N bit
//     error rates, fixed command-grid latencies), never by the run count.
//   - P2Quantile is the constant-memory estimator for genuinely continuous
//     unbounded streams: five markers per quantile, exact for n <= 5, and
//     within a few percent of the batch percentile for smooth unimodal
//     distributions (tested against the oracle at 0.05 relative tolerance).
//
// Merging is deterministic: Merge folds partial accumulators in the order
// the caller chooses (the drivers merge in catalog/level order), so output
// is byte-identical at any worker count.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrZeroMean is returned by CV computations on a zero-mean sample, where
// the coefficient of variation is undefined.
var ErrZeroMean = errors.New("stats: CV of zero-mean sample")

// Moments is a one-pass mean/variance accumulator (Welford's algorithm plus
// a plain running sum). The zero value is ready to use.
type Moments struct {
	n    int
	sum  float64 // running sum in accumulation order: Mean matches batch Mean bit-for-bit
	mean float64 // Welford running mean (numerically stable center for m2)
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one sample.
//
//detlint:hotpath witness=TestAccumulatorAddAllocsFree
func (m *Moments) Add(x float64) {
	m.n++
	m.sum += x
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// Merge folds another accumulator into m (Chan et al.'s parallel update).
// Merging in a fixed order yields deterministic results at any worker count.
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n1, n2 := float64(m.n), float64(o.n)
	d := o.mean - m.mean
	m.mean += d * n2 / (n1 + n2)
	m.m2 += o.m2 + d*d*n1*n2/(n1+n2)
	m.sum += o.sum
	m.n += o.n
}

// N returns the sample count.
func (m Moments) N() int { return m.n }

// Sum returns the running sum.
func (m Moments) Sum() float64 { return m.sum }

// Mean returns the arithmetic mean (0 for an empty accumulator, like the
// batch Mean).
func (m Moments) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Variance returns the population variance (division by n), 0 for fewer
// than two samples, like the batch Variance.
func (m Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the population standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CV returns the coefficient of variation (stddev/|mean|). It returns
// ErrEmpty for an empty accumulator and ErrZeroMean when the mean is zero.
func (m Moments) CV() (float64, error) {
	if m.n == 0 {
		return 0, ErrEmpty
	}
	mean := m.Mean()
	if mean == 0 {
		return 0, ErrZeroMean
	}
	return m.StdDev() / math.Abs(mean), nil
}

// MinMax tracks the running extremes of a stream. The zero value is ready
// to use.
type MinMax struct {
	n        int
	min, max float64
}

// Add folds one sample.
//
//detlint:hotpath witness=TestAccumulatorAddAllocsFree
func (m *MinMax) Add(x float64) {
	if m.n == 0 || x < m.min {
		m.min = x
	}
	if m.n == 0 || x > m.max {
		m.max = x
	}
	m.n++
}

// Merge folds another accumulator into m.
func (m *MinMax) Merge(o MinMax) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n += o.n
}

// N returns the sample count.
func (m MinMax) N() int { return m.n }

// Min returns the smallest sample, or ErrEmpty.
func (m MinMax) Min() (float64, error) {
	if m.n == 0 {
		return 0, ErrEmpty
	}
	return m.min, nil
}

// Max returns the largest sample, or ErrEmpty.
func (m MinMax) Max() (float64, error) {
	if m.n == 0 {
		return 0, ErrEmpty
	}
	return m.max, nil
}

// Fraction counts how much of a stream falls strictly below / strictly
// above a fixed threshold, the streaming form of FractionBelow/FractionAbove.
type Fraction struct {
	Threshold    float64
	n            int
	below, above int
}

// NewFraction returns a Fraction accumulator for the given threshold.
func NewFraction(threshold float64) Fraction { return Fraction{Threshold: threshold} }

// Add folds one sample.
//
//detlint:hotpath witness=TestAccumulatorAddAllocsFree
func (f *Fraction) Add(x float64) {
	f.n++
	if x < f.Threshold {
		f.below++
	} else if x > f.Threshold {
		f.above++
	}
}

// Merge folds another accumulator into f. It returns an error when the
// thresholds differ, since mixed-threshold counts are meaningless.
func (f *Fraction) Merge(o Fraction) error {
	if f.Threshold != o.Threshold {
		return fmt.Errorf("stats: merging Fraction accumulators with thresholds %v and %v", f.Threshold, o.Threshold)
	}
	f.n += o.n
	f.below += o.below
	f.above += o.above
	return nil
}

// N returns the sample count.
func (f Fraction) N() int { return f.n }

// Below returns the fraction strictly below the threshold (0 when empty).
func (f Fraction) Below() float64 {
	if f.n == 0 {
		return 0
	}
	return float64(f.below) / float64(f.n)
}

// Above returns the fraction strictly above the threshold (0 when empty).
func (f Fraction) Above() float64 {
	if f.n == 0 {
		return 0
	}
	return float64(f.above) / float64(f.n)
}

// P2Quantile estimates a single quantile in O(1) memory with the P² algorithm
// (Jain & Chlamtac, 1985): five markers whose heights approximate the
// quantile via piecewise-parabolic interpolation. For n <= 5 samples the
// estimate is the exact order statistic. P² has no exact merge (and therefore
// no Merge method or JSON encoding): the marker state depends on the arrival
// order of the whole stream, so two partial estimators cannot be combined
// into the estimator of the concatenated stream. Use one estimator per
// ordered stream; in sharded campaigns, use the lossless ValueCounts multiset
// instead — it merges and serializes exactly.
type P2Quantile struct {
	p     float64    // target quantile in (0, 1)
	n     int        // samples seen
	q     [5]float64 // marker heights
	pos   [5]float64 // actual marker positions (1-based)
	want  [5]float64 // desired marker positions
	dWant [5]float64 // desired-position increments per sample
}

// NewP2Quantile returns an estimator for quantile p in (0, 1), e.g. 0.95.
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("stats: P² quantile %v outside (0,1)", p)
	}
	e := &P2Quantile{p: p}
	e.dWant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e, nil
}

// Add folds one sample.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := 0; i < 5; i++ {
				e.pos[i] = float64(i + 1)
				e.want[i] = 1 + 4*e.dWant[i]
			}
		}
		return
	}
	// Locate the cell containing x and bump the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dWant[i]
	}
	e.n++
	// Adjust the interior markers toward their desired positions.
	for i := 1; i < 4; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			q := e.parabolic(i, s)
			if e.q[i-1] < q && q < e.q[i+1] {
				e.q[i] = q
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction.
func (e *P2Quantile) linear(i int, s float64) float64 {
	return e.q[i] + s*(e.q[int(float64(i)+s)]-e.q[i])/(e.pos[int(float64(i)+s)]-e.pos[i])
}

// N returns the sample count.
func (e *P2Quantile) N() int { return e.n }

// Value returns the current quantile estimate, or ErrEmpty.
func (e *P2Quantile) Value() (float64, error) {
	if e.n == 0 {
		return 0, ErrEmpty
	}
	if e.n <= 5 {
		// Exact small-sample order statistic via the batch interpolation:
		// through n == 5 the markers are still the sorted raw samples (for
		// n < 5 unsorted — Percentile sorts a copy), so the estimate must
		// come from them, not from the middle marker, which only tracks the
		// target quantile once the marker adjustment has run.
		xs := append([]float64(nil), e.q[:e.n]...)
		return Percentile(xs, e.p*100)
	}
	return e.q[2], nil
}

// ValueCounts is an exact streaming multiset: it counts occurrences per
// distinct float64 value, so every order statistic of the stream can be
// reproduced bit-for-bit without retaining the samples. Memory is bounded by
// the number of distinct values — for the campaign's quantized measurement
// series (threshold crossings on a fixed integration grid, k/N bit error
// rates, command-grid latencies) that bound is a property of the grid, not
// of the run count. The zero value is ready to use.
//
// Non-finite samples are counted separately (NaN map keys are unusable and
// batch order statistics over them are undefined); the query methods report
// an error when any were seen.
type ValueCounts struct {
	n         int
	counts    map[float64]int
	nonFinite int
}

// Add folds one sample.
//
//detlint:hotpath witness=TestDistAggregationAllocatesO1
func (v *ValueCounts) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		v.nonFinite++
		return
	}
	if v.counts == nil {
		v.counts = make(map[float64]int) //detlint:ignore hotalloc one-time lazy init, amortized to 0 allocs/run
	}
	v.counts[x]++
	v.n++
}

// Merge folds another multiset into v.
func (v *ValueCounts) Merge(o ValueCounts) {
	v.nonFinite += o.nonFinite
	if o.n == 0 {
		return
	}
	if v.counts == nil {
		v.counts = make(map[float64]int, len(o.counts))
	}
	for x, c := range o.counts {
		v.counts[x] += c
	}
	v.n += o.n
}

// N returns the finite sample count.
func (v ValueCounts) N() int { return v.n }

// Distinct returns the number of distinct finite values seen — the memory
// footprint of the accumulator in map entries.
func (v ValueCounts) Distinct() int { return len(v.counts) }

// err reports the conditions under which order statistics are unavailable.
func (v ValueCounts) err() error {
	if v.nonFinite > 0 {
		return fmt.Errorf("stats: %d non-finite sample(s) in stream", v.nonFinite)
	}
	if v.n == 0 {
		return ErrEmpty
	}
	return nil
}

// sorted returns the distinct values in ascending order with their counts.
func (v ValueCounts) sorted() ([]float64, []int) {
	vals := make([]float64, 0, len(v.counts))
	for x := range v.counts {
		vals = append(vals, x)
	}
	sort.Float64s(vals)
	cnts := make([]int, len(vals))
	for i, x := range vals {
		cnts[i] = v.counts[x]
	}
	return vals, cnts
}

// at returns the sample at 0-based rank r of the sorted multiset.
func at(vals []float64, cnts []int, r int) float64 {
	for i, c := range cnts {
		if r < c {
			return vals[i]
		}
		r -= c
	}
	return vals[len(vals)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) with the same
// closest-rank linear interpolation as the batch Percentile — bit-identical
// to sorting the full sample.
func (v ValueCounts) Percentile(p float64) (float64, error) {
	if err := v.err(); err != nil {
		return 0, err
	}
	vals, cnts := v.sorted()
	return v.percentileSorted(vals, cnts, p)
}

// percentileSorted is Percentile over an already-materialized sorted view,
// so multi-quantile queries (Summary, CI) sort the multiset once.
func (v ValueCounts) percentileSorted(vals []float64, cnts []int, p float64) (float64, error) {
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	if v.n == 1 {
		return vals[0], nil
	}
	rank := p / 100 * float64(v.n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return at(vals, cnts, lo), nil
	}
	frac := rank - float64(lo)
	return at(vals, cnts, lo)*(1-frac) + at(vals, cnts, hi)*frac, nil
}

// Min returns the smallest sample, or an error (ErrEmpty / non-finite).
func (v ValueCounts) Min() (float64, error) {
	if err := v.err(); err != nil {
		return 0, err
	}
	vals, _ := v.sorted()
	return vals[0], nil
}

// Max returns the largest sample, or an error (ErrEmpty / non-finite).
func (v ValueCounts) Max() (float64, error) {
	if err := v.err(); err != nil {
		return 0, err
	}
	vals, _ := v.sorted()
	return vals[len(vals)-1], nil
}

// Range returns both extremes with a single pass over the distinct values.
func (v ValueCounts) Range() (lo, hi float64, err error) {
	if err := v.err(); err != nil {
		return 0, 0, err
	}
	first := true
	for x := range v.counts {
		if first || x < lo {
			lo = x
		}
		if first || x > hi {
			hi = x
		}
		first = false
	}
	return lo, hi, nil
}

// FractionBelow returns the fraction of samples strictly below x (0 when
// empty, like the batch helper).
func (v ValueCounts) FractionBelow(x float64) float64 {
	if v.n == 0 {
		return 0
	}
	n := 0
	for val, c := range v.counts {
		if val < x {
			n += c
		}
	}
	return float64(n) / float64(v.n)
}

// FractionAbove returns the fraction of samples strictly above x.
func (v ValueCounts) FractionAbove(x float64) float64 {
	if v.n == 0 {
		return 0
	}
	n := 0
	for val, c := range v.counts {
		if val > x {
			n += c
		}
	}
	return float64(n) / float64(v.n)
}

// Histogram bins the multiset into n equal-width buckets spanning [lo, hi]
// with the same clamping as NewHistogram — identical counts and fractions to
// binning the raw samples.
func (v ValueCounts) Histogram(lo, hi float64, n int) (Histogram, error) {
	if v.nonFinite > 0 {
		return Histogram{}, fmt.Errorf("stats: %d non-finite sample(s) in stream", v.nonFinite)
	}
	h, err := NewHistogram(nil, lo, hi, n)
	if err != nil {
		return Histogram{}, err
	}
	h.Total = v.n
	width := (hi - lo) / float64(n)
	for x, c := range v.counts {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		h.Bins[idx].Count += c
	}
	if h.Total > 0 {
		for i := range h.Bins {
			h.Bins[i].Fraction = float64(h.Bins[i].Count) / float64(h.Total)
		}
	}
	return h, nil
}

// StreamingHistogram is a fixed-bin histogram accumulator: O(bins) memory
// regardless of the stream length, for when the value range is known up
// front and the lossless ValueCounts multiset is unnecessary.
type StreamingHistogram struct {
	lo, hi float64
	bins   []int
	total  int
}

// NewStreamingHistogram returns an accumulator with n equal-width buckets
// spanning [lo, hi]; out-of-range samples clamp into the edge bins, exactly
// like NewHistogram.
func NewStreamingHistogram(lo, hi float64, n int) (*StreamingHistogram, error) {
	if _, err := NewHistogram(nil, lo, hi, n); err != nil {
		return nil, err
	}
	return &StreamingHistogram{lo: lo, hi: hi, bins: make([]int, n)}, nil
}

// Add folds one sample. Non-finite samples are rejected with an error.
func (s *StreamingHistogram) Add(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("stats: non-finite histogram sample %v", x)
	}
	n := len(s.bins)
	width := (s.hi - s.lo) / float64(n)
	idx := int((x - s.lo) / width)
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	s.bins[idx]++
	s.total++
	return nil
}

// Merge folds another accumulator into s. The bin layouts must match.
func (s *StreamingHistogram) Merge(o *StreamingHistogram) error {
	if o == nil {
		return nil
	}
	if s.lo != o.lo || s.hi != o.hi || len(s.bins) != len(o.bins) {
		return errors.New("stats: merging streaming histograms with different bin layouts")
	}
	for i, c := range o.bins {
		s.bins[i] += c
	}
	s.total += o.total
	return nil
}

// N returns the sample count.
func (s *StreamingHistogram) N() int { return s.total }

// Histogram materializes the accumulated counts in the batch Histogram
// shape, identical to NewHistogram over the same samples.
func (s *StreamingHistogram) Histogram() Histogram {
	n := len(s.bins)
	h := Histogram{Bins: make([]Bin, n), Total: s.total}
	width := (s.hi - s.lo) / float64(n)
	for i := range h.Bins {
		h.Bins[i].Lo = s.lo + float64(i)*width
		h.Bins[i].Hi = s.lo + float64(i+1)*width
		h.Bins[i].Count = s.bins[i]
		if s.total > 0 {
			h.Bins[i].Fraction = float64(s.bins[i]) / float64(s.total)
		}
	}
	return h
}

// Dist is the streaming distribution summary the campaign aggregates use:
// exact mean (accumulation order), exact min/max, exact quantiles and
// fractions via the lossless ValueCounts multiset, and Welford variance —
// all in one pass, with memory bounded by the number of distinct sample
// values rather than the sample count. The zero value is ready to use.
type Dist struct {
	Moments Moments
	Counts  ValueCounts
}

// Add folds one sample. Non-finite samples are quarantined consistently:
// they are excluded from the moments as well as the order statistics (so
// N() and Mean() never disagree with the quantiles about the population),
// counted by Counts, and reported as an error by Summary and the
// order-statistic queries.
//
//detlint:hotpath witness=TestDistAggregationAllocatesO1
func (d *Dist) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		d.Counts.Add(x) // records the non-finite count only
		return
	}
	d.Moments.Add(x)
	d.Counts.Add(x)
}

// Merge folds another distribution into d. Merge order fixes the floating-
// point summation order of Mean; the drivers merge in catalog/level order so
// results are identical at any worker count.
func (d *Dist) Merge(o Dist) {
	d.Moments.Merge(o.Moments)
	d.Counts.Merge(o.Counts)
}

// N returns the sample count.
func (d Dist) N() int { return d.Moments.N() }

// Mean returns the arithmetic mean (0 when empty).
func (d Dist) Mean() float64 { return d.Moments.Mean() }

// Min returns the smallest sample, or 0 when empty (the batch drivers'
// convention for absent measurements).
func (d Dist) Min() float64 {
	v, err := d.Counts.Min()
	if err != nil {
		return 0
	}
	return v
}

// Max returns the largest sample, or 0 when empty.
func (d Dist) Max() float64 {
	v, err := d.Counts.Max()
	if err != nil {
		return 0
	}
	return v
}

// Percentile returns the exact p-th percentile of the stream.
func (d Dist) Percentile(p float64) (float64, error) { return d.Counts.Percentile(p) }

// FractionBelow returns the exact fraction of samples strictly below x.
func (d Dist) FractionBelow(x float64) float64 { return d.Counts.FractionBelow(x) }

// FractionAbove returns the exact fraction of samples strictly above x.
func (d Dist) FractionAbove(x float64) float64 { return d.Counts.FractionAbove(x) }

// CV returns the coefficient of variation of the stream.
func (d Dist) CV() (float64, error) { return d.Moments.CV() }

// CI returns the empirical central confidence interval covering the given
// fraction of the stream, like the batch CI.
func (d Dist) CI(level float64) (ConfidenceInterval, error) {
	if d.N() == 0 {
		return ConfidenceInterval{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return ConfidenceInterval{}, errors.New("stats: confidence level must be in (0,1)")
	}
	if err := d.Counts.err(); err != nil {
		return ConfidenceInterval{}, err
	}
	vals, cnts := d.Counts.sorted()
	tail := (1 - level) / 2 * 100
	lo, err := d.Counts.percentileSorted(vals, cnts, tail)
	if err != nil {
		return ConfidenceInterval{}, err
	}
	hi, err := d.Counts.percentileSorted(vals, cnts, 100-tail)
	if err != nil {
		return ConfidenceInterval{}, err
	}
	return ConfidenceInterval{Mean: d.Mean(), Lo: lo, Hi: hi}, nil
}

// Histogram bins the stream exactly like NewHistogram over the raw samples.
func (d Dist) Histogram(lo, hi float64, n int) (Histogram, error) {
	return d.Counts.Histogram(lo, hi, n)
}

// Summary materializes the descriptive statistics in the batch Summary
// shape. CV is 0 for a zero-mean stream, matching the historical Summarize
// behavior. It returns ErrEmpty for an empty stream and an error when any
// non-finite sample contaminated it.
func (d Dist) Summary() (Summary, error) {
	if err := d.Counts.err(); err != nil {
		return Summary{}, err
	}
	if d.N() == 0 {
		return Summary{}, ErrEmpty
	}
	cv, err := d.CV()
	if err != nil {
		cv = 0
	}
	// One sorted materialization serves every order statistic below.
	vals, cnts := d.Counts.sorted()
	p50, _ := d.Counts.percentileSorted(vals, cnts, 50)
	p90, _ := d.Counts.percentileSorted(vals, cnts, 90)
	p95, _ := d.Counts.percentileSorted(vals, cnts, 95)
	p99, _ := d.Counts.percentileSorted(vals, cnts, 99)
	return Summary{
		N:      d.N(),
		Mean:   d.Mean(),
		StdDev: d.Moments.StdDev(),
		CV:     cv,
		Min:    vals[0],
		Max:    vals[len(vals)-1],
		P50:    p50,
		P90:    p90,
		P95:    p95,
		P99:    p99,
	}, nil
}

// P2Summary is the strictly-O(1) composite accumulator: Welford moments,
// running extremes, and P² estimators for the Summary quantiles. Use it for
// continuous unbounded streams where even the distinct-value bound of Dist
// is too large; quantiles carry the documented P² tolerance instead of being
// exact.
type P2Summary struct {
	moments   Moments
	minmax    MinMax
	quantiles [4]*P2Quantile // P50, P90, P95, P99
}

// NewP2Summary returns an empty accumulator.
func NewP2Summary() *P2Summary {
	s := &P2Summary{}
	for i, p := range []float64{0.50, 0.90, 0.95, 0.99} {
		s.quantiles[i], _ = NewP2Quantile(p)
	}
	return s
}

// Add folds one sample.
func (s *P2Summary) Add(x float64) {
	s.moments.Add(x)
	s.minmax.Add(x)
	for _, q := range s.quantiles {
		q.Add(x)
	}
}

// N returns the sample count.
func (s *P2Summary) N() int { return s.moments.N() }

// Summary materializes the estimate. It returns ErrEmpty when no samples
// were folded.
func (s *P2Summary) Summary() (Summary, error) {
	if s.moments.N() == 0 {
		return Summary{}, ErrEmpty
	}
	cv, err := s.moments.CV()
	if err != nil {
		cv = 0
	}
	mn, _ := s.minmax.Min()
	mx, _ := s.minmax.Max()
	p50, _ := s.quantiles[0].Value()
	p90, _ := s.quantiles[1].Value()
	p95, _ := s.quantiles[2].Value()
	p99, _ := s.quantiles[3].Value()
	return Summary{
		N:      s.moments.N(),
		Mean:   s.moments.Mean(),
		StdDev: s.moments.StdDev(),
		CV:     cv,
		Min:    mn,
		Max:    mx,
		P50:    p50,
		P90:    p90,
		P95:    p95,
		P99:    p99,
	}, nil
}
