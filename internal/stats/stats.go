package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (division by n, not n-1),
// or 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CV returns the coefficient of variation (stddev/|mean|) of xs. The paper
// (§4.6) uses CV across ten measurement iterations to argue statistical
// significance. It returns ErrEmpty for an empty sample and ErrZeroMean for
// a zero-mean one, where the ratio is undefined (the old silent 0 let a
// meaningless series masquerade as a perfectly stable measurement).
func CV(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := Mean(xs)
	if m == 0 {
		return 0, ErrZeroMean
	}
	return StdDev(xs) / math.Abs(m), nil
}

// Min returns the smallest element of xs. It returns ErrEmpty for an empty
// sample.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs. It returns ErrEmpty for an empty
// sample.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty for an empty
// sample and an error for out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// ConfidenceInterval holds a two-sided interval around a central estimate.
type ConfidenceInterval struct {
	Mean float64
	Lo   float64
	Hi   float64
}

// CI returns the empirical central confidence interval that covers the given
// fraction of the sample (e.g. level=0.90 gives the [5th, 95th] percentile
// band the paper shades around each curve). It returns ErrEmpty for an empty
// sample.
func CI(xs []float64, level float64) (ConfidenceInterval, error) {
	if len(xs) == 0 {
		return ConfidenceInterval{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return ConfidenceInterval{}, errors.New("stats: confidence level must be in (0,1)")
	}
	tail := (1 - level) / 2 * 100
	lo, err := Percentile(xs, tail)
	if err != nil {
		return ConfidenceInterval{}, err
	}
	hi, err := Percentile(xs, 100-tail)
	if err != nil {
		return ConfidenceInterval{}, err
	}
	return ConfidenceInterval{Mean: Mean(xs), Lo: lo, Hi: hi}, nil
}

// Bin is one bucket of a Histogram: the half-open value interval [Lo, Hi)
// (the last bin is closed) together with the raw count and the fraction of
// the total sample that falls inside.
type Bin struct {
	Lo       float64
	Hi       float64
	Count    int
	Fraction float64
}

// Histogram is a binned population distribution.
type Histogram struct {
	Bins  []Bin
	Total int
}

// NewHistogram bins xs into n equal-width buckets spanning [lo, hi]. Values
// outside the range are clamped into the edge bins so that population
// fractions always sum to 1, matching how the paper's population-density
// figures account for every tested row. It returns an error for a
// non-positive bin count, an empty or inverted range (lo >= hi), a
// non-finite bound, or a non-finite sample — previously a NaN silently
// landed in an implementation-defined bin instead of failing loudly.
func NewHistogram(xs []float64, lo, hi float64, n int) (Histogram, error) {
	if n <= 0 {
		return Histogram{}, errors.New("stats: histogram needs at least one bin")
	}
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
		return Histogram{}, errors.New("stats: histogram range is not finite")
	}
	if hi <= lo {
		return Histogram{}, errors.New("stats: histogram range is empty")
	}
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Histogram{}, fmt.Errorf("stats: non-finite histogram sample %v", x)
		}
	}
	h := Histogram{Bins: make([]Bin, n), Total: len(xs)}
	width := (hi - lo) / float64(n)
	for i := range h.Bins {
		h.Bins[i].Lo = lo + float64(i)*width
		h.Bins[i].Hi = lo + float64(i+1)*width
	}
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		h.Bins[idx].Count++
	}
	if h.Total > 0 {
		for i := range h.Bins {
			h.Bins[i].Fraction = float64(h.Bins[i].Count) / float64(h.Total)
		}
	}
	return h, nil
}

// Mode returns the bin with the highest count. For an empty histogram it
// returns the zero Bin.
func (h Histogram) Mode() Bin {
	var best Bin
	for _, b := range h.Bins {
		if b.Count > best.Count {
			best = b
		}
	}
	return best
}

// Normalize divides each element of xs by base and returns a new slice.
// It is the helper behind every "normalized to nominal VPP" series in the
// paper. A zero base yields an all-zero slice rather than Inf/NaN values.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// FractionBelow returns the fraction of xs strictly below the threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAbove returns the fraction of xs strictly above the threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries make the
// geometric mean undefined; they yield an error.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean of non-positive value")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Summary bundles the descriptive statistics the experiment drivers report
// for each measured series.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CV     float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs. It is a thin wrapper over one-shot
// accumulation into a streaming Dist: the mean, extremes, quantiles, and
// fractions are identical to the historical batch computation, while the
// standard deviation comes from the Welford recurrence (see the accuracy
// contract in stream.go). It returns ErrEmpty for an empty sample.
func Summarize(xs []float64) (Summary, error) {
	var d Dist
	for _, x := range xs {
		d.Add(x)
	}
	return d.Summary()
}
