// JSON round-tripping for the streaming accumulators, so study partials can
// leave the process as shard artifacts and merge back elsewhere. Every
// mergeable accumulator (Moments, MinMax, Fraction, ValueCounts,
// StreamingHistogram, and the composite Dist via its exported fields)
// serializes its full internal state: Unmarshal(Marshal(a)) reproduces an
// accumulator whose every query — and every future Add or Merge — behaves
// identically to the original. encoding/json emits the shortest decimal that
// parses back to the identical float64, so the round trip is bit-exact.
//
// P2Quantile is deliberately NOT serializable, just as it is not mergeable:
// its five markers depend on the arrival order of the whole stream, so two
// partial estimators cannot be combined into the estimator of the
// concatenated stream. Sharded campaigns that need quantiles use the exact
// ValueCounts multiset (inside Dist) instead — its merge is lossless, and for
// the campaign's grid-quantized series its memory is bounded by the grid.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// momentsJSON is the wire form of Moments. All four state variables are
// required to resume accumulation: sum for the exact accumulation-order mean,
// mean/m2 for the Welford variance recurrence.
type momentsJSON struct {
	N    int     `json:"n"`
	Sum  float64 `json:"sum"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// MarshalJSON encodes the accumulator's full state.
func (m Moments) MarshalJSON() ([]byte, error) {
	return json.Marshal(momentsJSON{N: m.n, Sum: m.sum, Mean: m.mean, M2: m.m2})
}

// UnmarshalJSON restores an accumulator previously encoded by MarshalJSON.
func (m *Moments) UnmarshalJSON(b []byte) error {
	var w momentsJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.N < 0 {
		return fmt.Errorf("stats: Moments with negative n %d", w.N)
	}
	*m = Moments{n: w.N, sum: w.Sum, mean: w.Mean, m2: w.M2}
	return nil
}

type minMaxJSON struct {
	N   int     `json:"n"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// MarshalJSON encodes the accumulator's full state.
func (m MinMax) MarshalJSON() ([]byte, error) {
	return json.Marshal(minMaxJSON{N: m.n, Min: m.min, Max: m.max})
}

// UnmarshalJSON restores an accumulator previously encoded by MarshalJSON.
func (m *MinMax) UnmarshalJSON(b []byte) error {
	var w minMaxJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.N < 0 {
		return fmt.Errorf("stats: MinMax with negative n %d", w.N)
	}
	*m = MinMax{n: w.N, min: w.Min, max: w.Max}
	return nil
}

type fractionJSON struct {
	Threshold float64 `json:"threshold"`
	N         int     `json:"n"`
	Below     int     `json:"below"`
	Above     int     `json:"above"`
}

// MarshalJSON encodes the accumulator's full state.
func (f Fraction) MarshalJSON() ([]byte, error) {
	return json.Marshal(fractionJSON{Threshold: f.Threshold, N: f.n, Below: f.below, Above: f.above})
}

// UnmarshalJSON restores an accumulator previously encoded by MarshalJSON.
func (f *Fraction) UnmarshalJSON(b []byte) error {
	var w fractionJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.N < 0 || w.Below < 0 || w.Above < 0 || w.Below+w.Above > w.N {
		return fmt.Errorf("stats: inconsistent Fraction counts n=%d below=%d above=%d", w.N, w.Below, w.Above)
	}
	*f = Fraction{Threshold: w.Threshold, n: w.N, below: w.Below, above: w.Above}
	return nil
}

// valueCountsJSON is the wire form of ValueCounts: the distinct values in
// ascending order with their parallel counts (JSON objects cannot key on
// float64, and the sorted encoding keeps artifact bytes deterministic).
// The finite-sample total is derived from the counts on decode.
type valueCountsJSON struct {
	Values    []float64 `json:"values"`
	Counts    []int     `json:"counts"`
	NonFinite int       `json:"non_finite,omitempty"`
}

// MarshalJSON encodes the multiset as sorted (value, count) pairs.
func (v ValueCounts) MarshalJSON() ([]byte, error) {
	vals, cnts := v.sorted()
	if vals == nil {
		vals, cnts = []float64{}, []int{}
	}
	return json.Marshal(valueCountsJSON{Values: vals, Counts: cnts, NonFinite: v.nonFinite})
}

// UnmarshalJSON restores a multiset previously encoded by MarshalJSON.
func (v *ValueCounts) UnmarshalJSON(b []byte) error {
	var w valueCountsJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if len(w.Values) != len(w.Counts) {
		return fmt.Errorf("stats: ValueCounts with %d values but %d counts", len(w.Values), len(w.Counts))
	}
	if w.NonFinite < 0 {
		return fmt.Errorf("stats: ValueCounts with negative non-finite count %d", w.NonFinite)
	}
	out := ValueCounts{nonFinite: w.NonFinite}
	for i, x := range w.Values {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("stats: ValueCounts with non-finite value %v", x)
		}
		c := w.Counts[i]
		if c <= 0 {
			return fmt.Errorf("stats: ValueCounts with non-positive count %d for value %v", c, x)
		}
		if out.counts == nil {
			out.counts = make(map[float64]int, len(w.Values))
		}
		if _, dup := out.counts[x]; dup {
			return fmt.Errorf("stats: ValueCounts with duplicate value %v", x)
		}
		out.counts[x] = c
		out.n += c
	}
	*v = out
	return nil
}

// streamingHistogramJSON is the wire form of StreamingHistogram. The total is
// derived from the bins on decode.
type streamingHistogramJSON struct {
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	Bins []int   `json:"bins"`
}

// MarshalJSON encodes the accumulator's full state.
func (s *StreamingHistogram) MarshalJSON() ([]byte, error) {
	bins := s.bins
	if bins == nil {
		bins = []int{}
	}
	return json.Marshal(streamingHistogramJSON{Lo: s.lo, Hi: s.hi, Bins: bins})
}

// UnmarshalJSON restores an accumulator previously encoded by MarshalJSON.
func (s *StreamingHistogram) UnmarshalJSON(b []byte) error {
	var w streamingHistogramJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if _, err := NewHistogram(nil, w.Lo, w.Hi, len(w.Bins)); err != nil {
		return fmt.Errorf("stats: decoding StreamingHistogram: %w", err)
	}
	out := StreamingHistogram{lo: w.Lo, hi: w.Hi, bins: make([]int, len(w.Bins))}
	for i, c := range w.Bins {
		if c < 0 {
			return fmt.Errorf("stats: StreamingHistogram with negative bin count %d", c)
		}
		out.bins[i] = c
		out.total += c
	}
	*s = out
	return nil
}
