package stats

import (
	"math"
	"math/rand" //detlint:ignore detsource test-local fixed-seed source, never reaches library code
	"testing"
	"testing/quick"
)

// finite filters the raw fuzz input down to usable samples.
func finite(raw []float64) []float64 {
	xs := make([]float64, 0, len(raw))
	for _, x := range raw {
		if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
			xs = append(xs, x)
		}
	}
	return xs
}

// relEqual compares within a relative tolerance scaled to the magnitudes.
func relEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestMomentsMatchesBatch pins the streaming moments to the batch oracles:
// the mean is bit-identical (same summation order), variance within 1e-12
// relative (Welford vs two-pass).
func TestMomentsMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := finite(raw)
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		if m.N() != len(xs) {
			return false
		}
		if m.Mean() != Mean(xs) { // bit-identical, not just close
			return false
		}
		return relEqual(m.Variance(), Variance(xs), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMomentsCVMatchesBatch checks the CV of streaming moments against the
// batch CV, including the zero-mean and empty error cases.
func TestMomentsCVMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	want, _ := CV(xs)
	got, err := m.CV()
	if err != nil || !relEqual(got, want, 1e-12) {
		t.Errorf("CV = %v (%v), want %v", got, err, want)
	}
	var zero Moments
	zero.Add(1)
	zero.Add(-1)
	if _, err := zero.CV(); err != ErrZeroMean {
		t.Errorf("zero-mean CV err = %v, want ErrZeroMean", err)
	}
	var empty Moments
	if _, err := empty.CV(); err != ErrEmpty {
		t.Errorf("empty CV err = %v, want ErrEmpty", err)
	}
}

// TestMomentsMergeMatchesWhole splits a sample at every position, merges the
// two partial accumulators, and compares against accumulating the whole
// stream: count and sum identical in structure, mean/variance within 1e-12.
func TestMomentsMergeMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	var whole Moments
	for _, x := range xs {
		whole.Add(x)
	}
	for cut := 0; cut <= len(xs); cut += 17 {
		var a, b Moments
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("cut %d: N = %d, want %d", cut, a.N(), whole.N())
		}
		if !relEqual(a.Mean(), whole.Mean(), 1e-12) {
			t.Errorf("cut %d: mean %v vs %v", cut, a.Mean(), whole.Mean())
		}
		if !relEqual(a.Variance(), whole.Variance(), 1e-12) {
			t.Errorf("cut %d: variance %v vs %v", cut, a.Variance(), whole.Variance())
		}
	}
}

// TestMinMaxAndFractionMatchBatch pins the running extremes and threshold
// fractions to their batch counterparts.
func TestMinMaxAndFractionMatchBatch(t *testing.T) {
	f := func(raw []float64, thr float64) bool {
		xs := finite(raw)
		if math.IsNaN(thr) {
			thr = 0
		}
		var mm MinMax
		fr := NewFraction(thr)
		for _, x := range xs {
			mm.Add(x)
			fr.Add(x)
		}
		if len(xs) == 0 {
			_, errMin := mm.Min()
			_, errMax := mm.Max()
			return errMin == ErrEmpty && errMax == ErrEmpty && fr.Below() == 0 && fr.Above() == 0
		}
		wantMin, _ := Min(xs)
		wantMax, _ := Max(xs)
		gotMin, _ := mm.Min()
		gotMax, _ := mm.Max()
		return gotMin == wantMin && gotMax == wantMax &&
			fr.Below() == FractionBelow(xs, thr) && fr.Above() == FractionAbove(xs, thr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFractionMergeRejectsMixedThresholds(t *testing.T) {
	a, b := NewFraction(1), NewFraction(2)
	if err := a.Merge(b); err == nil {
		t.Error("merge of different thresholds accepted")
	}
	c := NewFraction(1)
	c.Add(0.5)
	c.Add(1.5)
	if err := a.Merge(c); err != nil || !almostEqual(a.Below(), 0.5, 1e-12) {
		t.Errorf("merge failed: %v, below %v", err, a.Below())
	}
}

// TestValueCountsPercentileExact is the load-bearing property of the exact
// multiset: its percentiles are BIT-IDENTICAL to sorting the raw sample and
// interpolating, for arbitrary (not just quantized) values.
func TestValueCountsPercentileExact(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		xs := finite(raw)
		var v ValueCounts
		for _, x := range xs {
			v.Add(x)
		}
		p := float64(p8) / 255 * 100
		want, errB := Percentile(xs, p)
		got, errS := v.Percentile(p)
		if len(xs) == 0 {
			return errB == ErrEmpty && errS == ErrEmpty
		}
		return errB == nil && errS == nil && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestValueCountsHistogramExact pins streamed binning to NewHistogram.
func TestValueCountsHistogramExact(t *testing.T) {
	f := func(raw []float64) bool {
		xs := finite(raw)
		var v ValueCounts
		for _, x := range xs {
			v.Add(x)
		}
		want, err := NewHistogram(xs, -2, 2, 6)
		if err != nil {
			return false
		}
		got, err := v.Histogram(-2, 2, 6)
		if err != nil {
			return false
		}
		if got.Total != want.Total {
			return false
		}
		for i := range want.Bins {
			if got.Bins[i] != want.Bins[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestValueCountsMergeOrderInvariant shards a sample into chunks and merges
// them in two different orders: the multiset — and hence every order
// statistic — must be identical, which is what lets the global Monte-Carlo
// run queue merge per-level partials deterministically.
func TestValueCountsMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = math.Round(rng.NormFloat64()*8) / 4 // quantized, with repeats
	}
	chunk := func(order []int) ValueCounts {
		var parts [5]ValueCounts
		for i, x := range xs {
			parts[i%5].Add(x)
		}
		var m ValueCounts
		for _, i := range order {
			m.Merge(parts[i])
		}
		return m
	}
	a := chunk([]int{0, 1, 2, 3, 4})
	b := chunk([]int{4, 2, 0, 3, 1})
	for _, p := range []float64{0, 10, 50, 90, 95, 99, 100} {
		va, erra := a.Percentile(p)
		vb, errb := b.Percentile(p)
		if erra != nil || errb != nil || va != vb {
			t.Errorf("P%v: %v (%v) vs %v (%v)", p, va, erra, vb, errb)
		}
	}
	if a.N() != len(xs) || a.Distinct() != b.Distinct() {
		t.Errorf("merge mismatch: N %d distinct %d vs %d", a.N(), a.Distinct(), b.Distinct())
	}
}

// TestValueCountsRejectsNonFinite checks the NaN/Inf bookkeeping.
func TestValueCountsRejectsNonFinite(t *testing.T) {
	var v ValueCounts
	v.Add(1)
	v.Add(math.NaN())
	if _, err := v.Percentile(50); err == nil {
		t.Error("percentile over a NaN-contaminated stream accepted")
	}
	if _, err := v.Min(); err == nil {
		t.Error("min over a NaN-contaminated stream accepted")
	}
	if _, _, err := v.Range(); err == nil {
		t.Error("range over a NaN-contaminated stream accepted")
	}
	if _, err := v.Histogram(0, 1, 2); err == nil {
		t.Error("histogram over a NaN-contaminated stream accepted")
	}
}

// TestDistNonFiniteConsistency: a non-finite sample must not poison the
// moments while being absent from the order statistics — it is quarantined
// everywhere and surfaced as an error by Summary and CI.
func TestDistNonFiniteConsistency(t *testing.T) {
	var d Dist
	d.Add(2)
	d.Add(math.NaN())
	d.Add(4)
	if d.N() != 2 || d.Mean() != 3 {
		t.Errorf("N/Mean = %d/%v, want 2/3 (NaN quarantined)", d.N(), d.Mean())
	}
	if _, err := d.Summary(); err == nil {
		t.Error("Summary over a NaN-contaminated stream accepted")
	}
	if _, err := d.CI(0.9); err == nil {
		t.Error("CI over a NaN-contaminated stream accepted")
	}
	var clean Dist
	clean.Add(math.Inf(1))
	if clean.N() != 0 || clean.Mean() != 0 {
		t.Errorf("Inf-only stream: N/Mean = %d/%v, want 0/0", clean.N(), clean.Mean())
	}
}

// TestValueCountsRange pins the single-pass extremes to Min/Max.
func TestValueCountsRange(t *testing.T) {
	var v ValueCounts
	for _, x := range []float64{3, -1, 7, 2, 7} {
		v.Add(x)
	}
	lo, hi, err := v.Range()
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("Range = %v, %v (%v), want -1, 7", lo, hi, err)
	}
	var empty ValueCounts
	if _, _, err := empty.Range(); err != ErrEmpty {
		t.Errorf("empty Range err = %v, want ErrEmpty", err)
	}
}

// TestP2QuantileSmallSampleExact: through the five-marker threshold
// (including exactly n == 5, where the markers have just initialized but no
// adjustment has run) the P² estimator must return the exact batch order
// statistic — q[2] is the median, not the target quantile, until then.
func TestP2QuantileSmallSampleExact(t *testing.T) {
	for _, xs := range [][]float64{
		{5, 1, 4, 2},
		{1, 2, 3, 4, 100}, // n == 5: P99 is 96.16, the median marker is 3
	} {
		for _, p := range []float64{0.25, 0.5, 0.9, 0.99} {
			e, err := NewP2Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range xs {
				e.Add(x)
			}
			want, _ := Percentile(xs, p*100)
			got, err := e.Value()
			if err != nil || got != want {
				t.Errorf("n=%d p=%v: %v (%v), want %v", len(xs), p, got, err, want)
			}
		}
	}
	if _, err := NewP2Quantile(0); err == nil {
		t.Error("quantile 0 accepted")
	}
	if _, err := NewP2Quantile(1); err == nil {
		t.Error("quantile 1 accepted")
	}
}

// TestP2QuantileTolerance pins the P² estimate to the batch percentile
// within the documented tolerance (5% of the sample spread) on smooth
// unimodal streams — the regime the estimator is specified for.
func TestP2QuantileTolerance(t *testing.T) {
	dists := []struct {
		name string
		draw func(*rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 10 }},
		{"normal", func(r *rand.Rand) float64 { return r.NormFloat64()*2 + 30 }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 5 }},
	}
	for _, d := range dists {
		rng := rand.New(rand.NewSource(2022))
		xs := make([]float64, 10000)
		ests := map[float64]*P2Quantile{}
		for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
			ests[p], _ = NewP2Quantile(p)
		}
		for i := range xs {
			xs[i] = d.draw(rng)
			for _, e := range ests {
				e.Add(xs[i])
			}
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		spread := mx - mn
		for p, e := range ests {
			want, _ := Percentile(xs, p*100)
			got, err := e.Value()
			if err != nil {
				t.Fatalf("%s p=%v: %v", d.name, p, err)
			}
			if math.Abs(got-want) > 0.05*spread {
				t.Errorf("%s P%v = %v, batch %v (spread %v): outside the 5%% tolerance",
					d.name, p*100, got, want, spread)
			}
		}
	}
}

// TestDistSummaryMatchesBatch pins the composite accumulator's Summary to
// the batch oracles field by field.
func TestDistSummaryMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Round(rng.NormFloat64()*100) / 10
	}
	var d Dist
	for _, x := range xs {
		d.Add(x)
	}
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != len(xs) || s.Mean != Mean(xs) {
		t.Errorf("N/Mean = %d/%v, want %d/%v", s.N, s.Mean, len(xs), Mean(xs))
	}
	if !relEqual(s.StdDev, StdDev(xs), 1e-12) {
		t.Errorf("StdDev = %v, want %v", s.StdDev, StdDev(xs))
	}
	wantMin, _ := Min(xs)
	wantMax, _ := Max(xs)
	if s.Min != wantMin || s.Max != wantMax {
		t.Errorf("Min/Max = %v/%v, want %v/%v", s.Min, s.Max, wantMin, wantMax)
	}
	for _, q := range []struct {
		p   float64
		got float64
	}{{50, s.P50}, {90, s.P90}, {95, s.P95}, {99, s.P99}} {
		want, _ := Percentile(xs, q.p)
		if q.got != want {
			t.Errorf("P%v = %v, want %v (must be exact)", q.p, q.got, want)
		}
	}
	ci, err := d.CI(0.90)
	if err != nil {
		t.Fatal(err)
	}
	wantCI, _ := CI(xs, 0.90)
	if ci != wantCI {
		t.Errorf("CI = %+v, want %+v", ci, wantCI)
	}
	var empty Dist
	if _, err := empty.Summary(); err != ErrEmpty {
		t.Errorf("empty Summary err = %v, want ErrEmpty", err)
	}
}

// TestP2SummaryBounded checks the strictly-O(1) composite: count, mean,
// extremes exact; quantiles within the P² tolerance; ordered percentiles.
func TestP2SummaryBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 8000)
	acc := NewP2Summary()
	for i := range xs {
		xs[i] = rng.NormFloat64()*4 + 50
		acc.Add(xs[i])
	}
	s, err := acc.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != Mean(xs) {
		t.Errorf("mean = %v, want %v", s.Mean, Mean(xs))
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if s.Min != mn || s.Max != mx {
		t.Errorf("extremes = %v/%v, want %v/%v", s.Min, s.Max, mn, mx)
	}
	spread := mx - mn
	for _, q := range []struct {
		p   float64
		got float64
	}{{50, s.P50}, {90, s.P90}, {95, s.P95}, {99, s.P99}} {
		want, _ := Percentile(xs, q.p)
		if math.Abs(q.got-want) > 0.05*spread {
			t.Errorf("P%v = %v, batch %v: outside tolerance", q.p, q.got, want)
		}
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("percentiles not ordered: %v %v %v %v", s.P50, s.P90, s.P95, s.P99)
	}
	if _, err := NewP2Summary().Summary(); err != ErrEmpty {
		t.Errorf("empty P2Summary err = %v, want ErrEmpty", err)
	}
}

// TestStreamingHistogramMatchesBatch pins the fixed-bin accumulator and its
// merge to NewHistogram.
func TestStreamingHistogramMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.Float64()*4 - 2 // includes clamped outliers vs [-1, 1]
	}
	want, err := NewHistogram(xs, -1, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewStreamingHistogram(-1, 1, 8)
	b, _ := NewStreamingHistogram(-1, 1, 8)
	for i, x := range xs {
		h := a
		if i%2 == 1 {
			h = b
		}
		if err := h.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Histogram()
	if got.Total != want.Total {
		t.Fatalf("total = %d, want %d", got.Total, want.Total)
	}
	for i := range want.Bins {
		if got.Bins[i] != want.Bins[i] {
			t.Errorf("bin %d = %+v, want %+v", i, got.Bins[i], want.Bins[i])
		}
	}
	if _, err := NewStreamingHistogram(1, 1, 4); err == nil {
		t.Error("lo == hi accepted")
	}
	if err := a.Add(math.NaN()); err == nil {
		t.Error("NaN sample accepted")
	}
	other, _ := NewStreamingHistogram(0, 1, 8)
	if err := a.Merge(other); err == nil {
		t.Error("mismatched bin layout merge accepted")
	}
}

// TestDistAggregationAllocatesO1 is the memory-bound acceptance property at
// the estimator level: folding a long quantized stream into a Dist performs
// no per-sample allocations once the distinct-value set is populated.
func TestDistAggregationAllocatesO1(t *testing.T) {
	var d Dist
	grid := make([]float64, 64)
	for i := range grid {
		grid[i] = 10 + float64(i)*0.025 // a fixed integration-step-like grid
	}
	for _, x := range grid {
		d.Add(x) // populate every distinct value
	}
	i := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		d.Add(grid[i%len(grid)])
		i++
	}); allocs > 0 {
		t.Errorf("Dist.Add allocates %v per sample on a populated grid, want 0", allocs)
	}
	if d.Counts.Distinct() != len(grid) {
		t.Errorf("distinct = %d, want %d", d.Counts.Distinct(), len(grid))
	}
}

// TestAccumulatorAddAllocsFree is the runtime witness for the scalar
// accumulators' //detlint:hotpath contract: a steady-state Add performs no
// heap allocation at all.
func TestAccumulatorAddAllocsFree(t *testing.T) {
	var m Moments
	var mm MinMax
	f := NewFraction(0.5)
	i := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		x := float64(i%7) * 0.25
		m.Add(x)
		mm.Add(x)
		f.Add(x)
		i++
	}); allocs > 0 {
		t.Errorf("scalar accumulator Add allocates %v per sample, want 0", allocs)
	}
}
