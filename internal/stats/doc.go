// Package stats provides the statistical primitives used by the
// characterization methodology and the experiment drivers: summary
// statistics (mean, standard deviation, coefficient of variation), order
// statistics (percentiles, confidence intervals), and binned population
// densities for the paper's population-distribution figures (Figs. 4, 6,
// 8b, 9b, 10b).
//
// Two layers share one vocabulary: the batch helpers in stats.go operate on
// whole []float64 samples (and serve as the accuracy oracles in the tests),
// while the streaming accumulators in stream.go (Moments, MinMax, Fraction,
// ValueCounts, StreamingHistogram, P2Quantile, and the composites Dist and
// P2Summary) fold samples one at a time with memory independent of the
// sample count — the form the campaign aggregation pipeline uses so run
// counts stop bounding memory.
//
// # Accuracy and merge-ordering invariants
//
// The batch-vs-streaming contract (detailed in stream.go):
//
//   - Means folded in sample order are bit-identical to the batch helpers;
//     pool.RunOrdered's index-order delivery fixes that order at any worker
//     count. Catalog-order merges of per-module partials are deterministic
//     but may differ from a flat concatenated sum in the last ulp.
//   - Min/max/quantiles/fractions/histograms are exact via the ValueCounts
//     lossless multiset regardless of merge order.
//   - Variance uses Welford's recurrence, within ~1e-12 relative of the
//     two-pass batch value.
//   - P2Quantile is the O(1) estimator for genuinely continuous unbounded
//     streams, within a documented ~5% tolerance. It is the one estimator
//     with neither an exact merge nor a JSON encoding; sharded quantiles
//     use ValueCounts instead.
//
// # Serializability
//
// Every mergeable accumulator round-trips losslessly through JSON
// (marshal.go): floats are encoded so they decode bit-exactly, and decode
// validates internal consistency before the value is usable. Merging
// round-tripped partials therefore reproduces whole-stream accumulation
// under the same ordering rules above — the property shard artifacts rely
// on. Merge order is always the caller's catalog/(level, run) order, never
// discovery order.
//
// All functions are pure and operate on copies where mutation would
// otherwise leak to the caller.
//
// Note that P2Quantile and P2Summary do not survive the JSON round-trip
// and therefore must not appear in shard-artifact partials; the shardsafe
// analyzer enforces this (see docs/DETERMINISM.md).
//
// The streaming accumulators' Add methods carry //detlint:hotpath
// annotations: the hotalloc analyzer keeps them free of per-sample heap
// allocations (ValueCounts' one-time lazy map init is the single reasoned
// exception), and the mergecontract analyzer checks every Merge method
// covers all serialized state. Both contracts are catalogued in
// docs/CONTRACTS.md.
package stats
